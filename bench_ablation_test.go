// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports domain metrics (iterations, spreads) through b.ReportMetric in
// addition to time, so `go test -bench=Ablation` doubles as an ablation
// study:
//
//   - working-set selection: maximal violating pair vs second order
//   - warm starting merged Cascade layers vs cold restarts
//   - pos/neg ratio balancing on vs off (node-time spread)
//   - one Cascade pass vs two
//   - kernel row-cache capacity sweep
package casvm

import (
	"testing"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/smo"
)

func ablationSet(b *testing.B, m int) *data.Dataset {
	b.Helper()
	d, err := data.Generate(data.MixtureSpec{
		Name: "ablate", Train: m, Test: m / 4, Features: 16, Clusters: 4,
		Separation: 6, Noise: 1, PosFrac: []float64{0.3}, LabelNoise: 0.03,
		Margin: 0.6, Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkAblationWSSFirstOrder(b *testing.B) {
	d := ablationSet(b, 1200)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 32)}
	var iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smo.Solve(d.X, d.Y, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iters
	}
	b.ReportMetric(float64(iters), "iterations")
}

func BenchmarkAblationWSSSecondOrder(b *testing.B) {
	d := ablationSet(b, 1200)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 32), SecondOrder: true}
	var iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smo.Solve(d.X, d.Y, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iters
	}
	b.ReportMetric(float64(iters), "iterations")
}

// Warm starts are the Cascade paper's trick for cutting layer iterations;
// quantify by re-solving a solved problem warm vs cold.
func BenchmarkAblationWarmStart(b *testing.B) {
	d := ablationSet(b, 1000)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 32)}
	cold, err := smo.Solve(d.X, d.Y, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	var warmIters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smo.Solve(d.X, d.Y, cfg, cold.Alpha)
		if err != nil {
			b.Fatal(err)
		}
		warmIters = res.Iters
	}
	b.ReportMetric(float64(cold.Iters), "cold-iterations")
	b.ReportMetric(float64(warmIters), "warm-iterations")
}

func benchCascadePasses(b *testing.B, passes int) {
	d := ablationSet(b, 960)
	p := core.DefaultParams(core.MethodCascade, 8)
	p.Kernel = kernel.RBF(1.0 / 32)
	p.CascadePasses = passes
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.Train(d.X, d.Y, p)
		if err != nil {
			b.Fatal(err)
		}
		acc = out.Set.Accuracy(d.TestX, d.TestY)
	}
	b.ReportMetric(100*acc, "accuracy%")
}

func BenchmarkAblationCascadeOnePass(b *testing.B)   { benchCascadePasses(b, 1) }
func BenchmarkAblationCascadeTwoPasses(b *testing.B) { benchCascadePasses(b, 2) }

func benchRatioBalance(b *testing.B, ratio bool) {
	d, _, err := data.Load("face", 0.4)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams(core.MethodFCFSCA, 8)
	p.Kernel = RBF(1.0 / 128)
	p.RatioBalanced = ratio
	var spreadVal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.Train(d.X, d.Y, p)
		if err != nil {
			b.Fatal(err)
		}
		min, max := out.Stats.NodeTrainSec[0], out.Stats.NodeTrainSec[0]
		for _, t := range out.Stats.NodeTrainSec {
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		if min > 0 {
			spreadVal = max / min
		}
	}
	b.ReportMetric(spreadVal, "slow/fast-node")
}

func BenchmarkAblationRatioBalanceOff(b *testing.B) { benchRatioBalance(b, false) }
func BenchmarkAblationRatioBalanceOn(b *testing.B)  { benchRatioBalance(b, true) }

func benchCacheRows(b *testing.B, rows int) {
	d := ablationSet(b, 1500)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 32), CacheRows: rows}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smo.Solve(d.X, d.Y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCache2Rows(b *testing.B)    { benchCacheRows(b, 2) }
func BenchmarkAblationCache64Rows(b *testing.B)   { benchCacheRows(b, 64) }
func BenchmarkAblationCache1024Rows(b *testing.B) { benchCacheRows(b, 1024) }

// Intra-rank threading (the paper's OpenMP layer): wall-time effect of
// fanning kernel-row fills across goroutines on a row-heavy solve. On a
// single-core host the two variants tie (results stay identical either
// way); the speedup appears on multicore machines.
func benchThreads(b *testing.B, threads int) {
	// Wide features make each kernel row expensive enough to split.
	d, err := data.Generate(data.MixtureSpec{
		Name: "wide", Train: 3000, Test: 0, Features: 512, Clusters: 4,
		Separation: 10, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02,
		Margin: 0.8, Seed: 98,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(1.0 / 1024), CacheRows: 8, Threads: threads, MaxIter: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smo.Solve(d.X, d.Y, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreads1(b *testing.B) { benchThreads(b, 1) }
func BenchmarkAblationThreads4(b *testing.B) { benchThreads(b, 4) }
