package casvm

// One benchmark per paper table and figure. Each bench drives the same
// runner that cmd/casvm-bench uses, at a reduced dataset scale so the suite
// finishes quickly; run the command with -scale 1 for paper-size numbers:
//
//	go test -bench=. -benchmem
//	go run ./cmd/casvm-bench -exp all            # full-size reports
//
// Component micro-benchmarks (SMO iteration, kernel rows, allreduce,
// partitioners) live in bench_components_test.go.

import (
	"io"
	"testing"

	"casvm/internal/expt"
)

// benchConfig is the reduced-scale configuration used by the per-table
// benchmarks.
func benchConfig() expt.Config {
	return expt.Config{Out: io.Discard, Scale: 0.15, P: 8, MaxP: 16}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := expt.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable03_Iterations(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable04_Isoefficiency(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable05_CascadeProfile(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable06_FCFSLoad(b *testing.B)          { benchExperiment(b, "table6") }
func BenchmarkTable07_FCFSRatios(b *testing.B)        { benchExperiment(b, "table7") }
func BenchmarkTable08_RatioBalanced(b *testing.B)     { benchExperiment(b, "table8") }
func BenchmarkTable09_BalancedLoad(b *testing.B)      { benchExperiment(b, "table9") }
func BenchmarkTable10_CommVolume(b *testing.B)        { benchExperiment(b, "table10") }
func BenchmarkTable11_CommEfficiency(b *testing.B)    { benchExperiment(b, "table11") }
func BenchmarkTable12_Datasets(b *testing.B)          { benchExperiment(b, "table12") }
func BenchmarkTable13_Adult(b *testing.B)             { benchExperiment(b, "table13") }
func BenchmarkTable14_Face(b *testing.B)              { benchExperiment(b, "table14") }
func BenchmarkTable15_Gisette(b *testing.B)           { benchExperiment(b, "table15") }
func BenchmarkTable16_Ijcnn(b *testing.B)             { benchExperiment(b, "table16") }
func BenchmarkTable17_Usps(b *testing.B)              { benchExperiment(b, "table17") }
func BenchmarkTable18_Webspam(b *testing.B)           { benchExperiment(b, "table18") }
func BenchmarkTable19_StrongScalingTime(b *testing.B) { benchExperiment(b, "table19") }
func BenchmarkTable20_StrongScalingEff(b *testing.B)  { benchExperiment(b, "table20") }
func BenchmarkTable21_WeakScalingTime(b *testing.B)   { benchExperiment(b, "table21") }
func BenchmarkTable22_WeakScalingEff(b *testing.B)    { benchExperiment(b, "table22") }
func BenchmarkFig05_PartitionSizes(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig07_LoadBalance(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig08_CommPattern(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig09_CommRatio(b *testing.B)           { benchExperiment(b, "fig9") }
