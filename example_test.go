package casvm_test

import (
	"fmt"

	"casvm"
)

// Train CA-SVM (RA-CA) on a small synthetic problem and classify.
func ExampleTrain() {
	ds, err := casvm.GenerateDataset(casvm.MixtureSpec{
		Name: "demo", Train: 400, Test: 100, Features: 4, Clusters: 2,
		Separation: 8, Noise: 1, PosFrac: []float64{0.5}, Margin: 0.5, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	p := casvm.DefaultParams(casvm.MethodRACA, 4)
	p.Kernel = casvm.RBF(0.125)
	out, err := casvm.Train(ds.X, ds.Y, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("models:", out.Set.P())
	fmt.Println("training network bytes:", out.Stats.CommBytes)
	fmt.Println("accuracy ≥ 0.9:", out.Set.Accuracy(ds.TestX, ds.TestY) >= 0.9)
	// Output:
	// models: 4
	// training network bytes: 0
	// accuracy ≥ 0.9: true
}

// Compare two methods on the same dataset.
func ExampleTrainDataset() {
	ds, entry, err := casvm.LoadDataset("toy", 0.5)
	if err != nil {
		panic(err)
	}
	for _, m := range []casvm.Method{casvm.MethodDisSMO, casvm.MethodRACA} {
		p := casvm.DefaultParams(m, 4)
		p.Kernel = casvm.RBF(entry.GammaOrDefault())
		out, _, err := casvm.TrainDataset(ds, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s zero-comm: %v\n", m, out.Stats.CommBytes == 0)
	}
	// Output:
	// dissmo zero-comm: false
	// ra-ca zero-comm: true
}

// K-class problems reduce to independent binary CA-SVMs (§II-A).
func ExampleTrainMulticlass() {
	trainX, trainY, testX, testY, err := casvm.GenerateMulticlassDataset(casvm.MixtureSpec{
		Name: "mc", Train: 300, Test: 100, Features: 4, Clusters: 3,
		Separation: 9, Noise: 1, Seed: 3,
	}, 3)
	if err != nil {
		panic(err)
	}
	p := casvm.DefaultParams(casvm.MethodRACA, 2)
	p.Kernel = casvm.RBF(0.125)
	m, err := casvm.TrainMulticlass(trainX, trainY, p, casvm.OneVsRest)
	if err != nil {
		panic(err)
	}
	fmt.Println("binary machines:", m.Machines())
	fmt.Println("accuracy ≥ 0.9:", m.Accuracy(testX, testY) >= 0.9)
	// Output:
	// binary machines: 3
	// accuracy ≥ 0.9: true
}
