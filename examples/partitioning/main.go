// Walk through the paper's partitioning algorithms on a small 2-D dataset
// (the Figures 4–6 story): plain K-means (imbalanced), FCFS (Alg 3),
// balanced K-means (Alg 5) and random averaging, printing cluster sizes and
// centers.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"casvm"
)

func main() {
	// Two dense blobs of very different size — the shape that breaks plain
	// K-means balancing.
	ds, err := casvm.GenerateDataset(casvm.MixtureSpec{
		Name: "walkthrough", Train: 240, Test: 0, Features: 2, Clusters: 2,
		Separation: 8, Noise: 0.8, PosFrac: []float64{0.5}, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	const p = 4

	for _, method := range []casvm.Method{casvm.MethodCPSVM, casvm.MethodFCFSCA,
		casvm.MethodBKMCA, casvm.MethodRACA} {
		params := casvm.DefaultParams(method, p)
		params.Kernel = casvm.RBF(0.25)
		out, _, err := casvm.TrainDataset(ds, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s partition sizes:", method)
		for _, s := range out.Stats.PartSizes {
			fmt.Printf(" %4d", s)
		}
		fmt.Printf("   (spread %d)", spread(out.Stats.PartSizes))
		if method == casvm.MethodCPSVM {
			fmt.Print("   <- plain K-means: follows the blobs, imbalanced")
		}
		if method == casvm.MethodRACA {
			fmt.Print("   <- random deal: exactly even, no distances computed")
		}
		fmt.Println()
		fmt.Print("         node centers:  ")
		for r := 0; r < out.Set.P(); r++ {
			fmt.Printf(" (%+.1f,%+.1f)", out.Set.Centers.At(r, 0), out.Set.Centers.At(r, 1))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("FCFS (Alg 3) and balanced K-means (Alg 5) cap every node at ⌈m/P⌉")
	fmt.Println("by construction; prediction routes each query to its nearest center.")
}

func spread(sizes []int) int {
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return max - min
}
