// Compare all eight training methods head-to-head on one dataset — the
// user-facing version of the paper's Tables XIII–XVIII.
//
//	go run ./examples/methodcompare            # webspam-like workload
//	go run ./examples/methodcompare usps 0.5   # another dataset, half scale
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"casvm"
)

func main() {
	name := "webspam"
	scale := 1.0
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		s, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatal(err)
		}
		scale = s
	}
	ds, entry, err := casvm.LoadDataset(name, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset=%s m=%d n=%d sparse=%v, 8 simulated nodes\n\n",
		name, ds.M(), ds.Features(), ds.X.Sparse())
	fmt.Printf("%-10s %9s %11s %12s %10s %12s\n",
		"method", "accuracy", "iterations", "virtual-time", "speedup", "comm-bytes")

	var base float64
	for _, m := range casvm.Methods() {
		params := casvm.DefaultParams(m, 8)
		params.C = entry.C
		params.Kernel = casvm.RBF(entry.GammaOrDefault())
		out, acc, err := casvm.TrainDataset(ds, params)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		if m == casvm.MethodDisSMO {
			base = out.Stats.TotalSec
		}
		speedup := "-"
		if base > 0 && out.Stats.TotalSec > 0 {
			speedup = fmt.Sprintf("%.2fx", base/out.Stats.TotalSec)
		}
		fmt.Printf("%-10s %8.1f%% %11d %11.4fs %10s %12d\n",
			m, 100*acc, out.Stats.Iters, out.Stats.TotalSec, speedup, out.Stats.CommBytes)
	}
	fmt.Println("\nThe three CA-SVM variants (bkm-ca, fcfs-ca, ra-ca) avoid the")
	fmt.Println("reduction tree entirely; ra-ca moves zero bytes during training.")
}
