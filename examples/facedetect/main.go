// Face detection with heavy class imbalance: the workload behind the
// paper's Tables VI–IX. Plain FCFS partitioning balances data volume but
// not load (one node hoards the positives and becomes the straggler);
// ratio-balanced FCFS fixes it.
//
//	go run ./examples/facedetect
package main

import (
	"fmt"
	"log"

	"casvm"
)

func main() {
	ds, entry, err := casvm.LoadDataset("face", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("face-like dataset: %d samples, %.1f%% positive (detection targets)\n\n",
		ds.M(), 100*ds.PosFrac())

	for _, ratio := range []bool{false, true} {
		params := casvm.DefaultParams(casvm.MethodFCFSCA, 8)
		params.Kernel = casvm.RBF(entry.GammaOrDefault())
		params.RatioBalanced = ratio

		out, acc, err := casvm.TrainDataset(ds, params)
		if err != nil {
			log.Fatal(err)
		}
		st := out.Stats
		label := "plain FCFS (data-balanced only)"
		if ratio {
			label = "ratio-balanced FCFS (data + class balanced)"
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Printf("%-12s", "node:")
		for r := 0; r < st.P; r++ {
			fmt.Printf(" %7d", r)
		}
		fmt.Printf("\n%-12s", "samples:")
		for _, s := range st.PartSizes {
			fmt.Printf(" %7d", s)
		}
		fmt.Printf("\n%-12s", "positives:")
		for _, s := range st.NodePos {
			fmt.Printf(" %7d", s)
		}
		fmt.Printf("\n%-12s", "iterations:")
		for _, s := range st.NodeIters {
			fmt.Printf(" %7d", s)
		}
		fmt.Printf("\n%-12s", "time (s):")
		for _, t := range st.NodeTrainSec {
			fmt.Printf(" %7.3f", t)
		}
		min, max := st.NodeTrainSec[0], st.NodeTrainSec[0]
		for _, t := range st.NodeTrainSec {
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		fmt.Printf("\nslowest/fastest node: %.1fx   accuracy: %.2f%%\n\n", max/min, 100*acc)
	}
	fmt.Println("Ratio balancing equalises per-node positives, which equalises SV")
	fmt.Println("counts, iterations and therefore time — the Table IX result.")
}
