// Quickstart: train a communication-avoiding SVM (RA-CA) on the ijcnn-like
// dataset, evaluate on the held-out split, and round-trip the model file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"casvm"
)

func main() {
	// 1. Load a benchmark dataset (synthetic stand-in for ijcnn, see
	// DESIGN.md). Scale 1.0 is the registered size: 4000 train samples.
	ds, entry, err := casvm.LoadDataset("ijcnn", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d test samples, %d features, %.1f%% positive\n",
		ds.Name, ds.M(), ds.TestX.Rows(), ds.Features(), 100*ds.PosFrac())

	// 2. Configure CA-SVM (the RA-CA variant) across 8 simulated nodes.
	params := casvm.DefaultParams(casvm.MethodRACA, 8)
	params.Kernel = casvm.RBF(entry.GammaOrDefault())

	// 3. Train. Each node trains an independent SVM on its resident block;
	// no bytes cross the (simulated) network.
	out, acc, err := casvm.TrainDataset(ds, params)
	if err != nil {
		log.Fatal(err)
	}
	st := out.Stats
	fmt.Printf("trained in %.4f virtual seconds (%v wall)\n", st.TotalSec, st.Wall)
	fmt.Printf("iterations=%d  support vectors=%d  network bytes=%d\n",
		st.Iters, st.SVs, st.CommBytes)
	fmt.Printf("held-out accuracy: %.2f%%\n", 100*acc)

	// 4. Persist the model set and use it again.
	path := filepath.Join(os.TempDir(), "quickstart.model")
	if err := casvm.SaveModelSet(path, out.Set); err != nil {
		log.Fatal(err)
	}
	set, err := casvm.LoadModelSet(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded model predicts test sample 0 as %+.0f (label %+.0f)\n",
		set.Predict(ds.TestX, 0), ds.TestY[0])
}
