// Genuinely distributed CA-SVM over TCP: one OS process per node, the
// casvm2 placement of the paper. Each rank generates its resident data
// shard, trains its local SVM with zero training communication, then the
// model files are gathered at rank 0, which evaluates routed prediction on
// a shared test set.
//
// Run everything locally with one command (the launcher forks P workers):
//
//	go run ./examples/distributed -launch -p 4
//
// Fault-tolerance demo — kill a worker mid-run and watch the survivors
// finish with the lost shard reported:
//
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -kill-after 1s
//
// Elastic recovery — same crash, but the run completes with every shard:
//
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -recover respawn
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -recover shrink
//
// Under "respawn" the launcher forks a fresh process for the dead rank; the
// new incarnation rejoins through rank 0 alone (tcpmpi Options.Peers), and
// its hello's fresh flag resurrects the connection rank 0 had declared
// dead. Under "shrink" rank 0 re-partitions the lost shard onto itself and
// retrains it locally. Either way the assembled model set is complete.
//
// Workers find each other dynamically: the launcher runs a lease-based
// registrar (the casvm-cluster membership protocol) and forked workers know
// only its address — each one registers, reports the mesh port it reserved,
// and receives its rank plus the full peer table once everyone has checked
// in. No static rank->address table exists anywhere.
//
// Deterministic reconnect timing: -chaos-seed N derives every worker's
// reconnect backoff jitter from the seeded fault-schedule RNG
// (faults.Schedule.JitterFunc), so a replayed crash scenario reproduces the
// same re-dial timing instead of drawing from the global RNG.
//
// Fleet telemetry — every worker streams its trace spans, flow edges and
// metrics to the launcher over its registration lease; the launcher probes
// each lease's clock offset, rebases the spans onto one timeline, and
// writes a single merged Chrome trace (cross-process Perfetto arrows
// included) that casvm-profile analyzes end-to-end:
//
//	go run ./examples/distributed -launch -p 4 -fleet-trace merged.trace
//	go run ./cmd/casvm-profile merged.trace
//
// Straggler demo — slow one rank with an injected delay (driven through
// the internal/faults machinery) and watch the launcher's online detector
// flag it against the gang median:
//
//	go run ./examples/distributed -launch -p 4 -fleet-trace merged.trace \
//	    -straggle-rank 2 -straggle-sec 2s
//
// Cluster-executor demo — the same machinery productized: an elastic
// coordinator (internal/cluster) gang-schedules a Remote job onto real
// executor worker processes, each training its shard ranks in its own
// process over a tcpmpi mesh bootstrapped through the lease protocol. The
// demo runs the job twice — fault-free, then with a kill -9 on a worker
// mid-epoch — and asserts both land on the same ModelHash:
//
//	go run ./examples/distributed -cluster -p 2
//
// Or place workers by hand (possibly on different hosts):
//
//	go run ./examples/distributed -rank 0 -peers host0:7070,host1:7071
//	go run ./examples/distributed -rank 1 -peers host0:7070,host1:7071
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"casvm"
	"casvm/internal/cluster"
	"casvm/internal/faults"
	"casvm/internal/model"
	"casvm/internal/tcpmpi"
	"casvm/internal/telemetry/fleet"
	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

// fleetJob names the telemetry stream every worker reports under.
const fleetJob = "distributed"

// Control tags: tagModel gathers model files at rank 0 over the mesh;
// tagMeshAddr and tagMeshPeers run rank discovery over registration leases.
const (
	tagModel     = 77
	tagMeshAddr  = 78 // worker -> registrar: "host:port" the worker reserved
	tagMeshPeers = 79 // registrar -> worker: "rank|addr0,addr1,..."
)

func main() {
	var (
		launch    = flag.Bool("launch", false, "fork -p worker processes on localhost")
		p         = flag.Int("p", 4, "world size (with -launch)")
		killRank  = flag.Int("kill-rank", -1, "rank to kill mid-run (with -launch)")
		killAfter = flag.Duration("kill-after", time.Second, "how long the killed rank lives (with -kill-rank)")
		policy    = flag.String("recover", "off", "recovery for the killed rank: off, respawn (refork it; it rejoins via rank 0), shrink (rank 0 retrains the lost shard)")
		chaosSeed = flag.Int64("chaos-seed", 0, "seed reconnect backoff jitter from the fault-schedule RNG for reproducible re-dial timing (0 = global RNG)")
		coord     = flag.String("coordinator", "", "registrar address for dynamic rank discovery (worker mode)")
		rank      = flag.Int("rank", -1, "this worker's rank (static worker mode)")
		peers     = flag.String("peers", "", "comma-separated rank addresses (static worker mode)")
		dieAfter  = flag.Duration("die-after", 0, "crash this worker before the model gather (worker mode)")
		dieIfRank = flag.Int("die-if-rank", -1, "crash only if discovery assigned this rank (worker mode; pairs with -die-after)")
		rejoin    = flag.Bool("rejoin", false, "this worker is a respawned incarnation: dial only rank 0 (worker mode)")

		fleetTrace   = flag.String("fleet-trace", "", "with -launch: collect every worker's telemetry over its lease and write one merged Chrome trace here")
		straggleRank = flag.Int("straggle-rank", -1, "with -launch: inject a training delay into this rank so the straggler detector flags it")
		straggleSec  = flag.Duration("straggle-sec", 2*time.Second, "how long the straggling rank is delayed (with -straggle-rank)")
		fleetOn      = flag.Bool("fleet", false, "worker mode: stream trace spans and metrics to the registrar over the lease")
		stragIfRank  = flag.Int("straggle-if-rank", -1, "worker mode: straggle only if discovery assigned this rank")

		clusterDemo = flag.Bool("cluster", false, "run the cluster-executor demo: a coordinator gang-schedules a Remote job onto -p forked executor processes, kill -9s one mid-epoch, and verifies the recovered ModelHash")
		execAddr    = flag.String("executor", "", "executor worker mode: register with the cluster coordinator at this address and train assigned shard ranks in-process")
		execDelay   = flag.Duration("exec-delay", 0, "executor worker mode: per-iteration training delay (stretches solves so deaths land mid-epoch)")
	)
	flag.Parse()

	if *policy != "off" && *policy != "respawn" && *policy != "shrink" {
		log.Fatalf("unknown -recover policy %q (want off, respawn or shrink)", *policy)
	}
	switch {
	case *clusterDemo:
		runClusterDemo(*p)
	case *execAddr != "":
		if err := cluster.RunExecutor(context.Background(), *execAddr, cluster.ExecutorOptions{
			Fleet: true, IterDelay: *execDelay, Logf: log.Printf,
		}); err != nil {
			log.Fatalf("executor: %v", err)
		}
	case *launch:
		launchWorkers(launchOpts{
			p: *p, killRank: *killRank, killAfter: *killAfter, policy: *policy,
			chaosSeed: *chaosSeed, fleetTrace: *fleetTrace,
			straggleRank: *straggleRank, straggleSec: *straggleSec,
		})
	case *coord != "":
		r, addrs, lease, err := discoverWorld(*coord)
		if err != nil {
			log.Fatalf("discovery: %v", err)
		}
		defer lease.Close()
		o := workerOpts{
			dieAfter: *dieAfter, policy: *policy, rejoin: *rejoin,
			chaosSeed: *chaosSeed, lease: lease, fleet: *fleetOn,
		}
		if *dieIfRank >= 0 && r != *dieIfRank {
			o.dieAfter = 0
		}
		if *stragIfRank >= 0 && r == *stragIfRank {
			o.straggleSec = *straggleSec
		}
		runWorker(r, addrs, o)
	case *rank >= 0 && *peers != "":
		runWorker(*rank, strings.Split(*peers, ","), workerOpts{
			dieAfter: *dieAfter, policy: *policy, rejoin: *rejoin, chaosSeed: *chaosSeed,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// discoverWorld joins the launcher's registrar, reports the mesh address
// this worker reserved, and blocks until every rank has checked in and the
// registrar answers with this worker's rank and the full peer table. The
// returned lease stays open for the run — its heartbeats are the worker's
// liveness signal.
func discoverWorld(coordAddr string) (int, []string, *tcpmpi.Lease, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, nil, nil, err
	}
	meshAddr := ln.Addr().String()
	ln.Close() // reserved; tcpmpi re-binds it as this rank's mesh listener

	lease, err := tcpmpi.Register(coordAddr, tcpmpi.RegisterOptions{})
	if err != nil {
		return 0, nil, nil, err
	}
	if err := lease.Send(tagMeshAddr, []byte(meshAddr)); err != nil {
		lease.Close()
		return 0, nil, nil, err
	}
	b, err := lease.Recv(tagMeshPeers, 30*time.Second)
	if err != nil {
		lease.Close()
		return 0, nil, nil, fmt.Errorf("waiting for peer table: %w", err)
	}
	rankStr, peerList, ok := strings.Cut(string(b), "|")
	if !ok {
		lease.Close()
		return 0, nil, nil, fmt.Errorf("malformed peer table %q", b)
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		lease.Close()
		return 0, nil, nil, err
	}
	fmt.Printf("rank %d: discovered world of %d via registrar (lease %d)\n",
		rank, len(strings.Split(peerList, ",")), lease.ID())
	return rank, strings.Split(peerList, ","), lease, nil
}

// meshDirectory is the launcher-side discovery service: it collects each
// registered worker's reserved mesh address, assigns ranks in check-in
// order once all p have reported, and answers every worker with its rank
// and the full peer table.
type meshDirectory struct {
	mu    sync.Mutex
	p     int
	reg   *tcpmpi.Registrar
	order []int          // lease ids, in mesh-addr check-in order
	addrs map[int]string // lease id -> reserved mesh address
	ready chan []string  // closed with the rank-ordered peer table
}

func (d *meshDirectory) onFrame(w tcpmpi.WorkerInfo, tag int, payload []byte) {
	if tag != tagMeshAddr {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.addrs[w.ID]; dup || len(d.order) >= d.p {
		return
	}
	d.addrs[w.ID] = string(payload)
	d.order = append(d.order, w.ID)
	if len(d.order) < d.p {
		return
	}
	peers := make([]string, d.p)
	for r, id := range d.order {
		peers[r] = d.addrs[id]
	}
	table := strings.Join(peers, ",")
	for r, id := range d.order {
		if err := d.reg.Send(id, tagMeshPeers, []byte(fmt.Sprintf("%d|%s", r, table))); err != nil {
			log.Printf("launcher: peer table for rank %d undeliverable: %v", r, err)
		}
	}
	d.ready <- peers
}

// launchOpts bundles the launcher's scenario knobs.
type launchOpts struct {
	p            int
	killRank     int
	killAfter    time.Duration
	policy       string
	chaosSeed    int64
	fleetTrace   string // merged-trace output path ("" = fleet plane off)
	straggleRank int
	straggleSec  time.Duration
}

// launchWorkers starts the discovery registrar, forks one worker per rank
// knowing only the registrar's address, and streams their output. Ranks
// are assigned by check-in order, so a planned kill targets "whichever
// worker became rank killRank" via -die-if-rank. Under the respawn policy
// the launcher is also the supervisor: it reforks the dead rank as a fresh
// incarnation that rejoins through rank 0 using the discovered peer table.
// With fleetTrace set the launcher is also the telemetry coordinator: a
// fleet.Collector rides the same registrar, probes each worker's clock
// over its lease, and writes the merged trace once every rank checks out.
func launchWorkers(lo launchOpts) {
	p, killRank, killAfter, policy, chaosSeed :=
		lo.p, lo.killRank, lo.killAfter, lo.policy, lo.chaosSeed
	start := time.Now()
	stamp := func(format string, a ...any) {
		fmt.Printf("[%6.2fs] "+format+"\n", append([]any{time.Since(start).Seconds()}, a...)...)
	}
	var col *fleet.Collector
	if lo.fleetTrace != "" {
		// MinSec drops below the default floor because the toy shards
		// train in well under a millisecond.
		col = fleet.New(fleet.Config{
			Metrics:   trace.NewRegistry(),
			Straggler: fleet.StragglerConfig{MinSec: 1e-6},
		})
	}
	dir := &meshDirectory{p: p, addrs: map[int]string{}, ready: make(chan []string, 1)}
	reg, err := tcpmpi.NewRegistrar("127.0.0.1:0", tcpmpi.RegistrarConfig{
		OnFrame: func(w tcpmpi.WorkerInfo, tag int, payload []byte) {
			if col != nil && col.HandleFrame(w, tag, payload) {
				return
			}
			dir.onFrame(w, tag, payload)
		},
		OnExpire: func(w tcpmpi.WorkerInfo) {
			stamp("registrar: lease %d expired (worker death detected by silence)", w.ID)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()
	dir.reg = reg
	if col != nil {
		col.AttachRegistrar(reg)
	}
	fmt.Printf("launching %d workers against registrar %s (no static peer table)\n", p, reg.Addr())
	if killRank >= 0 {
		stamp("rank %d will be killed after %v (recovery policy: %s)", killRank, killAfter, policy)
	}
	if lo.straggleRank >= 0 {
		stamp("rank %d will straggle by %v (injected training delay)", lo.straggleRank, lo.straggleSec)
	}

	type exit struct {
		slot, incarnation int
		err               error
		out               *bytes.Buffer
	}
	exits := make(chan exit, p+1)
	common := []string{"-recover", policy}
	if chaosSeed != 0 {
		common = append(common, "-chaos-seed", fmt.Sprint(chaosSeed))
	}
	if lo.fleetTrace != "" {
		common = append(common, "-fleet")
	}
	spawnFresh := func(slot int) {
		args := append([]string{"-coordinator", reg.Addr()}, common...)
		if killRank >= 0 {
			args = append(args, "-die-if-rank", fmt.Sprint(killRank), "-die-after", killAfter.String())
		}
		if lo.straggleRank >= 0 {
			args = append(args, "-straggle-if-rank", fmt.Sprint(lo.straggleRank), "-straggle-sec", lo.straggleSec.String())
		}
		var out bytes.Buffer
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		go func() { exits <- exit{slot, 1, cmd.Wait(), &out} }()
	}
	spawnRespawn := func(rank int, peers []string) {
		args := append([]string{"-rank", fmt.Sprint(rank), "-peers", strings.Join(peers, ","), "-rejoin"}, common...)
		var out bytes.Buffer
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		go func() { exits <- exit{rank, 2, cmd.Wait(), &out} }()
	}
	for slot := 0; slot < p; slot++ {
		spawnFresh(slot)
	}

	var peers []string
	select {
	case peers = <-dir.ready:
		stamp("discovery complete: ranks assigned by check-in order, peers %v", peers)
	case <-time.After(30 * time.Second):
		log.Fatal("discovery never completed: workers did not all check in")
	}

	remaining := p
	failed := false
	killHandled := false
	for remaining > 0 {
		e := <-exits
		if e.err != nil && e.incarnation == 1 && killRank >= 0 && !killHandled {
			killHandled = true
			stamp("rank %d's worker died as planned: %v", killRank, e.err)
			fmt.Printf("--- worker slot %d (incarnation 1) ---\n%s", e.slot, e.out.String())
			if policy == "respawn" {
				stamp("respawning rank %d — the fresh incarnation rejoins via rank 0", killRank)
				spawnRespawn(killRank, peers) // the respawn owns this slot now
				continue
			}
			stamp("policy %q: no respawn; the survivors own shard %d now", policy, killRank)
			remaining--
			continue
		}
		if e.err != nil {
			failed = true
			stamp("worker slot %d failed: %v", e.slot, e.err)
		} else if e.incarnation > 1 {
			stamp("respawned rank %d finished", e.slot)
		}
		fmt.Printf("--- worker slot %d (incarnation %d) ---\n%s", e.slot, e.incarnation, e.out.String())
		remaining--
	}
	stamp("all workers accounted for")
	if col != nil {
		if err := writeMergedTrace(col, lo, stamp); err != nil {
			stamp("fleet trace: %v", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runClusterDemo is the remote-execution walkthrough: a cluster
// coordinator gang-schedules a Remote RA-CA job onto p forked executor
// processes (each solving its shard ranks in its own process, checkpoints
// streaming back over the lease), then repeats the run with a kill -9 on
// one executor mid-epoch. The coordinator re-gangs the survivors from the
// streamed checkpoints, and the demo fails unless the recovered run lands
// on the exact fault-free ModelHash.
func runClusterDemo(p int) {
	start := time.Now()
	stamp := func(format string, a ...any) {
		fmt.Printf("[%6.2fs] "+format+"\n", append([]any{time.Since(start).Seconds()}, a...)...)
	}
	coord, err := cluster.New("127.0.0.1:0", cluster.Config{
		LeaseTTL: 2 * time.Second,
		Metrics:  trace.NewRegistry(),
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	stamp("coordinator listening on %s", coord.Addr())

	var workers []*exec.Cmd
	spawnExecutor := func() {
		cmd := exec.Command(os.Args[0], "-executor", coord.Addr(), "-exec-delay", "2ms")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, cmd)
	}
	defer func() {
		for _, cmd := range workers {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	}()
	for i := 0; i < p; i++ {
		spawnExecutor()
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(coord.Workers()) < p {
		if time.Now().After(deadline) {
			log.Fatalf("only %d/%d executors registered", len(coord.Workers()), p)
		}
		time.Sleep(20 * time.Millisecond)
	}
	stamp("%d executor processes registered", p)

	spec := cluster.JobSpec{
		ID: "demo-ref", Dataset: "toy", Scale: 0.25,
		Method: "ra-ca", P: p, Seed: 1,
		Policy: "shrink", CheckpointEvery: 8, Remote: true,
	}
	stamp("fault-free reference: submitting Remote job (each rank solves in its worker's process)")
	ref := runDemoJob(coord, spec, stamp)
	stamp("reference hash %s (%d iterations, %d SVs)", ref.ModelHash, ref.Iters, ref.SVs)

	spec.ID = "demo-kill"
	stamp("kill run: same job, but a worker dies mid-epoch")
	j, err := coord.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		pr := j.Remote()
		if len(pr.CkptIters) >= p && len(pr.DoneRanks) == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("no mid-epoch window: progress %+v", pr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim := workers[len(workers)-1]
	stamp("kill -9 executor pid %d (every rank has streamed a checkpoint; none has finished)", victim.Process.Pid)
	if err := victim.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	go victim.Wait()
	<-j.Done()
	res := j.Result()
	if res.Err != "" {
		log.Fatalf("kill run failed: %s", res.Err)
	}
	stamp("recovered over %d generations (%d recover(ies), lost ranks %v, virtual time %.4fs)",
		res.Generations, res.Recoveries, res.LostRanks, res.TotalSec)
	if res.ModelHash != ref.ModelHash {
		log.Fatalf("recovered hash %s != fault-free %s", res.ModelHash, ref.ModelHash)
	}
	stamp("recovered hash %s == fault-free hash — kill -9 cost generations, not bits", res.ModelHash)
}

// runDemoJob submits one Remote job and blocks for its result.
func runDemoJob(coord *cluster.Coordinator, spec cluster.JobSpec, stamp func(string, ...any)) *cluster.JobResult {
	j, err := coord.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	<-j.Done()
	res := j.Result()
	if res.Err != "" {
		log.Fatalf("job %s failed: %s", spec.ID, res.Err)
	}
	return res
}

// writeMergedTrace waits for every rank's telemetry stream to complete,
// writes the offset-rebased merged Chrome trace, prints any straggler
// verdicts, and summarizes the cross-process critical path inline.
func writeMergedTrace(col *fleet.Collector, lo launchOpts, stamp func(string, ...any)) error {
	deadline := time.Now().Add(30 * time.Second)
	for !col.StreamComplete(fleetJob) {
		if time.Now().After(deadline) {
			// A killed rank never checks out; merge whatever arrived.
			stamp("fleet: not every rank checked out; merging what arrived")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	f, err := os.Create(lo.fleetTrace)
	if err != nil {
		return err
	}
	err = col.WriteMergedTrace(fleetJob, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	stamp("fleet: merged trace written to %s (open in Perfetto or run casvm-profile on it)", lo.fleetTrace)

	if events, _ := col.Events(0); len(events) > 0 {
		for _, e := range events {
			stamp("fleet: STRAGGLER rank %d epoch %d: %.3fs vs gang median %.3fs (%.1fx)",
				e.Rank, e.Epoch, e.Sec, e.MedianSec, e.Factor)
		}
	} else if lo.straggleRank >= 0 {
		stamp("fleet: no straggler flagged (unexpected — a %v delay was injected)", lo.straggleSec)
	}

	rf, err := os.Open(lo.fleetTrace)
	if err != nil {
		return err
	}
	extra, err := trace.ReadTraceExtra(rf)
	rf.Close()
	if err != nil {
		return fmt.Errorf("re-reading merged trace: %w", err)
	}
	a, err := critpath.Analyze(critpath.FromExtra(extra))
	if err != nil {
		return fmt.Errorf("analyzing merged trace: %w", err)
	}
	stamp("fleet: critical path %.3fs ending on rank %d (%d cross-rank hops): comp %.3fs, latency %.3fs, wait %.3fs",
		a.MakespanSec, a.EndRank, a.Hops, a.CompSec, a.LatencySec, a.WaitSec)
	return nil
}

// shardRows returns the deterministic row range of rank r's resident shard
// of an m-sample dataset split over p ranks.
func shardRows(m, p, r int) []int {
	per := m / p
	lo, hi := r*per, (r+1)*per
	if r == p-1 {
		hi = m
	}
	rows := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, i)
	}
	return rows
}

// trainShard trains rank r's resident shard on a single-rank in-process
// world and returns the serialized model file plus the run stats.
func trainShard(ds *casvm.Dataset, entry casvm.DatasetEntry, r, p int) ([]byte, casvm.Stats, error) {
	rows := shardRows(ds.M(), p, r)
	localX := ds.X.Subset(rows)
	localY := make([]float64, len(rows))
	for k, i := range rows {
		localY[k] = ds.Y[i]
	}
	params := casvm.DefaultParams(casvm.MethodRACA, 1)
	params.Kernel = casvm.RBF(entry.GammaOrDefault())
	local := &casvm.Dataset{Name: "shard", X: localX, Y: localY}
	out, _, err := casvm.TrainDataset(local, params)
	if err != nil {
		return nil, casvm.Stats{}, err
	}
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, out.Set); err != nil {
		return nil, casvm.Stats{}, err
	}
	return buf.Bytes(), out.Stats, nil
}

// workerOpts bundles one worker's scenario knobs. lease is the discovery
// lease (nil in static mode); fleet telemetry needs it as its transport.
type workerOpts struct {
	dieAfter    time.Duration
	policy      string
	rejoin      bool
	chaosSeed   int64
	lease       *tcpmpi.Lease
	fleet       bool
	straggleSec time.Duration // > 0: delay training by this much
}

// runWorker is one rank: local shard → local training → model gather. A
// non-zero dieAfter crashes the worker before it ships its model,
// simulating a mid-run node death. A rejoining worker is a respawned
// incarnation: it dials only rank 0 (tcpmpi Options.Peers) instead of
// paying the full-mesh handshake, and its fresh-incarnation hello
// resurrects the connection rank 0 had given up on. With fleet telemetry
// on, the worker records its run on a local timeline (training span via
// the recorder, cross-process flow edges via Options.Timeline) and ships
// it to the launcher over the lease before exiting.
func runWorker(rank int, addrs []string, o workerOpts) {
	start := time.Now()
	p := len(addrs)
	dieAfter, policy, rejoin, chaosSeed := o.dieAfter, o.policy, o.rejoin, o.chaosSeed

	var tl *trace.Timeline
	var rep *fleet.Reporter
	if o.fleet && o.lease != nil {
		r, err := fleet.NewReporter(o.lease, fleetJob, rank, p)
		if err != nil {
			fmt.Printf("rank %d: fleet hello failed (%v); telemetry off\n", rank, err)
		} else {
			rep = r
			tl = trace.NewTimeline(p)
		}
	}
	defer func() {
		if rep == nil {
			return
		}
		if err := rep.ShipTimeline(tl, 10*time.Second); err != nil {
			fmt.Printf("rank %d: fleet ship failed: %v\n", rank, err)
			return
		}
		_ = rep.Goodbye()
	}()
	// Short heartbeats and a small reconnect budget so a dead peer is
	// detected (and, failing a re-dial, declared dead) in a few seconds
	// rather than the production default.
	opt := tcpmpi.Options{
		HeartbeatInterval:   500 * time.Millisecond,
		HeartbeatTimeout:    2 * time.Second,
		ReconnectAttempts:   2,
		ReconnectBackoffMax: 500 * time.Millisecond,
	}
	if chaosSeed != 0 {
		// Reproducible re-dial timing: backoff jitter comes from the
		// fault-schedule RNG keyed by (seed, rank), not the global RNG.
		opt.ReconnectJitter = faults.Schedule{Seed: chaosSeed}.JitterFunc(rank)
	}
	if rejoin && rank != 0 {
		opt.Peers = []int{0}
	}
	opt.Timeline = tl // nil-safe: no recording without fleet telemetry
	comm, err := tcpmpi.DialOptions(rank, addrs, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer comm.Close()
	if rejoin {
		fmt.Printf("rank %d: rejoined the world (fresh incarnation, coordinator-only mesh)\n", rank)
	}

	// casvm2 placement: every rank generates its own resident shard of the
	// shared dataset deterministically — no data distribution traffic, and
	// a respawned incarnation rebuilds the exact same shard.
	ds, entry, err := casvm.LoadDataset("toy", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	trainStart := time.Now()
	raw, st, err := trainShard(ds, entry, rank, p)
	if err != nil {
		log.Fatal(err)
	}
	if o.straggleSec > 0 {
		// The injected slowdown rides the faults machinery: a DelayProb=1
		// plan yields a deterministic delay verdict, realized here as wall
		// time inside the training span so the detector sees it.
		inj := faults.New(faults.Plan{Seed: chaosSeed, DelayProb: 1, DelaySec: o.straggleSec.Seconds()})
		v := inj.Intercept(rank, rank, 0, nil)
		fmt.Printf("rank %d: straggling — injected %.2gs training delay\n", rank, v.DelaySec)
		time.Sleep(time.Duration(v.DelaySec * float64(time.Second)))
	}
	trainDur := time.Since(trainStart)
	if tl != nil {
		tl.Rank(rank).AddEvent(trace.Event{
			Name: "train-shard", Cat: trace.CatSolver,
			WallStartNs: trainStart.UnixNano(), WallDurNs: trainDur.Nanoseconds(),
		})
	}
	if rep != nil {
		_ = rep.ReportEpoch(0, trainDur)
		mreg := trace.NewRegistry()
		mreg.Counter("casvm_shard_iterations_total", "local-shard training iterations").Add(int64(st.Iters))
		mreg.Counter("casvm_shard_svs_total", "support vectors in the local shard model").Add(int64(st.SVs))
		_ = rep.ShipMetrics(mreg)
	}
	fmt.Printf("rank %d: trained on %d samples, %d SVs, %d iterations\n",
		rank, len(shardRows(ds.M(), p, rank)), st.SVs, st.Iters)

	if dieAfter > 0 {
		// Injected crash: hold the connection open until the deadline so
		// the death lands mid-run, then exit without shipping the model.
		if lived := time.Since(start); lived < dieAfter {
			time.Sleep(dieAfter - lived)
		}
		fmt.Printf("rank %d: dying now (injected crash before model gather)\n", rank)
		os.Exit(1)
	}

	// Ship the model file (and routing center) to rank 0 — the only
	// communication in the entire run.
	if rank != 0 {
		if err := comm.Send(0, tagModel, raw); err != nil {
			// Root gone: nothing useful left to do, but this worker did
			// its job — don't report a spurious failure.
			fmt.Printf("rank %d: model gather failed (%v), exiting\n", rank, err)
		}
		return
	}

	// Rank 0 collects every shard's model. A rank whose connection dies
	// (and stays down past the reconnect window) is handled per policy:
	// off — its shard is lost and the run degrades; respawn — keep
	// receiving until the supervisor's fresh incarnation delivers; shrink —
	// re-partition the shard onto rank 0 and retrain it here.
	type shard struct {
		rank int
		raw  []byte
	}
	var shards []shard
	var lost []int
	shards = append(shards, shard{rank: 0, raw: raw})
	for src := 1; src < p; src++ {
		raw, err := comm.Recv(src, tagModel)
		if err != nil && policy == "respawn" {
			fmt.Printf("rank 0: shard %d lost (%v); waiting for its respawn\n", src, err)
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				time.Sleep(250 * time.Millisecond)
				if raw, err = comm.Recv(src, tagModel); err == nil {
					fmt.Printf("rank 0: shard %d redelivered by the respawned incarnation\n", src)
					break
				}
			}
		}
		if err != nil && policy == "shrink" {
			fmt.Printf("rank 0: shard %d lost (%v); shrink recovery — retraining it on rank 0\n", src, err)
			var st casvm.Stats
			if raw, st, err = trainShard(ds, entry, src, p); err == nil {
				fmt.Printf("rank 0: shard %d retrained locally (%d SVs, %d iterations)\n", src, st.SVs, st.Iters)
			}
		}
		if err != nil {
			fmt.Printf("rank 0: shard %d lost (%v)\n", src, err)
			lost = append(lost, src)
			continue
		}
		shards = append(shards, shard{rank: src, raw: raw})
	}

	// Assemble the routed model set from the collected shards and evaluate.
	set := &casvm.ModelSet{}
	centerData := make([]float64, 0, len(shards)*ds.Features())
	for _, s := range shards {
		ms, err := model.LoadSet(bytes.NewReader(s.raw))
		if err != nil {
			log.Fatalf("rank %d model: %v", s.rank, err)
		}
		set.Models = append(set.Models, ms.Models[0])
		// Center = mean of the rank's shard (eqn 14), recomputed here
		// from the deterministic shard definition.
		centerData = append(centerData, ds.X.Mean(shardRows(ds.M(), p, s.rank))...)
	}
	set.Centers = newDense(len(shards), ds.Features(), centerData)
	acc := set.Accuracy(ds.TestX, ds.TestY)
	if len(lost) > 0 {
		fmt.Printf("rank 0: completed degraded — lost shard(s) %v, %d/%d model files assembled\n",
			lost, len(shards), p)
	} else if policy != "off" {
		fmt.Printf("rank 0: every shard accounted for (policy %s)\n", policy)
	}
	fmt.Printf("rank 0: assembled %d model files; routed test accuracy %.2f%%\n",
		set.P(), 100*acc)
}

func newDense(m, n int, data []float64) *casvm.Matrix {
	return casvm.NewDenseMatrix(m, n, data)
}
