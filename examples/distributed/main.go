// Genuinely distributed CA-SVM over TCP: one OS process per node, the
// casvm2 placement of the paper. Each rank generates its resident data
// shard, trains its local SVM with zero training communication, then the
// model files are gathered at rank 0, which evaluates routed prediction on
// a shared test set.
//
// Run everything locally with one command (the launcher forks P workers):
//
//	go run ./examples/distributed -launch -p 4
//
// Fault-tolerance demo — kill a worker mid-run and watch the survivors
// finish with the lost shard reported:
//
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -kill-after 1s
//
// Or place workers by hand (possibly on different hosts):
//
//	go run ./examples/distributed -rank 0 -peers host0:7070,host1:7071
//	go run ./examples/distributed -rank 1 -peers host0:7070,host1:7071
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"casvm"
	"casvm/internal/model"
	"casvm/internal/tcpmpi"
)

// tagModel is the user tag for shipping a rank's model file to rank 0.
const tagModel = 77

func main() {
	var (
		launch    = flag.Bool("launch", false, "fork -p worker processes on localhost")
		p         = flag.Int("p", 4, "world size (with -launch)")
		killRank  = flag.Int("kill-rank", -1, "rank to kill mid-run (with -launch)")
		killAfter = flag.Duration("kill-after", time.Second, "how long the killed rank lives (with -kill-rank)")
		rank      = flag.Int("rank", -1, "this worker's rank (worker mode)")
		peers     = flag.String("peers", "", "comma-separated rank addresses (worker mode)")
		dieAfter  = flag.Duration("die-after", 0, "crash this worker before the model gather (worker mode)")
	)
	flag.Parse()

	switch {
	case *launch:
		launchWorkers(*p, *killRank, *killAfter)
	case *rank >= 0 && *peers != "":
		runWorker(*rank, strings.Split(*peers, ","), *dieAfter)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// launchWorkers picks free ports, forks one worker per rank and streams
// their output. When killRank is set, that worker is told to crash after
// killAfter; its death is expected and does not fail the launch.
func launchWorkers(p, killRank int, killAfter time.Duration) {
	addrs := make([]string, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peerList := strings.Join(addrs, ",")
	fmt.Printf("launching %d workers: %s\n", p, peerList)
	if killRank >= 0 {
		fmt.Printf("rank %d will be killed after %v\n", killRank, killAfter)
	}
	procs := make([]*exec.Cmd, p)
	outs := make([]bytes.Buffer, p)
	for r := 0; r < p; r++ {
		args := []string{"-rank", fmt.Sprint(r), "-peers", peerList}
		if r == killRank {
			args = append(args, "-die-after", killAfter.String())
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = &outs[r]
		cmd.Stderr = &outs[r]
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs[r] = cmd
	}
	failed := false
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			if r == killRank {
				fmt.Printf("worker %d died as requested: %v\n", r, err)
			} else {
				failed = true
				fmt.Printf("worker %d failed: %v\n", r, err)
			}
		}
		fmt.Printf("--- worker %d ---\n%s", r, outs[r].String())
	}
	if failed {
		os.Exit(1)
	}
}

// runWorker is one rank: local shard → local training → model gather. A
// non-zero dieAfter crashes the worker before it ships its model,
// simulating a mid-run node death the survivors must tolerate.
func runWorker(rank int, addrs []string, dieAfter time.Duration) {
	start := time.Now()
	p := len(addrs)
	// Short heartbeats so a dead peer is detected in a couple of seconds
	// rather than the production default.
	comm, err := tcpmpi.DialOptions(rank, addrs, tcpmpi.Options{
		HeartbeatInterval: 500 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer comm.Close()

	// casvm2 placement: every rank generates its own resident shard of the
	// shared dataset deterministically — no data distribution traffic.
	ds, entry, err := casvm.LoadDataset("toy", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	per := ds.M() / p
	lo := rank * per
	hi := lo + per
	if rank == p-1 {
		hi = ds.M()
	}
	rows := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, i)
	}
	localX := ds.X.Subset(rows)
	localY := make([]float64, len(rows))
	for k, i := range rows {
		localY[k] = ds.Y[i]
	}

	// Train this node's SVM on a single-rank in-process world — the whole
	// point of CA-SVM is that nodes need not talk during training.
	params := casvm.DefaultParams(casvm.MethodRACA, 1)
	params.Kernel = casvm.RBF(entry.GammaOrDefault())
	local := &casvm.Dataset{Name: "shard", X: localX, Y: localY}
	out, _, err := casvm.TrainDataset(local, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d: trained on %d samples, %d SVs, %d iterations\n",
		rank, localX.Rows(), out.Stats.SVs, out.Stats.Iters)

	if dieAfter > 0 {
		// Injected crash: hold the connection open until the deadline so
		// the death lands mid-run, then exit without shipping the model.
		if lived := time.Since(start); lived < dieAfter {
			time.Sleep(dieAfter - lived)
		}
		fmt.Printf("rank %d: dying now (injected crash before model gather)\n", rank)
		os.Exit(1)
	}

	// Ship the model file (and routing center) to rank 0 — the only
	// communication in the entire run.
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, out.Set); err != nil {
		log.Fatal(err)
	}
	if rank != 0 {
		if err := comm.Send(0, tagModel, buf.Bytes()); err != nil {
			// Root gone: nothing useful left to do, but this worker did
			// its job — don't report a spurious failure.
			fmt.Printf("rank %d: model gather failed (%v), exiting\n", rank, err)
		}
		return
	}

	// Rank 0 collects every shard's model, tolerating dead ranks: a rank
	// whose connection dies (and stays down past the reconnect window)
	// costs its shard, not the run.
	type shard struct {
		rank int
		raw  []byte
	}
	var shards []shard
	var lost []int
	shards = append(shards, shard{rank: 0, raw: buf.Bytes()})
	for src := 1; src < p; src++ {
		raw, err := comm.Recv(src, tagModel)
		if err != nil {
			fmt.Printf("rank 0: shard %d lost (%v)\n", src, err)
			lost = append(lost, src)
			continue
		}
		shards = append(shards, shard{rank: src, raw: raw})
	}

	// Assemble the routed model set from the survivors and evaluate.
	set := &casvm.ModelSet{}
	centerData := make([]float64, 0, len(shards)*ds.Features())
	for _, s := range shards {
		ms, err := model.LoadSet(bytes.NewReader(s.raw))
		if err != nil {
			log.Fatalf("rank %d model: %v", s.rank, err)
		}
		set.Models = append(set.Models, ms.Models[0])
		// Center = mean of the rank's shard (eqn 14), recomputed here
		// from the deterministic shard definition.
		lo, hi := s.rank*per, (s.rank+1)*per
		if s.rank == p-1 {
			hi = ds.M()
		}
		rows := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, i)
		}
		centerData = append(centerData, ds.X.Mean(rows)...)
	}
	set.Centers = newDense(len(shards), ds.Features(), centerData)
	acc := set.Accuracy(ds.TestX, ds.TestY)
	if len(lost) > 0 {
		fmt.Printf("rank 0: completed degraded — lost shard(s) %v, %d/%d model files assembled\n",
			lost, len(shards), p)
	}
	fmt.Printf("rank 0: assembled %d model files; routed test accuracy %.2f%%\n",
		set.P(), 100*acc)
}

func newDense(m, n int, data []float64) *casvm.Matrix {
	return casvm.NewDenseMatrix(m, n, data)
}
