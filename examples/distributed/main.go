// Genuinely distributed CA-SVM over TCP: one OS process per node, the
// casvm2 placement of the paper. Each rank generates its resident data
// shard, trains its local SVM with zero training communication, then the
// model files are gathered at rank 0, which evaluates routed prediction on
// a shared test set.
//
// Run everything locally with one command (the launcher forks P workers):
//
//	go run ./examples/distributed -launch -p 4
//
// Fault-tolerance demo — kill a worker mid-run and watch the survivors
// finish with the lost shard reported:
//
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -kill-after 1s
//
// Elastic recovery — same crash, but the run completes with every shard:
//
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -recover respawn
//	go run ./examples/distributed -launch -p 4 -kill-rank 2 -recover shrink
//
// Under "respawn" the launcher forks a fresh process for the dead rank; the
// new incarnation rejoins through rank 0 alone (tcpmpi Options.Peers), and
// its hello's fresh flag resurrects the connection rank 0 had declared
// dead. Under "shrink" rank 0 re-partitions the lost shard onto itself and
// retrains it locally. Either way the assembled model set is complete.
//
// Or place workers by hand (possibly on different hosts):
//
//	go run ./examples/distributed -rank 0 -peers host0:7070,host1:7071
//	go run ./examples/distributed -rank 1 -peers host0:7070,host1:7071
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"casvm"
	"casvm/internal/model"
	"casvm/internal/tcpmpi"
)

// tagModel is the user tag for shipping a rank's model file to rank 0.
const tagModel = 77

func main() {
	var (
		launch    = flag.Bool("launch", false, "fork -p worker processes on localhost")
		p         = flag.Int("p", 4, "world size (with -launch)")
		killRank  = flag.Int("kill-rank", -1, "rank to kill mid-run (with -launch)")
		killAfter = flag.Duration("kill-after", time.Second, "how long the killed rank lives (with -kill-rank)")
		policy    = flag.String("recover", "off", "recovery for the killed rank: off, respawn (refork it; it rejoins via rank 0), shrink (rank 0 retrains the lost shard)")
		rank      = flag.Int("rank", -1, "this worker's rank (worker mode)")
		peers     = flag.String("peers", "", "comma-separated rank addresses (worker mode)")
		dieAfter  = flag.Duration("die-after", 0, "crash this worker before the model gather (worker mode)")
		rejoin    = flag.Bool("rejoin", false, "this worker is a respawned incarnation: dial only rank 0 (worker mode)")
	)
	flag.Parse()

	if *policy != "off" && *policy != "respawn" && *policy != "shrink" {
		log.Fatalf("unknown -recover policy %q (want off, respawn or shrink)", *policy)
	}
	switch {
	case *launch:
		launchWorkers(*p, *killRank, *killAfter, *policy)
	case *rank >= 0 && *peers != "":
		runWorker(*rank, strings.Split(*peers, ","), *dieAfter, *policy, *rejoin)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// launchWorkers picks free ports, forks one worker per rank and streams
// their output. When killRank is set, that worker is told to crash after
// killAfter; its death is expected and does not fail the launch. Under the
// respawn policy the launcher is also the supervisor: it reforks the dead
// rank as a fresh incarnation that rejoins through rank 0.
func launchWorkers(p, killRank int, killAfter time.Duration, policy string) {
	start := time.Now()
	stamp := func(format string, a ...any) {
		fmt.Printf("[%6.2fs] "+format+"\n", append([]any{time.Since(start).Seconds()}, a...)...)
	}
	addrs := make([]string, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peerList := strings.Join(addrs, ",")
	fmt.Printf("launching %d workers: %s\n", p, peerList)
	if killRank >= 0 {
		stamp("rank %d will be killed after %v (recovery policy: %s)", killRank, killAfter, policy)
	}

	type exit struct {
		rank, incarnation int
		err               error
		out               *bytes.Buffer
	}
	exits := make(chan exit, p+1)
	spawn := func(r, incarnation int) {
		args := []string{"-rank", fmt.Sprint(r), "-peers", peerList, "-recover", policy}
		if r == killRank && incarnation == 1 {
			args = append(args, "-die-after", killAfter.String())
		}
		if incarnation > 1 {
			args = append(args, "-rejoin")
		}
		var out bytes.Buffer
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		go func() { exits <- exit{r, incarnation, cmd.Wait(), &out} }()
	}
	for r := 0; r < p; r++ {
		spawn(r, 1)
	}

	remaining := p
	failed := false
	for remaining > 0 {
		e := <-exits
		if e.err != nil && e.rank == killRank && e.incarnation == 1 {
			stamp("worker %d died as planned: %v", e.rank, e.err)
			fmt.Printf("--- worker %d (incarnation 1) ---\n%s", e.rank, e.out.String())
			if policy == "respawn" {
				stamp("respawning worker %d — the fresh incarnation rejoins via rank 0", e.rank)
				spawn(e.rank, 2) // the respawn owns this slot now
				continue
			}
			stamp("policy %q: no respawn; the survivors own shard %d now", policy, e.rank)
			remaining--
			continue
		}
		if e.err != nil {
			failed = true
			stamp("worker %d failed: %v", e.rank, e.err)
		} else if e.incarnation > 1 {
			stamp("respawned worker %d finished", e.rank)
		}
		fmt.Printf("--- worker %d (incarnation %d) ---\n%s", e.rank, e.incarnation, e.out.String())
		remaining--
	}
	stamp("all workers accounted for")
	if failed {
		os.Exit(1)
	}
}

// shardRows returns the deterministic row range of rank r's resident shard
// of an m-sample dataset split over p ranks.
func shardRows(m, p, r int) []int {
	per := m / p
	lo, hi := r*per, (r+1)*per
	if r == p-1 {
		hi = m
	}
	rows := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, i)
	}
	return rows
}

// trainShard trains rank r's resident shard on a single-rank in-process
// world and returns the serialized model file plus the run stats.
func trainShard(ds *casvm.Dataset, entry casvm.DatasetEntry, r, p int) ([]byte, casvm.Stats, error) {
	rows := shardRows(ds.M(), p, r)
	localX := ds.X.Subset(rows)
	localY := make([]float64, len(rows))
	for k, i := range rows {
		localY[k] = ds.Y[i]
	}
	params := casvm.DefaultParams(casvm.MethodRACA, 1)
	params.Kernel = casvm.RBF(entry.GammaOrDefault())
	local := &casvm.Dataset{Name: "shard", X: localX, Y: localY}
	out, _, err := casvm.TrainDataset(local, params)
	if err != nil {
		return nil, casvm.Stats{}, err
	}
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, out.Set); err != nil {
		return nil, casvm.Stats{}, err
	}
	return buf.Bytes(), out.Stats, nil
}

// runWorker is one rank: local shard → local training → model gather. A
// non-zero dieAfter crashes the worker before it ships its model,
// simulating a mid-run node death. A rejoining worker is a respawned
// incarnation: it dials only rank 0 (tcpmpi Options.Peers) instead of
// paying the full-mesh handshake, and its fresh-incarnation hello
// resurrects the connection rank 0 had given up on.
func runWorker(rank int, addrs []string, dieAfter time.Duration, policy string, rejoin bool) {
	start := time.Now()
	p := len(addrs)
	// Short heartbeats and a small reconnect budget so a dead peer is
	// detected (and, failing a re-dial, declared dead) in a few seconds
	// rather than the production default.
	opt := tcpmpi.Options{
		HeartbeatInterval:   500 * time.Millisecond,
		HeartbeatTimeout:    2 * time.Second,
		ReconnectAttempts:   2,
		ReconnectBackoffMax: 500 * time.Millisecond,
	}
	if rejoin && rank != 0 {
		opt.Peers = []int{0}
	}
	comm, err := tcpmpi.DialOptions(rank, addrs, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer comm.Close()
	if rejoin {
		fmt.Printf("rank %d: rejoined the world (fresh incarnation, coordinator-only mesh)\n", rank)
	}

	// casvm2 placement: every rank generates its own resident shard of the
	// shared dataset deterministically — no data distribution traffic, and
	// a respawned incarnation rebuilds the exact same shard.
	ds, entry, err := casvm.LoadDataset("toy", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	raw, st, err := trainShard(ds, entry, rank, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d: trained on %d samples, %d SVs, %d iterations\n",
		rank, len(shardRows(ds.M(), p, rank)), st.SVs, st.Iters)

	if dieAfter > 0 {
		// Injected crash: hold the connection open until the deadline so
		// the death lands mid-run, then exit without shipping the model.
		if lived := time.Since(start); lived < dieAfter {
			time.Sleep(dieAfter - lived)
		}
		fmt.Printf("rank %d: dying now (injected crash before model gather)\n", rank)
		os.Exit(1)
	}

	// Ship the model file (and routing center) to rank 0 — the only
	// communication in the entire run.
	if rank != 0 {
		if err := comm.Send(0, tagModel, raw); err != nil {
			// Root gone: nothing useful left to do, but this worker did
			// its job — don't report a spurious failure.
			fmt.Printf("rank %d: model gather failed (%v), exiting\n", rank, err)
		}
		return
	}

	// Rank 0 collects every shard's model. A rank whose connection dies
	// (and stays down past the reconnect window) is handled per policy:
	// off — its shard is lost and the run degrades; respawn — keep
	// receiving until the supervisor's fresh incarnation delivers; shrink —
	// re-partition the shard onto rank 0 and retrain it here.
	type shard struct {
		rank int
		raw  []byte
	}
	var shards []shard
	var lost []int
	shards = append(shards, shard{rank: 0, raw: raw})
	for src := 1; src < p; src++ {
		raw, err := comm.Recv(src, tagModel)
		if err != nil && policy == "respawn" {
			fmt.Printf("rank 0: shard %d lost (%v); waiting for its respawn\n", src, err)
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				time.Sleep(250 * time.Millisecond)
				if raw, err = comm.Recv(src, tagModel); err == nil {
					fmt.Printf("rank 0: shard %d redelivered by the respawned incarnation\n", src)
					break
				}
			}
		}
		if err != nil && policy == "shrink" {
			fmt.Printf("rank 0: shard %d lost (%v); shrink recovery — retraining it on rank 0\n", src, err)
			var st casvm.Stats
			if raw, st, err = trainShard(ds, entry, src, p); err == nil {
				fmt.Printf("rank 0: shard %d retrained locally (%d SVs, %d iterations)\n", src, st.SVs, st.Iters)
			}
		}
		if err != nil {
			fmt.Printf("rank 0: shard %d lost (%v)\n", src, err)
			lost = append(lost, src)
			continue
		}
		shards = append(shards, shard{rank: src, raw: raw})
	}

	// Assemble the routed model set from the collected shards and evaluate.
	set := &casvm.ModelSet{}
	centerData := make([]float64, 0, len(shards)*ds.Features())
	for _, s := range shards {
		ms, err := model.LoadSet(bytes.NewReader(s.raw))
		if err != nil {
			log.Fatalf("rank %d model: %v", s.rank, err)
		}
		set.Models = append(set.Models, ms.Models[0])
		// Center = mean of the rank's shard (eqn 14), recomputed here
		// from the deterministic shard definition.
		centerData = append(centerData, ds.X.Mean(shardRows(ds.M(), p, s.rank))...)
	}
	set.Centers = newDense(len(shards), ds.Features(), centerData)
	acc := set.Accuracy(ds.TestX, ds.TestY)
	if len(lost) > 0 {
		fmt.Printf("rank 0: completed degraded — lost shard(s) %v, %d/%d model files assembled\n",
			lost, len(shards), p)
	} else if policy != "off" {
		fmt.Printf("rank 0: every shard accounted for (policy %s)\n", policy)
	}
	fmt.Printf("rank 0: assembled %d model files; routed test accuracy %.2f%%\n",
		set.P(), 100*acc)
}

func newDense(m, n int, data []float64) *casvm.Matrix {
	return casvm.NewDenseMatrix(m, n, data)
}
