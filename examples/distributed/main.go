// Genuinely distributed CA-SVM over TCP: one OS process per node, the
// casvm2 placement of the paper. Each rank generates its resident data
// shard, trains its local SVM with zero training communication, then the
// model files are gathered at rank 0, which evaluates routed prediction on
// a shared test set.
//
// Run everything locally with one command (the launcher forks P workers):
//
//	go run ./examples/distributed -launch -p 4
//
// Or place workers by hand (possibly on different hosts):
//
//	go run ./examples/distributed -rank 0 -peers host0:7070,host1:7071
//	go run ./examples/distributed -rank 1 -peers host0:7070,host1:7071
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"

	"casvm"
	"casvm/internal/model"
	"casvm/internal/tcpmpi"
)

func main() {
	var (
		launch = flag.Bool("launch", false, "fork -p worker processes on localhost")
		p      = flag.Int("p", 4, "world size (with -launch)")
		rank   = flag.Int("rank", -1, "this worker's rank (worker mode)")
		peers  = flag.String("peers", "", "comma-separated rank addresses (worker mode)")
	)
	flag.Parse()

	switch {
	case *launch:
		launchWorkers(*p)
	case *rank >= 0 && *peers != "":
		runWorker(*rank, strings.Split(*peers, ","))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// launchWorkers picks free ports, forks one worker per rank and streams
// their output.
func launchWorkers(p int) {
	addrs := make([]string, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peerList := strings.Join(addrs, ",")
	fmt.Printf("launching %d workers: %s\n", p, peerList)
	procs := make([]*exec.Cmd, p)
	outs := make([]bytes.Buffer, p)
	for r := 0; r < p; r++ {
		cmd := exec.Command(os.Args[0], "-rank", fmt.Sprint(r), "-peers", peerList)
		cmd.Stdout = &outs[r]
		cmd.Stderr = &outs[r]
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs[r] = cmd
	}
	failed := false
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			failed = true
			fmt.Printf("worker %d failed: %v\n", r, err)
		}
		fmt.Printf("--- worker %d ---\n%s", r, outs[r].String())
	}
	if failed {
		os.Exit(1)
	}
}

// runWorker is one rank: local shard → local training → model gather.
func runWorker(rank int, addrs []string) {
	p := len(addrs)
	comm, err := tcpmpi.Dial(rank, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer comm.Close()

	// casvm2 placement: every rank generates its own resident shard of the
	// shared dataset deterministically — no data distribution traffic.
	ds, entry, err := casvm.LoadDataset("toy", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	per := ds.M() / p
	lo := rank * per
	hi := lo + per
	if rank == p-1 {
		hi = ds.M()
	}
	rows := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, i)
	}
	localX := ds.X.Subset(rows)
	localY := make([]float64, len(rows))
	for k, i := range rows {
		localY[k] = ds.Y[i]
	}

	// Train this node's SVM on a single-rank in-process world — the whole
	// point of CA-SVM is that nodes need not talk during training.
	params := casvm.DefaultParams(casvm.MethodRACA, 1)
	params.Kernel = casvm.RBF(entry.GammaOrDefault())
	local := &casvm.Dataset{Name: "shard", X: localX, Y: localY}
	out, _, err := casvm.TrainDataset(local, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d: trained on %d samples, %d SVs, %d iterations\n",
		rank, localX.Rows(), out.Stats.SVs, out.Stats.Iters)

	// Ship the model file (and routing center) to rank 0 — the only
	// communication in the entire run.
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, out.Set); err != nil {
		log.Fatal(err)
	}
	gathered, err := comm.Gatherv(0, buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	if rank != 0 {
		return
	}

	// Rank 0 assembles the routed model set and evaluates.
	set := &casvm.ModelSet{}
	centerData := make([]float64, 0, p*ds.Features())
	for r, raw := range gathered {
		ms, err := model.LoadSet(bytes.NewReader(raw))
		if err != nil {
			log.Fatalf("rank %d model: %v", r, err)
		}
		set.Models = append(set.Models, ms.Models[0])
		// Center = mean of the rank's shard (eqn 14), recomputed here
		// from the deterministic shard definition.
		lo, hi := r*per, (r+1)*per
		if r == p-1 {
			hi = ds.M()
		}
		rows := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, i)
		}
		centerData = append(centerData, ds.X.Mean(rows)...)
	}
	set.Centers = newDense(p, ds.Features(), centerData)
	acc := set.Accuracy(ds.TestX, ds.TestY)
	fmt.Printf("rank 0: assembled %d model files; routed test accuracy %.2f%%\n",
		set.P(), 100*acc)
}

func newDense(m, n int, data []float64) *casvm.Matrix {
	return casvm.NewDenseMatrix(m, n, data)
}
