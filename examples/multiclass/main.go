// Multiclass classification the way the paper prescribes (§II-A): a
// K-class SVM is K (or K·(K−1)/2) independent binary SVMs, each trained
// here with a communication-avoiding method. A digits-like 10-class
// workload compares one-vs-rest against one-vs-one.
//
//	go run ./examples/multiclass
package main

import (
	"fmt"
	"log"
	"time"

	"casvm"
)

func main() {
	trainX, trainY, testX, testY, err := casvm.GenerateMulticlassDataset(casvm.MixtureSpec{
		Name: "digits", Train: 3000, Test: 800, Features: 24, Clusters: 10,
		Separation: 9, Noise: 1, LabelNoise: 0.01, Seed: 11,
	}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digits-like: %d train / %d test samples, 10 classes, %d features\n\n",
		trainX.Rows(), testX.Rows(), trainX.Features())

	params := casvm.DefaultParams(casvm.MethodRACA, 4)
	params.Kernel = casvm.RBF(1.0 / 48)

	for _, s := range []struct {
		name   string
		scheme casvm.MulticlassScheme
	}{
		{"one-vs-rest", casvm.OneVsRest},
		{"one-vs-one", casvm.OneVsOne},
	} {
		t0 := time.Now()
		m, err := casvm.TrainMulticlass(trainX, trainY, params, s.scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %2d binary machines, accuracy %.2f%%  (%v wall)\n",
			s.name, m.Machines(), 100*m.Accuracy(testX, testY), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("\nEach binary machine is itself a distributed CA-SVM — the paper's")
	fmt.Println("observation that multiclass parallelism composes with node parallelism.")
}
