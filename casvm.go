// Package casvm is a from-scratch Go implementation of CA-SVM —
// communication-avoiding support vector machines on distributed systems
// (You, Demmel, Czechowski, Song, Vuduc; UCB/EECS-2015-9 / IPDPS'15) —
// together with every baseline the paper compares against: distributed SMO,
// Cascade SVM, DC-SVM, DC-Filter and CP-SVM.
//
// Training runs on an in-process message-passing runtime (one goroutine per
// rank) that measures real communication volumes and models time with α–β
// machine constants, so the paper's scaling experiments reproduce on a
// single machine. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the per-table results.
//
// Quick start:
//
//	ds, entry, _ := casvm.LoadDataset("ijcnn", 1.0)
//	p := casvm.DefaultParams(casvm.MethodRACA, 8)
//	p.Kernel = casvm.RBF(entry.GammaOrDefault())
//	out, _ := casvm.Train(ds.X, ds.Y, p)
//	fmt.Println(out.Set.Accuracy(ds.TestX, ds.TestY), out.Stats.TotalSec)
package casvm

import (
	"fmt"
	"os"

	"casvm/internal/compress"
	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/multiclass"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// Method names one of the eight training algorithms.
type Method = core.Method

// The trainable methods, in the paper's presentation order.
const (
	MethodDisSMO   = core.MethodDisSMO   // distributed SMO (Cao et al.)
	MethodCascade  = core.MethodCascade  // Cascade SVM (Graf et al.)
	MethodDCSVM    = core.MethodDCSVM    // Divide-and-Conquer SVM (Hsieh et al.)
	MethodDCFilter = core.MethodDCFilter // DC-Filter (§III-B)
	MethodCPSVM    = core.MethodCPSVM    // Clustering-Partition SVM (§IV-A)
	MethodBKMCA    = core.MethodBKMCA    // CA-SVM, balanced-K-means partition
	MethodFCFSCA   = core.MethodFCFSCA   // CA-SVM, FCFS partition
	MethodRACA     = core.MethodRACA     // CA-SVM, random-average partition
)

// Placement selects the casvm1/casvm2 initial data placement of Fig 9.
type Placement = core.Placement

// Placement values.
const (
	PlacementDistributed = core.PlacementDistributed // casvm2: blocks resident on nodes
	PlacementRoot        = core.PlacementRoot        // casvm1: all data starts on rank 0
)

// Params configures a training run; see core.Params for field docs.
type Params = core.Params

// Stats is the measured profile of a training run.
type Stats = core.Stats

// Output bundles a trained model set with its run statistics.
type Output = core.Output

// Recovery configures checkpoint/restart fault recovery; see core.Recovery.
type Recovery = core.Recovery

// RecoveryPolicy selects what the supervising driver does when a rank dies.
type RecoveryPolicy = core.RecoveryPolicy

// Recovery policies.
const (
	RecoverOff     = core.RecoverOff     // no supervision: a crash fails the run
	RecoverRespawn = core.RecoverRespawn // restart the lost rank from the last checkpoint
	RecoverShrink  = core.RecoverShrink  // rebuild the world without the lost rank
)

// ParseRecoveryPolicy resolves a policy name ("off", "respawn", "shrink").
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	return core.ParseRecoveryPolicy(s)
}

// Matrix is the sample container (dense or CSR sparse).
type Matrix = la.Matrix

// Model is a single trained binary SVM.
type Model = model.Model

// ModelSet is the per-partition model collection with center routing.
type ModelSet = model.Set

// Dataset is a labelled train/test pair.
type Dataset = data.Dataset

// DatasetEntry describes a registered benchmark dataset.
type DatasetEntry = data.Entry

// MixtureSpec configures the synthetic dataset generator.
type MixtureSpec = data.MixtureSpec

// Kernel selects and parameterises the kernel function.
type Kernel = kernel.Params

// Machine holds the α–β machine model constants (tc, ts, tw).
type Machine = perfmodel.Machine

// NewDenseMatrix wraps row-major data (length m*n) as a dense sample
// matrix. The slice is retained, not copied.
func NewDenseMatrix(m, n int, rowMajor []float64) *Matrix {
	return la.NewDense(m, n, rowMajor)
}

// NewSparseMatrix wraps CSR data as a sparse sample matrix (see
// la.NewSparse for the invariants).
func NewSparseMatrix(m, n int, rowptr, idx []int32, val []float64) *Matrix {
	return la.NewSparse(m, n, rowptr, idx, val)
}

// Timeline records per-rank span events (collectives, solver phases,
// kernel-row fills). Attach one to Params.Timeline, then export with
// WriteChromeTrace (chrome://tracing / Perfetto) or aggregate with
// PhaseStats.
type Timeline = trace.Timeline

// MetricsRegistry collects counters, gauges and histograms from a run;
// attach one to Params.Metrics. Expose with WriteProm (Prometheus text) or
// Publish (expvar).
type MetricsRegistry = trace.Registry

// RunReport is the structured summary written by `casvm-train -report`.
type RunReport = trace.Report

// TelemetryRing buffers per-iteration solver telemetry (dual objective,
// KKT gap, active-set and SV counts); attach one to Params.Telemetry. The
// `-serve` flag of casvm-train streams it over SSE.
type TelemetryRing = smo.TelemetryRing

// IterSample is one iteration's convergence snapshot from the telemetry
// ring.
type IterSample = smo.IterSample

// NewTimeline creates a timeline for a p-rank run.
func NewTimeline(p int) *Timeline { return trace.NewTimeline(p) }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return trace.NewRegistry() }

// NewTelemetryRing creates a telemetry ring holding the last n samples
// (n ≤ 0 means 1024).
func NewTelemetryRing(n int) *TelemetryRing { return smo.NewTelemetryRing(n) }

// BuildReport assembles the structured run report for a finished run; see
// trace.Report. dataset and accuracy annotate the report (zero values are
// omitted from the JSON).
func BuildReport(out *Output, p Params, dataset string, accuracy float64) (*RunReport, error) {
	return core.BuildReport(out, p, dataset, accuracy)
}

// Methods returns every trainable method in presentation order.
func Methods() []Method { return core.Methods() }

// ParseMethod resolves a method name such as "ra-ca".
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// DefaultParams returns ready-to-use parameters for the method on p ranks
// (Hopper-like machine constants, C=1, RBF kernel).
func DefaultParams(m Method, p int) Params { return core.DefaultParams(m, p) }

// RBF returns Gaussian-kernel parameters with the given γ.
func RBF(gamma float64) Kernel { return kernel.RBF(gamma) }

// Hopper returns NERSC-Hopper-like machine constants (the default).
func Hopper() Machine { return perfmodel.Hopper() }

// Edison returns NERSC-Edison-like machine constants.
func Edison() Machine { return perfmodel.Edison() }

// Train runs the configured method over (x, y) and returns the trained
// model set and run statistics. Labels must be ±1; use DatasetFromLIBSVM or
// the generator to build inputs.
func Train(x *Matrix, y []float64, p Params) (*Output, error) {
	return core.Train(x, y, p)
}

// TrainDataset trains on ds and reports the held-out accuracy alongside the
// run output.
func TrainDataset(ds *Dataset, p Params) (*Output, float64, error) {
	out, err := core.Train(ds.X, ds.Y, p)
	if err != nil {
		return nil, 0, err
	}
	acc := 0.0
	if ds.TestX != nil {
		acc = out.Set.Accuracy(ds.TestX, ds.TestY)
	}
	return out, acc, nil
}

// DatasetNames lists the registered benchmark datasets (Table XII plus
// "forest" and "toy").
func DatasetNames() []string { return data.Names() }

// LoadDataset generates the named registered dataset at the given scale
// (1.0 = registered size).
func LoadDataset(name string, scale float64) (*Dataset, DatasetEntry, error) {
	return data.Load(name, scale)
}

// GenerateDataset materialises a custom synthetic spec.
func GenerateDataset(spec MixtureSpec) (*Dataset, error) { return data.Generate(spec) }

// DatasetFromLIBSVM reads a LIBSVM-format file into a training-only
// dataset, binarizing labels at > 0.
func DatasetFromLIBSVM(path string, minFeatures int) (*Dataset, error) {
	x, y, err := data.LoadLIBSVMFile(path, minFeatures)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: path, X: x, Y: data.Binarize(y, 0)}
	return d, d.Validate()
}

// PredictDistributed runs the paper's Alg 6 prediction flow over a
// simulated world: queries route from rank 0 to the node holding the
// nearest center's model, labels gather back. The returned Stats shows the
// (small) communication this costs.
func PredictDistributed(set *ModelSet, q *Matrix, machine Machine, seed int64) ([]float64, Stats, error) {
	return core.PredictDistributed(set, q, machine, seed)
}

// MulticlassScheme selects the binary reduction for K-class training.
type MulticlassScheme = multiclass.Scheme

// Multiclass reduction schemes (§II-A: a multiclass SVM is a set of
// independent binary SVMs).
const (
	OneVsRest = multiclass.OneVsRest
	OneVsOne  = multiclass.OneVsOne
)

// MulticlassModel is a trained K-class classifier.
type MulticlassModel = multiclass.Model

// TrainMulticlass fits a K-class model on (x, y) with arbitrary numeric
// class labels; every constituent binary machine trains with params.
func TrainMulticlass(x *Matrix, y []float64, params Params, scheme MulticlassScheme) (*MulticlassModel, error) {
	return multiclass.Train(x, y, params, scheme)
}

// GenerateMulticlassDataset draws a clustered K-class synthetic dataset
// (labels 0 … classes−1).
func GenerateMulticlassDataset(spec MixtureSpec, classes int) (trainX *Matrix, trainY []float64, testX *Matrix, testY []float64, err error) {
	return data.GenerateMulticlass(spec, classes)
}

// WriteLIBSVMFile writes (ds.X, ds.Y) to path in LIBSVM text format.
func WriteLIBSVMFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := data.WriteLIBSVM(f, ds.X, ds.Y); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveModelSet writes a trained model set to path in the casvm text model
// format.
func SaveModelSet(path string, s *ModelSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := model.SaveSet(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelSet reads a model set written by SaveModelSet.
func LoadModelSet(path string) (*ModelSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := model.LoadSet(f)
	if err != nil {
		return nil, fmt.Errorf("casvm: load %s: %w", path, err)
	}
	return s, nil
}

// CompressOptions configures the support-vector compression pass (centroid
// budgeting plus small-α pruning); see compress.Options for field docs.
type CompressOptions = compress.Options

// CompressionStats summarises a compression pass (SV counts before/after,
// per-model detail).
type CompressionStats = compress.Stats

// CompressModelSet shrinks a trained model set to at most o.Budget support
// vectors per partition model, re-weighting the survivors by a reduced-set
// least-squares fit so the decision surface tracks the full model.
func CompressModelSet(s *ModelSet, o CompressOptions) (*ModelSet, CompressionStats, error) {
	return compress.Set(s, o)
}

// AnnotateCompression measures full vs compressed accuracy on (q, y) and
// embeds the delta in the compressed set's metadata, so serving layers can
// surface the trade-off the model file carries.
func AnnotateCompression(compressed, full *ModelSet, q *Matrix, y []float64) (fullAcc, compressedAcc float64) {
	return compress.Annotate(compressed, full, q, y)
}
