package casvm

import (
	"path/filepath"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	ds, entry, err := LoadDataset("toy", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(MethodRACA, 4)
	p.Kernel = RBF(entry.GammaOrDefault())
	out, acc, err := TrainDataset(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("accuracy %.3f", acc)
	}
	if out.Stats.CommBytes != 0 {
		t.Errorf("RA-CA casvm2 moved %d bytes", out.Stats.CommBytes)
	}

	// Model persistence round trip.
	path := filepath.Join(t.TempDir(), "model.txt")
	if err := SaveModelSet(path, out.Set); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelSet(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.TestX.Rows(); i++ {
		if loaded.Predict(ds.TestX, i) != out.Set.Predict(ds.TestX, i) {
			t.Fatalf("prediction drift at %d", i)
		}
	}
}

func TestFacadeLIBSVMRoundTrip(t *testing.T) {
	ds, _, err := LoadDataset("ijcnn", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.svm")
	if err := WriteLIBSVMFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := DatasetFromLIBSVM(path, ds.Features())
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != ds.M() || back.Features() != ds.Features() {
		t.Fatalf("dims %d×%d vs %d×%d", back.M(), back.Features(), ds.M(), ds.Features())
	}
	for i, v := range back.Y {
		if v != ds.Y[i] {
			t.Fatalf("label %d", i)
		}
	}
}

func TestFacadeMethodsAndNames(t *testing.T) {
	if len(Methods()) != 8 {
		t.Fatalf("methods=%d", len(Methods()))
	}
	if _, err := ParseMethod("ra-ca"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("bad method should fail")
	}
	names := DatasetNames()
	if len(names) != 9 {
		t.Fatalf("datasets=%d: %v", len(names), names)
	}
	if Hopper().Tc <= 0 || Edison().Tc <= 0 {
		t.Fatal("machine constants")
	}
}

func TestFacadeGenerate(t *testing.T) {
	ds, err := GenerateDataset(MixtureSpec{
		Name: "custom", Train: 64, Test: 16, Features: 4, Clusters: 2,
		Separation: 5, Noise: 1, PosFrac: []float64{0.5}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.M() != 64 {
		t.Fatalf("m=%d", ds.M())
	}
}

func TestLoadModelSetMissingFile(t *testing.T) {
	if _, err := LoadModelSet("/nonexistent/model.txt"); err == nil {
		t.Fatal("missing file should fail")
	}
}
