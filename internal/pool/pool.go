// Package pool provides the persistent worker pool under the solver's
// shared-memory parallel layer (the goroutine analogue of the paper's
// OpenMP threads inside each MPI rank).
//
// The pool exists because the SMO inner loop issues one parallel region
// per iteration: spawning fresh goroutines per region — what the seed's
// kernel.RowParallel did — costs a scheduler wakeup and a stack for every
// chunk of every iteration. Here the workers are long-lived and parked on
// a channel; a parallel region is just nc−1 channel sends, with the
// calling goroutine executing chunk 0 itself so a 2-chunk region needs a
// single handoff.
//
// Determinism contract: chunk boundaries depend only on (threads, n,
// grain) — never on pool size or GOMAXPROCS — and ParallelForChunks
// reports the chunk count so callers can reduce per-chunk results in
// chunk order. A reduction that scans chunks in order with strict
// comparisons is therefore bit-identical to the serial scan, for any
// thread count. The SMO solver's thread-count-invariance guarantee rests
// on this.
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of persistent worker goroutines. The zero value is
// not usable; call New. A nil *Pool degrades every operation to serial
// execution, so callers never need nil checks on cold paths.
type Pool struct {
	workers int
	jobs    chan job
}

type job struct {
	fn     func(chunk, lo, hi int)
	chunk  int
	lo, hi int
	wg     *sync.WaitGroup
}

// New creates a pool that can run parallel regions up to `workers` wide.
// workers−1 background goroutines are started (the caller of a parallel
// region is the remaining worker); they live for the life of the process,
// parked on an empty channel when idle.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, jobs: make(chan job, 4*workers)}
	for w := 0; w < workers-1; w++ {
		go p.run()
	}
	return p
}

func (p *Pool) run() {
	for j := range p.jobs {
		j.fn(j.chunk, j.lo, j.hi)
		j.wg.Done()
	}
}

// Workers returns the pool's width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, created on first use with
// runtime.NumCPU() workers. Solvers and the kernel-row cache share it:
// concurrently training ranks submit chunks to the same workers, bounding
// total goroutines by the core count instead of ranks × threads. Because
// idle workers are parked on a channel receive, sizing by physical cores
// (rather than GOMAXPROCS at creation time) keeps the pool useful when
// GOMAXPROCS changes later, as `go test -cpu 1,4` does.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = New(runtime.NumCPU()) })
	return shared
}

// chunks returns the deterministic chunk count for an n-element region:
// at most `threads`, and no chunk smaller than grain (except the last).
func chunks(threads, n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	nc := (n + grain - 1) / grain
	if nc > threads {
		nc = threads
	}
	if nc < 1 {
		nc = 1
	}
	return nc
}

// ParallelForChunks splits [0, n) into deterministic chunks and runs
// fn(chunk, lo, hi) for each, using up to `threads` concurrent workers; it
// returns the chunk count so per-chunk partial results can be reduced in
// chunk order. Chunk 0 always runs on the calling goroutine. fn must not
// submit further work to the same pool. Serial fallback (one chunk, inline
// call) happens when threads ≤ 1, n ≤ grain, or the pool is nil.
func (p *Pool) ParallelForChunks(threads, n, grain int, fn func(chunk, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	nc := chunks(threads, n, grain)
	if nc <= 1 || p == nil || p.workers <= 1 {
		if nc <= 1 {
			fn(0, 0, n)
			return 1
		}
		// Pool too narrow for the requested width: run the same chunking
		// serially so per-chunk reductions still see identical boundaries.
		size := (n + nc - 1) / nc
		for c := 0; c < nc; c++ {
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return nc
	}
	size := (n + nc - 1) / nc
	var wg sync.WaitGroup
	wg.Add(nc - 1)
	for c := 1; c < nc; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.jobs <- job{fn: fn, chunk: c, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, 0, size)
	wg.Wait()
	return nc
}

// ParallelFor is ParallelForChunks without chunk identity: fn(lo, hi) over
// a deterministic partition of [0, n). Use it for elementwise maps (kernel
// row fills, axpy) where chunks write disjoint output ranges.
func (p *Pool) ParallelFor(threads, n, grain int, fn func(lo, hi int)) {
	p.ParallelForChunks(threads, n, grain, func(_, lo, hi int) { fn(lo, hi) })
}
