package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelForCoversRange proves every index is visited exactly once
// for a sweep of sizes, widths and grains.
func TestParallelForCoversRange(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096} {
		for _, threads := range []int{1, 2, 3, 4, 9} {
			for _, grain := range []int{1, 16, 512} {
				visits := make([]int32, n)
				p.ParallelFor(threads, n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d threads=%d grain=%d: index %d visited %d times",
							n, threads, grain, i, v)
					}
				}
			}
		}
	}
}

// TestChunkBoundariesDeterministic proves chunk boundaries depend only on
// (threads, n, grain), not on pool width — the determinism contract the
// solver's reductions rely on.
func TestChunkBoundariesDeterministic(t *testing.T) {
	record := func(p *Pool, threads int) [][2]int {
		var mu sync.Mutex
		bounds := make([][2]int, 0, threads)
		nc := p.ParallelForChunks(threads, 1000, 100, func(c, lo, hi int) {
			mu.Lock()
			bounds = append(bounds, [2]int{lo, hi})
			mu.Unlock()
		})
		if nc != len(bounds) {
			t.Fatalf("chunk count %d but %d calls", nc, len(bounds))
		}
		// Order by lo: chunks complete in any order.
		for i := range bounds {
			for j := i + 1; j < len(bounds); j++ {
				if bounds[j][0] < bounds[i][0] {
					bounds[i], bounds[j] = bounds[j], bounds[i]
				}
			}
		}
		return bounds
	}
	wide := record(New(8), 4)
	narrow := record(New(1), 4) // serial fallback must chunk identically
	if len(wide) != len(narrow) {
		t.Fatalf("chunk counts differ: %d vs %d", len(wide), len(narrow))
	}
	for i := range wide {
		if wide[i] != narrow[i] {
			t.Fatalf("chunk %d: %v vs %v", i, wide[i], narrow[i])
		}
	}
}

// TestChunkZeroOnCaller proves chunk 0 runs on the calling goroutine (the
// caller-participates design), by checking the callback for chunk 0 can
// touch caller state without synchronisation under the race detector.
func TestChunkZeroOnCaller(t *testing.T) {
	p := New(4)
	callerLocal := 0
	p.ParallelForChunks(4, 4096, 64, func(c, lo, hi int) {
		if c == 0 {
			callerLocal++ // safe: same goroutine as the test
		}
	})
	if callerLocal != 1 {
		t.Fatalf("chunk 0 ran %d times", callerLocal)
	}
}

// TestSharedConcurrent hammers the shared pool from many goroutines at
// once — the multi-rank training scenario — under -race.
func TestSharedConcurrent(t *testing.T) {
	p := Shared()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			out := make([]float64, 2048)
			for rep := 0; rep < 20; rep++ {
				p.ParallelFor(4, len(out), 64, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] += float64(seed + i)
					}
				})
			}
			for i := range out {
				want := 20 * float64(seed+i)
				if out[i] != want {
					t.Errorf("rank %d: out[%d]=%v want %v", seed, i, out[i], want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestNilPoolServes(t *testing.T) {
	var p *Pool
	sum := 0
	p.ParallelFor(8, 100, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 4950 {
		t.Fatalf("nil pool sum=%d", sum)
	}
	if p.Workers() != 1 {
		t.Fatal("nil pool width")
	}
}
