package tcpmpi

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes assembles a well-formed frame for the seed corpus.
func frameBytes(tag int32, seq uint32, sendNs int64, payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	putFrameHeader(buf, int(tag), seq, sendNs, len(payload))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// FuzzReadFrame asserts the wire-frame decoder never panics or
// over-allocates on hostile input: truncated headers, truncated payloads,
// oversized length fields and zero-length payloads must all come back as
// errors or consistent frames. Run with `go test -fuzz FuzzReadFrame
// ./internal/tcpmpi` for extended exploration; the seed corpus runs in
// normal test mode.
func FuzzReadFrame(f *testing.F) {
	oversized := make([]byte, frameHeaderLen)
	putFrameHeader(oversized, 1, 1, 0, 0)
	binary.LittleEndian.PutUint32(oversized[16:20], maxFrame+1)

	seeds := [][]byte{
		nil,
		{0x01},
		{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07},                              // truncated header
		frameBytes(5, 1, 0, nil),                                                // zero-length payload
		frameBytes(5, 0, 0, []byte("control")),                                  // seq-0 (control) frame
		frameBytes(-2147483648, 0, 0, nil),                                      // heartbeat tag
		frameBytes(7, 3, 1_700_000_000_000_000_000, []byte("hello world")),      // normal frame
		frameBytes(7, 3, 1_700_000_000_000_000_000, []byte("hello world"))[:23], // truncated payload
		frameBytes(7, 3, -1, []byte("x")),                                       // negative sendNs survives
		oversized,                                                               // length field past maxFrame
		append(frameBytes(1, 1, 0, []byte("a")), 0xFF, 0xFF),                    // trailing garbage
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		tag, seq, sendNs, payload, err := readFrame(bytes.NewReader(in))
		if err != nil {
			return
		}
		// An accepted frame must round-trip through the encoder.
		if len(payload) > maxFrame {
			t.Fatalf("accepted oversized payload: %d bytes", len(payload))
		}
		out := frameBytes(int32(tag), seq, sendNs, payload)
		if !bytes.Equal(out, in[:len(out)]) {
			t.Fatalf("frame does not round-trip: tag=%d seq=%d len=%d", tag, seq, len(payload))
		}
	})
}

// helloBytes assembles a hello for the seed corpus.
func helloBytes(rank, recvSeq, flags uint32) []byte {
	b := make([]byte, helloLen)
	putHello(b, helloMsg{rank: rank, recvSeq: recvSeq, flags: flags})
	return b
}

// FuzzParseHello asserts the 12-byte resume-handshake decoder never panics
// and never accepts a hello it cannot fully vouch for: malformed watermark
// or incarnation (flag) bytes must fail the handshake rather than resume a
// connection from garbage sequence state. Run with `go test -fuzz
// FuzzParseHello ./internal/tcpmpi` for extended exploration.
func FuzzParseHello(f *testing.F) {
	seeds := [][]byte{
		nil,
		{0x01},
		helloBytes(1, 0, 0)[:11],                        // one byte short
		helloBytes(1, 0, helloFresh),                    // fresh incarnation
		helloBytes(3, 77, 0),                            // mid-run resume watermark
		helloBytes(0, 0, helloRegister),                 // worker registration
		helloBytes(0, 0, helloClient),                   // client registration
		helloBytes(0, 0, helloRegister|helloClient),     // contradictory roles
		helloBytes(0, 0, helloFresh|helloRegister),      // fresh worker
		helloBytes(9, 1, 0xFFFFFFFF),                    // all flag bits set
		helloBytes(9, 1, helloKnownFlags+1<<3),          // one unknown bit
		helloBytes(0xFFFFFFFF, 0xFFFFFFFF, helloFresh),  // extreme rank/watermark
		append(helloBytes(2, 5, helloFresh), 0xAA, 0xBB), // trailing garbage
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		h, err := parseHello(in)
		if err != nil {
			return
		}
		if len(in) < helloLen {
			t.Fatalf("accepted short hello (%d bytes)", len(in))
		}
		// Accepted flags are exactly the known bits, never both roles.
		if h.flags&^uint32(helloKnownFlags) != 0 {
			t.Fatalf("accepted unknown flags %#x", h.flags)
		}
		if h.flags&helloRegister != 0 && h.flags&helloClient != 0 {
			t.Fatal("accepted a hello that is both worker and client")
		}
		// An accepted hello must round-trip through the encoder: the decoder
		// read exactly the fields the encoder writes, so a resume handshake
		// can never act on a watermark the other side did not send.
		out := helloBytes(h.rank, h.recvSeq, h.flags)
		if !bytes.Equal(out, in[:helloLen]) {
			t.Fatalf("hello does not round-trip: %+v", h)
		}
	})
}
