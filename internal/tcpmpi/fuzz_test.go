package tcpmpi

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes assembles a well-formed frame for the seed corpus.
func frameBytes(tag int32, seq uint32, sendNs int64, payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	putFrameHeader(buf, int(tag), seq, sendNs, len(payload))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// FuzzReadFrame asserts the wire-frame decoder never panics or
// over-allocates on hostile input: truncated headers, truncated payloads,
// oversized length fields and zero-length payloads must all come back as
// errors or consistent frames. Run with `go test -fuzz FuzzReadFrame
// ./internal/tcpmpi` for extended exploration; the seed corpus runs in
// normal test mode.
func FuzzReadFrame(f *testing.F) {
	oversized := make([]byte, frameHeaderLen)
	putFrameHeader(oversized, 1, 1, 0, 0)
	binary.LittleEndian.PutUint32(oversized[16:20], maxFrame+1)

	seeds := [][]byte{
		nil,
		{0x01},
		{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07},                              // truncated header
		frameBytes(5, 1, 0, nil),                                                // zero-length payload
		frameBytes(5, 0, 0, []byte("control")),                                  // seq-0 (control) frame
		frameBytes(-2147483648, 0, 0, nil),                                      // heartbeat tag
		frameBytes(7, 3, 1_700_000_000_000_000_000, []byte("hello world")),      // normal frame
		frameBytes(7, 3, 1_700_000_000_000_000_000, []byte("hello world"))[:23], // truncated payload
		frameBytes(7, 3, -1, []byte("x")),                                       // negative sendNs survives
		oversized,                                                               // length field past maxFrame
		append(frameBytes(1, 1, 0, []byte("a")), 0xFF, 0xFF),                    // trailing garbage
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		tag, seq, sendNs, payload, err := readFrame(bytes.NewReader(in))
		if err != nil {
			return
		}
		// An accepted frame must round-trip through the encoder.
		if len(payload) > maxFrame {
			t.Fatalf("accepted oversized payload: %d bytes", len(payload))
		}
		out := frameBytes(int32(tag), seq, sendNs, payload)
		if !bytes.Equal(out, in[:len(out)]) {
			t.Fatalf("frame does not round-trip: tag=%d seq=%d len=%d", tag, seq, len(payload))
		}
	})
}
