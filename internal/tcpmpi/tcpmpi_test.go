package tcpmpi

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"casvm/internal/trace"
)

// freeAddrs reserves n distinct localhost ports and returns their
// addresses (released just before use; a tiny race window is acceptable in
// tests).
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// world spins up n Comms in-process (one goroutine each) and runs f per
// rank.
func world(t *testing.T, n int, f func(c *Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := Dial(rank, addrs)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = f(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestSendRecv(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("over tcp"))
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(got) != "over tcp" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(a) != "a" || string(b) != "b" {
			return fmt.Errorf("a=%q b=%q", a, b)
		}
		return nil
	})
}

func TestBcastGatherScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		world(t, n, func(c *Comm) error {
			var in []byte
			if c.Rank() == 0 {
				in = []byte("payload")
			}
			out, err := c.Bcast(0, in)
			if err != nil {
				return err
			}
			if string(out) != "payload" {
				return fmt.Errorf("bcast got %q", out)
			}
			all, err := c.Gatherv(0, []byte{byte(c.Rank() + 1)})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for r, b := range all {
					if len(b) != 1 || b[0] != byte(r+1) {
						return fmt.Errorf("gather[%d]=%v", r, b)
					}
				}
				blocks := make([][]byte, c.Size())
				for r := range blocks {
					blocks[r] = []byte{byte(10 * r)}
				}
				mine, err := c.Scatterv(0, blocks)
				if err != nil {
					return err
				}
				if mine[0] != 0 {
					return fmt.Errorf("root scatter got %v", mine)
				}
			} else {
				mine, err := c.Scatterv(0, nil)
				if err != nil {
					return err
				}
				if mine[0] != byte(10*c.Rank()) {
					return fmt.Errorf("scatter got %v", mine)
				}
			}
			return nil
		})
	}
}

func TestAllreduceSum(t *testing.T) {
	world(t, 4, func(c *Comm) error {
		out, err := c.AllreduceSum([]float64{1, float64(c.Rank())})
		if err != nil {
			return err
		}
		if out[0] != 4 || out[1] != 6 {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	world(t, 4, func(c *Comm) error { return c.Barrier() })
}

func TestPeerDisconnectFailsReceivers(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 250 * time.Millisecond}
	var wg sync.WaitGroup
	var recvErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := DialOptions(0, addrs, opt)
		if err != nil {
			recvErr = err
			return
		}
		// Peer closes; our pending Recv must fail rather than hang.
		_, recvErr = c.Recv(1, 9)
		c.Close()
	}()
	go func() {
		defer wg.Done()
		c, err := DialOptions(1, addrs, opt)
		if err != nil {
			return
		}
		c.Close()
	}()
	wg.Wait()
	if recvErr == nil {
		t.Fatal("Recv should fail when the peer disconnects")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(5, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
	// Single-rank world needs no network at all.
	c, err := Dial(0, []string{"unused"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(0, 1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv(0, 1)
	if err != nil || string(got) != "self" {
		t.Fatalf("self roundtrip: %q %v", got, err)
	}
	c.Close()
}

// TestTimelineFlowEdges: with Options.Timeline, every delivered data frame
// leaves a wall-clock flow edge on the receiver, and collectives leave
// spans — the real-transport mirror of internal/mpi's causal trace.
func TestTimelineFlowEdges(t *testing.T) {
	addrs := freeAddrs(t, 2)
	tls := []*trace.Timeline{trace.NewTimeline(2), trace.NewTimeline(2)}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := DialOptions(rank, addrs, Options{Timeline: tls[rank]})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			if err := c.Barrier(); err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				if err := c.Send(1, 7, []byte("payload")); err != nil {
					errs[rank] = err
					return
				}
				_, errs[rank] = c.Recv(1, 8)
			} else {
				if _, err := c.Recv(0, 7); err != nil {
					errs[rank] = err
					return
				}
				errs[rank] = c.Send(0, 8, []byte("ack"))
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	// Rank 1's world saw the barrier traffic plus the tag-7 payload; find
	// the payload edge and check its identity and wall ordering.
	var got *trace.FlowEdge
	for _, e := range tls[1].FlowEdges() {
		if e.Tag == 7 {
			e := e
			got = &e
		}
	}
	if got == nil {
		t.Fatalf("no tag-7 flow edge on rank 1: %+v", tls[1].FlowEdges())
	}
	if got.Src != 0 || got.Dst != 1 || got.Bytes != len("payload") {
		t.Fatalf("edge: %+v", got)
	}
	if got.ID>>40 != int64(got.Src+1) {
		t.Fatalf("edge id %d does not encode src %d", got.ID, got.Src)
	}
	if got.SendWallNs <= 0 || got.RecvWallNs < got.SendWallNs {
		t.Fatalf("wall ordering: send=%d recv=%d", got.SendWallNs, got.RecvWallNs)
	}
	if tls[1].CausalityViolations() != 0 {
		t.Fatalf("wall-only edges must not trip the virtual causality counter")
	}

	// Both ranks recorded the Barrier collective span.
	for r, tl := range tls {
		found := false
		for _, ev := range tl.Events() {
			if ev.Cat == trace.CatCollective && ev.Name == "Barrier" {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d: no Barrier span", r)
		}
	}
}
