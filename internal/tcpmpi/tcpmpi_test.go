package tcpmpi

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n distinct localhost ports and returns their
// addresses (released just before use; a tiny race window is acceptable in
// tests).
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// world spins up n Comms in-process (one goroutine each) and runs f per
// rank.
func world(t *testing.T, n int, f func(c *Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := Dial(rank, addrs)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = f(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestSendRecv(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("over tcp"))
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(got) != "over tcp" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	world(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(a) != "a" || string(b) != "b" {
			return fmt.Errorf("a=%q b=%q", a, b)
		}
		return nil
	})
}

func TestBcastGatherScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		world(t, n, func(c *Comm) error {
			var in []byte
			if c.Rank() == 0 {
				in = []byte("payload")
			}
			out, err := c.Bcast(0, in)
			if err != nil {
				return err
			}
			if string(out) != "payload" {
				return fmt.Errorf("bcast got %q", out)
			}
			all, err := c.Gatherv(0, []byte{byte(c.Rank() + 1)})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for r, b := range all {
					if len(b) != 1 || b[0] != byte(r+1) {
						return fmt.Errorf("gather[%d]=%v", r, b)
					}
				}
				blocks := make([][]byte, c.Size())
				for r := range blocks {
					blocks[r] = []byte{byte(10 * r)}
				}
				mine, err := c.Scatterv(0, blocks)
				if err != nil {
					return err
				}
				if mine[0] != 0 {
					return fmt.Errorf("root scatter got %v", mine)
				}
			} else {
				mine, err := c.Scatterv(0, nil)
				if err != nil {
					return err
				}
				if mine[0] != byte(10*c.Rank()) {
					return fmt.Errorf("scatter got %v", mine)
				}
			}
			return nil
		})
	}
}

func TestAllreduceSum(t *testing.T) {
	world(t, 4, func(c *Comm) error {
		out, err := c.AllreduceSum([]float64{1, float64(c.Rank())})
		if err != nil {
			return err
		}
		if out[0] != 4 || out[1] != 6 {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	world(t, 4, func(c *Comm) error { return c.Barrier() })
}

func TestPeerDisconnectFailsReceivers(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 250 * time.Millisecond}
	var wg sync.WaitGroup
	var recvErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := DialOptions(0, addrs, opt)
		if err != nil {
			recvErr = err
			return
		}
		// Peer closes; our pending Recv must fail rather than hang.
		_, recvErr = c.Recv(1, 9)
		c.Close()
	}()
	go func() {
		defer wg.Done()
		c, err := DialOptions(1, addrs, opt)
		if err != nil {
			return
		}
		c.Close()
	}()
	wg.Wait()
	if recvErr == nil {
		t.Fatal("Recv should fail when the peer disconnects")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(5, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
	// Single-rank world needs no network at all.
	c, err := Dial(0, []string{"unused"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(0, 1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv(0, 1)
	if err != nil || string(got) != "self" {
		t.Fatalf("self roundtrip: %q %v", got, err)
	}
	c.Close()
}
