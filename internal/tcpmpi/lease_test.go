package tcpmpi

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"casvm/internal/faults"
)

// leaseEvents collects registrar callbacks for assertions.
type leaseEvents struct {
	mu      sync.Mutex
	joins   []WorkerInfo
	expiry  []WorkerInfo
	leaves  []WorkerInfo
	frames  []int // tags received
	payload [][]byte
}

func (e *leaseEvents) config(ttl time.Duration) RegistrarConfig {
	return RegistrarConfig{
		LeaseTTL: ttl,
		OnJoin: func(w WorkerInfo) {
			e.mu.Lock()
			e.joins = append(e.joins, w)
			e.mu.Unlock()
		},
		OnExpire: func(w WorkerInfo) {
			e.mu.Lock()
			e.expiry = append(e.expiry, w)
			e.mu.Unlock()
		},
		OnLeave: func(w WorkerInfo) {
			e.mu.Lock()
			e.leaves = append(e.leaves, w)
			e.mu.Unlock()
		},
		OnFrame: func(w WorkerInfo, tag int, payload []byte) {
			e.mu.Lock()
			e.frames = append(e.frames, tag)
			e.payload = append(e.payload, payload)
			e.mu.Unlock()
		},
	}
}

func (e *leaseEvents) counts() (joins, expiry, leaves int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.joins), len(e.expiry), len(e.leaves)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaseLifecycle: register, heartbeat past several TTLs (the lease must
// survive), exchange control frames both ways, then close cleanly — a
// leave, not an expiry.
func TestLeaseLifecycle(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("localhost:0", ev.config(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	l, err := Register(reg.Addr(), RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.TTL() != 300*time.Millisecond {
		t.Fatalf("TTL=%v, want 300ms", l.TTL())
	}
	waitFor(t, "join callback", func() bool { j, _, _ := ev.counts(); return j == 1 })
	if ws := reg.Workers(); len(ws) != 1 || ws[0].ID != l.ID() || ws[0].Client {
		t.Fatalf("Workers()=%v, want one worker with id %d", ws, l.ID())
	}

	// Heartbeats (TTL/3 cadence) must carry the lease well past its TTL.
	time.Sleep(4 * l.TTL())
	if _, ex, lv := ev.counts(); ex != 0 || lv != 0 {
		t.Fatalf("lease fell over while heartbeating: expiries=%d leaves=%d", ex, lv)
	}

	// Control frames: worker -> coordinator and back.
	if err := l.Send(7, []byte("job please")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker frame", func() bool {
		ev.mu.Lock()
		defer ev.mu.Unlock()
		return len(ev.frames) == 1 && ev.frames[0] == 7 && string(ev.payload[0]) == "job please"
	})
	if err := reg.Send(l.ID(), 8, []byte("granted")); err != nil {
		t.Fatal(err)
	}
	b, err := l.Recv(8, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "granted" {
		t.Fatalf("worker received %q", b)
	}

	l.Close()
	waitFor(t, "leave callback", func() bool { _, ex, lv := ev.counts(); return lv == 1 && ex == 0 })
	if ws := reg.Workers(); len(ws) != 0 {
		t.Fatalf("worker still listed after leave: %v", ws)
	}
}

// TestRecvTimeoutOnQuietLease: Recv and RecvAny must honor their timeout
// with no other traffic on the lease — the deadline timer alone wakes the
// waiter. Regression for a lost wakeup: the timer's broadcast used to run
// without l.mu and could land between a waiter's deadline check and its
// park, leaving the call blocked until unrelated frames arrived.
func TestRecvTimeoutOnQuietLease(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("localhost:0", ev.config(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := Register(reg.Addr(), RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 20; i++ {
		start := time.Now()
		if _, err := l.Recv(42, 20*time.Millisecond); err == nil {
			t.Fatal("Recv on a quiet lease returned a frame")
		}
		if _, _, err := l.RecvAny([]int{42, 43}, 20*time.Millisecond); err == nil {
			t.Fatal("RecvAny on a quiet lease returned a frame")
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("timeouts took %v; a deadline wakeup was lost", el)
		}
	}
}

// TestLeaseExpiry: a worker that stops heartbeating (simulated by a raw
// registration that never sends frames) expires within the TTL and is
// reported as an expiry, not a leave.
func TestLeaseExpiry(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("localhost:0", ev.config(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Raw registration: hello, read the reply, then go silent with the
	// connection held open — a wedged worker.
	conn, err := net.Dial("tcp", reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [helloLen]byte
	putHello(hello[:], helloMsg{flags: helloRegister})
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var reply [replyLen]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "lease expiry", func() bool { _, ex, _ := ev.counts(); return ex == 1 })
	if _, _, lv := ev.counts(); lv != 0 {
		t.Fatalf("silent worker reported as clean leave (%d leaves)", lv)
	}
	if ws := reg.Workers(); len(ws) != 0 {
		t.Fatalf("expired worker still listed: %v", ws)
	}
}

// TestLeaseRevoke: an admin revocation force-expires the lease; the worker
// side observes the lease ending.
func TestLeaseRevoke(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("localhost:0", ev.config(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := Register(reg.Addr(), RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := reg.Revoke(l.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "revocation expiry", func() bool { _, ex, _ := ev.counts(); return ex == 1 })
	select {
	case <-l.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("worker never noticed the revocation")
	}
	if l.Err() == nil {
		t.Fatal("ended lease reports nil error")
	}
}

// TestClientRegistration: a client lease registers and exchanges frames but
// is never listed as worker capacity.
func TestClientRegistration(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("localhost:0", ev.config(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	cl, err := Register(reg.Addr(), RegisterOptions{Client: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "client join", func() bool { j, _, _ := ev.counts(); return j == 1 })
	ev.mu.Lock()
	isClient := ev.joins[0].Client
	ev.mu.Unlock()
	if !isClient {
		t.Fatal("client registration not flagged Client")
	}
	if ws := reg.Workers(); len(ws) != 0 {
		t.Fatalf("client counted as worker capacity: %v", ws)
	}
}

// TestMeshRejectsRegistrationHello: a worker that mistakenly dials a rank
// mesh listener with a registration hello is dropped, not installed as a
// bogus peer.
func TestMeshRejectsRegistrationHello(t *testing.T) {
	addrs := freeAddrs(t, 2)
	done := make(chan error, 1)
	go func() {
		c, err := DialOptions(0, addrs, Options{DialTimeout: 500 * time.Millisecond})
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	var conn net.Conn
	for i := 0; i < 200; i++ {
		var err error
		if conn, err = net.Dial("tcp", addrs[0]); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("could not reach rank 0's listener")
	}
	defer conn.Close()
	var hello [helloLen]byte
	putHello(hello[:], helloMsg{rank: 1, flags: helloRegister})
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	// The mesh must reject the hello: rank 1 never appears, Dial times out.
	if err := <-done; err == nil {
		t.Fatal("mesh accepted a registration hello as rank 1's handshake")
	}
}

// TestJitterDeterministic: with a seeded fault-schedule jitter source
// installed, reconnect backoff jitter is a pure function of (seed, rank) —
// two Comms draw identical sequences, so a replayed fault schedule
// reproduces identical reconnect timing. Without the hook the global-RNG
// path stays bounded by the ceiling.
func TestJitterDeterministic(t *testing.T) {
	sched := faults.Schedule{Seed: 42}
	a := &Comm{opt: Options{ReconnectJitter: sched.JitterFunc(1)}.withDefaults()}
	b := &Comm{opt: Options{ReconnectJitter: sched.JitterFunc(1)}.withDefaults()}
	other := &Comm{opt: Options{ReconnectJitter: sched.JitterFunc(2)}.withDefaults()}
	def := &Comm{opt: Options{}.withDefaults()}

	max := 50 * time.Millisecond
	var sa, sb, so []time.Duration
	for i := 0; i < 32; i++ {
		sa = append(sa, a.jitter(max))
		sb = append(sb, b.jitter(max))
		so = append(so, other.jitter(max))
		if d := def.jitter(max); d < 0 || d > max {
			t.Fatalf("default jitter %v outside [0, %v]", d, max)
		}
	}
	differs := false
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same-seed jitter diverged at draw %d: %v != %v", i, sa[i], sb[i])
		}
		if sa[i] < 0 || sa[i] > max {
			t.Fatalf("seeded jitter %v outside [0, %v]", sa[i], max)
		}
		if sa[i] != so[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different ranks drew identical jitter sequences")
	}
	if a.jitter(0) != 0 {
		t.Fatal("zero ceiling must yield zero jitter")
	}
}

// TestProbeClock runs the NTP-style clock probe against a live worker
// lease: the offset of two processes sharing one machine clock must come
// out near zero with a sane RTT, probe frames must stay invisible to
// OnFrame, and ordinary control traffic must keep flowing afterwards.
func TestProbeClock(t *testing.T) {
	ev := &leaseEvents{}
	reg, err := NewRegistrar("127.0.0.1:0", ev.config(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	l, err := Register(reg.Addr(), RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	waitFor(t, "join", func() bool { j, _, _ := ev.counts(); return j == 1 })

	est, err := reg.ProbeClock(l.ID(), 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples < 1 || est.Samples > 5 {
		t.Fatalf("samples = %d, want 1..5", est.Samples)
	}
	if est.RTTNs < 0 || est.RTTNs > int64(2*time.Second) {
		t.Fatalf("rtt = %v, want a sane loopback round trip", time.Duration(est.RTTNs))
	}
	// Same machine, same clock: |offset| must be far below the probe
	// timeout. Loopback scheduling noise keeps it well under a second.
	if off := est.OffsetNs; off < -int64(time.Second) || off > int64(time.Second) {
		t.Fatalf("same-host offset = %v, want ~0", time.Duration(off))
	}

	// Probe traffic must not leak into the control channel.
	ev.mu.Lock()
	frames := len(ev.frames)
	ev.mu.Unlock()
	if frames != 0 {
		t.Fatalf("probe leaked %d frames into OnFrame", frames)
	}

	// The lease still carries ordinary control frames in both directions.
	if err := l.Send(7, []byte("up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "control frame", func() bool {
		ev.mu.Lock()
		defer ev.mu.Unlock()
		return len(ev.frames) == 1 && ev.frames[0] == 7
	})
	if err := reg.Send(l.ID(), 9, []byte("down")); err != nil {
		t.Fatal(err)
	}
	if b, err := l.Recv(9, 5*time.Second); err != nil || string(b) != "down" {
		t.Fatalf("recv after probe: %q, %v", b, err)
	}

	// Unknown lease id errors instead of hanging.
	if _, err := reg.ProbeClock(999, 1, 100*time.Millisecond); err == nil {
		t.Fatal("probe of unknown lease must error")
	}
}
