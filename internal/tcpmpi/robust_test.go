package tcpmpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSelfSendDoesNotAliasPayload: a self-delivered message must survive
// the caller mutating its buffer after Send returns.
func TestSelfSendDoesNotAliasPayload(t *testing.T) {
	c, err := Dial(0, []string{"unused"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := []byte("original")
	if err := c.Send(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBERED")
	got, err := c.Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("self-send aliased the caller's buffer: got %q", got)
	}
}

// TestRecvTimeout: with a per-operation deadline configured, a Recv for a
// message that never comes returns a timeout error instead of blocking
// forever, even while the peer is alive and heartbeating.
func TestRecvTimeout(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{Timeout: 250 * time.Millisecond}
	var wg sync.WaitGroup
	var recvErr error
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := DialOptions(0, addrs, opt)
		if err != nil {
			recvErr = err
			return
		}
		defer c.Close()
		start := time.Now()
		_, recvErr = c.Recv(1, 99)
		if recvErr != nil && time.Since(start) > 5*time.Second {
			recvErr = nil // an error that slow is a hang, not a deadline
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		c, err := DialOptions(1, addrs, opt)
		if err != nil {
			return
		}
		defer c.Close()
		<-stop
	}()
	wg.Wait()
	if recvErr == nil || !strings.Contains(recvErr.Error(), "timeout") {
		t.Fatalf("want timeout error, got %v", recvErr)
	}
}

// TestDialRejectsSilentClient: a client that connects to the mesh listener
// but never sends its rank hello must not wedge world setup — the
// handshake read deadline (bounded by DialTimeout) discards it and Dial
// fails within the dial timeout instead of hanging forever.
func TestDialRejectsSilentClient(t *testing.T) {
	addrs := freeAddrs(t, 2)
	done := make(chan error, 1)
	go func() {
		c, err := DialOptions(0, addrs, Options{DialTimeout: 400 * time.Millisecond})
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	// Give rank 0 a moment to listen, then connect without a hello.
	var rogue net.Conn
	for i := 0; i < 100; i++ {
		var err error
		if rogue, err = net.Dial("tcp", addrs[0]); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rogue != nil {
		defer rogue.Close()
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Dial succeeded without rank 1 ever saying hello")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Dial hung on a client that never completed the handshake")
	}
}

// TestSilentPeerDetected: a peer that completes the handshake and then
// goes silent (wedged, not closed) is detected by the missing heartbeats
// within the configured bound, and pending receives fail instead of
// blocking forever.
func TestSilentPeerDetected(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		// Small reconnect budget: the listener side waits it out before
		// declaring the silent peer dead, and this test wants that verdict
		// well inside its deadline.
		ReconnectAttempts:   1,
		ReconnectBackoffMax: 100 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		c, err := DialOptions(0, addrs, opt)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Recv(1, 7)
		done <- err
	}()
	// Fake rank 1: hello, then total silence with the connection held open.
	var conn net.Conn
	for i := 0; i < 200; i++ {
		var err error
		if conn, err = net.Dial("tcp", addrs[0]); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("could not reach rank 0's listener")
	}
	defer conn.Close()
	var hello [helloLen]byte
	binary.LittleEndian.PutUint32(hello[0:4], 1)
	binary.LittleEndian.PutUint32(hello[8:12], helloFresh)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var reply [replyLen]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv succeeded with no message")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("silent peer never detected")
	}
}

// TestSendSurvivesReconnect: severing the underlying connection mid-world
// must not lose the rank — the dialer side re-dials once, sends retry with
// backoff across the gap, and traffic resumes.
func TestSendSurvivesReconnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		Retries:           8,
		RetryBackoff:      20 * time.Millisecond,
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	comms := make([]*Comm, 2)
	ready := make(chan struct{}, 2)
	start := make(chan struct{})
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(rank int) {
			defer wg.Done()
			c, err := DialOptions(rank, addrs, opt)
			if err != nil {
				errs[rank] = err
				ready <- struct{}{}
				return
			}
			comms[rank] = c
			defer c.Close()
			ready <- struct{}{}
			<-start
			if rank == 1 {
				errs[rank] = c.Send(0, 42, []byte("after the storm"))
				return
			}
			got, err := c.Recv(1, 42)
			if err != nil {
				errs[rank] = err
				return
			}
			if string(got) != "after the storm" {
				errs[rank] = fmt.Errorf("got %q", got)
			}
		}(r)
	}
	<-ready
	<-ready
	if comms[1] != nil {
		// Sever rank 1's connection to rank 0 out from under it. Rank 1
		// originally dialed, so it owns the reconnect attempt.
		p := comms[1].peers[0]
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	close(start)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
