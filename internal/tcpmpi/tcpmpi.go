// Package tcpmpi is a TCP-backed implementation of the point-to-point and
// collective operations the CA-SVM methods need, for genuinely
// multi-process runs (one OS process per rank, possibly on different
// hosts). It mirrors the semantics of internal/mpi: tagged selective
// receive, binomial-tree broadcast, gather, scatter, allreduce-sum and
// barrier — without the virtual clock, since real deployments measure real
// time.
//
// Wire protocol per frame (little endian):
//
//	int32 tag | uint32 seq | int64 sendNs | uint32 len | len bytes payload
//
// seq is a per-direction data-frame counter (1, 2, …) that survives
// reconnects, letting the receiver drop frames replayed by a send retry.
// seq 0 marks control frames (heartbeats), which are never deduplicated.
// sendNs is the sender's wall clock (unix nanoseconds) at Send time; with
// Options.Timeline set, the receiver records a cross-process flow edge
// (send→recv, bytes, wall timestamps) per delivered data frame, matching
// the causal trace internal/mpi records for simulated worlds. It is 0 on
// control frames and purely observational otherwise.
//
// Connection setup: rank i listens on addrs[i]; every pair (i < j) shares
// one connection dialed by j, which introduces itself with a 12-byte hello
// (rank, the highest data seq it has received from the acceptor, flags);
// the acceptor answers with an 8-byte reply carrying its own received seq.
// The exchanged sequence numbers make every (re)connection a resume
// handshake: each side replays buffered sent frames the other has not seen
// (bounded by Options.ReplayWindow), and the receiver's seq dedup turns the
// at-least-once replay into exactly-once delivery. Hello flag bit 0 marks a
// fresh incarnation — a dialer process connecting to this peer for the
// first time (e.g. a respawned worker); the acceptor then resets its
// per-peer sequence state so the new process's numbering starts clean.
//
// Fault tolerance: every connection carries periodic heartbeat frames, so
// a silently dead peer is detected within a bounded interval
// (Options.HeartbeatTimeout). A broken connection is re-established by the
// original dialer (higher rank) with capped exponential backoff plus
// jitter (Options.ReconnectAttempts/ReconnectBackoff/ReconnectBackoffMax)
// while the listener side waits out the dialer's budget — only then is the
// peer declared dead. Sends are retried with exponential backoff across
// the reconnect, and per-operation deadlines (Options.Timeout) bound how
// long Send/Recv can block. A peer that re-dials after being declared dead
// is resurrected (the death mark clears on the fresh connection), which is
// what lets an elastic supervisor re-spawn a lost worker process.
package tcpmpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"casvm/internal/trace"
)

// DialTimeout is the default bound on connection establishment
// (Options.DialTimeout overrides it).
const DialTimeout = 30 * time.Second

// maxFrame bounds a frame payload; larger length fields mean a corrupt or
// hostile stream.
const maxFrame = 1 << 30

// frameHeaderLen is tag (4) + seq (4) + sendNs (8) + len (4).
const frameHeaderLen = 20

// hbTag marks heartbeat frames; it lives outside the int32 range user and
// collective tags occupy (they are non-negative).
const hbTag = math.MinInt32

// Options tunes the failure-handling behaviour of a Comm. The zero value
// gives 30s dial timeout, 2s heartbeats with 8s silence threshold, two
// send retries starting at 50ms backoff, and unbounded Recv.
type Options struct {
	// Timeout bounds each Send and Recv call (and, through them, each
	// collective hop). 0 means sends fall back to HeartbeatTimeout for
	// their write deadline and receives block until the peer is declared
	// dead or the Comm is closed.
	Timeout time.Duration

	// DialTimeout bounds mesh establishment, including the hello
	// handshake read on accepted connections. 0 means 30s.
	DialTimeout time.Duration

	// HeartbeatInterval is the keepalive period per connection. 0 means
	// 2s; negative disables heartbeats (and silent-peer detection).
	HeartbeatInterval time.Duration

	// HeartbeatTimeout is how long a peer may stay silent before it is
	// presumed dead and recovery starts. 0 means 4× the interval. It
	// also bounds how long the listener side waits for a reconnect.
	HeartbeatTimeout time.Duration

	// Retries is how many times a failed send is retried (across a
	// reconnect) before the error is returned. 0 means 2; negative
	// disables retries.
	Retries int

	// RetryBackoff is the initial retry delay, doubled per attempt.
	// 0 means 50ms.
	RetryBackoff time.Duration

	// DisableReconnect declares a rank dead on the first connection
	// failure instead of attempting any reconnects.
	DisableReconnect bool

	// ReconnectAttempts is how many times the dialer side re-dials a
	// broken connection before declaring the peer dead. 0 means 4.
	ReconnectAttempts int

	// ReconnectBackoff is the delay before the second reconnect attempt,
	// doubled per attempt up to ReconnectBackoffMax, with up to 50%
	// additive jitter so restarted fleets do not re-dial in lockstep.
	// 0 means 100ms.
	ReconnectBackoff time.Duration

	// ReconnectBackoffMax caps the exponential reconnect backoff.
	// 0 means 2s.
	ReconnectBackoffMax time.Duration

	// ReconnectJitter, when non-nil, supplies the additive reconnect
	// backoff jitter: it is called with the jitter ceiling (half the
	// current backoff) and must return a duration in [0, max]. Nil draws
	// from the process-global RNG. Chaos runs install a seeded source here
	// (faults.Schedule.JitterFunc) so a replayed fault schedule reproduces
	// identical reconnect timing.
	ReconnectJitter func(max time.Duration) time.Duration

	// ReplayWindow is how many sent data frames each peer connection
	// retains for the resume handshake: on reconnect, frames the other
	// side has not acknowledged receiving are replayed (receiver-side seq
	// dedup keeps delivery exactly-once). 0 means 64; negative disables
	// replay (reconnects resume without redelivery).
	ReplayWindow int

	// Peers, when non-nil, restricts the mesh to the listed ranks: only
	// they are dialed/awaited at setup and heartbeated, and Send/Recv to
	// any other rank fails immediately. An elastic worker that only talks
	// to a coordinator joins with Peers: []int{0} instead of paying the
	// full-mesh handshake. Nil keeps the complete mesh.
	Peers []int

	// Metrics, when non-nil, receives transport health counters and the
	// heartbeat-gap histogram (time between keepalives actually observed
	// per peer — the silence detector's input). Nil records nothing and
	// keeps the hot paths allocation-free.
	Metrics *trace.Registry

	// Timeline, when non-nil, records this rank's side of the causal
	// trace: wall-clock collective spans and one flow edge per delivered
	// data frame (edge ids are synthesized from (src, seq), so they are
	// unique within the receiving process). Real deployments have no
	// shared virtual clock, so edges carry wall timestamps only. Nil
	// keeps every path record-free.
	Timeline *trace.Timeline
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DialTimeout
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		if o.HeartbeatInterval > 0 {
			o.HeartbeatTimeout = 4 * o.HeartbeatInterval
		} else {
			o.HeartbeatTimeout = 8 * time.Second
		}
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.ReconnectAttempts <= 0 {
		o.ReconnectAttempts = 4
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 100 * time.Millisecond
	}
	if o.ReconnectBackoffMax <= 0 {
		o.ReconnectBackoffMax = 2 * time.Second
	}
	if o.ReplayWindow == 0 {
		o.ReplayWindow = 64
	}
	return o
}

// reconnectBudget bounds how long the listener side waits for the dialer's
// reconnect attempts before declaring the peer dead: the silence-detection
// window plus headroom for every backed-off dial.
func (o Options) reconnectBudget() time.Duration {
	return o.HeartbeatTimeout +
		time.Duration(o.ReconnectAttempts)*(o.ReconnectBackoffMax+time.Second)
}

// writeDeadline returns the deadline for one frame write (zero time = none).
func (o Options) writeDeadline() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	if o.HeartbeatInterval > 0 {
		return o.HeartbeatTimeout
	}
	return 0
}

// sentFrame is one retained data frame in a peer's replay ring.
type sentFrame struct {
	seq    uint32
	tag    int
	sendNs int64
	data   []byte
}

// peer is the connection state for one remote rank.
type peer struct {
	mu        sync.Mutex
	conn      net.Conn // nil until connected
	gen       int      // bumped on every (re)connection
	broken    bool     // current conn failed; recovery pending or done
	replaying bool     // a resume handshake owns the conn until its replay drains
	lastSeen  time.Time
	recvSeq   uint32 // highest data seq received (dedup across reconnects)

	sendMu      sync.Mutex  // serializes whole send operations, incl. retries
	sendSeq     uint32      // data frames sent (guarded by sendMu)
	ring        []sentFrame // recent data frames for resume replay (guarded by sendMu)
	replayedSeq uint32      // highest seq redelivered by a resume handshake (guarded by sendMu)
}

// remember appends a sent data frame to the replay ring, bounded by the
// configured window. Caller holds sendMu.
func (p *peer) remember(f sentFrame, window int) {
	if window <= 0 {
		return
	}
	p.ring = append(p.ring, f)
	if len(p.ring) > window {
		copy(p.ring, p.ring[len(p.ring)-window:])
		p.ring = p.ring[:window]
	}
}

// unacked returns the retained frames with seq greater than after, in send
// order — what the resume handshake replays.
func (p *peer) unacked(after uint32) []sentFrame {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	var out []sentFrame
	for _, f := range p.ring {
		if f.seq > after {
			out = append(out, f)
		}
	}
	return out
}

func (p *peer) touch() {
	p.mu.Lock()
	p.lastSeen = time.Now()
	p.mu.Unlock()
}

// Comm is one process's endpoint in a TCP world.
type Comm struct {
	rank, size int
	addrs      []string
	opt        Options
	peers      []*peer
	peerSet    map[int]bool // nil = full mesh; else the ranks this Comm talks to
	ln         net.Listener // nil for size-1 worlds

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int][]message // per-source unexpected-message queues
	dead   map[int]error     // per-source connection failures
	closed error

	done     chan struct{} // closed by Close; stops background goroutines
	doneOnce sync.Once

	collSeq int

	// Metric handles resolved once at Dial; all nil (no-op) without a
	// registry in Options.Metrics.
	mHBGap         *trace.Histogram // observed gap between keepalives, seconds
	mReconnects    *trace.Counter   // successful connection replacements
	mReconnTries   *trace.Counter   // reconnect dial attempts (incl. failures)
	mReconnBackoff *trace.Counter   // milliseconds slept in reconnect backoff
	mRetries       *trace.Counter   // send attempts that had to be retried
	mReplayed      *trace.Counter   // data frames replayed by resume handshakes
	mPeerDead      *trace.Counter   // peers declared dead
	mSentBytes     *trace.Counter   // data payload bytes written (excl. retries' duplicates)

	// rec is this rank's trace recorder (nil without Options.Timeline).
	// Only the goroutine driving Send/Recv/collectives touches it — the
	// read loops pass frame metadata through the message queue instead of
	// recording themselves, preserving the recorder's single-owner rule.
	rec *trace.Recorder
}

type message struct {
	tag    int
	data   []byte
	seq    uint32 // wire sequence (0 for self-sends: no flow edge)
	sendNs int64  // sender's wall clock from the frame header
}

// Dial joins the world with default options. See DialOptions.
func Dial(rank int, addrs []string) (*Comm, error) {
	return DialOptions(rank, addrs, Options{})
}

// DialOptions joins the world: rank r listens on addrs[r], accepts
// connections from higher ranks and dials lower ranks. It blocks until the
// full mesh is up or the dial timeout expires.
func DialOptions(rank int, addrs []string, opt Options) (*Comm, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcpmpi: rank %d outside [0,%d)", rank, size)
	}
	c := &Comm{
		rank:   rank,
		size:   size,
		addrs:  append([]string(nil), addrs...),
		opt:    opt.withDefaults(),
		peers:  make([]*peer, size),
		queues: map[int][]message{},
		dead:   map[int]error{},
		done:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	for r := range c.peers {
		c.peers[r] = &peer{}
	}
	c.rec = c.opt.Timeline.Rank(rank) // nil-safe: nil timeline, nil recorder
	if reg := c.opt.Metrics; reg != nil {
		c.mHBGap = reg.Histogram("tcpmpi_heartbeat_gap_seconds",
			"Observed gap between keepalives per peer connection.",
			trace.ExpBuckets(0.001, 4, 8))
		c.mReconnects = reg.Counter("tcpmpi_reconnects_total",
			"Connections successfully replaced after a failure.")
		c.mReconnTries = reg.Counter("tcpmpi_reconnect_attempts_total",
			"Reconnect dial attempts, including ones that failed.")
		c.mReconnBackoff = reg.Counter("tcpmpi_reconnect_backoff_ms_total",
			"Milliseconds slept in reconnect backoff (with jitter).")
		c.mRetries = reg.Counter("tcpmpi_send_retries_total",
			"Send attempts that failed and were retried.")
		c.mReplayed = reg.Counter("tcpmpi_replayed_frames_total",
			"Data frames replayed to a peer by resume handshakes.")
		c.mPeerDead = reg.Counter("tcpmpi_peer_failures_total",
			"Peers declared dead after recovery failed.")
		c.mSentBytes = reg.Counter("tcpmpi_sent_bytes_total",
			"Data payload bytes handed to Send.")
	}
	if opt.Peers != nil {
		c.peerSet = map[int]bool{}
		for _, r := range opt.Peers {
			if r >= 0 && r < size && r != rank {
				c.peerSet[r] = true
			}
		}
	}
	if size == 1 {
		return c, nil
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("tcpmpi: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	c.ln = ln
	go c.acceptLoop(ln)

	// Dial every lower rank in the mesh (or peer subset).
	var wg sync.WaitGroup
	errCh := make(chan error, size)
	for dst := 0; dst < rank; dst++ {
		if !c.isPeer(dst) {
			continue
		}
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			conn, theirRecv, err := c.dialPeer(dst)
			if err != nil {
				errCh <- err
				return
			}
			c.resumeConn(dst, conn, theirRecv)
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		c.Close()
		return nil, err
	default:
	}

	// Wait for every higher rank's hello, delivered by the accept loop.
	deadline := time.Now().Add(c.opt.DialTimeout)
	for {
		missing := -1
		for r := rank + 1; r < size; r++ {
			if !c.isPeer(r) {
				continue
			}
			c.peers[r].mu.Lock()
			up := c.peers[r].conn != nil
			c.peers[r].mu.Unlock()
			if !up {
				missing = r
				break
			}
		}
		if missing < 0 {
			break
		}
		if time.Now().After(deadline) {
			c.Close()
			return nil, fmt.Errorf("tcpmpi: rank %d: timed out waiting for hello from rank %d", rank, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if c.opt.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// helloLen is the dialer's resume hello: u32 rank | u32 recvSeq | u32
// flags. replyLen is the acceptor's answer: u32 recvSeq | u32 reserved.
const (
	helloLen = 12
	replyLen = 8
)

// Hello flag bits. Any other bit set marks a malformed or
// incompatible-version hello, which the decoder rejects outright —
// mis-parsing a watermark as a flag word (or vice versa) must never
// silently mis-resume a connection.
const (
	// helloFresh marks the dialer as a fresh incarnation: its first-ever
	// connection to this peer, with zeroed sequence state.
	helloFresh = 1 << 0
	// helloRegister marks a worker registering with a cluster Registrar
	// instead of joining a rank mesh: the rank field is ignored, the reply's
	// first word carries the assigned worker id and its second the lease
	// TTL in milliseconds.
	helloRegister = 1 << 1
	// helloClient marks a cluster client (job submitter): registered like a
	// worker but never counted as training capacity.
	helloClient = 1 << 2

	helloKnownFlags = helloFresh | helloRegister | helloClient
)

// helloMsg is the decoded 12-byte hello.
type helloMsg struct {
	rank    uint32 // dialing rank (mesh) — ignored on register/client hellos
	recvSeq uint32 // highest data seq the dialer has received from us
	flags   uint32
}

// parseHello decodes and validates a hello. Unknown flag bits are rejected:
// a corrupt or version-skewed hello must fail the handshake, not resume
// from a garbage watermark.
func parseHello(b []byte) (helloMsg, error) {
	if len(b) < helloLen {
		return helloMsg{}, fmt.Errorf("tcpmpi: short hello (%d bytes)", len(b))
	}
	h := helloMsg{
		rank:    binary.LittleEndian.Uint32(b[0:4]),
		recvSeq: binary.LittleEndian.Uint32(b[4:8]),
		flags:   binary.LittleEndian.Uint32(b[8:12]),
	}
	if h.flags&^uint32(helloKnownFlags) != 0 {
		return helloMsg{}, fmt.Errorf("tcpmpi: hello with unknown flags %#x", h.flags)
	}
	if h.flags&helloRegister != 0 && h.flags&helloClient != 0 {
		return helloMsg{}, errors.New("tcpmpi: hello is both worker and client registration")
	}
	return h, nil
}

// putHello encodes a hello into b (len ≥ helloLen).
func putHello(b []byte, h helloMsg) {
	binary.LittleEndian.PutUint32(b[0:4], h.rank)
	binary.LittleEndian.PutUint32(b[4:8], h.recvSeq)
	binary.LittleEndian.PutUint32(b[8:12], h.flags)
}

// dialPeer establishes (or re-establishes) the connection to a lower rank,
// retrying the TCP dial until the dial timeout, and performs the resume
// handshake. It returns the peer's received-seq watermark — the replay
// point for frames it never saw.
func (c *Comm) dialPeer(dst int) (net.Conn, uint32, error) {
	deadline := time.Now().Add(c.opt.DialTimeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", c.addrs[dst], time.Second)
		if err == nil || time.Now().After(deadline) {
			break
		}
		select {
		case <-c.done:
			return nil, 0, errors.New("tcpmpi: closed during dial")
		case <-time.After(50 * time.Millisecond):
		}
	}
	if err != nil {
		return nil, 0, fmt.Errorf("tcpmpi: dial rank %d at %s: %w", dst, c.addrs[dst], err)
	}
	theirRecv, err := c.dialHandshake(conn, dst)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, theirRecv, nil
}

// dialPeerOnce is dialPeer with a single TCP dial attempt — the reconnect
// loop owns its own backoff schedule, so the inner retry loop would fight
// it.
func (c *Comm) dialPeerOnce(dst int) (net.Conn, uint32, error) {
	conn, err := net.DialTimeout("tcp", c.addrs[dst], c.opt.ReconnectBackoffMax)
	if err != nil {
		return nil, 0, fmt.Errorf("tcpmpi: dial rank %d at %s: %w", dst, c.addrs[dst], err)
	}
	theirRecv, err := c.dialHandshake(conn, dst)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, theirRecv, nil
}

// dialHandshake runs the dialer side of the resume handshake: send our rank
// and received-seq watermark, read back the acceptor's watermark.
func (c *Comm) dialHandshake(conn net.Conn, dst int) (uint32, error) {
	p := c.peers[dst]
	p.mu.Lock()
	ourRecv := p.recvSeq
	fresh := p.gen == 0 // no connection ever installed: first incarnation
	p.mu.Unlock()
	var flags uint32
	if fresh {
		flags |= helloFresh
	}
	var hello [helloLen]byte
	putHello(hello[:], helloMsg{rank: uint32(c.rank), recvSeq: ourRecv, flags: flags})
	conn.SetWriteDeadline(time.Now().Add(c.opt.DialTimeout))
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, fmt.Errorf("tcpmpi: hello to rank %d: %w", dst, err)
	}
	conn.SetWriteDeadline(time.Time{})
	var reply [replyLen]byte
	conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, fmt.Errorf("tcpmpi: hello reply from rank %d: %w", dst, err)
	}
	conn.SetReadDeadline(time.Time{})
	return binary.LittleEndian.Uint32(reply[0:4]), nil
}

// resumeConn installs a fresh connection and replays the unacked frames
// while holding off concurrent Sends. The hold-off matters for ordering: a
// Send that slipped a new (higher-seq) frame onto the fresh connection
// before the replay drained would bump the receiver's watermark past the
// replayed frames, and its dedup would then drop them as stale duplicates —
// silently losing frames the sender reported (or will report) as delivered.
// The connection is installed first so both sides' read loops are up before
// either side replays; replaying before install could deadlock two peers
// whose simultaneous replays fill the unread TCP buffers in both directions.
func (c *Comm) resumeConn(src int, conn net.Conn, theirRecv uint32) {
	p := c.peers[src]
	p.mu.Lock()
	p.replaying = true
	p.mu.Unlock()
	c.installConn(src, conn)
	c.replayUnacked(src, conn, theirRecv)
	p.mu.Lock()
	p.replaying = false
	p.mu.Unlock()
	c.cond.Broadcast()
}

// replayUnacked re-sends the retained data frames the peer has not seen
// (seq > theirRecv) over a fresh connection — the sender half of the
// resume handshake. Receiver-side dedup keeps redelivery exactly-once.
// Frames are pulled from the ring one at a time so a concurrent Send that
// fails (and scrubs its frame) is not redelivered from a stale snapshot.
func (c *Comm) replayUnacked(src int, conn net.Conn, theirRecv uint32) {
	p := c.peers[src]
	after := theirRecv
	replayed := 0
	for {
		p.sendMu.Lock()
		var f sentFrame
		found := false
		for i := range p.ring {
			if p.ring[i].seq > after {
				f, found = p.ring[i], true
				break
			}
		}
		p.sendMu.Unlock()
		if !found {
			break
		}
		if err := c.writeFrame(p, conn, f.tag, f.seq, f.sendNs, f.data); err != nil {
			return // the read loop notices the broken conn; next reconnect replays again
		}
		// A replayed frame is a successful transmission: a Send stuck in
		// its retry loop for this seq can report success instead of
		// re-sending (the receiver would dedup the duplicate anyway).
		p.sendMu.Lock()
		if f.seq > p.replayedSeq {
			p.replayedSeq = f.seq
		}
		p.sendMu.Unlock()
		after = f.seq
		replayed++
	}
	if replayed > 0 {
		c.mReplayed.Add(int64(replayed))
	}
}

// finishSend resolves a send that is about to report failure: if a resume
// handshake already replayed the frame it is a success after all (true);
// otherwise the frame is scrubbed from the replay ring, so a later
// reconnect cannot deliver a message the caller was told had failed.
func (c *Comm) finishSend(p *peer, seq uint32) bool {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	if p.replayedSeq >= seq {
		return true
	}
	for i := range p.ring {
		if p.ring[i].seq == seq {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			break
		}
	}
	return false
}

// acceptLoop runs for the life of the Comm: it accepts initial connections
// from higher ranks during setup and replacement connections after a
// failure. A client that connects but never sends its hello is discarded
// when the handshake read deadline (bounded by DialTimeout) expires, so it
// cannot stall world startup.
func (c *Comm) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		go func(conn net.Conn) {
			var buf [helloLen]byte
			conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
			if _, err := io.ReadFull(conn, buf[:]); err != nil {
				conn.Close() // silent or half-open client: drop it
				return
			}
			conn.SetReadDeadline(time.Time{})
			h, err := parseHello(buf[:])
			if err != nil {
				conn.Close() // malformed or version-skewed hello
				return
			}
			if h.flags&(helloRegister|helloClient) != 0 {
				conn.Close() // registration belongs to a Registrar, not a mesh rank
				return
			}
			src := int(h.rank)
			if src <= c.rank || src >= c.size {
				conn.Close() // bogus hello
				return
			}
			theirRecv := h.recvSeq
			p := c.peers[src]
			if h.flags&helloFresh != 0 {
				// A fresh incarnation (respawned process) numbers its
				// frames from 1 again and remembers nothing of ours:
				// reset our per-peer sequence state to match.
				p.mu.Lock()
				p.recvSeq = 0
				p.mu.Unlock()
				p.sendMu.Lock()
				p.sendSeq = 0
				p.ring = nil
				p.replayedSeq = 0
				p.sendMu.Unlock()
			}
			// Answer with our received-seq watermark so the dialer can
			// replay what we never saw.
			p.mu.Lock()
			ourRecv := p.recvSeq
			p.mu.Unlock()
			var reply [replyLen]byte
			binary.LittleEndian.PutUint32(reply[0:4], ourRecv)
			conn.SetWriteDeadline(time.Now().Add(c.opt.DialTimeout))
			if _, err := conn.Write(reply[:]); err != nil {
				conn.Close()
				return
			}
			conn.SetWriteDeadline(time.Time{})
			c.resumeConn(src, conn, theirRecv)
		}(conn)
	}
}

// installConn swaps in a fresh connection for src (initial setup or
// reconnect) and starts its reader. A fresh connection also resurrects a
// peer previously declared dead — the elastic-recovery path where a
// supervisor respawns a crashed worker process, which then re-dials.
func (c *Comm) installConn(src int, conn net.Conn) {
	p := c.peers[src]
	p.mu.Lock()
	if old := p.conn; old != nil {
		old.Close()
	}
	p.conn = conn
	p.gen++
	p.broken = false
	p.lastSeen = time.Now()
	gen := p.gen
	p.mu.Unlock()
	c.mu.Lock()
	delete(c.dead, src)
	c.mu.Unlock()
	c.cond.Broadcast()
	go c.readLoop(src, conn, gen)
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Close tears down all connections; blocked receivers fail.
func (c *Comm) Close() error {
	c.mu.Lock()
	if c.closed == nil {
		c.closed = errors.New("tcpmpi: closed")
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.cond.Broadcast()
	if c.ln != nil {
		c.ln.Close()
	}
	for _, p := range c.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	return nil
}

func (c *Comm) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed != nil
}

// isPeer reports whether this Comm talks to rank r — always true for the
// full mesh, the Options.Peers subset otherwise.
func (c *Comm) isPeer(r int) bool { return c.peerSet == nil || c.peerSet[r] }

// parseFrameHeader decodes one 20-byte frame header, rejecting oversized
// payload lengths.
func parseFrameHeader(hdr []byte) (tag int, seq uint32, sendNs int64, n uint32, err error) {
	if len(hdr) < frameHeaderLen {
		return 0, 0, 0, 0, fmt.Errorf("tcpmpi: short frame header (%d bytes)", len(hdr))
	}
	tag = int(int32(binary.LittleEndian.Uint32(hdr[:4])))
	seq = binary.LittleEndian.Uint32(hdr[4:8])
	sendNs = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	n = binary.LittleEndian.Uint32(hdr[16:20])
	if n > maxFrame {
		return 0, 0, 0, 0, fmt.Errorf("tcpmpi: oversized frame (%d bytes)", n)
	}
	return tag, seq, sendNs, n, nil
}

// putFrameHeader encodes a frame header into hdr (len ≥ frameHeaderLen).
func putFrameHeader(hdr []byte, tag int, seq uint32, sendNs int64, n int) {
	binary.LittleEndian.PutUint32(hdr[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[4:8], seq)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(sendNs))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(n))
}

// readFrame reads one complete frame from r.
func readFrame(r io.Reader) (tag int, seq uint32, sendNs int64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	var n uint32
	if tag, seq, sendNs, n, err = parseFrameHeader(hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return tag, seq, sendNs, payload, nil
}

func (c *Comm) readLoop(src int, conn net.Conn, gen int) {
	p := c.peers[src]
	for {
		tag, seq, sendNs, data, err := readFrame(conn)
		if err != nil {
			c.peerBroken(src, gen, fmt.Errorf("tcpmpi: read from rank %d: %w", src, err))
			return
		}
		if tag == hbTag {
			p.mu.Lock()
			gap := time.Since(p.lastSeen)
			p.lastSeen = time.Now()
			p.mu.Unlock()
			c.mHBGap.Observe(gap.Seconds())
			continue
		}
		p.touch()
		if seq != 0 {
			// Drop frames replayed by a send retry across a reconnect.
			p.mu.Lock()
			if seq <= p.recvSeq {
				p.mu.Unlock()
				continue
			}
			p.recvSeq = seq
			p.mu.Unlock()
		}
		c.mu.Lock()
		c.queues[src] = append(c.queues[src], message{tag: tag, data: data, seq: seq, sendNs: sendNs})
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// peerBroken handles a failed connection to src: at most one caller per
// generation proceeds; it closes the connection and attempts the single
// allowed recovery (re-dial for lower ranks, wait-for-replacement for
// higher ranks) before declaring the rank dead.
func (c *Comm) peerBroken(src, gen int, cause error) {
	if c.isClosed() {
		return
	}
	p := c.peers[src]
	p.mu.Lock()
	if p.gen != gen || p.broken {
		p.mu.Unlock()
		return
	}
	p.broken = true
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()

	go c.recoverPeer(src, gen, cause)
}

func (c *Comm) recoverPeer(src, gen int, cause error) {
	if c.opt.DisableReconnect {
		c.fail(src, cause)
		return
	}
	if src < c.rank {
		// We dialed this peer originally: re-dial with capped exponential
		// backoff plus jitter, then resume-handshake and replay.
		backoff := c.opt.ReconnectBackoff
		var lastErr error
		for attempt := 1; attempt <= c.opt.ReconnectAttempts; attempt++ {
			if c.isClosed() {
				return
			}
			c.mReconnTries.Add(1)
			conn, theirRecv, err := c.dialPeerOnce(src)
			if err == nil {
				p := c.peers[src]
				p.mu.Lock()
				stale := p.gen != gen
				p.mu.Unlock()
				if stale {
					conn.Close() // someone else already recovered
					return
				}
				c.resumeConn(src, conn, theirRecv)
				c.mReconnects.Add(1)
				return
			}
			lastErr = err
			if attempt == c.opt.ReconnectAttempts {
				break
			}
			// Additive jitter up to 50% keeps a restarted fleet from
			// hammering the listener in lockstep.
			sleep := backoff + c.jitter(backoff/2)
			c.mReconnBackoff.Add(sleep.Milliseconds())
			select {
			case <-c.done:
				return
			case <-time.After(sleep):
			}
			backoff *= 2
			if backoff > c.opt.ReconnectBackoffMax {
				backoff = c.opt.ReconnectBackoffMax
			}
		}
		c.fail(src, fmt.Errorf("tcpmpi: rank %d dead (%d reconnect attempts failed, last: %v): %w",
			src, c.opt.ReconnectAttempts, lastErr, cause))
		return
	}
	// The peer dialed us: wait out its reconnect budget (its backed-off
	// dials plus detection latency), then give up.
	budget := c.opt.reconnectBudget()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		select {
		case <-c.done:
			return
		case <-time.After(10 * time.Millisecond):
		}
		p := c.peers[src]
		p.mu.Lock()
		recovered := p.gen > gen && !p.broken
		p.mu.Unlock()
		if recovered {
			c.mReconnects.Add(1)
			return
		}
	}
	c.fail(src, fmt.Errorf("tcpmpi: rank %d dead (no reconnect within %v): %w", src, budget, cause))
}

// heartbeatLoop sends keepalives on every connection and declares peers
// that have been silent past the threshold broken, so a wedged (but not
// closed) peer is detected within a bounded interval.
func (c *Comm) heartbeatLoop() {
	ticker := time.NewTicker(c.opt.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		for r := 0; r < c.size; r++ {
			if r == c.rank || !c.isPeer(r) {
				continue
			}
			if c.isDead(r) {
				continue
			}
			p := c.peers[r]
			p.mu.Lock()
			conn, gen, broken, last := p.conn, p.gen, p.broken, p.lastSeen
			p.mu.Unlock()
			if conn == nil || broken {
				continue
			}
			if time.Since(last) > c.opt.HeartbeatTimeout {
				c.peerBroken(r, gen, fmt.Errorf("tcpmpi: rank %d silent for %v", r, c.opt.HeartbeatTimeout))
				continue
			}
			c.writeFrame(p, conn, hbTag, 0, 0, nil)
			// Write errors surface through the reader of the same
			// connection or the silence threshold; nothing to do here.
		}
	}
}

// writeFrame writes one frame (header + payload) under the peer's send
// lock with the configured write deadline.
func (c *Comm) writeFrame(p *peer, conn net.Conn, tag int, seq uint32, sendNs int64, data []byte) error {
	buf := make([]byte, frameHeaderLen+len(data))
	putFrameHeader(buf, tag, seq, sendNs, len(data))
	copy(buf[frameHeaderLen:], data)
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	if d := c.opt.writeDeadline(); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// jitter draws the additive reconnect jitter in [0, max] — from the
// configured deterministic source when one is installed, the process-global
// RNG otherwise.
func (c *Comm) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	if j := c.opt.ReconnectJitter; j != nil {
		d := j(max)
		if d < 0 {
			d = 0
		}
		if d > max {
			d = max
		}
		return d
	}
	return time.Duration(rand.Int63n(int64(max) + 1))
}

// fail marks the connection to src as dead: only operations that depend on
// src report the error, so a peer that finishes and exits early does not
// poison unrelated traffic.
func (c *Comm) fail(src int, err error) {
	c.mu.Lock()
	fresh := false
	if _, ok := c.dead[src]; !ok {
		c.dead[src] = err
		fresh = true
	}
	c.mu.Unlock()
	if fresh {
		c.mPeerDead.Add(1)
	}
	c.cond.Broadcast()
}

func (c *Comm) isDead(src int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.dead[src]
	return ok
}

func (c *Comm) deadErr(src int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[src]
}

// Send transmits data to rank dst with the given tag. Transient connection
// failures are retried with exponential backoff across the reconnect
// attempt; the frame sequence number lets the receiver discard replays, so
// a retried send is delivered at most once.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("tcpmpi: send to invalid rank %d", dst)
	}
	if dst != c.rank && !c.isPeer(dst) {
		return fmt.Errorf("tcpmpi: rank %d is not a configured peer", dst)
	}
	if dst == c.rank {
		// Copy: the caller may mutate data after Send returns, and the
		// queued message must not alias it.
		c.mu.Lock()
		c.queues[dst] = append(c.queues[dst], message{tag: tag, data: append([]byte(nil), data...)})
		c.mu.Unlock()
		c.cond.Broadcast()
		c.mSentBytes.Add(int64(len(data)))
		return nil
	}
	p := c.peers[dst]
	var sendNs int64
	if c.rec != nil {
		sendNs = time.Now().UnixNano()
	}
	p.sendMu.Lock()
	p.sendSeq++
	seq := p.sendSeq
	// Retain a copy for resume replay: a reconnect handshake re-sends
	// whatever the peer's watermark says it never received.
	p.remember(sentFrame{seq: seq, tag: tag, sendNs: sendNs,
		data: append([]byte(nil), data...)}, c.opt.ReplayWindow)
	p.sendMu.Unlock()

	replayed := func() bool {
		p.sendMu.Lock()
		defer p.sendMu.Unlock()
		return p.replayedSeq >= seq
	}
	backoff := c.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if replayed() {
			// A reconnect's resume handshake already delivered this frame.
			c.mSentBytes.Add(int64(len(data)))
			return nil
		}
		if err := c.deadErr(dst); err != nil {
			if c.finishSend(p, seq) {
				c.mSentBytes.Add(int64(len(data)))
				return nil
			}
			return err
		}
		if c.isClosed() {
			c.finishSend(p, seq)
			return errors.New("tcpmpi: closed")
		}
		p.mu.Lock()
		conn, broken := p.conn, p.broken
		// A resume handshake owns the fresh connection until its replay
		// drains (see resumeConn); treat the peer as not-ready and retry.
		if p.replaying {
			broken = true
		}
		gen := p.gen
		p.mu.Unlock()
		if conn == nil || broken {
			lastErr = fmt.Errorf("tcpmpi: no connection to rank %d", dst)
		} else if err := c.writeFrame(p, conn, tag, seq, sendNs, data); err != nil {
			lastErr = err
			c.peerBroken(dst, gen, fmt.Errorf("tcpmpi: write to rank %d: %w", dst, err))
		} else {
			c.mSentBytes.Add(int64(len(data)))
			return nil
		}
		if attempt == c.opt.Retries {
			break
		}
		c.mRetries.Add(1)
		select {
		case <-c.done:
			c.finishSend(p, seq)
			return errors.New("tcpmpi: closed")
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	if c.finishSend(p, seq) { // the last backoff window can race the reconnect
		c.mSentBytes.Add(int64(len(data)))
		return nil
	}
	return lastErr
}

// Recv blocks until a message with the given tag arrives from src, src is
// declared dead, the Comm closes, or the per-operation deadline
// (Options.Timeout) expires.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src != c.rank && (src < 0 || src >= c.size || !c.isPeer(src)) {
		return nil, fmt.Errorf("tcpmpi: rank %d is not a configured peer", src)
	}
	var deadline time.Time
	if c.opt.Timeout > 0 {
		deadline = time.Now().Add(c.opt.Timeout)
		timer := time.AfterFunc(c.opt.Timeout, c.cond.Broadcast)
		defer timer.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		q := c.queues[src]
		for i := range q {
			if q[i].tag == tag {
				m := q[i]
				c.queues[src] = append(q[:i], q[i+1:]...)
				if c.rec != nil && m.seq != 0 && src != c.rank {
					// Wall-only cross-process edge; the id is unique per
					// (src, seq) within this receiver, and the wire-level
					// replay dedup above guarantees each seq arrives once.
					c.rec.RecordFlow(trace.FlowEdge{
						ID:         int64(src+1)<<40 | int64(m.seq),
						Src:        src,
						Dst:        c.rank,
						Tag:        tag,
						Bytes:      len(m.data),
						SendWallNs: m.sendNs,
						RecvWallNs: time.Now().UnixNano(),
					})
				}
				return m.data, nil
			}
		}
		if err, ok := c.dead[src]; ok {
			return nil, err
		}
		if c.closed != nil {
			return nil, c.closed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("tcpmpi: recv from rank %d tag %d: timeout after %v", src, tag, c.opt.Timeout)
		}
		c.cond.Wait()
	}
}

func (c *Comm) nextCollTag() int {
	c.collSeq++
	return 1<<24 + c.collSeq
}

// Bcast broadcasts root's payload to every rank via a binomial tree; all
// ranks return it.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	defer c.collSpan("Bcast")()
	tag := c.nextCollTag()
	p := c.size
	vr := (c.rank - root + p) % p
	if vr != 0 {
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		src := (vr - top + root) % p
		var err error
		if data, err = c.Recv(src, tag); err != nil {
			return nil, err
		}
	}
	start := 1
	if vr != 0 {
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		start = top << 1
	}
	for step := start; vr+step < p; step <<= 1 {
		if err := c.Send((vr+step+root)%p, tag, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Gatherv collects every rank's payload at root (root gets a slice indexed
// by rank; others get nil).
func (c *Comm) Gatherv(root int, data []byte) ([][]byte, error) {
	defer c.collSpan("Gatherv")()
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.size)
	out[root] = data
	for src := 0; src < c.size; src++ {
		if src == root {
			continue
		}
		b, err := c.Recv(src, tag)
		if err != nil {
			return nil, err
		}
		out[src] = b
	}
	return out, nil
}

// Scatterv delivers blocks[r] to rank r from root.
func (c *Comm) Scatterv(root int, blocks [][]byte) ([]byte, error) {
	defer c.collSpan("Scatterv")()
	tag := c.nextCollTag()
	if c.rank == root {
		if len(blocks) != c.size {
			return nil, fmt.Errorf("tcpmpi: scatter needs %d blocks, got %d", c.size, len(blocks))
		}
		for dst := 0; dst < c.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(dst, tag, blocks[dst]); err != nil {
				return nil, err
			}
		}
		return blocks[root], nil
	}
	return c.Recv(root, tag)
}

// collSpan opens a wall-clock collective span (real deployments have no
// virtual clock); the returned func closes it. No-op without a timeline.
func (c *Comm) collSpan(name string) func() {
	if c.rec == nil {
		return func() {}
	}
	sp := c.rec.Begin(trace.CatCollective, name)
	return func() { c.rec.End(sp) }
}

// Barrier blocks until every rank enters it.
func (c *Comm) Barrier() error {
	defer c.collSpan("Barrier")()
	if _, err := c.Gatherv(0, nil); err != nil {
		return err
	}
	_, err := c.Bcast(0, nil)
	return err
}

// AllreduceSum element-wise sums x across ranks; every rank returns the
// total. Implemented as gather-to-0 + broadcast.
func (c *Comm) AllreduceSum(x []float64) ([]float64, error) {
	defer c.collSpan("AllreduceSum")()
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	parts, err := c.Gatherv(0, buf)
	if err != nil {
		return nil, err
	}
	if c.rank == 0 {
		sum := make([]float64, len(x))
		for _, part := range parts {
			if len(part) != len(buf) {
				return nil, fmt.Errorf("tcpmpi: allreduce length mismatch")
			}
			for i := range sum {
				sum[i] += math.Float64frombits(binary.LittleEndian.Uint64(part[8*i:]))
			}
		}
		for i, v := range sum {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
	}
	buf, err = c.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
