// Package tcpmpi is a TCP-backed implementation of the point-to-point and
// collective operations the CA-SVM methods need, for genuinely
// multi-process runs (one OS process per rank, possibly on different
// hosts). It mirrors the semantics of internal/mpi: tagged selective
// receive, binomial-tree broadcast, gather, scatter, allreduce-sum and
// barrier — without the virtual clock, since real deployments measure real
// time.
//
// Wire protocol per frame (little endian):
//
//	int32 tag | uint32 len | len bytes payload
//
// Connection setup: rank i listens on addrs[i]; every pair (i < j) shares
// one connection dialed by j, which introduces itself with a 4-byte rank
// header.
package tcpmpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// Comm is one process's endpoint in a TCP world.
type Comm struct {
	rank, size int
	conns      []net.Conn // conns[r] is the link to rank r (nil for self)
	writeMu    []sync.Mutex

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int][]message // per-source unexpected-message queues
	dead   map[int]error     // per-source connection failures
	closed error

	collSeq int
}

type message struct {
	tag  int
	data []byte
}

// DialTimeout bounds connection establishment.
const DialTimeout = 30 * time.Second

// Dial joins the world: rank r listens on addrs[r], accepts connections
// from higher ranks and dials lower ranks. It blocks until the full mesh is
// up or the timeout expires.
func Dial(rank int, addrs []string) (*Comm, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcpmpi: rank %d outside [0,%d)", rank, size)
	}
	c := &Comm{
		rank:    rank,
		size:    size,
		conns:   make([]net.Conn, size),
		writeMu: make([]sync.Mutex, size),
		queues:  map[int][]message{},
		dead:    map[int]error{},
	}
	c.cond = sync.NewCond(&c.mu)
	if size == 1 {
		return c, nil
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("tcpmpi: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, size)

	// Accept from every higher rank.
	expect := size - 1 - rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errCh <- err
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errCh <- err
				return
			}
			src := int(binary.LittleEndian.Uint32(hdr[:]))
			if src <= rank || src >= size {
				errCh <- fmt.Errorf("tcpmpi: bogus hello from rank %d", src)
				return
			}
			c.conns[src] = conn
		}
	}()

	// Dial every lower rank.
	for dst := 0; dst < rank; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			deadline := time.Now().Add(DialTimeout)
			var conn net.Conn
			var err error
			for {
				conn, err = net.DialTimeout("tcp", addrs[dst], time.Second)
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if err != nil {
				errCh <- fmt.Errorf("tcpmpi: dial rank %d at %s: %w", dst, addrs[dst], err)
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
			if _, err := conn.Write(hdr[:]); err != nil {
				errCh <- err
				return
			}
			c.conns[dst] = conn
		}(dst)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		c.Close()
		return nil, err
	default:
	}
	// One reader goroutine per peer.
	for r, conn := range c.conns {
		if conn == nil {
			continue
		}
		go c.readLoop(r, conn)
	}
	return c, nil
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Close tears down all connections; blocked receivers fail.
func (c *Comm) Close() error {
	c.mu.Lock()
	if c.closed == nil {
		c.closed = errors.New("tcpmpi: closed")
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
	return nil
}

func (c *Comm) readLoop(src int, conn net.Conn) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			c.fail(src, fmt.Errorf("tcpmpi: read from rank %d: %w", src, err))
			return
		}
		tag := int(int32(binary.LittleEndian.Uint32(hdr[:4])))
		n := binary.LittleEndian.Uint32(hdr[4:])
		if n > 1<<30 {
			c.fail(src, fmt.Errorf("tcpmpi: oversized frame from rank %d (%d bytes)", src, n))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			c.fail(src, fmt.Errorf("tcpmpi: read body from rank %d: %w", src, err))
			return
		}
		c.mu.Lock()
		c.queues[src] = append(c.queues[src], message{tag: tag, data: data})
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// fail marks the connection to src as dead: only receives that depend on
// src report the error, so a peer that finishes and exits early does not
// poison unrelated traffic.
func (c *Comm) fail(src int, err error) {
	c.mu.Lock()
	if _, ok := c.dead[src]; !ok {
		c.dead[src] = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Send transmits data to rank dst with the given tag.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst == c.rank {
		c.mu.Lock()
		c.queues[dst] = append(c.queues[dst], message{tag: tag, data: data})
		c.mu.Unlock()
		c.cond.Broadcast()
		return nil
	}
	conn := c.conns[dst]
	if conn == nil {
		return fmt.Errorf("tcpmpi: no connection to rank %d", dst)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
	c.writeMu[dst].Lock()
	defer c.writeMu[dst].Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(data)
	return err
}

// Recv blocks until a message with the given tag arrives from src.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		q := c.queues[src]
		for i := range q {
			if q[i].tag == tag {
				data := q[i].data
				c.queues[src] = append(q[:i], q[i+1:]...)
				return data, nil
			}
		}
		if err, ok := c.dead[src]; ok {
			return nil, err
		}
		if c.closed != nil {
			return nil, c.closed
		}
		c.cond.Wait()
	}
}

func (c *Comm) nextCollTag() int {
	c.collSeq++
	return 1<<24 + c.collSeq
}

// Bcast broadcasts root's payload to every rank via a binomial tree; all
// ranks return it.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.nextCollTag()
	p := c.size
	vr := (c.rank - root + p) % p
	if vr != 0 {
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		src := (vr - top + root) % p
		var err error
		if data, err = c.Recv(src, tag); err != nil {
			return nil, err
		}
	}
	start := 1
	if vr != 0 {
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		start = top << 1
	}
	for step := start; vr+step < p; step <<= 1 {
		if err := c.Send((vr+step+root)%p, tag, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Gatherv collects every rank's payload at root (root gets a slice indexed
// by rank; others get nil).
func (c *Comm) Gatherv(root int, data []byte) ([][]byte, error) {
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.size)
	out[root] = data
	for src := 0; src < c.size; src++ {
		if src == root {
			continue
		}
		b, err := c.Recv(src, tag)
		if err != nil {
			return nil, err
		}
		out[src] = b
	}
	return out, nil
}

// Scatterv delivers blocks[r] to rank r from root.
func (c *Comm) Scatterv(root int, blocks [][]byte) ([]byte, error) {
	tag := c.nextCollTag()
	if c.rank == root {
		if len(blocks) != c.size {
			return nil, fmt.Errorf("tcpmpi: scatter needs %d blocks, got %d", c.size, len(blocks))
		}
		for dst := 0; dst < c.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(dst, tag, blocks[dst]); err != nil {
				return nil, err
			}
		}
		return blocks[root], nil
	}
	return c.Recv(root, tag)
}

// Barrier blocks until every rank enters it.
func (c *Comm) Barrier() error {
	if _, err := c.Gatherv(0, nil); err != nil {
		return err
	}
	_, err := c.Bcast(0, nil)
	return err
}

// AllreduceSum element-wise sums x across ranks; every rank returns the
// total. Implemented as gather-to-0 + broadcast.
func (c *Comm) AllreduceSum(x []float64) ([]float64, error) {
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	parts, err := c.Gatherv(0, buf)
	if err != nil {
		return nil, err
	}
	if c.rank == 0 {
		sum := make([]float64, len(x))
		for _, part := range parts {
			if len(part) != len(buf) {
				return nil, fmt.Errorf("tcpmpi: allreduce length mismatch")
			}
			for i := range sum {
				sum[i] += math.Float64frombits(binary.LittleEndian.Uint64(part[8*i:]))
			}
		}
		for i, v := range sum {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
	}
	buf, err = c.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
