// Lease-based cluster membership on the tcpmpi wire format.
//
// A Registrar is the coordinator side: workers dial in and send the same
// 12-byte hello the rank mesh uses, with the helloRegister (or helloClient)
// flag set. The reply's first word carries the assigned worker id and its
// second the lease TTL in milliseconds. The connection then stays open as
// the lease channel: heartbeat frames (hbTag) renew the lease, data frames
// carry cluster control messages in either direction, and a connection that
// stays silent past the TTL expires — the failure-detector verdict the
// cluster runtime feeds into shrink/respawn recovery. A cleanly closed
// connection is a leave, not an expiry.
//
// No static rank table is involved: workers discover the coordinator by
// address alone, and ids are assigned in registration order.
package tcpmpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerInfo identifies one registered connection.
type WorkerInfo struct {
	ID     int
	Addr   string // remote address of the registration connection
	Client bool   // registered with the client flag: a job submitter, not capacity
}

// RegistrarConfig wires a Registrar to its consumer. Callbacks are invoked
// from the registrar's goroutines, serially per worker; they must not block
// for long (they hold up that worker's frame stream, not the whole
// registrar).
type RegistrarConfig struct {
	// LeaseTTL is how long a lease survives without a heartbeat renewal
	// before it expires. 0 means 6s.
	LeaseTTL time.Duration
	// CheckInterval is the expiry-scan cadence. 0 means LeaseTTL/4.
	CheckInterval time.Duration

	// OnJoin fires when a worker (or client) registers.
	OnJoin func(w WorkerInfo)
	// OnExpire fires when a lease passes its TTL without renewal — the
	// failure-detector verdict.
	OnExpire func(w WorkerInfo)
	// OnLeave fires when a registered connection closes cleanly (or breaks)
	// before its lease expires.
	OnLeave func(w WorkerInfo)
	// OnFrame receives every non-heartbeat frame a registered connection
	// sends: the cluster control channel (job submissions, status queries).
	OnFrame func(w WorkerInfo, tag int, payload []byte)
}

func (cfg RegistrarConfig) withDefaults() RegistrarConfig {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 6 * time.Second
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = cfg.LeaseTTL / 4
	}
	return cfg
}

// lease is the registrar-side state of one registered connection.
type lease struct {
	info WorkerInfo
	conn net.Conn

	// pongs carries clock-probe replies from the frame loop to ProbeClock.
	// Buffered so a pong arriving after a probe timed out never blocks the
	// frame loop; ProbeClock discards stale entries by probe id.
	pongs chan []byte

	mu       sync.Mutex
	lastSeen time.Time
	gone     bool // expired or left; the read loop must not double-report
}

func (l *lease) renew() {
	l.mu.Lock()
	l.lastSeen = time.Now()
	l.mu.Unlock()
}

// takeGone marks the lease gone and reports whether this caller was first —
// exactly one of expiry scan and read loop wins.
func (l *lease) takeGone() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gone {
		return false
	}
	l.gone = true
	return true
}

// Registrar is the coordinator-side membership endpoint.
type Registrar struct {
	ln  net.Listener
	cfg RegistrarConfig

	mu     sync.Mutex
	leases map[int]*lease
	nextID int

	done     chan struct{}
	doneOnce sync.Once
}

// NewRegistrar listens on addr (":0" picks a free port) and serves worker
// registrations until Close.
func NewRegistrar(addr string, cfg RegistrarConfig) (*Registrar, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpmpi: registrar listen %s: %w", addr, err)
	}
	r := &Registrar{
		ln:     ln,
		cfg:    cfg.withDefaults(),
		leases: map[int]*lease{},
		done:   make(chan struct{}),
	}
	go r.acceptLoop()
	go r.expiryLoop()
	return r, nil
}

// Addr returns the bound listen address.
func (r *Registrar) Addr() string { return r.ln.Addr().String() }

// Close stops the registrar and closes every registered connection.
func (r *Registrar) Close() error {
	r.doneOnce.Do(func() { close(r.done) })
	err := r.ln.Close()
	r.mu.Lock()
	ls := make([]*lease, 0, len(r.leases))
	for _, l := range r.leases {
		ls = append(ls, l)
	}
	r.leases = map[int]*lease{}
	r.mu.Unlock()
	for _, l := range ls {
		l.takeGone() // suppress leave/expire callbacks during shutdown
		l.conn.Close()
	}
	return err
}

func (r *Registrar) isClosed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Workers snapshots the live non-client leases in id order.
func (r *Registrar) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []WorkerInfo
	for id := 0; id < r.nextID; id++ {
		if l, ok := r.leases[id]; ok && !l.info.Client {
			out = append(out, l.info)
		}
	}
	return out
}

// Send writes one control frame to a registered connection.
func (r *Registrar) Send(id, tag int, payload []byte) error {
	r.mu.Lock()
	l, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("tcpmpi: no lease %d", id)
	}
	return writeLeaseFrame(l.conn, tag, payload, r.cfg.LeaseTTL)
}

// Revoke force-expires a lease: the connection closes and OnExpire fires as
// if the TTL had lapsed. Cluster tests (and an admin endpoint) use it to
// inject a deterministic membership failure.
func (r *Registrar) Revoke(id int) error {
	r.mu.Lock()
	l, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("tcpmpi: no lease %d", id)
	}
	if l.takeGone() {
		r.drop(l)
		l.conn.Close()
		if r.cfg.OnExpire != nil {
			r.cfg.OnExpire(l.info)
		}
	}
	return nil
}

func (r *Registrar) drop(l *lease) {
	r.mu.Lock()
	delete(r.leases, l.info.ID)
	r.mu.Unlock()
}

func (r *Registrar) acceptLoop() {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if r.isClosed() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		go r.register(conn)
	}
}

// register runs the acceptor side of the registration handshake and, on
// success, the connection's frame loop.
func (r *Registrar) register(conn net.Conn) {
	var buf [helloLen]byte
	conn.SetReadDeadline(time.Now().Add(DialTimeout))
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	h, err := parseHello(buf[:])
	if err != nil || h.flags&(helloRegister|helloClient) == 0 {
		conn.Close() // not a registration hello
		return
	}

	r.mu.Lock()
	id := r.nextID
	r.nextID++
	l := &lease{
		info: WorkerInfo{ID: id, Addr: conn.RemoteAddr().String(), Client: h.flags&helloClient != 0},
		conn: conn, lastSeen: time.Now(),
		pongs: make(chan []byte, 8),
	}
	r.leases[id] = l
	r.mu.Unlock()

	var reply [replyLen]byte
	putLeaseReply(reply[:], uint32(id), uint32(r.cfg.LeaseTTL.Milliseconds()))
	conn.SetWriteDeadline(time.Now().Add(DialTimeout))
	if _, err := conn.Write(reply[:]); err != nil {
		r.drop(l)
		conn.Close()
		return
	}
	conn.SetWriteDeadline(time.Time{})

	if r.cfg.OnJoin != nil {
		r.cfg.OnJoin(l.info)
	}
	r.frameLoop(l)
}

// frameLoop consumes one lease connection: heartbeats renew, data frames go
// to OnFrame, and a read error is a leave (unless the lease already
// expired or the registrar is closing).
func (r *Registrar) frameLoop(l *lease) {
	for {
		tag, _, _, payload, err := readFrame(l.conn)
		if err != nil {
			if l.takeGone() && !r.isClosed() {
				r.drop(l)
				l.conn.Close()
				if r.cfg.OnLeave != nil {
					r.cfg.OnLeave(l.info)
				}
			}
			return
		}
		l.renew()
		if tag == hbTag {
			continue
		}
		if tag == pingTag {
			// Answer a worker-initiated probe inline: t2 is now, t3 is
			// stamped at encode time inside makePong.
			if len(payload) == pingLen {
				_ = writeLeaseFrame(l.conn, pongTag, makePong(payload, time.Now().UnixNano()), r.cfg.LeaseTTL)
			}
			continue
		}
		if tag == pongTag {
			select {
			case l.pongs <- payload:
			default: // probe gave up; drop rather than block the frame loop
			}
			continue
		}
		if r.cfg.OnFrame != nil {
			r.cfg.OnFrame(l.info, tag, payload)
		}
	}
}

// expiryLoop scans for leases past their TTL.
func (r *Registrar) expiryLoop() {
	ticker := time.NewTicker(r.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		var expired []*lease
		for _, l := range r.leases {
			l.mu.Lock()
			if !l.gone && time.Since(l.lastSeen) > r.cfg.LeaseTTL {
				l.gone = true
				expired = append(expired, l)
			}
			l.mu.Unlock()
		}
		for _, l := range expired {
			delete(r.leases, l.info.ID)
		}
		r.mu.Unlock()
		for _, l := range expired {
			l.conn.Close()
			if r.cfg.OnExpire != nil {
				r.cfg.OnExpire(l.info)
			}
		}
	}
}

// Clock-probe frames. The fleet telemetry plane needs per-worker clock
// offsets to rebase wall-clock spans onto the coordinator's timeline; the
// probe is the classic NTP exchange run over the lease connection itself,
// so it measures exactly the path the traced frames travel.
//
//	coordinator t1 --ping--> worker t2 (recv) .. t3 (send) --pong--> t4
//	offset = ((t2-t1)+(t3-t4))/2   rtt = (t4-t1)-(t3-t2)
//
// Both read loops answer pings inline — before any queueing or callback —
// so scheduling delay on the answering side stays inside the (t3−t2)
// correction instead of inflating the RTT. Like heartbeats, probe frames
// renew the lease but are invisible to OnFrame/Recv.
const (
	pingTag = hbTag + 1
	pongTag = hbTag + 2

	pingLen = 16 // probeID u64 | t1 i64
	pongLen = 32 // probeID u64 | t1 i64 | t2 i64 | t3 i64
)

func putPing(b []byte, probeID uint64, t1 int64) {
	binary.LittleEndian.PutUint64(b[0:8], probeID)
	binary.LittleEndian.PutUint64(b[8:16], uint64(t1))
}

// makePong builds a pong payload from a ping, stamping the receive time t2
// and (at encode time) the send time t3.
func makePong(ping []byte, t2 int64) []byte {
	b := make([]byte, pongLen)
	copy(b[0:16], ping[0:16]) // probeID, t1 echoed back
	binary.LittleEndian.PutUint64(b[16:24], uint64(t2))
	binary.LittleEndian.PutUint64(b[24:32], uint64(time.Now().UnixNano()))
	return b
}

func parsePong(b []byte) (probeID uint64, t1, t2, t3 int64, ok bool) {
	if len(b) != pongLen {
		return 0, 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[0:8]),
		int64(binary.LittleEndian.Uint64(b[8:16])),
		int64(binary.LittleEndian.Uint64(b[16:24])),
		int64(binary.LittleEndian.Uint64(b[24:32])),
		true
}

// ClockEstimate is the result of a ProbeClock exchange: the remote clock
// minus the local clock (positive = remote runs ahead), taken from the
// minimum-RTT sample of the burst — the sample least polluted by queueing.
type ClockEstimate struct {
	OffsetNs int64 // remote − local, nanoseconds
	RTTNs    int64 // round-trip time of the winning sample
	Samples  int   // how many pings were answered
}

// probeSeq allocates globally unique probe ids so interleaved probes (or a
// stale pong from a timed-out burst) can never satisfy the wrong waiter.
var probeSeq atomic.Uint64

// ProbeClock estimates worker id's clock offset with a burst of n pings
// (min 1) over the lease connection, keeping the minimum-RTT sample.
// Probes of one worker must not run concurrently — their pongs would
// interleave; run bursts sequentially (the fleet collector does).
func (r *Registrar) ProbeClock(id, n int, timeout time.Duration) (ClockEstimate, error) {
	if n < 1 {
		n = 1
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	r.mu.Lock()
	l, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		return ClockEstimate{}, fmt.Errorf("tcpmpi: no lease %d", id)
	}
	deadline := time.Now().Add(timeout)
	est := ClockEstimate{RTTNs: 1<<63 - 1}
	for i := 0; i < n; i++ {
		probeID := probeSeq.Add(1)
		var ping [pingLen]byte
		t1 := time.Now().UnixNano()
		putPing(ping[:], probeID, t1)
		if err := writeLeaseFrame(l.conn, pingTag, ping[:], time.Until(deadline)); err != nil {
			break
		}
	await:
		for {
			var pong []byte
			select {
			case pong = <-l.pongs:
			case <-time.After(time.Until(deadline)):
				break await
			}
			t4 := time.Now().UnixNano()
			id2, pt1, t2, t3, ok := parsePong(pong)
			if !ok || id2 != probeID || pt1 != t1 {
				continue // stale pong from an earlier burst
			}
			rtt := (t4 - t1) - (t3 - t2)
			if rtt < 0 {
				rtt = 0
			}
			if rtt <= est.RTTNs {
				est.RTTNs = rtt
				est.OffsetNs = ((t2 - t1) + (t3 - t4)) / 2
			}
			est.Samples++
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	if est.Samples == 0 {
		return ClockEstimate{}, fmt.Errorf("tcpmpi: clock probe of lease %d: no pongs within %v", id, timeout)
	}
	return est, nil
}

// putLeaseReply encodes the registration reply (the mesh reply's 8-byte
// shape, reinterpreted): assigned worker id, lease TTL in milliseconds.
func putLeaseReply(b []byte, id, ttlMillis uint32) {
	binary.LittleEndian.PutUint32(b[0:4], id)
	binary.LittleEndian.PutUint32(b[4:8], ttlMillis)
}

func parseLeaseReply(b []byte) (id, ttlMillis uint32) {
	return binary.LittleEndian.Uint32(b[0:4]), binary.LittleEndian.Uint32(b[4:8])
}

// writeLeaseFrame writes one frame on a lease connection. Lease frames are
// control traffic: seq 0, no replay, no dedup.
func writeLeaseFrame(conn net.Conn, tag int, payload []byte, deadline time.Duration) error {
	buf := make([]byte, frameHeaderLen+len(payload))
	putFrameHeader(buf, tag, 0, 0, len(payload))
	copy(buf[frameHeaderLen:], payload)
	if deadline > 0 {
		conn.SetWriteDeadline(time.Now().Add(deadline))
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// RegisterOptions tunes the worker side of a registration.
type RegisterOptions struct {
	// Client registers as a job submitter instead of training capacity.
	Client bool
	// DialTimeout bounds the dial and handshake. 0 means 30s.
	DialTimeout time.Duration
	// HeartbeatInterval overrides the renewal cadence. 0 means TTL/3.
	HeartbeatInterval time.Duration
}

// Lease is the worker-side handle on a registration: a live, heartbeated
// membership lease plus the control-frame channel to the coordinator.
type Lease struct {
	conn net.Conn
	id   int
	ttl  time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int][][]byte
	closed error

	done     chan struct{}
	doneOnce sync.Once
}

// Register dials a Registrar at addr, acquires a lease, and renews it in
// the background until Close (or the coordinator revokes it).
func Register(addr string, opt RegisterOptions) (*Lease, error) {
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = DialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcpmpi: register at %s: %w", addr, err)
	}
	flags := uint32(helloRegister)
	if opt.Client {
		flags = helloClient
	}
	var hello [helloLen]byte
	putHello(hello[:], helloMsg{flags: flags})
	conn.SetWriteDeadline(time.Now().Add(opt.DialTimeout))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpmpi: register hello: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	var reply [replyLen]byte
	conn.SetReadDeadline(time.Now().Add(opt.DialTimeout))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpmpi: register reply: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	id, ttlMillis := parseLeaseReply(reply[:])
	l := &Lease{
		conn:   conn,
		id:     int(id),
		ttl:    time.Duration(ttlMillis) * time.Millisecond,
		queues: map[int][][]byte{},
		done:   make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	hb := opt.HeartbeatInterval
	if hb <= 0 {
		hb = l.ttl / 3
		if hb <= 0 {
			hb = time.Second
		}
	}
	go l.heartbeatLoop(hb)
	go l.readLoop()
	return l, nil
}

// ID returns the coordinator-assigned worker id.
func (l *Lease) ID() int { return l.id }

// TTL returns the lease's time-to-live between renewals.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Close releases the lease: the coordinator sees a clean leave.
func (l *Lease) Close() error {
	l.fail(errors.New("tcpmpi: lease closed"))
	return nil
}

// Done is closed when the lease ends — by Close, a revocation, or a broken
// coordinator connection.
func (l *Lease) Done() <-chan struct{} { return l.done }

// Err returns why the lease ended (nil while it is live).
func (l *Lease) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.done:
		return l.closed
	default:
		return nil
	}
}

func (l *Lease) fail(err error) {
	l.doneOnce.Do(func() {
		l.mu.Lock()
		l.closed = err
		l.mu.Unlock()
		close(l.done)
		l.conn.Close()
		l.cond.Broadcast()
	})
}

// Send writes one control frame to the coordinator.
func (l *Lease) Send(tag int, payload []byte) error {
	if err := l.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return writeLeaseFrame(l.conn, tag, payload, l.ttl)
}

// timeoutBroadcast wakes Recv/RecvAny waiters when their deadline timer
// fires. It broadcasts under l.mu: a bare Broadcast could land between a
// waiter's deadline check and its cond.Wait — a lost wakeup that leaves
// the call blocked past its timeout until unrelated traffic arrives.
// Holding the mutex forces the timer to wait until the waiter is parked.
func (l *Lease) timeoutBroadcast() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Broadcast()
}

// Recv blocks until a control frame with the given tag arrives, the lease
// ends, or the timeout (0 = no timeout) expires.
func (l *Lease) Recv(tag int, timeout time.Duration) ([]byte, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, l.timeoutBroadcast)
		defer timer.Stop()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if q := l.queues[tag]; len(q) > 0 {
			b := q[0]
			l.queues[tag] = q[1:]
			return b, nil
		}
		select {
		case <-l.done:
			return nil, l.closed
		default:
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("tcpmpi: lease recv tag %d: timeout after %v", tag, timeout)
		}
		l.cond.Wait()
	}
}

// RecvAny blocks until a control frame carrying any of the given tags
// arrives and returns it with its tag, preserving per-tag FIFO order. When
// frames with several of the tags are queued, the earliest-listed tag wins.
// A zero timeout means no timeout; the lease ending unblocks the call with
// the lease's terminal error. Executor loops use it to multiplex a small
// command vocabulary over one lease without a goroutine per tag.
func (l *Lease) RecvAny(tags []int, timeout time.Duration) (int, []byte, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, l.timeoutBroadcast)
		defer timer.Stop()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for _, tag := range tags {
			if q := l.queues[tag]; len(q) > 0 {
				b := q[0]
				l.queues[tag] = q[1:]
				return tag, b, nil
			}
		}
		select {
		case <-l.done:
			return 0, nil, l.closed
		default:
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, nil, fmt.Errorf("tcpmpi: lease recv tags %v: timeout after %v", tags, timeout)
		}
		l.cond.Wait()
	}
}

func (l *Lease) heartbeatLoop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		err := writeLeaseFrame(l.conn, hbTag, nil, l.ttl)
		l.mu.Unlock()
		if err != nil {
			l.fail(fmt.Errorf("tcpmpi: lease heartbeat: %w", err))
			return
		}
	}
}

func (l *Lease) readLoop() {
	for {
		tag, _, _, payload, err := readFrame(l.conn)
		if err != nil {
			l.fail(fmt.Errorf("tcpmpi: lease connection lost: %w", err))
			return
		}
		if tag == hbTag {
			continue
		}
		if tag == pingTag {
			// Answer the coordinator's clock probe immediately, before any
			// queueing, so only the (t3−t2)-corrected turnaround is left in
			// the RTT. The write shares l.mu with Send/heartbeats.
			if len(payload) == pingLen {
				t2 := time.Now().UnixNano()
				l.mu.Lock()
				_ = writeLeaseFrame(l.conn, pongTag, makePong(payload, t2), l.ttl)
				l.mu.Unlock()
			}
			continue
		}
		l.mu.Lock()
		l.queues[tag] = append(l.queues[tag], payload)
		l.mu.Unlock()
		l.cond.Broadcast()
	}
}
