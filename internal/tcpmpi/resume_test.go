package tcpmpi

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"casvm/internal/trace"
)

// dialPair brings up a 2-rank world concurrently and returns both Comms.
func dialPair(t *testing.T, addrs []string, opt0, opt1 Options) (*Comm, *Comm) {
	t.Helper()
	var wg sync.WaitGroup
	comms := make([]*Comm, 2)
	errs := make([]error, 2)
	opts := []Options{opt0, opt1}
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = DialOptions(rank, addrs, opts[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	return comms[0], comms[1]
}

// TestResumeReplayExactlyOnce: a frame written into a severed connection is
// redelivered by the reconnect's resume handshake — and only once. The
// listener is taken down first so the outage window is deterministic, the
// lost frame is placed in the replay ring exactly as a buffered-then-severed
// write would leave it (replay is the only redelivery path; retries are
// disabled), and the receiver's sequence state proves exactly-once delivery.
func TestResumeReplayExactlyOnce(t *testing.T) {
	addrs := freeAddrs(t, 2)
	reg := trace.NewRegistry()
	opt := Options{
		HeartbeatInterval:   50 * time.Millisecond,
		HeartbeatTimeout:    10 * time.Second, // failure signal is the read error, not silence
		Retries:             -1,               // no send retry: the resume replay must deliver
		ReconnectAttempts:   40,
		ReconnectBackoff:    20 * time.Millisecond,
		ReconnectBackoffMax: 50 * time.Millisecond,
	}
	opt1 := opt
	opt1.Metrics = reg
	c0, c1 := dialPair(t, addrs, opt, opt1)
	defer c0.Close()
	defer c1.Close()

	if err := c1.Send(0, 5, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if got, err := c0.Recv(1, 5); err != nil || string(got) != "before" {
		t.Fatalf("pre-outage message: %q, %v", got, err)
	}

	// Outage: stop accepting, then sever the live connection from rank 0's
	// side. Rank 1's reconnect attempts fail until the listener returns.
	c0.ln.Close()
	p01 := c0.peers[1]
	p01.mu.Lock()
	p01.conn.Close()
	p01.mu.Unlock()

	// A frame that was reported sent but died on the severed wire: place
	// it straight into rank 1's replay ring under the next sequence
	// number. A real Send into the sever reaches this state only when its
	// write lands in the kernel buffer before the read loop notices the
	// break — a timing race the test cannot force — so the state is
	// constructed directly. (The other outcome, a synchronous failure,
	// scrubs the frame instead; TestFailedSendScrub pins that half.)
	p10 := c1.peers[0]
	p10.sendMu.Lock()
	p10.sendSeq++
	p10.remember(sentFrame{seq: p10.sendSeq, tag: 6, data: []byte("lost")}, c1.opt.ReplayWindow)
	p10.sendMu.Unlock()

	time.Sleep(150 * time.Millisecond) // let a few reconnect dials fail

	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	c0.ln = ln
	go c0.acceptLoop(ln)

	// Post-recovery traffic; retries are off, so poll until the fresh
	// connection is installed and its resume replay has drained.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c1.Send(0, 7, []byte("after")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send never recovered after listener restore")
		}
		time.Sleep(20 * time.Millisecond)
	}

	type recv struct {
		data []byte
		err  error
	}
	got := make(chan recv, 2)
	go func() {
		for _, tag := range []int{6, 7} {
			b, err := c0.Recv(1, tag)
			got <- recv{b, err}
		}
	}()
	want := []string{"lost", "after"}
	for _, w := range want {
		select {
		case r := <-got:
			if r.err != nil || string(r.data) != w {
				t.Fatalf("want %q, got %q, %v", w, r.data, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("replay never delivered %q", w)
		}
	}

	// Exactly-once: nothing left queued — neither a wire-level duplicate
	// (receiver dedup) nor an application-level one (failed sends are
	// scrubbed from the replay ring, so only the delivered copies exist).
	c0.mu.Lock()
	queued := len(c0.queues[1])
	c0.mu.Unlock()
	if queued != 0 {
		t.Fatalf("%d duplicate frames queued after replay", queued)
	}
	p01.mu.Lock()
	recvSeq := p01.recvSeq
	p01.mu.Unlock()
	if recvSeq < 3 {
		t.Fatalf("receiver watermark %d, want ≥ 3 (at least before/lost/after)", recvSeq)
	}

	snap := reg.Snapshot()
	if snap["tcpmpi_reconnect_attempts_total"] < 2 {
		t.Fatalf("reconnect attempts %v, want ≥ 2 (listener was down)", snap["tcpmpi_reconnect_attempts_total"])
	}
	if snap["tcpmpi_reconnect_backoff_ms_total"] <= 0 {
		t.Fatal("no backoff time recorded across failed reconnects")
	}
	if snap["tcpmpi_replayed_frames_total"] < 1 {
		t.Fatal("resume handshake replayed nothing; delivery must have leaked through another path")
	}
	if snap["tcpmpi_reconnects_total"] < 1 {
		t.Fatal("no successful reconnect counted")
	}
}

// TestFailedSendScrub: finishSend is the exactly-once pivot — a send about
// to report failure either learns that a resume handshake already delivered
// its frame (success after all, frame retained) or scrubs the frame from
// the replay ring so no later reconnect can deliver a message the caller
// was told had failed.
func TestFailedSendScrub(t *testing.T) {
	c := &Comm{}
	p := &peer{}
	p.remember(sentFrame{seq: 1, tag: 5, data: []byte("a")}, 8)
	p.remember(sentFrame{seq: 2, tag: 5, data: []byte("b")}, 8)

	if c.finishSend(p, 2) {
		t.Fatal("unreplayed frame reported as delivered")
	}
	if frames := p.unacked(0); len(frames) != 1 || frames[0].seq != 1 {
		t.Fatalf("ring after scrub: %+v, want only seq 1", frames)
	}

	p.sendMu.Lock()
	p.replayedSeq = 1
	p.sendMu.Unlock()
	if !c.finishSend(p, 1) {
		t.Fatal("replayed frame not recognized as delivered")
	}
	if frames := p.unacked(0); len(frames) != 1 || frames[0].seq != 1 {
		t.Fatalf("replayed frame scrubbed from ring: %+v", frames)
	}
}

// TestReconnectAttemptsBounded: with the peer gone for good, the dialer
// makes exactly ReconnectAttempts dials (counted, with backoff recorded)
// and then declares the peer dead with a typed, descriptive error.
func TestReconnectAttemptsBounded(t *testing.T) {
	addrs := freeAddrs(t, 2)
	reg := trace.NewRegistry()
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	}
	opt1 := opt
	opt1.Metrics = reg
	opt1.ReconnectAttempts = 3
	opt1.ReconnectBackoff = 20 * time.Millisecond
	opt1.ReconnectBackoffMax = 40 * time.Millisecond
	c0, c1 := dialPair(t, addrs, opt, opt1)
	defer c1.Close()

	c0.Close() // rank 0 is gone for good; its port stays unbound

	_, err := c1.Recv(0, 9)
	if err == nil {
		t.Fatal("Recv from a dead rank succeeded")
	}
	if !strings.Contains(err.Error(), "reconnect attempts failed") {
		t.Fatalf("error does not describe the exhausted reconnect budget: %v", err)
	}
	snap := reg.Snapshot()
	if snap["tcpmpi_reconnect_attempts_total"] != 3 {
		t.Fatalf("reconnect attempts %v, want exactly 3", snap["tcpmpi_reconnect_attempts_total"])
	}
	if snap["tcpmpi_reconnect_backoff_ms_total"] <= 0 {
		t.Fatal("no backoff recorded between attempts")
	}
	if snap["tcpmpi_peer_failures_total"] != 1 {
		t.Fatalf("peer failures %v, want 1", snap["tcpmpi_peer_failures_total"])
	}
}

// TestPeersSubsetMesh: workers configured with Peers: []int{0} only dial
// the coordinator — the full mesh never forms — yet worker↔coordinator
// traffic flows both ways, and worker↔worker operations fail fast instead
// of hanging on a connection that does not exist.
func TestPeersSubsetMesh(t *testing.T) {
	addrs := freeAddrs(t, 3)
	opts := []Options{
		{Peers: []int{1, 2}},
		{Peers: []int{0}},
		{Peers: []int{0}},
	}
	var wg sync.WaitGroup
	comms := make([]*Comm, 3)
	errs := make([]error, 3)
	wg.Add(3)
	for r := 0; r < 3; r++ {
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = DialOptions(rank, addrs, opts[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	for _, c := range comms {
		defer c.Close()
	}

	for _, w := range []int{1, 2} {
		if err := comms[w].Send(0, w, []byte("up")); err != nil {
			t.Fatalf("worker %d → coordinator: %v", w, err)
		}
		if _, err := comms[0].Recv(w, w); err != nil {
			t.Fatalf("coordinator ← worker %d: %v", w, err)
		}
		if err := comms[0].Send(w, 10+w, []byte("down")); err != nil {
			t.Fatalf("coordinator → worker %d: %v", w, err)
		}
		if _, err := comms[w].Recv(0, 10+w); err != nil {
			t.Fatalf("worker %d ← coordinator: %v", w, err)
		}
	}

	if err := comms[1].Send(2, 99, []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "not a configured peer") {
		t.Fatalf("worker→worker send: %v, want configured-peer error", err)
	}
	if _, err := comms[1].Recv(2, 99); err == nil ||
		!strings.Contains(err.Error(), "not a configured peer") {
		t.Fatalf("worker→worker recv: %v, want configured-peer error", err)
	}
}

// TestFreshIncarnationResurrects: after a worker process dies, a brand-new
// process re-dials with the hello's fresh flag set. The coordinator resets
// its per-peer sequence state, so the new incarnation's frames — which
// restart at seq 1 — are delivered instead of being deduplicated against
// the dead incarnation's watermark, and coordinator→worker traffic resumes.
func TestFreshIncarnationResurrects(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second, // coordinator waits out the respawn
	}
	c0, gen1 := dialPair(t, addrs, opt, opt)
	defer c0.Close()

	if err := gen1.Send(0, 11, []byte("first gen")); err != nil {
		t.Fatal(err)
	}
	if got, err := c0.Recv(1, 11); err != nil || string(got) != "first gen" {
		t.Fatalf("first incarnation: %q, %v", got, err)
	}
	gen1.Close() // the worker process dies

	gen2, err := DialOptions(1, addrs, opt)
	if err != nil {
		t.Fatalf("respawned worker could not rejoin: %v", err)
	}
	defer gen2.Close()

	// The new incarnation's first frame is seq 1 again; without the fresh
	// reset the coordinator's watermark (already 1) would swallow it.
	if err := gen2.Send(0, 12, []byte("second gen")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, err := c0.Recv(1, 12); err != nil || string(got) != "second gen" {
			t.Errorf("resurrected worker's message: %q, %v", got, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fresh incarnation's frame was deduplicated away")
	}

	if err := c0.Send(1, 13, []byte("welcome back")); err != nil {
		t.Fatalf("coordinator → resurrected worker: %v", err)
	}
	if got, err := gen2.Recv(0, 13); err != nil || string(got) != "welcome back" {
		t.Fatalf("return traffic: %q, %v", got, err)
	}
}
