package telemetry_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"casvm/internal/cluster"
	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/mpi"
	"casvm/internal/smo"
	"casvm/internal/tcpmpi"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

// gate blocks rank 0's solver at a fixed iteration until released, pinning
// the training run mid-flight while the test scrapes the live endpoints —
// no sleeps, no racing the solver to the finish line.
type gate struct {
	release chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func (g *gate) Intercept(src, dst, tag int, data []byte) mpi.Verdict { return mpi.Verdict{} }

func (g *gate) CrashCheck(rank, iter int) error {
	if rank == 0 && iter >= 10 {
		g.once.Do(func() { close(g.blocked) })
		<-g.release
	}
	return nil
}

// TestServeSmoke is the live-server smoke run `make check` invokes: start
// a real training run, hold it mid-flight, scrape /metrics and /report,
// read one SSE frame from /events, then release the run and shut down
// clean.
func TestServeSmoke(t *testing.T) {
	d, err := data.Generate(data.MixtureSpec{
		Name: "serve-test", Train: 512, Test: 16, Features: 8, Clusters: 4,
		Separation: 7, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02,
		Margin: 1.0, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := &gate{release: make(chan struct{}), blocked: make(chan struct{})}
	ring := smo.NewTelemetryRing(4096)
	reg := trace.NewRegistry()
	reg.Counter("casvm_serve_smoke_runs_total", "Smoke-test runs.").Inc()

	pr := core.DefaultParams(core.MethodRACA, 2)
	pr.Kernel = kernel.RBF(1.0 / 16)
	pr.Faults = g
	pr.Telemetry = ring
	pr.Metrics = reg

	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		Metrics:      reg,
		Ring:         ring,
		Report:       func() any { return map[string]any{"telemetry_samples": ring.Total()} },
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	trainErr := make(chan error, 1)
	go func() {
		_, err := core.Train(d.X, d.Y, pr)
		trainErr <- err
	}()

	select {
	case <-g.blocked: // rank 0 is now parked mid-solve: the run is live
	case err := <-trainErr:
		t.Fatalf("training finished before the gate engaged: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("gate never engaged")
	}

	// /metrics mid-run: Prometheus framing with HELP/TYPE per family.
	body := httpGet(t, srv.URL()+"/metrics")
	for _, want := range []string{
		"# HELP casvm_serve_smoke_runs_total Smoke-test runs.",
		"# TYPE casvm_serve_smoke_runs_total counter",
		"casvm_serve_smoke_runs_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /report mid-run: live JSON snapshot; rank 0 recorded ≥ 10 iteration
	// samples before parking.
	var rep struct {
		TelemetrySamples uint64 `json:"telemetry_samples"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/report")), &rep); err != nil {
		t.Fatalf("/report: %v", err)
	}
	if rep.TelemetrySamples < 10 {
		t.Fatalf("/report telemetry_samples=%d, want ≥ 10", rep.TelemetrySamples)
	}

	// /events: the first SSE frame decodes as an IterSample.
	s := readFirstSSE(t, srv.URL()+"/events")
	if s.Iter < 1 || (s.Rank != 0 && s.Rank != 1) {
		t.Fatalf("bad SSE sample: %+v", s)
	}
	if s.Active <= 0 || s.DualObj <= 0 {
		t.Fatalf("empty SSE sample: %+v", s)
	}

	// /debug/pprof is wired on this mux.
	if body := httpGet(t, srv.URL()+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}

	close(g.release)
	select {
	case err := <-trainErr:
		if err != nil {
			t.Fatalf("train: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("training did not finish after release")
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
	// The listener is really gone.
	if _, err := http.Get(srv.URL() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestServeClusterNamespaces is the cluster half of the serve smoke run:
// a live coordinator's registry backs /metrics (membership and job
// counters) and its job table backs the /jobs namespaces — one metrics,
// report and events surface per job.
func TestServeClusterNamespaces(t *testing.T) {
	coord, err := cluster.New("localhost:0", cluster.Config{LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		Metrics:      coord.Metrics(),
		PollInterval: 10 * time.Millisecond,
		Jobs: func() []telemetry.JobNamespace {
			var out []telemetry.JobNamespace
			for _, j := range coord.Jobs() {
				j := j
				out = append(out, telemetry.JobNamespace{
					ID:      j.ID(),
					State:   j.State().String(),
					Metrics: j.Metrics(),
					Ring:    j.Ring(),
					Report:  func() any { return j.Result() },
				})
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A worker joins, a job runs to completion on it, the worker is
	// revoked: the counter set must record one join, one completion and
	// one expiry.
	worker, err := tcpmpi.Register(coord.Addr(), tcpmpi.RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	res, err := cluster.SubmitAndWait(coord.Addr(), cluster.JobSpec{
		ID: "smoke",
		Mixture: &data.MixtureSpec{
			Name: "serve-cluster", Train: 160, Test: 40, Features: 8,
			Clusters: 4, Separation: 7, Noise: 1, PosFrac: []float64{0.5},
			LabelNoise: 0.02, Margin: 1.0, Seed: 42,
		},
		Method: string(core.MethodRACA), P: 1, Seed: 1,
	}, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Revoke(worker.ID()); err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, srv.URL()+"/metrics")
	for _, want := range []string{
		"# TYPE cluster_worker_joins_total counter",
		"cluster_worker_joins_total 1",
		"cluster_lease_expiries_total 1",
		"cluster_worker_leaves_total 0",
		"cluster_jobs_completed_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /jobs lists the finished job; its namespace serves per-job solver
	// metrics, the result report and an SSE stream of its convergence
	// samples.
	var jobs []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/jobs")), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != res.ID || jobs[0].State != "done" {
		t.Fatalf("/jobs = %+v, want the finished job %s", jobs, res.ID)
	}
	base := srv.URL() + "/jobs/" + res.ID
	if body := httpGet(t, base+"/metrics"); !strings.Contains(body, "smo_iterations_total") {
		t.Fatalf("job metrics missing solver counters:\n%s", body)
	}
	var rep cluster.JobResult
	if err := json.Unmarshal([]byte(httpGet(t, base+"/report")), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ModelHash != res.ModelHash || rep.ModelHash == "" {
		t.Fatalf("job report hash %q != submitted result hash %q", rep.ModelHash, res.ModelHash)
	}
	if s := readFirstSSE(t, base+"/events"); s.Active <= 0 {
		t.Fatalf("empty job SSE sample: %+v", s)
	}
	// Unknown namespaces 404 instead of aliasing another job.
	if resp, err := http.Get(base + "x/metrics"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job served status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b)
}

func readFirstSSE(t *testing.T, url string) smo.IterSample {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s smo.IterSample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("SSE frame %q: %v", line, err)
		}
		return s
	}
	t.Fatalf("no SSE frame before stream end: %v", sc.Err())
	return smo.IterSample{}
}
