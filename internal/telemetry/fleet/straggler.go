package fleet

import (
	"sort"
	"sync"
	"time"
)

// StragglerConfig tunes the online detector. The heuristic follows the
// adaptive-shrinking literature (1406.5161): within a gang, per-epoch
// durations are near-identical unless a rank is straggling, so a rank
// whose epoch runs beyond Factor × the gang median is flagged.
type StragglerConfig struct {
	// Factor is the flagging threshold over the gang median (default 1.75).
	Factor float64
	// MinRanks is the minimum number of rank reports for one epoch before
	// a median is trusted (default 3).
	MinRanks int
	// MinSec ignores epochs whose median is below this floor — sub-
	// millisecond epochs are all scheduler noise (default 1ms).
	MinSec float64
}

func (c StragglerConfig) withDefaults() StragglerConfig {
	if c.Factor <= 1 {
		c.Factor = 1.75
	}
	if c.MinRanks < 2 {
		c.MinRanks = 3
	}
	if c.MinSec <= 0 {
		c.MinSec = 1e-3
	}
	return c
}

// StragglerEvent is one detector verdict, published on the SSE stream and
// counted by the cluster_straggler_* metrics.
type StragglerEvent struct {
	TimeNs    int64   `json:"time_ns"`
	Job       string  `json:"job"`
	Rank      int     `json:"rank"`
	Epoch     int     `json:"epoch"`
	Sec       float64 `json:"sec"`
	MedianSec float64 `json:"median_sec"`
	// Factor is Sec/MedianSec — how far beyond the gang this rank ran.
	Factor float64 `json:"factor"`
}

// detector keeps per-(job, epoch) duration maps and flags outliers
// incrementally: every report recomputes that epoch's median and flags any
// not-yet-flagged rank beyond the threshold (including ranks reported
// before the median shifted).
type detector struct {
	cfg StragglerConfig

	mu      sync.Mutex
	epochs  map[string]map[int]map[int]float64 // job → epoch → rank → sec
	flagged map[string]map[[2]int]bool         // job → (epoch, rank)
}

func newDetector(cfg StragglerConfig) *detector {
	return &detector{
		cfg:     cfg.withDefaults(),
		epochs:  map[string]map[int]map[int]float64{},
		flagged: map[string]map[[2]int]bool{},
	}
}

// observe records one (job, rank, epoch, sec) report and returns any new
// straggler verdicts it produces.
func (d *detector) observe(job string, rank, epoch int, sec float64) []StragglerEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	je := d.epochs[job]
	if je == nil {
		je = map[int]map[int]float64{}
		d.epochs[job] = je
	}
	ranks := je[epoch]
	if ranks == nil {
		ranks = map[int]float64{}
		je[epoch] = ranks
	}
	ranks[rank] = sec

	if len(ranks) < d.cfg.MinRanks {
		return nil
	}
	durs := make([]float64, 0, len(ranks))
	for _, s := range ranks {
		durs = append(durs, s)
	}
	sort.Float64s(durs)
	median := durs[len(durs)/2]
	if len(durs)%2 == 0 {
		median = (durs[len(durs)/2-1] + durs[len(durs)/2]) / 2
	}
	if median < d.cfg.MinSec {
		return nil
	}

	fl := d.flagged[job]
	if fl == nil {
		fl = map[[2]int]bool{}
		d.flagged[job] = fl
	}
	var out []StragglerEvent
	now := time.Now().UnixNano()
	for r, s := range ranks {
		if s <= d.cfg.Factor*median {
			continue
		}
		key := [2]int{epoch, r}
		if fl[key] {
			continue
		}
		fl[key] = true
		out = append(out, StragglerEvent{
			TimeNs: now, Job: job, Rank: r, Epoch: epoch,
			Sec: s, MedianSec: median, Factor: s / median,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// forget drops a finished job's detector state.
func (d *detector) forget(job string) {
	d.mu.Lock()
	delete(d.epochs, job)
	delete(d.flagged, job)
	d.mu.Unlock()
}

// eventRing is a fixed-capacity cursor-paged buffer of straggler events —
// the backing store of the fleet SSE stream, mirroring the shape of
// smo.TelemetryRing (monotonic cursors survive wrap-around; a lagging
// reader loses the overwritten prefix, never sees duplicates).
type eventRing struct {
	mu    sync.Mutex
	buf   []StragglerEvent
	start uint64 // cursor of buf[0]
	max   int
}

func newEventRing(max int) *eventRing {
	if max < 1 {
		max = 256
	}
	return &eventRing{max: max}
}

func (r *eventRing) add(e StragglerEvent) {
	r.mu.Lock()
	r.buf = append(r.buf, e)
	if len(r.buf) > r.max {
		drop := len(r.buf) - r.max
		r.buf = append(r.buf[:0], r.buf[drop:]...)
		r.start += uint64(drop)
	}
	r.mu.Unlock()
}

// since returns events at cursors ≥ cursor and the next cursor to poll
// from. A cursor before the retained window skips to its start.
func (r *eventRing) since(cursor uint64) ([]StragglerEvent, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.start + uint64(len(r.buf))
	if cursor < r.start {
		cursor = r.start
	}
	if cursor >= end {
		return nil, end
	}
	out := append([]StragglerEvent(nil), r.buf[cursor-r.start:]...)
	return out, end
}
