package fleet

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"time"

	"casvm/internal/tcpmpi"
	"casvm/internal/trace"
)

// Per-rank ingestion caps, mirroring the worker-side timeline caps: a
// chatty or buggy worker cannot grow coordinator memory without bound.
// Overflow is counted (fleet_dropped_total), never silent.
const (
	maxEventsPerRank = 1 << 15
	maxEdgesPerRank  = 1 << 16
)

// Config wires a Collector to its coordinator.
type Config struct {
	// Metrics is the fleet-level registry (the coordinator's own): frame
	// counters, straggler totals, and fleet-wide federated aggregates land
	// here. Nil disables those metrics.
	Metrics *trace.Registry
	// JobRegistry, when non-nil, resolves a job id to its private registry
	// so federated per-job aggregates and straggler counts appear under
	// the existing /jobs/<id>/metrics namespace. Returning nil skips that
	// job's federation.
	JobRegistry func(job string) *trace.Registry
	// Straggler tunes the outlier detector.
	Straggler StragglerConfig
	// Probe estimates a lease's clock offset. Nil uses the attached
	// registrar's ProbeClock; tests inject synthetic skews here.
	Probe func(workerID int) (tcpmpi.ClockEstimate, error)
	// ProbeSamples is the ping-burst length per worker (default 5).
	ProbeSamples int
	// EventCap bounds the straggler SSE ring (default 256).
	EventCap int
	// Logf, when non-nil, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// rankState is one rank's accumulated telemetry within a job.
type rankState struct {
	workerID int
	events   []trace.Event
	edges    []trace.FlowEdge
	dropped  int64

	offsetNs     int64
	rttNs        int64
	probed       bool
	probeStarted bool
	probeDone    chan struct{} // closed when the clock probe settles

	done bool // Done-marked span stream or goodbye received
}

// jobState is one job's fleet-side accumulation.
type jobState struct {
	name  string
	p     int
	ranks map[int]*rankState
	// fed holds each rank's latest metric snapshot for federation.
	fed map[int]map[string]float64
}

// Collector is the coordinator side of the fleet plane. Route lease
// frames into HandleFrame (internal/cluster/wire.go does this for
// casvm-cluster; examples/distributed wires it onto its own registrar).
type Collector struct {
	cfg Config

	mu   sync.Mutex
	reg  *tcpmpi.Registrar
	jobs map[string]*jobState

	det  *detector
	ring *eventRing

	framesTotal    *trace.Counter
	eventsTotal    *trace.Counter
	edgesTotal     *trace.Counter
	droppedTotal   *trace.Counter
	stragglerTotal *trace.Counter
	stragglerLast  *trace.Gauge
	probeFailures  *trace.Counter
}

// New creates a Collector. Call AttachRegistrar before workers say hello
// if clock probing should use the real lease RTT exchange.
func New(cfg Config) *Collector {
	if cfg.ProbeSamples < 1 {
		cfg.ProbeSamples = 5
	}
	c := &Collector{
		cfg:  cfg,
		jobs: map[string]*jobState{},
		det:  newDetector(cfg.Straggler),
		ring: newEventRing(cfg.EventCap),
	}
	if m := cfg.Metrics; m != nil {
		c.framesTotal = m.Counter("cluster_fleet_frames_total", "fleet telemetry frames received")
		c.eventsTotal = m.Counter("cluster_fleet_events_total", "trace events ingested from workers")
		c.edgesTotal = m.Counter("cluster_fleet_edges_total", "flow edges ingested from workers")
		c.droppedTotal = m.Counter("cluster_fleet_dropped_total", "telemetry items dropped at ingestion caps")
		c.stragglerTotal = m.Counter("cluster_straggler_detections_total", "straggler verdicts raised by the online detector")
		c.stragglerLast = m.Gauge("cluster_straggler_last_factor", "sec/median ratio of the most recent straggler verdict")
		c.probeFailures = m.Counter("cluster_fleet_probe_failures_total", "clock probes that returned no samples")
	}
	return c
}

// AttachRegistrar hands the Collector the registrar whose leases carry the
// fleet frames, enabling real clock probes. Call once, before jobs run.
func (c *Collector) AttachRegistrar(r *tcpmpi.Registrar) {
	c.mu.Lock()
	c.reg = r
	c.mu.Unlock()
}

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// HandleFrame consumes one lease frame if its tag belongs to the fleet
// block, reporting whether it did. It is safe to call from registrar
// OnFrame callbacks: the clock probe it triggers runs on its own
// goroutine (probing inline would deadlock — the pong arrives on the very
// frame loop that is executing the callback).
func (c *Collector) HandleFrame(w tcpmpi.WorkerInfo, tag int, payload []byte) bool {
	if !IsFleetTag(tag) {
		return false
	}
	if c.framesTotal != nil {
		c.framesTotal.Inc()
	}
	switch tag {
	case TagHello:
		var h Hello
		if err := json.Unmarshal(payload, &h); err != nil || h.Job == "" || h.Rank < 0 {
			c.logf("fleet: bad hello from lease %d: %v", w.ID, err)
			return true
		}
		c.onHello(w.ID, h)
	case TagSpans:
		var p SpanPayload
		if err := json.Unmarshal(payload, &p); err != nil || p.Job == "" || p.Rank < 0 {
			c.logf("fleet: bad span payload from lease %d: %v", w.ID, err)
			return true
		}
		c.onSpans(w.ID, p)
	case TagMetrics:
		var p MetricsPayload
		if err := json.Unmarshal(payload, &p); err != nil || p.Job == "" || p.Rank < 0 {
			c.logf("fleet: bad metrics payload from lease %d: %v", w.ID, err)
			return true
		}
		c.onMetrics(p)
	case TagEpoch:
		var p EpochPayload
		if err := json.Unmarshal(payload, &p); err != nil || p.Job == "" || p.Rank < 0 {
			c.logf("fleet: bad epoch payload from lease %d: %v", w.ID, err)
			return true
		}
		c.onEpoch(p)
	case TagGoodbye:
		var h Hello
		if err := json.Unmarshal(payload, &h); err == nil && h.Job != "" {
			c.mu.Lock()
			if rs := c.rankLocked(h.Job, h.Rank, w.ID); rs != nil {
				rs.done = true
			}
			c.mu.Unlock()
		}
	}
	return true
}

// rankLocked resolves (job, rank), creating state as needed. c.mu held.
func (c *Collector) rankLocked(job string, rank, workerID int) *rankState {
	if rank < 0 || rank > 1<<16 {
		return nil
	}
	j := c.jobs[job]
	if j == nil {
		j = &jobState{name: job, ranks: map[int]*rankState{}, fed: map[int]map[string]float64{}}
		c.jobs[job] = j
	}
	rs := j.ranks[rank]
	if rs == nil {
		rs = &rankState{workerID: workerID, probeDone: make(chan struct{})}
		j.ranks[rank] = rs
	}
	if rank >= j.p {
		j.p = rank + 1
	}
	return rs
}

func (c *Collector) onHello(workerID int, h Hello) {
	c.mu.Lock()
	rs := c.rankLocked(h.Job, h.Rank, workerID)
	if rs == nil {
		c.mu.Unlock()
		return
	}
	// A re-gang can move a rank to a different worker process mid-job
	// (remote execution recovers dead workers' ranks onto survivors or
	// respawns). The stored clock offset belongs to the previous process's
	// clock, so a hello from a new worker must re-probe — otherwise every
	// span the new worker ships would be rebased with a dead worker's
	// offset in the merged trace.
	rebound := rs.probeStarted && rs.workerID != workerID
	rs.workerID = workerID
	if j := c.jobs[h.Job]; h.P > j.p {
		j.p = h.P
	}
	probe := c.cfg.Probe
	if probe == nil && c.reg != nil {
		reg, n := c.reg, c.cfg.ProbeSamples
		probe = func(id int) (tcpmpi.ClockEstimate, error) {
			return reg.ProbeClock(id, n, 3*time.Second)
		}
	}
	if rs.probeStarted && !rebound {
		c.mu.Unlock()
		return
	}
	if rebound {
		// Earlier merge snapshots hold the old (already closed) probeDone;
		// snapshots taken from here on wait for the fresh probe.
		rs.probed = false
		rs.probeDone = make(chan struct{})
	}
	rs.probeStarted = true
	doneCh := rs.probeDone
	c.mu.Unlock()

	if probe == nil {
		close(doneCh) // nothing to wait for; offset stays 0
		return
	}
	go func() {
		est, err := probe(workerID)
		c.mu.Lock()
		if err != nil {
			c.logf("fleet: clock probe of lease %d (job %s rank %d): %v", workerID, h.Job, h.Rank, err)
			if c.probeFailures != nil {
				c.probeFailures.Inc()
			}
		} else {
			rs.offsetNs = est.OffsetNs
			rs.rttNs = est.RTTNs
			rs.probed = true
		}
		c.mu.Unlock()
		close(doneCh)
	}()
}

func (c *Collector) onSpans(workerID int, p SpanPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.rankLocked(p.Job, p.Rank, workerID)
	if rs == nil {
		return
	}
	for _, e := range p.Events {
		if len(rs.events) >= maxEventsPerRank {
			rs.dropped++
			continue
		}
		rs.events = append(rs.events, e)
	}
	for _, e := range p.Edges {
		if len(rs.edges) >= maxEdgesPerRank {
			rs.dropped++
			continue
		}
		rs.edges = append(rs.edges, e)
	}
	if c.eventsTotal != nil {
		c.eventsTotal.Add(int64(len(p.Events)))
		c.edgesTotal.Add(int64(len(p.Edges)))
	}
	if rs.dropped > 0 && c.droppedTotal != nil {
		c.droppedTotal.Add(rs.dropped)
		rs.dropped = 0
	}
	if p.Done {
		rs.done = true
	}
}

// onMetrics federates one rank's snapshot: every shipped metric appears as
// a fleet_<name> gauge summed across the job's ranks in the job registry,
// and summed across every job in the fleet registry. Gauges (not the
// original kinds) because a sum of counters snapshotted at different
// instants is itself a sampled value — and because re-registering a name
// with a different kind panics by design in trace.Registry.
func (c *Collector) onMetrics(p MetricsPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[p.Job]
	if j == nil {
		j = &jobState{name: p.Job, ranks: map[int]*rankState{}, fed: map[int]map[string]float64{}}
		c.jobs[p.Job] = j
	}
	j.fed[p.Rank] = p.Values

	var jobReg *trace.Registry
	if c.cfg.JobRegistry != nil {
		jobReg = c.cfg.JobRegistry(p.Job)
	}
	for name := range p.Values {
		if !validFedName(name) {
			continue
		}
		if jobReg != nil {
			var sum float64
			for _, vals := range j.fed {
				sum += vals[name]
			}
			jobReg.Gauge("fleet_"+name, "sum of "+name+" across the job's ranks").Set(sum)
		}
		if c.cfg.Metrics != nil {
			var sum float64
			for _, job := range c.jobs {
				for _, vals := range job.fed {
					sum += vals[name]
				}
			}
			c.cfg.Metrics.Gauge("fleet_"+name, "sum of "+name+" across all jobs' ranks").Set(sum)
		}
	}
}

// validFedName guards the federated namespace: only casvm's own metric
// families are mirrored, and only names that stay valid Prometheus
// identifiers after prefixing.
func validFedName(name string) bool {
	if name == "" || len(name) > 200 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
		default:
			return false
		}
	}
	return strings.HasPrefix(name, "casvm_") || strings.HasPrefix(name, "cluster_") ||
		strings.HasPrefix(name, "tcpmpi_") || strings.HasPrefix(name, "smo_")
}

func (c *Collector) onEpoch(p EpochPayload) {
	events := c.det.observe(p.Job, p.Rank, p.Epoch, p.Sec)
	if len(events) == 0 {
		return
	}
	var jobReg *trace.Registry
	if c.cfg.JobRegistry != nil {
		jobReg = c.cfg.JobRegistry(p.Job)
	}
	for _, e := range events {
		c.ring.add(e)
		if c.stragglerTotal != nil {
			c.stragglerTotal.Inc()
			c.stragglerLast.Set(e.Factor)
		}
		if jobReg != nil {
			jobReg.Counter("cluster_straggler_detections_total", "straggler verdicts for this job").Inc()
		}
		c.logf("fleet: straggler: job %s rank %d epoch %d ran %.3fs vs median %.3fs (%.2fx)",
			e.Job, e.Rank, e.Epoch, e.Sec, e.MedianSec, e.Factor)
	}
}

// Events returns straggler events at cursors ≥ cursor plus the next
// cursor — the pagination contract of telemetry SSE sources.
func (c *Collector) Events(cursor uint64) ([]StragglerEvent, uint64) {
	return c.ring.since(cursor)
}

// StreamSource adapts Events to the telemetry server's generic stream
// shape for mounting at /fleet/events.
func (c *Collector) StreamSource() func(cursor uint64) ([]any, uint64) {
	return func(cursor uint64) ([]any, uint64) {
		events, next := c.Events(cursor)
		out := make([]any, len(events))
		for i, e := range events {
			out[i] = e
		}
		return out, next
	}
}

// Jobs lists the job ids with fleet telemetry, sorted.
func (c *Collector) Jobs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.jobs))
	for name := range c.jobs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasTrace reports whether the job has shipped any trace spans worth
// merging.
func (c *Collector) HasTrace(job string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[job]
	if j == nil {
		return false
	}
	for _, rs := range j.ranks {
		if len(rs.events) > 0 || len(rs.edges) > 0 {
			return true
		}
	}
	return false
}

// StreamComplete reports whether every rank of the job's announced world
// has Done-marked its span stream — the launcher-side signal that a
// merged trace would be complete.
func (c *Collector) StreamComplete(job string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[job]
	if j == nil || j.p == 0 || len(j.ranks) < j.p {
		return false
	}
	for _, rs := range j.ranks {
		if !rs.done {
			return false
		}
	}
	return true
}

// Forget drops a finished job's accumulated state (after its merged trace
// has been written).
func (c *Collector) Forget(job string) {
	c.mu.Lock()
	delete(c.jobs, job)
	c.mu.Unlock()
	c.det.forget(job)
}
