// Package fleet is the telemetry plane of a casvm cluster: workers stream
// trace spans, flow edges, metric snapshots, and per-epoch progress to the
// coordinator over their existing lease connections, and the coordinator
// merges them into one offset-rebased timeline per job (a single Chrome
// trace file with cross-process Perfetto arrows that casvm-profile can
// analyze), federates the metrics into per-job and fleet-level Prometheus
// aggregates, and runs an online straggler detector against the gang.
//
// The wire layer is deliberately thin: each message is one lease control
// frame whose payload is JSON. Frames ride the same connection as
// heartbeats and job control, so no new ports, dial paths, or failure
// modes are introduced — a worker that can hold a lease can ship
// telemetry. Frame kinds live in the 120–129 block, routed ahead of the
// cluster job-control tags (internal/cluster/wire.go).
package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"casvm/internal/tcpmpi"
	"casvm/internal/trace"
)

// Fleet control-frame tags. They share the lease-frame tag space with the
// cluster's job control (tagSubmit=101, tagResult=102 in
// internal/cluster/wire.go, which routes this block to the Collector) and
// the mesh-discovery tags of examples/distributed (77–79).
const (
	// TagHello announces a worker's (job, rank, p) before any other fleet
	// frame; it also triggers the coordinator's clock probe of this lease.
	TagHello = 120
	// TagSpans carries a chunk of trace events and flow edges.
	TagSpans = 121
	// TagMetrics carries a metric-registry snapshot for federation.
	TagMetrics = 122
	// TagEpoch reports one epoch's duration on one rank — the straggler
	// detector's input.
	TagEpoch = 123
	// TagGoodbye marks a rank's telemetry stream complete.
	TagGoodbye = 124
)

// IsFleetTag reports whether a lease-frame tag belongs to the fleet
// telemetry block.
func IsFleetTag(tag int) bool { return tag >= TagHello && tag <= TagGoodbye }

// Hello is the TagHello payload.
type Hello struct {
	Job  string `json:"job"`
	Rank int    `json:"rank"`
	P    int    `json:"p"`
}

// SpanPayload is the TagSpans payload: one chunk of a rank's timeline.
// Event ranks and edge endpoints are global rank ids, not lease ids.
type SpanPayload struct {
	Job    string           `json:"job"`
	Rank   int              `json:"rank"`
	Events []trace.Event    `json:"events,omitempty"`
	Edges  []trace.FlowEdge `json:"edges,omitempty"`
	// Done marks the final chunk of this rank's stream.
	Done bool `json:"done,omitempty"`
}

// MetricsPayload is the TagMetrics payload: a point-in-time snapshot of a
// rank's metric registry (counter/gauge values and histogram sums, as
// produced by trace.Registry.Snapshot).
type MetricsPayload struct {
	Job    string             `json:"job"`
	Rank   int                `json:"rank"`
	Values map[string]float64 `json:"values"`
}

// EpochPayload is the TagEpoch payload.
type EpochPayload struct {
	Job   string  `json:"job"`
	Rank  int     `json:"rank"`
	Epoch int     `json:"epoch"`
	Sec   float64 `json:"sec"`
}

// Reporter is the worker side of the fleet plane: a thin sender bound to
// one lease and one (job, rank). All methods are safe to call from the
// training goroutine; each is one frame write on the lease.
type Reporter struct {
	lease *tcpmpi.Lease
	job   string
	rank  int
}

// NewReporter announces (job, rank, p) on the lease and returns the bound
// sender. The hello must precede every other fleet frame from this lease —
// the collector drops frames from leases it has no hello for.
func NewReporter(l *tcpmpi.Lease, job string, rank, p int) (*Reporter, error) {
	r := &Reporter{lease: l, job: job, rank: rank}
	if err := r.send(TagHello, Hello{Job: job, Rank: rank, P: p}); err != nil {
		return nil, fmt.Errorf("fleet: hello: %w", err)
	}
	return r, nil
}

func (r *Reporter) send(tag int, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return r.lease.Send(tag, b)
}

// ReportEpoch reports one epoch's duration for straggler detection.
func (r *Reporter) ReportEpoch(epoch int, d time.Duration) error {
	return r.send(TagEpoch, EpochPayload{Job: r.job, Rank: r.rank, Epoch: epoch, Sec: d.Seconds()})
}

// ShipMetrics sends a snapshot of the registry for federation (nil-safe:
// a nil registry ships an empty snapshot).
func (r *Reporter) ShipMetrics(reg *trace.Registry) error {
	return r.send(TagMetrics, MetricsPayload{Job: r.job, Rank: r.rank, Values: reg.Snapshot()})
}

// spanChunk bounds events (and edges) per TagSpans frame, keeping frames
// comfortably under the transport's payload limits.
const spanChunk = 512

// ShipTimeline streams the timeline's events and flow edges in chunks and
// closes the stream with a Done marker. Call it after the run finishes
// (the same happens-before rule as trace.Timeline.Events). The timeout
// bounds the whole ship.
func (r *Reporter) ShipTimeline(tl *trace.Timeline, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	events := tl.Events()
	edges := tl.FlowEdges()
	for len(events) > 0 || len(edges) > 0 {
		if timeout > 0 && !time.Now().Before(deadline) {
			return fmt.Errorf("fleet: ship timeline: timeout after %v", timeout)
		}
		p := SpanPayload{Job: r.job, Rank: r.rank}
		n := len(events)
		if n > spanChunk {
			n = spanChunk
		}
		p.Events, events = events[:n], events[n:]
		n = len(edges)
		if n > spanChunk {
			n = spanChunk
		}
		p.Edges, edges = edges[:n], edges[n:]
		if err := r.send(TagSpans, p); err != nil {
			return fmt.Errorf("fleet: ship timeline: %w", err)
		}
	}
	return r.send(TagSpans, SpanPayload{Job: r.job, Rank: r.rank, Done: true})
}

// Goodbye marks this rank's telemetry stream complete.
func (r *Reporter) Goodbye() error {
	return r.send(TagGoodbye, Hello{Job: r.job, Rank: r.rank})
}
