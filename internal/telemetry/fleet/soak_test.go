package fleet

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

// TestFleetSoak is the full-stack fleet acceptance run, gated behind
// CASVM_SOAK_CLUSTER=1 (`make soak-cluster`): it forks the real
// examples/distributed launcher — four OS processes, lease discovery,
// clock probes over loopback, an injected 1s straggler — and asserts the
// merged trace it writes parses strictly, satisfies causality on every
// cross-process edge, and analyzes end-to-end with a telescoping
// critical-path decomposition.
func TestFleetSoak(t *testing.T) {
	if os.Getenv("CASVM_SOAK_CLUSTER") != "1" {
		t.Skip("set CASVM_SOAK_CLUSTER=1 (or `make soak-cluster`) to run the multi-process fleet soak")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "merged.trace")
	cmd := exec.Command("go", "run", "./examples/distributed",
		"-launch", "-p", "4", "-fleet-trace", tracePath,
		"-straggle-rank", "2", "-straggle-sec", "1s")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("launcher failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "STRAGGLER rank 2") {
		t.Fatalf("straggler verdict missing from launcher output:\n%s", out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := trace.ReadTraceExtra(f)
	if err != nil {
		t.Fatalf("merged trace does not parse strictly: %v", err)
	}
	if x.P != 4 {
		t.Fatalf("merged trace P = %d, want 4", x.P)
	}
	if x.Timebase != trace.TimebaseWall {
		t.Fatalf("timebase %q, want %q", x.Timebase, trace.TimebaseWall)
	}
	if len(x.ClockOffsetsNs) != 4 {
		t.Fatalf("clock offsets %v, want 4 entries", x.ClockOffsetsNs)
	}
	if len(x.Edges) == 0 {
		t.Fatal("merged trace has no cross-process flow edges")
	}
	for _, e := range x.Edges {
		if e.RecvVirtSec < e.SendVirtSec || e.RecvWallNs < e.SendWallNs {
			t.Fatalf("causality violated after rebase: %+v", e)
		}
	}
	a, err := critpath.Analyze(critpath.FromExtra(x))
	if err != nil {
		t.Fatal(err)
	}
	// The injected 1s delay dominates the makespan.
	if a.MakespanSec < 0.9 {
		t.Fatalf("makespan %.3fs, want ≥ 0.9s (straggler not on the path?)", a.MakespanSec)
	}
	if diff := math.Abs(a.Sum() - a.MakespanSec); diff > 1e-9*a.MakespanSec {
		t.Fatalf("decomposition %.9fs != makespan %.9fs", a.Sum(), a.MakespanSec)
	}
}
