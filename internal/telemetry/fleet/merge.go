package fleet

import (
	"fmt"
	"io"
	"sort"
	"time"

	"casvm/internal/trace"
)

// Merging per-rank telemetry into one timeline.
//
// Worker timestamps are wall clocks from different machines; the merge
// rebases them onto the coordinator's clock in three steps:
//
//  1. Probe: each rank's hello triggered an NTP-style lease exchange
//     (tcpmpi.ProbeClock) giving offset ≈ rank clock − coordinator clock;
//     rebased = raw − offset.
//  2. Repair: probe error is bounded by half the RTT, so a rebased edge
//     can still violate recv ≥ send. Each violated edge is a difference
//     constraint on the two ranks' offsets; lowering the receiver's
//     offset by the violation amount (≤ p+2 relaxation passes) resolves
//     what the probes got wrong, exactly like the sendNs-based bound the
//     frame headers already carry.
//  3. Clamp: any residual violation is clamped to recv = send and
//     counted — the exported trace always satisfies the causality
//     invariant the critical-path walker assumes.
//
// The merged timeline is wall-timebase: segment and edge coordinates are
// seconds since the earliest rebased instant. Per-rank segment tilings
// are synthesized from the shipped spans — compute categories become
// SegComp, idle gaps become SegWait (ending at a message arrival when one
// lands in the gap, which hands critpath its cross-rank hop), and each
// send point carries a zero-length SegBandwidth so Recost can resolve
// sender completion times. Latency/bandwidth cannot be separated from
// wall observations alone, so an edge's whole transfer time is carried as
// LatencySec and BandwidthSec stays 0.

// compCats are the span categories synthesized into SegComp. Collective
// spans are excluded (their time is the communication being attributed
// through edges and waits); train spans are excluded as outer envelopes.
var compCats = map[string]bool{
	trace.CatSolver:     true,
	trace.CatKernel:     true,
	trace.CatInit:       true,
	trace.CatCheckpoint: true,
	trace.CatRecovery:   true,
}

// mergeInput is the under-lock snapshot of one job's telemetry.
type mergeInput struct {
	p       int
	events  [][]trace.Event   // by rank
	edges   []trace.FlowEdge  // deduplicated by (dst, id)
	offsets []int64           // by rank, ns (rank − coordinator)
	probes  []<-chan struct{} // pending probe completions
}

func (c *Collector) snapshotJob(job string) (*mergeInput, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[job]
	if j == nil {
		return nil, fmt.Errorf("fleet: no telemetry for job %q", job)
	}
	in := &mergeInput{p: j.p}
	if in.p < 1 {
		return nil, fmt.Errorf("fleet: job %q has no ranks", job)
	}
	in.events = make([][]trace.Event, in.p)
	in.offsets = make([]int64, in.p)
	type edgeKey struct {
		dst int
		id  int64
	}
	seen := map[edgeKey]bool{}
	for rank, rs := range j.ranks {
		if rank >= in.p {
			continue
		}
		in.events[rank] = rs.events[:len(rs.events):len(rs.events)]
		in.offsets[rank] = rs.offsetNs
		if rs.probeStarted {
			in.probes = append(in.probes, rs.probeDone)
		}
		for _, e := range rs.edges {
			k := edgeKey{e.Dst, e.ID}
			if seen[k] || e.Src < 0 || e.Src >= in.p || e.Dst < 0 || e.Dst >= in.p {
				continue
			}
			seen[k] = true
			in.edges = append(in.edges, e)
		}
	}
	return in, nil
}

// waitProbes blocks until every in-flight clock probe of the snapshot has
// settled or the timeout lapses, then refreshes the offsets from the
// collector state (probes complete asynchronously after hello).
func (c *Collector) waitProbes(job string, in *mergeInput, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for _, ch := range in.probes {
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			c.logf("fleet: job %s: clock probe still pending at merge; using current estimates", job)
		}
	}
	c.mu.Lock()
	if j := c.jobs[job]; j != nil {
		for rank, rs := range j.ranks {
			if rank < len(in.offsets) {
				in.offsets[rank] = rs.offsetNs
			}
		}
	}
	c.mu.Unlock()
}

// repairOffsets relaxes the per-rank offsets against the causality
// constraints the edges impose (rebased recv ≥ rebased send), returning
// how many per-rank adjustments were applied. Offsets only decrease
// (receivers shift later), and each pass applies the largest needed
// correction per rank; p+2 passes bound propagation through any chain.
func repairOffsets(offsets []int64, edges []trace.FlowEdge) (adjustments int) {
	p := len(offsets)
	for pass := 0; pass < p+2; pass++ {
		need := make([]int64, p) // largest recv deficit per receiver
		for _, e := range edges {
			send := e.SendWallNs - offsets[e.Src]
			recv := e.RecvWallNs - offsets[e.Dst]
			if d := send - recv; d > need[e.Dst] {
				need[e.Dst] = d
			}
		}
		changed := false
		for r, d := range need {
			if d > 0 {
				offsets[r] -= d
				adjustments++
				changed = true
			}
		}
		if !changed {
			return adjustments
		}
	}
	return adjustments
}

// MergedTimeline builds one offset-rebased wall-timebase timeline from the
// job's shipped telemetry: all ranks' spans on the coordinator clock,
// cross-process flow edges with fresh ids, and synthesized per-rank
// segment tilings that make the trace analyzable by critpath.
func (c *Collector) MergedTimeline(job string) (*trace.Timeline, error) {
	in, err := c.snapshotJob(job)
	if err != nil {
		return nil, err
	}
	c.waitProbes(job, in, 3*time.Second)

	repairs := repairOffsets(in.offsets, in.edges)
	if repairs > 0 && c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter("cluster_fleet_offset_repairs_total",
			"per-rank offset corrections forced by violated causality constraints").Add(int64(repairs))
	}

	// Rebase everything and find the common origin.
	type redge struct {
		trace.FlowEdge
		sendNs, recvNs int64
	}
	var base int64
	haveBase := false
	observe := func(ns int64) {
		if !haveBase || ns < base {
			base, haveBase = ns, true
		}
	}
	events := make([][]trace.Event, in.p)
	maxPerRank := 0
	for rank := range in.events {
		evs := make([]trace.Event, 0, len(in.events[rank]))
		for _, e := range in.events[rank] {
			e.Rank = rank
			e.WallStartNs -= in.offsets[rank]
			evs = append(evs, e)
			observe(e.WallStartNs)
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].WallStartNs < evs[j].WallStartNs })
		events[rank] = evs
		if len(evs) > maxPerRank {
			maxPerRank = len(evs)
		}
	}
	redges := make([]redge, 0, len(in.edges))
	clamped := 0
	for _, e := range in.edges {
		re := redge{FlowEdge: e}
		re.sendNs = e.SendWallNs - in.offsets[e.Src]
		re.recvNs = e.RecvWallNs - in.offsets[e.Dst]
		if re.recvNs < re.sendNs {
			re.recvNs = re.sendNs // final causality clamp (counted, never silent)
			clamped++
		}
		observe(re.sendNs)
		redges = append(redges, re)
	}
	if clamped > 0 && c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter("cluster_fleet_clamped_edges_total",
			"edges clamped to recv = send after offset repair").Add(int64(clamped))
	}
	if !haveBase {
		return nil, fmt.Errorf("fleet: job %q shipped no spans or edges", job)
	}
	toSec := func(ns int64) float64 { return float64(ns-base) / 1e9 }

	// Fresh edge ids: worker-local ids ((src+1)<<40|seq from tcpmpi) are
	// only unique per receiver; reassign 1..n in arrival order.
	sort.SliceStable(redges, func(i, j int) bool { return redges[i].recvNs < redges[j].recvNs })
	tl := trace.NewTimelineCap(in.p, maxPerRank+16)
	tl.SetTimebase(trace.TimebaseWall, append([]int64(nil), in.offsets...))
	final := make([]trace.FlowEdge, len(redges))
	for i, re := range redges {
		sendSec, recvSec := toSec(re.sendNs), toSec(re.recvNs)
		final[i] = trace.FlowEdge{
			ID: int64(i + 1), Src: re.Src, Dst: re.Dst, Tag: re.Tag, Bytes: re.Bytes,
			SendVirtSec: sendSec, RecvVirtSec: recvSec,
			SendWallNs: re.sendNs, RecvWallNs: re.recvNs,
			// Wall observation cannot split α from β: the whole transfer
			// rides in LatencySec (see casvm-profile's wall-timebase note).
			LatencySec: recvSec - sendSec, BandwidthSec: 0,
		}
	}

	for rank := 0; rank < in.p; rank++ {
		rec := tl.Rank(rank)
		for _, e := range events[rank] {
			rec.AddEvent(e)
		}
	}
	for _, e := range final {
		tl.Rank(e.Dst).RecordFlow(e)
	}
	synthesizeSegments(tl, events, final, toSec)
	return tl, nil
}

// synthSeg is one synthesized segment before it is recorded.
type synthSeg struct {
	kind   trace.SegKind
	s, e   float64
	edgeID int64
	phase  string
}

// synthesizeSegments tiles each rank's wall clock: merged compute
// intervals from its spans, idle gaps as waits (split at message
// arrivals, which carry the edge id critpath hops through), and a
// zero-length bandwidth segment at each send point so Recost can resolve
// sender completion times.
func synthesizeSegments(tl *trace.Timeline, events [][]trace.Event, edges []trace.FlowEdge, toSec func(int64) float64) {
	for rank := range events {
		type ival struct {
			s, e float64
			name string
		}
		var comps []ival
		for _, e := range events[rank] {
			if e.Instant || !compCats[e.Cat] || e.WallDurNs <= 0 {
				continue
			}
			comps = append(comps, ival{toSec(e.WallStartNs), toSec(e.WallStartNs + e.WallDurNs), e.Name})
		}
		sort.SliceStable(comps, func(i, j int) bool { return comps[i].s < comps[j].s })
		merged := comps[:0]
		for _, iv := range comps {
			if n := len(merged); n > 0 && iv.s <= merged[n-1].e {
				if iv.e > merged[n-1].e {
					merged[n-1].e = iv.e
				}
				continue
			}
			merged = append(merged, iv)
		}

		type point struct {
			t  float64
			id int64
		}
		var recvs, sends []point
		for _, e := range edges {
			if e.Dst == rank {
				recvs = append(recvs, point{e.RecvVirtSec, e.ID})
			}
			if e.Src == rank {
				sends = append(sends, point{e.SendVirtSec, e.ID})
			}
		}
		sort.SliceStable(recvs, func(i, j int) bool { return recvs[i].t < recvs[j].t })
		sort.SliceStable(sends, func(i, j int) bool { return sends[i].t < sends[j].t })

		end := 0.0
		for _, iv := range merged {
			if iv.e > end {
				end = iv.e
			}
		}
		for _, pt := range recvs {
			if pt.t > end {
				end = pt.t
			}
		}
		for _, pt := range sends {
			if pt.t > end {
				end = pt.t
			}
		}
		if end == 0 && len(merged) == 0 && len(recvs) == 0 && len(sends) == 0 {
			continue // silent rank: no tiling
		}

		var segs []synthSeg
		// fillIdle tiles [a, b) with waits, splitting at arrivals inside it.
		fillIdle := func(a, b float64) {
			for len(recvs) > 0 && recvs[0].t <= b {
				pt := recvs[0]
				recvs = recvs[1:]
				if pt.t > a {
					segs = append(segs, synthSeg{kind: trace.SegWait, s: a, e: pt.t, edgeID: pt.id})
					a = pt.t
				}
				// Arrivals at or before the cursor consumed no idle time:
				// the message was already there when the rank needed it.
			}
			if b > a {
				segs = append(segs, synthSeg{kind: trace.SegWait, s: a, e: b})
			}
		}
		cursor := 0.0
		for _, iv := range merged {
			if iv.s > cursor {
				fillIdle(cursor, iv.s)
			}
			// Arrivals overlapped by compute consume no idle time either.
			for len(recvs) > 0 && recvs[0].t <= iv.e {
				recvs = recvs[1:]
			}
			segs = append(segs, synthSeg{kind: trace.SegComp, s: iv.s, e: iv.e, phase: iv.name})
			if iv.e > cursor {
				cursor = iv.e
			}
		}
		if end > cursor {
			fillIdle(cursor, end)
		}
		for _, pt := range sends {
			segs = append(segs, synthSeg{kind: trace.SegBandwidth, s: pt.t, e: pt.t, edgeID: pt.id})
		}
		// Clock order; zero-length send markers sort ahead of the segment
		// they interrupt so Recost resolves sends before dependent waits.
		sort.SliceStable(segs, func(i, j int) bool {
			if segs[i].s != segs[j].s {
				return segs[i].s < segs[j].s
			}
			return segs[i].e < segs[j].e
		})
		rec := tl.Rank(rank)
		for _, sg := range segs {
			rec.SetPhase(sg.phase)
			rec.RecordSegment(sg.kind, sg.s, sg.e, sg.edgeID)
		}
		rec.SetPhase("")
	}
}

// WriteMergedTrace merges the job's telemetry (MergedTimeline) and writes
// it as one Chrome trace_event file — all ranks as threads of one
// process, cross-rank Perfetto arrows included, with the casvm section
// carrying the synthesized tilings, rebased edges, wall timebase, and the
// per-rank clock offsets applied.
func (c *Collector) WriteMergedTrace(job string, w io.Writer) error {
	tl, err := c.MergedTimeline(job)
	if err != nil {
		return err
	}
	return tl.WriteChromeTrace(w)
}
