package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"casvm/internal/tcpmpi"
	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

// frame drives HandleFrame directly with a JSON payload, standing in for
// the lease frame loop.
func frame(t *testing.T, c *Collector, workerID, tag int, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HandleFrame(tcpmpi.WorkerInfo{ID: workerID}, tag, b) {
		t.Fatalf("tag %d not consumed as a fleet frame", tag)
	}
}

// mkEvent builds a completed span on a rank's local clock.
func mkEvent(rank int, cat, name string, startNs, durNs int64) trace.Event {
	return trace.Event{Name: name, Cat: cat, Rank: rank, WallStartNs: startNs, WallDurNs: durNs}
}

// tcpEdgeID mimics tcpmpi's receiver-local edge ids, which collide across
// receivers — the merge must key dedup by (dst, id) and re-id afterwards.
func tcpEdgeID(src int, seq uint32) int64 { return int64(src+1)<<40 | int64(seq) }

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStragglerDetector pins the heuristic: no verdict below MinRanks,
// none when the median sits under MinSec, a verdict exactly when a rank
// exceeds Factor × median, and per-(epoch, rank) dedup.
func TestStragglerDetector(t *testing.T) {
	d := newDetector(StragglerConfig{Factor: 1.5, MinRanks: 3, MinSec: 0.01})

	if ev := d.observe("j", 0, 0, 0.1); len(ev) != 0 {
		t.Fatalf("verdict below MinRanks: %+v", ev)
	}
	if ev := d.observe("j", 1, 0, 0.1); len(ev) != 0 {
		t.Fatalf("verdict below MinRanks: %+v", ev)
	}
	// Third report crosses MinRanks; rank 2 runs 5× the median.
	ev := d.observe("j", 2, 0, 0.5)
	if len(ev) != 1 || ev[0].Rank != 2 || ev[0].Epoch != 0 {
		t.Fatalf("want rank 2 flagged, got %+v", ev)
	}
	if ev[0].Factor < 4.9 || ev[0].Factor > 5.1 {
		t.Fatalf("factor %v, want ~5", ev[0].Factor)
	}
	// Same rank, same epoch: deduplicated even as more reports arrive.
	if ev := d.observe("j", 3, 0, 0.1); len(ev) != 0 {
		t.Fatalf("duplicate verdict: %+v", ev)
	}
	// A fresh epoch flags again.
	d.observe("j", 0, 1, 0.1)
	d.observe("j", 1, 1, 0.1)
	if ev := d.observe("j", 2, 1, 0.4); len(ev) != 1 {
		t.Fatalf("new epoch not flagged: %+v", ev)
	}
	// Sub-MinSec medians are scheduler noise, never flagged.
	d.observe("noise", 0, 0, 1e-5)
	d.observe("noise", 1, 0, 1e-5)
	if ev := d.observe("noise", 2, 0, 1.0); len(ev) != 0 {
		t.Fatalf("noise-floor epoch flagged: %+v", ev)
	}
	// A rank within the factor is not flagged.
	d.observe("ok", 0, 0, 0.1)
	d.observe("ok", 1, 0, 0.1)
	if ev := d.observe("ok", 2, 0, 0.14); len(ev) != 0 {
		t.Fatalf("in-band rank flagged: %+v", ev)
	}
	d.forget("j")
	d.observe("j", 0, 0, 0.1)
	d.observe("j", 1, 0, 0.1)
	if ev := d.observe("j", 2, 0, 0.5); len(ev) != 1 {
		t.Fatal("forget must clear dedup state")
	}
}

// TestEventRing pins the cursor contract: monotonic cursors, wrap-around
// drops the oldest prefix, and a stale cursor resumes at the window start.
func TestEventRing(t *testing.T) {
	r := newEventRing(4)
	if ev, next := r.since(0); len(ev) != 0 || next != 0 {
		t.Fatalf("empty ring: %v %d", ev, next)
	}
	for i := 0; i < 6; i++ {
		r.add(StragglerEvent{Rank: i})
	}
	ev, next := r.since(0)
	if len(ev) != 4 || ev[0].Rank != 2 || ev[3].Rank != 5 {
		t.Fatalf("wrapped window: %+v", ev)
	}
	if next != 6 {
		t.Fatalf("next cursor %d, want 6", next)
	}
	if ev, _ := r.since(next); len(ev) != 0 {
		t.Fatalf("drained ring returned %+v", ev)
	}
	r.add(StragglerEvent{Rank: 6})
	ev, next = r.since(next)
	if len(ev) != 1 || ev[0].Rank != 6 || next != 7 {
		t.Fatalf("incremental read: %+v %d", ev, next)
	}
}

// TestCollectorStragglerPath drives epoch reports through HandleFrame and
// asserts the verdict reaches all three surfaces: the SSE ring, the fleet
// registry, and the job registry.
func TestCollectorStragglerPath(t *testing.T) {
	fleetReg := trace.NewRegistry()
	jobReg := trace.NewRegistry()
	c := New(Config{
		Metrics:     fleetReg,
		JobRegistry: func(string) *trace.Registry { return jobReg },
		Straggler:   StragglerConfig{Factor: 1.5, MinRanks: 3},
	})
	for rank := 0; rank < 3; rank++ {
		sec := 0.1
		if rank == 1 {
			sec = 0.9
		}
		frame(t, c, rank, TagEpoch, EpochPayload{Job: "j", Rank: rank, Epoch: 3, Sec: sec})
	}
	ev, next := c.Events(0)
	if len(ev) != 1 || ev[0].Rank != 1 || ev[0].Job != "j" || ev[0].Epoch != 3 {
		t.Fatalf("events: %+v", ev)
	}
	if next != 1 {
		t.Fatalf("cursor %d, want 1", next)
	}
	if got := fleetReg.Snapshot()["cluster_straggler_detections_total"]; got != 1 {
		t.Fatalf("fleet detections %v, want 1", got)
	}
	if got := jobReg.Snapshot()["cluster_straggler_detections_total"]; got != 1 {
		t.Fatalf("job detections %v, want 1", got)
	}
	if got := fleetReg.Snapshot()["cluster_straggler_last_factor"]; got < 8 || got > 10 {
		t.Fatalf("last factor %v, want ~9", got)
	}
	// The stream source adapts the same ring.
	items, n2 := c.StreamSource()(0)
	if len(items) != 1 || n2 != 1 {
		t.Fatalf("stream source: %d items, cursor %d", len(items), n2)
	}
}

// TestFederation pins the aggregate rule: fleet_<name> gauges are sums
// across ranks in the job registry and across jobs in the fleet registry;
// non-casvm or malformed names never cross the boundary.
func TestFederation(t *testing.T) {
	fleetReg := trace.NewRegistry()
	jobRegs := map[string]*trace.Registry{"a": trace.NewRegistry(), "b": trace.NewRegistry()}
	c := New(Config{
		Metrics:     fleetReg,
		JobRegistry: func(j string) *trace.Registry { return jobRegs[j] },
	})
	frame(t, c, 0, TagMetrics, MetricsPayload{Job: "a", Rank: 0, Values: map[string]float64{
		"casvm_iterations_total": 10,
		"tcpmpi_sent_bytes":      100,
		"bogus metric":           5, // invalid characters: dropped
		"other_family_total":     7, // foreign prefix: dropped
	}})
	frame(t, c, 1, TagMetrics, MetricsPayload{Job: "a", Rank: 1, Values: map[string]float64{
		"casvm_iterations_total": 32,
	}})
	frame(t, c, 2, TagMetrics, MetricsPayload{Job: "b", Rank: 0, Values: map[string]float64{
		"casvm_iterations_total": 100,
	}})

	if got := jobRegs["a"].Snapshot()["fleet_casvm_iterations_total"]; got != 42 {
		t.Fatalf("job a sum %v, want 42", got)
	}
	if got := jobRegs["b"].Snapshot()["fleet_casvm_iterations_total"]; got != 100 {
		t.Fatalf("job b sum %v, want 100", got)
	}
	if got := fleetReg.Snapshot()["fleet_casvm_iterations_total"]; got != 142 {
		t.Fatalf("fleet sum %v, want 142", got)
	}
	if got := jobRegs["a"].Snapshot()["fleet_tcpmpi_sent_bytes"]; got != 100 {
		t.Fatalf("tcpmpi family not federated: %v", got)
	}
	snap := fleetReg.Snapshot()
	for name := range snap {
		if name == "fleet_bogus metric" || name == "fleet_other_family_total" {
			t.Fatalf("invalid name crossed federation: %s", name)
		}
	}
	// A rank re-shipping replaces (not double-counts) its contribution.
	frame(t, c, 1, TagMetrics, MetricsPayload{Job: "a", Rank: 1, Values: map[string]float64{
		"casvm_iterations_total": 40,
	}})
	if got := jobRegs["a"].Snapshot()["fleet_casvm_iterations_total"]; got != 50 {
		t.Fatalf("re-ship sum %v, want 50", got)
	}
}

// skewedFixture ships a three-rank job whose ranks run on clocks skewed by
// the given offsets (ns). True timeline, relative to an arbitrary origin:
//
//	rank 0: comp [0ms, 10ms), send → 1 at 10ms
//	rank 1: comp [0ms, 4ms), recv from 0 at 12ms, comp [12ms, 20ms), send → 2 at 20ms
//	rank 2: comp [0ms, 6ms), recv from 1 at 22ms, comp [22ms, 30ms)
//
// Every shipped timestamp is true time + skew[rank]; a perfect merge
// recovers the true relative timeline exactly.
func skewedFixture(t *testing.T, c *Collector, skew [3]int64) {
	t.Helper()
	const ms = int64(time.Millisecond)
	origin := time.Now().UnixNano()
	at := func(rank int, trueNs int64) int64 { return origin + trueNs + skew[rank] }

	frame(t, c, 0, TagHello, Hello{Job: "j", Rank: 0, P: 3})
	frame(t, c, 1, TagHello, Hello{Job: "j", Rank: 1, P: 3})
	frame(t, c, 2, TagHello, Hello{Job: "j", Rank: 2, P: 3})

	frame(t, c, 0, TagSpans, SpanPayload{Job: "j", Rank: 0, Events: []trace.Event{
		mkEvent(0, trace.CatSolver, "scan", at(0, 0), 10*ms),
	}, Done: true})
	frame(t, c, 1, TagSpans, SpanPayload{Job: "j", Rank: 1,
		Events: []trace.Event{
			mkEvent(1, trace.CatSolver, "scan", at(1, 0), 4*ms),
			mkEvent(1, trace.CatSolver, "scan", at(1, 12*ms), 8*ms),
		},
		Edges: []trace.FlowEdge{{
			ID: tcpEdgeID(0, 7), Src: 0, Dst: 1, Tag: 5, Bytes: 64,
			SendWallNs: at(0, 10*ms), RecvWallNs: at(1, 12*ms),
		}},
		Done: true})
	frame(t, c, 2, TagSpans, SpanPayload{Job: "j", Rank: 2,
		Events: []trace.Event{
			mkEvent(2, trace.CatSolver, "scan", at(2, 0), 6*ms),
			mkEvent(2, trace.CatSolver, "scan", at(2, 22*ms), 8*ms),
		},
		Edges: []trace.FlowEdge{{
			ID: tcpEdgeID(1, 7), Src: 1, Dst: 2, Tag: 5, Bytes: 64,
			SendWallNs: at(1, 20*ms), RecvWallNs: at(2, 22*ms),
		}},
		Done: true})
}

// checkMerged asserts the merged trace invariants every fixture must
// satisfy: strict schema, wall timebase, recv ≥ send on every edge, and a
// critical-path decomposition whose buckets telescope to the makespan.
func checkMerged(t *testing.T, c *Collector, wantOffsets *[3]int64) *trace.TraceExtra {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteMergedTrace("j", &buf); err != nil {
		t.Fatal(err)
	}
	x, err := trace.ReadTraceExtra(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if x.Timebase != trace.TimebaseWall {
		t.Fatalf("timebase %q, want %q", x.Timebase, trace.TimebaseWall)
	}
	if x.P != 3 {
		t.Fatalf("p = %d, want 3", x.P)
	}
	if len(x.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(x.Edges))
	}
	for _, e := range x.Edges {
		if e.RecvVirtSec < e.SendVirtSec {
			t.Fatalf("causality violated after rebase: edge %+v", e)
		}
		if e.RecvWallNs < e.SendWallNs {
			t.Fatalf("wall causality violated: edge %+v", e)
		}
	}
	if x.CausalityViolations != 0 {
		t.Fatalf("merged timeline counted %d causality violations", x.CausalityViolations)
	}
	if wantOffsets != nil {
		if len(x.ClockOffsetsNs) != 3 {
			t.Fatalf("offsets %v, want 3 entries", x.ClockOffsetsNs)
		}
		for r, want := range wantOffsets {
			if x.ClockOffsetsNs[r] != want {
				t.Fatalf("offset[%d] = %d, want %d", r, x.ClockOffsetsNs[r], want)
			}
		}
	}
	a, err := critpath.Analyze(critpath.FromExtra(x))
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec <= 0 {
		t.Fatalf("makespan %v", a.MakespanSec)
	}
	if diff := math.Abs(a.Sum() - a.MakespanSec); diff > 1e-9*math.Max(1, a.MakespanSec) {
		t.Fatalf("buckets sum %v != makespan %v (diff %g)", a.Sum(), a.MakespanSec, diff)
	}
	return x
}

// TestMergeWithProbedSkew injects large known skews and a probe that
// reports them exactly: the merge must recover the true relative timeline
// bit-exactly (integer nanosecond arithmetic) and the critical path must
// thread comp → latency hop → comp across all three ranks.
func TestMergeWithProbedSkew(t *testing.T) {
	skew := [3]int64{0, 2 * int64(time.Second), -int64(1500 * time.Millisecond)}
	c := New(Config{
		Metrics: trace.NewRegistry(),
		Probe: func(workerID int) (tcpmpi.ClockEstimate, error) {
			return tcpmpi.ClockEstimate{OffsetNs: skew[workerID], RTTNs: 1000, Samples: 3}, nil
		},
	})
	skewedFixture(t, c, skew)
	waitUntil(t, "trace shipped", func() bool { return c.HasTrace("j") })

	x := checkMerged(t, c, &skew)

	// The true timeline: rank 2's last comp ends at 30ms after origin.
	a, err := critpath.Analyze(critpath.FromExtra(x))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MakespanSec-0.030) > 1e-6 {
		t.Fatalf("makespan %v, want 30ms (skew not removed)", a.MakespanSec)
	}
	if a.EndRank != 2 {
		t.Fatalf("end rank %d, want 2", a.EndRank)
	}
	if a.Hops != 2 {
		t.Fatalf("hops %d, want 2 (rank 2 ← rank 1 ← rank 0)", a.Hops)
	}
	// comp 10ms (r0) + 2ms latency + comp 8ms (r1) + 2ms latency + comp
	// 8ms (r2) = 30ms; nothing on the critical path waits.
	if math.Abs(a.CompSec-0.026) > 1e-6 || math.Abs(a.LatencySec-0.004) > 1e-6 {
		t.Fatalf("comp %v latency %v, want 26ms / 4ms", a.CompSec, a.LatencySec)
	}

	// What-if re-costing works on the merged trace: with instant
	// transfers (ts=0) the makespan loses exactly the 4ms of latency.
	re, err := critpath.Recost(critpath.FromExtra(x), critpath.Factors{Tc: 1, Ts: 0, Tw: 1})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := critpath.Analyze(re)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ra.MakespanSec-0.026) > 1e-6 {
		t.Fatalf("recost makespan %v, want 26ms", ra.MakespanSec)
	}
}

// TestMergeRepairsUnprobedSkew removes the probe entirely: offsets start
// at 0, so the +2s/−1.5s skews surface as causality violations that the
// repair passes must absorb — every exported edge still satisfies
// recv ≥ send and the analysis still telescopes.
func TestMergeRepairsUnprobedSkew(t *testing.T) {
	reg := trace.NewRegistry()
	c := New(Config{Metrics: reg})
	skewedFixture(t, c, [3]int64{0, 2 * int64(time.Second), -int64(1500 * time.Millisecond)})
	waitUntil(t, "trace shipped", func() bool { return c.HasTrace("j") })

	x := checkMerged(t, c, nil)
	// Rank 2's raw clock runs 1.5s behind rank 1's: its recv appears
	// ~1.5s before the send, so repair must have lowered offsets.
	if got := reg.Snapshot()["cluster_fleet_offset_repairs_total"]; got < 1 {
		t.Fatalf("offset repairs %v, want ≥ 1", got)
	}
	off := x.ClockOffsetsNs
	if off[2] >= off[1] {
		t.Fatalf("repair must shift rank 2 later than rank 1's frame: offsets %v", off)
	}
}

// TestMergeClampsResidualViolation feeds a single edge whose violation no
// offset assignment can repair consistently (the same two ranks also have
// a consistent edge), exercising the final clamp: the export still
// satisfies recv ≥ send and the clamp is counted.
func TestMergeClampsResidualViolation(t *testing.T) {
	const ms = int64(time.Millisecond)
	reg := trace.NewRegistry()
	c := New(Config{Metrics: reg})
	origin := time.Now().UnixNano()
	frame(t, c, 0, TagHello, Hello{Job: "j", Rank: 0, P: 2})
	frame(t, c, 1, TagSpans, SpanPayload{Job: "j", Rank: 1,
		Events: []trace.Event{mkEvent(1, trace.CatSolver, "scan", origin, 30*ms)},
		Edges: []trace.FlowEdge{
			// Edge A: recv 5ms before send. Repair shifts rank 1 +5ms.
			{ID: tcpEdgeID(0, 1), Src: 0, Dst: 1, SendWallNs: origin + 10*ms, RecvWallNs: origin + 5*ms},
			// Edge B in the opposite direction with a tight margin: after
			// repairing A, B violates and only the clamp can fix it.
			{ID: tcpEdgeID(1, 2), Src: 1, Dst: 0, SendWallNs: origin + 6*ms, RecvWallNs: origin + 7*ms},
		},
		Done: true})
	frame(t, c, 0, TagSpans, SpanPayload{Job: "j", Rank: 0,
		Events: []trace.Event{mkEvent(0, trace.CatSolver, "scan", origin, 20*ms)},
		Done:   true})

	var buf bytes.Buffer
	if err := c.WriteMergedTrace("j", &buf); err != nil {
		t.Fatal(err)
	}
	x, err := trace.ReadTraceExtra(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range x.Edges {
		if e.RecvVirtSec < e.SendVirtSec || e.RecvWallNs < e.SendWallNs {
			t.Fatalf("edge escaped the clamp: %+v", e)
		}
	}
	snap := reg.Snapshot()
	if snap["cluster_fleet_offset_repairs_total"] < 1 {
		t.Fatalf("expected repairs, got %v", snap["cluster_fleet_offset_repairs_total"])
	}
	if snap["cluster_fleet_clamped_edges_total"] < 1 {
		t.Fatalf("expected a clamped edge, got %v", snap["cluster_fleet_clamped_edges_total"])
	}
}

// TestMergeErrors pins the failure modes: unknown jobs and span-less jobs
// refuse to merge instead of writing empty traces.
func TestMergeErrors(t *testing.T) {
	c := New(Config{})
	if _, err := c.MergedTimeline("nope"); err == nil {
		t.Fatal("unknown job must error")
	}
	frame(t, c, 0, TagHello, Hello{Job: "empty", Rank: 0, P: 2})
	if _, err := c.MergedTimeline("empty"); err == nil {
		t.Fatal("span-less job must error")
	}
	if c.HasTrace("empty") {
		t.Fatal("HasTrace on span-less job")
	}
	if jobs := c.Jobs(); len(jobs) != 1 || jobs[0] != "empty" {
		t.Fatalf("jobs: %v", jobs)
	}
	c.Forget("empty")
	if jobs := c.Jobs(); len(jobs) != 0 {
		t.Fatalf("forget left: %v", jobs)
	}
}

// TestFleetOverRealLeases is the transport-level end-to-end: three worker
// goroutines register real leases, ship real timelines (chunked past the
// 512-event frame limit), metrics, and epoch reports through the lease
// frame loop, with real clock probes over loopback. The merged trace must
// parse strictly and flag the injected straggler.
func TestFleetOverRealLeases(t *testing.T) {
	fleetReg := trace.NewRegistry()
	jobReg := trace.NewRegistry()
	c := New(Config{
		Metrics:     fleetReg,
		JobRegistry: func(string) *trace.Registry { return jobReg },
		Straggler:   StragglerConfig{Factor: 1.5, MinRanks: 3},
	})
	reg, err := tcpmpi.NewRegistrar("127.0.0.1:0", tcpmpi.RegistrarConfig{
		LeaseTTL: 2 * time.Second,
		OnFrame: func(w tcpmpi.WorkerInfo, tag int, payload []byte) {
			c.HandleFrame(w, tag, payload)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	c.AttachRegistrar(reg)

	const p = 3
	const ms = int64(time.Millisecond)
	origin := time.Now().UnixNano()
	errs := make(chan error, p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			errs <- func() error {
				l, err := tcpmpi.Register(reg.Addr(), tcpmpi.RegisterOptions{})
				if err != nil {
					return err
				}
				defer l.Close()
				rep, err := NewReporter(l, "j", rank, p)
				if err != nil {
					return err
				}
				// A local timeline with enough events to force chunking on
				// rank 0, plus one cross-rank edge recorded by receivers.
				tl := trace.NewTimelineCap(p, 2048)
				rec := tl.Rank(rank)
				n := 8
				if rank == 0 {
					n = spanChunk + 300
				}
				for i := 0; i < n; i++ {
					rec.AddEvent(mkEvent(rank, trace.CatSolver, "scan",
						origin+int64(i)*ms, ms/2))
				}
				if rank > 0 {
					rec.RecordFlow(trace.FlowEdge{
						ID: tcpEdgeID(rank-1, 9), Src: rank - 1, Dst: rank,
						Tag: 3, Bytes: 128,
						SendWallNs: origin + int64(n)*ms, RecvWallNs: origin + int64(n+2)*ms,
					})
				}
				mreg := trace.NewRegistry()
				mreg.Counter("casvm_iterations_total", "").Add(int64(100 * (rank + 1)))
				if err := rep.ShipMetrics(mreg); err != nil {
					return err
				}
				epoch := 100 * time.Millisecond
				if rank == 2 {
					epoch = 600 * time.Millisecond // injected straggler
				}
				if err := rep.ReportEpoch(0, epoch); err != nil {
					return err
				}
				if err := rep.ShipTimeline(tl, 10*time.Second); err != nil {
					return err
				}
				return rep.Goodbye()
			}()
		}(rank)
	}
	for i := 0; i < p; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	waitUntil(t, "all spans ingested", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		j := c.jobs["j"]
		if j == nil || len(j.ranks) != p {
			return false
		}
		for _, rs := range j.ranks {
			if !rs.done {
				return false
			}
		}
		return true
	})

	// Straggler: rank 2 ran 6× the gang median.
	ev, _ := c.Events(0)
	if len(ev) != 1 || ev[0].Rank != 2 {
		t.Fatalf("straggler events: %+v", ev)
	}
	if fleetReg.Snapshot()["cluster_straggler_detections_total"] != 1 {
		t.Fatal("fleet straggler counter not raised")
	}
	if jobReg.Snapshot()["fleet_casvm_iterations_total"] != 600 {
		t.Fatalf("federated sum %v, want 600", jobReg.Snapshot()["fleet_casvm_iterations_total"])
	}

	var buf bytes.Buffer
	if err := c.WriteMergedTrace("j", &buf); err != nil {
		t.Fatal(err)
	}
	x, err := trace.ReadTraceExtra(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if x.P != p || x.Timebase != trace.TimebaseWall {
		t.Fatalf("merged extra: p=%d timebase=%q", x.P, x.Timebase)
	}
	if len(x.Edges) != 2 {
		t.Fatalf("edges %d, want 2", len(x.Edges))
	}
	for _, e := range x.Edges {
		if e.RecvVirtSec < e.SendVirtSec {
			t.Fatalf("causality violated: %+v", e)
		}
	}
	// All of rank 0's chunked events survived the ship.
	nEvents := 0
	var whole map[string]any
	if err := json.Unmarshal(buf.Bytes(), &whole); err != nil {
		t.Fatal(err)
	}
	for _, raw := range whole["traceEvents"].([]any) {
		ev := raw.(map[string]any)
		if ev["ph"] == "X" && ev["tid"].(float64) == 0 {
			nEvents++
		}
	}
	if want := spanChunk + 300; nEvents != want {
		t.Fatalf("rank 0 events in trace: %d, want %d (chunking lost data?)", nEvents, want)
	}
	if a, err := critpath.Analyze(critpath.FromExtra(x)); err != nil || a.MakespanSec <= 0 {
		t.Fatalf("analysis: %+v, %v", a, err)
	}
	// Same-host probes: offsets must be tiny compared to the 1s scale.
	for r, off := range x.ClockOffsetsNs {
		if off < -int64(time.Second) || off > int64(time.Second) {
			t.Fatalf("rank %d same-host offset %v", r, time.Duration(off))
		}
	}
}

// TestReHelloReprobesNewWorker covers telemetry merging across gang
// generations: when a re-gang moves a rank to a different worker process,
// the rank re-hellos from a new lease, and the collector must probe the
// new process's clock instead of rebasing its spans with the dead
// worker's offset. A duplicate hello from the same worker must not
// re-probe.
func TestReHelloReprobesNewWorker(t *testing.T) {
	offsets := map[int]int64{1: 1000, 2: 777_000}
	var probes atomic.Int64
	c := New(Config{
		Metrics: trace.NewRegistry(),
		Probe: func(workerID int) (tcpmpi.ClockEstimate, error) {
			probes.Add(1)
			return tcpmpi.ClockEstimate{OffsetNs: offsets[workerID], RTTNs: 10, Samples: 3}, nil
		},
	})
	rankOffset := func() (int64, bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		rs := c.jobs["j"].ranks[0]
		return rs.offsetNs, rs.probed
	}

	// Generation 1: rank 0 lives on worker 1.
	frame(t, c, 1, TagHello, Hello{Job: "j", Rank: 0, P: 2})
	waitUntil(t, "worker 1 probed", func() bool { _, ok := rankOffset(); return ok })
	if off, _ := rankOffset(); off != 1000 {
		t.Fatalf("offset %d after first hello, want worker 1's 1000", off)
	}
	// A duplicate hello (same worker, e.g. the next rank's reporter on a
	// shared lease) leaves the settled probe alone.
	frame(t, c, 1, TagHello, Hello{Job: "j", Rank: 0, P: 2})
	if n := probes.Load(); n != 1 {
		t.Fatalf("%d probes after duplicate hello, want 1", n)
	}

	// Generation 2: the re-gang moved rank 0 to worker 2.
	frame(t, c, 2, TagHello, Hello{Job: "j", Rank: 0, P: 2})
	waitUntil(t, "worker 2 probed", func() bool { off, ok := rankOffset(); return ok && off == 777_000 })
	if n := probes.Load(); n != 2 {
		t.Fatalf("%d probes after re-gang hello, want 2", n)
	}
}
