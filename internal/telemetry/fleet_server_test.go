package telemetry_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"casvm/internal/telemetry"
)

// TestHealthz pins the liveness endpoint: the default document without a
// health func, the caller's document with one, and a 200 either way.
func TestHealthz(t *testing.T) {
	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var doc map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/healthz")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Fatalf("default health doc: %v", doc)
	}

	srv2, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		Health: func() any {
			return map[string]any{"status": "ok", "uptime_sec": 12.5, "workers": 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := json.Unmarshal([]byte(httpGet(t, srv2.URL()+"/healthz")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["workers"] != float64(3) || doc["uptime_sec"] != 12.5 {
		t.Fatalf("custom health doc: %v", doc)
	}
}

// TestCustomStream mounts a cursor-paged source at /fleet/events and reads
// its items back over SSE.
func TestCustomStream(t *testing.T) {
	type ev struct {
		Rank int `json:"rank"`
	}
	events := []ev{{Rank: 1}, {Rank: 2}, {Rank: 3}}
	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		PollInterval: 10 * time.Millisecond,
		Streams: map[string]telemetry.StreamSource{
			"fleet/events": func(cursor uint64) ([]any, uint64) {
				if cursor >= uint64(len(events)) {
					return nil, cursor
				}
				out := make([]any, 0, len(events))
				for _, e := range events[cursor:] {
					out = append(out, e)
				}
				return out, uint64(len(events))
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/fleet/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var got []int
	for sc.Scan() && len(got) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e ev
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Rank)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("stream items: %v", got)
	}
}

// TestJobTraceEndpoint pins /jobs/<id>/trace: the writer's bytes are
// served verbatim on success, a merge error becomes a clean 500, and a
// job without a trace func 404s.
func TestJobTraceEndpoint(t *testing.T) {
	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		Jobs: func() []telemetry.JobNamespace {
			return []telemetry.JobNamespace{
				{ID: "ok-job", Trace: func(w io.Writer) error {
					_, err := w.Write([]byte(`{"traceEvents":[]}`))
					return err
				}},
				{ID: "bad-job", Trace: func(io.Writer) error {
					return fmt.Errorf("no spans shipped")
				}},
				{ID: "plain-job"},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if body := httpGet(t, srv.URL()+"/jobs/ok-job/trace"); body != `{"traceEvents":[]}` {
		t.Fatalf("trace body %q", body)
	}
	resp, err := http.Get(srv.URL() + "/jobs/bad-job/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("merge error status %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL() + "/jobs/plain-job/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace-less job status %d, want 404", resp.StatusCode)
	}
}

// TestSSEClientDisconnectNoLeak pins the stream shutdown path: a client
// that walks away must end its StreamSSE goroutine — the poll loop selects
// on the request context, so a disconnect may not surface as a write
// error for many idle ticks otherwise.
func TestSSEClientDisconnectNoLeak(t *testing.T) {
	srv, err := telemetry.Start("127.0.0.1:0", telemetry.Config{
		// A long poll interval so only the context — not a failed write
		// on the next tick — can end the handler promptly.
		PollInterval: time.Hour,
		Streams: map[string]telemetry.StreamSource{
			"quiet": func(cursor uint64) ([]any, uint64) { return nil, cursor },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := runtime.NumGoroutine()
	const clients = 4
	for i := 0; i < clients; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", srv.URL()+"/quiet", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		// Client walks away mid-stream.
		cancel()
		resp.Body.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after SSE disconnects: %d before, %d after", before, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
