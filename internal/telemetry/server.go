// Package telemetry is the live observability server behind the `-serve`
// flag of casvm-train and casvm-bench. It exposes, over plain HTTP:
//
//	/metrics       — the trace.Registry in Prometheus text format
//	/healthz       — a liveness document from the caller's health func
//	/debug/pprof/* — the standard Go profiling endpoints
//	/report        — a live JSON snapshot from the caller's report func
//	/events        — an SSE stream of per-iteration solver telemetry
//	                 (smo.TelemetryRing samples as JSON `data:` frames)
//	/jobs          — per-job namespaces from a cluster coordinator, each
//	                 serving /jobs/<id>/{metrics,report,events,trace} with
//	                 the same formats as the top-level endpoints (trace is
//	                 the job's merged Chrome trace file, when available)
//
// plus any caller-mounted SSE streams (Config.Streams), e.g. the fleet
// straggler feed of casvm-cluster at /fleet/events.
//
// The server only reads from concurrency-safe sinks (registry atomics,
// the telemetry ring's mutex), so it can run while training is in flight
// without perturbing it.
package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"casvm/internal/smo"
	"casvm/internal/trace"
)

// Config wires the server to a run's observability sinks; any field may be
// nil (its endpoint then serves an empty document).
type Config struct {
	// Metrics backs /metrics.
	Metrics *trace.Registry
	// Report, when non-nil, is invoked per /report request and its result
	// rendered as indented JSON — typically a closure building a live
	// trace.Report (or any snapshot struct) from the run so far.
	Report func() any
	// Ring backs the /events SSE stream.
	Ring *smo.TelemetryRing
	// PollInterval is the SSE poll cadence (default 200ms).
	PollInterval time.Duration
	// Jobs, when non-nil, is polled per request for the per-job telemetry
	// namespaces of a cluster coordinator: /jobs lists them, and
	// /jobs/<id>/metrics, /jobs/<id>/report and /jobs/<id>/events serve
	// one job's private registry, result snapshot and convergence stream
	// with the same formats as the top-level endpoints.
	Jobs func() []JobNamespace
	// Health, when non-nil, is invoked per /healthz request and rendered
	// as JSON (nil serves {"status":"ok"}). The endpoint always answers
	// 200 — the document carries the detail (uptime, worker counts).
	Health func() any
	// Streams mounts additional cursor-paged SSE feeds, keyed by path
	// (e.g. "fleet/events" serves at /fleet/events). Each request starts
	// from cursor 0 and follows the source's returned cursors.
	Streams map[string]StreamSource
}

// StreamSource is a cursor-paged event feed for an SSE endpoint: it
// returns the items at cursors ≥ cursor plus the next cursor to poll
// from, never blocking.
type StreamSource func(cursor uint64) ([]any, uint64)

// JobNamespace is one job's slice of the telemetry surface. Any sink may
// be nil; its endpoint then serves an empty document.
type JobNamespace struct {
	ID      string // path segment under /jobs/
	State   string // lifecycle state shown in the /jobs listing
	Metrics *trace.Registry
	Report  func() any
	Ring    *smo.TelemetryRing
	// Trace, when non-nil, writes the job's merged Chrome trace file;
	// served at /jobs/<id>/trace (404 when nil — e.g. no fleet telemetry
	// was shipped for the job).
	Trace func(w io.Writer) error
}

// Server is a running telemetry endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Start listens on addr (e.g. "localhost:9100"; ":0" picks a free port)
// and serves the telemetry endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = cfg.Metrics.WriteProm(w) // nil-safe: writes nothing
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any
		if cfg.Report != nil {
			v = cfg.Report()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, cfg.Ring, cfg.PollInterval)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, _ *http.Request) {
		type entry struct {
			ID    string `json:"id"`
			State string `json:"state,omitempty"`
		}
		list := []entry{}
		if cfg.Jobs != nil {
			for _, j := range cfg.Jobs() {
				list = append(list, entry{ID: j.ID, State: j.State})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		serveJob(w, r, cfg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		v := any(map[string]string{"status": "ok"})
		if cfg.Health != nil {
			v = cfg.Health()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	for name, src := range cfg.Streams {
		src := src
		mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
			var cursor uint64
			StreamSSE(w, r, cfg.PollInterval, func() []any {
				var items []any
				items, cursor = src(cursor)
				return items
			})
		})
	}
	// net/http/pprof self-registers only on DefaultServeMux; wire the
	// handlers explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// serveJob routes /jobs/<id>/{metrics,report,events} onto one job's
// private namespace.
func serveJob(w http.ResponseWriter, r *http.Request, cfg Config) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, endpoint, ok := strings.Cut(rest, "/")
	if !ok || id == "" {
		http.NotFound(w, r)
		return
	}
	var job JobNamespace
	found := false
	if cfg.Jobs != nil {
		for _, j := range cfg.Jobs() {
			if j.ID == id {
				job, found = j, true
				break
			}
		}
	}
	if !found {
		http.NotFound(w, r)
		return
	}
	switch endpoint {
	case "metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = job.Metrics.WriteProm(w) // nil-safe: writes nothing
	case "report":
		w.Header().Set("Content-Type", "application/json")
		var v any
		if job.Report != nil {
			v = job.Report()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	case "events":
		serveSSE(w, r, job.Ring, cfg.PollInterval)
	case "trace":
		if job.Trace == nil {
			http.NotFound(w, r)
			return
		}
		// Buffer so a mid-trace merge error becomes a clean 500 instead
		// of a truncated download.
		var buf bytes.Buffer
		if err := job.Trace(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.trace", id))
		_, _ = buf.WriteTo(w)
	default:
		http.NotFound(w, r)
	}
}

// serveSSE streams telemetry-ring samples as server-sent events: one
// `data:` line per IterSample, JSON-encoded, polled at the configured
// cadence until the client disconnects or the server closes.
func serveSSE(w http.ResponseWriter, r *http.Request, ring *smo.TelemetryRing, interval time.Duration) {
	var cursor uint64
	StreamSSE(w, r, interval, func() []any {
		var samples []smo.IterSample
		samples, cursor = ring.Since(cursor) // nil-safe: always empty
		out := make([]any, len(samples))
		for i, s := range samples {
			out[i] = s
		}
		return out
	})
}

// StreamSSE writes a server-sent-event response: next is polled at the
// given cadence and every returned item is JSON-encoded as one `data:`
// frame, until the client disconnects or a write fails. Other servers
// (casvm-serve's live QPS stream) reuse it so every SSE surface frames
// events identically.
func StreamSSE(w http.ResponseWriter, r *http.Request, interval time.Duration, next func() []any) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		events := next()
		for _, e := range events {
			b, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
		}
		if len(events) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and waits for the serve loop to exit. In-flight
// SSE streams end when their clients notice the closed connection.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
