package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"casvm/internal/core"
	"casvm/internal/tcpmpi"
)

// TestClusterSoak churns a live coordinator for a bounded interval:
// a stream of shrink-policy jobs shares a pool whose workers are randomly
// revoked and replaced. Every job must terminate (completed or cleanly
// failed — no hangs), completed jobs must stay accurate, and the
// membership ledger must balance. Gated behind CASVM_SOAK_CLUSTER=1; run
// via `make soak-cluster`.
func TestClusterSoak(t *testing.T) {
	if os.Getenv("CASVM_SOAK_CLUSTER") != "1" {
		t.Skip("set CASVM_SOAK_CLUSTER=1 (or `make soak-cluster`) to run the cluster churn soak")
	}
	rng := rand.New(rand.NewSource(11))
	c := newTestCoordinator(t, 400*time.Millisecond)

	const poolSize = 6
	leases := map[int]*tcpmpi.Lease{}
	for i := 0; i < poolSize; i++ {
		l, err := tcpmpi.Register(c.Addr(), tcpmpi.RegisterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		leases[l.ID()] = l
	}
	defer func() {
		for _, l := range leases {
			l.Close()
		}
	}()
	waitFor(t, "pool registered", func() bool { return len(c.Workers()) == poolSize })

	methods := []core.Method{core.MethodDisSMO, core.MethodRACA, core.MethodCascade}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		spec := JobSpec{
			ID:      fmt.Sprintf("soak%d", i),
			Mixture: testMixture(240),
			Method:  string(methods[i%len(methods)]),
			P:       2 + i%3,
			Seed:    int64(100 + i),
			Policy:  "shrink", CheckpointEvery: 8,
		}
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		j.inj.setThrottle(time.Millisecond)
		jobs = append(jobs, j)
	}

	// Churn loop: revoke a random live worker, wait a beat, replace it.
	// Capacity always recovers, so shrink-policy jobs can grow back.
	stopChurn := make(chan struct{})
	churnDone := make(chan int)
	go func() {
		churns := 0
		defer func() { churnDone <- churns }()
		for {
			select {
			case <-stopChurn:
				return
			case <-time.After(150 * time.Millisecond):
			}
			ws := c.Workers()
			if len(ws) == 0 {
				continue
			}
			victim := ws[rng.Intn(len(ws))].ID
			if err := c.reg.Revoke(victim); err != nil {
				continue
			}
			if l := leases[victim]; l != nil {
				l.Close()
				delete(leases, victim)
			}
			churns++
			time.Sleep(100 * time.Millisecond)
			l, err := tcpmpi.Register(c.Addr(), tcpmpi.RegisterOptions{})
			if err == nil {
				leases[l.ID()] = l
			}
		}
	}()

	// Bounded soak: jobs run throttled under churn for up to 20s, then
	// full speed to drain.
	time.Sleep(20 * time.Second)
	close(stopChurn)
	churns := <-churnDone
	for _, j := range jobs {
		j.inj.setThrottle(0)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(180 * time.Second):
			t.Fatalf("job %s hung (state %v)", j.ID(), j.State())
		}
	}

	completed := 0
	for _, j := range jobs {
		res := j.Result()
		if res.Err != "" {
			t.Logf("job %s failed under churn: %s", j.ID(), res.Err)
			continue
		}
		completed++
		if res.Accuracy < 0.85 {
			t.Errorf("job %s accuracy %.3f under churn", j.ID(), res.Accuracy)
		}
		t.Logf("job %s: iters=%d recoveries=%d grows=%d finalP=%d",
			j.ID(), res.Iters, res.Recoveries, res.Grows, res.FinalP)
	}
	if completed < len(jobs)/2 {
		t.Fatalf("only %d/%d jobs completed under churn", completed, len(jobs))
	}
	snap := c.Metrics().Snapshot()
	t.Logf("soak: churns=%d joins=%v expiries=%v scaleups=%v completed=%d/%d",
		churns, snap["cluster_worker_joins_total"], snap["cluster_lease_expiries_total"],
		snap["cluster_job_scaleups_total"], completed, len(jobs))
	if snap["cluster_lease_expiries_total"] < 1 {
		t.Error("soak produced no lease expiries; churn loop never bit")
	}
	if snap["cluster_workers_busy"] != 0 {
		t.Errorf("cluster_workers_busy=%v after drain", snap["cluster_workers_busy"])
	}
}

// TestRemoteSoak is the remote-execution churn scenario: a stream of
// Remote jobs trains on a pool of real worker processes while a churn loop
// repeatedly kill -9s a random worker and forks a replacement. Every job
// must terminate, and every job that completes must land on the exact
// fault-free ModelHash of its local reference — re-ganging across process
// deaths may cost generations, never bits. Gated behind
// CASVM_SOAK_CLUSTER=1; run via `make soak-cluster`.
func TestRemoteSoak(t *testing.T) {
	if os.Getenv("CASVM_SOAK_CLUSTER") != "1" {
		t.Skip("set CASVM_SOAK_CLUSTER=1 (or `make soak-cluster`) to run the remote-execution churn soak")
	}
	rng := rand.New(rand.NewSource(13))
	c := newTestCoordinator(t, 500*time.Millisecond)

	// The churn goroutine forks and kills workers concurrently with test
	// shutdown, so the process ledger has its own lock and one terminal
	// cleanup that reaps whatever is still alive.
	var mu sync.Mutex
	var procs []*exec.Cmd
	spawn := func() error {
		cmd := exec.Command(os.Args[0], "-test.run", "TestRemoteExecutorHelper$")
		cmd.Env = append(os.Environ(),
			"CASVM_REMOTE_WORKER="+c.Addr(),
			"CASVM_EXEC_DELAY="+(2*time.Millisecond).String(),
		)
		if err := cmd.Start(); err != nil {
			return err
		}
		mu.Lock()
		procs = append(procs, cmd)
		mu.Unlock()
		return nil
	}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	})

	const poolSize = 3
	for i := 0; i < poolSize; i++ {
		if err := spawn(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "worker pool registered", func() bool { return len(c.Workers()) == poolSize })

	var jobs []*Job
	var wants []string
	for i := 0; i < 4; i++ {
		spec := remoteSpec(fmt.Sprintf("rsoak%d", i), 2, 240, "shrink")
		spec.Seed = int64(50 + i)
		wants = append(wants, referenceHash(t, spec))
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Churn loop: kill -9 a random live worker process, fork a
	// replacement. The pool's capacity recovers, so queued remote jobs
	// always eventually find a gang.
	stopChurn := make(chan struct{})
	churnDone := make(chan int)
	go func() {
		churns := 0
		defer func() { churnDone <- churns }()
		for {
			select {
			case <-stopChurn:
				return
			case <-time.After(400 * time.Millisecond):
			}
			mu.Lock()
			var live []*exec.Cmd
			for _, cmd := range procs {
				if cmd.ProcessState == nil {
					live = append(live, cmd)
				}
			}
			mu.Unlock()
			if len(live) == 0 {
				continue
			}
			victim := live[rng.Intn(len(live))]
			if victim.Process.Kill() != nil {
				continue
			}
			go victim.Wait() // reap; cmd.Wait is not concurrent-safe with the cleanup, but the cleanup only runs after stopChurn
			churns++
			if err := spawn(); err != nil {
				t.Logf("remote soak: replacement worker: %v", err)
			}
		}
	}()

	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(180 * time.Second):
			close(stopChurn)
			<-churnDone
			t.Fatalf("remote job %s hung under churn (state %v, progress %+v)", j.ID(), j.State(), j.Remote())
		}
	}
	close(stopChurn)
	churns := <-churnDone

	completed, recoveries, generations := 0, 0, 0
	for i, j := range jobs {
		res := j.Result()
		if res.Err != "" {
			t.Logf("remote job %s failed under churn: %s", j.ID(), res.Err)
			continue
		}
		completed++
		recoveries += res.Recoveries
		generations += res.Generations
		if res.ModelHash != wants[i] {
			t.Errorf("remote job %s hash %s != fault-free %s", j.ID(), res.ModelHash, wants[i])
		}
		t.Logf("remote job %s: generations=%d recoveries=%d finalP=%d virt=%.4fs",
			j.ID(), res.Generations, res.Recoveries, res.FinalP, res.TotalSec)
	}
	if completed < len(jobs)/2 {
		t.Fatalf("only %d/%d remote jobs completed under churn", completed, len(jobs))
	}
	if churns >= 1 && recoveries == 0 && generations == completed {
		t.Logf("remote soak: %d kills never hit a gang member (small pool luck)", churns)
	}
	snap := c.Metrics().Snapshot()
	t.Logf("remote soak: churns=%d completed=%d/%d generations=%d recoveries=%d departures=%v",
		churns, completed, len(jobs), generations, recoveries,
		snap["cluster_lease_expiries_total"]+snap["cluster_worker_leaves_total"])
	if churns < 1 {
		t.Error("remote soak produced no kills; churn loop never bit")
	}
}
