// Package cluster is the elastic runtime behind casvm-cluster: a
// coordinator that owns a lease-based membership table (tcpmpi.Registrar),
// gang-schedules training jobs over the registered worker pool, and feeds
// membership churn into the checkpoint/restart recovery machinery so a
// running job shrinks when a lease expires and grows back when a worker
// joins mid-run.
//
// Workers execute. A worker dials in, holds a heartbeat-renewed lease, and
// — for jobs submitted with Remote set — runs its assigned shard ranks'
// solves inside its own process (cluster.RunExecutor), meshed to its gang
// over tcpmpi and streaming epoch-boundary checkpoints back to the
// coordinator as lease control frames. The coordinator holds the global
// state a node-level fault domain needs: the latest checkpoint per rank
// and every finished shard model, so a lease expiry — including a real
// `kill -9` on the worker process — re-gangs the survivors (plus any
// spare) from the last streamed checkpoints and still lands on the
// fault-free ModelHash, with the lost work α–β-priced into TotalSec. See
// remote.go for the coordinator half and executor.go for the worker half.
//
// Jobs without Remote keep the original capacity-token model: workers gate
// how many ranks the coordinator will model concurrently while the
// training world executes in-process, where every membership event maps
// onto fault machinery with exactness guarantees — a lease expiry injects
// the same CrashError a scheduled "leave" would, and a registration
// mid-run surfaces as a JoinCheck scale-up at the next checkpoint epoch
// boundary. Shrink, grow and respawn all converge to the fault-free
// ModelHash for Dis-SMO.
//
// The package deliberately does not import the HTTP telemetry server: the
// coordinator exposes per-job metrics registries, telemetry rings, and the
// fleet telemetry collector (trace spans, federated metrics, and straggler
// events streamed in from workers over their leases — see
// internal/telemetry/fleet), and the casvm-cluster command wires them into
// an HTTP server.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"casvm/internal/core"
	"casvm/internal/smo"
	"casvm/internal/tcpmpi"
	"casvm/internal/telemetry/fleet"
	"casvm/internal/trace"
)

// Config tunes a coordinator.
type Config struct {
	// LeaseTTL is how long a silent worker stays a member (0 = the
	// tcpmpi default). Heartbeats renew it at TTL/3.
	LeaseTTL time.Duration

	// Metrics receives the cluster_* membership and job counters
	// (nil = a private registry, available via Coordinator.Metrics).
	Metrics *trace.Registry

	// Straggler tunes the fleet telemetry plane's online straggler
	// detector (zero value = defaults).
	Straggler fleet.StragglerConfig

	// OnJobDone, when non-nil, is invoked (on the job's goroutine, after
	// its result is published and its workers released) for every job
	// that finishes — the hook casvm-cluster uses to persist merged
	// fleet traces.
	OnJobDone func(*Job)

	// Logf, when non-nil, receives one line per membership and job
	// lifecycle event.
	Logf func(format string, args ...any)
}

// Coordinator runs the cluster: it accepts worker and client leases,
// schedules submitted jobs onto gangs of free workers, and converts lease
// churn into recovery and scale-up actions on the jobs it supervises.
type Coordinator struct {
	reg       *tcpmpi.Registrar
	met       *trace.Registry
	fleet     *fleet.Collector
	onJobDone func(*Job)
	logf      func(string, ...any)

	// membership and job counters (satellite: lease-expiry/join/leave
	// visibility in the Prometheus registry)
	cJoins, cLeaves, cExpiries       *trace.Counter
	cSubmitted, cCompleted, cFailed  *trace.Counter
	cScaleups                        *trace.Counter
	gWorkers, gBusy, gRunning, gQueued *trace.Gauge

	mu      sync.Mutex
	workers map[int]tcpmpi.WorkerInfo // registered non-client workers
	free    []int                     // unassigned worker ids, registration order
	owner   map[int]*Job              // worker id -> job holding it
	jobs    []*Job                    // submission order
	byID    map[string]*Job
	byKey   map[string]*Job // client idempotency key -> accepted job
	queue   []*Job // jobs waiting for a gang, FIFO
	nextJob int
	closed  bool

	wg sync.WaitGroup // running job goroutines
}

// New starts a coordinator listening for worker and client registrations
// on addr ("host:0" picks a free port; see Addr).
func New(addr string, cfg Config) (*Coordinator, error) {
	met := cfg.Metrics
	if met == nil {
		met = trace.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		met:     met,
		logf:    logf,
		workers: map[int]tcpmpi.WorkerInfo{},
		owner:   map[int]*Job{},
		byID:    map[string]*Job{},
		byKey:   map[string]*Job{},

		cJoins:     met.Counter("cluster_worker_joins_total", "workers that registered and received a rank lease"),
		cLeaves:    met.Counter("cluster_worker_leaves_total", "workers that closed their lease cleanly"),
		cExpiries:  met.Counter("cluster_lease_expiries_total", "worker leases that expired or were revoked"),
		cSubmitted: met.Counter("cluster_jobs_submitted_total", "jobs accepted by the coordinator"),
		cCompleted: met.Counter("cluster_jobs_completed_total", "jobs that finished training successfully"),
		cFailed:    met.Counter("cluster_jobs_failed_total", "jobs that ended in an error"),
		cScaleups:  met.Counter("cluster_job_scaleups_total", "workers attached to a running job to grow its world"),
		gWorkers:   met.Gauge("cluster_workers", "currently registered workers"),
		gBusy:      met.Gauge("cluster_workers_busy", "workers assigned to running jobs"),
		gRunning:   met.Gauge("cluster_jobs_running", "jobs currently training"),
		gQueued:    met.Gauge("cluster_jobs_queued", "jobs waiting for a gang of free workers"),

		onJobDone: cfg.OnJobDone,
	}
	// The fleet collector must exist before the registrar: a worker's
	// hello can arrive the instant the listener is up.
	c.fleet = fleet.New(fleet.Config{
		Metrics:   met,
		Straggler: cfg.Straggler,
		Logf:      logf,
		JobRegistry: func(job string) *trace.Registry {
			c.mu.Lock()
			defer c.mu.Unlock()
			if j := c.byID[job]; j != nil {
				return j.metrics
			}
			return nil
		},
	})
	reg, err := tcpmpi.NewRegistrar(addr, tcpmpi.RegistrarConfig{
		LeaseTTL: cfg.LeaseTTL,
		OnJoin:   c.onJoin,
		OnExpire: func(w tcpmpi.WorkerInfo) { c.onGone(w, true) },
		OnLeave:  func(w tcpmpi.WorkerInfo) { c.onGone(w, false) },
		OnFrame:  c.onFrame,
	})
	if err != nil {
		return nil, err
	}
	c.reg = reg
	c.fleet.AttachRegistrar(reg)
	return c, nil
}

// Addr is the registration address workers and clients dial.
func (c *Coordinator) Addr() string { return c.reg.Addr() }

// Metrics is the registry holding the cluster_* counters.
func (c *Coordinator) Metrics() *trace.Registry { return c.met }

// Fleet is the telemetry collector behind the coordinator's leases:
// workers stream trace spans, metric snapshots and epoch durations to it,
// and it serves merged traces, federated aggregates and straggler events.
func (c *Coordinator) Fleet() *fleet.Collector { return c.fleet }

// Close stops accepting registrations, fails every queued job, and waits
// for running jobs to finish. Worker leases end when the registrar closes.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	queued := c.queue
	c.queue = nil
	c.gQueued.Set(0)
	for _, j := range queued {
		j.state = JobFailed
		j.result = &JobResult{ID: j.id, Method: j.spec.Method, P: j.spec.P,
			Err: "coordinator closed before a gang was available"}
		c.cFailed.Inc()
		close(j.done)
	}
	// Wake running remote supervisors so their goroutines observe the
	// shutdown instead of waiting on frames that will never arrive.
	for _, j := range c.jobs {
		if j.remote != nil && j.state == JobRunning {
			j.remote.closeRun()
		}
	}
	c.mu.Unlock()
	err := c.reg.Close()
	c.wg.Wait()
	return err
}

// Workers lists the currently registered workers in id order.
func (c *Coordinator) Workers() []tcpmpi.WorkerInfo { return c.reg.Workers() }

// Revoke force-expires a worker's lease — the admin path for draining a
// machine. Any job holding the worker sees the same lease-expired crash a
// real expiry injects.
func (c *Coordinator) Revoke(id int) error { return c.reg.Revoke(id) }

// Jobs returns every job the coordinator has accepted, in submission
// order.
func (c *Coordinator) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Job(nil), c.jobs...)
}

// Job looks a job up by id.
func (c *Coordinator) Job(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.byID[id]
	return j, ok
}

// Submit validates and enqueues a training job. The job starts as soon as
// a gang of spec.P workers is free; Job.Done signals completion.
//
// Submission is idempotent under spec.SubmitKey: a key the coordinator
// has already accepted returns the existing job — queued, running, or
// finished — instead of enqueueing a duplicate, so a client that lost its
// connection after the submit frame landed can safely resubmit and
// reattach to the in-flight work.
func (c *Coordinator) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: coordinator is closed")
	}
	if spec.SubmitKey != "" {
		if j := c.byKey[spec.SubmitKey]; j != nil {
			c.logf("cluster: job %s resubmitted (key %q); attaching to the accepted job", j.id, spec.SubmitKey)
			return j, nil
		}
	}
	c.nextJob++
	id := fmt.Sprintf("job-%d", c.nextJob)
	if spec.ID != "" {
		id = fmt.Sprintf("%s-%d", spec.ID, c.nextJob)
	}
	j := &Job{
		c:       c,
		id:      id,
		spec:    spec,
		inj:     newElasticInjector(spec.P, spec.policy() == core.RecoverShrink),
		metrics: trace.NewRegistry(),
		ring:    smo.NewTelemetryRing(0),
		done:    make(chan struct{}),
		state:   JobQueued,
	}
	if spec.Remote {
		j.remote = newRemoteRun(j)
	}
	c.jobs = append(c.jobs, j)
	c.byID[id] = j
	if spec.SubmitKey != "" {
		c.byKey[spec.SubmitKey] = j
	}
	c.queue = append(c.queue, j)
	c.cSubmitted.Inc()
	c.gQueued.Set(float64(len(c.queue)))
	c.logf("cluster: job %s queued (%s, p=%d)", id, spec.Method, spec.P)
	c.schedule()
	return j, nil
}

// onJoin admits a freshly leased worker into the pool (clients are lease
// holders too, but never capacity).
func (c *Coordinator) onJoin(w tcpmpi.WorkerInfo) {
	if w.Client {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[w.ID] = w
	c.free = append(c.free, w.ID)
	c.cJoins.Inc()
	c.gWorkers.Set(float64(len(c.workers)))
	c.logf("cluster: worker %d joined from %s (%d registered)", w.ID, w.Addr, len(c.workers))
	c.schedule()
}

// onGone removes a worker whose lease ended. If a running job held it,
// the death is injected into that job's world: the recovery supervisor
// sees a lease-expired crash and shrinks or respawns per the job's policy.
func (c *Coordinator) onGone(w tcpmpi.WorkerInfo, expired bool) {
	if w.Client {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if expired {
		c.cExpiries.Inc()
	} else {
		c.cLeaves.Inc()
	}
	delete(c.workers, w.ID)
	c.gWorkers.Set(float64(len(c.workers)))
	if j := c.owner[w.ID]; j != nil {
		delete(c.owner, w.ID)
		j.gang = removeID(j.gang, w.ID)
		c.gBusy.Set(float64(len(c.owner)))
		if j.state == JobRunning {
			if j.remote != nil {
				j.remote.workerLost(w.ID)
				c.logf("cluster: worker %d lost (expired=%v); re-ganging remote job %s", w.ID, expired, j.id)
			} else {
				j.inj.kill()
				c.logf("cluster: worker %d lost (expired=%v); injecting rank death into job %s", w.ID, expired, j.id)
			}
		}
		return
	}
	c.free = removeID(c.free, w.ID)
	c.logf("cluster: worker %d gone (expired=%v)", w.ID, expired)
}

// schedule runs the gang scheduler with c.mu held. Spare workers first
// refill running shrink-policy jobs below their requested width — the
// scale-up path — then admit queued jobs FIFO once a full gang is free.
func (c *Coordinator) schedule() {
	if c.closed {
		return
	}
	for _, j := range c.jobs {
		if j.state != JobRunning || len(j.gang) >= j.spec.P {
			continue
		}
		pol := j.spec.policy()
		if pol == core.RecoverOff {
			continue
		}
		attached := 0
		for len(j.gang) < j.spec.P && len(c.free) > 0 {
			id := c.free[0]
			c.free = c.free[1:]
			j.gang = append(j.gang, id)
			c.owner[id] = j
			attached++
			switch {
			case j.remote != nil:
				// The remote supervisor decides whether the new worker
				// triggers a wider re-gang or backfills the next
				// generation; it is woken below.
				c.logf("cluster: worker %d attached to remote job %s", id, j.id)
			case pol == core.RecoverShrink:
				// The world grows at the next epoch boundary.
				j.inj.addJoin(1)
				c.cScaleups.Inc()
				c.logf("cluster: worker %d attached to job %s (scale-up to %d)", id, j.id, len(j.gang))
			default:
				// Respawn keeps the world width fixed; the worker
				// backfills lost capacity.
				c.logf("cluster: worker %d backfills job %s", id, j.id)
			}
		}
		if attached > 0 && j.remote != nil {
			j.remote.kick()
		}
	}
	c.gBusy.Set(float64(len(c.owner)))
	for len(c.queue) > 0 && len(c.free) >= c.queue[0].spec.P {
		j := c.queue[0]
		c.queue = c.queue[1:]
		j.gang = append(j.gang, c.free[:j.spec.P]...)
		c.free = c.free[j.spec.P:]
		for _, id := range j.gang {
			c.owner[id] = j
		}
		j.state = JobRunning
		c.gBusy.Set(float64(len(c.owner)))
		c.gRunning.Add(1)
		c.logf("cluster: job %s starts on workers %v", j.id, j.gang)
		c.wg.Add(1)
		go c.runJob(j)
	}
	c.gQueued.Set(float64(len(c.queue)))
}

// runJob executes one job — remotely on its gang's worker processes when
// the spec asks for it, in-process otherwise — and records the outcome.
func (c *Coordinator) runJob(j *Job) {
	defer c.wg.Done()
	if j.remote != nil {
		c.runRemoteJob(j)
		return
	}
	res := &JobResult{ID: j.id, Method: j.spec.Method, Dataset: datasetName(j.spec), P: j.spec.P}
	pr, ds, err := trainParams(j.spec)
	if err == nil {
		pr.Faults = j.inj
		pr.Metrics = j.metrics
		pr.Telemetry = j.ring
		start := time.Now()
		var out *core.Output
		out, err = core.Train(ds.X, ds.Y, pr)
		res.WallSec = time.Since(start).Seconds()
		if err == nil {
			st := out.Stats
			res.FinalP = st.P
			res.Iters = st.Iters
			res.SVs = st.SVs
			res.TotalSec = st.TotalSec
			res.Recoveries = st.Recoveries
			res.LostRanks = st.LostRanks
			res.Grows = st.Grows
			res.JoinedRanks = st.JoinedRanks
			res.Degraded = st.Degraded
			if ds.TestX != nil {
				res.Accuracy = out.Set.Accuracy(ds.TestX, ds.TestY)
			}
			res.ModelHash, err = core.ModelHash(out.Set)
		}
	}
	if err != nil {
		res.Err = err.Error()
	}
	c.finishJob(j, res)
}

// finishJob releases the job's surviving workers back to the pool and
// publishes the result.
func (c *Coordinator) finishJob(j *Job, res *JobResult) {
	c.mu.Lock()
	for _, id := range j.gang {
		delete(c.owner, id)
		c.free = append(c.free, id)
	}
	j.gang = nil
	c.gBusy.Set(float64(len(c.owner)))
	c.gRunning.Add(-1)
	j.result = res
	if res.Err == "" {
		j.state = JobDone
		c.cCompleted.Inc()
		c.logf("cluster: job %s done (iters=%d recoveries=%d grows=%d hash=%.12s)",
			j.id, res.Iters, res.Recoveries, res.Grows, res.ModelHash)
	} else {
		j.state = JobFailed
		c.cFailed.Inc()
		c.logf("cluster: job %s failed: %s", j.id, res.Err)
	}
	close(j.done)
	c.schedule()
	c.mu.Unlock()
	if c.onJobDone != nil {
		c.onJobDone(j)
	}
}

func datasetName(s JobSpec) string {
	if s.Mixture != nil {
		if s.Mixture.Name != "" {
			return s.Mixture.Name
		}
		return "mixture"
	}
	return s.Dataset
}

func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
