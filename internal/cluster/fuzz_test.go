package cluster

import (
	"testing"

	"casvm/internal/core"
	"casvm/internal/smo"
)

// Frame-kind selectors for the fuzz corpus: one per exec decoder.
const (
	fzPrepare = iota
	fzMeshAddr
	fzStart
	fzCkpt
	fzRankDone
	fzAbort
	fzFail
	fzKinds
)

// fuzzCheckpointBlob is a small valid solver checkpoint for seeds that
// must clear the blob validation layer.
func fuzzCheckpointBlob(iters int) []byte {
	ck := &smo.Checkpoint{
		Iters: iters,
		Alpha: []float64{0, 0.5, 1},
		F:     []float64{-1, 0.25, 1},
	}
	return ck.Encode()
}

// fuzzStartFrame is a fully valid execStart seed: the richest frame, with
// a nested spec, peer table, rank assignment and resume blob.
func fuzzStartFrame() []byte {
	return marshalExec(execStart{
		Job: "fz", Gen: 1,
		Spec: JobSpec{
			ID: "fz", Mixture: testMixture(64),
			Method: string(core.MethodRACA), P: 2, Seed: 1, Policy: "shrink",
		},
		MeshRank:        0,
		Peers:           []string{"127.0.0.1:1", "127.0.0.1:2"},
		Ranks:           []int{0, 1},
		Resume:          map[int][]byte{1: fuzzCheckpointBlob(8)},
		CheckpointEvery: 4,
	})
}

// FuzzExecFrames drives every remote-execution frame decoder with hostile
// payloads. These decoders sit on the trust boundary — each frame arrives
// from an unauthenticated lease holder — so none may panic, and whatever
// they accept must re-validate cleanly after a marshal round-trip (no
// "valid once, invalid forever" frames that a coordinator would relay or
// log and a later consumer would choke on). Run with `go test -fuzz
// FuzzExecFrames ./internal/cluster` for extended exploration; the seed
// corpus runs in normal test mode and in `make fuzz-smoke`.
func FuzzExecFrames(f *testing.F) {
	type seed struct {
		kind byte
		in   []byte
	}
	seeds := []seed{
		// Valid frames of every kind: the fuzzer mutates from working
		// structure instead of rediscovering JSON.
		{fzPrepare, marshalExec(execPrepare{Job: "fz", Gen: 1})},
		{fzMeshAddr, marshalExec(execMeshAddr{Job: "fz", Gen: 1, Addr: "127.0.0.1:9"})},
		{fzStart, fuzzStartFrame()},
		{fzCkpt, marshalExec(execCkpt{Job: "fz", Gen: 2, Rank: 1, Iters: 8, VirtSec: 0.5, Blob: fuzzCheckpointBlob(8)})},
		{fzRankDone, marshalExec(execRankDone{Job: "fz", Gen: 1, Rank: 0, Iters: 9, SVs: 3, VirtSec: 1, Model: []byte("m"), Center: []float64{0.5, -1}})},
		{fzAbort, marshalExec(execAbort{Job: "fz", Gen: 3, Reason: "re-gang"})},
		{fzFail, marshalExec(execFail{Job: "fz", Gen: 1, Rank: 0, Fatal: true, Err: "boom"})},
		// Hostile shapes the validators must reject without panicking.
		{fzPrepare, nil},
		{fzPrepare, []byte(`{"job":"","gen":0}`)},
		{fzMeshAddr, []byte(`{"job":"fz","gen":1,"addr":""}`)},
		{fzStart, []byte(`{"job":"fz","gen":1,"spec":{"p":-1}}`)},
		{fzStart, []byte(`{"job":"fz","gen":1,"spec":{"p":2,"dataset":"x"},"peers":["a"],"mesh_rank":7,"ranks":[0],"ckpt_every":4}`)},
		{fzStart, []byte(`{"job":"fz","gen":1,"spec":{"p":2,"dataset":"x"},"peers":["a","b"],"ranks":[0,0],"ckpt_every":4}`)},
		{fzCkpt, []byte(`{"job":"fz","gen":1,"rank":0,"iters":5,"blob":"AAAA"}`)},
		{fzCkpt, []byte(`{"job":"fz","gen":1,"rank":-3,"iters":0}`)},
		{fzRankDone, []byte(`{"job":"fz","gen":1,"rank":0,"iters":1,"model":"","center":[]}`)},
		{fzFail, []byte(`{"job":"fz","gen":1,"error":""}`)},
		{fzAbort, []byte(`{not json`)},
	}
	for _, s := range seeds {
		f.Add(s.kind, s.in)
	}
	f.Fuzz(func(t *testing.T, kind byte, in []byte) {
		switch kind % fzKinds {
		case fzPrepare:
			if m, err := decodeExecPrepare(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecPrepare(b); return err }, marshalExec(m))
			}
		case fzMeshAddr:
			if m, err := decodeExecMeshAddr(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecMeshAddr(b); return err }, marshalExec(m))
			}
		case fzStart:
			if m, err := decodeExecStart(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecStart(b); return err }, marshalExec(m))
			}
		case fzCkpt:
			if m, err := decodeExecCkpt(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecCkpt(b); return err }, marshalExec(m))
			}
		case fzRankDone:
			if m, err := decodeExecRankDone(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecRankDone(b); return err }, marshalExec(m))
			}
		case fzAbort:
			if m, err := decodeExecAbort(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecAbort(b); return err }, marshalExec(m))
			}
		case fzFail:
			if m, err := decodeExecFail(in); err == nil {
				mustReDecode(t, func(b []byte) error { _, err := decodeExecFail(b); return err }, marshalExec(m))
			}
		}
	})
}

func mustReDecode(t *testing.T, decode func([]byte) error, b []byte) {
	t.Helper()
	if err := decode(b); err != nil {
		t.Fatalf("accepted frame fails after marshal round-trip: %v", err)
	}
}

// TestExecFrameRoundTrips pins the coordinator↔executor wire contract:
// every frame the sender-side marshals must decode back field-identical.
func TestExecFrameRoundTrips(t *testing.T) {
	prep := execPrepare{Job: "rt", Gen: 2}
	if got, err := decodeExecPrepare(marshalExec(prep)); err != nil || got != prep {
		t.Fatalf("prepare round-trip: %+v, %v", got, err)
	}
	addr := execMeshAddr{Job: "rt", Gen: 2, Addr: "127.0.0.1:7001"}
	if got, err := decodeExecMeshAddr(marshalExec(addr)); err != nil || got != addr {
		t.Fatalf("mesh-addr round-trip: %+v, %v", got, err)
	}

	got, err := decodeExecStart(fuzzStartFrame())
	if err != nil {
		t.Fatalf("start round-trip: %v", err)
	}
	if got.Spec.P != 2 || len(got.Peers) != 2 || len(got.Ranks) != 2 || got.CheckpointEvery != 4 {
		t.Fatalf("start round-trip dropped fields: %+v", got)
	}
	ck, err := smo.DecodeCheckpoint(got.Resume[1])
	if err != nil || ck.Iters != 8 {
		t.Fatalf("start resume blob did not survive: %v", err)
	}

	ckpt := execCkpt{Job: "rt", Gen: 1, Rank: 0, Iters: 8, VirtSec: 0.25, Blob: fuzzCheckpointBlob(8)}
	gotCk, err := decodeExecCkpt(marshalExec(ckpt))
	if err != nil || gotCk.Iters != 8 || gotCk.VirtSec != 0.25 {
		t.Fatalf("checkpoint round-trip: %+v, %v", gotCk, err)
	}
	// The iters field is cross-checked against the blob, not trusted.
	ckpt.Iters = 9
	if _, err := decodeExecCkpt(marshalExec(ckpt)); err == nil {
		t.Fatal("checkpoint frame with iters disagreeing with its blob was accepted")
	}

	fail := execFail{Job: "rt", Gen: 1, Rank: 1, Fatal: true, Err: "no such dataset"}
	if got, err := decodeExecFail(marshalExec(fail)); err != nil || got != fail {
		t.Fatalf("fail round-trip: %+v, %v", got, err)
	}
}

// TestRankDoneModelBound: the rank-done decoder caps the model payload —
// an unauthenticated lease must not be able to drive coordinator
// allocations up to the transport's 1GB frame ceiling.
func TestRankDoneModelBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a >64MB frame")
	}
	big := execRankDone{
		Job: "rt", Gen: 1, Rank: 0, Iters: 1, SVs: 1,
		Model: make([]byte, maxExecModelBytes+1), Center: []float64{1},
	}
	if _, err := decodeExecRankDone(marshalExec(big)); err == nil {
		t.Fatal("rank-done frame with an oversize model accepted")
	}
}
