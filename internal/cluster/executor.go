// Worker-side remote executor: the other half of the coordinator's
// generation protocol.
//
// RunExecutor holds a worker lease and serves the exec frame vocabulary:
// prepare reserves a mesh port, start dials the generation's tcpmpi world
// and trains the assigned shard ranks with core.RunShard — streaming
// epoch-boundary checkpoints back over the lease as it goes — and abort
// interrupts in-flight solves at the next iteration poll. Killing the
// process (`kill -9` included) simply stops the lease heartbeats; the
// coordinator's expiry callback then drives shrink/respawn recovery from
// the checkpoints this executor already streamed.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"casvm/internal/core"
	"casvm/internal/model"
	"casvm/internal/smo"
	"casvm/internal/tcpmpi"
	"casvm/internal/telemetry/fleet"
)

// ExecutorOptions tunes a RunExecutor worker.
type ExecutorOptions struct {
	// Fleet streams fleet telemetry (hello, epoch reports, metrics) for
	// every shard rank the executor trains, letting the coordinator's
	// collector merge traces across gang generations.
	Fleet bool

	// IterDelay throttles the solver by sleeping this long every
	// iteration poll — tests and demos use it to hold a solve open long
	// enough to kill the process mid-epoch. 0 = full speed.
	IterDelay time.Duration

	// Logf receives one line per generation event (nil = silent).
	Logf func(format string, args ...any)
}

// Sentinel errors the executor's iteration poll injects into a solve.
var (
	errGenAborted = errors.New("cluster: generation aborted by coordinator")
	errLeaseLost  = errors.New("cluster: worker lease ended mid-solve")
)

// executor is the per-lease serving state.
type executor struct {
	l    *tcpmpi.Lease
	opts ExecutorOptions

	mu      sync.Mutex
	ports   map[string]string // "job/gen" -> reserved mesh address
	aborted map[string]int    // job -> highest aborted generation
}

func (e *executor) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

func (e *executor) abortedGen(job string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.aborted[job]
}

// RunExecutor registers with the coordinator at addr as a worker and
// serves remote rank execution until the lease ends (coordinator shutdown
// or revocation) or ctx is cancelled. It returns nil on a clean ctx-driven
// departure — the coordinator sees a leave, not an expiry.
func RunExecutor(ctx context.Context, addr string, opts ExecutorOptions) error {
	l, err := tcpmpi.Register(addr, tcpmpi.RegisterOptions{})
	if err != nil {
		return fmt.Errorf("cluster: register with %s: %w", addr, err)
	}
	e := &executor{
		l:       l,
		opts:    opts,
		ports:   map[string]string{},
		aborted: map[string]int{},
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-stop:
		}
	}()
	e.logf("executor: lease %d with %s", l.ID(), addr)
	for {
		tag, payload, err := l.RecvAny([]int{tagExecPrepare, tagExecStart, tagExecAbort}, 0)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if lerr := l.Err(); lerr != nil {
				return lerr
			}
			return err
		}
		switch tag {
		case tagExecPrepare:
			e.onPrepare(payload)
		case tagExecAbort:
			e.onAbort(payload)
		case tagExecStart:
			m, err := decodeExecStart(payload)
			if err != nil {
				e.logf("executor: %v", err)
				continue
			}
			e.mu.Lock()
			mesh, ok := e.ports[genKey(m.Job, m.Gen)]
			delete(e.ports, genKey(m.Job, m.Gen))
			e.mu.Unlock()
			if !ok {
				e.sendFail(m, -1, false, "start for a generation this worker never prepared")
				continue
			}
			// Generations run off the serving loop so aborts keep landing.
			go e.runGeneration(m, mesh)
		}
	}
}

func genKey(job string, gen int) string { return fmt.Sprintf("%s/%d", job, gen) }

// onPrepare reserves a TCP port for the generation's mesh listener and
// answers with the address. The listener is closed immediately — the port
// stays effectively reserved until tcpmpi re-binds it, the same
// reserve-then-rebind trick examples/distributed uses.
func (e *executor) onPrepare(payload []byte) {
	m, err := decodeExecPrepare(payload)
	if err != nil {
		e.logf("executor: %v", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.logf("executor: reserve mesh port: %v", err)
		return
	}
	addr := ln.Addr().String()
	ln.Close()
	e.mu.Lock()
	e.ports[genKey(m.Job, m.Gen)] = addr
	e.mu.Unlock()
	if err := e.l.Send(tagExecMeshAddr, marshalExec(execMeshAddr{Job: m.Job, Gen: m.Gen, Addr: addr})); err != nil {
		e.logf("executor: mesh-addr reply: %v", err)
	}
}

// onAbort records the coordinator's cancellation high-water mark; solves
// observe it at their next iteration poll.
func (e *executor) onAbort(payload []byte) {
	m, err := decodeExecAbort(payload)
	if err != nil {
		e.logf("executor: %v", err)
		return
	}
	e.mu.Lock()
	if m.Gen > e.aborted[m.Job] {
		e.aborted[m.Job] = m.Gen
	}
	e.mu.Unlock()
	e.logf("executor: job %s gen %d aborted: %s", m.Job, m.Gen, m.Reason)
}

func (e *executor) sendFail(m execStart, rank int, fatal bool, msg string) {
	err := e.l.Send(tagExecFail, marshalExec(execFail{
		Job: m.Job, Gen: m.Gen, Rank: rank, Fatal: fatal, Err: msg,
	}))
	if err != nil {
		e.logf("executor: fail report: %v", err)
	}
}

// runGeneration executes one generation on this worker: dial the mesh,
// clear the start barrier, then train the assigned shard ranks in order,
// streaming checkpoints and finished models back over the lease.
func (e *executor) runGeneration(m execStart, meshAddr string) {
	if e.abortedGen(m.Job) >= m.Gen {
		return
	}
	pr, ds, err := trainParams(m.Spec)
	if err != nil {
		// The spec cannot train anywhere; retrying on another gang
		// cannot fix it.
		e.sendFail(m, -1, true, err.Error())
		return
	}
	peers := append([]string(nil), m.Peers...)
	peers[m.MeshRank] = meshAddr
	comm, err := tcpmpi.DialOptions(m.MeshRank, peers, tcpmpi.Options{
		HeartbeatInterval:   500 * time.Millisecond,
		HeartbeatTimeout:    2 * time.Second,
		ReconnectAttempts:   2,
		ReconnectBackoffMax: 500 * time.Millisecond,
	})
	if err != nil {
		// A gang member died (or never prepared) before the mesh came
		// up; the coordinator re-gangs the survivors.
		e.sendFail(m, -1, false, fmt.Sprintf("mesh dial: %v", err))
		return
	}
	defer comm.Close()
	// Start barrier: no rank trains until every gang member is meshed, so
	// a generation either launches whole or not at all.
	if _, err := comm.Bcast(0, []byte("go")); err != nil {
		e.sendFail(m, -1, false, fmt.Sprintf("start barrier: %v", err))
		return
	}
	e.logf("executor: job %s gen %d mesh rank %d/%d trains shard ranks %v",
		m.Job, m.Gen, m.MeshRank, len(peers), m.Ranks)

	// virt is this worker's cumulative α–β virtual time within the
	// generation: completed shard solves plus every checkpoint deposit's
	// modeled transport.
	var virt float64
	for _, rank := range m.Ranks {
		if e.abortedGen(m.Job) >= m.Gen {
			return
		}
		restore, err := remoteResumeCheckpoint(m.Resume[rank])
		if err != nil { // decodeExecStart already vetted the blob
			e.sendFail(m, rank, true, fmt.Sprintf("resume checkpoint: %v", err))
			return
		}
		var rep *fleet.Reporter
		if e.opts.Fleet {
			if rep, err = fleet.NewReporter(e.l, m.Job, rank, m.Spec.P); err != nil {
				e.logf("executor: fleet hello: %v", err)
			}
		}
		epoch := 0
		epochStart := time.Now()
		sink := func(ck *smo.Checkpoint) {
			blob := ck.Encode()
			virt += pr.Machine.PtoP(len(blob))
			frame := marshalExec(execCkpt{
				Job: m.Job, Gen: m.Gen, Rank: rank,
				Iters: ck.Iters, VirtSec: virt, Blob: blob,
			})
			if err := e.l.Send(tagExecCkpt, frame); err != nil {
				e.logf("executor: checkpoint deposit: %v", err)
			}
			if rep != nil {
				rep.ReportEpoch(epoch, time.Since(epochStart))
			}
			epoch++
			epochStart = time.Now()
		}
		interrupt := func(iter int) error {
			if e.opts.IterDelay > 0 {
				time.Sleep(e.opts.IterDelay)
			}
			if e.abortedGen(m.Job) >= m.Gen {
				return errGenAborted
			}
			select {
			case <-e.l.Done():
				return errLeaseLost
			default:
				return nil
			}
		}
		sh, err := core.RunShard(ds.X, ds.Y, pr, core.ShardRun{
			Rank: rank, P: m.Spec.P,
			CheckpointEvery: m.CheckpointEvery,
			CheckpointSink:  sink,
			Restore:         restore,
			Interrupt:       interrupt,
		})
		if err != nil {
			if errors.Is(err, errGenAborted) || errors.Is(err, errLeaseLost) {
				return // the coordinator already knows why
			}
			e.sendFail(m, rank, true, err.Error())
			return
		}
		virt += sh.VirtSec
		var buf bytes.Buffer
		if err := model.SaveSet(&buf, model.Single(sh.Model, sh.Center)); err != nil {
			e.sendFail(m, rank, true, fmt.Sprintf("serialize shard model: %v", err))
			return
		}
		done := marshalExec(execRankDone{
			Job: m.Job, Gen: m.Gen, Rank: rank,
			Iters: sh.Iters, SVs: sh.SVs, VirtSec: virt,
			Model: buf.Bytes(), Center: sh.Center,
		})
		if err := e.l.Send(tagExecRankDone, done); err != nil {
			e.logf("executor: rank-done report: %v", err)
			return
		}
		if rep != nil {
			rep.ShipMetrics(nil)
			rep.Goodbye()
		}
		e.logf("executor: job %s gen %d shard rank %d done (iters=%d svs=%d)",
			m.Job, m.Gen, rank, sh.Iters, sh.SVs)
	}
}
