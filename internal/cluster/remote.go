// Coordinator-side runtime for remotely executed jobs.
//
// A remote job's life is a sequence of *generations*. Each generation gangs
// the job's current workers into a tcpmpi mesh (prepare → mesh-addr →
// start over the lease connections), assigns every still-pending shard rank
// to a worker, and waits while the workers stream epoch-boundary
// checkpoints and finished shard models back as lease control frames. The
// coordinator is the only holder of global state: the latest checkpoint per
// rank and every finished shard survive their generation, so a `kill -9`
// (surfacing as a lease expiry) costs at most one epoch of the dead
// worker's ranks. The next generation re-gangs the survivors — plus any
// spare the scheduler attached — and resumes each pending rank from its
// last streamed checkpoint. Because RA-CA shard solves are deterministic in
// (dataset, rank, P, params), any generation history converges to the same
// models, and the job lands on the fault-free ModelHash.
//
// Recovery is α–β-priced like the in-process supervisor: a re-gang sets the
// next generation's virtual-time base to the highest virtual time any rank
// reached (observed via checkpoint and rank-done frames) plus the modeled
// relaunch penalty, so TotalSec carries the cost of lost work instead of
// hiding it.
package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"casvm/internal/core"
	"casvm/internal/model"
	"casvm/internal/smo"
	"casvm/internal/tcpmpi"
)

// genOutcome is why awaitGeneration returned.
type genOutcome int

const (
	genDone   genOutcome = iota // every shard rank has a model
	genLost                     // a generation worker's lease ended
	genSoft                     // a worker reported a retryable failure (mesh loss)
	genGrew                     // the gang outgrew the generation and a re-spread helps
	genFatal                    // a worker reported a job-level failure
	genClosed                   // the coordinator is shutting down
)

// remoteRun is the mutable state of one remote job, shared between the
// job's supervising goroutine and the registrar callbacks (frames, lease
// expiries, scheduler attaches). Guarded by its own mutex; the lock order
// is c.mu before rr.mu, never the reverse.
type remoteRun struct {
	j *Job

	mu   sync.Mutex
	cond *sync.Cond
	// events counts membership/frame wakeups so waiters snapshotting
	// coordinator state outside rr.mu never miss one.
	events int

	closed bool
	fatal  string
	soft   string

	gen        int
	genActive  bool
	genBase    float64
	genWorkers []int          // mesh order of the active generation
	assign     map[int][]int  // worker id -> assigned shard ranks (active gen)
	meshAddr   map[int]string // worker id -> reserved mesh address (active gen)
	lost       bool           // an active-generation worker died

	ckptBlob  map[int][]byte
	ckptIters map[int]int
	ckptVirt  map[int]float64
	doneRank  map[int]*core.ShardResult

	base       float64 // virtual-time origin of the next generation
	maxVirt    float64 // highest α–β virtual time any rank reached
	recoveries int
	grows      int
	joined     int
	lostRanks  []int
}

func newRemoteRun(j *Job) *remoteRun {
	rr := &remoteRun{
		j:         j,
		ckptBlob:  map[int][]byte{},
		ckptIters: map[int]int{},
		ckptVirt:  map[int]float64{},
		doneRank:  map[int]*core.ShardResult{},
	}
	rr.cond = sync.NewCond(&rr.mu)
	return rr
}

// kick wakes every waiter after external state (gang membership, frames)
// changed. Callers may hold c.mu; kick only takes rr.mu.
func (rr *remoteRun) kick() {
	rr.mu.Lock()
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// closeRun unblocks the supervising goroutine for coordinator shutdown.
func (rr *remoteRun) closeRun() {
	rr.mu.Lock()
	rr.closed = true
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// workerLost records a generation member's death: its pending ranks go on
// the lost ledger and the supervisor is woken to abort and re-gang. Called
// under c.mu from onGone.
func (rr *remoteRun) workerLost(id int) {
	rr.mu.Lock()
	if rr.genActive {
		if ranks, ok := rr.assign[id]; ok {
			rr.lost = true
			for _, r := range ranks {
				if rr.doneRank[r] == nil {
					rr.lostRanks = append(rr.lostRanks, r)
				}
			}
		}
	}
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// pendingRanks lists shard ranks without a finished model, sorted.
func (rr *remoteRun) pendingRanksLocked() []int {
	var out []int
	for r := 0; r < rr.j.spec.P; r++ {
		if rr.doneRank[r] == nil {
			out = append(out, r)
		}
	}
	return out
}

// onMeshAddr records a worker's reserved mesh address for the generation.
func (rr *remoteRun) onMeshAddr(workerID int, m execMeshAddr) {
	rr.mu.Lock()
	if rr.genActive && m.Gen == rr.gen {
		if _, expected := rr.assign[workerID]; expected {
			rr.meshAddr[workerID] = m.Addr
		}
	}
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// onCkpt stores the latest checkpoint for a rank. Progress is monotonic:
// an older deposit (a stale generation's frame arriving late) never
// regresses the resume point.
func (rr *remoteRun) onCkpt(m execCkpt) {
	rr.mu.Lock()
	if m.Rank < rr.j.spec.P && rr.doneRank[m.Rank] == nil && m.Iters >= rr.ckptIters[m.Rank] {
		rr.ckptBlob[m.Rank] = m.Blob
		rr.ckptIters[m.Rank] = m.Iters
		if v := rr.genBase + m.VirtSec; v > rr.maxVirt {
			rr.maxVirt = v
		}
		rr.ckptVirt[m.Rank] = rr.genBase + m.VirtSec
	}
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// onRankDone stores a finished shard. The model bytes were already parsed
// at the trust boundary; duplicates from stale generations are ignored —
// shard solves are deterministic, so the first result is as good as any.
func (rr *remoteRun) onRankDone(m execRankDone, sh *core.ShardResult) {
	rr.mu.Lock()
	if m.Rank < rr.j.spec.P && rr.doneRank[m.Rank] == nil {
		rr.doneRank[m.Rank] = sh
		delete(rr.ckptBlob, m.Rank)
		if v := rr.genBase + m.VirtSec; v > rr.maxVirt {
			rr.maxVirt = v
		}
	}
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// onFail records a worker-reported solve failure.
func (rr *remoteRun) onFail(m execFail) {
	rr.mu.Lock()
	if rr.genActive && m.Gen == rr.gen {
		if m.Fatal {
			rr.fatal = fmt.Sprintf("rank %d: %s", m.Rank, m.Err)
		} else if rr.soft == "" {
			rr.soft = fmt.Sprintf("rank %d: %s", m.Rank, m.Err)
		}
	}
	rr.events++
	rr.mu.Unlock()
	rr.cond.Broadcast()
}

// RemoteProgress is a snapshot of a remote job's execution state, for
// status reporting and tests.
type RemoteProgress struct {
	Generation int         `json:"generation"`
	Workers    []int       `json:"workers,omitempty"` // active generation, mesh order
	CkptIters  map[int]int `json:"ckpt_iters,omitempty"`
	DoneRanks  []int       `json:"done_ranks,omitempty"`
	Recoveries int         `json:"recoveries,omitempty"`
	Grows      int         `json:"grows,omitempty"`
}

// Remote reports a remote job's live execution progress, or nil for
// in-process jobs.
func (j *Job) Remote() *RemoteProgress {
	rr := j.remote
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	p := &RemoteProgress{
		Generation: rr.gen,
		Workers:    append([]int(nil), rr.genWorkers...),
		CkptIters:  map[int]int{},
		Recoveries: rr.recoveries,
		Grows:      rr.grows,
	}
	for r, it := range rr.ckptIters {
		p.CkptIters[r] = it
	}
	for r := range rr.doneRank {
		p.DoneRanks = append(p.DoneRanks, r)
	}
	sort.Ints(p.DoneRanks)
	return p
}

// onExecFrame routes executor control frames from lease holders into the
// owning job's remote runtime. Frames from leases not currently owned by a
// remote job are dropped — a departed worker's late frames carry no
// authority.
func (c *Coordinator) onExecFrame(w tcpmpi.WorkerInfo, tag int, payload []byte) {
	ident := func(job string) *remoteRun {
		c.mu.Lock()
		defer c.mu.Unlock()
		j := c.byID[job]
		if j == nil || j.remote == nil || c.owner[w.ID] != j {
			return nil
		}
		return j.remote
	}
	switch tag {
	case tagExecMeshAddr:
		m, err := decodeExecMeshAddr(payload)
		if err != nil {
			c.logf("cluster: lease %d: %v", w.ID, err)
			return
		}
		if rr := ident(m.Job); rr != nil {
			rr.onMeshAddr(w.ID, m)
		}
	case tagExecCkpt:
		m, err := decodeExecCkpt(payload)
		if err != nil {
			c.logf("cluster: lease %d: %v", w.ID, err)
			return
		}
		if rr := ident(m.Job); rr != nil {
			rr.onCkpt(m)
		}
	case tagExecRankDone:
		m, err := decodeExecRankDone(payload)
		if err != nil {
			c.logf("cluster: lease %d: %v", w.ID, err)
			return
		}
		// Ownership first: only a lease the named job actually holds gets
		// to spend coordinator cycles parsing model bytes.
		rr := ident(m.Job)
		if rr == nil {
			return
		}
		set, err := model.LoadSet(bytes.NewReader(m.Model))
		if err != nil || len(set.Models) != 1 {
			c.logf("cluster: lease %d: rank-done model rejected: %v", w.ID, err)
			return
		}
		rr.onRankDone(m, &core.ShardResult{
			Model:  set.Models[0],
			Center: m.Center,
			Iters:  m.Iters,
			SVs:    m.SVs,
		})
	case tagExecFail:
		m, err := decodeExecFail(payload)
		if err != nil {
			c.logf("cluster: lease %d: %v", w.ID, err)
			return
		}
		if rr := ident(m.Job); rr != nil {
			c.logf("cluster: job %s gen %d rank %d failed on lease %d (fatal=%v): %s",
				m.Job, m.Gen, m.Rank, w.ID, m.Fatal, m.Err)
			rr.onFail(m)
		}
	}
}

// awaitRemoteGang blocks until the job's gang satisfies its policy —
// respawn insists on the full requested width before (re)launching, shrink
// proceeds with any survivor, and either policy picks up spares the
// scheduler attached — or the coordinator closes.
func (c *Coordinator) awaitRemoteGang(j *Job) ([]int, error) {
	rr := j.remote
	need := 1
	if j.spec.policy() == core.RecoverRespawn {
		need = j.spec.P
	}
	for {
		rr.mu.Lock()
		seen := rr.events
		closed := rr.closed
		rr.mu.Unlock()
		c.mu.Lock()
		gang := append([]int(nil), j.gang...)
		closed = closed || c.closed
		c.mu.Unlock()
		if closed {
			return nil, fmt.Errorf("cluster: coordinator closed while job %s awaited a gang", j.id)
		}
		if len(gang) >= need {
			return gang, nil
		}
		c.logf("cluster: job %s waiting for %d worker(s), have %d", j.id, need, len(gang))
		rr.mu.Lock()
		for rr.events == seen && !rr.closed {
			rr.cond.Wait()
		}
		rr.mu.Unlock()
	}
}

// beginGeneration opens generation state for the given gang and assigns
// every pending shard rank round-robin over it (one rank per worker at
// full width; survivors absorb a dead worker's ranks after a shrink).
//
// A generation never gangs more workers than it has pending ranks: a
// zero-rank member would have nothing to execute, yet the mesh bootstrap
// waits on an address from every generation member — so surplus workers
// (respawn backfill after some ranks finished, spares attached
// post-shrink) would stall every dispatch into a timeout and burn the
// recovery budget on healthy workers. The returned gang is the truncated
// one the generation actually runs on; extra workers stay attached to the
// job and join the next generation that needs them.
func (rr *remoteRun) beginGeneration(gang []int) (gen int, genGang []int, assign map[int][]int, pending []int) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.gen++
	rr.genActive = true
	rr.genBase = rr.base
	pending = rr.pendingRanksLocked()
	if len(pending) > 0 && len(gang) > len(pending) {
		gang = gang[:len(pending)]
	}
	rr.genWorkers = append([]int(nil), gang...)
	rr.assign = map[int][]int{}
	rr.meshAddr = map[int]string{}
	rr.lost = false
	rr.soft = ""
	for i, r := range pending {
		id := gang[i%len(gang)]
		rr.assign[id] = append(rr.assign[id], r)
	}
	return rr.gen, rr.genWorkers, rr.assign, pending
}

// endGeneration closes the active generation's bookkeeping.
func (rr *remoteRun) endGeneration() {
	rr.mu.Lock()
	rr.genActive = false
	rr.assign = map[int][]int{}
	rr.meshAddr = map[int]string{}
	rr.mu.Unlock()
}

// errRegang signals a dispatch that could not complete because membership
// moved underneath it; the supervisor prices it and re-gangs.
var errRegang = fmt.Errorf("cluster: generation dispatch interrupted")

// dispatchGeneration runs the mesh bootstrap for one generation: prepare
// frames out, mesh addresses back, then a start frame per worker carrying
// the spec, its shard ranks, the peer table, and the resume checkpoints.
func (c *Coordinator) dispatchGeneration(j *Job, gang []int, gen int, every int) error {
	rr := j.remote
	prep := marshalExec(execPrepare{Job: j.id, Gen: gen})
	for _, id := range gang {
		if err := c.reg.Send(id, tagExecPrepare, prep); err != nil {
			c.logf("cluster: job %s gen %d: prepare to worker %d: %v", j.id, gen, id, err)
			return errRegang
		}
	}
	// Collect every gang member's reserved mesh address. A worker death or
	// an unresponsive executor aborts the bootstrap into a re-gang.
	deadline := time.Now().Add(15 * time.Second)
	for {
		rr.mu.Lock()
		if rr.closed || rr.lost || rr.fatal != "" {
			rr.mu.Unlock()
			return errRegang
		}
		if len(rr.meshAddr) == len(gang) {
			rr.mu.Unlock()
			break
		}
		seen := rr.events
		have := len(rr.meshAddr)
		rr.mu.Unlock()
		if time.Now().After(deadline) {
			c.logf("cluster: job %s gen %d: mesh bootstrap timed out (%d/%d addresses)",
				j.id, gen, have, len(gang))
			return errRegang
		}
		rr.mu.Lock()
		if rr.events == seen && !rr.closed {
			// kick (not a bare Broadcast) so the wakeup cannot land in the
			// window before this waiter parks and be lost.
			t := time.AfterFunc(200*time.Millisecond, rr.kick)
			rr.cond.Wait()
			t.Stop()
		}
		rr.mu.Unlock()
	}

	rr.mu.Lock()
	peers := make([]string, len(gang))
	for i, id := range gang {
		peers[i] = rr.meshAddr[id]
	}
	starts := make(map[int][]byte, len(gang))
	for i, id := range gang {
		ranks := rr.assign[id]
		resume := map[int][]byte{}
		for _, r := range ranks {
			if blob, ok := rr.ckptBlob[r]; ok {
				resume[r] = blob
			}
		}
		starts[id] = marshalExec(execStart{
			Job: j.id, Gen: gen, Spec: j.spec,
			MeshRank: i, Peers: peers,
			Ranks: ranks, Resume: resume,
			CheckpointEvery: every,
		})
	}
	rr.mu.Unlock()
	for _, id := range gang {
		if err := c.reg.Send(id, tagExecStart, starts[id]); err != nil {
			c.logf("cluster: job %s gen %d: start to worker %d: %v", j.id, gen, id, err)
			return errRegang
		}
	}
	return nil
}

// awaitGeneration blocks until the active generation resolves and reports
// how. A gang that outgrew the generation only forces a re-spread when a
// worker is carrying more than one pending rank — otherwise the spare
// waits for the next membership event.
func (c *Coordinator) awaitGeneration(j *Job) genOutcome {
	rr := j.remote
	for {
		rr.mu.Lock()
		seen := rr.events
		switch {
		case rr.fatal != "":
			rr.mu.Unlock()
			return genFatal
		case rr.closed:
			rr.mu.Unlock()
			return genClosed
		// Done outranks lost: a worker dying after its final rank-done
		// frame already delivered everything; re-ganging would price a
		// recovery nothing needs.
		case len(rr.pendingRanksLocked()) == 0:
			rr.mu.Unlock()
			return genDone
		case rr.lost:
			rr.mu.Unlock()
			return genLost
		case rr.soft != "":
			rr.mu.Unlock()
			return genSoft
		}
		pending := len(rr.pendingRanksLocked())
		width := len(rr.genWorkers)
		rr.mu.Unlock()

		c.mu.Lock()
		gangNow := len(j.gang)
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return genClosed
		}
		if gangNow > width && pending > width {
			return genGrew
		}

		rr.mu.Lock()
		for rr.events == seen && !rr.closed {
			rr.cond.Wait()
		}
		rr.mu.Unlock()
	}
}

// abortGeneration tells the surviving gang to cancel the generation's
// in-flight solves (best effort — a dead lease simply fails the send).
func (c *Coordinator) abortGeneration(j *Job, gen int, reason string) {
	payload := marshalExec(execAbort{Job: j.id, Gen: gen, Reason: reason})
	c.mu.Lock()
	gang := append([]int(nil), j.gang...)
	c.mu.Unlock()
	for _, id := range gang {
		if err := c.reg.Send(id, tagExecAbort, payload); err != nil {
			c.logf("cluster: job %s gen %d: abort to worker %d: %v", j.id, gen, id, err)
		}
	}
}

// priceRegang advances the job's virtual-time base past the failed
// generation — the highest virtual time any rank reached plus the modeled
// relaunch penalty — mirroring the in-process supervisor's failClock +
// penalty accounting.
func (rr *remoteRun) priceRegang(penalty float64) {
	rr.mu.Lock()
	base := rr.base
	if rr.maxVirt > base {
		base = rr.maxVirt
	}
	rr.base = base + penalty
	rr.mu.Unlock()
}

// runRemoteJob supervises one remote job end to end: gang → bootstrap →
// stream → (re-gang)* → assemble. It runs on the job goroutine runJob
// spawns and publishes through finishJob exactly like the in-process path.
func (c *Coordinator) runRemoteJob(j *Job) {
	rr := j.remote
	res := &JobResult{ID: j.id, Method: j.spec.Method, Dataset: datasetName(j.spec), P: j.spec.P}
	start := time.Now()
	pr, ds, err := trainParams(j.spec)
	if err != nil {
		res.Err = err.Error()
		c.finishJob(j, res)
		return
	}
	rec := pr.Recovery
	every := rec.Cadence()
	budget := rec.RestartBudget()
	penalty := rec.PenaltySec()

	fail := func(format string, args ...any) {
		res.Err = fmt.Sprintf(format, args...)
	}
supervise:
	for {
		gang, err := c.awaitRemoteGang(j)
		if err != nil {
			fail("%v", err)
			break
		}
		gen, genGang, assign, pending := rr.beginGeneration(gang)
		if len(pending) == 0 {
			rr.endGeneration()
			break // every shard already delivered by an earlier generation
		}
		c.met.Counter("cluster_remote_generations_total",
			"remote-execution generations dispatched (first launches and re-gangs)").Inc()
		c.logf("cluster: job %s gen %d on workers %v (pending ranks %v, assignment %v)",
			j.id, gen, genGang, pending, assign)
		outcome := genLost
		if err := c.dispatchGeneration(j, genGang, gen, every); err == nil {
			outcome = c.awaitGeneration(j)
		}
		rr.endGeneration()
		switch outcome {
		case genDone:
			break supervise
		case genFatal:
			rr.mu.Lock()
			msg := rr.fatal
			rr.mu.Unlock()
			fail("cluster: job %s failed remotely: %s", j.id, msg)
			break supervise
		case genClosed:
			fail("cluster: coordinator closed while job %s ran", j.id)
			break supervise
		case genGrew:
			c.abortGeneration(j, gen, "gang grew; re-spreading ranks")
			c.mu.Lock()
			added := len(j.gang) - len(gang)
			c.mu.Unlock()
			if added < 0 {
				added = 0
			}
			rr.mu.Lock()
			rr.grows++
			rr.joined += added
			rr.mu.Unlock()
			rr.priceRegang(penalty)
			c.cScaleups.Inc()
			j.metrics.Counter("casvm_grows_total", "elastic world scale-ups").Inc()
			c.logf("cluster: job %s gen %d re-gangs wider (+%d worker(s))", j.id, gen, added)
		default: // genLost, genSoft: a failure to recover from
			c.abortGeneration(j, gen, "worker lost; re-ganging from last checkpoints")
			rr.mu.Lock()
			recov := rr.recoveries
			rr.mu.Unlock()
			if recov >= budget {
				fail("cluster: recovery budget exhausted after %d restarts of job %s", recov, j.id)
				break supervise
			}
			rr.mu.Lock()
			rr.recoveries++
			rr.mu.Unlock()
			rr.priceRegang(penalty)
			j.metrics.Counter("casvm_recoveries_total", "supervised crash recoveries").Inc()
			c.logf("cluster: job %s gen %d aborted (%s); re-ganging from last streamed checkpoints",
				j.id, gen, map[genOutcome]string{genLost: "worker lost", genSoft: "worker error"}[outcome])
		}
	}
	res.WallSec = time.Since(start).Seconds()

	if res.Err == "" {
		rr.mu.Lock()
		res.FinalP = j.spec.P
		res.Recoveries = rr.recoveries
		res.Grows = rr.grows
		res.JoinedRanks = rr.joined
		res.LostRanks = append([]int(nil), rr.lostRanks...)
		res.Generations = rr.gen
		res.TotalSec = rr.maxVirt
		shards := make(map[int]*core.ShardResult, len(rr.doneRank))
		for r, sh := range rr.doneRank {
			shards[r] = sh
			res.SVs += sh.SVs
			if sh.Iters > res.Iters {
				res.Iters = sh.Iters
			}
		}
		rr.mu.Unlock()
		set, err := core.AssembleShards(shards, ds.Features())
		if err != nil {
			fail("%v", err)
		} else {
			if ds.TestX != nil {
				res.Accuracy = set.Accuracy(ds.TestX, ds.TestY)
			}
			if res.ModelHash, err = core.ModelHash(set); err != nil {
				fail("%v", err)
			}
		}
	}
	c.finishJob(j, res)
}

// remoteResumeCheckpoint decodes a resume blob for the executor; split out
// so the decoder at the trust boundary and the executor share one path.
func remoteResumeCheckpoint(blob []byte) (*smo.Checkpoint, error) {
	if blob == nil {
		return nil, nil
	}
	return smo.DecodeCheckpoint(blob)
}
