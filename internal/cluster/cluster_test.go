package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/tcpmpi"
)

// testMixture is the in-process test dataset every method learns well —
// the same construction core's recovery suite uses, so iteration counts
// are long enough to drive membership churn through mid-run.
func testMixture(train int) *data.MixtureSpec {
	return &data.MixtureSpec{
		Name: "cluster-test", Train: train, Test: train / 4, Features: 8,
		Clusters: 4, Separation: 7, Noise: 1, PosFrac: []float64{0.5},
		LabelNoise: 0.02, Margin: 1.0, Seed: 42,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestCoordinator(t *testing.T, ttl time.Duration) *Coordinator {
	t.Helper()
	c, err := New("localhost:0", Config{LeaseTTL: ttl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func registerWorkers(t *testing.T, c *Coordinator, n int) []*tcpmpi.Lease {
	t.Helper()
	leases := make([]*tcpmpi.Lease, n)
	for i := range leases {
		l, err := tcpmpi.Register(c.Addr(), tcpmpi.RegisterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		leases[i] = l
	}
	waitFor(t, "workers registered", func() bool { return len(c.Workers()) >= n })
	return leases
}

// TestClusterGoldenScaleUp is the acceptance scenario for the elastic
// runtime: a Dis-SMO job on a gang of 8 loses two workers to lease
// revocation mid-run (shrinking the world 8 -> 7 -> 6), two replacement
// workers dial in, the world grows back to 8 at a checkpoint epoch
// boundary, and the final model carries the exact fault-free ModelHash.
func TestClusterGoldenScaleUp(t *testing.T) {
	spec := JobSpec{
		ID: "golden", Mixture: testMixture(480), Method: string(core.MethodDisSMO),
		P: 8, Seed: 1, CheckpointEvery: 8, Policy: "shrink",
	}

	// Local fault-free reference run with the identical parameter build.
	pr, ds, err := trainParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanOut, err := core.Train(ds.X, ds.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	cleanHash, err := core.ModelHash(cleanOut.Set)
	if err != nil {
		t.Fatal(err)
	}
	if cleanOut.Stats.Iters < 48 {
		t.Fatalf("reference run converged in %d iters; churn window unreachable", cleanOut.Stats.Iters)
	}

	c := newTestCoordinator(t, 500*time.Millisecond)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The job is queued (no workers yet): safe to slow its iteration
	// clock so the churn sequence lands mid-run deterministically.
	j.inj.setThrottle(2 * time.Millisecond)

	leases := registerWorkers(t, c, 8)
	waitFor(t, "job running", func() bool { return j.State() == JobRunning })
	waitFor(t, "training underway", func() bool { i, _, _, _ := j.inj.snapshot(); return i >= 8 })

	// Two lease revocations: the membership table expires the workers and
	// the supervisor shrinks the world.
	if err := c.reg.Revoke(leases[7].ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first shrink", func() bool { _, k, _, _ := j.inj.snapshot(); return k >= 1 })
	if err := c.reg.Revoke(leases[6].ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second shrink", func() bool { _, k, _, _ := j.inj.snapshot(); return k >= 2 })

	// Two replacement workers join mid-run; the scheduler attaches them
	// to the degraded job and the world grows back at the next epoch.
	registerWorkers(t, c, 2)
	waitFor(t, "scale-up back to 8", func() bool {
		_, _, g, w := j.inj.snapshot()
		return g >= 2 && w == 8
	})

	j.inj.setThrottle(0)
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("job never finished")
	}
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("job failed: %s", res.Err)
	}
	if res.FinalP != 8 {
		t.Fatalf("FinalP=%d, want 8", res.FinalP)
	}
	if res.Recoveries != 2 {
		t.Fatalf("Recoveries=%d, want 2", res.Recoveries)
	}
	if res.Grows < 1 || res.JoinedRanks != 2 {
		t.Fatalf("Grows=%d JoinedRanks=%d, want >=1 and 2", res.Grows, res.JoinedRanks)
	}
	if res.Degraded {
		t.Fatal("run reported degraded despite full recovery")
	}
	if res.ModelHash != cleanHash {
		t.Fatalf("churned run hash %s != fault-free hash %s", res.ModelHash, cleanHash)
	}
	if res.Iters != cleanOut.Stats.Iters {
		t.Fatalf("churned run iters=%d != fault-free iters=%d", res.Iters, cleanOut.Stats.Iters)
	}
	if res.Accuracy < 0.88 {
		t.Fatalf("accuracy %.3f < 0.88", res.Accuracy)
	}

	snap := c.Metrics().Snapshot()
	if got := snap["cluster_lease_expiries_total"]; got != 2 {
		t.Fatalf("cluster_lease_expiries_total=%v, want 2", got)
	}
	if got := snap["cluster_job_scaleups_total"]; got != 2 {
		t.Fatalf("cluster_job_scaleups_total=%v, want 2", got)
	}
	// The job's private metrics namespace carries the grow counters.
	jsnap := j.Metrics().Snapshot()
	if jsnap["casvm_grow_ranks_total"] != 2 {
		t.Fatalf("job casvm_grow_ranks_total=%v, want 2", jsnap["casvm_grow_ranks_total"])
	}
}

// TestRespawnBackfill: under the respawn policy a lost worker's rank
// restarts from checkpoint at fixed width, and a joining worker backfills
// pool capacity without growing the world. Dis-SMO respawn is
// bit-identical, so the hash still matches the fault-free run.
func TestRespawnBackfill(t *testing.T) {
	spec := JobSpec{
		Mixture: testMixture(240), Method: string(core.MethodDisSMO),
		P: 2, Seed: 3, CheckpointEvery: 8, Policy: "respawn",
	}
	pr, ds, err := trainParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanOut, err := core.Train(ds.X, ds.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	cleanHash, err := core.ModelHash(cleanOut.Set)
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, 500*time.Millisecond)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j.inj.setThrottle(2 * time.Millisecond)
	leases := registerWorkers(t, c, 2)
	waitFor(t, "training underway", func() bool { i, _, _, _ := j.inj.snapshot(); return i >= 8 })

	if err := c.reg.Revoke(leases[1].ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "respawn kill", func() bool { _, k, _, _ := j.inj.snapshot(); return k >= 1 })
	// A fresh worker arrives: it must backfill the gang, not grow the world.
	registerWorkers(t, c, 1)
	waitFor(t, "backfill", func() bool { return len(j.Gang()) == 2 })

	j.inj.setThrottle(0)
	<-j.Done()
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("job failed: %s", res.Err)
	}
	if res.FinalP != 2 || res.Recoveries != 1 || res.Grows != 0 {
		t.Fatalf("FinalP=%d Recoveries=%d Grows=%d, want 2/1/0",
			res.FinalP, res.Recoveries, res.Grows)
	}
	if res.ModelHash != cleanHash {
		t.Fatalf("respawned run hash %s != fault-free hash %s", res.ModelHash, cleanHash)
	}
}

// TestGangScheduling: jobs queue until a full gang of Spec.P workers is
// free, run FIFO, and released workers are reused by the next job.
func TestGangScheduling(t *testing.T) {
	c := newTestCoordinator(t, time.Second)

	spec := JobSpec{
		Mixture: testMixture(160), Method: string(core.MethodRACA),
		P: 2, Seed: 5,
	}
	// Submit before any workers exist: the job queues, which makes it
	// safe to slow its iteration clock before it starts.
	j1, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j1.inj.setThrottle(2 * time.Millisecond)
	registerWorkers(t, c, 3)
	waitFor(t, "first job running", func() bool { return j1.State() == JobRunning })

	// One free worker left: a second 2-wide job must queue.
	j2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.State(); st != JobQueued {
		t.Fatalf("second job state %v while the pool is exhausted, want queued", st)
	}

	j1.inj.setThrottle(0)
	select {
	case <-j2.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("queued job never ran")
	}
	for _, j := range []*Job{j1, j2} {
		res := j.Result()
		if res == nil || res.Err != "" {
			t.Fatalf("job %s: %+v", j.ID(), res)
		}
		if res.Accuracy < 0.85 {
			t.Fatalf("job %s accuracy %.3f", j.ID(), res.Accuracy)
		}
	}
	snap := c.Metrics().Snapshot()
	if snap["cluster_jobs_completed_total"] != 2 {
		t.Fatalf("cluster_jobs_completed_total=%v, want 2", snap["cluster_jobs_completed_total"])
	}
	if snap["cluster_workers_busy"] != 0 {
		t.Fatalf("cluster_workers_busy=%v after both jobs finished", snap["cluster_workers_busy"])
	}
}

// TestWireSubmitAndWait covers the thin-client path: a worker joins via
// JoinWorker, a client submits over TCP and blocks for the result, and
// the membership counters record the full join/leave cycle.
func TestWireSubmitAndWait(t *testing.T) {
	c := newTestCoordinator(t, time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- JoinWorker(ctx, c.Addr()) }()
	registerWorkers(t, c, 2) // one more direct lease; JoinWorker's makes 3
	waitFor(t, "all workers", func() bool { return len(c.Workers()) == 3 })

	res, err := SubmitAndWait(c.Addr(), JobSpec{
		ID: "wire", Mixture: testMixture(160), Method: string(core.MethodRACA),
		P: 3, Seed: 7,
	}, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelHash == "" || res.FinalP != 3 || res.Accuracy < 0.85 {
		t.Fatalf("thin-client result %+v", res)
	}
	if !strings.HasPrefix(res.ID, "wire-") {
		t.Fatalf("result id %q does not carry the client label", res.ID)
	}

	// An unrunnable spec comes back as an error, not a hang.
	if _, err := SubmitAndWait(c.Addr(), JobSpec{Method: "nope", P: 1, Dataset: "toy"},
		30*time.Second); err == nil {
		t.Fatal("bogus method accepted")
	}

	// Clean worker departure: a leave, not an expiry.
	cancel()
	if err := <-workerDone; err != nil {
		t.Fatalf("JoinWorker: %v", err)
	}
	waitFor(t, "leave counted", func() bool {
		return c.Metrics().Snapshot()["cluster_worker_leaves_total"] >= 1
	})
	snap := c.Metrics().Snapshot()
	if snap["cluster_worker_joins_total"] < 3 {
		t.Fatalf("cluster_worker_joins_total=%v, want >=3", snap["cluster_worker_joins_total"])
	}
	if snap["cluster_jobs_completed_total"] != 1 {
		t.Fatalf("cluster_jobs_completed_total=%v, want 1", snap["cluster_jobs_completed_total"])
	}
	if snap["cluster_lease_expiries_total"] != 0 {
		t.Fatalf("clean shutdown produced %v expiries", snap["cluster_lease_expiries_total"])
	}
}

// TestUnsupervisedExpiryFailsJob: with recovery off, a lease expiry still
// reaches the job as a crash — and fails it fast instead of hanging the
// gang.
func TestUnsupervisedExpiryFailsJob(t *testing.T) {
	c := newTestCoordinator(t, 500*time.Millisecond)
	spec := JobSpec{
		Mixture: testMixture(240), Method: string(core.MethodDisSMO),
		P: 2, Seed: 9, Policy: "off",
	}
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j.inj.setThrottle(2 * time.Millisecond)
	leases := registerWorkers(t, c, 2)
	waitFor(t, "training underway", func() bool { i, _, _, _ := j.inj.snapshot(); return i >= 4 })

	if err := c.reg.Revoke(leases[0].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("unsupervised job survived a lease expiry")
	}
	res := j.Result()
	if res.Err == "" || !strings.Contains(res.Err, "lease expired") {
		t.Fatalf("want a lease-expired failure, got %+v", res)
	}
	if c.Metrics().Snapshot()["cluster_jobs_failed_total"] != 1 {
		t.Fatal("failed job not counted")
	}
}

// TestSubmitValidation: broken specs are rejected at submission.
// TestSubmitIdempotencyKey: a resubmission carrying a SubmitKey the
// coordinator already accepted attaches to the existing job instead of
// double-running the work — the guarantee SubmitWithRetry leans on when a
// transport error lands after the submit frame was delivered.
func TestSubmitIdempotencyKey(t *testing.T) {
	c := newTestCoordinator(t, time.Second)
	spec := JobSpec{
		ID: "idem", Mixture: testMixture(160), Method: string(core.MethodDisSMO),
		P: 2, Seed: 1, SubmitKey: "client-key-1",
	}
	j1, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("resubmission with key %q started a second job (%s vs %s)",
			spec.SubmitKey, j1.ID(), j2.ID())
	}
	if got := c.Metrics().Snapshot()["cluster_jobs_submitted_total"]; got != 1 {
		t.Fatalf("cluster_jobs_submitted_total=%v after a deduplicated resubmit, want 1", got)
	}

	// A different key — and no key at all — still means a new job.
	spec.SubmitKey = "client-key-2"
	j3, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j3 == j1 {
		t.Fatal("distinct keys deduplicated")
	}
	spec.SubmitKey = ""
	j4, _ := c.Submit(spec)
	j5, _ := c.Submit(spec)
	if j4 == j5 {
		t.Fatal("keyless submissions deduplicated")
	}

	// The key crosses the trust boundary in the spec; unbounded keys are
	// rejected before they reach the dedup table.
	spec.SubmitKey = strings.Repeat("k", 129)
	if _, err := c.Submit(spec); err == nil {
		t.Fatal("oversize submit key accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestCoordinator(t, time.Second)
	for _, spec := range []JobSpec{
		{Method: "nope", P: 2, Dataset: "toy"},
		{Method: string(core.MethodRACA), P: 0, Dataset: "toy"},
		{Method: string(core.MethodRACA), P: 2},
		{Method: string(core.MethodRACA), P: 2, Dataset: "no-such-set"},
		{Method: string(core.MethodRACA), P: 2, Dataset: "toy", Policy: "retry-forever"},
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if n := c.Metrics().Snapshot()["cluster_jobs_submitted_total"]; n != 0 {
		t.Fatalf("rejected specs counted as submissions: %v", n)
	}
}
