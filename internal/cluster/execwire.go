// Remote-execution control frames on the lease connection.
//
// The coordinator drives a remote job's gang through a small JSON frame
// vocabulary in the 103–109 tag block (clear of the 101/102 submit pair and
// the fleet plane's 120–124): prepare → mesh-addr → start bootstraps each
// generation (the dynamic-discovery handshake from examples/distributed,
// run over the lease instead of a bespoke registrar), then checkpoint and
// rank-done frames stream worker → coordinator until the generation either
// completes or is aborted for a re-gang.
//
// Every worker → coordinator payload (and the coordinator → worker start
// frame on the executor side) crosses a trust boundary — a lease holder is
// remote and unauthenticated — so the decoders below validate structurally
// before any field is acted on, and are fuzzed (FuzzExecFrames) with their
// corpora wired into `make fuzz-smoke`.
package cluster

import (
	"encoding/json"
	"fmt"

	"casvm/internal/smo"
)

// Executor control-frame tags.
const (
	tagExecPrepare  = 103 // coordinator -> worker: reserve a mesh port for (job, gen)
	tagExecMeshAddr = 104 // worker -> coordinator: the reserved "host:port"
	tagExecStart    = 105 // coordinator -> worker: spec + rank assignment + peer table + resume blobs
	tagExecCkpt     = 106 // worker -> coordinator: one rank's epoch-boundary checkpoint
	tagExecRankDone = 107 // worker -> coordinator: one rank's trained shard model
	tagExecAbort    = 108 // coordinator -> worker: cancel the generation (re-gang pending)
	tagExecFail     = 109 // worker -> coordinator: a rank's solve failed
)

// execLimits bound structurally unbounded fields so a hostile frame cannot
// make the decoder allocate past the payload it paid for.
const (
	maxExecGangWidth  = 4096    // peer-table and rank-list entries
	maxExecSamples    = 1 << 22 // inline mixture train+test rows
	maxExecFeatures   = 1 << 14
	maxExecCenter     = 1 << 20 // routing-center floats in a rank-done frame
	maxExecModelBytes = 1 << 26 // serialized shard-model set in a rank-done frame
)

// execPrepare opens a generation: the worker reserves a TCP port for its
// mesh listener and answers with execMeshAddr.
type execPrepare struct {
	Job string `json:"job"`
	Gen int    `json:"gen"`
}

// execMeshAddr is the worker's reserved mesh address for one generation.
type execMeshAddr struct {
	Job  string `json:"job"`
	Gen  int    `json:"gen"`
	Addr string `json:"addr"`
}

// execStart launches one generation on one worker: the full job spec (the
// worker re-resolves the dataset deterministically — no sample data crosses
// the wire), the worker's mesh identity, and its assigned shard ranks with
// any resume checkpoints the coordinator collected from earlier
// generations.
type execStart struct {
	Job string  `json:"job"`
	Gen int     `json:"gen"`
	Spec JobSpec `json:"spec"`

	// MeshRank indexes Peers: this worker's position in the generation's
	// tcpmpi world. Peers lists every gang member's reserved mesh address
	// in mesh-rank order.
	MeshRank int      `json:"mesh_rank"`
	Peers    []string `json:"peers"`

	// Ranks are the shard ranks (in [0, Spec.P)) this worker trains this
	// generation, in execution order. Resume maps a rank to the last
	// checkpoint the coordinator holds for it (absent = solve from zero;
	// a Final checkpoint fast-forwards a shard that already converged).
	Ranks  []int          `json:"ranks"`
	Resume map[int][]byte `json:"resume,omitempty"`

	// CheckpointEvery is the effective deposit cadence in solver
	// iterations (the coordinator applies the spec default).
	CheckpointEvery int `json:"ckpt_every"`
}

// execCkpt streams one rank's epoch-boundary solver snapshot to the
// coordinator — the globally consistent resume point across generations.
type execCkpt struct {
	Job  string `json:"job"`
	Gen  int    `json:"gen"`
	Rank int    `json:"rank"`

	Iters int `json:"iters"`
	// VirtSec is the worker's α–β-modeled virtual time consumed in this
	// generation up to the deposit (init + checkpoint transport charges);
	// the coordinator prices re-gangs from the maximum it has seen.
	VirtSec float64 `json:"virt_sec"`
	Blob    []byte  `json:"blob"`
}

// execRankDone delivers one trained shard: the serialized single-model set,
// the routing center, and the rank's profile.
type execRankDone struct {
	Job  string `json:"job"`
	Gen  int    `json:"gen"`
	Rank int    `json:"rank"`

	Iters   int     `json:"iters"`
	SVs     int     `json:"svs"`
	VirtSec float64 `json:"virt_sec"` // cumulative on this worker within the generation
	Model   []byte  `json:"model"`
	Center  []float64 `json:"center"`
}

// execAbort cancels a generation: the worker interrupts its in-flight
// solves and discards the generation's mesh. Checkpoints already streamed
// remain valid — rank progress survives its generation.
type execAbort struct {
	Job    string `json:"job"`
	Gen    int    `json:"gen"`
	Reason string `json:"reason,omitempty"`
}

// execFail reports a rank solve the worker could not complete. Fatal marks
// job-level failures (bad spec, unresolvable dataset) that retrying on
// another generation cannot fix; non-fatal failures (mesh loss) trigger an
// ordinary re-gang.
type execFail struct {
	Job   string `json:"job"`
	Gen   int    `json:"gen"`
	Rank  int    `json:"rank"`
	Fatal bool   `json:"fatal,omitempty"`
	Err   string `json:"error"`
}

func marshalExec(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: exec frame marshal: %v", err)) // all frame types are marshalable
	}
	return b
}

// execIdent validates the (job, gen) pair every frame carries.
func execIdent(job string, gen int) error {
	if job == "" || len(job) > 256 {
		return fmt.Errorf("cluster: exec frame names no job")
	}
	if gen < 1 || gen > 1<<20 {
		return fmt.Errorf("cluster: exec frame generation %d out of range", gen)
	}
	return nil
}

func decodeExecPrepare(b []byte) (execPrepare, error) {
	var m execPrepare
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad prepare frame: %w", err)
	}
	return m, execIdent(m.Job, m.Gen)
}

func decodeExecMeshAddr(b []byte) (execMeshAddr, error) {
	var m execMeshAddr
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad mesh-addr frame: %w", err)
	}
	if err := execIdent(m.Job, m.Gen); err != nil {
		return m, err
	}
	if m.Addr == "" || len(m.Addr) > 256 {
		return m, fmt.Errorf("cluster: mesh-addr frame carries no address")
	}
	return m, nil
}

func decodeExecStart(b []byte) (execStart, error) {
	var m execStart
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad start frame: %w", err)
	}
	if err := execIdent(m.Job, m.Gen); err != nil {
		return m, err
	}
	s := m.Spec
	if s.P < 1 || s.P > maxExecGangWidth {
		return m, fmt.Errorf("cluster: start frame world width %d out of range", s.P)
	}
	if sp := s.Mixture; sp != nil {
		if sp.Train < 1 || sp.Train+sp.Test > maxExecSamples ||
			sp.Features < 1 || sp.Features > maxExecFeatures {
			return m, fmt.Errorf("cluster: start frame mixture %dx%d out of range", sp.Train+sp.Test, sp.Features)
		}
	} else if s.Dataset == "" {
		return m, fmt.Errorf("cluster: start frame names no dataset")
	}
	if len(m.Peers) < 1 || len(m.Peers) > maxExecGangWidth {
		return m, fmt.Errorf("cluster: start frame peer table of %d out of range", len(m.Peers))
	}
	if m.MeshRank < 0 || m.MeshRank >= len(m.Peers) {
		return m, fmt.Errorf("cluster: start frame mesh rank %d outside its %d-peer table", m.MeshRank, len(m.Peers))
	}
	for _, a := range m.Peers {
		if a == "" || len(a) > 256 {
			return m, fmt.Errorf("cluster: start frame peer table has an empty address")
		}
	}
	if len(m.Ranks) < 1 || len(m.Ranks) > s.P {
		return m, fmt.Errorf("cluster: start frame assigns %d ranks of %d", len(m.Ranks), s.P)
	}
	seen := map[int]bool{}
	for _, r := range m.Ranks {
		if r < 0 || r >= s.P || seen[r] {
			return m, fmt.Errorf("cluster: start frame shard rank %d invalid for p=%d", r, s.P)
		}
		seen[r] = true
	}
	if m.CheckpointEvery < 1 || m.CheckpointEvery > 1<<24 {
		return m, fmt.Errorf("cluster: start frame checkpoint cadence %d out of range", m.CheckpointEvery)
	}
	for r, blob := range m.Resume {
		if !seen[r] {
			return m, fmt.Errorf("cluster: start frame resumes rank %d it does not assign", r)
		}
		if _, err := smo.DecodeCheckpoint(blob); err != nil {
			return m, fmt.Errorf("cluster: start frame resume for rank %d: %w", r, err)
		}
	}
	return m, nil
}

func decodeExecCkpt(b []byte) (execCkpt, error) {
	var m execCkpt
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad checkpoint frame: %w", err)
	}
	if err := execIdent(m.Job, m.Gen); err != nil {
		return m, err
	}
	if m.Rank < 0 || m.Rank >= maxExecGangWidth {
		return m, fmt.Errorf("cluster: checkpoint frame rank %d out of range", m.Rank)
	}
	if m.Iters < 0 || m.VirtSec < 0 {
		return m, fmt.Errorf("cluster: checkpoint frame with negative progress")
	}
	ck, err := smo.DecodeCheckpoint(m.Blob)
	if err != nil {
		return m, fmt.Errorf("cluster: checkpoint frame blob: %w", err)
	}
	if ck.Iters != m.Iters {
		return m, fmt.Errorf("cluster: checkpoint frame iters %d disagree with blob %d", m.Iters, ck.Iters)
	}
	return m, nil
}

func decodeExecRankDone(b []byte) (execRankDone, error) {
	var m execRankDone
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad rank-done frame: %w", err)
	}
	if err := execIdent(m.Job, m.Gen); err != nil {
		return m, err
	}
	if m.Rank < 0 || m.Rank >= maxExecGangWidth {
		return m, fmt.Errorf("cluster: rank-done frame rank %d out of range", m.Rank)
	}
	if m.Iters < 0 || m.SVs < 0 || m.VirtSec < 0 {
		return m, fmt.Errorf("cluster: rank-done frame with negative stats")
	}
	if len(m.Model) == 0 || len(m.Model) > maxExecModelBytes {
		return m, fmt.Errorf("cluster: rank-done frame model of %d bytes out of range", len(m.Model))
	}
	if len(m.Center) < 1 || len(m.Center) > maxExecCenter {
		return m, fmt.Errorf("cluster: rank-done frame center of %d out of range", len(m.Center))
	}
	return m, nil
}

func decodeExecAbort(b []byte) (execAbort, error) {
	var m execAbort
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad abort frame: %w", err)
	}
	return m, execIdent(m.Job, m.Gen)
}

func decodeExecFail(b []byte) (execFail, error) {
	var m execFail
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("cluster: bad fail frame: %w", err)
	}
	if err := execIdent(m.Job, m.Gen); err != nil {
		return m, err
	}
	if m.Err == "" || len(m.Err) > 4096 {
		return m, fmt.Errorf("cluster: fail frame carries no error")
	}
	return m, nil
}
