package cluster

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"casvm/internal/core"
	"casvm/internal/tcpmpi"
)

// remoteSpec is the remote-execution test job: RA-CA (the one remote-capable
// method) over the shared test mixture, checkpointing often enough that a
// mid-epoch kill always finds a resume point.
func remoteSpec(id string, p int, train int, policy string) JobSpec {
	return JobSpec{
		ID: id, Mixture: testMixture(train), Method: string(core.MethodRACA),
		P: p, Seed: 1, CheckpointEvery: 4, Policy: policy, Remote: true,
	}
}

// referenceHash trains the spec's fault-free local reference with the
// identical parameter build and returns its ModelHash.
func referenceHash(t *testing.T, spec JobSpec) string {
	t.Helper()
	pr, ds, err := trainParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Train(ds.X, ds.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.ModelHash(out.Set)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// startExecutors runs n in-process executor workers against the
// coordinator — the race-instrumented coverage of the executor paths.
func startExecutors(t *testing.T, c *Coordinator, n int, delay time.Duration) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Errors are expected at shutdown (revocation, coordinator
			// close); the tests assert on job outcomes instead.
			_ = RunExecutor(ctx, c.Addr(), ExecutorOptions{Fleet: true, IterDelay: delay})
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
	waitFor(t, "executors registered", func() bool { return len(c.Workers()) >= n })
	return cancel
}

// TestRemoteJobRunsOnExecutors: a Remote job's shard solves run inside the
// executor workers, stream back over the leases, and assemble to the exact
// hash the in-process fault-free reference produces.
func TestRemoteJobRunsOnExecutors(t *testing.T) {
	spec := remoteSpec("remote", 3, 240, "shrink")
	want := referenceHash(t, spec)

	c := newTestCoordinator(t, time.Second)
	startExecutors(t, c, 3, 0)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("remote job never finished")
	}
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("remote job failed: %s", res.Err)
	}
	if res.ModelHash != want {
		t.Fatalf("remote hash %s != reference %s", res.ModelHash, want)
	}
	if res.FinalP != 3 || res.Generations != 1 || res.Recoveries != 0 {
		t.Fatalf("FinalP=%d Generations=%d Recoveries=%d, want 3/1/0",
			res.FinalP, res.Generations, res.Recoveries)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("remote accuracy %.3f", res.Accuracy)
	}
	if res.TotalSec <= 0 {
		t.Fatal("remote run carries no α–β virtual time")
	}
	if got := c.Metrics().Snapshot()["cluster_remote_generations_total"]; got != 1 {
		t.Fatalf("cluster_remote_generations_total=%v, want 1", got)
	}
	// The executors' fleet hellos reached the collector under this job id.
	waitFor(t, "fleet stream", func() bool {
		for _, job := range c.Fleet().Jobs() {
			if job == j.ID() {
				return true
			}
		}
		return false
	})
}

// killGangMemberMidEpoch waits until every rank has streamed a checkpoint
// and none has finished — the run is mid-epoch — then expires the last
// generation member's lease.
func killGangMemberMidEpoch(t *testing.T, c *Coordinator, j *Job) {
	t.Helper()
	waitFor(t, "all ranks mid-epoch with checkpoints", func() bool {
		p := j.Remote()
		return len(p.Workers) > 0 && len(p.CkptIters) >= j.Spec().P && len(p.DoneRanks) == 0
	})
	gang := j.Remote().Workers
	if err := c.Revoke(gang[len(gang)-1]); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteShrinkRecovery: losing an executor mid-epoch re-gangs the
// survivors from the streamed checkpoints — the dead worker's ranks resume
// on a survivor — and still lands on the fault-free hash, with the lost
// work α–β-priced.
func TestRemoteShrinkRecovery(t *testing.T) {
	spec := remoteSpec("shrink", 2, 240, "shrink")
	want := referenceHash(t, spec)

	c := newTestCoordinator(t, 500*time.Millisecond)
	startExecutors(t, c, 2, time.Millisecond)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool { return j.State() == JobRunning })
	killGangMemberMidEpoch(t, c, j)

	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("remote job never recovered")
	}
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("remote job failed: %s", res.Err)
	}
	if res.ModelHash != want {
		t.Fatalf("recovered hash %s != fault-free %s", res.ModelHash, want)
	}
	if res.Recoveries < 1 || res.Generations < 2 {
		t.Fatalf("Recoveries=%d Generations=%d, want >=1 and >=2", res.Recoveries, res.Generations)
	}
	if res.FinalP != 2 {
		t.Fatalf("FinalP=%d, want 2 (the model always carries P shards)", res.FinalP)
	}
	if len(res.LostRanks) == 0 {
		t.Fatal("recovery recorded no lost ranks")
	}
	// The re-gang is priced: the relaunch penalty alone dominates the
	// modeled compute on this dataset.
	pr, _, _ := trainParams(spec)
	if res.TotalSec < pr.Recovery.PenaltySec() {
		t.Fatalf("TotalSec=%.4f carries no recovery penalty (>= %.2f)", res.TotalSec, pr.Recovery.PenaltySec())
	}
}

// TestRemoteRespawnRecovery: under the respawn policy the job waits for a
// replacement worker to backfill the gang to full width, then re-gangs —
// and the replacement generation still converges to the fault-free hash.
func TestRemoteRespawnRecovery(t *testing.T) {
	spec := remoteSpec("respawn", 2, 240, "respawn")
	want := referenceHash(t, spec)

	c := newTestCoordinator(t, 500*time.Millisecond)
	startExecutors(t, c, 2, time.Millisecond)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool { return j.State() == JobRunning })
	killGangMemberMidEpoch(t, c, j)
	waitFor(t, "gang degraded", func() bool { return len(j.Gang()) == 1 })

	// The replacement executor backfills the fixed-width gang.
	startExecutors(t, c, 1, time.Millisecond)
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("respawn job never recovered")
	}
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("respawn job failed: %s", res.Err)
	}
	if res.ModelHash != want {
		t.Fatalf("respawned hash %s != fault-free %s", res.ModelHash, want)
	}
	if res.Recoveries < 1 || res.Generations < 2 {
		t.Fatalf("Recoveries=%d Generations=%d, want >=1 and >=2", res.Recoveries, res.Generations)
	}
}

// TestBeginGenerationCapsSurplusGang: a generation never gangs more
// workers than it has pending ranks. With surplus workers (respawn
// backfill after ranks finished, spares attached post-shrink) the mesh
// bootstrap would otherwise wait forever on addresses from members that
// were assigned nothing, burning the recovery budget on healthy workers.
func TestBeginGenerationCapsSurplusGang(t *testing.T) {
	j := &Job{spec: JobSpec{P: 3}}
	rr := newRemoteRun(j)
	rr.doneRank[0] = &core.ShardResult{}
	rr.doneRank[2] = &core.ShardResult{}

	gen, gang, assign, pending := rr.beginGeneration([]int{7, 8, 9})
	if len(pending) != 1 || pending[0] != 1 {
		t.Fatalf("pending = %v, want [1]", pending)
	}
	if len(gang) != 1 || gang[0] != 7 {
		t.Fatalf("generation gang = %v, want [7] (capped at pending ranks)", gang)
	}
	if len(assign) != 1 || len(assign[7]) != 1 || assign[7][0] != 1 {
		t.Fatalf("assignment = %v, want worker 7 -> [1]", assign)
	}
	// A surplus worker's mesh address is not expected — and not recorded.
	rr.onMeshAddr(9, execMeshAddr{Job: j.id, Gen: gen, Addr: "127.0.0.1:1"})
	rr.onMeshAddr(7, execMeshAddr{Job: j.id, Gen: gen, Addr: "127.0.0.1:2"})
	rr.mu.Lock()
	got := len(rr.meshAddr)
	rr.mu.Unlock()
	if got != 1 {
		t.Fatalf("meshAddr holds %d entries, want 1 (assigned workers only)", got)
	}
	rr.endGeneration()

	// At full width nothing is truncated: one rank per worker.
	rr2 := newRemoteRun(&Job{spec: JobSpec{P: 3}})
	_, gang2, assign2, _ := rr2.beginGeneration([]int{4, 5, 6})
	if len(gang2) != 3 || len(assign2) != 3 {
		t.Fatalf("full-width generation truncated: gang %v assign %v", gang2, assign2)
	}
}

// TestRemoteSurplusBackfillRecovers: respawn backfill after a rank already
// finished hands the next generation more workers than pending ranks. The
// generation must run on the truncated gang and land on the fault-free
// hash instead of timing out the mesh bootstrap until the recovery budget
// is exhausted.
func TestRemoteSurplusBackfillRecovers(t *testing.T) {
	spec := remoteSpec("surplus", 2, 240, "respawn")
	want := referenceHash(t, spec)

	c := newTestCoordinator(t, 500*time.Millisecond)
	// Asymmetric speeds: the fast worker finishes rank 0 while the slow
	// one is still mid-epoch on rank 1, so killing the slow worker leaves
	// exactly one pending rank for a full-width replacement gang.
	startExecutors(t, c, 1, 0)
	startExecutors(t, c, 1, 3*time.Millisecond)
	waitFor(t, "both executors registered", func() bool { return len(c.Workers()) == 2 })

	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rank 0 done, rank 1 mid-epoch with a checkpoint", func() bool {
		p := j.Remote()
		return len(p.DoneRanks) == 1 && p.DoneRanks[0] == 0 && p.CkptIters[1] > 0
	})
	gang := j.Remote().Workers
	if err := c.Revoke(gang[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gang degraded", func() bool { return len(j.Gang()) == 1 })

	// The replacement restores full width: 2 workers, 1 pending rank.
	startExecutors(t, c, 1, 0)
	waitFor(t, "gang backfilled", func() bool { return len(j.Gang()) == 2 })

	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("surplus-gang job never finished (progress %+v)", j.Remote())
	}
	res := j.Result()
	if res.Err != "" {
		t.Fatalf("surplus-gang job failed: %s", res.Err)
	}
	if res.ModelHash != want {
		t.Fatalf("surplus-gang hash %s != fault-free %s", res.ModelHash, want)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries=%d, want 1 (the revocation only)", res.Recoveries)
	}
}

// TestRemoteSpecValidation: remote execution is opt-in with hard
// prerequisites — RA-CA only, a live recovery policy, and enough samples
// to feed every rank.
func TestRemoteSpecValidation(t *testing.T) {
	c := newTestCoordinator(t, time.Second)
	for name, spec := range map[string]JobSpec{
		"non-raca method": {Mixture: testMixture(160), Method: string(core.MethodDisSMO), P: 2, Remote: true},
		"recovery off":    {Mixture: testMixture(160), Method: string(core.MethodRACA), P: 2, Policy: "off", Remote: true},
		"too few samples": {Mixture: testMixture(160), Method: string(core.MethodRACA), P: 4096, Remote: true},
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSubmitWithRetry: a coordinator that comes up after the first submit
// attempts — a restart mid-submit — must not fail the thin client.
func TestSubmitWithRetry(t *testing.T) {
	// Reserve an address the late coordinator will bind.
	probe, err := tcpmpi.NewRegistrar("localhost:0", tcpmpi.RegistrarConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	var mu sync.Mutex
	var coord *Coordinator
	go func() {
		time.Sleep(400 * time.Millisecond)
		c, err := New(addr, Config{LeaseTTL: time.Second, Logf: t.Logf})
		if err != nil {
			t.Logf("late coordinator: %v", err)
			return
		}
		mu.Lock()
		coord = c
		mu.Unlock()
		startExecutors(t, c, 1, 0)
	}()
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		if coord != nil {
			coord.Close()
		}
	})

	spec := JobSpec{ID: "retry", Mixture: testMixture(160), Method: string(core.MethodRACA), P: 1, Seed: 7}
	res, err := SubmitWithRetry(addr, spec, 120*time.Second, RetryConfig{
		Attempts: 10, BaseDelay: 100 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("SubmitWithRetry: %v", err)
	}
	if res.ModelHash == "" || res.Err != "" {
		t.Fatalf("retry result %+v", res)
	}

	// A job-level failure is NOT retried: the coordinator answered, and a
	// resubmission would double the work.
	if _, err := SubmitWithRetry(addr, JobSpec{Method: "nope", P: 1, Dataset: "toy"},
		30*time.Second, RetryConfig{Attempts: 3, BaseDelay: 50 * time.Millisecond}); err == nil {
		t.Fatal("bogus method accepted")
	} else if strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("job-level failure was retried: %v", err)
	}
}

// TestRemoteExecutorHelper is the re-exec entry point for the real-process
// tests: when CASVM_REMOTE_WORKER names a coordinator, this "test" is a
// worker process serving remote executions until its lease ends (or it is
// killed -9, which is the point).
func TestRemoteExecutorHelper(t *testing.T) {
	addr := os.Getenv("CASVM_REMOTE_WORKER")
	if addr == "" {
		t.Skip("re-exec helper for the kill -9 golden tests")
	}
	delay, _ := time.ParseDuration(os.Getenv("CASVM_EXEC_DELAY"))
	err := RunExecutor(context.Background(), addr, ExecutorOptions{Fleet: true, IterDelay: delay})
	t.Logf("executor lease ended: %v", err)
}

// spawnWorkerProcess forks this test binary as a real executor worker
// process registered with the coordinator.
func spawnWorkerProcess(t *testing.T, addr string, delay time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestRemoteExecutorHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CASVM_REMOTE_WORKER="+addr,
		"CASVM_EXEC_DELAY="+delay.String(),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	return cmd
}

// TestRemoteKillGolden is the acceptance scenario for real rank executors:
// a remote job runs on real worker processes, one dies mid-epoch, and both
// recovery policies re-gang from the streamed checkpoints to the
// fault-free ModelHash. The kill lands two ways — SIGKILL breaks the lease
// connection (a leave-on-break), SIGSTOP leaves it open but silent, so
// only the TTL failure detector can notice (a true lease expiry) — and
// both must drive the same recovery. Runs under -race via the race matrix.
func TestRemoteKillGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real worker processes")
	}
	cases := []struct {
		name, policy string
		stall        bool // SIGSTOP instead of SIGKILL
	}{
		{"shrink", "shrink", false},
		{"respawn", "respawn", false},
		{"shrink-stall", "shrink", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := remoteSpec("kill-"+tc.name, 2, 240, tc.policy)
			want := referenceHash(t, spec)

			c := newTestCoordinator(t, 500*time.Millisecond)
			spawnWorkerProcess(t, c.Addr(), 5*time.Millisecond)
			victim := spawnWorkerProcess(t, c.Addr(), 5*time.Millisecond)
			waitFor(t, "worker processes registered", func() bool { return len(c.Workers()) == 2 })

			j, err := c.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitFor(t, "all ranks mid-epoch with checkpoints", func() bool {
				p := j.Remote()
				return len(p.CkptIters) >= 2 && len(p.DoneRanks) == 0
			})
			if tc.stall {
				// The process freezes with its connection open: only the
				// TTL failure detector can declare it dead.
				if err := victim.Process.Signal(syscall.SIGSTOP); err != nil {
					t.Fatal(err)
				}
			} else {
				// SIGKILL: no cleanup, no goodbye — the OS tears the
				// lease connection down with the process.
				if err := victim.Process.Kill(); err != nil {
					t.Fatal(err)
				}
			}
			if tc.policy == "respawn" {
				// Respawn holds the gang at full width; a replacement
				// process must backfill before the next generation.
				waitFor(t, "gang degraded", func() bool { return len(j.Gang()) == 1 })
				spawnWorkerProcess(t, c.Addr(), 5*time.Millisecond)
			}

			select {
			case <-j.Done():
			case <-time.After(180 * time.Second):
				t.Fatalf("job never recovered from worker death (progress %+v)", j.Remote())
			}
			res := j.Result()
			if res.Err != "" {
				t.Fatalf("job failed after worker death: %s", res.Err)
			}
			if res.ModelHash != want {
				t.Fatalf("post-kill hash %s != fault-free %s", res.ModelHash, want)
			}
			if res.Recoveries < 1 || res.Generations < 2 {
				t.Fatalf("Recoveries=%d Generations=%d, want >=1 and >=2",
					res.Recoveries, res.Generations)
			}
			snap := c.Metrics().Snapshot()
			if tc.stall {
				if snap["cluster_lease_expiries_total"] < 1 {
					t.Fatalf("cluster_lease_expiries_total=%v; the stall never expired the lease",
						snap["cluster_lease_expiries_total"])
				}
			} else if snap["cluster_lease_expiries_total"]+snap["cluster_worker_leaves_total"] < 1 {
				t.Fatal("the kill never surfaced in the membership ledger")
			}
			t.Logf("%s: worker death recovered over %d generations (recoveries=%d lost=%v virt=%.4fs) to %s",
				tc.name, res.Generations, res.Recoveries, res.LostRanks, res.TotalSec, res.ModelHash[:12])
		})
	}
}
