package cluster

import (
	"sync"
	"time"

	"casvm/internal/mpi"
)

// elasticInjector translates cluster membership events into the fault
// machinery a training run already understands. It implements
// core.FaultInjector (a lease expiry becomes a rank crash at the next
// iteration poll) and core.ElasticSource (a worker joining mid-run becomes
// a scale-up request consumed at the next checkpoint epoch boundary).
//
// Workers are capacity tokens — the training world itself is modeled
// in-process — so the injector does not track which worker backs which
// rank. A death always fells the highest live rank and a join always
// appends new ranks, which keeps the coordinator's width accounting in
// lock-step with the recovery supervisor's re-partitioning and makes the
// injected fault sequence deterministic for a given membership-event
// order. Dis-SMO's trajectory is partition-independent, so which rank
// falls does not change the model it converges to.
type elasticInjector struct {
	mu     sync.Mutex
	width  int  // ranks in the current world, mirroring the supervisor
	shrink bool // shrink policy: a consumed kill narrows the world

	kills int // worker deaths not yet injected
	joins int // joined workers not yet offered as new ranks

	iters  int // rank-0 CrashCheck polls observed — a progress gauge
	killed int // kills consumed
	grown  int // join ranks consumed

	// throttle delays rank 0 by this much per iteration poll. Tests use
	// it to hold a run open long enough to drive membership churn
	// through deterministic checkpoints; production jobs leave it zero.
	throttle time.Duration
}

func newElasticInjector(width int, shrink bool) *elasticInjector {
	return &elasticInjector{width: width, shrink: shrink}
}

// Intercept passes every message through untouched: the cluster injects
// membership faults at iteration boundaries, never on the wire.
func (in *elasticInjector) Intercept(src, dst, tag int, data []byte) mpi.Verdict {
	return mpi.Verdict{}
}

// kill records one worker death for injection at the next iteration poll.
func (in *elasticInjector) kill() {
	in.mu.Lock()
	in.kills++
	in.mu.Unlock()
}

// addJoin records n joined workers for the next epoch-boundary JoinCheck.
func (in *elasticInjector) addJoin(n int) {
	in.mu.Lock()
	in.joins += n
	in.mu.Unlock()
}

// CrashCheck is polled by every rank each training iteration. A pending
// worker death is consumed by the current highest rank, which then crashes
// exactly as a schedule-driven "leave" would — the recovery supervisor
// sees an ordinary lease-expired CrashError and applies its policy.
func (in *elasticInjector) CrashCheck(rank, iter int) error {
	in.mu.Lock()
	if rank == 0 {
		in.iters++
	}
	th := in.throttle
	var err error
	if in.kills > 0 && rank == in.width-1 {
		in.kills--
		in.killed++
		if in.shrink {
			in.width--
		}
		err = &mpi.CrashError{Rank: rank, Iter: iter, Site: "lease expired"}
	}
	in.mu.Unlock()
	if th > 0 && rank == 0 {
		time.Sleep(th)
	}
	return err
}

// JoinCheck is polled at checkpoint epoch boundaries. It hands all pending
// joined workers to the supervisor at once, which widens the world by that
// many ranks before the next epoch.
func (in *elasticInjector) JoinCheck(iter int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.joins
	if n > 0 {
		in.joins = 0
		in.width += n
		in.grown += n
	}
	return n
}

// snapshot returns the injector's progress counters for tests and status
// reporting.
func (in *elasticInjector) snapshot() (iters, killed, grown, width int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.iters, in.killed, in.grown, in.width
}

func (in *elasticInjector) setThrottle(d time.Duration) {
	in.mu.Lock()
	in.throttle = d
	in.mu.Unlock()
}
