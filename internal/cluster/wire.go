package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"casvm/internal/tcpmpi"
)

// Control-frame tags on registration leases. Submissions arrive from
// client leases; results go back on the same lease. Errors ride the
// result frame (JobResult.Err) so a client only ever waits on one tag.
const (
	tagSubmit = 101 // client -> coordinator: JSON JobSpec
	tagResult = 102 // coordinator -> client: JSON JobResult
)

// onFrame handles control frames from lease holders: clients submit jobs,
// executors stream remote-execution frames (mesh addresses, checkpoints,
// finished shards) in the 103–109 block, and workers stream fleet
// telemetry (spans, metrics, epoch reports) in the 120–129 block.
func (c *Coordinator) onFrame(w tcpmpi.WorkerInfo, tag int, payload []byte) {
	if c.fleet.HandleFrame(w, tag, payload) {
		return
	}
	switch tag {
	case tagExecMeshAddr, tagExecCkpt, tagExecRankDone, tagExecFail:
		c.onExecFrame(w, tag, payload)
		return
	}
	if tag != tagSubmit {
		c.logf("cluster: ignoring frame tag %d from lease %d", tag, w.ID)
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		c.replyResult(w.ID, &JobResult{Err: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := c.Submit(spec)
	if err != nil {
		c.replyResult(w.ID, &JobResult{ID: spec.ID, Err: err.Error()})
		return
	}
	go func() {
		<-j.Done()
		c.replyResult(w.ID, j.Result())
	}()
}

func (c *Coordinator) replyResult(leaseID int, res *JobResult) {
	b, err := json.Marshal(res)
	if err == nil {
		err = c.reg.Send(leaseID, tagResult, b)
	}
	if err != nil {
		c.logf("cluster: result for lease %d undeliverable: %v", leaseID, err)
	}
}

// SubmitAndWait dials the coordinator at addr as a client, submits the
// spec, and blocks until the result comes back (timeout 0 = block
// indefinitely; the lease still fails fast if the coordinator dies). The
// returned JobResult is non-nil whenever the coordinator answered, even
// when err reports a failed job.
func SubmitAndWait(addr string, spec JobSpec, timeout time.Duration) (*JobResult, error) {
	l, err := tcpmpi.Register(addr, tcpmpi.RegisterOptions{Client: true})
	if err != nil {
		return nil, fmt.Errorf("cluster: register with %s: %w", addr, err)
	}
	defer l.Close()
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	if err := l.Send(tagSubmit, b); err != nil {
		return nil, fmt.Errorf("cluster: submit: %w", err)
	}
	b, err = l.Recv(tagResult, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: waiting for result: %w", err)
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("cluster: bad result frame: %w", err)
	}
	if res.Err != "" {
		return &res, errors.New(res.Err)
	}
	return &res, nil
}

// RetryConfig tunes SubmitWithRetry's capped exponential backoff.
type RetryConfig struct {
	// Attempts bounds registration/submission tries (0 = 5).
	Attempts int
	// BaseDelay is the first backoff (0 = 100ms); each retry doubles it
	// up to MaxDelay (0 = 2s), with up to 50% uniform jitter on top so
	// simultaneous clients do not re-dial in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter draws the backoff perturbation (nil = seeded from the
	// clock; tests inject a deterministic source).
	Jitter *rand.Rand
	// Logf receives one line per failed attempt (nil = silent).
	Logf func(format string, args ...any)
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.Attempts == 0 {
		r.Attempts = 5
	}
	if r.BaseDelay == 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay == 0 {
		r.MaxDelay = 2 * time.Second
	}
	if r.Jitter == nil {
		r.Jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return r
}

// SubmitWithRetry is SubmitAndWait hardened against a coordinator that is
// restarting: registration refusals and transport errors are retried with
// capped exponential backoff plus jitter. A result frame that reports a
// *job* failure is returned immediately — the coordinator answered;
// retrying would rerun a run that already failed on its merits.
//
// Every attempt carries the same idempotency key (spec.SubmitKey, drawn
// from rc.Jitter when the caller left it empty), so a retry after the
// submit frame landed — the coordinator may still be running the first
// job — reattaches to the in-flight job instead of double-running it.
func SubmitWithRetry(addr string, spec JobSpec, timeout time.Duration, rc RetryConfig) (*JobResult, error) {
	rc = rc.withDefaults()
	if spec.SubmitKey == "" {
		spec.SubmitKey = fmt.Sprintf("retry-%016x%016x", rc.Jitter.Uint64(), rc.Jitter.Uint64())
	}
	var lastErr error
	delay := rc.BaseDelay
	for attempt := 1; attempt <= rc.Attempts; attempt++ {
		res, err := SubmitAndWait(addr, spec, timeout)
		if err == nil || res != nil {
			// res != nil means the coordinator answered: the job ran and
			// failed, which no amount of resubmission fixes.
			return res, err
		}
		lastErr = err
		if attempt == rc.Attempts {
			break
		}
		sleep := delay + time.Duration(rc.Jitter.Int63n(int64(delay)/2+1))
		if rc.Logf != nil {
			rc.Logf("cluster: submit attempt %d/%d failed (%v); retrying in %v",
				attempt, rc.Attempts, err, sleep)
		}
		time.Sleep(sleep)
		if delay *= 2; delay > rc.MaxDelay {
			delay = rc.MaxDelay
		}
	}
	return nil, fmt.Errorf("cluster: submit to %s failed after %d attempts: %w", addr, rc.Attempts, lastErr)
}

// JoinWorker registers with the coordinator at addr as a worker and blocks
// until the lease ends (coordinator shutdown or revocation) or ctx is
// cancelled. It returns nil on a clean ctx-driven departure — the
// coordinator sees a leave, not an expiry.
func JoinWorker(ctx context.Context, addr string) error {
	l, err := tcpmpi.Register(addr, tcpmpi.RegisterOptions{})
	if err != nil {
		return fmt.Errorf("cluster: register with %s: %w", addr, err)
	}
	select {
	case <-ctx.Done():
		l.Close()
		return nil
	case <-l.Done():
		return l.Err()
	}
}
