package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"casvm/internal/tcpmpi"
)

// Control-frame tags on registration leases. Submissions arrive from
// client leases; results go back on the same lease. Errors ride the
// result frame (JobResult.Err) so a client only ever waits on one tag.
const (
	tagSubmit = 101 // client -> coordinator: JSON JobSpec
	tagResult = 102 // coordinator -> client: JSON JobResult
)

// onFrame handles control frames from lease holders: clients submit jobs,
// and workers stream fleet telemetry (spans, metrics, epoch reports) in
// the 120–129 tag block.
func (c *Coordinator) onFrame(w tcpmpi.WorkerInfo, tag int, payload []byte) {
	if c.fleet.HandleFrame(w, tag, payload) {
		return
	}
	if tag != tagSubmit {
		c.logf("cluster: ignoring frame tag %d from lease %d", tag, w.ID)
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		c.replyResult(w.ID, &JobResult{Err: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := c.Submit(spec)
	if err != nil {
		c.replyResult(w.ID, &JobResult{ID: spec.ID, Err: err.Error()})
		return
	}
	go func() {
		<-j.Done()
		c.replyResult(w.ID, j.Result())
	}()
}

func (c *Coordinator) replyResult(leaseID int, res *JobResult) {
	b, err := json.Marshal(res)
	if err == nil {
		err = c.reg.Send(leaseID, tagResult, b)
	}
	if err != nil {
		c.logf("cluster: result for lease %d undeliverable: %v", leaseID, err)
	}
}

// SubmitAndWait dials the coordinator at addr as a client, submits the
// spec, and blocks until the result comes back (timeout 0 = block
// indefinitely; the lease still fails fast if the coordinator dies). The
// returned JobResult is non-nil whenever the coordinator answered, even
// when err reports a failed job.
func SubmitAndWait(addr string, spec JobSpec, timeout time.Duration) (*JobResult, error) {
	l, err := tcpmpi.Register(addr, tcpmpi.RegisterOptions{Client: true})
	if err != nil {
		return nil, fmt.Errorf("cluster: register with %s: %w", addr, err)
	}
	defer l.Close()
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	if err := l.Send(tagSubmit, b); err != nil {
		return nil, fmt.Errorf("cluster: submit: %w", err)
	}
	b, err = l.Recv(tagResult, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: waiting for result: %w", err)
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("cluster: bad result frame: %w", err)
	}
	if res.Err != "" {
		return &res, errors.New(res.Err)
	}
	return &res, nil
}

// JoinWorker registers with the coordinator at addr as a worker and blocks
// until the lease ends (coordinator shutdown or revocation) or ctx is
// cancelled. It returns nil on a clean ctx-driven departure — the
// coordinator sees a leave, not an expiry.
func JoinWorker(ctx context.Context, addr string) error {
	l, err := tcpmpi.Register(addr, tcpmpi.RegisterOptions{})
	if err != nil {
		return fmt.Errorf("cluster: register with %s: %w", addr, err)
	}
	select {
	case <-ctx.Done():
		l.Close()
		return nil
	case <-l.Done():
		return l.Err()
	}
}
