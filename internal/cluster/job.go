package cluster

import (
	"fmt"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// JobSpec is a serializable training request: everything a coordinator
// needs to reproduce a run, and nothing tied to the submitting process.
// Datasets are named registry entries or inline synthetic specs so the
// spec stays a few hundred bytes on the wire.
type JobSpec struct {
	// ID labels the job; the coordinator suffixes it for uniqueness.
	ID string `json:"id,omitempty"`

	// SubmitKey is a client-chosen idempotency key: a resubmission
	// carrying a key the coordinator has already accepted attaches to the
	// existing job instead of starting a second run. Retrying clients
	// (SubmitWithRetry) use it so a transport failure after the submit
	// frame landed cannot double-run the work. "" = every submit is a new
	// job.
	SubmitKey string `json:"submit_key,omitempty"`

	// Dataset names a registered synthetic dataset (data.Names), scaled
	// by Scale (0 = 1.0). Mixture, when set, wins over Dataset and
	// generates a custom synthetic set instead.
	Dataset string            `json:"dataset,omitempty"`
	Scale   float64           `json:"scale,omitempty"`
	Mixture *data.MixtureSpec `json:"mixture,omitempty"`

	Method string `json:"method"`
	P      int    `json:"p"`

	C       float64 `json:"c,omitempty"`       // 0 = 1.0
	Gamma   float64 `json:"gamma,omitempty"`   // 0 = per-dataset heuristic
	Tol     float64 `json:"tol,omitempty"`     // 0 = 1e-3
	MaxIter int     `json:"max_iter,omitempty"`
	Seed    int64   `json:"seed,omitempty"` // 0 = the DefaultParams seed

	// Policy is the recovery policy ("shrink", "respawn", "off");
	// "" = shrink, the policy under which lease churn is survivable and
	// reversible. CheckpointEvery is the snapshot cadence (0 = 64).
	Policy          string `json:"policy,omitempty"`
	CheckpointEvery int    `json:"ckpt_every,omitempty"`

	// Remote executes each rank's shard solve inside the worker process
	// holding its lease instead of modeling the world in-process on the
	// coordinator. Only "ra-ca" qualifies — it is the one
	// communication-free method, so a shard needs no collectives beyond
	// the generation's start barrier — and the policy must allow
	// recovery, since remote worker death is a real fault, not a
	// simulated one.
	Remote bool `json:"remote,omitempty"`
}

func (s JobSpec) policy() core.RecoveryPolicy {
	if s.Policy == "" {
		return core.RecoverShrink
	}
	pol, err := core.ParseRecoveryPolicy(s.Policy)
	if err != nil {
		return core.RecoverShrink
	}
	return pol
}

// validate rejects specs the coordinator could not run.
func (s JobSpec) validate() error {
	if _, err := core.ParseMethod(s.Method); err != nil {
		return err
	}
	if s.P < 1 {
		return fmt.Errorf("cluster: job needs p >= 1, got %d", s.P)
	}
	if len(s.SubmitKey) > 128 {
		return fmt.Errorf("cluster: submit key of %d bytes out of range", len(s.SubmitKey))
	}
	if s.Policy != "" {
		if _, err := core.ParseRecoveryPolicy(s.Policy); err != nil {
			return err
		}
	}
	if s.Mixture == nil && s.Dataset == "" {
		return fmt.Errorf("cluster: job names no dataset")
	}
	ds, _, err := resolveDataset(s)
	if err != nil {
		return err
	}
	if s.Remote {
		if m, _ := core.ParseMethod(s.Method); m != core.MethodRACA {
			return fmt.Errorf("cluster: remote execution supports %q only, got %q", core.MethodRACA, s.Method)
		}
		if s.policy() == core.RecoverOff {
			return fmt.Errorf("cluster: remote execution needs a recovery policy (shrink or respawn)")
		}
		if ds.X.Rows() < s.P {
			return fmt.Errorf("cluster: %d samples cannot feed %d remote ranks", ds.X.Rows(), s.P)
		}
	}
	return nil
}

// resolveDataset materialises the spec's dataset and the RBF gamma to use.
func resolveDataset(s JobSpec) (*data.Dataset, float64, error) {
	g := s.Gamma
	var ds *data.Dataset
	var err error
	if s.Mixture != nil {
		if ds, err = data.Generate(*s.Mixture); err != nil {
			return nil, 0, err
		}
		if g == 0 {
			g = 1.0 / float64(ds.Features())
		}
		return ds, g, nil
	}
	scale := s.Scale
	if scale == 0 {
		scale = 1.0
	}
	var entry data.Entry
	if ds, entry, err = data.Load(s.Dataset, scale); err != nil {
		return nil, 0, err
	}
	if g == 0 {
		g = entry.GammaOrDefault()
	}
	return ds, g, nil
}

// trainParams builds the core training parameters a coordinator runs the
// spec with. Tests reuse it to produce bit-identical local reference runs.
func trainParams(s JobSpec) (core.Params, *data.Dataset, error) {
	m, err := core.ParseMethod(s.Method)
	if err != nil {
		return core.Params{}, nil, err
	}
	ds, gamma, err := resolveDataset(s)
	if err != nil {
		return core.Params{}, nil, err
	}
	pr := core.DefaultParams(m, s.P)
	if s.C != 0 {
		pr.C = s.C
	}
	if s.Tol != 0 {
		pr.Tol = s.Tol
	}
	pr.MaxIter = s.MaxIter
	if s.Seed != 0 {
		pr.Seed = s.Seed
	}
	pr.Kernel = kernel.RBF(gamma)
	pr.Recovery = core.Recovery{Policy: s.policy(), CheckpointEvery: s.CheckpointEvery}
	return pr, ds, nil
}

// JobState is a job's position in the supervision lifecycle.
type JobState int

// Job lifecycle states.
const (
	JobQueued  JobState = iota // waiting for a gang of Spec.P free workers
	JobRunning                 // training on an assigned gang
	JobDone                    // finished; Result has the model fingerprint
	JobFailed                  // finished with an error; Result.Err says why
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// JobResult is the wire-serializable outcome of a job: the run profile,
// the fault/elasticity ledger, and the model fingerprint that lets any
// party check the run against a local reference.
type JobResult struct {
	ID      string `json:"id"`
	Method  string `json:"method"`
	Dataset string `json:"dataset,omitempty"`

	P      int `json:"p"`       // requested gang width
	FinalP int `json:"final_p"` // world width at completion

	Iters    int     `json:"iters,omitempty"`
	SVs      int     `json:"svs,omitempty"`
	Accuracy float64 `json:"accuracy,omitempty"`
	TotalSec float64 `json:"total_sec,omitempty"` // modeled virtual time
	WallSec  float64 `json:"wall_sec,omitempty"`

	Recoveries  int    `json:"recoveries,omitempty"`
	LostRanks   []int  `json:"lost_ranks,omitempty"`
	Grows       int    `json:"grows,omitempty"`
	JoinedRanks int    `json:"joined_ranks,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
	Generations int    `json:"generations,omitempty"` // remote jobs: gang generations dispatched
	ModelHash   string `json:"model_hash,omitempty"`

	Err string `json:"error,omitempty"`
}

// Job is one supervised training run inside a coordinator. All mutable
// state is guarded by the owning coordinator's lock; accessors take it.
type Job struct {
	c    *Coordinator
	id   string
	spec JobSpec

	inj     *elasticInjector
	remote  *remoteRun         // non-nil iff spec.Remote; own lock
	metrics *trace.Registry    // per-job namespace, fed to Params.Metrics
	ring    *smo.TelemetryRing // per-job convergence stream
	done    chan struct{}

	// guarded by c.mu
	state  JobState
	gang   []int // live worker ids assigned to this job
	result *JobResult
}

// ID returns the coordinator-assigned unique job id.
func (j *Job) ID() string { return j.id }

// Spec returns the submitted job spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Done is closed when the job reaches JobDone or JobFailed.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's lifecycle state.
func (j *Job) State() JobState {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return j.state
}

// Gang returns the worker ids currently backing the job.
func (j *Job) Gang() []int {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return append([]int(nil), j.gang...)
}

// Result returns the job outcome, or nil while the job is queued or
// running.
func (j *Job) Result() *JobResult {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	return j.result
}

// Metrics is the job's private metrics registry (solver counters plus the
// run's recovery/grow counters) — one namespace per job for the telemetry
// server.
func (j *Job) Metrics() *trace.Registry { return j.metrics }

// Ring is the job's live convergence stream (one sample per solver
// iteration per rank).
func (j *Job) Ring() *smo.TelemetryRing { return j.ring }
