package cluster

import (
	"bytes"
	"testing"
	"time"

	"casvm/internal/core"
	"casvm/internal/tcpmpi"
	"casvm/internal/telemetry/fleet"
	"casvm/internal/trace"
)

// TestFleetFramesOverCoordinator is the wiring test for the fleet plane on
// the real cluster coordinator: a worker lease ships hello, spans, metrics
// and epoch reports over the same connection that makes it gang capacity,
// and the coordinator routes them to its collector — including federation
// into a finished job's /jobs/<id>/metrics registry and the OnJobDone hook
// casvm-cluster persists merged traces from.
func TestFleetFramesOverCoordinator(t *testing.T) {
	doneJobs := make(chan *Job, 4)
	c, err := New("localhost:0", Config{
		LeaseTTL:  time.Second,
		Logf:      t.Logf,
		Straggler: fleet.StragglerConfig{Factor: 1.5, MinRanks: 3},
		OnJobDone: func(j *Job) { doneJobs <- j },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// A real job, so the federated fleet_* gauges land in the registry
	// the telemetry server serves under /jobs/<id>/metrics.
	spec := JobSpec{ID: "fleet", Mixture: testMixture(160), Method: string(core.MethodRACA), P: 1, Seed: 1}
	registerWorkers(t, c, 1)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case dj := <-doneJobs:
		if dj != j {
			t.Fatalf("OnJobDone delivered %v, want %v", dj.ID(), j.ID())
		}
	case <-j.Done():
		// finishJob calls the hook before Done observers run their next
		// poll, but either order is fine — drain the hook now.
		select {
		case <-doneJobs:
		case <-time.After(5 * time.Second):
			t.Fatal("OnJobDone never fired")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job never finished")
	}

	// Three fleet leases report against the finished job's id: spans on
	// rank 0, a metric snapshot each, and epoch durations with rank 2
	// running 4× the median.
	jobID := j.ID()
	for rank := 0; rank < 3; rank++ {
		l, err := tcpmpi.Register(c.Addr(), tcpmpi.RegisterOptions{Client: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		rep, err := fleet.NewReporter(l, jobID, rank, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rank == 0 {
			tl := trace.NewTimeline(3)
			tl.Rank(0).AddEvent(trace.Event{
				Name: "scan", Cat: trace.CatSolver, Rank: 0,
				WallStartNs: time.Now().UnixNano(), WallDurNs: int64(time.Millisecond),
			})
			if err := rep.ShipTimeline(tl, 10*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		mreg := trace.NewRegistry()
		mreg.Counter("casvm_iterations_total", "").Add(int64(10 * (rank + 1)))
		if err := rep.ShipMetrics(mreg); err != nil {
			t.Fatal(err)
		}
		d := 100 * time.Millisecond
		if rank == 2 {
			d = 400 * time.Millisecond
		}
		if err := rep.ReportEpoch(0, d); err != nil {
			t.Fatal(err)
		}
	}

	fl := c.Fleet()
	waitFor(t, "spans and straggler ingested", func() bool {
		ev, _ := fl.Events(0)
		return fl.HasTrace(jobID) && len(ev) == 1
	})
	ev, _ := fl.Events(0)
	if ev[0].Rank != 2 || ev[0].Job != jobID {
		t.Fatalf("straggler event %+v", ev[0])
	}

	waitFor(t, "metrics federated", func() bool {
		return j.Metrics().Snapshot()["fleet_casvm_iterations_total"] == 60
	})
	snap := c.Metrics().Snapshot()
	if snap["fleet_casvm_iterations_total"] != 60 {
		t.Fatalf("fleet-level federated sum %v, want 60", snap["fleet_casvm_iterations_total"])
	}
	if snap["cluster_straggler_detections_total"] != 1 {
		t.Fatalf("straggler total %v, want 1", snap["cluster_straggler_detections_total"])
	}
	if j.Metrics().Snapshot()["cluster_straggler_detections_total"] != 1 {
		t.Fatal("straggler count missing from the job registry")
	}

	var buf bytes.Buffer
	if err := fl.WriteMergedTrace(jobID, &buf); err != nil {
		t.Fatal(err)
	}
	x, err := trace.ReadTraceExtra(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if x.Timebase != trace.TimebaseWall || x.P != 3 {
		t.Fatalf("merged trace: timebase=%q p=%d", x.Timebase, x.P)
	}

	// Job-control traffic still works with the fleet routing in front.
	if _, err := SubmitAndWait(c.Addr(), JobSpec{
		Mixture: testMixture(160), Method: string(core.MethodRACA), P: 1, Seed: 1,
	}, 60*time.Second); err != nil {
		t.Fatalf("submit after fleet traffic: %v", err)
	}
}
