package data

import (
	"fmt"
	"math"
	"math/rand"

	"casvm/internal/la"
)

// GenerateMulticlass draws a clustered K-class dataset: the spec's Gaussian
// mixture with cluster c labelled class c mod classes, and LabelNoise of
// the labels reassigned uniformly at random. Labels are 0 … classes−1.
// Train/test splitting follows the spec's Train/Test counts. PosFrac and
// Margin are ignored (they are binary-boundary concepts).
func GenerateMulticlass(spec MixtureSpec, classes int) (trainX *la.Matrix, trainY []float64, testX *la.Matrix, testY []float64, err error) {
	if classes < 2 {
		return nil, nil, nil, nil, fmt.Errorf("data: multiclass needs ≥2 classes")
	}
	if spec.Clusters < classes {
		return nil, nil, nil, nil, fmt.Errorf("data: %d clusters cannot host %d classes", spec.Clusters, classes)
	}
	if spec.Train < 1 || spec.Features < 1 {
		return nil, nil, nil, nil, fmt.Errorf("data: bad multiclass spec %q", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	total := spec.Train + spec.Test
	n := spec.Features
	k := spec.Clusters

	centers := make([][]float64, k)
	for c := 0; c < k; c++ {
		centers[c] = make([]float64, n)
		var norm float64
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64()
			norm += centers[c][j] * centers[c][j]
		}
		norm = math.Sqrt(norm)
		for j := range centers[c] {
			centers[c][j] *= spec.Separation / norm
		}
	}

	dataBuf := make([]float64, total*n)
	y := make([]float64, total)
	for i := 0; i < total; i++ {
		c := rng.Intn(k)
		row := dataBuf[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = centers[c][j] + spec.Noise*rng.NormFloat64()
		}
		if spec.LabelNoise > 0 && rng.Float64() < spec.LabelNoise {
			y[i] = float64(rng.Intn(classes))
		} else {
			y[i] = float64(c % classes)
		}
	}
	x := la.NewDense(total, n, dataBuf)
	perm := rng.Perm(total)
	trainRows, testRows := perm[:spec.Train], perm[spec.Train:]
	trainX = x.Subset(trainRows)
	trainY = make([]float64, len(trainRows))
	for t, i := range trainRows {
		trainY[t] = y[i]
	}
	if spec.Test > 0 {
		testX = x.Subset(testRows)
		testY = make([]float64, len(testRows))
		for t, i := range testRows {
			testY[t] = y[i]
		}
	}
	return trainX, trainY, testX, testY, nil
}
