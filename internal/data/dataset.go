// Package data provides dataset handling for the CA-SVM reproduction:
// LIBSVM-format reading and writing, train/test splitting, and synthetic
// generators that reproduce the statistical fingerprint of each dataset in
// the paper's Table XII (sample/feature scale, class imbalance, cluster
// structure, sparsity) at laptop scale.
package data

import (
	"fmt"
	"math/rand"

	"casvm/internal/la"
)

// Dataset is a labelled train/test pair. Labels are ±1.
type Dataset struct {
	Name  string
	X     *la.Matrix
	Y     []float64
	TestX *la.Matrix
	TestY []float64
}

// M returns the number of training samples.
func (d *Dataset) M() int { return d.X.Rows() }

// Features returns the dimensionality.
func (d *Dataset) Features() int { return d.X.Features() }

// PosFrac returns the fraction of positive training labels.
func (d *Dataset) PosFrac() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	pos := 0
	for _, v := range d.Y {
		if v > 0 {
			pos++
		}
	}
	return float64(pos) / float64(len(d.Y))
}

// Validate checks the internal consistency of the dataset.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("data: %s: nil X", d.Name)
	}
	if d.X.Rows() != len(d.Y) {
		return fmt.Errorf("data: %s: %d samples, %d labels", d.Name, d.X.Rows(), len(d.Y))
	}
	for i, v := range d.Y {
		if v != 1 && v != -1 {
			return fmt.Errorf("data: %s: label[%d]=%v", d.Name, i, v)
		}
	}
	if d.TestX != nil {
		if d.TestX.Rows() != len(d.TestY) {
			return fmt.Errorf("data: %s: %d test samples, %d labels", d.Name, d.TestX.Rows(), len(d.TestY))
		}
		if d.TestX.Features() != d.X.Features() {
			return fmt.Errorf("data: %s: feature mismatch train %d test %d", d.Name, d.X.Features(), d.TestX.Features())
		}
	}
	return nil
}

// Shuffle permutes the training samples in place (labels follow), using
// rng. Shuffling matters for block distributions (casvm1) so rank blocks
// are unbiased.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	m := d.X.Rows()
	perm := rng.Perm(m)
	d.X = d.X.Subset(perm)
	ny := make([]float64, m)
	for k, i := range perm {
		ny[k] = d.Y[i]
	}
	d.Y = ny
}

// Split divides the training samples into a train/test pair with testFrac
// of samples held out (at least 1 when testFrac > 0), after shuffling.
func Split(x *la.Matrix, y []float64, testFrac float64, rng *rand.Rand) (trainX *la.Matrix, trainY []float64, testX *la.Matrix, testY []float64) {
	m := x.Rows()
	nTest := int(float64(m) * testFrac)
	if testFrac > 0 && nTest == 0 {
		nTest = 1
	}
	perm := rng.Perm(m)
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	trainX = x.Subset(trainIdx)
	testX = x.Subset(testIdx)
	trainY = make([]float64, len(trainIdx))
	for k, i := range trainIdx {
		trainY[k] = y[i]
	}
	testY = make([]float64, len(testIdx))
	for k, i := range testIdx {
		testY[k] = y[i]
	}
	return
}

// Binarize maps arbitrary numeric labels onto ±1: values > threshold become
// +1, the rest −1.
func Binarize(y []float64, threshold float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v > threshold {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
