package data

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casvm/internal/la"
)

// requireSameParse asserts two (matrix, labels) parses are identical:
// shapes, labels, and every stored (index, value) pair.
func requireSameParse(t *testing.T, x *la.Matrix, y []float64, sx *la.Matrix, sy []float64) {
	t.Helper()
	if x.Rows() != sx.Rows() || x.Features() != sx.Features() {
		t.Fatalf("shape %dx%d vs %dx%d", x.Rows(), x.Features(), sx.Rows(), sx.Features())
	}
	if len(y) != len(sy) {
		t.Fatalf("labels %d vs %d", len(y), len(sy))
	}
	for i := range y {
		if y[i] != sy[i] && !(y[i] != y[i] && sy[i] != sy[i]) { // NaN labels compare equal
			t.Fatalf("label[%d] %v vs %v", i, y[i], sy[i])
		}
	}
	for i := 0; i < x.Rows(); i++ {
		ix, vx := x.SparseRow(i)
		si, sv := sx.SparseRow(i)
		if len(ix) != len(si) {
			t.Fatalf("row %d nnz %d vs %d", i, len(ix), len(si))
		}
		for k := range ix {
			if ix[k] != si[k] || (vx[k] != sv[k] && !(vx[k] != vx[k] && sv[k] != sv[k])) {
				t.Fatalf("row %d pair %d: (%d,%v) vs (%d,%v)", i, k, ix[k], vx[k], si[k], sv[k])
			}
		}
	}
}

// TestStreamMatchesGrowReader runs both readers over representative inputs
// — sorted, unsorted, comments, blank lines, explicit zeros, exotic
// whitespace — and over the same inputs' error cases.
func TestStreamMatchesGrowReader(t *testing.T) {
	accepts := []string{
		"",
		"+1 1:0.5 3:2.0\n-1 2:1\n",
		"1 5:5 2:2 9:9\n", // unsorted row: sort path
		"1\n-1\n",         // label-only rows
		"1 1:0 2:3\n",     // explicit zero dropped
		"# leading comment\n1 1:1 # trailing\n\n\n-1 2:2\n",
		"1\t2:4\t7:1\n",        // tabs
		"1 2:4\n",              // NBSP is a Fields separator too
		"+1 1:nan 2:inf\n",     // special values
		"3.5 1:1\n-2 2:1\n",    // non-binary labels pass through
		"1 10:1e-300 2:-0.0\n", // negative zero is nonzero bits but v==0
		strings.Repeat("1 1:1 3:2 9:-4\n", 200),
	}
	for i, in := range accepts {
		x, y, err := ReadLIBSVM(strings.NewReader(in), 3)
		if err != nil {
			t.Fatalf("case %d: grow reader: %v", i, err)
		}
		sx, sy, serr := ReadLIBSVMStream(strings.NewReader(in), 3)
		if serr != nil {
			t.Fatalf("case %d: stream reader: %v", i, serr)
		}
		requireSameParse(t, x, y, sx, sy)
	}
	rejects := []string{
		"abc\n",
		"1 0:1\n",
		"1 1:1 1:2\n", // duplicate sorted
		"1 5:1 5:2\n", // duplicate detected after sort
		"1 :5\n",      // empty index
		"1 2:\n",      // empty value
		"1 x:1\n",
		"1 2:y\n",
		"1 -3:1\n",
	}
	for i, in := range rejects {
		if _, _, err := ReadLIBSVM(strings.NewReader(in), 0); err == nil {
			t.Fatalf("reject case %d: grow reader accepted", i)
		}
		if _, _, err := ReadLIBSVMStream(strings.NewReader(in), 0); err == nil {
			t.Fatalf("reject case %d: stream reader accepted", i)
		}
	}
}

func TestStreamMatchesGrowRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "%d", 2*rng.Intn(2)-1)
		col := 0
		for j := 0; j < rng.Intn(20); j++ {
			col += 1 + rng.Intn(50)
			fmt.Fprintf(&b, " %d:%g", col, rng.NormFloat64())
		}
		b.WriteByte('\n')
	}
	in := b.String()
	x, y, err := ReadLIBSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	sx, sy, serr := ReadLIBSVMStream(strings.NewReader(in), 0)
	if serr != nil {
		t.Fatal(serr)
	}
	requireSameParse(t, x, y, sx, sy)
}

func TestLoadLIBSVMFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.svm")
	if err := os.WriteFile(path, []byte("+1 1:1 3:2\n-1 2:-1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	x, y, err := LoadLIBSVMFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 2 || x.Features() != 3 || y[0] != 1 || y[1] != -1 {
		t.Fatalf("parse: %dx%d %v", x.Rows(), x.Features(), y)
	}
	if _, _, err := LoadLIBSVMFile(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("missing file should error")
	}
}

// BenchmarkLoadLIBSVM guards the streaming reader's raison d'être: same
// parse, fewer and flatter allocations than the slice-growing reader.
func BenchmarkLoadLIBSVM(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, "%d", 2*rng.Intn(2)-1)
		col := 0
		for j := 0; j < 30; j++ {
			col += 1 + rng.Intn(30)
			fmt.Fprintf(&sb, " %d:%.6f", col, rng.NormFloat64())
		}
		sb.WriteByte('\n')
	}
	in := sb.String()
	b.Run("grow", func(b *testing.B) {
		b.SetBytes(int64(len(in)))
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, _, err := ReadLIBSVM(strings.NewReader(in), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(in)))
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, _, err := ReadLIBSVMStream(strings.NewReader(in), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
