package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"casvm/internal/la"
)

// MixtureSpec describes a synthetic Gaussian-mixture classification
// dataset. Samples are drawn from Clusters isotropic Gaussians; within each
// cluster the label is decided by a random local hyperplane whose offset is
// tuned so the cluster's positive fraction matches PosFrac. This makes the
// decision boundary locally simple (so a Gaussian-kernel SVM can learn it)
// while keeping the global geometry clustered — the locality property the
// CP/CA-SVM methods exploit (§IV-A).
type MixtureSpec struct {
	Name     string
	Train    int // training samples
	Test     int // held-out samples
	Features int
	Clusters int
	// Separation scales the distance of cluster centers from the origin;
	// Noise is the within-cluster standard deviation.
	Separation float64
	Noise      float64
	// PosFrac is the positive-label fraction per cluster. One value
	// applies to every cluster; otherwise len must equal Clusters.
	// Uneven values recreate the face-dataset imbalance of Table VII.
	PosFrac []float64
	// LabelNoise flips this fraction of labels at random, controlling how
	// hard the problem is (and how many SMO iterations it takes).
	LabelNoise float64
	// Margin pushes samples that land within Margin standard deviations
	// of their cluster's label boundary away from it, creating a margin
	// band. A nonzero margin makes the boundary learnable from small
	// per-node subsamples — the regime the paper's large datasets are in,
	// where CA-SVM's random partitions lose almost no accuracy.
	Margin float64
	// Sparse selects CSR output with roughly Density·Features nonzeros
	// per row (webspam-like data).
	Sparse  bool
	Density float64
	Seed    int64
}

func (s MixtureSpec) validate() error {
	if s.Train < 1 || s.Features < 1 || s.Clusters < 1 {
		return fmt.Errorf("data: bad spec %q: train=%d features=%d clusters=%d", s.Name, s.Train, s.Features, s.Clusters)
	}
	if len(s.PosFrac) != 1 && len(s.PosFrac) != s.Clusters {
		return fmt.Errorf("data: spec %q: PosFrac has %d entries, want 1 or %d", s.Name, len(s.PosFrac), s.Clusters)
	}
	for _, f := range s.PosFrac {
		if f < 0 || f > 1 {
			return fmt.Errorf("data: spec %q: PosFrac %v outside [0,1]", s.Name, f)
		}
	}
	if s.Sparse && (s.Density <= 0 || s.Density > 1) {
		return fmt.Errorf("data: spec %q: sparse needs density in (0,1], got %v", s.Name, s.Density)
	}
	return nil
}

func (s MixtureSpec) posFrac(c int) float64 {
	if len(s.PosFrac) == 1 {
		return s.PosFrac[0]
	}
	return s.PosFrac[c]
}

// Generate materialises the spec into a Dataset with Train training and
// Test held-out samples. Generation is deterministic in Seed.
func Generate(spec MixtureSpec) (*Dataset, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	total := spec.Train + spec.Test
	n := spec.Features
	k := spec.Clusters

	// Cluster centers: random directions at radius Separation. For sparse
	// data each cluster gets its own support set of ~Density·n columns.
	centers := make([][]float64, k) // dense center (sparse: values on support only)
	supports := make([][]int32, k)  // sparse: sorted support columns
	hyperW := make([][]float64, k)  // local label hyperplane (unit norm)
	for c := 0; c < k; c++ {
		if spec.Sparse {
			nnz := int(spec.Density * float64(n))
			if nnz < 2 {
				nnz = 2
			}
			supports[c] = randomSupport(rng, n, nnz)
			centers[c] = make([]float64, nnz)
			hyperW[c] = make([]float64, nnz)
		} else {
			centers[c] = make([]float64, n)
			hyperW[c] = make([]float64, n)
		}
		var norm float64
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64()
			norm += centers[c][j] * centers[c][j]
		}
		norm = math.Sqrt(norm)
		for j := range centers[c] {
			centers[c][j] *= spec.Separation / norm
		}
		var wn float64
		for j := range hyperW[c] {
			hyperW[c][j] = rng.NormFloat64()
			wn += hyperW[c][j] * hyperW[c][j]
		}
		wn = math.Sqrt(wn)
		for j := range hyperW[c] {
			hyperW[c][j] /= wn
		}
	}

	y := make([]float64, total)
	assignCluster := make([]int, total)
	for i := range assignCluster {
		assignCluster[i] = rng.Intn(k)
	}

	var x *la.Matrix
	if spec.Sparse {
		rowptr := make([]int32, total+1)
		var idx []int32
		var val []float64
		for i := 0; i < total; i++ {
			c := assignCluster[i]
			sup := supports[c]
			base := len(val)
			var t float64 // projection onto the local hyperplane, in σ units
			for j := range sup {
				noise := spec.Noise * rng.NormFloat64()
				v := centers[c][j] + noise
				t += hyperW[c][j] * noise / spec.Noise
				idx = append(idx, sup[j])
				val = append(val, v)
			}
			t = applyMargin(val[base:], hyperW[c], t, spec, c)
			rowptr[i+1] = int32(len(idx))
			y[i] = labelFromProjection(t, spec.posFrac(c), spec.LabelNoise, rng)
		}
		x = la.NewSparse(total, n, rowptr, idx, val)
	} else {
		dataBuf := make([]float64, total*n)
		for i := 0; i < total; i++ {
			c := assignCluster[i]
			row := dataBuf[i*n : (i+1)*n]
			var t float64
			for j := 0; j < n; j++ {
				noise := spec.Noise * rng.NormFloat64()
				row[j] = centers[c][j] + noise
				t += hyperW[c][j] * noise / spec.Noise
			}
			t = applyMargin(row, hyperW[c], t, spec, c)
			y[i] = labelFromProjection(t, spec.posFrac(c), spec.LabelNoise, rng)
		}
		x = la.NewDense(total, n, dataBuf)
	}

	d := &Dataset{Name: spec.Name}
	rows := rng.Perm(total)
	trainRows, testRows := rows[:spec.Train], rows[spec.Train:]
	d.X = x.Subset(trainRows)
	d.Y = make([]float64, len(trainRows))
	for t, i := range trainRows {
		d.Y[t] = y[i]
	}
	if spec.Test > 0 {
		d.TestX = x.Subset(testRows)
		d.TestY = make([]float64, len(testRows))
		for t, i := range testRows {
			d.TestY[t] = y[i]
		}
	}
	return d, d.Validate()
}

// applyMargin shifts a sample whose boundary projection t (σ units) falls
// within spec.Margin of its cluster's label threshold away from the
// threshold along the hyperplane normal, and returns the adjusted t.
func applyMargin(row, w []float64, t float64, spec MixtureSpec, c int) float64 {
	if spec.Margin <= 0 {
		return t
	}
	pf := spec.posFrac(c)
	if pf <= 0 || pf >= 1 {
		return t
	}
	z := normQuantile(1 - pf)
	d := t - z
	ad := d
	if ad < 0 {
		ad = -ad
	}
	if ad >= spec.Margin {
		return t
	}
	shift := spec.Margin - ad
	if d < 0 {
		shift = -shift
	} else if d == 0 {
		// Exactly on the boundary: push to the positive side.
		shift = spec.Margin
	}
	for j := range row {
		row[j] += spec.Noise * shift * w[j]
	}
	return t + shift
}

// labelFromProjection converts a standard-normal projection t into a ±1
// label: positive when t exceeds the (1−posFrac) normal quantile, then
// flipped with probability labelNoise.
func labelFromProjection(t, posFrac, labelNoise float64, rng *rand.Rand) float64 {
	var lab float64
	switch {
	case posFrac <= 0:
		lab = -1
	case posFrac >= 1:
		lab = 1
	default:
		if t > normQuantile(1-posFrac) {
			lab = 1
		} else {
			lab = -1
		}
	}
	if labelNoise > 0 && rng.Float64() < labelNoise {
		lab = -lab
	}
	return lab
}

// randomSupport picks nnz distinct sorted columns out of n.
func randomSupport(rng *rand.Rand, n, nnz int) []int32 {
	if nnz > n {
		nnz = n
	}
	perm := rng.Perm(n)[:nnz]
	sort.Ints(perm)
	out := make([]int32, nnz)
	for i, v := range perm {
		out[i] = int32(v)
	}
	return out
}

// normQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, |ε| < 1.15e-9), used to hit the requested class fractions.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
