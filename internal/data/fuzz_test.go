package data

import (
	"strings"
	"testing"
)

// FuzzReadLIBSVM asserts the LIBSVM parser never panics and that whatever
// it accepts is internally consistent. Run with `go test -fuzz
// FuzzReadLIBSVM ./internal/data` for extended exploration; the seed
// corpus runs in normal test mode.
func FuzzReadLIBSVM(f *testing.F) {
	seeds := []string{
		"",
		"+1 1:0.5 3:2.0\n-1 2:1\n",
		"1\n",
		"abc\n",
		"1 0:1\n",
		"1 1:1 1:2\n",
		"1 999999:1\n",
		"-1 2:1e300\n# comment only\n",
		"+1 1:nan\n",
		strings.Repeat("1 1:1\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		x, y, err := ReadLIBSVM(strings.NewReader(in), 0)
		sx, sy, serr := ReadLIBSVMStream(strings.NewReader(in), 0)
		if err != nil {
			// The streaming reader must reject exactly the same inputs.
			if serr == nil {
				t.Fatalf("stream accepted input the grow reader rejects: %v", err)
			}
			return
		}
		if serr != nil {
			t.Fatalf("stream rejected input the grow reader accepts: %v", serr)
		}
		if x.Rows() != len(y) {
			t.Fatalf("rows %d != labels %d", x.Rows(), len(y))
		}
		// Every stored index must be in range and rows sorted.
		for i := 0; i < x.Rows(); i++ {
			ix, _ := x.SparseRow(i)
			for k, col := range ix {
				if int(col) >= x.Features() || col < 0 {
					t.Fatalf("row %d col %d out of range %d", i, col, x.Features())
				}
				if k > 0 && ix[k-1] >= col {
					t.Fatalf("row %d indices not strictly increasing", i)
				}
			}
		}
		requireSameParse(t, x, y, sx, sy)
	})
}
