package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"unicode"
	"unicode/utf8"

	"casvm/internal/la"
)

// ReadLIBSVMStream parses the same LIBSVM format as ReadLIBSVM but in two
// passes over a seekable source: the first pass counts rows and feature
// pairs, the second fills CSR arrays allocated exactly once. No per-line
// field slices, no append-grown global slices — the only steady-state
// allocation is the scanner's line buffer, which is what lets this scale
// to webspam-sized files without doubling peak memory.
//
// The result is identical to ReadLIBSVM on any input, including the error
// cases (bad labels/indices/values, duplicate indices) — the equivalence
// test and fuzz harness pin that.
func ReadLIBSVMStream(rs io.ReadSeeker, minFeatures int) (*la.Matrix, []float64, error) {
	rows, pairBound, err := countLIBSVM(rs)
	if err != nil {
		return nil, nil, err
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("data: rewind: %v", err)
	}

	var (
		rowptr = make([]int32, 1, rows+1)
		idx    = make([]int32, 0, pairBound)
		val    = make([]float64, 0, pairBound)
		y      = make([]float64, 0, rows)
		maxCol = minFeatures - 1
		lineNo = 0
	)
	sc := bufio.NewScanner(rs)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		lineNo++
		line := trimComment(sc.Text())
		pos := skipSpace(line, 0)
		if pos == len(line) {
			continue
		}
		end := fieldEnd(line, pos)
		label, err := strconv.ParseFloat(line[pos:end], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("data: line %d: bad label %q: %v", lineNo, line[pos:end], err)
		}
		y = append(y, label)
		rowStart := len(idx)
		sorted := true
		for pos = skipSpace(line, end); pos < len(line); pos = skipSpace(line, end) {
			end = fieldEnd(line, pos)
			f := line[pos:end]
			colon := indexColon(f)
			if colon <= 0 {
				return nil, nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			k, err := strconv.Atoi(f[:colon])
			if err != nil || k < 1 {
				return nil, nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("data: line %d: bad value %q", lineNo, f[colon+1:])
			}
			if v == 0 {
				continue
			}
			if len(idx) > rowStart && int32(k-1) < idx[len(idx)-1] {
				sorted = false
			}
			idx = append(idx, int32(k-1))
			val = append(val, v)
			if k-1 > maxCol {
				maxCol = k - 1
			}
		}
		ri, rv := idx[rowStart:], val[rowStart:]
		if !sorted {
			// Rare in practice: LIBSVM files are conventionally sorted, so
			// the fill skips the sort entirely when the row arrives ordered.
			sort.Sort(pairSorter{ri, rv})
		}
		for i := 1; i < len(ri); i++ {
			if ri[i] == ri[i-1] {
				return nil, nil, fmt.Errorf("data: line %d: duplicate index %d", lineNo, ri[i]+1)
			}
		}
		rowptr = append(rowptr, int32(len(idx)))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("data: read: %v", err)
	}
	n := maxCol + 1
	if n < 1 {
		n = 1
	}
	return la.NewSparse(len(y), n, rowptr, idx, val), y, nil
}

// LoadLIBSVMFile opens path and streams it through ReadLIBSVMStream.
func LoadLIBSVMFile(path string, minFeatures int) (*la.Matrix, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadLIBSVMStream(f, minFeatures)
}

// countLIBSVM is the sizing pass: non-blank data lines and an upper bound
// on feature pairs (every ':' starts one; explicit zeros are dropped later,
// so the bound can exceed the final nnz but never undershoots).
func countLIBSVM(r io.Reader) (rows, pairBound int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := trimComment(sc.Text())
		blank := true
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case ' ', '\t':
			case ':':
				pairBound++
				blank = false
			default:
				blank = false
			}
		}
		if !blank {
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("data: read: %v", err)
	}
	return rows, pairBound, nil
}

func trimComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' {
			return line[:i]
		}
	}
	return line
}

// skipSpace and fieldEnd split exactly like strings.Fields (Unicode
// whitespace separators) so the streaming parse accepts and rejects the
// same inputs as ReadLIBSVM, byte for byte.
func skipSpace(line string, i int) int {
	for i < len(line) {
		if c := line[i]; c < utf8.RuneSelf {
			if c != ' ' && c != '\t' && c != '\n' && c != '\v' && c != '\f' && c != '\r' {
				return i
			}
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(line[i:])
		if !unicode.IsSpace(r) {
			return i
		}
		i += w
	}
	return i
}

func fieldEnd(line string, i int) int {
	for i < len(line) {
		if c := line[i]; c < utf8.RuneSelf {
			if c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
				return i
			}
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(line[i:])
		if unicode.IsSpace(r) {
			return i
		}
		i += w
	}
	return i
}

func indexColon(f string) int {
	for i := 0; i < len(f); i++ {
		if f[i] == ':' {
			return i
		}
	}
	return -1
}

// pairSorter sorts a CSR row's (idx, val) pair slices by column in step.
type pairSorter struct {
	k []int32
	v []float64
}

func (p pairSorter) Len() int           { return len(p.k) }
func (p pairSorter) Less(a, b int) bool { return p.k[a] < p.k[b] }
func (p pairSorter) Swap(a, b int) {
	p.k[a], p.k[b] = p.k[b], p.k[a]
	p.v[a], p.v[b] = p.v[b], p.v[a]
}
