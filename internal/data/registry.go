package data

import (
	"fmt"
	"sort"
)

// Entry describes one named benchmark dataset: the synthetic spec that
// stands in for the real-world data (Table XII), the paper's original
// scale for documentation, and the SVM hyper-parameters the experiment
// harness uses.
type Entry struct {
	Spec          MixtureSpec
	Field         string // application field from Table XII
	PaperSamples  int
	PaperFeatures int
	C             float64
	Gamma         float64 // 0 means the 1/(2·n·noise²) heuristic
}

// GammaOrDefault resolves the Gaussian γ: the registered value, or the
// cluster-noise heuristic 1/(2·n·σ²) that puts same-cluster kernel values
// near exp(−1).
func (e Entry) GammaOrDefault() float64 {
	if e.Gamma > 0 {
		return e.Gamma
	}
	n := float64(e.Spec.Features)
	if e.Spec.Sparse {
		n *= e.Spec.Density
	}
	sigma := e.Spec.Noise
	if sigma <= 0 {
		sigma = 1
	}
	return 1 / (2 * n * sigma * sigma)
}

// Registry returns the named datasets of the reproduction. The six
// Table XII datasets appear under their paper names; "forest" supports
// Table III and "toy" the profiling experiments (Table V, Figs 8–9).
func Registry() map[string]Entry {
	return map[string]Entry{
		"adult": {
			Field: "Economy", PaperSamples: 32561, PaperFeatures: 123, C: 1,
			Spec: MixtureSpec{
				Name: "adult", Train: 6000, Test: 1200, Features: 32, Clusters: 6,
				Separation: 6, Noise: 1, PosFrac: []float64{0.24}, LabelNoise: 0.03, Margin: 1.3, Seed: 101,
			},
		},
		"epsilon": {
			Field: "Character Recognition", PaperSamples: 400000, PaperFeatures: 2000, C: 1,
			Spec: MixtureSpec{
				Name: "epsilon", Train: 2000, Test: 500, Features: 100, Clusters: 8,
				Separation: 10, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.09, Margin: 1.3, Seed: 102,
			},
		},
		"face": {
			Field: "Face Detection", PaperSamples: 489410, PaperFeatures: 361, C: 1,
			Spec: MixtureSpec{
				Name: "face", Train: 4000, Test: 1000, Features: 64, Clusters: 8,
				Separation: 7, Noise: 1,
				// Uneven positive density across clusters recreates the
				// Table VII pos/neg imbalance (global ≈ 3.7% positive).
				PosFrac:    []float64{0.45, 0.01, 0.01, 0.01, 0.005, 0.005, 0.03, 0.01},
				LabelNoise: 0.008, Margin: 0.8, Seed: 103,
			},
		},
		"gisette": {
			Field: "Computer Vision", PaperSamples: 6000, PaperFeatures: 5000, C: 1,
			Spec: MixtureSpec{
				// Weak separation on purpose: gisette is the Table XV case
				// where cluster-partitioned methods lose accuracy because
				// the data is not cluster-structured.
				Name: "gisette", Train: 4000, Test: 800, Features: 48, Clusters: 4,
				Separation: 6, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02, Margin: 0.7, Seed: 104,
			},
		},
		"ijcnn": {
			Field: "Text Decoding", PaperSamples: 49990, PaperFeatures: 22, C: 1,
			Spec: MixtureSpec{
				Name: "ijcnn", Train: 6000, Test: 1200, Features: 22, Clusters: 6,
				Separation: 5, Noise: 1, PosFrac: []float64{0.095}, LabelNoise: 0.012, Margin: 1.2, Seed: 105,
			},
		},
		"usps": {
			Field: "Transportation", PaperSamples: 266079, PaperFeatures: 675, C: 1,
			Spec: MixtureSpec{
				Name: "usps", Train: 6000, Test: 1200, Features: 64, Clusters: 8,
				Separation: 9, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.006, Margin: 1.3, Seed: 106,
			},
		},
		"webspam": {
			Field: "Management", PaperSamples: 350000, PaperFeatures: 16609143, C: 1,
			Spec: MixtureSpec{
				Name: "webspam", Train: 6000, Test: 1200, Features: 2048, Clusters: 6,
				Separation: 8, Noise: 1, PosFrac: []float64{0.6}, LabelNoise: 0.008, Margin: 0.8,
				Sparse: true, Density: 0.02, Seed: 107,
			},
		},
		"forest": {
			Field: "Forestry (Table III workload)", PaperSamples: 581012, PaperFeatures: 54, C: 1,
			Spec: MixtureSpec{
				Name: "forest", Train: 4000, Test: 800, Features: 54, Clusters: 7,
				Separation: 4, Noise: 1, PosFrac: []float64{0.49}, LabelNoise: 0.10, Seed: 108,
			},
		},
		"toy": {
			Field: "Profiling workload (Table V, Figs 8–9)", PaperSamples: 48000, PaperFeatures: 16, C: 1,
			Spec: MixtureSpec{
				Name: "toy", Train: 1600, Test: 400, Features: 16, Clusters: 8,
				Separation: 6, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.05, Margin: 0.3, Seed: 109,
			},
		},
	}
}

// Names returns the registered dataset names in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load generates the named dataset at the given scale (1.0 = registered
// size; the train/test counts are multiplied by scale). It returns the
// dataset and its registry entry.
func Load(name string, scale float64) (*Dataset, Entry, error) {
	e, ok := Registry()[name]
	if !ok {
		return nil, Entry{}, fmt.Errorf("data: unknown dataset %q (have %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	spec := e.Spec
	spec.Train = int(float64(spec.Train) * scale)
	spec.Test = int(float64(spec.Test) * scale)
	if spec.Train < 8 {
		spec.Train = 8
	}
	if spec.Test < 4 {
		spec.Test = 4
	}
	d, err := Generate(spec)
	if err != nil {
		return nil, Entry{}, err
	}
	return d, e, nil
}
