package data

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"casvm/internal/la"
)

func TestReadLIBSVMBasic(t *testing.T) {
	in := `+1 1:0.5 3:2.0
-1 2:1 # comment
+1
`
	x, y, err := ReadLIBSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 3 || x.Features() != 3 {
		t.Fatalf("dims %d×%d", x.Rows(), x.Features())
	}
	if y[0] != 1 || y[1] != -1 || y[2] != 1 {
		t.Fatalf("labels %v", y)
	}
	if x.At(0, 0) != 0.5 || x.At(0, 2) != 2 || x.At(1, 1) != 1 {
		t.Fatal("values wrong")
	}
	if x.NNZ() != 3 {
		t.Fatalf("nnz=%d", x.NNZ())
	}
}

func TestReadLIBSVMMinFeatures(t *testing.T) {
	x, _, err := ReadLIBSVM(strings.NewReader("1 1:1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if x.Features() != 10 {
		t.Fatalf("features=%d want 10", x.Features())
	}
}

func TestReadLIBSVMUnsortedIndices(t *testing.T) {
	x, _, err := ReadLIBSVM(strings.NewReader("1 5:5 2:2 9:9\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(0, 1) != 2 || x.At(0, 4) != 5 || x.At(0, 8) != 9 {
		t.Fatal("unsorted indices mishandled")
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	cases := []string{
		"abc 1:1\n",   // bad label
		"1 x:1\n",     // bad index
		"1 0:1\n",     // index < 1
		"1 2:zz\n",    // bad value
		"1 2\n",       // missing colon
		"1 2:1 2:3\n", // duplicate index
	}
	for _, in := range cases {
		if _, _, err := ReadLIBSVM(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 20, 7
	dataBuf := make([]float64, m*n)
	y := make([]float64, m)
	for i := range dataBuf {
		if rng.Float64() < 0.5 {
			dataBuf[i] = math.Round(rng.NormFloat64()*1000) / 1000
		}
	}
	for i := range y {
		if rng.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	x := la.NewDense(m, n, dataBuf)
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, x, y); err != nil {
		t.Fatal(err)
	}
	x2, y2, err := ReadLIBSVM(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if y[i] != y2[i] {
			t.Fatalf("label %d", i)
		}
		for j := 0; j < n; j++ {
			if math.Abs(x.At(i, j)-x2.At(i, j)) > 1e-9 {
				t.Fatalf("value %d,%d: %v vs %v", i, j, x.At(i, j), x2.At(i, j))
			}
		}
	}
}

func TestWriteLIBSVMLengthMismatch(t *testing.T) {
	x := la.NewDense(2, 1, []float64{1, 2})
	if err := WriteLIBSVM(&bytes.Buffer{}, x, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestGenerateDense(t *testing.T) {
	d, err := Generate(MixtureSpec{
		Name: "t", Train: 500, Test: 100, Features: 10, Clusters: 4,
		Separation: 5, Noise: 1, PosFrac: []float64{0.3}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 500 || d.TestX.Rows() != 100 || d.Features() != 10 {
		t.Fatalf("dims: m=%d test=%d n=%d", d.M(), d.TestX.Rows(), d.Features())
	}
	// Positive fraction close to requested.
	if pf := d.PosFrac(); math.Abs(pf-0.3) > 0.08 {
		t.Errorf("PosFrac=%v want ≈0.3", pf)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := MixtureSpec{Name: "t", Train: 50, Test: 10, Features: 5, Clusters: 2,
		Separation: 3, Noise: 1, PosFrac: []float64{0.5}, Seed: 9}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(a.X, b.X, 0) {
		t.Error("same seed must give same data")
	}
	spec.Seed = 10
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if la.Equal(a.X, c.X, 0) {
		t.Error("different seed should give different data")
	}
}

func TestGenerateSparse(t *testing.T) {
	d, err := Generate(MixtureSpec{
		Name: "sp", Train: 200, Test: 50, Features: 500, Clusters: 3,
		Separation: 6, Noise: 1, PosFrac: []float64{0.5},
		Sparse: true, Density: 0.05, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.X.Sparse() {
		t.Fatal("should be sparse")
	}
	perRow := float64(d.X.NNZ()) / float64(d.M())
	if perRow < 10 || perRow > 50 {
		t.Errorf("nnz/row=%v want ≈25", perRow)
	}
}

func TestGeneratePerClusterPosFrac(t *testing.T) {
	d, err := Generate(MixtureSpec{
		Name: "imb", Train: 4000, Test: 0, Features: 8, Clusters: 2,
		Separation: 10, Noise: 1, PosFrac: []float64{0.5, 0.01}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Global fraction should land between the two cluster fractions,
	// near their mean.
	if pf := d.PosFrac(); pf < 0.15 || pf > 0.40 {
		t.Errorf("PosFrac=%v want ≈0.25", pf)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []MixtureSpec{
		{Train: 0, Features: 1, Clusters: 1, PosFrac: []float64{0.5}},
		{Train: 10, Features: 5, Clusters: 3, PosFrac: []float64{0.5, 0.5}},
		{Train: 10, Features: 5, Clusters: 1, PosFrac: []float64{1.5}},
		{Train: 10, Features: 5, Clusters: 1, PosFrac: []float64{0.5}, Sparse: true, Density: 0},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d should fail", i)
		}
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.025: -1.959964,
		0.84:  0.994458,
	}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("normQuantile(%v)=%v want %v", p, got, want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("edge quantiles must be ±Inf")
	}
}

func TestRegistryAllGenerate(t *testing.T) {
	for _, name := range Names() {
		d, e, err := Load(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.GammaOrDefault() <= 0 {
			t.Errorf("%s: gamma %v", name, e.GammaOrDefault())
		}
		if d.TestX == nil {
			t.Errorf("%s: no test split", name)
		}
	}
}

func TestRegistryFaceImbalance(t *testing.T) {
	d, _, err := Load("face", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pf := d.PosFrac(); pf < 0.02 || pf > 0.08 {
		t.Errorf("face PosFrac=%v want ≈0.035–0.05", pf)
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, _, err := Load("nonesuch", 1); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestSplitAndShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := 100
	dataBuf := make([]float64, m)
	y := make([]float64, m)
	for i := range dataBuf {
		dataBuf[i] = float64(i)
		if i%3 == 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	x := la.NewDense(m, 1, dataBuf)
	trX, trY, teX, teY := Split(x, y, 0.2, rng)
	if trX.Rows() != 80 || teX.Rows() != 20 {
		t.Fatalf("split %d/%d", trX.Rows(), teX.Rows())
	}
	// Every original value appears exactly once across the two halves.
	seen := map[float64]int{}
	for i := 0; i < trX.Rows(); i++ {
		seen[trX.At(i, 0)]++
	}
	for i := 0; i < teX.Rows(); i++ {
		seen[teX.At(i, 0)]++
	}
	if len(seen) != m {
		t.Fatalf("%d distinct values", len(seen))
	}
	_ = trY
	_ = teY

	d := &Dataset{Name: "s", X: x, Y: y}
	before := x.At(0, 0)
	d.Shuffle(rng)
	moved := false
	for i := 0; i < d.X.Rows(); i++ {
		if d.X.At(i, 0) == before && i != 0 {
			moved = true
		}
	}
	if !moved {
		t.Log("shuffle may have kept row 0 in place (unlikely but legal)")
	}
	// Labels still correspond: y=1 iff value%3==0.
	for i := 0; i < d.X.Rows(); i++ {
		want := -1.0
		if int(d.X.At(i, 0))%3 == 0 {
			want = 1
		}
		if d.Y[i] != want {
			t.Fatalf("label/row association broken at %d", i)
		}
	}
}

func TestSplitTinyFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := la.NewDense(10, 1, make([]float64, 10))
	y := make([]float64, 10)
	for i := range y {
		y[i] = 1
	}
	_, _, teX, _ := Split(x, y, 0.001, rng)
	if teX.Rows() != 1 {
		t.Errorf("tiny frac should hold out at least one sample, got %d", teX.Rows())
	}
}

func TestBinarize(t *testing.T) {
	y := Binarize([]float64{0, 1, 2, -3}, 0.5)
	want := []float64{-1, 1, 1, -1}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("got %v", y)
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	x := la.NewDense(2, 2, []float64{1, 2, 3, 4})
	good := &Dataset{Name: "g", X: x, Y: []float64{1, -1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Dataset{
		{Name: "nilx"},
		{Name: "len", X: x, Y: []float64{1}},
		{Name: "lab", X: x, Y: []float64{1, 0.5}},
		{Name: "testlen", X: x, Y: []float64{1, -1},
			TestX: la.NewDense(1, 2, []float64{1, 2}), TestY: nil},
		{Name: "testdim", X: x, Y: []float64{1, -1},
			TestX: la.NewDense(1, 3, []float64{1, 2, 3}), TestY: []float64{1}},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s should fail validation", d.Name)
		}
	}
}

func TestWriteLIBSVMSparse(t *testing.T) {
	x := la.NewSparse(2, 4, []int32{0, 2, 3}, []int32{0, 3, 1}, []float64{1.5, -2, 7})
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, x, []float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	back, y, err := ReadLIBSVM(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[1] != -1 {
		t.Fatal("labels")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if back.At(i, j) != x.At(i, j) {
				t.Fatalf("value %d,%d", i, j)
			}
		}
	}
}
