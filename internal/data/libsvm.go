package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"casvm/internal/la"
)

// ReadLIBSVM parses the LIBSVM/SVMlight sparse text format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the file and converted to 0-based columns. Lines
// may carry a trailing comment introduced by '#'. The feature count is the
// maximum index seen unless minFeatures forces a wider matrix (use it to
// align train and test files). Labels are returned as parsed; callers
// typically Binarize them.
func ReadLIBSVM(r io.Reader, minFeatures int) (*la.Matrix, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		rowptr = []int32{0}
		idx    []int32
		val    []float64
		y      []float64
		maxCol = minFeatures - 1
		lineNo = 0
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("data: line %d: bad label %q: %v", lineNo, fields[0], err)
		}
		y = append(y, label)
		type kv struct {
			k int32
			v float64
		}
		pairs := make([]kv, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			k, err := strconv.Atoi(f[:colon])
			if err != nil || k < 1 {
				return nil, nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("data: line %d: bad value %q", lineNo, f[colon+1:])
			}
			if v == 0 {
				continue
			}
			pairs = append(pairs, kv{int32(k - 1), v})
			if k-1 > maxCol {
				maxCol = k - 1
			}
		}
		// LIBSVM files are usually sorted, but do not rely on it.
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
		for i := 1; i < len(pairs); i++ {
			if pairs[i].k == pairs[i-1].k {
				return nil, nil, fmt.Errorf("data: line %d: duplicate index %d", lineNo, pairs[i].k+1)
			}
		}
		for _, p := range pairs {
			idx = append(idx, p.k)
			val = append(val, p.v)
		}
		rowptr = append(rowptr, int32(len(idx)))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("data: read: %v", err)
	}
	n := maxCol + 1
	if n < 1 {
		n = 1
	}
	return la.NewSparse(len(y), n, rowptr, idx, val), y, nil
}

// WriteLIBSVM emits (x, y) in LIBSVM text format with 1-based indices.
// Zero entries of dense matrices are omitted.
func WriteLIBSVM(w io.Writer, x *la.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("data: write: %d rows, %d labels", x.Rows(), len(y))
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows(); i++ {
		if _, err := fmt.Fprintf(bw, "%g", y[i]); err != nil {
			return err
		}
		if x.Sparse() {
			ix, vx := x.SparseRow(i)
			for k, j := range ix {
				if _, err := fmt.Fprintf(bw, " %d:%g", j+1, vx[k]); err != nil {
					return err
				}
			}
		} else {
			row := x.DenseRow(i)
			for j, v := range row {
				if v == 0 {
					continue
				}
				if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
