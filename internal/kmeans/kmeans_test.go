package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"casvm/internal/la"
	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
)

// blobs builds k well-separated Gaussian clusters of mPer points each in
// R^n; returns the data and the true assignment.
func blobs(rng *rand.Rand, k, mPer, n int, sep float64) (*la.Matrix, []int) {
	m := k * mPer
	data := make([]float64, m*n)
	truth := make([]int, m)
	for i := 0; i < m; i++ {
		c := i % k
		truth[i] = c
		for j := 0; j < n; j++ {
			center := 0.0
			if j == c%n {
				center = sep * float64(1+c/n)
			}
			data[i*n+j] = center + 0.3*rng.NormFloat64()
		}
	}
	return la.NewDense(m, n, data), truth
}

// clusterPurity returns the fraction of samples whose cluster's majority
// truth label matches their own truth label.
func clusterPurity(assign, truth []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, a := range assign {
		counts[a][truth[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, v := range m {
			if v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func TestSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := blobs(rng, 3, 10, 4, 5)
	s := Seed(x, 5, rng)
	if s.Rows() != 5 || s.Features() != 4 {
		t.Fatalf("seed dims %d×%d", s.Rows(), s.Features())
	}
	// Seeds must be actual samples.
	for c := 0; c < 5; c++ {
		found := false
		for i := 0; i < x.Rows(); i++ {
			if la.SqDist(s.DenseRow(c), x.DenseRow(i)) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seed %d is not a sample", c)
		}
	}
}

func TestSeedPanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	x := la.NewDense(2, 1, []float64{1, 2})
	Seed(x, 3, rng)
}

func TestRunRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, truth := blobs(rng, 4, 50, 6, 8)
	res := Run(x, Seed(x, 4, rng), 0, 0)
	if res.Iters < 1 || res.Iters > DefaultMaxIter {
		t.Fatalf("iters=%d", res.Iters)
	}
	if p := clusterPurity(res.Assign, truth, 4); p < 0.95 {
		t.Errorf("purity %.3f < 0.95", p)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != x.Rows() {
		t.Errorf("sizes sum %d != m %d", total, x.Rows())
	}
	if res.Flops <= 0 {
		t.Error("flops should be positive")
	}
}

// Lloyd's algorithm must not increase the within-cluster sum of squares.
func TestRunObjectiveDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := blobs(rng, 3, 40, 5, 3)
	wcss := func(centers *la.Matrix, assign []int) float64 {
		var s float64
		buf := make([]float64, x.Features())
		for i := 0; i < x.Rows(); i++ {
			s += la.SqDist(x.RowInto(i, buf), centers.DenseRow(assign[i]))
		}
		return s
	}
	centers := Seed(x, 3, rng)
	assign := make([]int, x.Rows())
	for i := range assign {
		assign[i] = -1
	}
	AssignAll(x, centers, assign)
	prev := wcss(centers, assign)
	for sweep := 0; sweep < 6; sweep++ {
		res := Run(x, centers, 1e-12, 1)
		centers = res.Centers
		copy(assign, res.Assign)
		cur := wcss(centers, assign)
		if cur > prev+1e-9 {
			t.Fatalf("sweep %d: objective rose %v -> %v", sweep, prev, cur)
		}
		prev = cur
	}
}

func TestEmptyClusterKeepsCenter(t *testing.T) {
	// Two points, three clusters: one cluster must stay empty without NaN.
	x := la.NewDense(2, 1, []float64{0, 10})
	centers := la.NewDense(3, 1, []float64{0, 10, 100})
	res := Run(x, centers, 0, 5)
	for c := 0; c < 3; c++ {
		if math.IsNaN(res.Centers.At(c, 0)) {
			t.Fatalf("center %d is NaN", c)
		}
	}
	if res.Centers.At(2, 0) != 100 {
		t.Errorf("empty cluster center should persist, got %v", res.Centers.At(2, 0))
	}
}

func TestRunSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	de, truth := blobs(rng, 3, 30, 5, 6)
	m, n := de.Rows(), de.Features()
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := de.At(i, j); v != 0 {
				ix = append(ix, int32(j))
				vx = append(vx, v)
			}
		}
		rp[i+1] = int32(len(ix))
	}
	sp := la.NewSparse(m, n, rp, ix, vx)
	res := Run(sp, Seed(sp, 3, rng), 0, 0)
	if p := clusterPurity(res.Assign, truth, 3); p < 0.9 {
		t.Errorf("sparse purity %.3f", p)
	}
}

func TestRunDistributedMatchesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, truth := blobs(rng, 4, 40, 5, 8)
	const p = 4
	m := x.Rows()
	per := m / p

	w := mpi.NewWorld(p, perfmodel.Hopper(), 7)
	assigns := make([][]int, p)
	var iters [p]int
	err := w.Run(func(c *mpi.Comm) error {
		lo := c.Rank() * per
		hi := lo + per
		rows := make([]int, 0, per)
		for i := lo; i < hi; i++ {
			rows = append(rows, i)
		}
		local := x.Subset(rows)
		res := RunDistributed(c, local, 4, 0, 0)
		assigns[c.Rank()] = res.Assign
		iters[c.Rank()] = res.Iters
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stitch global assignment back together.
	global := make([]int, 0, m)
	for r := 0; r < p; r++ {
		global = append(global, assigns[r]...)
	}
	reordered := make([]int, m)
	for r := 0; r < p; r++ {
		for i := 0; i < per; i++ {
			reordered[r*per+i] = global[r*per+i]
		}
	}
	if purity := clusterPurity(reordered, truth, 4); purity < 0.9 {
		t.Errorf("distributed purity %.3f", purity)
	}
	for r := 1; r < p; r++ {
		if iters[r] != iters[0] {
			t.Errorf("iteration counts diverged across ranks: %v", iters)
		}
	}
	if w.Stats().TotalBytes() == 0 {
		t.Error("distributed kmeans must communicate")
	}
}

func TestRunDistributedSingleRank(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := blobs(rng, 2, 20, 3, 6)
	w := mpi.NewWorld(1, perfmodel.Hopper(), 7)
	err := w.Run(func(c *mpi.Comm) error {
		res := RunDistributed(c, x, 2, 0, 0)
		if len(res.Assign) != x.Rows() {
			t.Errorf("assign len %d", len(res.Assign))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().TotalBytes() != 0 {
		t.Error("single rank should not communicate")
	}
}

func TestRunDistributedKLargerThanRankBlock(t *testing.T) {
	// Rank 0 has fewer samples than k; seeding must still produce k centers.
	rng := rand.New(rand.NewSource(7))
	x, _ := blobs(rng, 2, 6, 3, 6)
	w := mpi.NewWorld(4, perfmodel.Hopper(), 7)
	per := x.Rows() / 4
	err := w.Run(func(c *mpi.Comm) error {
		rows := make([]int, 0, per)
		for i := c.Rank() * per; i < (c.Rank()+1)*per; i++ {
			rows = append(rows, i)
		}
		res := RunDistributed(c, x.Subset(rows), 5, 0, 0)
		if res.Centers.Rows() != 5 {
			t.Errorf("centers=%d", res.Centers.Rows())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
