// Package kmeans implements Lloyd's K-means clustering (Alg 2 of the
// paper), in both a serial form and the distributed allreduce form used by
// DC-SVM, DC-Filter, CP-SVM and BKM-CA (equivalent to Liao's parallel
// K-means, which the paper's implementation matches).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"casvm/internal/la"
	"casvm/internal/mpi"
)

// DefaultThreshold is the convergence threshold on the fraction of samples
// that changed cluster in one sweep (Alg 2 step 7).
const DefaultThreshold = 1e-3

// DefaultMaxIter caps the number of Lloyd sweeps.
const DefaultMaxIter = 100

// Result describes a clustering.
type Result struct {
	Assign  []int      // Assign[i] = cluster of sample i
	Centers *la.Matrix // k×n dense matrix of centroids
	Sizes   []int      // samples per cluster
	Iters   int        // Lloyd sweeps executed
	Flops   float64    // computation performed (for virtual-time charging)
}

// K returns the number of clusters.
func (r *Result) K() int { return r.Centers.Rows() }

// Seed picks k distinct random rows of x as initial centers (densified).
func Seed(x *la.Matrix, k int, rng *rand.Rand) *la.Matrix {
	m := x.Rows()
	if k > m {
		panic(fmt.Sprintf("kmeans: k=%d > m=%d", k, m))
	}
	perm := rng.Perm(m)[:k]
	data := make([]float64, k*x.Features())
	buf := make([]float64, x.Features())
	for c, i := range perm {
		copy(data[c*x.Features():(c+1)*x.Features()], x.RowInto(i, buf))
	}
	return la.NewDense(k, x.Features(), data)
}

// AssignAll maps every row of x to its nearest center (Euclidean), writing
// into assign and returning (changed count, flops).
func AssignAll(x *la.Matrix, centers *la.Matrix, assign []int) (int, float64) {
	m, k := x.Rows(), centers.Rows()
	centers.EnsureNorms()
	changed := 0
	for i := 0; i < m; i++ {
		best, bi := math.Inf(1), 0
		for c := 0; c < k; c++ {
			d := distRowCenter(x, i, centers, c)
			if d < best {
				best, bi = d, c
			}
		}
		if assign[i] != bi {
			assign[i] = bi
			changed++
		}
	}
	return changed, float64(2 * m * k * x.Features())
}

// distRowCenter computes ‖x_i − center_c‖² using cached norms, so sparse
// rows cost O(nnz) rather than O(n).
func distRowCenter(x *la.Matrix, i int, centers *la.Matrix, c int) float64 {
	d := x.SqNormRow(i) + centers.SqNormRow(c) - 2*x.DotVec(i, centers.DenseRow(c))
	if d < 0 {
		d = 0
	}
	return d
}

// accumulate sums assigned rows into sums (k×n flat) and counts.
func accumulate(x *la.Matrix, assign []int, k int, sums []float64, counts []float64) {
	n := x.Features()
	for i := 0; i < x.Rows(); i++ {
		c := assign[i]
		dst := sums[c*n : (c+1)*n]
		if x.Sparse() {
			ix, vx := x.SparseRow(i)
			for kk, j := range ix {
				dst[j] += vx[kk]
			}
		} else {
			row := x.DenseRow(i)
			for j, v := range row {
				dst[j] += v
			}
		}
		counts[c]++
	}
}

// rebuildCenters divides sums by counts; empty clusters keep their previous
// center to avoid NaN centroids.
func rebuildCenters(prev *la.Matrix, sums []float64, counts []float64) *la.Matrix {
	k, n := prev.Rows(), prev.Features()
	data := make([]float64, k*n)
	for c := 0; c < k; c++ {
		dst := data[c*n : (c+1)*n]
		if counts[c] == 0 {
			copy(dst, prev.DenseRow(c))
			continue
		}
		inv := 1 / counts[c]
		src := sums[c*n : (c+1)*n]
		for j := range dst {
			dst[j] = src[j] * inv
		}
	}
	return la.NewDense(k, n, data)
}

// Run executes serial Lloyd K-means from the given initial centers until
// fewer than threshold·m samples change cluster, or maxIter sweeps.
// threshold ≤ 0 and maxIter ≤ 0 select the defaults.
func Run(x *la.Matrix, centers *la.Matrix, threshold float64, maxIter int) *Result {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	m := x.Rows()
	k := centers.Rows()
	assign := make([]int, m)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign, Centers: centers}
	for res.Iters < maxIter {
		changed, fl := AssignAll(x, res.Centers, assign)
		res.Flops += fl
		res.Iters++
		sums := make([]float64, k*x.Features())
		counts := make([]float64, k)
		accumulate(x, assign, k, sums, counts)
		res.Flops += float64(x.NNZ())
		res.Centers = rebuildCenters(res.Centers, sums, counts)
		if float64(changed)/float64(m) <= threshold {
			break
		}
	}
	res.Sizes = make([]int, k)
	for _, c := range assign {
		res.Sizes[c]++
	}
	return res
}

// RunDistributed executes K-means over the ranks of c: each rank holds a
// local block x, rank 0 seeds k centers from its block and broadcasts them,
// and every sweep allreduces the partial sums, counts and change counter.
// The returned Result is local: Assign/Sizes describe the local block while
// Centers and Iters are global. Computation and communication are charged
// to the rank's virtual clock.
func RunDistributed(c *mpi.Comm, x *la.Matrix, k int, threshold float64, maxIter int) *Result {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	n := x.Features()
	var centerData []float64
	if c.Rank() == 0 {
		centerData = make([]float64, 0, k*n)
		seed := Seed(x, min(k, x.Rows()), c.RNG())
		for i := 0; i < seed.Rows(); i++ {
			centerData = append(centerData, seed.DenseRow(i)...)
		}
		// If rank 0 has fewer rows than k (tiny blocks), repeat rows.
		for len(centerData) < k*n {
			centerData = append(centerData, centerData[:n]...)
		}
	}
	centerData = c.BcastF64(0, centerData)
	centers := la.NewDense(k, n, centerData)

	totalM := c.AllreduceSumInt([]int{x.Rows()})[0]
	assign := make([]int, x.Rows())
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign}
	for res.Iters < maxIter {
		changed, fl := AssignAll(x, centers, assign)
		c.Charge(fl)
		res.Flops += fl
		res.Iters++
		sums := make([]float64, k*n)
		counts := make([]float64, k)
		accumulate(x, assign, k, sums, counts)
		c.Charge(float64(x.NNZ()))
		// One fused allreduce: [sums | counts | changed].
		payload := make([]float64, 0, k*n+k+1)
		payload = append(payload, sums...)
		payload = append(payload, counts...)
		payload = append(payload, float64(changed))
		payload = c.AllreduceSum(payload)
		centers = rebuildCenters(centers, payload[:k*n], payload[k*n:k*n+k])
		globalChanged := payload[k*n+k]
		if globalChanged/float64(totalM) <= threshold {
			break
		}
	}
	res.Centers = centers
	res.Sizes = make([]int, k)
	for _, cc := range assign {
		res.Sizes[cc]++
	}
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
