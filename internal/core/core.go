// Package core implements the paper's distributed SVM training methods:
//
//	Dis-SMO   — Cao et al.'s distributed SMO (§II-B), the baseline
//	Cascade   — Graf et al.'s SV-filtering reduction tree (§II-C)
//	DC-SVM    — Hsieh et al.'s divide-and-conquer solver (§II-D)
//	DC-Filter — K-means partition + SV filter hybrid (§III-B)
//	CP-SVM    — clustering-partition SVM with independent models (§IV-A)
//	CA-SVM    — the communication-avoiding family (§IV-B):
//	            FCFS-CA, BKM-CA and RA-CA
//
// Every method runs on the internal/mpi substrate, uses the same
// internal/smo solver underneath (as the paper's evaluation does), and
// reports the same statistics the paper's tables need: iterations, init and
// training virtual time, per-layer profiles, and communication volumes.
package core

import (
	"fmt"
	"time"

	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// Method names a training algorithm.
type Method string

// The eight trainable methods (three of them CA-SVM variants).
const (
	MethodDisSMO   Method = "dissmo"
	MethodCascade  Method = "cascade"
	MethodDCSVM    Method = "dcsvm"
	MethodDCFilter Method = "dcfilter"
	MethodCPSVM    Method = "cpsvm"
	MethodBKMCA    Method = "bkm-ca"
	MethodFCFSCA   Method = "fcfs-ca"
	MethodRACA     Method = "ra-ca" // RA-CA is what the paper calls CA-SVM
)

// Methods lists every method in presentation order (the row order of
// Tables XIII–XVIII).
func Methods() []Method {
	return []Method{MethodDisSMO, MethodCascade, MethodDCSVM, MethodDCFilter,
		MethodCPSVM, MethodBKMCA, MethodFCFSCA, MethodRACA}
}

// ParseMethod resolves a method name.
func ParseMethod(s string) (Method, error) {
	for _, m := range Methods() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("core: unknown method %q", s)
}

// Placement selects where the input data starts (Fig 9's casvm1 vs casvm2).
type Placement int

const (
	// PlacementDistributed (casvm2) assumes each node already holds its
	// block; CA-SVM then needs no communication at all.
	PlacementDistributed Placement = iota
	// PlacementRoot (casvm1) starts with all data on rank 0, which must
	// scatter it. The non-CA methods always behave this way, matching the
	// distribution terms in the paper's Table X volume formulas.
	PlacementRoot
)

// Params configures a training run.
type Params struct {
	Method Method
	P      int // number of ranks (nodes)

	C       float64
	Tol     float64
	MaxIter int // per-solver iteration cap; 0 = default
	Kernel  kernel.Params
	// PosWeight scales positive samples' box bound (class-weighted SVM);
	// 0 means 1.
	PosWeight float64

	// Threads sets the shared-memory parallelism of each rank's local SMO
	// solver (kernel-row fills and the fused scan/update passes fan out
	// across a persistent worker pool). 0 or 1 means serial. Results are
	// bit-identical for every setting, and virtual-time flop accounting is
	// unaffected — Threads changes wall-clock only.
	Threads int

	Machine perfmodel.Machine
	Seed    int64

	// Placement applies to the CA-SVM variants (casvm1 vs casvm2); other
	// methods always start from root.
	Placement Placement

	// RatioBalanced applies the pos/neg class balancing of §IV-B1 to
	// FCFS-CA and BKM-CA. Tables VIII–IX use it; defaults to true via
	// DefaultParams.
	RatioBalanced bool

	// KMeansMaxIter caps partitioning K-means sweeps (0 = default).
	KMeansMaxIter int

	// CascadePasses runs the reduction tree this many times for the tree
	// methods (Cascade, DC-SVM, DC-Filter); after each pass the final
	// support vectors are broadcast back to every node (the Fig 2
	// feedback loop). 0 or 1 means a single pass — the paper notes one
	// pass is almost always enough.
	CascadePasses int

	// Faults installs a fault injector for chaos testing (usually a
	// *faults.Injector): its transport hook intercepts every remote
	// message, and CrashCheck is polled by the training loops so a rank
	// can be killed at iteration k even during the zero-communication
	// CA-SVM training phase.
	Faults FaultInjector

	// Degraded lets the independent-model methods (CP-SVM and the CA-SVM
	// variants) survive rank crashes: training completes with the
	// surviving shards' models, Stats.LostRanks reports the shards lost,
	// and prediction routes over the survivors. Methods that genuinely
	// need every rank (Dis-SMO, the reduction trees) still fail fast.
	Degraded bool

	// Timeline, when non-nil (sized to P, trace.NewTimeline(P)), records
	// per-rank span events: every collective, the partition/solve phases,
	// and the solver's scan/update/shrink/row-fill internals, each with
	// wall and (where tracked) virtual time. Export with
	// Timeline.WriteChromeTrace for chrome://tracing / Perfetto. Nil — the
	// default — keeps all instrumentation on its zero-allocation path.
	Timeline *trace.Timeline

	// Metrics, when non-nil, receives run counters and histograms
	// (solver iterations, row-cache hits/misses). Expose it via
	// Registry.Publish (expvar) or Registry.WriteProm. Nil records
	// nothing.
	Metrics *trace.Registry

	// Recovery enables checkpoint/restart: solver state is snapshotted
	// every CheckpointEvery iterations and a rank crash triggers a
	// supervised restart (respawn at full width, or shrink onto the
	// survivors) resuming from the last consistent checkpoint, instead of
	// failing fast or degrading. See recovery.go.
	Recovery Recovery

	// rt is the per-Train recovery runtime the supervisor threads into the
	// method implementations (nil when Recovery.Policy is off).
	rt *recoveryRuntime

	// Telemetry, when non-nil, receives one sample per solver iteration
	// from every rank (dual objective, KKT gap, active-set/SV counts,
	// shrink sweeps) — the live-convergence stream served by the `-serve`
	// telemetry server. Nil records nothing.
	Telemetry *smo.TelemetryRing
}

// FaultInjector is what Params.Faults accepts: a transport hook for
// message-level faults plus an iteration-crash check for compute-phase
// faults. faults.Injector implements it.
type FaultInjector interface {
	mpi.TransportHook
	CrashCheck(rank, iter int) error
}

// ElasticSource is the optional membership side of a fault injector: a
// JoinCheck poll consuming pending worker-join requests. Training loops
// poll it only at checkpoint epoch boundaries — right after a deposit — so
// the supervisor can grow the world from a state it can re-slice.
// faults.ScheduleInjector and the cluster runtime's lease table implement
// it.
type ElasticSource interface {
	JoinCheck(iter int) int
}

// joinInterrupt polls the injector's elastic-join source at checkpoint
// epoch boundaries and converts pending joins into a cooperative
// *mpi.ResizeError. It is a no-op unless a recovery supervisor is attached
// (only trainSupervised can act on a resize) and the injector implements
// ElasticSource.
func (p Params) joinInterrupt(rank, iter int) error {
	rt := p.rt
	if rt == nil || p.Faults == nil || iter <= 0 || iter%rt.every != 0 {
		return nil
	}
	src, ok := p.Faults.(ElasticSource)
	if !ok {
		return nil
	}
	if n := src.JoinCheck(iter); n > 0 {
		return &mpi.ResizeError{Rank: rank, Iter: iter, Delta: n, Reason: "worker-join"}
	}
	return nil
}

// independentModels reports whether the method trains one independent
// model per rank (so losing a rank costs one shard, not the run).
func (m Method) independentModels() bool {
	switch m {
	case MethodCPSVM, MethodBKMCA, MethodFCFSCA, MethodRACA:
		return true
	}
	return false
}

// DefaultParams returns a ready-to-use parameter set for the given method
// and rank count with Hopper-like machine constants.
func DefaultParams(m Method, p int) Params {
	return Params{
		Method:        m,
		P:             p,
		C:             1,
		Tol:           1e-3,
		Kernel:        kernel.RBF(0.05),
		Machine:       perfmodel.Hopper(),
		Seed:          1,
		RatioBalanced: true,
	}
}

func (p Params) validate(m int) error {
	if p.P < 1 {
		return fmt.Errorf("core: P=%d", p.P)
	}
	if m < p.P {
		return fmt.Errorf("core: %d samples cannot feed %d ranks", m, p.P)
	}
	if p.C <= 0 {
		return fmt.Errorf("core: C=%v", p.C)
	}
	if _, err := ParseMethod(string(p.Method)); err != nil {
		return err
	}
	return p.Kernel.Validate()
}

func (p Params) solverConfig() smo.Config {
	return smo.Config{C: p.C, Tol: p.Tol, MaxIter: p.MaxIter, Kernel: p.Kernel,
		PosWeight: p.PosWeight, Threads: p.Threads}
}

// solverConfigAt is solverConfig plus the rank's fault-injection interrupt
// (a no-op without an injector) and the rank's observability sinks (no-ops
// without a timeline/registry).
func (p Params) solverConfigAt(rank int) smo.Config {
	cfg := p.solverConfig()
	if p.Faults != nil {
		cfg.Interrupt = func(iter int) error {
			if err := p.Faults.CrashCheck(rank, iter); err != nil {
				return err
			}
			return p.joinInterrupt(rank, iter)
		}
	}
	cfg.Trace = p.Timeline.Rank(rank)
	cfg.Metrics = p.Metrics
	cfg.Telemetry = p.Telemetry
	cfg.TelemetryRank = rank
	return cfg
}

// NodeStat profiles one node's work within a layer (the rows of Table V).
type NodeStat struct {
	Rank    int
	Samples int
	Iters   int
	SVs     int
	Time    float64 // virtual seconds spent by this node in the layer
}

// LayerStat profiles one layer of a tree method (Table V).
type LayerStat struct {
	Layer int
	Nodes []NodeStat
}

// MaxTime returns the slowest node's time in the layer.
func (l LayerStat) MaxTime() float64 {
	var t float64
	for _, n := range l.Nodes {
		if n.Time > t {
			t = n.Time
		}
	}
	return t
}

// MaxIters returns the largest per-node iteration count in the layer.
func (l LayerStat) MaxIters() int {
	var t int
	for _, n := range l.Nodes {
		if n.Iters > t {
			t = n.Iters
		}
	}
	return t
}

// SumSVs returns the layer's total surviving support vectors.
func (l LayerStat) SumSVs() int {
	t := 0
	for _, n := range l.Nodes {
		t += n.SVs
	}
	return t
}

// Stats aggregates everything a training run measured.
type Stats struct {
	Method Method
	P      int

	// Iters is the critical-path iteration count: the global count for
	// Dis-SMO, the sum over layers of the per-layer maximum for tree
	// methods, and the maximum over nodes for the independent methods.
	Iters int
	// SVs is the support-vector count of the final model (set).
	SVs int

	// InitSec is the virtual time of partitioning (K-means, FCFS, …) and
	// initial data movement; TrainSec the virtual time of SVM training;
	// TotalSec their critical-path total (max final clock).
	InitSec  float64
	TrainSec float64
	TotalSec float64

	// Wall is the real elapsed time of the simulation (for reference
	// only; the paper-comparable number is TotalSec).
	Wall time.Duration

	// KMeansIters is the partition K-means sweep count (0 when unused).
	KMeansIters int

	// Layers holds the per-layer profile for tree methods (Table V).
	Layers []LayerStat

	// Communication, from trace.Stats: total bytes, message count, the
	// P×P byte matrix (Fig 8), and the max-rank comm/comp split (Fig 9).
	CommBytes  int64
	CommOps    int64
	CommMatrix [][]int64
	CommSec    float64
	CompSec    float64

	// TotalFlops is the summed modeled flop count over all ranks. Flop
	// accounting is deterministic and thread-count-invariant, so it
	// doubles as a reproducibility fingerprint of the run.
	TotalFlops float64

	// PartSizes are the per-node sample counts after partitioning
	// (Fig 5), and NodeTrainSec the per-node training time (Fig 7).
	PartSizes    []int
	NodeTrainSec []float64
	NodeIters    []int

	// Per-node class structure for the partitioned methods: positive and
	// negative sample counts and positive/negative support-vector counts
	// (Tables VII–VIII).
	NodePos   []int
	NodeNeg   []int
	NodeSVPos []int
	NodeSVNeg []int

	// LostRanks lists ranks that crashed during the run (from
	// trace.Stats); Degraded is true when training completed without
	// them. Both are empty/false for a clean run. A run recovered by
	// respawn has LostRanks but Degraded == false: every shard's work made
	// it into the final model.
	LostRanks []int
	Degraded  bool

	// Recoveries counts supervised restarts (crash → checkpoint resume);
	// RecoverySec is the virtual time those restarts cost — lost re-work
	// plus restart penalties — already included in TotalSec.
	Recoveries  int
	RecoverySec float64

	// Grows counts elastic scale-ups (worker joins absorbed at checkpoint
	// epoch boundaries); JoinedRanks is the total ranks those grows added.
	// P already reflects the final, grown width.
	Grows       int
	JoinedRanks int
}

// Output bundles the trained model set with the run statistics.
type Output struct {
	Set   *model.Set
	Stats Stats
}

// rankResult is what each rank reports back to the harness through shared
// memory (the World join provides the happens-before edge).
type rankResult struct {
	local    *model.Model // this rank's model (CP/CA) or final model (rank 0, tree methods)
	center   []float64    // this rank's routing center (CP/CA)
	iters    int
	svs      int
	initSec  float64
	trainSec float64
	partSize int
	kmIters  int

	// Class structure of the rank's partition (Tables VII–VIII).
	pos, neg     int
	svPos, svNeg int
}

// fillClassCounts records the partition's class structure and, given the
// solved multipliers, the per-class support-vector counts.
func (out *rankResult) fillClassCounts(y, alpha []float64) {
	for i, v := range y {
		if v > 0 {
			out.pos++
			if alpha[i] > 0 {
				out.svPos++
			}
		} else {
			out.neg++
			if alpha[i] > 0 {
				out.svNeg++
			}
		}
	}
}

func fillCommStats(st *Stats, ts *trace.Stats) {
	st.CommBytes = ts.TotalBytes()
	st.CommOps = ts.TotalOps()
	st.CommMatrix = ts.Matrix()
	st.CommSec = ts.MaxCommSec()
	st.CompSec = ts.MaxCompSec()
	st.TotalFlops = ts.TotalFlops()
	st.LostRanks = ts.LostRanks()
}

// evenBlocks splits m samples into P nearly-even contiguous blocks and
// returns the row-index slices.
func evenBlocks(m, p int) [][]int {
	out := make([][]int, p)
	base := m / p
	rem := m % p
	start := 0
	for r := 0; r < p; r++ {
		size := base
		if r < rem {
			size++
		}
		rows := make([]int, size)
		for i := range rows {
			rows[i] = start + i
		}
		start += size
		out[r] = rows
	}
	return out
}

// subsetF64 gathers y[rows].
func subsetF64(y []float64, rows []int) []float64 {
	out := make([]float64, len(rows))
	for k, i := range rows {
		out[k] = y[i]
	}
	return out
}

// localModel builds a model from a rank's solved problem.
func localModel(x *la.Matrix, y []float64, res *smo.Result, k kernel.Params) *model.Model {
	return model.FromSolution(x, y, res.Alpha, res.B, k)
}
