package core

import (
	"testing"

	"casvm/internal/perfmodel"
)

func TestPredictDistributedMatchesLocal(t *testing.T) {
	d := testSet(t, 400)
	out, err := Train(d.X, d.Y, paramsFor(MethodCPSVM, 4, d))
	if err != nil {
		t.Fatal(err)
	}
	local := out.Set.PredictAll(d.TestX)
	dist, st, err := PredictDistributed(out.Set, d.TestX, perfmodel.Hopper(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if local[i] != dist[i] {
			t.Fatalf("prediction %d differs: %v vs %v", i, local[i], dist[i])
		}
	}
	if st.CommBytes == 0 {
		t.Error("routing must move the queries")
	}
	// "Little communication": no more than the queries' features (float32)
	// plus the label floats plus headers — far below the training set size.
	upper := int64(4*d.TestX.Rows()*d.TestX.Features()) + int64(16*d.TestX.Rows()) + 4096
	if st.CommBytes > upper {
		t.Errorf("prediction moved %d bytes, expected ≤ %d", st.CommBytes, upper)
	}
	if st.TotalSec <= 0 {
		t.Error("virtual time should be positive")
	}
}

func TestPredictDistributedSingleModel(t *testing.T) {
	d := testSet(t, 200)
	out, err := Train(d.X, d.Y, paramsFor(MethodDisSMO, 2, d))
	if err != nil {
		t.Fatal(err)
	}
	// Dis-SMO produces a single-model set: the world has one rank and no
	// network traffic.
	preds, st, err := PredictDistributed(out.Set, d.TestX, perfmodel.Hopper(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != d.TestX.Rows() {
		t.Fatal("prediction count")
	}
	if st.CommBytes != 0 {
		t.Errorf("single-rank prediction moved %d bytes", st.CommBytes)
	}
}

func TestPredictDistributedValidation(t *testing.T) {
	d := testSet(t, 120)
	out, err := Train(d.X, d.Y, paramsFor(MethodRACA, 2, d))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PredictDistributed(nil, d.TestX, perfmodel.Hopper(), 1); err == nil {
		t.Error("nil set should fail")
	}
	if _, _, err := PredictDistributed(out.Set, nil, perfmodel.Hopper(), 1); err == nil {
		t.Error("nil queries should fail")
	}
}

// Prediction communication is tiny next to training communication for the
// methods that move data (the §IV-B claim).
func TestPredictionCommTinyVsTraining(t *testing.T) {
	d := testSet(t, 480)
	out, err := Train(d.X, d.Y, paramsFor(MethodCPSVM, 4, d))
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := PredictDistributed(out.Set, d.TestX, perfmodel.Hopper(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommBytes*4 > out.Stats.CommBytes {
		t.Errorf("prediction bytes %d should be ≤ ¼ of training bytes %d",
			st.CommBytes, out.Stats.CommBytes)
	}
}
