package core

import (
	"encoding/binary"
	"math"

	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// trainDisSMO implements Cao et al.'s distributed SMO. The samples are
// block-partitioned over the ranks. Every iteration:
//
//  1. each rank scans its local f for the extreme KKT violators,
//  2. two Allreduce-with-location operations pick the global (high, low)
//     pair (the 14·logP·ts term of eqn 9),
//  3. the owners broadcast the two active samples with their labels and
//     multipliers (the 2n·logP·tw term),
//  4. every rank evaluates the identical clipped pair update and applies
//     it to its local f (the 2mn/P compute term).
//
// The result is bitwise the trajectory of serial SMO on the full set, up to
// the float32 wire rounding of the initial scatter.
func trainDisSMO(c *mpi.Comm, full *la.Matrix, fullY []float64, p Params, out *rankResult) error {
	rec := c.Recorder()
	c.SetPhase("partition")
	spInit := rec.BeginVirt(trace.CatInit, "partition", c.Clock())
	local, err := scatterBlocks(c, full, fullY)
	if err != nil {
		return err
	}
	out.partSize = local.x.Rows()
	out.initSec = c.Clock()
	rec.EndVirt(spInit, c.Clock())

	// The rank's first global row: Dis-SMO checkpoints live in global row
	// space, so deposits and restores address the epoch arrays by offset.
	// Any contiguous block layout (any P) slices the same arrays, which is
	// what lets shrink recovery re-partition without conversion.
	rowStart := 0
	for r, rows := range evenBlocks(full.Rows(), c.Size()) {
		if r == c.Rank() {
			break
		}
		rowStart += len(rows)
	}

	c.SetPhase("solve")
	spSolve := rec.BeginVirt(trace.CatTrain, "solve", c.Clock())
	cfg := p.solverConfig()
	startIter := 0
	if rt := p.rt; rt != nil {
		if epoch, ga, gf, ok := rt.store.consistentDis(); ok {
			cfg.Restore = &smo.Checkpoint{
				Iters: epoch,
				Alpha: ga[rowStart : rowStart+local.x.Rows()],
				F:     gf[rowStart : rowStart+local.x.Rows()],
			}
			startIter = epoch
			if rt.metrics != nil && c.Rank() == 0 {
				rt.metrics.Counter("casvm_restores_total", "solver resumes from checkpoint").Inc()
			}
		}
	}
	solver, err := smo.New(local.x, local.y, cfg, nil)
	if err != nil {
		return err
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		totalM := c.AllreduceSumInt([]int{local.x.Rows()})[0]
		maxIter = 100*totalM + 10000
	}
	tol := p.Tol
	if tol <= 0 {
		tol = 1e-3
	}

	bufH := make([]float64, local.x.Rows())
	bufL := make([]float64, local.x.Rows())
	iters := startIter
	lastDep := startIter
	for iters < maxIter {
		// Deposit before the crash poll: a rank killed at iteration k has
		// already contributed epoch k, so the supervisor can resume from a
		// state every survivor passed through.
		if rt := p.rt; rt != nil && iters > 0 && iters%rt.every == 0 && iters != lastDep {
			lastDep = iters
			ck := solver.Snapshot()
			rt.chargeCheckpoint(c, 16*local.x.Rows())
			rt.store.depositDis(iters, rowStart, ck.Alpha, ck.F)
			// Epoch boundary: absorb any pending worker joins. The deposit
			// above already contributed this rank's block, so the supervisor
			// resumes the grown world from a consistent epoch.
			if err := p.joinInterrupt(c.Rank(), iters); err != nil {
				return err
			}
		}
		if p.Faults != nil {
			if err := p.Faults.CrashCheck(c.Rank(), iters); err != nil {
				return err
			}
		}
		bh, ih, bl, il := solver.LocalExtremes()
		c.Charge(solver.TakeFlops())
		high := c.AllreduceMinLoc(bh, ih)
		low := c.AllreduceMaxLoc(bl, il)
		if low.Val-high.Val < 2*tol || high.Index < 0 || low.Index < 0 {
			break
		}
		// Owners broadcast the active samples: row + y + α.
		highP := bcastActive(c, solver, local, int(high.Rank), int(high.Index))
		lowP := bcastActive(c, solver, local, int(low.Rank), int(low.Index))

		// Identical update arithmetic on every rank.
		khh := p.Kernel.Eval(highP.x, 0, highP.x, 0)
		kll := p.Kernel.Eval(lowP.x, 0, lowP.x, 0)
		khl := p.Kernel.Eval(highP.x, 0, lowP.x, 0)
		ch, cl := p.C, p.C
		if p.PosWeight > 0 {
			if highP.y[0] > 0 {
				ch = p.C * p.PosWeight
			}
			if lowP.y[0] > 0 {
				cl = p.C * p.PosWeight
			}
		}
		dah, dal := smo.PairSolveWeighted(ch, cl, highP.y[0], lowP.y[0], high.Val, low.Val,
			highP.alpha[0], lowP.alpha[0], khh, kll, khl)
		if dah == 0 && dal == 0 {
			break // numerically stuck pair; matches the serial guard
		}
		if c.Rank() == int(high.Rank) {
			solver.AddAlpha(int(high.Index), dah)
		}
		if c.Rank() == int(low.Rank) {
			solver.AddAlpha(int(low.Index), dal)
		}
		// One fused sweep over the local block computes both cross-kernel
		// columns (bit-identical to the two sequential updates it replaces).
		solver.ApplyExternalPair(highP.x, 0, highP.y[0], dah,
			lowP.x, 0, lowP.y[0], dal, bufH, bufL)
		c.Charge(solver.TakeFlops())
		iters++
	}
	out.iters = iters
	out.trainSec = c.Clock() - out.initSec
	rec.EndVirt(spSolve, c.Clock())
	c.SetPhase("assemble")

	// Assemble the global model at rank 0: gather (SV rows, y, α, local
	// bHigh/bLow contributions).
	svRows := []int{}
	for i, a := range solver.Alpha() {
		if a > 0 {
			svRows = append(svRows, i)
		}
	}
	payload := packSections(
		encodePart(local.x, local.y, solver.Alpha(), svRows),
		encodeBias(solver),
	)
	gathered := c.Gatherv(0, payload)
	if c.Rank() != 0 {
		return nil
	}
	parts := make([]part, 0, c.Size())
	bHigh, bLow := math.Inf(1), math.Inf(-1)
	for _, g := range gathered {
		secs, err := unpackSections(g)
		if err != nil {
			return err
		}
		q, err := decodePart(secs[0])
		if err != nil {
			return err
		}
		parts = append(parts, q)
		h, l := decodeBias(secs[1])
		if h < bHigh {
			bHigh = h
		}
		if l > bLow {
			bLow = l
		}
	}
	merged := mergeParts(parts)
	bias := 0.0
	switch {
	case !math.IsInf(bHigh, 1) && !math.IsInf(bLow, -1):
		bias = (bHigh + bLow) / 2
	case !math.IsInf(bHigh, 1):
		bias = bHigh
	case !math.IsInf(bLow, -1):
		bias = bLow
	}
	out.local = model.FromSolution(merged.x, merged.y, merged.alpha, bias, p.Kernel)
	out.svs = out.local.NSV()
	return nil
}

// bcastActive broadcasts (sample row, label, α) of the owner's local index
// as a 1-row part.
func bcastActive(c *mpi.Comm, solver *smo.Solver, local part, owner, index int) part {
	var payload []byte
	if c.Rank() == owner {
		payload = encodePart(local.x, local.y, solver.Alpha(), []int{index})
	}
	payload = c.Bcast(owner, payload)
	q, err := decodePart(payload)
	if err != nil {
		panic("core: bcastActive: " + err.Error())
	}
	return q
}

// encodeBias packs the rank's local (bHigh, bLow) thresholds.
func encodeBias(solver *smo.Solver) []byte {
	bh, ih, bl, il := solver.LocalExtremes()
	if ih < 0 {
		bh = math.Inf(1)
	}
	if il < 0 {
		bl = math.Inf(-1)
	}
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(bh))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(bl))
	return buf
}

func decodeBias(b []byte) (bHigh, bLow float64) {
	bHigh = math.Float64frombits(binary.LittleEndian.Uint64(b))
	bLow = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	return
}
