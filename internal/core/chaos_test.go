package core

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"casvm/internal/faults"
	"casvm/internal/mpi"
)

// chaosRun trains with a schedule and recovery policy under a deadlock
// timeout, classifying the outcome. Chaos accepts two outcomes: completion,
// or a bounded structural error (corruption can break message decoding).
// Hangs and misclassified errors fail.
func chaosRun(t *testing.T, m Method, p int, sched faults.Schedule, pol RecoveryPolicy) *Output {
	t.Helper()
	d := testSet(t, 480)
	pr := paramsFor(m, p, d)
	pr.Faults = faults.NewSchedule(sched)
	pr.Recovery = Recovery{Policy: pol, CheckpointEvery: 16}

	type res struct {
		out *Output
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := Train(d.X, d.Y, pr)
		done <- res{out, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			// Bounded failure is acceptable under corruption; an
			// unrecovered crash under a recovery policy is not.
			var crash *mpi.CrashError
			if errors.As(r.err, &crash) && pol != RecoverOff {
				t.Fatalf("%s: crash escaped the %s supervisor: %v", m, pol, r.err)
			}
			return nil
		}
		if r.out.Set == nil {
			t.Fatalf("%s: completed without a model", m)
		}
		acc := r.out.Set.Accuracy(d.TestX, d.TestY)
		if acc < 0.85 {
			t.Fatalf("%s: chaos accuracy %.3f < 0.85", m, acc)
		}
		return r.out
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: chaos run deadlocked", m)
	}
	return nil
}

var chaosMethods = []Method{MethodDisSMO, MethodCascade, MethodDCSVM,
	MethodDCFilter, MethodCPSVM, MethodRACA}

// TestChaosMatrix is the `make check` smoke: every method family × three
// fault classes (rank crash under respawn recovery, drop+delay, corrupt),
// fixed seeds, with deadlock detection. The full randomized soak lives in
// TestChaosSoak behind CASVM_SOAK=1 / `make soak`.
func TestChaosMatrix(t *testing.T) {
	scenarios := []struct {
		name  string
		sched faults.Schedule
		pol   RecoveryPolicy
	}{
		{"crash", faults.Schedule{Seed: 11, Events: []faults.ScheduledFault{
			{Kind: "crash-iter", Rank: 1, Iter: 12},
		}}, RecoverRespawn},
		{"drop-delay", faults.Schedule{Seed: 12, Events: []faults.ScheduledFault{
			{Kind: "drop", Rank: 0, Send: 2},
			{Kind: "delay", Rank: 2, Send: 3, DelaySec: 2e-3},
			{Kind: "dup", Rank: 3, Send: 1},
		}}, RecoverRespawn},
		{"corrupt", faults.Schedule{Seed: 13, Events: []faults.ScheduledFault{
			{Kind: "corrupt", Rank: 0, Send: 4},
		}}, RecoverRespawn},
		{"churn", faults.Schedule{Seed: 14, Events: []faults.ScheduledFault{
			{Kind: "leave", Rank: 1, Iter: 12},
			{Kind: "join", Iter: 20},
		}}, RecoverRespawn},
	}
	for _, m := range chaosMethods {
		for _, sc := range scenarios {
			pol := sc.pol
			if sc.name == "churn" && m == MethodDisSMO {
				// Dis-SMO's global-row checkpoints survive re-partitioning,
				// so its churn column exercises the full shrink-then-grow
				// path; the other methods churn under respawn.
				pol = RecoverShrink
			}
			t.Run(string(m)+"/"+sc.name, func(t *testing.T) {
				chaosRun(t, m, 4, sc.sched, pol)
			})
		}
	}
}

// TestChaosSoak is the randomized long soak: seeded random schedules over
// methods and policies, each run checked for deadlock-freedom, bounded
// retries, and (when it completes) convergence. Gated behind CASVM_SOAK=1
// (`make soak`) — too slow for the default test run. Every failure prints
// the schedule seed, which alone reproduces the run.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CASVM_SOAK") == "" {
		t.Skip("set CASVM_SOAK=1 (or run `make soak`) for the randomized chaos soak")
	}
	policies := []RecoveryPolicy{RecoverRespawn, RecoverShrink}
	for seed := int64(1); seed <= 8; seed++ {
		for mi, m := range chaosMethods {
			pol := policies[(int(seed)+mi)%len(policies)]
			if m != MethodDisSMO && pol == RecoverShrink {
				// Shrink re-partitions, which only Dis-SMO's global-row
				// checkpoints survive; other methods soak under respawn.
				pol = RecoverRespawn
			}
			name := fmt.Sprintf("%s/%s/seed=%d", m, pol, seed)
			t.Run(name, func(t *testing.T) {
				sched := faults.RandomSchedule(seed, 4, 4, faults.ScheduleOptions{
					MaxIter: 48, MaxSend: 16, MaxCrashes: 2,
				})
				sched.Policy = string(pol)
				t.Logf("schedule seed=%d events=%v", sched.Seed, sched.Events)
				out := chaosRun(t, m, 4, sched, pol)
				if out != nil && out.Stats.Recoveries > 3 {
					t.Fatalf("retries unbounded: %d recoveries", out.Stats.Recoveries)
				}
			})
		}
	}
}
