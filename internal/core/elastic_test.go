package core

import (
	"testing"

	"casvm/internal/faults"
	"casvm/internal/trace"
)

// churnSchedule builds the golden worker-churn plan: two lease expiries
// ("leave") that shrink the world, then two worker joins absorbed at the
// next checkpoint epoch boundary.
func churnSchedule() *faults.ScheduleInjector {
	return faults.NewSchedule(faults.Schedule{
		Seed: 7,
		Events: []faults.ScheduledFault{
			{Kind: "leave", Rank: 6, Iter: 20},
			{Kind: "leave", Rank: 5, Iter: 30},
			{Kind: "join", Iter: 33},
			{Kind: "join", Iter: 33},
		},
	})
}

// TestDisSMOChurnGoldenHash is the elastic acceptance scenario: a Dis-SMO
// run on P=8 loses two workers to lease expiry (shrinking to 7, then 6),
// later absorbs two joining workers at a checkpoint epoch boundary (growing
// back to 8), and still lands on the fault-free ModelHash — shrink, grow,
// and the global-row-space checkpoints compose because Dis-SMO's trajectory
// is partition-independent.
func TestDisSMOChurnGoldenHash(t *testing.T) {
	d := testSet(t, 480)

	clean := paramsFor(MethodDisSMO, 8, d)
	cleanOut, err := Train(d.X, d.Y, clean)
	if err != nil {
		t.Fatal(err)
	}
	if cleanOut.Stats.Iters < 48 {
		t.Fatalf("fault-free run converged in %d iters; churn sites unreachable", cleanOut.Stats.Iters)
	}

	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Faults = churnSchedule()
	pr.Recovery = Recovery{Policy: RecoverShrink, CheckpointEvery: 8}
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatalf("churn training failed: %v", err)
	}

	if out.Stats.P != 8 {
		t.Fatalf("final P=%d, want 8 (shrank to 6, grew back)", out.Stats.P)
	}
	if out.Stats.Recoveries != 2 {
		t.Fatalf("Recoveries=%d, want 2 (the two lease expiries)", out.Stats.Recoveries)
	}
	if got := out.Stats.LostRanks; len(got) != 2 || got[0] != 6 || got[1] != 5 {
		t.Fatalf("LostRanks=%v, want [6 5]", got)
	}
	if out.Stats.Grows != 1 {
		t.Fatalf("Grows=%d, want 1 (both joins absorbed at one epoch boundary)", out.Stats.Grows)
	}
	if out.Stats.JoinedRanks != 2 {
		t.Fatalf("JoinedRanks=%d, want 2", out.Stats.JoinedRanks)
	}
	if out.Stats.Degraded {
		t.Fatal("churn recovery must not be degraded")
	}
	if out.Stats.RecoverySec <= 0 {
		t.Fatal("RecoverySec not charged")
	}
	if out.Stats.TotalSec <= cleanOut.Stats.TotalSec {
		t.Fatalf("churn TotalSec %.4f not above clean %.4f: lost work unpriced",
			out.Stats.TotalSec, cleanOut.Stats.TotalSec)
	}
	if got, want := hashOf(t, out), hashOf(t, cleanOut); got != want {
		t.Fatalf("churn model hash %s != fault-free %s", got, want)
	}
	if out.Stats.Iters != cleanOut.Stats.Iters {
		t.Fatalf("churn iters %d != clean %d", out.Stats.Iters, cleanOut.Stats.Iters)
	}
}

// TestGrowLocalSolveMethods: the independent-model and tree methods also
// absorb a mid-run join — their (rank, seq) checkpoints cannot survive the
// re-partition, so the grown run restarts from scratch at the new width and
// is checked for convergence, not hash identity.
func TestGrowLocalSolveMethods(t *testing.T) {
	d := testSet(t, 480)
	for _, m := range []Method{MethodRACA, MethodCascade} {
		t.Run(string(m), func(t *testing.T) {
			pr := paramsFor(m, 4, d)
			pr.Faults = faults.NewSchedule(faults.Schedule{
				Seed:   3,
				Events: []faults.ScheduledFault{{Kind: "join", Iter: 10}},
			})
			pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 8}
			out, err := Train(d.X, d.Y, pr)
			if err != nil {
				t.Fatalf("%s: grow training failed: %v", m, err)
			}
			if out.Stats.P != 5 {
				t.Fatalf("%s: final P=%d, want 5", m, out.Stats.P)
			}
			if out.Stats.Grows != 1 || out.Stats.JoinedRanks != 1 {
				t.Fatalf("%s: Grows=%d JoinedRanks=%d, want 1/1",
					m, out.Stats.Grows, out.Stats.JoinedRanks)
			}
			if out.Stats.Recoveries != 0 {
				t.Fatalf("%s: Recoveries=%d, want 0 (a grow is not a crash)", m, out.Stats.Recoveries)
			}
			acc := out.Set.Accuracy(d.TestX, d.TestY)
			if acc < 0.85 {
				t.Fatalf("%s: grown accuracy %.3f < 0.85", m, acc)
			}
		})
	}
}

// TestJoinIgnoredWithoutSupervisor: join events need a recovery supervisor
// to act on them; an unsupervised run must complete cleanly as if the
// schedule held no joins, not abort with a stray resize.
func TestJoinIgnoredWithoutSupervisor(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodDisSMO, 4, d)
	pr.Faults = faults.NewSchedule(faults.Schedule{
		Seed:   5,
		Events: []faults.ScheduledFault{{Kind: "join", Iter: 10}},
	})
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatalf("unsupervised run with pending joins failed: %v", err)
	}
	if out.Stats.P != 4 || out.Stats.Grows != 0 {
		t.Fatalf("P=%d Grows=%d, want 4/0: no supervisor, no grow", out.Stats.P, out.Stats.Grows)
	}
}

// TestGrowObservability: a grow emits its own recovery span and counters,
// distinct from crash recoveries.
func TestGrowObservability(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodDisSMO, 4, d)
	pr.Faults = faults.NewSchedule(faults.Schedule{
		Seed:   9,
		Events: []faults.ScheduledFault{{Kind: "join", Iter: 10}},
	})
	pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 8}
	pr.Metrics = trace.NewRegistry()
	if _, err := Train(d.X, d.Y, pr); err != nil {
		t.Fatal(err)
	}
	snap := pr.Metrics.Snapshot()
	if snap["casvm_grows_total"] != 1 {
		t.Fatalf("casvm_grows_total=%v, want 1", snap["casvm_grows_total"])
	}
	if snap["casvm_grow_ranks_total"] != 1 {
		t.Fatalf("casvm_grow_ranks_total=%v, want 1", snap["casvm_grow_ranks_total"])
	}
	if snap["casvm_recoveries_total"] != 0 {
		t.Fatalf("casvm_recoveries_total=%v, want 0", snap["casvm_recoveries_total"])
	}
}
