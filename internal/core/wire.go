package core

import (
	"encoding/binary"
	"fmt"

	"casvm/internal/la"
	"casvm/internal/mpi"
)

// Wire envelopes for the sample payloads the methods exchange: a sample
// block is a matrix section plus a label section plus (optionally) a
// multiplier section, each length-prefixed. Features travel as float32 (see
// internal/la), labels and multipliers as float64.

// part is a travelling set of samples.
type part struct {
	x     *la.Matrix
	y     []float64
	alpha []float64 // nil when not carried
}

func packSections(sections ...[]byte) []byte {
	total := 4
	for _, s := range sections {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(sections)))
	out = append(out, b4[:]...)
	for _, s := range sections {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(s)))
		out = append(out, b4[:]...)
		out = append(out, s...)
	}
	return out
}

func unpackSections(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: short envelope")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("core: short section header %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("core: short section %d", i)
		}
		out[i] = buf[:l:l]
		buf = buf[l:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes", len(buf))
	}
	return out, nil
}

// encodePart serialises the selected rows of (x, y[, alpha]).
func encodePart(x *la.Matrix, y, alpha []float64, rows []int) []byte {
	ys := subsetF64(y, rows)
	if alpha == nil {
		return packSections(x.EncodeRows(rows), la.EncodeF64(ys))
	}
	return packSections(x.EncodeRows(rows), la.EncodeF64(ys), la.EncodeF64(subsetF64(alpha, rows)))
}

// decodePart parses a payload produced by encodePart.
func decodePart(buf []byte) (part, error) {
	secs, err := unpackSections(buf)
	if err != nil {
		return part{}, err
	}
	if len(secs) != 2 && len(secs) != 3 {
		return part{}, fmt.Errorf("core: envelope has %d sections", len(secs))
	}
	x, err := la.DecodeMatrix(secs[0])
	if err != nil {
		return part{}, err
	}
	y, err := la.DecodeF64(secs[1])
	if err != nil {
		return part{}, err
	}
	p := part{x: x, y: y}
	if len(secs) == 3 {
		if p.alpha, err = la.DecodeF64(secs[2]); err != nil {
			return part{}, err
		}
		if len(p.alpha) != len(y) {
			return part{}, fmt.Errorf("core: %d alphas for %d labels", len(p.alpha), len(y))
		}
	}
	if x.Rows() != len(y) {
		return part{}, fmt.Errorf("core: %d rows for %d labels", x.Rows(), len(y))
	}
	return p, nil
}

// mergeParts concatenates travelling parts into one training set. Alphas
// are zero-filled when any contributor lacked them.
func mergeParts(parts []part) part {
	if len(parts) == 1 {
		return parts[0]
	}
	out := parts[0]
	haveAlpha := out.alpha != nil
	for _, q := range parts[1:] {
		out.x = la.Concat(out.x, q.x)
		out.y = append(append([]float64(nil), out.y...), q.y...)
		if q.alpha == nil {
			haveAlpha = false
		}
	}
	if haveAlpha {
		merged := append([]float64(nil), parts[0].alpha...)
		for _, q := range parts[1:] {
			merged = append(merged, q.alpha...)
		}
		out.alpha = merged
	} else {
		out.alpha = nil
	}
	return out
}

// allRows returns [0, 1, …, m).
func allRows(m int) []int {
	rows := make([]int, m)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// scatterBlocks distributes (x, y) from root in nearly-even contiguous
// blocks; every rank returns its local part. Only root may pass non-nil x.
func scatterBlocks(c *mpi.Comm, x *la.Matrix, y []float64) (part, error) {
	p := c.Size()
	var blocks [][]byte
	if c.Rank() == 0 {
		blocks = make([][]byte, p)
		for r, rows := range evenBlocks(x.Rows(), p) {
			blocks[r] = encodePart(x, y, nil, rows)
		}
	}
	mine := c.Scatterv(0, blocks)
	return decodePart(mine)
}

// regroup redistributes local samples so that rank j ends up with every
// sample assigned to cluster j, as one personalized all-to-all exchange.
// Alphas travel when the local part carries them.
func regroup(c *mpi.Comm, local part, assign []int) (part, error) {
	p := c.Size()
	byDst := make([][]int, p)
	for i, a := range assign {
		byDst[a] = append(byDst[a], i)
	}
	blocks := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		blocks[dst] = encodePart(local.x, local.y, local.alpha, byDst[dst])
	}
	received := c.Alltoallv(blocks)
	parts := make([]part, 0, p)
	for _, buf := range received {
		q, err := decodePart(buf)
		if err != nil {
			return part{}, err
		}
		parts = append(parts, q)
	}
	return mergeParts(parts), nil
}
