// Checkpoint/restart and elastic rank recovery.
//
// The in-process runtime recovers by gang restart: when a rank crashes the
// world aborts, the supervisor in train.go prices the lost work (the failed
// world's MaxClock plus a restart penalty becomes the next attempt's base
// clock), and the whole computation re-runs. Because every attempt is
// deterministic — same seed, same partitioning, same RNG streams — the only
// state worth carrying across attempts is solver progress, held here:
//
//   - Local solves (tree layers, CP/CA shards) checkpoint per (rank, solve
//     sequence): the re-executed attempt reaches the same solve call in the
//     same order and resumes it from the snapshot instead of iterating from
//     zero.
//   - Dis-SMO checkpoints in global row space: each rank deposits its
//     alpha/f block every K iterations, and an epoch is globally consistent
//     once the deposited blocks cover all m rows. Lockstep collectives
//     bound cross-rank skew to one iteration, so the highest covered epoch
//     is a state every surviving rank has passed through. Global row space
//     also makes the checkpoint partition-independent: a shrunk world with
//     fewer, larger contiguous blocks re-slices the same arrays.
//
// Checkpointing is not free in the α–β model: every deposit charges the
// point-to-point cost of shipping the snapshot's bytes off-rank, so the
// recovery overhead the paper's cost model would predict shows up in
// TotalSec like any other communication.
package core

import (
	"sync"

	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// RecoveryPolicy selects how Train reacts to a rank crash.
type RecoveryPolicy string

const (
	// RecoverOff (the zero value) keeps the pre-recovery behavior: fail
	// fast, or degrade when Params.Degraded allows it.
	RecoverOff RecoveryPolicy = ""
	// RecoverRespawn restarts the world at full width from the last
	// checkpoint. The recovered model is bit-identical to the fault-free
	// run's.
	RecoverRespawn RecoveryPolicy = "respawn"
	// RecoverShrink rebuilds the world without the crashed ranks,
	// re-partitioning their shards onto the survivors, and resumes from the
	// last globally-consistent checkpoint where the method's state is
	// partition-independent (Dis-SMO).
	RecoverShrink RecoveryPolicy = "shrink"
)

// ParseRecoveryPolicy resolves a -recover flag value.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch s {
	case "", "off":
		return RecoverOff, nil
	case "respawn":
		return RecoverRespawn, nil
	case "shrink":
		return RecoverShrink, nil
	}
	return "", errBadPolicy(s)
}

type errBadPolicy string

func (e errBadPolicy) Error() string {
	return "core: unknown recovery policy \"" + string(e) + "\" (want off, respawn or shrink)"
}

// Recovery configures the checkpoint/restart supervisor.
type Recovery struct {
	Policy RecoveryPolicy
	// CheckpointEvery snapshots solver state every K iterations (0 = 64).
	CheckpointEvery int
	// MaxRestarts bounds recovery attempts before giving up (0 = 3).
	MaxRestarts int
	// RestartPenaltySec is the modeled virtual-time cost of detecting the
	// failure and relaunching — added to the failed attempt's MaxClock to
	// form the next attempt's base clock (0 = 0.5s, the order of a job
	// relaunch on the paper's clusters).
	RestartPenaltySec float64
}

func (r Recovery) every() int {
	if r.CheckpointEvery <= 0 {
		return 64
	}
	return r.CheckpointEvery
}

func (r Recovery) maxRestarts() int {
	if r.MaxRestarts <= 0 {
		return 3
	}
	return r.MaxRestarts
}

func (r Recovery) penalty() float64 {
	if r.RestartPenaltySec <= 0 {
		return 0.5
	}
	return r.RestartPenaltySec
}

// ckptKey addresses a local-solve checkpoint: which rank, and which solve
// in that rank's deterministic execution order.
type ckptKey struct {
	rank int
	seq  int
}

// disEpoch accumulates one Dis-SMO checkpoint epoch in global row space.
type disEpoch struct {
	alpha []float64
	f     []float64
	rows  int // deposited row coverage; complete when rows == m
}

// ckptStore holds all checkpoints of one supervised Train call. It lives
// outside the world, so it survives aborts and restarts.
type ckptStore struct {
	mu    sync.Mutex
	m     int // global sample count (Dis-SMO epoch width)
	local map[ckptKey]*smo.Checkpoint
	dis   map[int]*disEpoch
	best  int // highest complete Dis-SMO epoch (-1 when none)
}

func newCkptStore(m int) *ckptStore {
	return &ckptStore{m: m, local: map[ckptKey]*smo.Checkpoint{}, dis: map[int]*disEpoch{}, best: -1}
}

// putLocal stores rank's checkpoint for its seq-th local solve. The
// snapshot is already a deep copy (smo.Snapshot), so it is kept as-is.
func (s *ckptStore) putLocal(rank, seq int, ck *smo.Checkpoint) {
	s.mu.Lock()
	s.local[ckptKey{rank, seq}] = ck
	s.mu.Unlock()
}

// getLocal returns the stored checkpoint for (rank, seq), nil when none.
func (s *ckptStore) getLocal(rank, seq int) *smo.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local[ckptKey{rank, seq}]
}

// dropLocal forgets every local-solve checkpoint. Shrink recovery calls it:
// the re-partitioned shards no longer match any (rank, seq) snapshot.
// Dis-SMO epochs are partition-independent and survive.
func (s *ckptStore) dropLocal() {
	s.mu.Lock()
	s.local = map[ckptKey]*smo.Checkpoint{}
	s.mu.Unlock()
}

// depositDis records one rank's Dis-SMO block for an epoch. rowStart is the
// block's first global row. Once an epoch's deposits cover all m rows it
// becomes the consistent restore point and older epochs are pruned.
func (s *ckptStore) depositDis(epoch, rowStart int, alpha, f []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.best {
		return // stale deposit from a restarted attempt
	}
	ep := s.dis[epoch]
	if ep == nil {
		ep = &disEpoch{alpha: make([]float64, s.m), f: make([]float64, s.m)}
		s.dis[epoch] = ep
	}
	copy(ep.alpha[rowStart:rowStart+len(alpha)], alpha)
	copy(ep.f[rowStart:rowStart+len(f)], f)
	ep.rows += len(alpha)
	if ep.rows == s.m {
		s.best = epoch
		for e := range s.dis {
			if e < epoch {
				delete(s.dis, e)
			}
		}
	}
}

// consistentDis returns the highest globally-consistent Dis-SMO epoch and
// its full alpha/f arrays (not copies — callers slice, copy-on-restore is
// the solver's job). ok is false when no epoch has completed yet.
func (s *ckptStore) consistentDis() (epoch int, alpha, f []float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.best < 0 {
		return 0, nil, nil, false
	}
	ep := s.dis[s.best]
	return s.best, ep.alpha, ep.f, true
}

// recoveryRuntime is the per-Train handle threaded from the supervisor into
// the method implementations: the store, the cadence, and the observability
// sinks. A nil *recoveryRuntime disables checkpointing everywhere.
type recoveryRuntime struct {
	store   *ckptStore
	every   int
	machine perfmodel.Machine
	tl      *trace.Timeline
	metrics *trace.Registry

	// seq counts local solves per rank within the current attempt. Each
	// index is touched only by its rank's goroutine (and by resetSeqs
	// between attempts, after the world has joined), so no lock is needed.
	seq []int
}

func (rt *recoveryRuntime) resetSeqs(p int) {
	rt.seq = make([]int, p)
}

// nextSeq allocates the rank's next local-solve sequence number.
func (rt *recoveryRuntime) nextSeq(rank int) int {
	n := rt.seq[rank]
	rt.seq[rank]++
	return n
}

// chargeCheckpoint prices one deposit: shipping the snapshot off-rank at
// point-to-point cost, recorded as a checkpoint span and counters.
func (rt *recoveryRuntime) chargeCheckpoint(c *mpi.Comm, bytes int) {
	sp := c.Recorder().BeginVirt(trace.CatCheckpoint, "checkpoint", c.Clock())
	c.ChargeTime(rt.machine.PtoP(bytes))
	c.Recorder().EndVirt(sp, c.Clock())
	if rt.metrics != nil {
		rt.metrics.Counter("casvm_checkpoints_total", "solver state snapshots taken").Inc()
		rt.metrics.Counter("casvm_checkpoint_bytes_total", "serialized checkpoint bytes").Add(int64(bytes))
	}
}

// solverConfigCkpt is solverConfigAt plus checkpoint/restore wiring for the
// rank's next local solve. It must be called in the same order on every
// attempt (guaranteed by deterministic re-execution) so sequence numbers
// line up with the stored snapshots.
func (p Params) solverConfigCkpt(c *mpi.Comm) smo.Config {
	cfg := p.solverConfigAt(c.Rank())
	rt := p.rt
	if rt == nil {
		return cfg
	}
	rank := c.Rank()
	seq := rt.nextSeq(rank)
	cfg.CheckpointEvery = rt.every
	cfg.CheckpointSink = func(ck *smo.Checkpoint) {
		rt.chargeCheckpoint(c, ck.Bytes())
		rt.store.putLocal(rank, seq, ck)
	}
	if ck := rt.store.getLocal(rank, seq); ck != nil {
		cfg.Restore = ck
		if rt.metrics != nil {
			rt.metrics.Counter("casvm_restores_total", "solver resumes from checkpoint").Inc()
		}
	}
	return cfg
}
