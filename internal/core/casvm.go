package core

import (
	"fmt"

	"casvm/internal/la"
	"casvm/internal/mpi"
	"casvm/internal/partition"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// trainCASVM implements the communication-avoiding family (§IV-B):
//
//	FCFS-CA — parallel First-Come-First-Served partitioning (Alg 4)
//	BKM-CA  — distributed balanced K-means (Alg 5, parallelised)
//	RA-CA   — random-averaging: keep the local block, no communication
//
// Under PlacementDistributed (casvm2), each node starts with its block in
// place; RA-CA then moves zero bytes over the network — the defining
// property of CA-SVM. Under PlacementRoot (casvm1) the run begins with a
// scatter from rank 0 (the Fig 9 comparison).
func trainCASVM(c *mpi.Comm, full *la.Matrix, fullY []float64, p Params, out *rankResult) error {
	rec := c.Recorder()
	c.SetPhase("partition")
	spInit := rec.BeginVirt(trace.CatInit, "partition", c.Clock())
	var local part
	var err error
	if p.Placement == PlacementRoot {
		if local, err = scatterBlocks(c, full, fullY); err != nil {
			return err
		}
	} else {
		// casvm2: the block is already resident on this node. Pull it
		// from the shared input without any message traffic, modelling
		// data generated or stored in place.
		rows := evenBlocks(full.Rows(), c.Size())[c.Rank()]
		local = part{x: full.Subset(rows), y: subsetF64(fullY, rows)}
	}

	opts := partition.Options{RatioBalanced: p.RatioBalanced}
	switch p.Method {
	case MethodFCFSCA:
		pr, err := partition.ParallelFCFS(c, local.x, local.y, opts)
		if err != nil {
			return err
		}
		if local, err = regroup(c, local, pr.Assign); err != nil {
			return err
		}
		out.center = append([]float64(nil), pr.Centers.DenseRow(c.Rank())...)
	case MethodBKMCA:
		pr, kmIters, err := partition.ParallelBKM(c, local.x, local.y, opts, p.KMeansMaxIter)
		if err != nil {
			return err
		}
		out.kmIters = kmIters
		if local, err = regroup(c, local, pr.Assign); err != nil {
			return err
		}
		out.center = append([]float64(nil), pr.Centers.DenseRow(c.Rank())...)
	case MethodRACA:
		// The resident block IS the random partition (the dataset is
		// shuffled); the center is the block mean (eqn 14). Zero
		// communication under casvm2.
		out.center = local.x.Mean(nil)
		c.Charge(float64(local.x.NNZ()))
	default:
		return fmt.Errorf("core: trainCASVM got %q", p.Method)
	}
	out.partSize = local.x.Rows()
	out.initSec = c.Clock()
	rec.EndVirt(spInit, c.Clock())

	c.SetPhase("solve")
	spSolve := rec.BeginVirt(trace.CatTrain, "solve", c.Clock())
	res, err := smo.Solve(local.x, local.y, p.solverConfigCkpt(c), nil)
	if err != nil {
		return err
	}
	c.Charge(res.Flops)
	rec.EndVirt(spSolve, c.Clock())
	out.iters = res.Iters
	out.local = localModel(local.x, local.y, res, p.Kernel)
	out.svs = out.local.NSV()
	out.fillClassCounts(local.y, res.Alpha)
	out.trainSec = c.Clock() - out.initSec
	return nil
}
