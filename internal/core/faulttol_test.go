package core

import (
	"errors"
	"testing"
	"time"

	"casvm/internal/faults"
	"casvm/internal/mpi"
)

// TestCASVMDegradedSurvivesRankCrash is the acceptance scenario: with P=8
// and one rank crashed mid-training, the CA-SVM path completes in degraded
// mode with 7/8 shards' models and prediction accuracy within 2 points of
// the fault-free run; the lost shard is reported.
func TestCASVMDegradedSurvivesRankCrash(t *testing.T) {
	d := testSet(t, 480)

	clean := paramsFor(MethodRACA, 8, d)
	cleanOut, err := Train(d.X, d.Y, clean)
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc := cleanOut.Set.Accuracy(d.TestX, d.TestY)

	pr := paramsFor(MethodRACA, 8, d)
	pr.Degraded = true
	pr.Faults = faults.New(faults.Plan{CrashAtIter: map[int]int{3: 10}})
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatalf("degraded training failed: %v", err)
	}
	if !out.Stats.Degraded {
		t.Fatal("Stats.Degraded not set")
	}
	if got := out.Stats.LostRanks; len(got) != 1 || got[0] != 3 {
		t.Fatalf("LostRanks=%v, want [3]", got)
	}
	if out.Set.P() != 7 {
		t.Fatalf("survivor models: %d, want 7", out.Set.P())
	}
	acc := out.Set.Accuracy(d.TestX, d.TestY)
	if acc < cleanAcc-0.02 {
		t.Fatalf("degraded accuracy %.3f vs clean %.3f: drop exceeds 2 points", acc, cleanAcc)
	}
	// Routed voting over survivors must hold up as well.
	voteAcc := out.Set.AccuracyVote(d.TestX, d.TestY, 3)
	if voteAcc < cleanAcc-0.02 {
		t.Fatalf("degraded vote accuracy %.3f vs clean %.3f: drop exceeds 2 points", voteAcc, cleanAcc)
	}
}

// TestDisSMOFailsFastOnCrash: a method that genuinely needs every rank
// must not hang when one dies — peers blocked in allreduce are unblocked
// and the crashed rank's typed error surfaces.
func TestDisSMOFailsFastOnCrash(t *testing.T) {
	d := testSet(t, 240)
	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Degraded = true // degraded mode cannot save a tightly-coupled method
	pr.Faults = faults.New(faults.Plan{CrashAtIter: map[int]int{3: 5}})

	done := make(chan error, 1)
	go func() {
		_, err := Train(d.X, d.Y, pr)
		done <- err
	}()
	select {
	case err := <-done:
		var crash *mpi.CrashError
		if !errors.As(err, &crash) {
			t.Fatalf("want CrashError, got %v", err)
		}
		if crash.Rank != 3 {
			t.Fatalf("crashed rank %d, want 3", crash.Rank)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dis-SMO hung after a rank crash")
	}
}

// TestDegradedOffStillAborts: without the opt-in, a crash aborts even the
// independent-model methods.
func TestDegradedOffStillAborts(t *testing.T) {
	d := testSet(t, 240)
	pr := paramsFor(MethodRACA, 8, d)
	pr.Faults = faults.New(faults.Plan{CrashAtIter: map[int]int{2: 5}})
	_, err := Train(d.X, d.Y, pr)
	var crash *mpi.CrashError
	if !errors.As(err, &crash) || crash.Rank != 2 {
		t.Fatalf("want rank-2 CrashError, got %v", err)
	}
}

// TestCorruptionBoundedOutcome: corrupting every message on the wire must
// never hang or panic the runtime — training either completes (a flipped
// feature byte decodes to a perturbed but valid sample) or fails with a
// structural decode error, and is never misreported as a rank crash.
func TestCorruptionBoundedOutcome(t *testing.T) {
	d := testSet(t, 240)
	in := faults.New(faults.Plan{Seed: 5, CorruptProb: 1})
	pr := paramsFor(MethodRACA, 4, d)
	pr.Placement = PlacementRoot // force a scatter so there is traffic to corrupt
	pr.Faults = in
	done := make(chan error, 1)
	go func() {
		_, err := Train(d.X, d.Y, pr)
		done <- err
	}()
	select {
	case err := <-done:
		var crash *mpi.CrashError
		if errors.As(err, &crash) {
			t.Fatalf("corruption misreported as crash: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("corrupted run hung")
	}
	if in.Count("corrupt") == 0 {
		t.Fatal("no corruption was injected")
	}
}

// TestDelayInjectionPreservesModel: pure latency faults change virtual
// time, never results.
func TestDelayInjectionPreservesModel(t *testing.T) {
	d := testSet(t, 240)
	pr := paramsFor(MethodCPSVM, 4, d)
	base, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	pr2 := paramsFor(MethodCPSVM, 4, d)
	pr2.Faults = faults.New(faults.Plan{Seed: 9, DelayProb: 0.5, DelaySec: 1e-3})
	slow, err := Train(d.X, d.Y, pr2)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.SVs != slow.Stats.SVs || base.Stats.Iters != slow.Stats.Iters {
		t.Fatalf("delays changed training: svs %d vs %d, iters %d vs %d",
			base.Stats.SVs, slow.Stats.SVs, base.Stats.Iters, slow.Stats.Iters)
	}
	if slow.Stats.TotalSec <= base.Stats.TotalSec {
		t.Fatalf("delays not charged: %.6f vs %.6f", slow.Stats.TotalSec, base.Stats.TotalSec)
	}
}
