package core

import (
	"strings"
	"testing"

	"casvm/internal/faults"
	"casvm/internal/trace"
)

// crashSchedule is a single seeded mid-run crash of rank `rank` at
// iteration `iter`.
func crashSchedule(rank, iter int) *faults.ScheduleInjector {
	return faults.NewSchedule(faults.Schedule{
		Seed:   1,
		Events: []faults.ScheduledFault{{Kind: "crash-iter", Rank: rank, Iter: iter}},
	})
}

func hashOf(t *testing.T, out *Output) string {
	t.Helper()
	h, err := ModelHash(out.Set)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestDisSMORespawnBitIdentical is the golden acceptance scenario: Dis-SMO
// on P=8 with rank 3 killed mid-run, recovered by respawn from the last
// consistent checkpoint, finishes with the exact model of the fault-free
// run — same SHA-256 — with Degraded false and the recovery accounted.
func TestDisSMORespawnBitIdentical(t *testing.T) {
	d := testSet(t, 480)

	clean := paramsFor(MethodDisSMO, 8, d)
	cleanOut, err := Train(d.X, d.Y, clean)
	if err != nil {
		t.Fatal(err)
	}
	if cleanOut.Stats.Iters < 48 {
		t.Fatalf("fault-free run converged in %d iters; crash site unreachable", cleanOut.Stats.Iters)
	}

	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Faults = crashSchedule(3, 40)
	pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 16}
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatalf("recovered training failed: %v", err)
	}

	if out.Stats.Degraded {
		t.Fatal("respawn recovery must not be degraded: every shard contributed")
	}
	if out.Stats.Recoveries != 1 {
		t.Fatalf("Recoveries=%d, want 1", out.Stats.Recoveries)
	}
	if got := out.Stats.LostRanks; len(got) != 1 || got[0] != 3 {
		t.Fatalf("LostRanks=%v, want [3]", got)
	}
	if out.Stats.RecoverySec <= 0 {
		t.Fatal("RecoverySec not charged")
	}
	if out.Stats.TotalSec <= cleanOut.Stats.TotalSec {
		t.Fatalf("recovered TotalSec %.4f not above clean %.4f: lost work unpriced",
			out.Stats.TotalSec, cleanOut.Stats.TotalSec)
	}
	if got, want := hashOf(t, out), hashOf(t, cleanOut); got != want {
		t.Fatalf("recovered model hash %s != fault-free %s", got, want)
	}
	if out.Stats.Iters != cleanOut.Stats.Iters {
		t.Fatalf("recovered iters %d != clean %d", out.Stats.Iters, cleanOut.Stats.Iters)
	}
}

// TestDisSMOShrinkConverges: shrink recovery rebuilds the world without the
// dead rank, re-slices the global-row-space checkpoint over 7 blocks, and
// converges to the same model — Dis-SMO's trajectory is partition-
// independent, so even the hash survives the re-partition.
func TestDisSMOShrinkConverges(t *testing.T) {
	d := testSet(t, 480)

	clean := paramsFor(MethodDisSMO, 8, d)
	cleanOut, err := Train(d.X, d.Y, clean)
	if err != nil {
		t.Fatal(err)
	}

	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Faults = crashSchedule(3, 40)
	pr.Recovery = Recovery{Policy: RecoverShrink, CheckpointEvery: 16}
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatalf("shrink recovery failed: %v", err)
	}
	if out.Stats.P != 7 {
		t.Fatalf("shrunk world P=%d, want 7", out.Stats.P)
	}
	if got := out.Stats.LostRanks; len(got) != 1 || got[0] != 3 {
		t.Fatalf("LostRanks=%v, want [3]", got)
	}
	if out.Stats.Recoveries != 1 {
		t.Fatalf("Recoveries=%d, want 1", out.Stats.Recoveries)
	}
	if got, want := hashOf(t, out), hashOf(t, cleanOut); got != want {
		t.Fatalf("shrink-recovered model hash %s != fault-free %s "+
			"(Dis-SMO state is partition-independent)", got, want)
	}
	acc := out.Set.Accuracy(d.TestX, d.TestY)
	if acc < 0.88 {
		t.Fatalf("shrink-recovered accuracy %.3f < 0.88", acc)
	}
}

// TestLocalSolveRespawnBitIdentical: the (rank, solve-sequence) checkpoint
// path — used by the reduction trees and the independent-model methods —
// also recovers bit-identically under respawn.
func TestLocalSolveRespawnBitIdentical(t *testing.T) {
	d := testSet(t, 480)
	for _, m := range []Method{MethodCascade, MethodDCSVM, MethodRACA, MethodCPSVM} {
		t.Run(string(m), func(t *testing.T) {
			clean := paramsFor(m, 4, d)
			cleanOut, err := Train(d.X, d.Y, clean)
			if err != nil {
				t.Fatal(err)
			}
			pr := paramsFor(m, 4, d)
			pr.Faults = crashSchedule(2, 10)
			pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 8}
			out, err := Train(d.X, d.Y, pr)
			if err != nil {
				t.Fatalf("%s: recovered training failed: %v", m, err)
			}
			if out.Stats.Degraded {
				t.Fatal("respawn must not degrade")
			}
			if out.Stats.Recoveries != 1 {
				t.Fatalf("Recoveries=%d, want 1", out.Stats.Recoveries)
			}
			if got, want := hashOf(t, out), hashOf(t, cleanOut); got != want {
				t.Fatalf("%s: recovered hash %s != clean %s", m, got, want)
			}
		})
	}
}

// TestRecoveryObservability: recovery emits checkpoint and recovery spans
// into the timeline and counters into the metrics registry, and the run
// report carries the realized fault schedule plus recovery totals.
func TestRecoveryObservability(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Faults = crashSchedule(3, 40)
	pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 16}
	pr.Timeline = trace.NewTimeline(8)
	pr.Metrics = trace.NewRegistry()
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}

	var ckSpans, recSpans int
	for _, e := range pr.Timeline.Events() {
		switch e.Cat {
		case trace.CatCheckpoint:
			ckSpans++
		case trace.CatRecovery:
			recSpans++
			if !strings.HasPrefix(e.Name, "recovery:") {
				t.Fatalf("recovery span named %q", e.Name)
			}
			if e.VirtDurSec <= 0 {
				t.Fatal("recovery span carries no virtual duration")
			}
		}
	}
	if ckSpans == 0 {
		t.Fatal("no checkpoint spans recorded")
	}
	if recSpans != 1 {
		t.Fatalf("recovery spans=%d, want 1", recSpans)
	}

	snap := pr.Metrics.Snapshot()
	if snap["casvm_recoveries_total"] != 1 {
		t.Fatalf("casvm_recoveries_total=%v, want 1", snap["casvm_recoveries_total"])
	}
	if snap["casvm_checkpoints_total"] == 0 {
		t.Fatal("casvm_checkpoints_total not incremented")
	}
	if snap["casvm_restores_total"] == 0 {
		t.Fatal("casvm_restores_total not incremented")
	}

	rep, err := BuildReport(out, pr, "core-test", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries != 1 || rep.RecoverySec <= 0 {
		t.Fatalf("report recovery totals: %d / %v", rep.Recoveries, rep.RecoverySec)
	}
	if rep.Faults == nil {
		t.Fatal("report missing faults block")
	}
	if len(rep.Faults.Schedule) != 1 || len(rep.Faults.Injected) != 1 {
		t.Fatalf("faults block schedule=%d injected=%d, want 1/1",
			len(rep.Faults.Schedule), len(rep.Faults.Injected))
	}
	if rep.Faults.Policy != "respawn" || rep.Faults.CheckpointEvery != 16 {
		t.Fatalf("faults block policy=%q every=%d", rep.Faults.Policy, rep.Faults.CheckpointEvery)
	}
}

// TestReplayFromReport: a report's faults block reconstructs the exact
// schedule — replaying it reproduces the recovered run's model hash.
func TestReplayFromReport(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodDisSMO, 8, d)
	pr.Faults = crashSchedule(3, 40)
	pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 16}
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(out, pr, "", 0)
	if err != nil {
		t.Fatal(err)
	}

	replay := paramsFor(MethodDisSMO, 8, d)
	replay.Faults = faults.NewSchedule(faults.ScheduleFromFaults(rep.Faults))
	replay.Recovery = Recovery{Policy: RecoveryPolicy(rep.Faults.Policy),
		CheckpointEvery: rep.Faults.CheckpointEvery}
	out2, err := Train(d.X, d.Y, replay)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if out2.Stats.Recoveries != out.Stats.Recoveries {
		t.Fatalf("replay recoveries %d != original %d", out2.Stats.Recoveries, out.Stats.Recoveries)
	}
	if got, want := hashOf(t, out2), hashOf(t, out); got != want {
		t.Fatalf("replay hash %s != original %s", got, want)
	}
}

// TestRecoveryBudgetExhausted: more crashes than MaxRestarts fails with a
// bounded, typed error instead of looping forever.
func TestRecoveryBudgetExhausted(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodDisSMO, 4, d)
	pr.Faults = faults.NewSchedule(faults.Schedule{
		Seed: 1,
		Events: []faults.ScheduledFault{
			{Kind: "crash-iter", Rank: 0, Iter: 10},
			{Kind: "crash-iter", Rank: 1, Iter: 20},
			{Kind: "crash-iter", Rank: 2, Iter: 30},
		},
	})
	pr.Recovery = Recovery{Policy: RecoverRespawn, CheckpointEvery: 8, MaxRestarts: 2}
	_, err := Train(d.X, d.Y, pr)
	if err == nil {
		t.Fatal("want budget-exhausted error")
	}
	if !strings.Contains(err.Error(), "recovery budget exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}
