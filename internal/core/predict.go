package core

import (
	"errors"
	"fmt"

	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
)

// PredictDistributed executes the prediction process of Alg 6 over a fresh
// world of set.P() ranks: rank 0 holds the query set and the data centers,
// routes each query to the rank whose center is nearest (one Scatterv of
// sample blocks), every rank classifies its queries with its resident
// model file, and the labels gather back at rank 0.
//
// The paper's point (§IV-B) is that this communication is negligible next
// to training — the returned Stats lets callers verify it: only the query
// features and one float per label cross the network.
func PredictDistributed(set *model.Set, q *la.Matrix, machine perfmodel.Machine, seed int64) ([]float64, Stats, error) {
	if set == nil || len(set.Models) == 0 {
		return nil, Stats{}, errors.New("core: PredictDistributed: empty model set")
	}
	if q == nil || q.Rows() == 0 {
		return nil, Stats{}, errors.New("core: PredictDistributed: no queries")
	}
	p := set.P()
	world := mpi.NewWorld(p, machine, seed)
	preds := make([]float64, q.Rows())

	err := world.Run(func(c *mpi.Comm) error {
		const tagLabels = 32
		var routed [][]int
		if c.Rank() == 0 {
			// Route every query to its nearest center (Alg 6 step 2). One
			// blocked RouteAll pass streams the centroid matrix per query
			// block instead of per query.
			routed = make([][]int, p)
			for i, r := range set.RouteAll(q) {
				routed[r] = append(routed[r], i)
			}
			c.Charge(float64(2 * q.Rows() * p * q.Features()))
			blocks := make([][]byte, p)
			for r := 0; r < p; r++ {
				blocks[r] = q.EncodeRows(routed[r])
			}
			// Rank 0 keeps its own block in place and predicts it from
			// the routing table directly.
			c.Scatterv(0, blocks)
		} else {
			block := c.Scatterv(0, nil)
			qx, err := la.DecodeMatrix(block)
			if err != nil {
				return err
			}
			// Tiled batch classification of the whole local block.
			labels := set.Models[c.Rank()].PredictAll(qx)
			c.Charge(float64(qx.Rows() * set.Models[c.Rank()].NSV() * 2 * qx.Features()))
			c.SendF64(0, tagLabels, labels)
			return nil
		}

		// Rank 0: predict the locally routed block (batched through the
		// same tile path as the remote ranks) and collect the rest.
		if len(routed[0]) > 0 {
			local := set.Models[0].PredictAll(q.Subset(routed[0]))
			for k, i := range routed[0] {
				preds[i] = local[k]
			}
		}
		for r := 1; r < p; r++ {
			labels := c.RecvF64(r, tagLabels)
			if len(labels) != len(routed[r]) {
				return fmt.Errorf("core: rank %d returned %d labels for %d queries", r, len(labels), len(routed[r]))
			}
			for k, i := range routed[r] {
				preds[i] = labels[k]
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{Method: "predict", P: p, TotalSec: world.MaxClock()}
	fillCommStats(&st, world.Stats())
	return preds, st, nil
}
