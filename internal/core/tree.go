package core

import (
	"sync"

	"casvm/internal/kmeans"
	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// layerCollector accumulates per-layer node profiles (Table V) from all
// rank goroutines.
type layerCollector struct {
	mu     sync.Mutex
	layers map[int][]NodeStat
}

func newLayerCollector() *layerCollector {
	return &layerCollector{layers: map[int][]NodeStat{}}
}

func (lc *layerCollector) add(layer int, ns NodeStat) {
	lc.mu.Lock()
	lc.layers[layer] = append(lc.layers[layer], ns)
	lc.mu.Unlock()
}

func (lc *layerCollector) snapshot() []LayerStat {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]LayerStat, 0, len(lc.layers))
	for l := 1; ; l++ {
		nodes, ok := lc.layers[l]
		if !ok {
			break
		}
		// Sort nodes by rank for stable presentation.
		sorted := append([]NodeStat(nil), nodes...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Rank < sorted[j-1].Rank; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		out = append(out, LayerStat{Layer: l, Nodes: sorted})
	}
	return out
}

// treeLayers returns the number of layers a reduction tree over p ranks
// has: ⌈log₂ p⌉ + 1.
func treeLayers(p int) int {
	l := 1
	for n := p; n > 1; n = (n + 1) / 2 {
		l++
	}
	return l
}

// trainTree implements the reduction-tree family (Fig 2):
//
//   - Cascade:   even block partition, SV-only layer passing
//   - DC-SVM:    K-means partition,   all-samples layer passing
//   - DC-Filter: K-means partition,   SV-only layer passing
//
// The active ranks halve every layer; surviving parts carry their Lagrange
// multipliers to warm-start the next layer (§II-C). When
// p.CascadePasses > 1, the final model's support vectors are redistributed
// to every node and the whole pass repeats (the feedback loop of Fig 2;
// the paper notes one pass almost always suffices).
func trainTree(c *mpi.Comm, full *la.Matrix, fullY []float64, p Params,
	out *rankResult, useKMeans, passAll bool, lc *layerCollector) error {

	rec := c.Recorder()
	c.SetPhase("partition")
	spInit := rec.BeginVirt(trace.CatInit, "partition", c.Clock())
	local, err := scatterBlocks(c, full, fullY)
	if err != nil {
		return err
	}
	if useKMeans {
		km := kmeans.RunDistributed(c, local.x, c.Size(), 0, p.KMeansMaxIter)
		out.kmIters = km.Iters
		if local, err = regroup(c, local, km.Assign); err != nil {
			return err
		}
	}
	out.partSize = local.x.Rows()
	out.initSec = c.Clock()
	rec.EndVirt(spInit, c.Clock())
	c.SetPhase("solve")

	passes := p.CascadePasses
	if passes < 1 {
		passes = 1
	}
	current := local
	layerBase := 0
	for pass := 0; pass < passes; pass++ {
		finalPart, finalRes, err := runTreePass(c, current, p, passAll, lc, layerBase)
		if err != nil {
			return err
		}
		layerBase += treeLayers(c.Size())
		if pass == passes-1 {
			if c.Rank() == 0 {
				out.local = model.FromSolution(finalPart.x, finalPart.y, finalRes.Alpha, finalRes.B, p.Kernel)
				out.svs = out.local.NSV()
			}
			break
		}
		// Fig 2 feedback: broadcast the final SV set and re-run the pass
		// on TD_i ∪ SV, warm-starting the SV multipliers.
		var svPayload []byte
		if c.Rank() == 0 {
			svRows := []int{}
			for i, a := range finalRes.Alpha {
				if a > 0 {
					svRows = append(svRows, i)
				}
			}
			svPayload = encodePart(finalPart.x, finalPart.y, finalRes.Alpha, svRows)
		}
		svPayload = c.Bcast(0, svPayload)
		svPart, err := decodePart(svPayload)
		if err != nil {
			return err
		}
		base := local
		base.alpha = make([]float64, base.x.Rows())
		current = mergeParts([]part{base, svPart})
	}
	out.trainSec = c.Clock() - out.initSec
	return nil
}

// runTreePass executes one full reduction-tree pass. Every rank returns;
// only the final node (rank 0) gets a non-nil result and the merged part it
// trained on. layerBase offsets the recorded layer numbers so multi-pass
// profiles stay distinct.
func runTreePass(c *mpi.Comm, current part, p Params, passAll bool,
	lc *layerCollector, layerBase int) (part, *smo.Result, error) {

	active := allRows(c.Size())
	const tag = 23
	for layer := 1; ; layer++ {
		pos := indexOf(active, c.Rank())
		if pos < 0 {
			return part{}, nil, nil // retired in an earlier layer
		}
		t0 := c.Clock()
		sp := c.Recorder().BeginVirt(trace.CatTrain, "layer-solve", t0)
		res, err := smo.Solve(current.x, current.y, p.solverConfigCkpt(c), current.alpha)
		if err != nil {
			return part{}, nil, err
		}
		c.Charge(res.Flops)
		c.Recorder().EndVirt(sp, c.Clock())
		svRows := []int{}
		for i, a := range res.Alpha {
			if a > 0 {
				svRows = append(svRows, i)
			}
		}
		lc.add(layerBase+layer, NodeStat{
			Rank:    c.Rank(),
			Samples: current.x.Rows(),
			Iters:   res.Iters,
			SVs:     len(svRows),
			Time:    c.Clock() - t0,
		})
		if len(active) == 1 {
			return current, res, nil
		}
		// Select what ascends: everything (DC-SVM) or only SVs
		// (Cascade, DC-Filter), always with multipliers for warm start.
		rows := svRows
		if passAll {
			rows = allRows(current.x.Rows())
		}
		if pos%2 == 1 {
			// Odd position: ship to the left partner and retire.
			c.Send(active[pos-1], tag, encodePart(current.x, current.y, res.Alpha, rows))
			return part{}, nil, nil
		}
		outgoing, err := decodePart(encodePart(current.x, current.y, res.Alpha, rows))
		if err != nil {
			return part{}, nil, err
		}
		if pos+1 < len(active) {
			received, err := decodePart(c.Recv(active[pos+1], tag))
			if err != nil {
				return part{}, nil, err
			}
			current = mergeParts([]part{outgoing, received})
		} else {
			// Odd active count: pass through unpaired.
			current = outgoing
		}
		active = evens(active)
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func evens(xs []int) []int {
	out := make([]int, 0, (len(xs)+1)/2)
	for i := 0; i < len(xs); i += 2 {
		out = append(out, xs[i])
	}
	return out
}
