package core

import "testing"

func TestCascadeTwoPasses(t *testing.T) {
	d := testSet(t, 480)
	one := paramsFor(MethodCascade, 8, d)
	two := paramsFor(MethodCascade, 8, d)
	two.CascadePasses = 2

	outOne, err := Train(d.X, d.Y, one)
	if err != nil {
		t.Fatal(err)
	}
	outTwo, err := Train(d.X, d.Y, two)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes double the layer profile.
	if len(outTwo.Stats.Layers) != 2*len(outOne.Stats.Layers) {
		t.Errorf("layers: 1-pass %d, 2-pass %d", len(outOne.Stats.Layers), len(outTwo.Stats.Layers))
	}
	// The paper's observation: a second pass rarely improves the result.
	accOne := outOne.Set.Accuracy(d.TestX, d.TestY)
	accTwo := outTwo.Set.Accuracy(d.TestX, d.TestY)
	if accTwo < accOne-0.03 {
		t.Errorf("second pass lost accuracy: %.3f -> %.3f", accOne, accTwo)
	}
	// Pass 2's first layer trains on TD_i ∪ SV: more samples per node
	// than pass 1's first layer.
	l1 := outTwo.Stats.Layers[0].Nodes[0].Samples
	l5 := outTwo.Stats.Layers[len(outOne.Stats.Layers)].Nodes[0].Samples
	if l5 <= l1 {
		t.Errorf("pass-2 layer-1 samples %d should exceed pass-1's %d", l5, l1)
	}
	// More communication in two passes.
	if outTwo.Stats.CommBytes <= outOne.Stats.CommBytes {
		t.Errorf("2-pass bytes %d should exceed 1-pass %d",
			outTwo.Stats.CommBytes, outOne.Stats.CommBytes)
	}
}

func TestTwoPassDCFilter(t *testing.T) {
	d := testSet(t, 320)
	p := paramsFor(MethodDCFilter, 4, d)
	p.CascadePasses = 2
	out, err := Train(d.X, d.Y, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc := out.Set.Accuracy(d.TestX, d.TestY); acc < 0.85 {
		t.Errorf("2-pass DC-Filter accuracy %.3f", acc)
	}
}

func TestTwoPassSingleRank(t *testing.T) {
	d := testSet(t, 120)
	p := paramsFor(MethodCascade, 1, d)
	p.CascadePasses = 2
	out, err := Train(d.X, d.Y, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.Layers) != 2 {
		t.Errorf("P=1 two passes should record 2 layers, got %d", len(out.Stats.Layers))
	}
}
