package core

import (
	"math"
	"testing"

	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/smo"
)

// testSet builds a small clustered dataset every method should learn well.
func testSet(t *testing.T, m int) *data.Dataset {
	t.Helper()
	d, err := data.Generate(data.MixtureSpec{
		Name: "core-test", Train: m, Test: m / 4, Features: 8, Clusters: 4,
		Separation: 7, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02,
		Margin: 1.0, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func paramsFor(m Method, p int, d *data.Dataset) Params {
	pr := DefaultParams(m, p)
	pr.Kernel = kernel.RBF(1.0 / (2 * float64(d.Features())))
	return pr
}

func TestAllMethodsTrainAndPredict(t *testing.T) {
	d := testSet(t, 480)
	for _, m := range Methods() {
		pr := paramsFor(m, 4, d)
		out, err := Train(d.X, d.Y, pr)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		acc := out.Set.Accuracy(d.TestX, d.TestY)
		if acc < 0.88 {
			t.Errorf("%s: accuracy %.3f < 0.88", m, acc)
		}
		if out.Stats.Iters <= 0 {
			t.Errorf("%s: iters=%d", m, out.Stats.Iters)
		}
		if out.Stats.SVs <= 0 {
			t.Errorf("%s: svs=%d", m, out.Stats.SVs)
		}
		if out.Stats.TotalSec <= 0 {
			t.Errorf("%s: TotalSec=%v", m, out.Stats.TotalSec)
		}
		if out.Stats.TrainSec <= 0 {
			t.Errorf("%s: TrainSec=%v", m, out.Stats.TrainSec)
		}
		if out.Stats.Wall <= 0 {
			t.Errorf("%s: Wall=%v", m, out.Stats.Wall)
		}
	}
}

func TestDisSMOMatchesSerialSMO(t *testing.T) {
	d := testSet(t, 300)
	pr := paramsFor(MethodDisSMO, 4, d)
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := smo.Solve(d.X, d.Y, smo.Config{C: pr.C, Tol: pr.Tol, Kernel: pr.Kernel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same algorithm up to float32 scatter rounding: iteration counts
	// must be close and accuracies equal-ish.
	ratio := float64(out.Stats.Iters) / float64(serial.Iters)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("distributed iters %d vs serial %d", out.Stats.Iters, serial.Iters)
	}
	distAcc := out.Set.Accuracy(d.TestX, d.TestY)
	// Serial accuracy via a model built from the serial solution.
	serialSet := Output{}
	_ = serialSet
	if distAcc < 0.9 {
		t.Errorf("dis-smo accuracy %.3f", distAcc)
	}
}

func TestDisSMOSingleRankEqualsSerial(t *testing.T) {
	d := testSet(t, 200)
	pr := paramsFor(MethodDisSMO, 1, d)
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.CommBytes != 0 {
		t.Errorf("P=1 should move no bytes, got %d", out.Stats.CommBytes)
	}
	if out.Stats.Iters == 0 {
		t.Error("no iterations")
	}
}

func TestCascadeLayerProfile(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodCascade, 8, d)
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	// 8 nodes → log2(8)+1 = 4 layers (Table V shape).
	if len(out.Stats.Layers) != 4 {
		t.Fatalf("layers=%d want 4", len(out.Stats.Layers))
	}
	wantNodes := []int{8, 4, 2, 1}
	prevSVs := math.MaxInt
	for i, l := range out.Stats.Layers {
		if len(l.Nodes) != wantNodes[i] {
			t.Errorf("layer %d has %d nodes, want %d", l.Layer, len(l.Nodes), wantNodes[i])
		}
		if l.MaxTime() <= 0 {
			t.Errorf("layer %d has zero time", l.Layer)
		}
		// The SV population must not grow up the tree (the filter
		// property of Cascade).
		if s := l.SumSVs(); s > prevSVs {
			t.Errorf("layer %d SVs grew: %d > %d", l.Layer, s, prevSVs)
		} else {
			prevSVs = s
		}
	}
	// Layer 1 samples are the even split.
	for _, n := range out.Stats.Layers[0].Nodes {
		if n.Samples != 60 {
			t.Errorf("layer-1 node %d has %d samples, want 60", n.Rank, n.Samples)
		}
	}
}

func TestDCSVMPassesAllSamples(t *testing.T) {
	d := testSet(t, 320)
	pr := paramsFor(MethodDCSVM, 4, d)
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	last := out.Stats.Layers[len(out.Stats.Layers)-1]
	if len(last.Nodes) != 1 || last.Nodes[0].Samples != 320 {
		t.Errorf("DC-SVM final layer should train on all samples, got %+v", last.Nodes)
	}
	if out.Stats.KMeansIters == 0 {
		t.Error("DC-SVM should run K-means")
	}
}

func TestDCFilterSheddingVsDCSVM(t *testing.T) {
	d := testSet(t, 320)
	outF, err := Train(d.X, d.Y, paramsFor(MethodDCFilter, 4, d))
	if err != nil {
		t.Fatal(err)
	}
	outD, err := Train(d.X, d.Y, paramsFor(MethodDCSVM, 4, d))
	if err != nil {
		t.Fatal(err)
	}
	lastF := outF.Stats.Layers[len(outF.Stats.Layers)-1].Nodes[0]
	lastD := outD.Stats.Layers[len(outD.Stats.Layers)-1].Nodes[0]
	if lastF.Samples >= lastD.Samples {
		t.Errorf("DC-Filter final layer %d samples should be < DC-SVM's %d",
			lastF.Samples, lastD.Samples)
	}
	if outF.Stats.CommBytes >= outD.Stats.CommBytes {
		t.Errorf("DC-Filter bytes %d should be < DC-SVM bytes %d",
			outF.Stats.CommBytes, outD.Stats.CommBytes)
	}
}

func TestCASVMZeroCommunication(t *testing.T) {
	d := testSet(t, 320)
	pr := paramsFor(MethodRACA, 4, d)
	pr.Placement = PlacementDistributed // casvm2
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.CommBytes != 0 || out.Stats.CommOps != 0 {
		t.Errorf("casvm2 RA-CA must move zero bytes, got %d bytes %d ops",
			out.Stats.CommBytes, out.Stats.CommOps)
	}
	pr.Placement = PlacementRoot // casvm1
	out1, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Stats.CommBytes == 0 {
		t.Error("casvm1 must scatter the data")
	}
	// Same partition either way → same iteration counts.
	if out.Stats.Iters == 0 || out1.Stats.Iters == 0 {
		t.Error("no iterations")
	}
}

func TestFCFSCABalancedPartition(t *testing.T) {
	d := testSet(t, 400)
	pr := paramsFor(MethodFCFSCA, 4, d)
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	total, min, max := 0, math.MaxInt, 0
	for _, s := range out.Stats.PartSizes {
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if total != 400 {
		t.Errorf("partition sizes sum %d want 400", total)
	}
	if max-min > 40 {
		t.Errorf("FCFS-CA sizes %v too imbalanced", out.Stats.PartSizes)
	}
}

func TestCPSVMPartitionCoversData(t *testing.T) {
	d := testSet(t, 320)
	out, err := Train(d.X, d.Y, paramsFor(MethodCPSVM, 4, d))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range out.Stats.PartSizes {
		total += s
	}
	if total != 320 {
		t.Errorf("CP-SVM partition sum %d", total)
	}
	if out.Set.P() != 4 {
		t.Errorf("CP-SVM should produce 4 model files, got %d", out.Set.P())
	}
	if out.Stats.KMeansIters == 0 {
		t.Error("CP-SVM should run K-means")
	}
}

func TestAllMethodsSingleRank(t *testing.T) {
	d := testSet(t, 120)
	for _, m := range Methods() {
		out, err := Train(d.X, d.Y, paramsFor(m, 1, d))
		if err != nil {
			t.Fatalf("%s P=1: %v", m, err)
		}
		if acc := out.Set.Accuracy(d.TestX, d.TestY); acc < 0.85 {
			t.Errorf("%s P=1 accuracy %.3f", m, acc)
		}
	}
}

func TestNonPowerOfTwoRanks(t *testing.T) {
	d := testSet(t, 330)
	for _, m := range []Method{MethodCascade, MethodDCSVM, MethodDisSMO, MethodRACA} {
		out, err := Train(d.X, d.Y, paramsFor(m, 3, d))
		if err != nil {
			t.Fatalf("%s P=3: %v", m, err)
		}
		if acc := out.Set.Accuracy(d.TestX, d.TestY); acc < 0.85 {
			t.Errorf("%s P=3 accuracy %.3f", m, acc)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	d := testSet(t, 60)
	pr := paramsFor(MethodRACA, 4, d)
	if _, err := Train(nil, d.Y, pr); err == nil {
		t.Error("nil X should fail")
	}
	pr.P = 0
	if _, err := Train(d.X, d.Y, pr); err == nil {
		t.Error("P=0 should fail")
	}
	pr = paramsFor(MethodRACA, 4, d)
	pr.C = -1
	if _, err := Train(d.X, d.Y, pr); err == nil {
		t.Error("C<0 should fail")
	}
	pr = paramsFor("bogus", 4, d)
	if _, err := Train(d.X, d.Y, pr); err == nil {
		t.Error("bad method should fail")
	}
	pr = paramsFor(MethodRACA, 70, d)
	if _, err := Train(d.X, d.Y, pr); err == nil {
		t.Error("P>m should fail")
	}
}

func TestDeterminism(t *testing.T) {
	d := testSet(t, 240)
	for _, m := range []Method{MethodDisSMO, MethodCascade, MethodCPSVM, MethodRACA} {
		a, err := Train(d.X, d.Y, paramsFor(m, 4, d))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Train(d.X, d.Y, paramsFor(m, 4, d))
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Iters != b.Stats.Iters || a.Stats.SVs != b.Stats.SVs ||
			a.Stats.CommBytes != b.Stats.CommBytes {
			t.Errorf("%s not deterministic: iters %d/%d svs %d/%d bytes %d/%d",
				m, a.Stats.Iters, b.Stats.Iters, a.Stats.SVs, b.Stats.SVs,
				a.Stats.CommBytes, b.Stats.CommBytes)
		}
	}
}

func TestCommHierarchy(t *testing.T) {
	// The Table X ordering on a shared workload: CA (casvm2) < Cascade <
	// CP-SVM < DC-SVM, and Dis-SMO has by far the most operations
	// (Table XI).
	d := testSet(t, 480)
	bytes := map[Method]int64{}
	ops := map[Method]int64{}
	for _, m := range Methods() {
		out, err := Train(d.X, d.Y, paramsFor(m, 4, d))
		if err != nil {
			t.Fatal(err)
		}
		bytes[m] = out.Stats.CommBytes
		ops[m] = out.Stats.CommOps
	}
	if bytes[MethodRACA] != 0 {
		t.Errorf("RA-CA bytes %d", bytes[MethodRACA])
	}
	if !(bytes[MethodCascade] < bytes[MethodDCSVM]) {
		t.Errorf("cascade %d !< dcsvm %d", bytes[MethodCascade], bytes[MethodDCSVM])
	}
	if !(bytes[MethodCPSVM] < bytes[MethodDCSVM]) {
		t.Errorf("cpsvm %d !< dcsvm %d", bytes[MethodCPSVM], bytes[MethodDCSVM])
	}
	if ops[MethodDisSMO] < 10*ops[MethodCascade] {
		t.Errorf("dis-smo ops %d should dwarf cascade ops %d", ops[MethodDisSMO], ops[MethodCascade])
	}
}
