package core

import (
	"testing"

	"casvm/internal/data"
	"casvm/internal/kernel"
)

// Class weighting must flow through the distributed methods and lift
// positive recall on an imbalanced workload.
func TestPosWeightThroughDistributedTraining(t *testing.T) {
	d, err := data.Generate(data.MixtureSpec{
		Name: "imb", Train: 800, Test: 400, Features: 6, Clusters: 4,
		Separation: 5, Noise: 1.3, PosFrac: []float64{0.08}, LabelNoise: 0.01,
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodDisSMO, MethodRACA} {
		recallOf := func(w float64) float64 {
			p := DefaultParams(m, 4)
			p.Kernel = kernel.RBF(1.0 / 12)
			p.PosWeight = w
			out, err := Train(d.X, d.Y, p)
			if err != nil {
				t.Fatal(err)
			}
			return out.Set.Confusion(d.TestX, d.TestY).Recall()
		}
		plain := recallOf(0)
		weighted := recallOf(6)
		if weighted < plain {
			t.Errorf("%s: PosWeight=6 recall %.3f < unweighted %.3f", m, weighted, plain)
		}
	}
}
