package core

import (
	"casvm/internal/kmeans"
	"casvm/internal/la"
	"casvm/internal/mpi"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// trainCPSVM implements Clustering-Partition SVM (§IV-A): distributed
// K-means splits the data by Euclidean proximity, samples are regrouped so
// node j owns cluster j, and then P completely independent SVMs train in
// parallel. Each node keeps its own model file MF_j; prediction routes a
// query to the model of its nearest center (Fig 3).
func trainCPSVM(c *mpi.Comm, full *la.Matrix, fullY []float64, p Params, out *rankResult) error {
	rec := c.Recorder()
	c.SetPhase("partition")
	spInit := rec.BeginVirt(trace.CatInit, "partition", c.Clock())
	local, err := scatterBlocks(c, full, fullY)
	if err != nil {
		return err
	}
	km := kmeans.RunDistributed(c, local.x, c.Size(), 0, p.KMeansMaxIter)
	out.kmIters = km.Iters
	if local, err = regroup(c, local, km.Assign); err != nil {
		return err
	}
	out.partSize = local.x.Rows()
	out.center = append([]float64(nil), km.Centers.DenseRow(c.Rank())...)
	out.initSec = c.Clock()
	rec.EndVirt(spInit, c.Clock())

	c.SetPhase("solve")
	spSolve := rec.BeginVirt(trace.CatTrain, "solve", c.Clock())
	res, err := smo.Solve(local.x, local.y, p.solverConfigCkpt(c), nil)
	if err != nil {
		return err
	}
	c.Charge(res.Flops)
	rec.EndVirt(spSolve, c.Clock())
	out.iters = res.Iters
	out.local = localModel(local.x, local.y, res, p.Kernel)
	out.svs = out.local.NSV()
	out.fillClassCounts(local.y, res.Alpha)
	out.trainSec = c.Clock() - out.initSec
	return nil
}
