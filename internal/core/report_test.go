package core

import (
	"bytes"
	"testing"

	"casvm/internal/faults"
	"casvm/internal/trace"
)

// isHexDigest reports whether s looks like a SHA-256 hex digest.
func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func TestBuildReportFullRun(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodRACA, 4, d)
	pr.Timeline = trace.NewTimeline(4)
	pr.Metrics = trace.NewRegistry()
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	acc := out.Set.Accuracy(d.TestX, d.TestY)
	rep, err := BuildReport(out, pr, "core-test", acc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != string(MethodRACA) || rep.Dataset != "core-test" || rep.P != 4 {
		t.Fatalf("identity fields: method=%q dataset=%q p=%d", rep.Method, rep.Dataset, rep.P)
	}
	if !isHexDigest(rep.ModelHash) {
		t.Fatalf("ModelHash %q is not a sha256 hex digest", rep.ModelHash)
	}
	if rep.Iters <= 0 || rep.SVs <= 0 || rep.TotalFlops <= 0 {
		t.Fatalf("outcome fields: iters=%d svs=%d flops=%v", rep.Iters, rep.SVs, rep.TotalFlops)
	}
	if rep.Accuracy != acc {
		t.Fatalf("accuracy %v, want %v", rep.Accuracy, acc)
	}
	if rep.Solver.Kernel != pr.Kernel.Kind.String() || rep.Solver.Gamma != pr.Kernel.Gamma {
		t.Fatalf("solver info: %+v", rep.Solver)
	}
	if rep.Machine.TcSec != pr.Machine.Tc {
		t.Fatalf("machine tc %v, want %v", rep.Machine.TcSec, pr.Machine.Tc)
	}
	if len(rep.CommMatrix) != 4 {
		t.Fatalf("comm matrix has %d rows, want 4", len(rep.CommMatrix))
	}
	if len(rep.Phases) == 0 || rep.TimelineEvents == 0 {
		t.Fatalf("timeline not attached: %d phases, %d events", len(rep.Phases), rep.TimelineEvents)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("metrics not attached")
	}

	// The report must survive its own strict serialization.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ModelHash != rep.ModelHash || back.Iters != rep.Iters {
		t.Fatal("round trip changed the report")
	}
}

// TestBuildReportDegraded pins the fault outcome fields: a degraded-mode
// completion with a crashed rank surfaces the loss in the report.
func TestBuildReportDegraded(t *testing.T) {
	d := testSet(t, 480)
	pr := paramsFor(MethodRACA, 8, d)
	pr.Degraded = true
	pr.Faults = faults.New(faults.Plan{CrashAtIter: map[int]int{3: 10}})
	out, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(out, pr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("report not marked degraded")
	}
	if len(rep.LostRanks) != 1 || rep.LostRanks[0] != 3 {
		t.Fatalf("LostRanks=%v, want [3]", rep.LostRanks)
	}
	if !isHexDigest(rep.ModelHash) {
		t.Fatal("degraded run should still fingerprint the survivor models")
	}
}

// TestModelHashDeterministic: same run twice, same fingerprint.
func TestModelHashDeterministic(t *testing.T) {
	d := testSet(t, 240)
	pr := paramsFor(MethodFCFSCA, 4, d)
	a, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := ModelHash(a.Set)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := ModelHash(b.Set)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("hash drift across identical runs: %s vs %s", ha, hb)
	}
}
