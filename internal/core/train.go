package core

import (
	"errors"
	"fmt"
	"time"

	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
	"casvm/internal/trace"
)

// Train runs the configured method on (x, y) and returns the trained model
// set plus the run statistics. Labels must be ±1.
//
// Without a recovery policy this is one world, one attempt: a rank crash
// fails the run (or degrades it, when Params.Degraded elects that for the
// independent-model methods). With Params.Recovery.Policy set, Train
// supervises: crashes trigger checkpointed restarts — at full width
// (respawn) or shrunk onto the survivors — until the run completes or the
// restart budget is spent.
func Train(x *la.Matrix, y []float64, p Params) (*Output, error) {
	if x == nil || x.Rows() != len(y) {
		return nil, errors.New("core: samples and labels disagree")
	}
	if err := p.validate(x.Rows()); err != nil {
		return nil, err
	}
	if p.Recovery.Policy == RecoverOff {
		out, _, err := runAttempt(x, y, p, 0)
		return out, err
	}
	return trainSupervised(x, y, p)
}

// trainSupervised is the checkpoint/restart supervisor: it runs attempts,
// prices each failure into the next attempt's base clock, and resumes from
// the store's last consistent checkpoint. Deterministic re-execution (same
// seed, same partitioning) makes the (rank, solve-sequence) checkpoint keys
// line up across attempts, so only solver state needs carrying over.
func trainSupervised(x *la.Matrix, y []float64, p Params) (*Output, error) {
	rec := p.Recovery
	rt := &recoveryRuntime{
		store:   newCkptStore(x.Rows()),
		every:   rec.every(),
		machine: p.Machine,
		tl:      p.Timeline,
		metrics: p.Metrics,
	}
	pp := p
	pp.rt = rt
	// The supervisor owns crash handling; in-attempt degraded completion
	// would swallow the crash before the restart loop could act on it.
	pp.Degraded = false

	origID := make([]int, p.P) // current rank index -> original rank id
	for i := range origID {
		origID[i] = i
	}
	nextID := p.P // fresh original ids for ranks joining mid-run
	var lostOrig []int
	base := 0.0
	recoveries := 0
	grows, joined := 0, 0
	// maxGrows bounds elastic scale-ups separately from the crash-restart
	// budget: joins are cooperative and one-shot, so the bound is a backstop
	// against a misbehaving membership source, not a retry budget.
	const maxGrows = 32
	// Failed attempts' measured work, folded into the final run's stats so
	// recovery overhead is visible, not vanished.
	var extra Stats

	for {
		rt.resetSeqs(pp.P)
		out, world, err := runAttempt(x, y, pp, base)
		if err == nil {
			st := &out.Stats
			st.Recoveries = recoveries
			st.RecoverySec = base
			st.Grows = grows
			st.JoinedRanks = joined
			st.LostRanks = append(append([]int{}, lostOrig...), st.LostRanks...)
			st.CommBytes += extra.CommBytes
			st.CommOps += extra.CommOps
			st.TotalFlops += extra.TotalFlops
			st.CommSec += extra.CommSec
			st.CompSec += extra.CompSec
			return out, nil
		}
		// A crash outranks a cooperative resize when both race within one
		// attempt: the lost rank must be accounted before any grow.
		var crash *mpi.CrashError
		var resize *mpi.ResizeError
		isCrash := errors.As(err, &crash)
		isResize := !isCrash && errors.As(err, &resize)
		if !isCrash && !isResize {
			return nil, err // genuine algorithmic failure: not recoverable
		}
		if isCrash && recoveries >= rec.maxRestarts() {
			return nil, fmt.Errorf("core: recovery budget exhausted after %d restarts: %w",
				recoveries, err)
		}
		if isResize && grows >= maxGrows {
			return nil, fmt.Errorf("core: elastic grow budget exhausted after %d grows: %w",
				grows, err)
		}

		// Price the lost attempt: its work (MaxClock includes the base it
		// started from) plus the modeled relaunch penalty becomes the next
		// attempt's virtual-time origin. A grow pays the same relaunch
		// penalty — the world is torn down and rebuilt either way.
		failClock := world.MaxClock()
		if failClock < base {
			failClock = base
		}
		newBase := failClock + rec.penalty()

		ws := world.Stats()
		extra.CommBytes += ws.TotalBytes()
		extra.CommOps += ws.TotalOps()
		extra.TotalFlops += ws.TotalFlops()
		extra.CommSec += ws.MaxCommSec()
		extra.CompSec += ws.MaxCompSec()

		lost := ws.LostRanks()
		for _, l := range lost {
			if l >= 0 && l < len(origID) {
				lostOrig = append(lostOrig, origID[l])
			}
		}
		if isCrash && rec.Policy == RecoverShrink {
			if pp.P-len(lost) < 1 {
				return nil, fmt.Errorf("core: no survivors to shrink onto: %w", err)
			}
			dead := map[int]bool{}
			for _, l := range lost {
				dead[l] = true
			}
			survivors := origID[:0]
			for i, id := range origID {
				if !dead[i] {
					survivors = append(survivors, id)
				}
			}
			origID = survivors
			pp.P = len(origID)
			// Re-partitioned shards invalidate every (rank, seq) snapshot;
			// Dis-SMO's global-row-space epochs survive the re-slice.
			rt.store.dropLocal()
		}
		if isResize {
			// Elastic scale-up: widen the world by the joined workers,
			// bounded by the sample count (a rank needs at least one row).
			delta := resize.Delta
			if room := x.Rows() - pp.P; delta > room {
				delta = room
			}
			for i := 0; i < delta; i++ {
				origID = append(origID, nextID)
				nextID++
			}
			pp.P = len(origID)
			// Narrower shards invalidate every (rank, seq) snapshot, same as
			// shrink; Dis-SMO's global-row-space epochs re-slice over the
			// wider block layout.
			rt.store.dropLocal()
			grows++
			joined += delta
		}

		spanName := "recovery:" + string(rec.Policy)
		if isResize {
			spanName = "recovery:grow"
		} else {
			recoveries++
		}
		if r0 := p.Timeline.Rank(0); r0 != nil {
			sp := r0.BeginVirt(trace.CatRecovery, spanName, failClock)
			r0.EndVirt(sp, newBase)
		}
		if p.Metrics != nil {
			if isResize {
				p.Metrics.Counter("casvm_grows_total", "elastic world scale-ups").Inc()
				p.Metrics.Counter("casvm_grow_ranks_total", "ranks added by elastic scale-ups").
					Add(int64(resize.Delta))
			} else {
				p.Metrics.Counter("casvm_recoveries_total", "supervised crash recoveries").Inc()
				p.Metrics.Counter("casvm_recovery_lost_ranks_total", "ranks lost across recoveries").
					Add(int64(len(lost)))
			}
		}
		base = newBase
	}
}

// runAttempt executes the method once on a fresh world of p.P ranks whose
// virtual clocks start at base, and returns the assembled output, the world
// (for the supervisor's post-mortem on failure), and the first error.
func runAttempt(x *la.Matrix, y []float64, p Params, base float64) (*Output, *mpi.World, error) {
	world := mpi.NewWorld(p.P, p.Machine, p.Seed)
	world.SetBaseClock(base)
	if p.Faults != nil {
		world.SetTransportHook(p.Faults)
	}
	world.SetTimeline(p.Timeline)
	results := make([]rankResult, p.P)
	lc := newLayerCollector()

	wall0 := time.Now()
	err := world.Run(func(c *mpi.Comm) error {
		out := &results[c.Rank()]
		switch p.Method {
		case MethodDisSMO:
			return trainDisSMO(c, x, y, p, out)
		case MethodCascade:
			return trainTree(c, x, y, p, out, false, false, lc)
		case MethodDCSVM:
			return trainTree(c, x, y, p, out, true, true, lc)
		case MethodDCFilter:
			return trainTree(c, x, y, p, out, true, false, lc)
		case MethodCPSVM:
			return trainCPSVM(c, x, y, p, out)
		case MethodFCFSCA, MethodBKMCA, MethodRACA:
			return trainCASVM(c, x, y, p, out)
		default:
			return fmt.Errorf("core: unimplemented method %q", p.Method)
		}
	})
	degraded := false
	if err != nil {
		// A crashed rank costs only its shard for the independent-model
		// methods when the caller opted into degraded completion; any
		// other failure — or a method that genuinely needs every rank —
		// aborts the run with the rank's error.
		var crash *mpi.CrashError
		if !(p.Degraded && p.Method.independentModels() && errors.As(err, &crash)) {
			return nil, world, err
		}
		degraded = true
	}
	wall := time.Since(wall0)

	st := Stats{
		Method: p.Method,
		P:      p.P,
		Wall:   wall,
	}
	st.TotalSec = world.MaxClock()
	st.PartSizes = make([]int, p.P)
	st.NodeTrainSec = make([]float64, p.P)
	st.NodeIters = make([]int, p.P)
	st.NodePos = make([]int, p.P)
	st.NodeNeg = make([]int, p.P)
	st.NodeSVPos = make([]int, p.P)
	st.NodeSVNeg = make([]int, p.P)
	for r := range results {
		st.PartSizes[r] = results[r].partSize
		st.NodeTrainSec[r] = results[r].trainSec
		st.NodeIters[r] = results[r].iters
		st.NodePos[r] = results[r].pos
		st.NodeNeg[r] = results[r].neg
		st.NodeSVPos[r] = results[r].svPos
		st.NodeSVNeg[r] = results[r].svNeg
		if results[r].initSec > st.InitSec {
			st.InitSec = results[r].initSec
		}
		if results[r].trainSec > st.TrainSec {
			st.TrainSec = results[r].trainSec
		}
		if results[r].kmIters > st.KMeansIters {
			st.KMeansIters = results[r].kmIters
		}
	}
	fillCommStats(&st, world.Stats())

	var set *model.Set
	switch p.Method {
	case MethodDisSMO:
		st.Iters = results[0].iters
		st.SVs = results[0].svs
		set = model.Single(results[0].local, nil)
	case MethodCascade, MethodDCSVM, MethodDCFilter:
		st.Layers = lc.snapshot()
		for _, l := range st.Layers {
			st.Iters += l.MaxIters()
		}
		st.SVs = results[0].svs
		set = model.Single(results[0].local, nil)
	default: // CP-SVM and the CA-SVM variants: one model per rank
		n := x.Features()
		var centers []float64
		var models []*model.Model
		for r := range results {
			if results[r].local == nil {
				if degraded {
					continue // lost shard: survivors carry the prediction
				}
				return nil, world, fmt.Errorf("core: rank %d produced no model", r)
			}
			models = append(models, results[r].local)
			centers = append(centers, results[r].center...)
			st.SVs += results[r].svs
			if results[r].iters > st.Iters {
				st.Iters = results[r].iters
			}
		}
		if len(models) == 0 {
			return nil, world, fmt.Errorf("core: every rank crashed: %w", err)
		}
		set = &model.Set{Models: models, Centers: la.NewDense(len(models), n, centers)}
	}
	st.Degraded = degraded
	return &Output{Set: set, Stats: st}, world, nil
}
