package core

import (
	"errors"
	"fmt"
	"time"

	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/mpi"
)

// Train runs the configured method on (x, y) across a fresh world of p.P
// ranks and returns the trained model set plus the run statistics. Labels
// must be ±1.
func Train(x *la.Matrix, y []float64, p Params) (*Output, error) {
	if x == nil || x.Rows() != len(y) {
		return nil, errors.New("core: samples and labels disagree")
	}
	if err := p.validate(x.Rows()); err != nil {
		return nil, err
	}
	world := mpi.NewWorld(p.P, p.Machine, p.Seed)
	if p.Faults != nil {
		world.SetTransportHook(p.Faults)
	}
	world.SetTimeline(p.Timeline)
	results := make([]rankResult, p.P)
	lc := newLayerCollector()

	wall0 := time.Now()
	err := world.Run(func(c *mpi.Comm) error {
		out := &results[c.Rank()]
		switch p.Method {
		case MethodDisSMO:
			return trainDisSMO(c, x, y, p, out)
		case MethodCascade:
			return trainTree(c, x, y, p, out, false, false, lc)
		case MethodDCSVM:
			return trainTree(c, x, y, p, out, true, true, lc)
		case MethodDCFilter:
			return trainTree(c, x, y, p, out, true, false, lc)
		case MethodCPSVM:
			return trainCPSVM(c, x, y, p, out)
		case MethodFCFSCA, MethodBKMCA, MethodRACA:
			return trainCASVM(c, x, y, p, out)
		default:
			return fmt.Errorf("core: unimplemented method %q", p.Method)
		}
	})
	degraded := false
	if err != nil {
		// A crashed rank costs only its shard for the independent-model
		// methods when the caller opted into degraded completion; any
		// other failure — or a method that genuinely needs every rank —
		// aborts the run with the rank's error.
		var crash *mpi.CrashError
		if !(p.Degraded && p.Method.independentModels() && errors.As(err, &crash)) {
			return nil, err
		}
		degraded = true
	}
	wall := time.Since(wall0)

	st := Stats{
		Method: p.Method,
		P:      p.P,
		Wall:   wall,
	}
	st.TotalSec = world.MaxClock()
	st.PartSizes = make([]int, p.P)
	st.NodeTrainSec = make([]float64, p.P)
	st.NodeIters = make([]int, p.P)
	st.NodePos = make([]int, p.P)
	st.NodeNeg = make([]int, p.P)
	st.NodeSVPos = make([]int, p.P)
	st.NodeSVNeg = make([]int, p.P)
	for r := range results {
		st.PartSizes[r] = results[r].partSize
		st.NodeTrainSec[r] = results[r].trainSec
		st.NodeIters[r] = results[r].iters
		st.NodePos[r] = results[r].pos
		st.NodeNeg[r] = results[r].neg
		st.NodeSVPos[r] = results[r].svPos
		st.NodeSVNeg[r] = results[r].svNeg
		if results[r].initSec > st.InitSec {
			st.InitSec = results[r].initSec
		}
		if results[r].trainSec > st.TrainSec {
			st.TrainSec = results[r].trainSec
		}
		if results[r].kmIters > st.KMeansIters {
			st.KMeansIters = results[r].kmIters
		}
	}
	fillCommStats(&st, world.Stats())

	var set *model.Set
	switch p.Method {
	case MethodDisSMO:
		st.Iters = results[0].iters
		st.SVs = results[0].svs
		set = model.Single(results[0].local, nil)
	case MethodCascade, MethodDCSVM, MethodDCFilter:
		st.Layers = lc.snapshot()
		for _, l := range st.Layers {
			st.Iters += l.MaxIters()
		}
		st.SVs = results[0].svs
		set = model.Single(results[0].local, nil)
	default: // CP-SVM and the CA-SVM variants: one model per rank
		n := x.Features()
		var centers []float64
		var models []*model.Model
		for r := range results {
			if results[r].local == nil {
				if degraded {
					continue // lost shard: survivors carry the prediction
				}
				return nil, fmt.Errorf("core: rank %d produced no model", r)
			}
			models = append(models, results[r].local)
			centers = append(centers, results[r].center...)
			st.SVs += results[r].svs
			if results[r].iters > st.Iters {
				st.Iters = results[r].iters
			}
		}
		if len(models) == 0 {
			return nil, fmt.Errorf("core: every rank crashed: %w", err)
		}
		set = &model.Set{Models: models, Centers: la.NewDense(len(models), n, centers)}
	}
	st.Degraded = degraded
	return &Output{Set: set, Stats: st}, nil
}
