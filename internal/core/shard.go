// Remote-execution driver split: the worker half of a CA-SVM training run.
//
// The cluster runtime's remote executors run each rank's shard solve inside
// the worker process that holds the rank's lease, instead of modeling the
// whole world in-process on the coordinator. That split only works because
// RA-CA under the casvm2 placement is communication-free: rank r's model
// depends on nothing but (dataset, r, P, solver params), all of which the
// worker reproduces deterministically from the job spec. RunShard is that
// per-rank computation factored out of trainCASVM, bit-identical to what
// the in-process world would produce for the same rank, so a model set
// assembled from remotely trained shards lands on the same ModelHash as a
// fault-free local run.
//
// The coordinator half is AssembleShards: given the P rank models and
// routing centers collected over the lease connections, it rebuilds the
// model.Set exactly as runAttempt's independent-models branch would.
package core

import (
	"fmt"
	"sort"

	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/smo"
)

// ShardRows returns rank r's resident row block under the casvm2 placement:
// the same nearly-even contiguous split every in-process world uses, so a
// remote worker and the local reference run train on identical rows.
func ShardRows(m, p, r int) []int {
	if p < 1 || r < 0 || r >= p {
		return nil
	}
	return evenBlocks(m, p)[r]
}

// ShardRun configures one remote rank solve on top of Params: the rank
// identity plus the checkpoint/interrupt wiring the executor threads in.
// CheckpointEvery, CheckpointSink and Restore mirror smo.Config; Interrupt
// is polled every iteration (abort frames and lease loss surface there).
type ShardRun struct {
	Rank int
	P    int

	CheckpointEvery int
	CheckpointSink  func(*smo.Checkpoint)
	Restore         *smo.Checkpoint
	Interrupt       func(iter int) error
}

// ShardResult is one rank's trained shard: the local model and routing
// center that AssembleShards needs, plus the profile numbers the worker
// streams back to the coordinator.
type ShardResult struct {
	Model  *model.Model
	Center []float64

	Iters    int
	SVs      int
	PartSize int

	// Flops is the modeled solver work; VirtSec its α–β-priced virtual
	// time on Params.Machine (init charge + solve compute), excluding
	// checkpoint transport, which the executor prices per deposit.
	Flops   float64
	VirtSec float64
}

// RunShard trains rank run.Rank's resident shard of (x, y) exactly as the
// in-process RA-CA world would: same row block, same block-mean routing
// center, same solver configuration — therefore the same model bytes. Only
// MethodRACA is supported; every other method needs collectives the remote
// mesh does not carry.
func RunShard(x *la.Matrix, y []float64, p Params, run ShardRun) (*ShardResult, error) {
	if p.Method != MethodRACA {
		return nil, fmt.Errorf("core: RunShard supports %q only, got %q", MethodRACA, p.Method)
	}
	if x == nil || x.Rows() != len(y) {
		return nil, fmt.Errorf("core: shard samples and labels disagree")
	}
	if run.P < 1 || run.Rank < 0 || run.Rank >= run.P {
		return nil, fmt.Errorf("core: shard rank %d of %d out of range", run.Rank, run.P)
	}
	if x.Rows() < run.P {
		return nil, fmt.Errorf("core: %d samples cannot feed %d ranks", x.Rows(), run.P)
	}
	if err := p.validate(x.Rows()); err != nil {
		return nil, err
	}

	rows := evenBlocks(x.Rows(), run.P)[run.Rank]
	localX := x.Subset(rows)
	localY := subsetF64(y, rows)

	// The resident block IS the random partition; the routing center is the
	// block mean (eqn 14) — identical to trainCASVM's MethodRACA branch.
	center := localX.Mean(nil)
	virt := p.Machine.Compute(float64(localX.NNZ()))

	cfg := p.solverConfig()
	cfg.Interrupt = run.Interrupt
	cfg.CheckpointEvery = run.CheckpointEvery
	cfg.CheckpointSink = run.CheckpointSink
	cfg.Restore = run.Restore
	res, err := smo.Solve(localX, localY, cfg, nil)
	if err != nil {
		return nil, err
	}
	virt += p.Machine.Compute(res.Flops)

	m := localModel(localX, localY, res, p.Kernel)
	return &ShardResult{
		Model:    m,
		Center:   append([]float64(nil), center...),
		Iters:    res.Iters,
		SVs:      m.NSV(),
		PartSize: localX.Rows(),
		Flops:    res.Flops,
		VirtSec:  virt,
	}, nil
}

// AssembleShards rebuilds the routed model set from per-rank shard models
// and centers, in rank order — byte-identical to the set the in-process
// independent-models assembly produces, so ModelHash comparisons across the
// two execution modes are meaningful. features is the dataset's column
// count (every center must have that length).
func AssembleShards(shards map[int]*ShardResult, features int) (*model.Set, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: no shards to assemble")
	}
	ranks := make([]int, 0, len(shards))
	for r := range shards {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var models []*model.Model
	var centers []float64
	for _, r := range ranks {
		sh := shards[r]
		if sh == nil || sh.Model == nil {
			return nil, fmt.Errorf("core: rank %d produced no model", r)
		}
		if len(sh.Center) != features {
			return nil, fmt.Errorf("core: rank %d center has %d features, want %d", r, len(sh.Center), features)
		}
		models = append(models, sh.Model)
		centers = append(centers, sh.Center...)
	}
	return &model.Set{Models: models, Centers: la.NewDense(len(models), features, centers)}, nil
}

// Cadence exposes the checkpoint cadence with its default applied — the
// remote executor needs the same effective value the in-process supervisor
// would use.
func (r Recovery) Cadence() int { return r.every() }

// RestartBudget exposes the restart bound with its default applied.
func (r Recovery) RestartBudget() int { return r.maxRestarts() }

// PenaltySec exposes the modeled relaunch penalty with its default applied.
func (r Recovery) PenaltySec() float64 { return r.penalty() }
