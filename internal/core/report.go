package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"casvm/internal/model"
	"casvm/internal/trace"
	"casvm/internal/trace/critpath"
)

// ModelHash returns the SHA-256 hex digest of the serialized model set. The
// save format is fully deterministic, so the hash is a reproducibility
// fingerprint: two runs with the same data, parameters and seed produce the
// same hash regardless of Threads (the solver is bit-identical under
// shared-memory parallelism).
func ModelHash(s *model.Set) (string, error) {
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, s); err != nil {
		return "", fmt.Errorf("core: hashing model: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// BuildReport assembles the structured run report for a finished training
// run: parameters, machine constants, the phase/time split, communication
// volumes, fault outcome, and the model fingerprint. Timeline phases and
// metrics are attached when the caller wired them into Params; dataset and
// accuracy are caller-supplied annotations (zero values omit them).
func BuildReport(out *Output, p Params, dataset string, accuracy float64) (*trace.Report, error) {
	st := out.Stats
	r := &trace.Report{
		Method:  string(st.Method),
		Dataset: dataset,
		P:       st.P,
		Threads: p.Threads,
		Seed:    p.Seed,
		Machine: trace.MachineInfo{
			TcSec: p.Machine.Tc,
			TsSec: p.Machine.Ts,
			TwSec: p.Machine.Tw,
		},
		Solver: trace.SolverInfo{
			C:         p.C,
			Tol:       p.Tol,
			Kernel:    p.Kernel.Kind.String(),
			Gamma:     p.Kernel.Gamma,
			PosWeight: p.PosWeight,
		},
		Iters:      st.Iters,
		SVs:        st.SVs,
		TotalFlops: st.TotalFlops,
		Accuracy:   accuracy,
		InitSec:    st.InitSec,
		TrainSec:   st.TrainSec,
		TotalSec:   st.TotalSec,
		WallSec:    st.Wall.Seconds(),
		CompSec:    st.CompSec,
		CommSec:    st.CommSec,
		CommBytes:  st.CommBytes,
		CommOps:    st.CommOps,
		CommMatrix: st.CommMatrix,
		LostRanks:   st.LostRanks,
		Degraded:    st.Degraded,
		Recoveries:  st.Recoveries,
		RecoverySec: st.RecoverySec,
	}
	// A schedule-driven injector can describe its realized faults; record
	// them so any chaos run replays from its report alone.
	if fr, ok := p.Faults.(trace.FaultReporter); ok && p.Faults != nil {
		fi := fr.FaultsInfo()
		if fi != nil {
			if fi.Policy == "" {
				fi.Policy = string(p.Recovery.Policy)
			}
			if fi.CheckpointEvery == 0 && p.Recovery.Policy != RecoverOff {
				fi.CheckpointEvery = p.Recovery.every()
			}
			r.Faults = fi
		}
	}
	if out.Set != nil {
		h, err := ModelHash(out.Set)
		if err != nil {
			return nil, err
		}
		r.ModelHash = h
	}
	r.AttachTimeline(p.Timeline)
	r.AttachMetrics(p.Metrics)
	if p.Timeline != nil {
		// Critical-path decomposition of the virtual makespan from the
		// causal record (segments + flow edges) the timeline collected.
		cp, err := critpath.Analyze(critpath.FromTimeline(p.Timeline))
		switch {
		case err == nil:
			r.CritPath = cp.Report()
		case st.Recoveries > 0 || len(st.LostRanks) > 0:
			// A recovered or degraded run's causal record includes aborted
			// attempts whose segment tiling stops mid-flight; omit the
			// decomposition rather than failing the whole report.
		default:
			return nil, fmt.Errorf("core: critical path: %w", err)
		}
	}
	return r, nil
}
