package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDotBasic(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, 2, 3, 4, 5}, []float64{1, 1, 1, 1, 1}, 15},
		{[]float64{-1, 2}, []float64{3, 4}, 5},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dot(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotUnrollMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 40; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d: Dot=%v want %v", n, got, want)
		}
	}
}

func TestSqDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if got := SqDist(a, b); !almostEq(got, 25, 1e-12) {
		t.Errorf("SqDist=%v want 25", got)
	}
	if got := SqDist(a, a); got != 0 {
		t.Errorf("SqDist(a,a)=%v want 0", got)
	}
}

func TestSqDistUnequalLengths(t *testing.T) {
	// Shorter vector behaves as zero-padded.
	a := []float64{1, 2}
	b := []float64{1, 2, 3}
	if got := SqDist(a, b); !almostEq(got, 9, 1e-12) {
		t.Errorf("SqDist=%v want 9", got)
	}
	if got := SqDist(b, a); !almostEq(got, 9, 1e-12) {
		t.Errorf("SqDist reversed=%v want 9", got)
	}
}

func TestAxpyScaleFillSum(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("Scale got %v", y)
	}
	if s := Sum(y); !almostEq(s, 1.5+2.5+3.5, 1e-12) {
		t.Fatalf("Sum got %v", s)
	}
	Fill(y, -1)
	if y[0] != -1 || y[2] != -1 {
		t.Fatalf("Fill got %v", y)
	}
}

func TestArgMinArgMax(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if i := ArgMin(x); i != 1 {
		t.Errorf("ArgMin=%d want 1 (first tie)", i)
	}
	if i := ArgMax(x); i != 4 {
		t.Errorf("ArgMax=%d want 4", i)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("empty ArgMin/ArgMax should be -1")
	}
}

func TestSpDot(t *testing.T) {
	ai := []int32{0, 3, 7}
	av := []float64{1, 2, 3}
	bi := []int32{3, 5, 7}
	bv := []float64{4, 9, 5}
	if got := SpDot(ai, av, bi, bv); !almostEq(got, 2*4+3*5, 1e-12) {
		t.Errorf("SpDot=%v want 23", got)
	}
	if got := SpDot(nil, nil, bi, bv); got != 0 {
		t.Errorf("SpDot empty=%v want 0", got)
	}
}

func TestSpDenseDot(t *testing.T) {
	d := []float64{1, 0, 2, 0, 3}
	if got := SpDenseDot([]int32{0, 4}, []float64{10, 10}, d); !almostEq(got, 40, 1e-12) {
		t.Errorf("SpDenseDot=%v want 40", got)
	}
	// Index out of dense range is ignored.
	if got := SpDenseDot([]int32{9}, []float64{100}, d); got != 0 {
		t.Errorf("SpDenseDot out-of-range=%v want 0", got)
	}
}

// Property: dot is symmetric and bilinear.
func TestDotProperties(t *testing.T) {
	f := func(a, b []float64, c float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if math.IsNaN(c) || math.Abs(c) > 1e3 {
			return true
		}
		if !almostEq(Dot(a, b), Dot(b, a), 1e-9) {
			return false
		}
		ca := make([]float64, n)
		for i := range a {
			ca[i] = c * a[i]
		}
		return almostEq(Dot(ca, b), c*Dot(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SqDist(a,b) == ||a||² + ||b||² − 2<a,b> and is non-negative.
func TestSqDistIdentity(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e6 {
				return true
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) || math.Abs(b[i]) > 1e6 {
				return true
			}
		}
		d := SqDist(a, b)
		id := SqNorm(a) + SqNorm(b) - 2*Dot(a, b)
		return d >= 0 && almostEq(d, id, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDot256(b *testing.B) {
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(256 - i)
	}
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}
