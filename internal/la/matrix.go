package la

import (
	"fmt"
	"math"
)

// Matrix is a row-major collection of m feature vectors in R^n. It stores
// rows either densely (one flat []float64) or sparsely (CSR). All SVM
// training code accesses samples through this type, so dense and sparse
// datasets flow through identical solver code.
//
// The zero value is an empty dense matrix with zero features.
type Matrix struct {
	n      int // features per row
	m      int // rows
	sparse bool

	// dense storage: row i is dense[i*n : (i+1)*n].
	dense []float64

	// CSR storage: row i has indices idx[rowptr[i]:rowptr[i+1]] (sorted,
	// strictly increasing) and matching values in val.
	rowptr []int32
	idx    []int32
	val    []float64

	// sqnorm caches ||row_i||² for Gaussian-kernel distance evaluation;
	// computed lazily by EnsureNorms.
	sqnorm []float64
}

// NewDense wraps the given flat row-major data (length m*n) as a dense
// matrix. The slice is retained, not copied.
func NewDense(m, n int, data []float64) *Matrix {
	if len(data) != m*n {
		panic(fmt.Sprintf("la: NewDense m*n=%d but len(data)=%d", m*n, len(data)))
	}
	return &Matrix{n: n, m: m, dense: data}
}

// NewSparse wraps CSR data as a sparse matrix. rowptr must have length m+1
// with rowptr[0]==0 and rowptr[m]==len(idx)==len(val). Indices within a row
// must be sorted and < n. The slices are retained, not copied.
func NewSparse(m, n int, rowptr, idx []int32, val []float64) *Matrix {
	if len(rowptr) != m+1 {
		panic(fmt.Sprintf("la: NewSparse len(rowptr)=%d want %d", len(rowptr), m+1))
	}
	if int(rowptr[m]) != len(idx) || len(idx) != len(val) {
		panic("la: NewSparse rowptr/idx/val disagree")
	}
	return &Matrix{n: n, m: m, sparse: true, rowptr: rowptr, idx: idx, val: val}
}

// Zeros returns an m×n dense matrix of zeros.
func Zeros(m, n int) *Matrix { return NewDense(m, n, make([]float64, m*n)) }

// Rows returns the number of samples.
func (a *Matrix) Rows() int { return a.m }

// Features returns the dimensionality n.
func (a *Matrix) Features() int { return a.n }

// Sparse reports whether the matrix uses CSR storage.
func (a *Matrix) Sparse() bool { return a.sparse }

// NNZ returns the total number of stored (nonzero for sparse, all for
// dense) entries.
func (a *Matrix) NNZ() int {
	if a.sparse {
		return len(a.val)
	}
	return a.m * a.n
}

// DenseRow returns row i for a dense matrix; it panics on sparse matrices.
// The returned slice aliases the matrix storage.
func (a *Matrix) DenseRow(i int) []float64 {
	if a.sparse {
		panic("la: DenseRow on sparse matrix")
	}
	return a.dense[i*a.n : (i+1)*a.n]
}

// SparseRow returns the (indices, values) of row i for a sparse matrix; it
// panics on dense matrices. The slices alias the matrix storage.
func (a *Matrix) SparseRow(i int) ([]int32, []float64) {
	if !a.sparse {
		panic("la: SparseRow on dense matrix")
	}
	return a.idx[a.rowptr[i]:a.rowptr[i+1]], a.val[a.rowptr[i]:a.rowptr[i+1]]
}

// RowInto copies row i into the dense buffer dst (length ≥ n) and returns
// dst[:n]. Works for both storage kinds.
func (a *Matrix) RowInto(i int, dst []float64) []float64 {
	dst = dst[:a.n]
	if !a.sparse {
		copy(dst, a.DenseRow(i))
		return dst
	}
	Fill(dst, 0)
	ix, vx := a.SparseRow(i)
	for k, j := range ix {
		dst[j] = vx[k]
	}
	return dst
}

// At returns element (i, j).
func (a *Matrix) At(i, j int) float64 {
	if !a.sparse {
		return a.dense[i*a.n+j]
	}
	ix, vx := a.SparseRow(i)
	for k, jj := range ix {
		if int(jj) == j {
			return vx[k]
		}
		if int(jj) > j {
			break
		}
	}
	return 0
}

// EnsureNorms computes and caches the squared norm of every row. It must be
// called before SqDistRows / SqDistVec on sparse matrices; dense matrices
// also benefit. It is idempotent.
func (a *Matrix) EnsureNorms() {
	if a.sqnorm != nil {
		return
	}
	sq := make([]float64, a.m)
	for i := 0; i < a.m; i++ {
		if a.sparse {
			_, vx := a.SparseRow(i)
			sq[i] = SpSqNorm(vx)
		} else {
			sq[i] = SqNorm(a.DenseRow(i))
		}
	}
	a.sqnorm = sq
}

// SqNormRow returns ‖row_i‖², computing the norm cache on first use.
func (a *Matrix) SqNormRow(i int) float64 {
	a.EnsureNorms()
	return a.sqnorm[i]
}

// DotRows returns <row_i, row_j>.
func (a *Matrix) DotRows(i, j int) float64 {
	if a.sparse {
		ii, iv := a.SparseRow(i)
		ji, jv := a.SparseRow(j)
		return SpDot(ii, iv, ji, jv)
	}
	return Dot(a.DenseRow(i), a.DenseRow(j))
}

// DotVec returns <row_i, x> where x is dense (length n).
func (a *Matrix) DotVec(i int, x []float64) float64 {
	if a.sparse {
		ix, vx := a.SparseRow(i)
		return SpDenseDot(ix, vx, x)
	}
	return Dot(a.DenseRow(i), x)
}

// SqDistRows returns ||row_i − row_j||², using cached norms when available.
func (a *Matrix) SqDistRows(i, j int) float64 {
	if a.sqnorm != nil {
		d := a.sqnorm[i] + a.sqnorm[j] - 2*a.DotRows(i, j)
		if d < 0 {
			d = 0
		}
		return d
	}
	if a.sparse {
		a.EnsureNorms()
		return a.SqDistRows(i, j)
	}
	return SqDist(a.DenseRow(i), a.DenseRow(j))
}

// SqDistVec returns ||row_i − x||² for a dense x with precomputed ||x||².
func (a *Matrix) SqDistVec(i int, x []float64, xsq float64) float64 {
	a.EnsureNorms()
	d := a.sqnorm[i] + xsq - 2*a.DotVec(i, x)
	if d < 0 {
		d = 0
	}
	return d
}

// Subset returns a new matrix containing the given rows in order. Storage
// kind is preserved; the result owns fresh slices.
func (a *Matrix) Subset(rows []int) *Matrix {
	if !a.sparse {
		out := make([]float64, len(rows)*a.n)
		for k, r := range rows {
			copy(out[k*a.n:(k+1)*a.n], a.DenseRow(r))
		}
		return NewDense(len(rows), a.n, out)
	}
	nnz := 0
	for _, r := range rows {
		nnz += int(a.rowptr[r+1] - a.rowptr[r])
	}
	rp := make([]int32, len(rows)+1)
	ix := make([]int32, 0, nnz)
	vx := make([]float64, 0, nnz)
	for k, r := range rows {
		ri, rv := a.SparseRow(r)
		ix = append(ix, ri...)
		vx = append(vx, rv...)
		rp[k+1] = int32(len(ix))
	}
	return NewSparse(len(rows), a.n, rp, ix, vx)
}

// Concat returns a new matrix holding the rows of a followed by the rows of
// b. Both must have the same feature count and storage kind.
func Concat(a, b *Matrix) *Matrix {
	if a.n != b.n {
		panic(fmt.Sprintf("la: Concat feature mismatch %d vs %d", a.n, b.n))
	}
	if a.sparse != b.sparse {
		panic("la: Concat mixes dense and sparse")
	}
	if !a.sparse {
		out := make([]float64, 0, len(a.dense)+len(b.dense))
		out = append(out, a.dense...)
		out = append(out, b.dense...)
		return NewDense(a.m+b.m, a.n, out)
	}
	rp := make([]int32, a.m+b.m+1)
	copy(rp, a.rowptr)
	off := a.rowptr[a.m]
	for i := 1; i <= b.m; i++ {
		rp[a.m+i] = off + b.rowptr[i]
	}
	ix := make([]int32, 0, len(a.idx)+len(b.idx))
	ix = append(ix, a.idx...)
	ix = append(ix, b.idx...)
	vx := make([]float64, 0, len(a.val)+len(b.val))
	vx = append(vx, a.val...)
	vx = append(vx, b.val...)
	return NewSparse(a.m+b.m, a.n, rp, ix, vx)
}

// Mean computes the column-wise mean of the given rows (all rows when rows
// is nil) into a dense vector of length n.
func (a *Matrix) Mean(rows []int) []float64 {
	mean := make([]float64, a.n)
	count := 0
	add := func(i int) {
		if a.sparse {
			ix, vx := a.SparseRow(i)
			for k, j := range ix {
				mean[j] += vx[k]
			}
		} else {
			r := a.DenseRow(i)
			for j, v := range r {
				mean[j] += v
			}
		}
		count++
	}
	if rows == nil {
		for i := 0; i < a.m; i++ {
			add(i)
		}
	} else {
		for _, i := range rows {
			add(i)
		}
	}
	if count > 0 {
		Scale(1/float64(count), mean)
	}
	return mean
}

// CloneEmpty returns a 0-row matrix with the same feature count and storage
// kind as a.
func (a *Matrix) CloneEmpty() *Matrix {
	if a.sparse {
		return NewSparse(0, a.n, []int32{0}, nil, nil)
	}
	return NewDense(0, a.n, nil)
}

// Equal reports whether two matrices hold identical values (including
// storage kind, dimension, and entries within tolerance tol).
func Equal(a, b *Matrix, tol float64) bool {
	if a.m != b.m || a.n != b.n {
		return false
	}
	for i := 0; i < a.m; i++ {
		for j := 0; j < a.n; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}
