// Package la provides the dense and sparse linear-algebra primitives the
// SVM solvers and partitioners are built on: vector kernels (dot, axpy,
// squared distance) and a row-major sample matrix that can hold either dense
// or CSR-encoded sparse rows behind one interface.
//
// Everything here is deliberately allocation-free on the hot paths; the SMO
// inner loop spends nearly all of its time in Dot and SqDist.
package la

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; only the common prefix is used if they do not, which matches the
// semantics of zero-padding the shorter vector.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a = a[:n]
	b = b[:n:n]
	// Unrolled by 4 with independent accumulators: the Go compiler does
	// not auto-vectorize, and four parallel dependency chains let the CPU
	// overlap the multiply-adds instead of serialising on one sum.
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance ||a-b||².
func SqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	// Tails when one vector is longer than the other.
	for ; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i = n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. Elementwise updates are
// independent, so the 4-way unroll changes no rounding — only loop
// overhead and bounds checks.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	x = x[:n]
	y = y[:n:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Norm2 returns the Euclidean norm ||x||.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// SqNorm returns ||x||².
func SqNorm(x []float64) float64 { return Dot(x, x) }

// ArgMin returns the index of the smallest element of x, or -1 if x is
// empty. Ties resolve to the lowest index.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] < best {
			best, bi = x[i], i
		}
	}
	return bi
}

// ArgMax returns the index of the largest element of x, or -1 if x is empty.
// Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// SpDot returns the inner product of two sparse vectors given as sorted
// (index, value) pairs. Sparse SVM rows usually share long aligned index
// runs (dense-ish feature blocks), so the merge loop peels 4 aligned
// matches at a time into independent accumulators before falling back to
// the two-pointer step.
func SpDot(ai []int32, av []float64, bi []int32, bv []float64) float64 {
	na, nb := len(ai), len(bi)
	var s0, s1, s2, s3 float64
	i, j := 0, 0
	for i < na && j < nb {
		// Aligned-run fast path: 4 consecutive matching indices.
		for i+4 <= na && j+4 <= nb &&
			ai[i] == bi[j] && ai[i+1] == bi[j+1] &&
			ai[i+2] == bi[j+2] && ai[i+3] == bi[j+3] {
			s0 += av[i] * bv[j]
			s1 += av[i+1] * bv[j+1]
			s2 += av[i+2] * bv[j+2]
			s3 += av[i+3] * bv[j+3]
			i += 4
			j += 4
		}
		if i >= na || j >= nb {
			break
		}
		switch {
		case ai[i] == bi[j]:
			s0 += av[i] * bv[j]
			i++
			j++
		case ai[i] < bi[j]:
			i++
		default:
			j++
		}
	}
	return (s0 + s1) + (s2 + s3)
}

// SpDenseDot returns the inner product of a sparse vector with a dense one.
// Indices beyond len(d) are ignored.
func SpDenseDot(ai []int32, av []float64, d []float64) float64 {
	var s float64
	for k, idx := range ai {
		if int(idx) < len(d) {
			s += av[k] * d[idx]
		}
	}
	return s
}

// SpSqNorm returns ||v||² of a sparse vector.
func SpSqNorm(av []float64) float64 {
	var s float64
	for _, v := range av {
		s += v * v
	}
	return s
}
