package la

import (
	"math/rand"
	"testing"
)

// The tile layer's whole value proposition is bit-identity with the scalar
// kernels it replaces, so every test here uses ==, never a tolerance.

func TestDot4MatchesDotBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var dst [4]float64
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		bs := [4][]float64{randVec(rng, n), randVec(rng, n), randVec(rng, n), randVec(rng, n)}
		Dot4(x, bs[0], bs[1], bs[2], bs[3], dst[:])
		for c := 0; c < 4; c++ {
			if want := Dot(x, bs[c]); dst[c] != want {
				t.Fatalf("n=%d col=%d: Dot4=%v Dot=%v", n, c, dst[c], want)
			}
		}
	}
}

func TestDot4SymmetricMatchesDotBitwise(t *testing.T) {
	// The dense×sparse MulTile path relies on Dot4(col, row0..row3) equalling
	// Dot(row_i, col): Dot is bitwise symmetric (same products, same order).
	rng := rand.New(rand.NewSource(32))
	var dst [4]float64
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		bs := [4][]float64{randVec(rng, n), randVec(rng, n), randVec(rng, n), randVec(rng, n)}
		Dot4(x, bs[0], bs[1], bs[2], bs[3], dst[:])
		for c := 0; c < 4; c++ {
			if want := Dot(bs[c], x); dst[c] != want {
				t.Fatalf("n=%d col=%d: Dot4=%v Dot(swapped)=%v", n, c, dst[c], want)
			}
		}
	}
}

func TestSqDist4MatchesSqDistBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var dst [4]float64
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		bs := [4][]float64{randVec(rng, n), randVec(rng, n), randVec(rng, n), randVec(rng, n)}
		SqDist4(x, bs[0], bs[1], bs[2], bs[3], dst[:])
		for c := 0; c < 4; c++ {
			if want := SqDist(x, bs[c]); dst[c] != want {
				t.Fatalf("n=%d col=%d: SqDist4=%v SqDist=%v", n, c, dst[c], want)
			}
		}
	}
}

// refDot is the scalar primitive the row-at-a-time paths use for the given
// storage pairing — the reference MulTile must match bitwise.
func refDot(a *Matrix, i int, b *Matrix, j int, buf []float64) float64 {
	switch {
	case !a.Sparse() && !b.Sparse():
		return Dot(a.DenseRow(i), b.DenseRow(j))
	case a.Sparse() && b.Sparse():
		ai, av := a.SparseRow(i)
		bi, bv := b.SparseRow(j)
		return SpDot(ai, av, bi, bv)
	case a.Sparse():
		ai, av := a.SparseRow(i)
		return SpDenseDot(ai, av, b.DenseRow(j))
	default:
		return Dot(a.DenseRow(i), b.RowInto(j, buf))
	}
}

func TestMulTileMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	mk := func(m, n int, sparse bool) *Matrix {
		if sparse {
			return randSparse(rng, m, n, 0.35)
		}
		return randDense(rng, m, n)
	}
	// Ragged shapes on purpose: row counts and column windows that are not
	// multiples of the 4-wide microkernel.
	shapes := []struct{ am, bm, n int }{
		{1, 1, 5}, {3, 7, 13}, {4, 4, 16}, {5, 9, 31}, {8, 6, 64}, {7, 11, 3},
	}
	for _, aSp := range []bool{false, true} {
		for _, bSp := range []bool{false, true} {
			for _, sh := range shapes {
				a := mk(sh.am, sh.n, aSp)
				b := mk(sh.bm, sh.n, bSp)
				rows := rng.Perm(sh.am)[:1+rng.Intn(sh.am)]
				clo := rng.Intn(sh.bm)
				chi := clo + 1 + rng.Intn(sh.bm-clo)
				ld := (chi - clo) + rng.Intn(3) // ld may exceed the tile width
				dst := make([]float64, len(rows)*ld)
				MulTile(a, rows, b, clo, chi, dst, ld)
				buf := make([]float64, sh.n)
				for r, ar := range rows {
					for c := clo; c < chi; c++ {
						got := dst[r*ld+(c-clo)]
						want := refDot(a, ar, b, c, buf)
						if got != want {
							t.Fatalf("aSp=%v bSp=%v shape=%+v r=%d c=%d: tile=%v scalar=%v",
								aSp, bSp, sh, ar, c, got, want)
						}
					}
				}
			}
		}
	}
}

func TestMulTileSameMatrix(t *testing.T) {
	// a == b (training-scan shape: K rows against the whole set).
	rng := rand.New(rand.NewSource(35))
	for _, sp := range []bool{false, true} {
		var a *Matrix
		if sp {
			a = randSparse(rng, 9, 21, 0.4)
		} else {
			a = randDense(rng, 9, 21)
		}
		rows := []int{8, 0, 5}
		dst := make([]float64, len(rows)*a.Rows())
		MulTile(a, rows, a, 0, a.Rows(), dst, a.Rows())
		for r, ar := range rows {
			for c := 0; c < a.Rows(); c++ {
				if got, want := dst[r*a.Rows()+c], a.DotRows(ar, c); got != want {
					t.Fatalf("sp=%v r=%d c=%d: tile=%v DotRows=%v", sp, ar, c, got, want)
				}
			}
		}
	}
}

func TestMulTileEmpty(t *testing.T) {
	a := randDense(rand.New(rand.NewSource(36)), 3, 8)
	MulTile(a, nil, a, 0, 3, nil, 3)      // no rows
	MulTile(a, []int{0}, a, 2, 2, nil, 0) // empty column window
}

// BenchmarkMulTile prices the blocked tile against the equivalent scalar
// row-at-a-time loop — the microbench half of BENCH_kernel.json.
func BenchmarkMulTile(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	const m, n, nrows = 512, 256, 16
	a := randDense(rng, m, n)
	rows := make([]int, nrows)
	for i := range rows {
		rows[i] = (i * 31) % m
	}
	dst := make([]float64, nrows*m)
	b.Run("tile", func(b *testing.B) {
		b.SetBytes(int64(8 * nrows * m * n))
		for i := 0; i < b.N; i++ {
			MulTile(a, rows, a, 0, m, dst, m)
		}
	})
	b.Run("rowloop", func(b *testing.B) {
		b.SetBytes(int64(8 * nrows * m * n))
		for i := 0; i < b.N; i++ {
			for r, ar := range rows {
				x := a.DenseRow(ar)
				out := dst[r*m:]
				for c := 0; c < m; c++ {
					out[c] = Dot(x, a.DenseRow(c))
				}
			}
		}
	})
}
