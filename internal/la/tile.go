package la

// Blocked-GEMM tile layer. Kernel matrices are rank-k products in disguise
// — K = f(X·Zᵀ, ‖x‖², ‖z‖²) — so the dominant flops of both training scans
// and batch prediction are blocks of inner products. This file computes
// such blocks with register-blocked microkernels (one left row held in
// registers against four right rows at a time, each dot 4-way unrolled —
// a 4×4 blocking of the k-loop) so one pass over the right-hand rows
// serves four outputs instead of one.
//
// Bit-identity contract: every output element equals the corresponding
// scalar kernel's result EXACTLY — Dot4 reproduces Dot's accumulator
// layout and combination order per column, SqDist4 reproduces SqDist's.
// The tile engine in internal/kernel leans on this to keep tiled training
// and prediction bit-identical to the row-at-a-time paths it replaces.

// Dot4 computes dst[c] = Dot(x, b_c) for four right-hand vectors sharing
// the left vector x, loading each x element once per group of four
// outputs. All of b0..b3 must have length ≥ len(x); dst must have length
// ≥ 4. Each output is bit-identical to the corresponding Dot call.
func Dot4(x, b0, b1, b2, b3 []float64, dst []float64) {
	n := len(x)
	x = x[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var a0, a1, a2, a3 float64
	var c0, c1, c2, c3 float64
	var d0, d1, d2, d3 float64
	var e0, e1, e2, e3 float64
	i := 0
	// x elements are read directly (not hoisted into locals): 16 live
	// accumulators already exhaust the XMM file, and re-reading L1-hot x
	// benches faster than spilling four more registers.
	for ; i+4 <= n; i += 4 {
		a0 += x[i] * b0[i]
		a1 += x[i+1] * b0[i+1]
		a2 += x[i+2] * b0[i+2]
		a3 += x[i+3] * b0[i+3]
		c0 += x[i] * b1[i]
		c1 += x[i+1] * b1[i+1]
		c2 += x[i+2] * b1[i+2]
		c3 += x[i+3] * b1[i+3]
		d0 += x[i] * b2[i]
		d1 += x[i+1] * b2[i+1]
		d2 += x[i+2] * b2[i+2]
		d3 += x[i+3] * b2[i+3]
		e0 += x[i] * b3[i]
		e1 += x[i+1] * b3[i+1]
		e2 += x[i+2] * b3[i+2]
		e3 += x[i+3] * b3[i+3]
	}
	s0 := (a0 + a1) + (a2 + a3)
	s1 := (c0 + c1) + (c2 + c3)
	s2 := (d0 + d1) + (d2 + d3)
	s3 := (e0 + e1) + (e2 + e3)
	for ; i < n; i++ {
		xi := x[i]
		s0 += xi * b0[i]
		s1 += xi * b1[i]
		s2 += xi * b2[i]
		s3 += xi * b3[i]
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}

// SqDist4 computes dst[c] = SqDist(x, b_c) for four right-hand vectors
// sharing x. All of b0..b3 must have length ≥ len(x) (no ragged tails);
// dst must have length ≥ 4. Each output is bit-identical to the
// corresponding SqDist call on equal-length vectors.
func SqDist4(x, b0, b1, b2, b3 []float64, dst []float64) {
	n := len(x)
	x = x[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	var a0, a1, a2, a3 float64
	var c0, c1, c2, c3 float64
	var d0, d1, d2, d3 float64
	var e0, e1, e2, e3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		{
			t0 := x[i] - b0[i]
			t1 := x[i+1] - b0[i+1]
			t2 := x[i+2] - b0[i+2]
			t3 := x[i+3] - b0[i+3]
			a0 += t0 * t0
			a1 += t1 * t1
			a2 += t2 * t2
			a3 += t3 * t3
		}
		{
			t0 := x[i] - b1[i]
			t1 := x[i+1] - b1[i+1]
			t2 := x[i+2] - b1[i+2]
			t3 := x[i+3] - b1[i+3]
			c0 += t0 * t0
			c1 += t1 * t1
			c2 += t2 * t2
			c3 += t3 * t3
		}
		{
			t0 := x[i] - b2[i]
			t1 := x[i+1] - b2[i+1]
			t2 := x[i+2] - b2[i+2]
			t3 := x[i+3] - b2[i+3]
			d0 += t0 * t0
			d1 += t1 * t1
			d2 += t2 * t2
			d3 += t3 * t3
		}
		{
			t0 := x[i] - b3[i]
			t1 := x[i+1] - b3[i+1]
			t2 := x[i+2] - b3[i+2]
			t3 := x[i+3] - b3[i+3]
			e0 += t0 * t0
			e1 += t1 * t1
			e2 += t2 * t2
			e3 += t3 * t3
		}
	}
	s0 := (a0 + a1) + (a2 + a3)
	s1 := (c0 + c1) + (c2 + c3)
	s2 := (d0 + d1) + (d2 + d3)
	s3 := (e0 + e1) + (e2 + e3)
	for ; i < n; i++ {
		xi := x[i]
		t0 := xi - b0[i]
		s0 += t0 * t0
		t1 := xi - b1[i]
		s1 += t1 * t1
		t2 := xi - b2[i]
		s2 += t2 * t2
		t3 := xi - b3[i]
		s3 += t3 * t3
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}

// MulTile computes the inner-product block
//
//	dst[r*ld + (c-clo)] = <a_row(rows[r]), b_row(c)>   for c in [clo, chi)
//
// — a block of X·Zᵀ, the GEMM at the heart of kernel-matrix evaluation.
// a and b may be the same matrix. Each element is bit-identical to the
// scalar primitive the row-at-a-time paths use for that storage pairing:
//
//	dense×dense  → Dot(a_r, b_c)           (via the Dot4 microkernel)
//	sparse×sparse→ SpDot(a_r, b_c)         (a row's indices hoisted)
//	sparse×dense → SpDenseDot(a_r, b_c)    (DotVec's arithmetic)
//	dense×sparse → Dot(a_r, densify(b_c))  (each b row densified once per
//	                                        tile column, not per element)
//
// dst must have length ≥ (len(rows)-1)*ld + (chi-clo) and ld ≥ chi-clo.
func MulTile(a *Matrix, rows []int, b *Matrix, clo, chi int, dst []float64, ld int) {
	w := chi - clo
	if w <= 0 || len(rows) == 0 {
		return
	}
	switch {
	case !a.Sparse() && !b.Sparse():
		// Column-outer, 4 a-rows per pass: each b row is streamed once per
		// quad of outputs instead of once per output — a 4× cut in b-side
		// memory traffic, which is what makes large-SV batch predict win.
		// Dot is bitwise symmetric in its arguments (same products, same
		// order), so Dot4 with the b row as the shared vector equals
		// Dot(a_r, b_c) per row.
		var tmp [4]float64
		r := 0
		for ; r+4 <= len(rows); r += 4 {
			x0 := a.DenseRow(rows[r])
			x1 := a.DenseRow(rows[r+1])
			x2 := a.DenseRow(rows[r+2])
			x3 := a.DenseRow(rows[r+3])
			for c := clo; c < chi; c++ {
				Dot4(b.DenseRow(c), x0, x1, x2, x3, tmp[:])
				o := c - clo
				dst[r*ld+o] = tmp[0]
				dst[(r+1)*ld+o] = tmp[1]
				dst[(r+2)*ld+o] = tmp[2]
				dst[(r+3)*ld+o] = tmp[3]
			}
		}
		for ; r < len(rows); r++ {
			x := a.DenseRow(rows[r])
			out := dst[r*ld:]
			for c := clo; c < chi; c++ {
				out[c-clo] = Dot(x, b.DenseRow(c))
			}
		}
	case a.Sparse() && b.Sparse():
		for r, ar := range rows {
			ri, rv := a.SparseRow(ar)
			out := dst[r*ld:]
			for c := clo; c < chi; c++ {
				ci, cv := b.SparseRow(c)
				out[c-clo] = SpDot(ri, rv, ci, cv)
			}
		}
	case a.Sparse(): // sparse × dense
		for r, ar := range rows {
			ri, rv := a.SparseRow(ar)
			out := dst[r*ld:]
			for c := clo; c < chi; c++ {
				out[c-clo] = SpDenseDot(ri, rv, b.DenseRow(c))
			}
		}
	default: // dense × sparse: densify each b column once, 4 a rows per pass
		buf := make([]float64, b.Features())
		var tmp [4]float64
		for c := clo; c < chi; c++ {
			xc := b.RowInto(c, buf)
			o := c - clo
			r := 0
			for ; r+4 <= len(rows); r += 4 {
				Dot4(xc, a.DenseRow(rows[r]), a.DenseRow(rows[r+1]),
					a.DenseRow(rows[r+2]), a.DenseRow(rows[r+3]), tmp[:])
				dst[r*ld+o] = tmp[0]
				dst[(r+1)*ld+o] = tmp[1]
				dst[(r+2)*ld+o] = tmp[2]
				dst[(r+3)*ld+o] = tmp[3]
			}
			for ; r < len(rows); r++ {
				dst[r*ld+o] = Dot(a.DenseRow(rows[r]), xc)
			}
		}
	}
}
