package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: EncodeRows/DecodeMatrix round-trips any dense matrix up to
// float32 quantisation, for arbitrary shapes and row selections.
func TestEncodeDecodeDenseProperty(t *testing.T) {
	f := func(seed int64, mu, nu uint8) bool {
		m := int(mu)%12 + 1
		n := int(nu)%9 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, m*n)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		a := NewDense(m, n, data)
		rows := rng.Perm(m)[:rng.Intn(m)+1]
		b, err := DecodeMatrix(a.EncodeRows(rows))
		if err != nil {
			return false
		}
		if b.Rows() != len(rows) || b.Features() != n {
			return false
		}
		for k, r := range rows {
			for j := 0; j < n; j++ {
				if b.At(k, j) != float64(float32(a.At(r, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: sparse round trip preserves structure exactly (indices) and
// values to float32.
func TestEncodeDecodeSparseProperty(t *testing.T) {
	f := func(seed int64, mu, nu uint8) bool {
		m := int(mu)%10 + 1
		n := int(nu)%20 + 2
		rng := rand.New(rand.NewSource(seed))
		rp := make([]int32, m+1)
		var ix []int32
		var vx []float64
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					ix = append(ix, int32(j))
					vx = append(vx, rng.NormFloat64())
				}
			}
			rp[i+1] = int32(len(ix))
		}
		a := NewSparse(m, n, rp, ix, vx)
		b, err := DecodeMatrix(a.EncodeAll())
		if err != nil || !b.Sparse() || b.NNZ() != a.NNZ() {
			return false
		}
		for i := 0; i < m; i++ {
			ai, av := a.SparseRow(i)
			bi, bv := b.SparseRow(i)
			if len(ai) != len(bi) {
				return false
			}
			for k := range ai {
				if ai[k] != bi[k] || bv[k] != float64(float32(av[k])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the EncodedSize prediction always matches the produced buffer.
func TestEncodedSizeProperty(t *testing.T) {
	f := func(seed int64, mu uint8) bool {
		m := int(mu)%15 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, m*3)
		for i := range data {
			data[i] = rng.Float64()
		}
		a := NewDense(m, 3, data)
		rows := rng.Perm(m)[:rng.Intn(m)+1]
		return a.EncodedSize(rows) == len(a.EncodeRows(rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: decoding corrupted headers never panics, only errors.
func TestDecodeCorruptionSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewDense(4, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	buf := a.EncodeAll()
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), buf...)
		// Flip a few random bytes.
		for k := 0; k < 3; k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeMatrix panicked on corrupted input: %v", r)
				}
			}()
			m, err := DecodeMatrix(corrupted)
			_ = m
			_ = err // either outcome is fine; panicking is not
		}()
	}
	if math.IsNaN(0) {
		t.Fatal("unreachable")
	}
}
