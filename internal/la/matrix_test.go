package la

import (
	"math/rand"
	"testing"
)

// randDense returns a random dense matrix and keeps values moderate.
func randDense(rng *rand.Rand, m, n int) *Matrix {
	data := make([]float64, m*n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return NewDense(m, n, data)
}

// randSparse returns a random CSR matrix with roughly density*n nonzeros
// per row.
func randSparse(rng *rand.Rand, m, n int, density float64) *Matrix {
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				ix = append(ix, int32(j))
				vx = append(vx, rng.NormFloat64())
			}
		}
		rp[i+1] = int32(len(ix))
	}
	return NewSparse(m, n, rp, ix, vx)
}

func TestDenseBasics(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if a.Rows() != 2 || a.Features() != 3 || a.Sparse() {
		t.Fatal("dims wrong")
	}
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v", a.At(1, 2))
	}
	if got := a.DotRows(0, 1); got != 4+10+18 {
		t.Fatalf("DotRows=%v", got)
	}
	if got := a.SqDistRows(0, 1); got != 27 {
		t.Fatalf("SqDistRows=%v", got)
	}
	if a.NNZ() != 6 {
		t.Fatalf("NNZ=%d", a.NNZ())
	}
}

func TestSparseBasics(t *testing.T) {
	// rows: [0 0 5], [1 0 2]
	a := NewSparse(2, 3, []int32{0, 1, 3}, []int32{2, 0, 2}, []float64{5, 1, 2})
	if !a.Sparse() || a.Rows() != 2 || a.Features() != 3 {
		t.Fatal("dims wrong")
	}
	if a.At(0, 2) != 5 || a.At(0, 0) != 0 || a.At(1, 0) != 1 {
		t.Fatal("At wrong")
	}
	if got := a.DotRows(0, 1); got != 10 {
		t.Fatalf("DotRows=%v", got)
	}
	if got := a.SqDistRows(0, 1); got != 1+9 {
		t.Fatalf("SqDistRows=%v", got)
	}
	buf := make([]float64, 3)
	r := a.RowInto(1, buf)
	if r[0] != 1 || r[1] != 0 || r[2] != 2 {
		t.Fatalf("RowInto=%v", r)
	}
}

func TestSparseDenseAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := randSparse(rng, 20, 15, 0.4)
	// Densify.
	data := make([]float64, 20*15)
	for i := 0; i < 20; i++ {
		for j := 0; j < 15; j++ {
			data[i*15+j] = sp.At(i, j)
		}
	}
	de := NewDense(20, 15, data)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if !almostEq(sp.DotRows(i, j), de.DotRows(i, j), 1e-12) {
				t.Fatalf("DotRows disagree at %d,%d", i, j)
			}
			if !almostEq(sp.SqDistRows(i, j), de.SqDistRows(i, j), 1e-9) {
				t.Fatalf("SqDistRows disagree at %d,%d", i, j)
			}
		}
		x := de.DenseRow((i + 3) % 20)
		if !almostEq(sp.DotVec(i, x), de.DotVec(i, x), 1e-12) {
			t.Fatalf("DotVec disagree at %d", i)
		}
	}
}

func TestSubsetConcatDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 6, 4)
	s := a.Subset([]int{5, 0, 3})
	if s.Rows() != 3 {
		t.Fatal("subset rows")
	}
	for j := 0; j < 4; j++ {
		if s.At(0, j) != a.At(5, j) || s.At(2, j) != a.At(3, j) {
			t.Fatal("subset values")
		}
	}
	c := Concat(a, s)
	if c.Rows() != 9 || c.At(6, 1) != a.At(5, 1) {
		t.Fatal("concat values")
	}
}

func TestSubsetConcatSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSparse(rng, 8, 5, 0.5)
	s := a.Subset([]int{7, 2})
	for j := 0; j < 5; j++ {
		if s.At(0, j) != a.At(7, j) || s.At(1, j) != a.At(2, j) {
			t.Fatal("sparse subset values")
		}
	}
	c := Concat(a, s)
	if c.Rows() != 10 || c.At(9, 3) != a.At(2, 3) {
		t.Fatal("sparse concat values")
	}
	if c.NNZ() != a.NNZ()+s.NNZ() {
		t.Fatal("sparse concat nnz")
	}
}

func TestMean(t *testing.T) {
	a := NewDense(3, 2, []float64{0, 0, 2, 4, 4, 8})
	m := a.Mean(nil)
	if m[0] != 2 || m[1] != 4 {
		t.Fatalf("Mean=%v", m)
	}
	m = a.Mean([]int{1, 2})
	if m[0] != 3 || m[1] != 6 {
		t.Fatalf("Mean subset=%v", m)
	}
	// Empty subset must not divide by zero.
	m = a.Mean([]int{})
	if m[0] != 0 || m[1] != 0 {
		t.Fatalf("Mean empty=%v", m)
	}
}

func TestSqDistVec(t *testing.T) {
	a := NewDense(2, 2, []float64{3, 4, 0, 0})
	x := []float64{0, 0}
	if got := a.SqDistVec(0, x, 0); got != 25 {
		t.Fatalf("SqDistVec=%v", got)
	}
	if got := a.SqDistVec(1, x, 0); got != 0 {
		t.Fatalf("SqDistVec self=%v", got)
	}
}

func TestEncodeDecodeDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 5, 3)
	buf := a.EncodeRows([]int{0, 2, 4})
	if len(buf) != a.EncodedSize([]int{0, 2, 4}) {
		t.Fatalf("EncodedSize=%d len=%d", a.EncodedSize([]int{0, 2, 4}), len(buf))
	}
	b, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 3 || b.Features() != 3 {
		t.Fatal("decoded dims")
	}
	for j := 0; j < 3; j++ {
		if !almostEq(b.At(1, j), float64(float32(a.At(2, j))), 1e-7) {
			t.Fatalf("value mismatch at col %d", j)
		}
	}
}

func TestEncodeDecodeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSparse(rng, 6, 10, 0.3)
	buf := a.EncodeAll()
	if len(buf) != a.EncodedSize([]int{0, 1, 2, 3, 4, 5}) {
		t.Fatal("EncodedSize mismatch")
	}
	b, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Sparse() || b.Rows() != 6 {
		t.Fatal("decoded kind/dims")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			if !almostEq(b.At(i, j), float64(float32(a.At(i, j))), 1e-7) {
				t.Fatalf("value mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeMatrix(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	if _, err := DecodeMatrix([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown kind should fail")
	}
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	buf := a.EncodeAll()
	if _, err := DecodeMatrix(buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer should fail")
	}
}

func TestEncodeDecodeF64(t *testing.T) {
	x := []float64{1.5, -2.25, 0, 1e300}
	y, err := DecodeF64(EncodeF64(x))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("roundtrip mismatch %v vs %v", x, y)
		}
	}
	if _, err := DecodeF64([]byte{1}); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := DecodeF64(EncodeF64(x)[:10]); err == nil {
		t.Error("truncated buffer should fail")
	}
	y, err = DecodeF64(EncodeF64(nil))
	if err != nil || len(y) != 0 {
		t.Error("empty roundtrip should work")
	}
}

func TestEqual(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2, []float64{1, 2, 3, 4.0000001})
	if !Equal(a, b, 1e-5) {
		t.Error("should be equal within tol")
	}
	if Equal(a, b, 1e-9) {
		t.Error("should differ at tight tol")
	}
	c := NewDense(1, 2, []float64{1, 2})
	if Equal(a, c, 1) {
		t.Error("dim mismatch should not be equal")
	}
}
