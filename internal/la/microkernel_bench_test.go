package la

import (
	"math/rand"
	"testing"
)

var benchSink float64

// BenchmarkDot covers the unrolled micro-kernels at the row widths the SMO
// hot path sees (small feature counts) and cache-resident widths.
func BenchmarkDot(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		rng := rand.New(rand.NewSource(int64(n)))
		x, y := randVec(rng, n), randVec(rng, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = Dot(x, y)
			}
		})
	}
}

func BenchmarkSqDistMicro(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		rng := rand.New(rand.NewSource(int64(n)))
		x, y := randVec(rng, n), randVec(rng, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = SqDist(x, y)
			}
		})
	}
}

func BenchmarkSpDotAligned(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	ai, av := randSparseVec(rng, 4096, 1, false)
	bv := randVec(rng, len(av))
	b.SetBytes(int64(16 * len(av)))
	for i := 0; i < b.N; i++ {
		benchSink = SpDot(ai, av, ai, bv)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return "n4096"
	case n >= 256:
		return "n256"
	default:
		return "n16"
	}
}
