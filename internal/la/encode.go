package la

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format for shipping sample blocks between ranks. Features travel as
// float32 (4 bytes per word), matching the single-precision transfers of the
// original CA-SVM code and the ×4B accounting used in the paper's Table X
// communication-volume model. Structural integers are int32.
//
// Layout (little endian):
//
//	byte  0     : kind (0 = dense, 1 = sparse)
//	int32 m, n  : rows, features
//	dense : m*n float32 values
//	sparse: (m+1) int32 rowptr, nnz int32 idx, nnz float32 val

const (
	wireDense  = 0
	wireSparse = 1
)

// EncodedSize returns the number of bytes EncodeRows will produce for the
// given rows without building the buffer.
func (a *Matrix) EncodedSize(rows []int) int {
	if !a.sparse {
		return 9 + 4*len(rows)*a.n
	}
	nnz := 0
	for _, r := range rows {
		nnz += int(a.rowptr[r+1] - a.rowptr[r])
	}
	return 9 + 4*(len(rows)+1) + 8*nnz
}

// EncodeRows serialises the given rows (in order) to the wire format.
func (a *Matrix) EncodeRows(rows []int) []byte {
	buf := make([]byte, 0, a.EncodedSize(rows))
	le := binary.LittleEndian
	var hdr [9]byte
	if a.sparse {
		hdr[0] = wireSparse
	} else {
		hdr[0] = wireDense
	}
	le.PutUint32(hdr[1:5], uint32(len(rows)))
	le.PutUint32(hdr[5:9], uint32(a.n))
	buf = append(buf, hdr[:]...)

	var w4 [4]byte
	putF32 := func(v float64) {
		le.PutUint32(w4[:], math.Float32bits(float32(v)))
		buf = append(buf, w4[:]...)
	}
	putI32 := func(v int32) {
		le.PutUint32(w4[:], uint32(v))
		buf = append(buf, w4[:]...)
	}

	if !a.sparse {
		for _, r := range rows {
			for _, v := range a.DenseRow(r) {
				putF32(v)
			}
		}
		return buf
	}
	off := int32(0)
	putI32(0)
	for _, r := range rows {
		off += a.rowptr[r+1] - a.rowptr[r]
		putI32(off)
	}
	for _, r := range rows {
		ix, _ := a.SparseRow(r)
		for _, j := range ix {
			putI32(j)
		}
	}
	for _, r := range rows {
		_, vx := a.SparseRow(r)
		for _, v := range vx {
			putF32(v)
		}
	}
	return buf
}

// EncodeAll serialises every row of the matrix.
func (a *Matrix) EncodeAll() []byte {
	rows := make([]int, a.m)
	for i := range rows {
		rows[i] = i
	}
	return a.EncodeRows(rows)
}

// DecodeMatrix parses a buffer produced by EncodeRows back into a Matrix.
func DecodeMatrix(buf []byte) (*Matrix, error) {
	le := binary.LittleEndian
	if len(buf) < 9 {
		return nil, errors.New("la: decode: short header")
	}
	kind := buf[0]
	m := int(int32(le.Uint32(buf[1:5])))
	n := int(int32(le.Uint32(buf[5:9])))
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("la: decode: bad dims m=%d n=%d", m, n)
	}
	p := buf[9:]
	getF32 := func() float64 {
		v := math.Float32frombits(le.Uint32(p[:4]))
		p = p[4:]
		return float64(v)
	}
	getI32 := func() int32 {
		v := int32(le.Uint32(p[:4]))
		p = p[4:]
		return v
	}
	switch kind {
	case wireDense:
		if len(p) != 4*m*n {
			return nil, fmt.Errorf("la: decode dense: %d bytes for %d values", len(p), m*n)
		}
		data := make([]float64, m*n)
		for i := range data {
			data[i] = getF32()
		}
		return NewDense(m, n, data), nil
	case wireSparse:
		if len(p) < 4*(m+1) {
			return nil, errors.New("la: decode sparse: short rowptr")
		}
		rp := make([]int32, m+1)
		for i := range rp {
			rp[i] = getI32()
		}
		nnz := int(rp[m])
		if nnz < 0 || len(p) != 8*nnz {
			return nil, fmt.Errorf("la: decode sparse: %d bytes for nnz=%d", len(p), nnz)
		}
		ix := make([]int32, nnz)
		for i := range ix {
			ix[i] = getI32()
		}
		vx := make([]float64, nnz)
		for i := range vx {
			vx[i] = getF32()
		}
		return NewSparse(m, n, rp, ix, vx), nil
	default:
		return nil, fmt.Errorf("la: decode: unknown kind %d", kind)
	}
}

// EncodeF64 serialises a []float64 as 8-byte little-endian words with a
// 4-byte length prefix. Used for labels and Lagrange multipliers, which
// travel at full precision.
func EncodeF64(x []float64) []byte {
	buf := make([]byte, 4+8*len(x))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(x)))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeF64 parses a buffer produced by EncodeF64.
func DecodeF64(buf []byte) ([]float64, error) {
	if len(buf) < 4 {
		return nil, errors.New("la: DecodeF64: short header")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if len(buf) != 4+8*n {
		return nil, fmt.Errorf("la: DecodeF64: %d bytes for %d values", len(buf)-4, n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+8*i:]))
	}
	return out, nil
}
