package la

import (
	"math/rand"
	"testing"
)

// Naive reference forms of the unrolled micro-kernels. The unrolled
// versions use 4-way accumulators, so sums may differ from the naive
// left-to-right order by a few ulps — the tests allow a relative 1e-12.

func naiveDot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func naiveSqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return s
}

func naiveAxpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func naiveSpDot(ai []int32, av []float64, bi []int32, bv []float64) float64 {
	var s float64
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		switch {
		case ai[i] == bi[j]:
			s += av[i] * bv[j]
			i++
			j++
		case ai[i] < bi[j]:
			i++
		default:
			j++
		}
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randSparse draws a sorted sparse vector over [0, dim) with roughly the
// given density, occasionally with long contiguous index runs (the aligned
// fast-path case).
func randSparseVec(rng *rand.Rand, dim int, density float64, runs bool) ([]int32, []float64) {
	var idx []int32
	var val []float64
	i := 0
	for i < dim {
		if runs && rng.Intn(6) == 0 {
			runLen := 1 + rng.Intn(12)
			for k := 0; k < runLen && i < dim; k++ {
				idx = append(idx, int32(i))
				val = append(val, rng.NormFloat64())
				i++
			}
			i += rng.Intn(5)
			continue
		}
		if rng.Float64() < density {
			idx = append(idx, int32(i))
			val = append(val, rng.NormFloat64())
		}
		i++
	}
	return idx, val
}

func TestDotMatchesNaiveAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 0; n <= 67; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		if got, want := Dot(a, b), naiveDot(a, b); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d: Dot=%v naive=%v", n, got, want)
		}
		// Unequal lengths: common prefix semantics.
		if n > 3 {
			if got, want := Dot(a[:n-3], b), naiveDot(a[:n-3], b); !almostEq(got, want, 1e-12) {
				t.Fatalf("n=%d prefix: Dot=%v naive=%v", n, got, want)
			}
		}
	}
}

func TestSqDistMatchesNaiveAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 0; n <= 67; n++ {
		a, b := randVec(rng, n), randVec(rng, n+rng.Intn(3))
		if got, want := SqDist(a, b), naiveSqDist(a, b); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d: SqDist=%v naive=%v", n, got, want)
		}
		if got, want := SqDist(b, a), naiveSqDist(b, a); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d swapped: SqDist=%v naive=%v", n, got, want)
		}
	}
}

func TestAxpyMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		y1 := randVec(rng, n)
		y2 := append([]float64(nil), y1...)
		Axpy(0.37, x, y1)
		naiveAxpy(0.37, x, y2)
		for i := range y1 {
			// Elementwise independent: must be bit-identical, not just close.
			if y1[i] != y2[i] {
				t.Fatalf("n=%d: Axpy[%d]=%v naive=%v", n, i, y1[i], y2[i])
			}
		}
	}
}

func TestSpDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 300; trial++ {
		runs := trial%2 == 0
		ai, av := randSparseVec(rng, 120, 0.3, runs)
		bi, bv := randSparseVec(rng, 120, 0.3, runs)
		got := SpDot(ai, av, bi, bv)
		want := naiveSpDot(ai, av, bi, bv)
		if !almostEq(got, want, 1e-12) {
			t.Fatalf("trial %d: SpDot=%v naive=%v", trial, got, want)
		}
	}
	// Fully aligned vectors exercise only the fast path.
	ai, av := randSparseVec(rng, 256, 1, false)
	bv := randVec(rng, len(av))
	got := SpDot(ai, av, ai, bv)
	want := naiveSpDot(ai, av, ai, bv)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("aligned: SpDot=%v naive=%v", got, want)
	}
}
