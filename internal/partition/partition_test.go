package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"casvm/internal/la"
	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
)

// imbalancedBlobs builds clustered data with a globally skewed class
// ratio: cluster c sits at distance sep along axis c%n, and posFrac of all
// samples (concentrated unevenly across clusters) are positive — the
// face-dataset shape that breaks plain FCFS load balance (Table VII).
func imbalancedBlobs(rng *rand.Rand, k, mPer, n int, sep float64) (*la.Matrix, []float64) {
	m := k * mPer
	data := make([]float64, m*n)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		c := i % k
		for j := 0; j < n; j++ {
			center := 0.0
			if j == c%n {
				center = sep * float64(1+c/n)
			}
			data[i*n+j] = center + 0.5*rng.NormFloat64()
		}
		// Cluster 0 is positive-rich, the rest mostly negative.
		threshold := 0.05
		if c == 0 {
			threshold = 0.5
		}
		if rng.Float64() < threshold {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return la.NewDense(m, n, data), y
}

func checkCover(t *testing.T, assign []int, p, m int) {
	t.Helper()
	if len(assign) != m {
		t.Fatalf("assign len %d want %d", len(assign), m)
	}
	for i, c := range assign {
		if c < 0 || c >= p {
			t.Fatalf("assign[%d]=%d out of range", i, c)
		}
	}
}

func TestFCFSBalancesSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := imbalancedBlobs(rng, 4, 100, 5, 6)
	for _, p := range []int{2, 3, 8} {
		res, err := FCFS(x, y, p, Options{RecomputeCenters: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkCover(t, res.Assign, p, x.Rows())
		capacity := ceilDiv(x.Rows(), p)
		for c, s := range res.Sizes {
			if s > capacity {
				t.Errorf("p=%d node %d holds %d > cap %d", p, c, s, capacity)
			}
		}
		// Fig 5 claim: FCFS is (near-)exactly balanced.
		min, max := res.Sizes[0], res.Sizes[0]
		for _, s := range res.Sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > p {
			t.Errorf("p=%d sizes %v not balanced", p, res.Sizes)
		}
	}
}

func TestFCFSRatioBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := imbalancedBlobs(rng, 4, 200, 5, 6)
	p := 8
	plain, err := FCFS(x, y, p, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := FCFS(x, y, p, Options{RatioBalanced: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	spreadOf := func(res *Result) int {
		pos, _ := ClassCounts(y, res.Assign, p)
		min, max := pos[0], pos[0]
		for _, v := range pos {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	// Table VII → VIII: ratio balancing shrinks the per-node positive-count
	// spread to the ⌈mPos/P⌉ rounding slack (at most P−1), versus hundreds
	// for the plain version.
	if rs := spreadOf(ratio); rs > p {
		t.Errorf("ratio-balanced positive spread %d > %d", rs, p)
	}
	if ps, rs := spreadOf(plain), spreadOf(ratio); rs >= ps && ps > 2 {
		t.Errorf("ratio balancing should shrink spread: plain=%d ratio=%d", ps, rs)
	}
	// Total sizes stay balanced too.
	capacity := ceilDiv(x.Rows(), p) + 2
	for _, s := range ratio.Sizes {
		if s > capacity {
			t.Errorf("ratio-balanced node size %d exceeds %d", s, capacity)
		}
	}
}

func TestFCFSRequiresLabelsForRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := la.NewDense(4, 1, []float64{1, 2, 3, 4})
	if _, err := FCFS(x, nil, 2, Options{RatioBalanced: true}, rng); err == nil {
		t.Error("missing labels should fail")
	}
	if _, err := FCFS(x, nil, 0, Options{}, rng); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := FCFS(x, nil, 5, Options{}, rng); err == nil {
		t.Error("p>m should fail")
	}
}

func TestBalancedKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := imbalancedBlobs(rng, 3, 150, 4, 8)
	p := 5
	res, err := BalancedKMeans(x, y, p, Options{RecomputeCenters: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, res.Assign, p, x.Rows())
	capacity := ceilDiv(x.Rows(), p)
	for c, s := range res.Sizes {
		if s > capacity {
			t.Errorf("node %d holds %d > cap %d", c, s, capacity)
		}
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != x.Rows() {
		t.Errorf("sizes sum %d", total)
	}
}

func TestBalancedKMeansRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := imbalancedBlobs(rng, 4, 100, 4, 8)
	p := 4
	res, err := BalancedKMeans(x, y, p, Options{RatioBalanced: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := ClassCounts(y, res.Assign, p)
	mPos, mNeg := 0, 0
	for i := range pos {
		mPos += pos[i]
		mNeg += neg[i]
	}
	capPos, capNeg := ceilDiv(mPos, p), ceilDiv(mNeg, p)
	for c := 0; c < p; c++ {
		if pos[c] > capPos {
			t.Errorf("node %d pos=%d > cap %d", c, pos[c], capPos)
		}
		if neg[c] > capNeg {
			t.Errorf("node %d neg=%d > cap %d", c, neg[c], capNeg)
		}
	}
}

func TestRandomAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := imbalancedBlobs(rng, 2, 101, 3, 5)
	p := 4
	res, err := RandomAverage(x, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, res.Assign, p, x.Rows())
	// Sizes differ by at most 1 (round-robin deal).
	min, max := res.Sizes[0], res.Sizes[0]
	for _, s := range res.Sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("RA sizes %v", res.Sizes)
	}
	// Centers are the member means (eqn 14): verify node 0.
	members := []int{}
	for i, c := range res.Assign {
		if c == 0 {
			members = append(members, i)
		}
	}
	want := x.Mean(members)
	for j := range want {
		if d := want[j] - res.Centers.At(0, j); d > 1e-9 || d < -1e-9 {
			t.Fatalf("center mismatch at %d: %v vs %v", j, want[j], res.Centers.At(0, j))
		}
	}
}

func TestKMeansPlainUnbalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Two tight clusters of very different size: plain K-means must NOT
	// balance (that is the Fig 5/Fig 7 phenomenon CA-SVM fixes).
	m1, m2 := 300, 20
	data := make([]float64, 0, (m1+m2)*2)
	for i := 0; i < m1; i++ {
		data = append(data, 0+0.1*rng.NormFloat64(), 0+0.1*rng.NormFloat64())
	}
	for i := 0; i < m2; i++ {
		data = append(data, 10+0.1*rng.NormFloat64(), 10+0.1*rng.NormFloat64())
	}
	x := la.NewDense(m1+m2, 2, data)
	res, err := KMeansPlain(x, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, small := res.Sizes[0], res.Sizes[1]
	if big < small {
		big, small = small, big
	}
	if big < 5*small {
		t.Errorf("kmeans should be imbalanced on skewed blobs: %v", res.Sizes)
	}
}

// Property: every partitioner covers each sample exactly once and, for the
// balanced ones, respects the capacity ceiling.
func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64, pu, mu uint8) bool {
		p := int(pu)%6 + 2
		m := int(mu)%120 + p + 10
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, m*3)
		y := make([]float64, m)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		for i := range y {
			if rng.Float64() < 0.3 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		x := la.NewDense(m, 3, data)
		capacity := ceilDiv(m, p)
		for name, run := range map[string]func() (*Result, error){
			"fcfs": func() (*Result, error) { return FCFS(x, y, p, Options{}, rng) },
			"bkm":  func() (*Result, error) { return BalancedKMeans(x, y, p, Options{}, rng) },
			"ra":   func() (*Result, error) { return RandomAverage(x, p, rng) },
		} {
			res, err := run()
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if len(res.Assign) != m {
				return false
			}
			total := 0
			for c, s := range res.Sizes {
				if s > capacity {
					t.Logf("%s: node %d size %d > cap %d (m=%d p=%d)", name, c, s, capacity, m, p)
					return false
				}
				total += s
			}
			if total != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMaterialize(t *testing.T) {
	x := la.NewDense(5, 1, []float64{10, 20, 30, 40, 50})
	y := []float64{1, -1, 1, -1, 1}
	assign := []int{0, 1, 0, 1, 2}
	parts := Materialize(x, y, assign, 3)
	if parts[0].X.Rows() != 2 || parts[0].X.At(1, 0) != 30 || parts[0].Y[1] != 1 {
		t.Errorf("part0 wrong: %+v", parts[0])
	}
	if parts[2].X.Rows() != 1 || parts[2].Index[0] != 4 {
		t.Errorf("part2 wrong: %+v", parts[2])
	}
	if parts[1].Y[0] != -1 || parts[1].Y[1] != -1 {
		t.Errorf("part1 labels: %v", parts[1].Y)
	}
}

func TestParallelFCFS(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := imbalancedBlobs(rng, 4, 64, 4, 6)
	const p = 4
	m := x.Rows()
	per := m / p
	w := mpi.NewWorld(p, perfmodel.Hopper(), 3)
	sizes := make([][]int, p)
	err := w.Run(func(c *mpi.Comm) error {
		rows := make([]int, 0, per)
		for i := c.Rank() * per; i < (c.Rank()+1)*per; i++ {
			rows = append(rows, i)
		}
		localY := make([]float64, len(rows))
		for k, i := range rows {
			localY[k] = y[i]
		}
		res, err := ParallelFCFS(c, x.Subset(rows), localY, Options{})
		if err != nil {
			return err
		}
		sizes[c.Rank()] = res.Sizes
		checkCover(t, res.Assign, p, per)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks agree on the global sizes, which sum to m and are balanced
	// to within p (each rank contributes ±1 slack per center).
	for r := 1; r < p; r++ {
		for j := 0; j < p; j++ {
			if sizes[r][j] != sizes[0][j] {
				t.Fatalf("rank %d sizes %v != rank0 %v", r, sizes[r], sizes[0])
			}
		}
	}
	total := 0
	min, max := sizes[0][0], sizes[0][0]
	for _, s := range sizes[0] {
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if total != m {
		t.Errorf("global sizes sum %d want %d", total, m)
	}
	if max-min > p*p {
		t.Errorf("parallel FCFS sizes %v badly imbalanced", sizes[0])
	}
	if w.Stats().TotalBytes() == 0 {
		t.Error("parallel FCFS must communicate")
	}
}

func TestParallelFCFSRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := imbalancedBlobs(rng, 4, 64, 4, 6)
	const p = 4
	per := x.Rows() / p
	w := mpi.NewWorld(p, perfmodel.Hopper(), 3)
	err := w.Run(func(c *mpi.Comm) error {
		rows := make([]int, 0, per)
		for i := c.Rank() * per; i < (c.Rank()+1)*per; i++ {
			rows = append(rows, i)
		}
		localY := make([]float64, len(rows))
		for k, i := range rows {
			localY[k] = y[i]
		}
		res, err := ParallelFCFS(c, x.Subset(rows), localY, Options{RatioBalanced: true})
		if err != nil {
			return err
		}
		// Local per-class spread bounded by the local capacity.
		pos, _ := ClassCounts(localY, res.Assign, p)
		posLocal := 0
		for _, v := range localY {
			if v > 0 {
				posLocal++
			}
		}
		capPos := ceilDiv(max(posLocal, 1), p)
		for j, v := range pos {
			if v > capPos {
				t.Errorf("rank %d center %d pos=%d > cap %d", c.Rank(), j, v, capPos)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClassCounts(t *testing.T) {
	y := []float64{1, -1, 1, 1, -1}
	assign := []int{0, 0, 1, 1, 1}
	pos, neg := ClassCounts(y, assign, 2)
	if pos[0] != 1 || neg[0] != 1 || pos[1] != 2 || neg[1] != 1 {
		t.Errorf("pos=%v neg=%v", pos, neg)
	}
}
