// Package partition implements the data-partitioning algorithms of the
// paper's §IV: First-Come-First-Served partitioning (Alg 3) and its
// distributed form (Alg 4), Balanced K-means (Alg 5), random averaging
// (RA-CA), and the positive/negative ratio-balanced variants that turn
// balanced data into balanced load (Tables VI–IX).
//
// Every partitioner produces the same artefacts: an assignment of samples
// to P clusters (one per machine node), the cluster centers used to route
// prediction queries, and the cluster sizes.
package partition

import (
	"fmt"
	"math"
	"math/rand"

	"casvm/internal/kmeans"
	"casvm/internal/la"
)

// Result is a completed partitioning.
type Result struct {
	Assign  []int      // Assign[i] = node of sample i
	Centers *la.Matrix // P×n dense centers (CT in the paper)
	Sizes   []int      // samples per node
	Flops   float64    // computation cost, for virtual-time charging
}

// Options configures the class-aware behaviour shared by FCFS and BKM.
type Options struct {
	// RatioBalanced applies the §IV-B1 refinement: balance the number of
	// positive and negative samples per node separately, so the per-node
	// pos/neg ratio matches the global one (Table VIII) and the SMO load
	// balances (Table IX). Requires labels.
	RatioBalanced bool
	// RecomputeCenters averages each cluster's members into its center
	// after assignment (Alg 3 lines 15–21; "optional" per the paper).
	// Centers are always recomputed when routing requires them; setting
	// this false keeps the randomly seeded centers instead.
	RecomputeCenters bool
}

// ceilDiv returns ⌈a/b⌉.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FCFS implements Algorithm 3: greedy nearest-center assignment where a
// node stops accepting samples once it holds ⌈m/P⌉ (per class when
// ratio-balancing). y may be nil when opts.RatioBalanced is false.
func FCFS(x *la.Matrix, y []float64, p int, opts Options, rng *rand.Rand) (*Result, error) {
	m := x.Rows()
	if p < 1 || p > m {
		return nil, fmt.Errorf("partition: FCFS with p=%d, m=%d", p, m)
	}
	if opts.RatioBalanced && len(y) != m {
		return nil, fmt.Errorf("partition: ratio balancing needs %d labels, got %d", m, len(y))
	}
	centers := kmeans.Seed(x, p, rng)
	res := &Result{
		Assign:  make([]int, m),
		Centers: centers,
		Sizes:   make([]int, p),
	}
	if opts.RatioBalanced {
		mPos := 0
		for _, v := range y {
			if v > 0 {
				mPos++
			}
		}
		capPos := ceilDiv(mPos, p)
		capNeg := ceilDiv(m-mPos, p)
		posSizes := make([]int, p)
		negSizes := make([]int, p)
		for i := 0; i < m; i++ {
			var sizes []int
			var capacity int
			if y[i] > 0 {
				sizes, capacity = posSizes, capPos
			} else {
				sizes, capacity = negSizes, capNeg
			}
			j := nearestUnderloaded(x, i, centers, sizes, capacity)
			sizes[j]++
			res.Sizes[j]++
			res.Assign[i] = j
		}
		res.Flops += float64(2 * m * p * x.Features())
	} else {
		capacity := ceilDiv(m, p)
		for i := 0; i < m; i++ {
			j := nearestUnderloaded(x, i, centers, res.Sizes, capacity)
			res.Sizes[j]++
			res.Assign[i] = j
		}
		res.Flops += float64(2 * m * p * x.Features())
	}
	if opts.RecomputeCenters {
		res.Centers = averageCenters(x, res.Assign, p, centers)
		res.Flops += float64(x.NNZ())
	}
	return res, nil
}

// nearestUnderloaded returns the closest center whose size is still below
// capacity (Alg 3 lines 8–12). At least one center always qualifies because
// capacity is ⌈quota⌉.
func nearestUnderloaded(x *la.Matrix, i int, centers *la.Matrix, sizes []int, capacity int) int {
	centers.EnsureNorms()
	best, bi := math.Inf(1), -1
	for j := 0; j < centers.Rows(); j++ {
		if sizes[j] >= capacity {
			continue
		}
		d := x.SqNormRow(i) + centers.SqNormRow(j) - 2*x.DotVec(i, centers.DenseRow(j))
		if d < best {
			best, bi = d, j
		}
	}
	if bi < 0 {
		panic("partition: no underloaded center (capacity accounting bug)")
	}
	return bi
}

// averageCenters recomputes each node's center as the mean of its members;
// empty nodes keep their seed center.
func averageCenters(x *la.Matrix, assign []int, p int, prev *la.Matrix) *la.Matrix {
	n := x.Features()
	sums := make([]float64, p*n)
	counts := make([]float64, p)
	for i := 0; i < x.Rows(); i++ {
		c := assign[i]
		dst := sums[c*n : (c+1)*n]
		if x.Sparse() {
			ix, vx := x.SparseRow(i)
			for k, j := range ix {
				dst[j] += vx[k]
			}
		} else {
			for j, v := range x.DenseRow(i) {
				dst[j] += v
			}
		}
		counts[c]++
	}
	data := make([]float64, p*n)
	for c := 0; c < p; c++ {
		dst := data[c*n : (c+1)*n]
		if counts[c] == 0 {
			copy(dst, prev.DenseRow(c))
			continue
		}
		inv := 1 / counts[c]
		for j := range dst {
			dst[j] = sums[c*n+j] * inv
		}
	}
	return la.NewDense(p, n, data)
}

// BalancedKMeans implements Algorithm 5: run K-means, then repeatedly move
// the farthest member of each overloaded cluster to its nearest underloaded
// cluster until every cluster holds at most ⌈m/P⌉ samples (per class when
// ratio-balancing).
func BalancedKMeans(x *la.Matrix, y []float64, p int, opts Options, rng *rand.Rand) (*Result, error) {
	m := x.Rows()
	if p < 1 || p > m {
		return nil, fmt.Errorf("partition: BKM with p=%d, m=%d", p, m)
	}
	if opts.RatioBalanced && len(y) != m {
		return nil, fmt.Errorf("partition: ratio balancing needs %d labels, got %d", m, len(y))
	}
	km := kmeans.Run(x, kmeans.Seed(x, p, rng), 0, 0)
	res := &Result{
		Assign:  append([]int(nil), km.Assign...),
		Centers: km.Centers,
		Sizes:   append([]int(nil), km.Sizes...),
		Flops:   km.Flops,
	}
	// Pairwise distance matrix dist[i][j] between samples and centers
	// (Alg 5 lines 6–8).
	dist := make([]float64, m*p)
	res.Centers.EnsureNorms()
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			d := x.SqNormRow(i) + res.Centers.SqNormRow(j) - 2*x.DotVec(i, res.Centers.DenseRow(j))
			if d < 0 {
				d = 0
			}
			dist[i*p+j] = d
		}
	}
	res.Flops += float64(2 * m * p * x.Features())

	if opts.RatioBalanced {
		mPos := 0
		for _, v := range y {
			if v > 0 {
				mPos++
			}
		}
		rebalance(res, dist, p, func(i int) bool { return y[i] > 0 }, ceilDiv(mPos, p))
		rebalance(res, dist, p, func(i int) bool { return y[i] <= 0 }, ceilDiv(m-mPos, p))
	} else {
		rebalance(res, dist, p, func(int) bool { return true }, ceilDiv(m, p))
	}
	res.Sizes = make([]int, p)
	for _, c := range res.Assign {
		res.Sizes[c]++
	}
	if opts.RecomputeCenters {
		res.Centers = averageCenters(x, res.Assign, p, res.Centers)
		res.Flops += float64(x.NNZ())
	}
	return res, nil
}

// rebalance moves members of the sub-population selected by want from
// overloaded to underloaded clusters (Alg 5 lines 9–27), where load counts
// only that sub-population.
func rebalance(res *Result, dist []float64, p int, want func(i int) bool, capacity int) {
	m := len(res.Assign)
	sizes := make([]int, p)
	for i, c := range res.Assign {
		if want(i) {
			sizes[c]++
		}
	}
	for j := 0; j < p; j++ {
		for sizes[j] > capacity {
			// Farthest selected member of cluster j (lines 14–17).
			maxDist, maxInd := -1.0, -1
			for i := 0; i < m; i++ {
				if res.Assign[i] == j && want(i) && dist[i*p+j] > maxDist {
					maxDist, maxInd = dist[i*p+j], i
				}
			}
			// Closest underloaded cluster for it (lines 18–24).
			minDist, minInd := math.Inf(1), -1
			for k := 0; k < p; k++ {
				if k != j && sizes[k] < capacity && dist[maxInd*p+k] < minDist {
					minDist, minInd = dist[maxInd*p+k], k
				}
			}
			if minInd < 0 {
				// Every other cluster full for this class: capacity is a
				// ceiling, so this can only happen transiently; stop.
				return
			}
			res.Assign[maxInd] = minInd
			sizes[j]--
			sizes[minInd]++
			res.Flops += float64(m + p)
		}
	}
}

// RandomAverage implements the RA-CA partition (§IV-B3): deal the samples
// randomly and evenly onto P nodes, then let each node's center be the mean
// of its samples (eqn 14). Requires no distance computation and, in casvm2
// placement, no communication at all.
func RandomAverage(x *la.Matrix, p int, rng *rand.Rand) (*Result, error) {
	m := x.Rows()
	if p < 1 || p > m {
		return nil, fmt.Errorf("partition: RA with p=%d, m=%d", p, m)
	}
	res := &Result{
		Assign: make([]int, m),
		Sizes:  make([]int, p),
	}
	perm := rng.Perm(m)
	for pos, i := range perm {
		c := pos % p
		res.Assign[i] = c
		res.Sizes[c]++
	}
	res.Centers = averageCenters(x, res.Assign, p, la.Zeros(p, x.Features()))
	res.Flops += float64(x.NNZ())
	return res, nil
}

// KMeansPlain wraps plain (unbalanced) K-means as a partitioner, as used by
// DC-SVM, DC-Filter and CP-SVM. Empty clusters are permitted.
func KMeansPlain(x *la.Matrix, p int, rng *rand.Rand) (*Result, error) {
	m := x.Rows()
	if p < 1 || p > m {
		return nil, fmt.Errorf("partition: kmeans with p=%d, m=%d", p, m)
	}
	km := kmeans.Run(x, kmeans.Seed(x, p, rng), 0, 0)
	return &Result{
		Assign:  km.Assign,
		Centers: km.Centers,
		Sizes:   km.Sizes,
		Flops:   km.Flops,
	}, nil
}

// Part is one node's share of a partitioned dataset.
type Part struct {
	X     *la.Matrix
	Y     []float64
	Index []int // original sample indices, in part order
}

// Materialize splits (x, y) into P parts according to assign.
func Materialize(x *la.Matrix, y []float64, assign []int, p int) []Part {
	idx := make([][]int, p)
	for i, c := range assign {
		idx[c] = append(idx[c], i)
	}
	parts := make([]Part, p)
	for c := 0; c < p; c++ {
		parts[c].Index = idx[c]
		parts[c].X = x.Subset(idx[c])
		parts[c].Y = make([]float64, len(idx[c]))
		for k, i := range idx[c] {
			parts[c].Y[k] = y[i]
		}
	}
	return parts
}

// ClassCounts returns (#positive, #negative) per node.
func ClassCounts(y []float64, assign []int, p int) (pos, neg []int) {
	pos = make([]int, p)
	neg = make([]int, p)
	for i, c := range assign {
		if y[i] > 0 {
			pos[c]++
		} else {
			neg[c]++
		}
	}
	return
}
