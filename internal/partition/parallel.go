package partition

import (
	"fmt"

	"casvm/internal/kmeans"
	"casvm/internal/la"
	"casvm/internal/mpi"
)

// ParallelFCFS implements Algorithm 4: the divide-and-conquer parallel form
// of FCFS partitioning. Each rank holds a local block of the data; rank 0
// seeds the P centers and broadcasts them; each rank then runs FCFS on its
// own block with per-center capacity ⌈m_local/P⌉ (per class when
// ratio-balancing), converting the m → P×m/P problem into P independent
// m/P → P×m/P² problems; finally sizes and centers are combined with
// allreduce sums (Alg 4 lines 23–27).
//
// The returned Result is rank-local in Assign (the node chosen for each
// local sample) and global in Centers and Sizes. Computation and
// communication are charged to the rank's virtual clock.
func ParallelFCFS(c *mpi.Comm, local *la.Matrix, y []float64, opts Options) (*Result, error) {
	p := c.Size()
	pm := local.Rows()
	if opts.RatioBalanced && len(y) != pm {
		return nil, fmt.Errorf("partition: ratio balancing needs %d labels, got %d", pm, len(y))
	}
	n := local.Features()

	// Lines 1–5: rank 0 seeds centers from its block and broadcasts.
	var centerData []float64
	if c.Rank() == 0 {
		if pm < 1 {
			return nil, fmt.Errorf("partition: rank 0 has no samples to seed from")
		}
		k := p
		if k > pm {
			k = pm
		}
		seed := kmeans.Seed(local, k, c.RNG())
		centerData = make([]float64, 0, p*n)
		for i := 0; i < k; i++ {
			centerData = append(centerData, seed.DenseRow(i)...)
		}
		for len(centerData) < p*n {
			centerData = append(centerData, centerData[:n]...)
		}
	}
	centerData = c.BcastF64(0, centerData)
	centers := la.NewDense(p, n, centerData)

	res := &Result{
		Assign:  make([]int, pm),
		Centers: centers,
		Sizes:   make([]int, p),
	}

	// Lines 8–17: local FCFS against the shared centers.
	if opts.RatioBalanced {
		posLocal := 0
		for _, v := range y {
			if v > 0 {
				posLocal++
			}
		}
		capPos := ceilDiv(max(posLocal, 1), p)
		capNeg := ceilDiv(max(pm-posLocal, 1), p)
		posSizes := make([]int, p)
		negSizes := make([]int, p)
		for i := 0; i < pm; i++ {
			var sizes []int
			var capacity int
			if y[i] > 0 {
				sizes, capacity = posSizes, capPos
			} else {
				sizes, capacity = negSizes, capNeg
			}
			j := nearestUnderloaded(local, i, centers, sizes, capacity)
			sizes[j]++
			res.Sizes[j]++
			res.Assign[i] = j
		}
	} else {
		capacity := ceilDiv(max(pm, 1), p)
		for i := 0; i < pm; i++ {
			j := nearestUnderloaded(local, i, centers, res.Sizes, capacity)
			res.Sizes[j]++
			res.Assign[i] = j
		}
	}
	flops := float64(2 * pm * p * n)
	res.Flops += flops
	c.Charge(flops)

	// Lines 18–27: recompute global sizes and centers with allreduce.
	res.Sizes = c.AllreduceSumInt(res.Sizes)
	sums := make([]float64, p*n)
	for i := 0; i < pm; i++ {
		dst := sums[res.Assign[i]*n : (res.Assign[i]+1)*n]
		if local.Sparse() {
			ix, vx := local.SparseRow(i)
			for k, j := range ix {
				dst[j] += vx[k]
			}
		} else {
			for j, v := range local.DenseRow(i) {
				dst[j] += v
			}
		}
	}
	c.Charge(float64(local.NNZ()))
	sums = c.AllreduceSum(sums)
	data := make([]float64, p*n)
	for j := 0; j < p; j++ {
		dst := data[j*n : (j+1)*n]
		if res.Sizes[j] == 0 {
			copy(dst, centers.DenseRow(j))
			continue
		}
		inv := 1 / float64(res.Sizes[j])
		for t := range dst {
			dst[t] = sums[j*n+t] * inv
		}
	}
	res.Centers = la.NewDense(p, n, data)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParallelBKM is the distributed balanced-K-means partitioner of BKM-CA:
// distributed K-means (shared global centers) followed by the same
// divide-and-conquer trick as Alg 4 — each rank rebalances its own block
// against per-rank capacities ⌈m_local/P⌉ (per class when ratio-balancing),
// which bounds every global cluster by ~⌈m/P⌉ without further
// communication. Returns the rank-local result (global Centers) and the
// K-means sweep count.
func ParallelBKM(c *mpi.Comm, local *la.Matrix, y []float64, opts Options, kmMaxIter int) (*Result, int, error) {
	p := c.Size()
	pm := local.Rows()
	if opts.RatioBalanced && len(y) != pm {
		return nil, 0, fmt.Errorf("partition: ratio balancing needs %d labels, got %d", pm, len(y))
	}
	km := kmeans.RunDistributed(c, local, p, 0, kmMaxIter)
	res := &Result{
		Assign:  append([]int(nil), km.Assign...),
		Centers: km.Centers,
		Flops:   km.Flops,
	}
	// Local sample-to-center distance matrix (Alg 5 lines 6–8).
	dist := make([]float64, pm*p)
	res.Centers.EnsureNorms()
	for i := 0; i < pm; i++ {
		for j := 0; j < p; j++ {
			d := local.SqNormRow(i) + res.Centers.SqNormRow(j) - 2*local.DotVec(i, res.Centers.DenseRow(j))
			if d < 0 {
				d = 0
			}
			dist[i*p+j] = d
		}
	}
	flops := float64(2 * pm * p * local.Features())
	res.Flops += flops
	c.Charge(flops)

	if opts.RatioBalanced {
		posLocal := 0
		for _, v := range y {
			if v > 0 {
				posLocal++
			}
		}
		rebalance(res, dist, p, func(i int) bool { return y[i] > 0 }, ceilDiv(max(posLocal, 1), p))
		rebalance(res, dist, p, func(i int) bool { return y[i] <= 0 }, ceilDiv(max(pm-posLocal, 1), p))
	} else {
		rebalance(res, dist, p, func(int) bool { return true }, ceilDiv(max(pm, 1), p))
	}
	res.Sizes = c.AllreduceSumInt(sizesOf(res.Assign, p))
	return res, km.Iters, nil
}

func sizesOf(assign []int, p int) []int {
	sizes := make([]int, p)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}
