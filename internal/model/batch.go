package model

import (
	"math"
	"runtime"

	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/pool"
)

// Batched prediction through the kernel tile engine. Classifying a query
// block against the support vectors is a K(Q_blk, SV_blk) tile (one GEMM
// block plus the kernel finish) followed by a mat-vec with the αy
// coefficients — so the SV matrix is streamed once per query block instead
// of once per query, and the inner products run through the register-
// blocked microkernels (la.MulTile).
//
// Every result is bit-identical to the per-row path: each kernel element
// matches Params.Eval exactly (kernel.CrossTile's contract), coefficients
// multiply in the same (α·y)·K order as Decision, and each query's sum
// accumulates over support vectors in ascending index order across blocks.
// Queries are independent, so the batch also parallelises across query
// blocks on the shared worker pool — every query is still summed serially
// by exactly one worker, so the result is the same at every thread count.

const (
	// svBlock rows of the SV matrix per tile: bounds tile storage at
	// svBlock·qBlock floats while keeping the panel deep enough to amortise
	// the query block's residency.
	svBlock = 256
	// qBlock query rows per tile: the panel of query rows kept hot across
	// one full sweep of the support vectors.
	qBlock = 64
)

// DecisionAll evaluates the decision value Σᵢ αᵢyᵢK(q_row, svᵢ) − B for
// every row of q, bit-identical to calling Decision per row.
func (m *Model) DecisionAll(q *la.Matrix) []float64 {
	nq := q.Rows()
	out := make([]float64, nq)
	nsv := m.NSV()
	if nsv == 0 {
		for i := range out {
			out[i] = -m.B
		}
		return out
	}
	coef := make([]float64, nsv)
	for i := range coef {
		// Decision's term is (Alpha[i]*SVY[i])*K — left-associative, so the
		// coefficient product folds out of the loop without changing a bit.
		coef[i] = m.Alpha[i] * m.SVY[i]
	}
	// Norm caches fill before the fan-out: CrossTile would otherwise
	// lazily EnsureNorms from concurrent workers.
	if m.Kernel.Kind == kernel.Gaussian {
		m.SVX.EnsureNorms()
		q.EnsureNorms()
	}
	pool.Shared().ParallelFor(runtime.GOMAXPROCS(0), nq, qBlock, func(lo, hi int) {
		rows := make([]int, 0, svBlock)
		dst := make([]float64, svBlock*qBlock)
		for qlo := lo; qlo < hi; qlo += qBlock {
			qhi := qlo + qBlock
			if qhi > hi {
				qhi = hi
			}
			w := qhi - qlo
			for slo := 0; slo < nsv; slo += svBlock {
				shi := slo + svBlock
				if shi > nsv {
					shi = nsv
				}
				rows = rows[:0]
				for i := slo; i < shi; i++ {
					rows = append(rows, i)
				}
				// The SV matrix is the a side and the query the b side,
				// exactly like Decision's Eval(SVX, i, q, qi).
				m.Kernel.CrossTile(m.SVX, rows, q, qlo, qhi, dst[:len(rows)*w], w)
				for r, i := 0, slo; i < shi; r, i = r+1, i+1 {
					c := coef[i]
					krow := dst[r*w : r*w+w]
					for k, kv := range krow {
						out[qlo+k] += c * kv
					}
				}
			}
		}
		for i := lo; i < hi; i++ {
			out[i] -= m.B
		}
	})
	return out
}

// PredictAll labels every row of q from one batched DecisionAll pass,
// bit-identical to calling Predict per row.
func (m *Model) PredictAll(q *la.Matrix) []float64 {
	if m.NSV() == 0 {
		out := make([]float64, q.Rows())
		for i := range out {
			out[i] = m.Fallback
		}
		return out
	}
	out := m.DecisionAll(q)
	for i, d := range out {
		switch {
		case d > 0:
			out[i] = 1
		case d < 0:
			out[i] = -1
		default:
			out[i] = m.Fallback
		}
	}
	return out
}

// RouteAll returns the nearest-center index for every row of q. The
// query-center inner products come from one la.MulTile call per query
// block, so the centroid matrix is streamed once per block instead of once
// per query; the distance expression and strict-< argmin match Route
// exactly, so the assignment is bit-identical.
func (s *Set) RouteAll(q *la.Matrix) []int {
	nq := q.Rows()
	out := make([]int, nq)
	if nq == 0 {
		return out
	}
	s.Centers.EnsureNorms()
	np := s.Centers.Rows()
	dots := make([]float64, qBlock*np)
	rows := make([]int, 0, qBlock)
	for qlo := 0; qlo < nq; qlo += qBlock {
		qhi := qlo + qBlock
		if qhi > nq {
			qhi = nq
		}
		rows = rows[:0]
		for i := qlo; i < qhi; i++ {
			rows = append(rows, i)
		}
		la.MulTile(q, rows, s.Centers, 0, np, dots, np)
		for r, qi := 0, qlo; qi < qhi; r, qi = r+1, qi+1 {
			best, bi := math.Inf(1), 0
			for c := 0; c < np; c++ {
				d := q.SqNormRow(qi) + s.Centers.SqNormRow(c) - 2*dots[r*np+c]
				if d < best {
					best, bi = d, c
				}
			}
			out[qi] = bi
		}
	}
	return out
}

// PredictAll labels every row of q: one RouteAll pass assigns each query
// its model, then each model classifies its whole group through the tiled
// Model.PredictAll. Bit-identical to per-row Predict (Subset copies rows
// verbatim, so the kernel sees the same operands).
func (s *Set) PredictAll(q *la.Matrix) []float64 {
	routes := s.RouteAll(q)
	out := make([]float64, q.Rows())
	byModel := make([][]int, s.P())
	for qi, r := range routes {
		byModel[r] = append(byModel[r], qi)
	}
	for r, group := range byModel {
		if len(group) == 0 {
			continue
		}
		preds := s.Models[r].PredictAll(q.Subset(group))
		for k, qi := range group {
			out[qi] = preds[k]
		}
	}
	return out
}

// DecisionAll evaluates the routed decision value for every row of q,
// bit-identical to per-row Set.Decision (including the tiny fallback-signed
// value an SV-less model yields).
func (s *Set) DecisionAll(q *la.Matrix) []float64 {
	routes := s.RouteAll(q)
	out := make([]float64, q.Rows())
	byModel := make([][]int, s.P())
	for qi, r := range routes {
		byModel[r] = append(byModel[r], qi)
	}
	for r, group := range byModel {
		if len(group) == 0 {
			continue
		}
		m := s.Models[r]
		if m.NSV() == 0 {
			for _, qi := range group {
				out[qi] = m.Fallback * 1e-9
			}
			continue
		}
		decs := m.DecisionAll(q.Subset(group))
		for k, qi := range group {
			out[qi] = decs[k]
		}
	}
	return out
}
