// Package model holds trained SVM models: the support-vector form of a
// single binary classifier (eqn 3 plus bias), and the model Set produced by
// the partitioned methods (CP-SVM, CA-SVM) where each node contributes one
// model file and prediction routes each query to the model of its nearest
// data center (Fig 3).
package model

import (
	"fmt"
	"math"
	"sort"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// Model is one trained binary SVM in support-vector form.
type Model struct {
	Kernel kernel.Params
	SVX    *la.Matrix // support vectors, one per row
	SVY    []float64  // their ±1 labels
	Alpha  []float64  // their (positive) Lagrange multipliers
	B      float64    // bias; decision is Σ αyK(x,sv) − B

	// Fallback is the label predicted when the model has no support
	// vectors (a single-class training partition) or a decision of
	// exactly zero. It is the majority training label.
	Fallback float64
}

// FromSolution extracts the support vectors (α > 0) from a full training
// solution over (x, y).
func FromSolution(x *la.Matrix, y, alpha []float64, b float64, k kernel.Params) *Model {
	idx := make([]int, 0)
	for i, a := range alpha {
		if a > 0 {
			idx = append(idx, i)
		}
	}
	m := &Model{
		Kernel: k,
		SVX:    x.Subset(idx),
		SVY:    make([]float64, len(idx)),
		Alpha:  make([]float64, len(idx)),
		B:      b,
	}
	for t, i := range idx {
		m.SVY[t] = y[i]
		m.Alpha[t] = alpha[i]
	}
	pos := 0
	for _, v := range y {
		if v > 0 {
			pos++
		}
	}
	if 2*pos >= len(y) {
		m.Fallback = 1
	} else {
		m.Fallback = -1
	}
	return m
}

// NSV returns the number of support vectors.
func (m *Model) NSV() int { return len(m.Alpha) }

// Decision evaluates Σᵢ αᵢyᵢK(q_row, svᵢ) − B for row qi of q.
func (m *Model) Decision(q *la.Matrix, qi int) float64 {
	var s float64
	for i := 0; i < m.NSV(); i++ {
		s += m.Alpha[i] * m.SVY[i] * m.Kernel.Eval(m.SVX, i, q, qi)
	}
	return s - m.B
}

// Predict returns the ±1 label for row qi of q.
func (m *Model) Predict(q *la.Matrix, qi int) float64 {
	if m.NSV() == 0 {
		return m.Fallback
	}
	d := m.Decision(q, qi)
	if d > 0 {
		return 1
	}
	if d < 0 {
		return -1
	}
	return m.Fallback
}

// Accuracy returns the fraction of rows of q whose prediction matches y.
func (m *Model) Accuracy(q *la.Matrix, y []float64) float64 {
	if q.Rows() == 0 {
		return 0
	}
	correct := 0
	for i, p := range m.PredictAll(q) {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(q.Rows())
}

// Set is the model collection of a partitioned method: Models[j] was
// trained on partition j whose center is row j of Centers. A query is
// classified by the model of its nearest center (§IV-A).
type Set struct {
	Models  []*Model
	Centers *la.Matrix

	// Meta carries free-form provenance annotations (compression budget,
	// measured accuracy delta, source hash). It serialises as sorted
	// `meta <key> <value>` lines; an empty map writes nothing, so sets
	// without metadata keep their historical byte-exact encoding (and
	// therefore their ModelHash).
	Meta map[string]string
}

// SetMeta records one metadata annotation, allocating the map on first use.
func (s *Set) SetMeta(key, value string) {
	if s.Meta == nil {
		s.Meta = map[string]string{}
	}
	s.Meta[key] = value
}

// P returns the number of partitions/models.
func (s *Set) P() int { return len(s.Models) }

// Route returns the index of the center nearest to row qi of q.
func (s *Set) Route(q *la.Matrix, qi int) int {
	s.Centers.EnsureNorms()
	best, bi := math.Inf(1), 0
	for c := 0; c < s.Centers.Rows(); c++ {
		d := q.SqNormRow(qi) + s.Centers.SqNormRow(c) - 2*q.DotVec(qi, s.Centers.DenseRow(c))
		if d < best {
			best, bi = d, c
		}
	}
	return bi
}

// Predict routes row qi to its nearest center's model and classifies.
func (s *Set) Predict(q *la.Matrix, qi int) float64 {
	return s.Models[s.Route(q, qi)].Predict(q, qi)
}

// Decision routes row qi to its nearest center's model and returns the
// real-valued decision Σ αyK − B. A model with no support vectors yields a
// tiny value with the sign of its fallback label, so one-vs-rest argmax
// still orders sensibly.
func (s *Set) Decision(q *la.Matrix, qi int) float64 {
	m := s.Models[s.Route(q, qi)]
	if m.NSV() == 0 {
		return m.Fallback * 1e-9
	}
	return m.Decision(q, qi)
}

// Accuracy returns the routed-prediction accuracy on (q, y).
func (s *Set) Accuracy(q *la.Matrix, y []float64) float64 {
	if q.Rows() == 0 {
		return 0
	}
	correct := 0
	for i, p := range s.PredictAll(q) {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(q.Rows())
}

// RouteK returns the indices of the k centers nearest to row qi of q, in
// increasing distance order. k is clamped to [1, P].
func (s *Set) RouteK(q *la.Matrix, qi, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > s.P() {
		k = s.P()
	}
	s.Centers.EnsureNorms()
	dists := make([]float64, s.Centers.Rows())
	order := make([]int, s.Centers.Rows())
	for c := range dists {
		dists[c] = q.SqNormRow(qi) + s.Centers.SqNormRow(c) - 2*q.DotVec(qi, s.Centers.DenseRow(c))
		order[c] = c
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	return order[:k]
}

// PredictVote classifies row qi by majority vote of the k models with the
// nearest centers, ties broken toward the nearest model. Degraded-mode
// prediction uses it so a query whose own shard was lost is still judged
// by the surviving neighbourhood rather than a single borrowed model.
func (s *Set) PredictVote(q *la.Matrix, qi, k int) float64 {
	routes := s.RouteK(q, qi, k)
	vote := 0.0
	for _, r := range routes {
		vote += s.Models[r].Predict(q, qi)
	}
	if vote > 0 {
		return 1
	}
	if vote < 0 {
		return -1
	}
	return s.Models[routes[0]].Predict(q, qi)
}

// AccuracyVote is Accuracy with k-nearest majority voting.
func (s *Set) AccuracyVote(q *la.Matrix, y []float64, k int) float64 {
	if q.Rows() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < q.Rows(); i++ {
		if s.PredictVote(q, i, k) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(q.Rows())
}

// NSV returns the total support vectors across the set.
func (s *Set) NSV() int {
	t := 0
	for _, m := range s.Models {
		t += m.NSV()
	}
	return t
}

// Confusion counts binary prediction outcomes on (q, y).
type Confusion struct {
	TP, FP, TN, FN int
}

// Recall returns TP/(TP+FN), the positive-class detection rate, or 0.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision returns TP/(TP+FP), or 0.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// F1 returns the harmonic mean of precision and recall, or 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Confusion evaluates routed predictions against labels.
func (s *Set) Confusion(q *la.Matrix, y []float64) Confusion {
	var c Confusion
	for i, pred := range s.PredictAll(q) {
		switch {
		case pred > 0 && y[i] > 0:
			c.TP++
		case pred > 0 && y[i] < 0:
			c.FP++
		case pred < 0 && y[i] < 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Single wraps one model as a degenerate Set (used so every training
// method returns the same artefact type).
func Single(m *Model, center []float64) *Set {
	var centers *la.Matrix
	if center != nil {
		centers = la.NewDense(1, len(center), append([]float64(nil), center...))
	} else {
		centers = la.Zeros(1, m.SVX.Features())
	}
	return &Set{Models: []*Model{m}, Centers: centers}
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if m.SVX == nil {
		return fmt.Errorf("model: nil SVX")
	}
	if m.SVX.Rows() != len(m.SVY) || len(m.SVY) != len(m.Alpha) {
		return fmt.Errorf("model: %d SVs, %d labels, %d alphas", m.SVX.Rows(), len(m.SVY), len(m.Alpha))
	}
	for i, a := range m.Alpha {
		if a <= 0 || math.IsNaN(a) {
			return fmt.Errorf("model: alpha[%d]=%v", i, a)
		}
	}
	return m.Kernel.Validate()
}
