package model

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// Text model-file format, in the spirit of LIBSVM model files:
//
//	casvm-model-set v1
//	models <P>
//	features <n>
//	kernel <kind> gamma <g> coef <r> scale <a> degree <d>
//	meta <key> <value>                         (optional, sorted by key)
//	centers
//	<P lines of n space-separated floats>
//	model <j> nsv <k> bias <b> fallback <±1>
//	<k lines: "<alpha> <y> <idx>:<val> ...">   (1-based sparse indices)
//
// Both dense and sparse SV storage serialise to sparse rows; loading
// produces sparse SV matrices.

// SaveSet writes the model set in the text format above.
func SaveSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	n := s.Centers.Features()
	fmt.Fprintf(bw, "casvm-model-set v1\n")
	fmt.Fprintf(bw, "models %d\n", s.P())
	fmt.Fprintf(bw, "features %d\n", n)
	k := s.Models[0].Kernel
	fmt.Fprintf(bw, "kernel %s gamma %g coef %g scale %g degree %d\n",
		k.Kind, k.Gamma, k.Coef, k.ScaleA, k.Degree)
	if len(s.Meta) > 0 {
		keys := make([]string, 0, len(s.Meta))
		for key := range s.Meta {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if strings.ContainsAny(key, " \n") || strings.ContainsRune(s.Meta[key], '\n') {
				return fmt.Errorf("model: meta %q unencodable (space in key or newline)", key)
			}
			fmt.Fprintf(bw, "meta %s %s\n", key, s.Meta[key])
		}
	}
	fmt.Fprintf(bw, "centers\n")
	for c := 0; c < s.Centers.Rows(); c++ {
		row := s.Centers.DenseRow(c)
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", v)
		}
		bw.WriteByte('\n')
	}
	for j, m := range s.Models {
		fmt.Fprintf(bw, "model %d nsv %d bias %g fallback %g\n", j, m.NSV(), m.B, m.Fallback)
		for i := 0; i < m.NSV(); i++ {
			fmt.Fprintf(bw, "%g %g", m.Alpha[i], m.SVY[i])
			if m.SVX.Sparse() {
				ix, vx := m.SVX.SparseRow(i)
				for t, col := range ix {
					fmt.Fprintf(bw, " %d:%g", col+1, vx[t])
				}
			} else {
				for col, v := range m.SVX.DenseRow(i) {
					if v != 0 {
						fmt.Fprintf(bw, " %d:%g", col+1, v)
					}
				}
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// LoadSet parses a model set written by SaveSet.
func LoadSet(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	line, err := next()
	if err != nil || line != "casvm-model-set v1" {
		return nil, fmt.Errorf("model: bad header %q (%v)", line, err)
	}
	var p, n int
	if line, err = next(); err != nil || strings.HasPrefix(line, "models ") == false {
		return nil, fmt.Errorf("model: want models line, got %q (%v)", line, err)
	}
	if _, err = fmt.Sscanf(line, "models %d", &p); err != nil {
		return nil, err
	}
	if line, err = next(); err != nil {
		return nil, err
	}
	if _, err = fmt.Sscanf(line, "features %d", &n); err != nil {
		return nil, err
	}
	if p < 1 || n < 1 {
		return nil, fmt.Errorf("model: bad dims p=%d n=%d", p, n)
	}
	if line, err = next(); err != nil {
		return nil, err
	}
	var kindStr string
	var kp kernel.Params
	if _, err = fmt.Sscanf(line, "kernel %s gamma %g coef %g scale %g degree %d",
		&kindStr, &kp.Gamma, &kp.Coef, &kp.ScaleA, &kp.Degree); err != nil {
		return nil, fmt.Errorf("model: kernel line %q: %v", line, err)
	}
	if kp.Kind, err = kernel.ParseKind(kindStr); err != nil {
		return nil, err
	}
	if line, err = next(); err != nil {
		return nil, err
	}
	var meta map[string]string
	for strings.HasPrefix(line, "meta ") {
		key, value, ok := strings.Cut(strings.TrimPrefix(line, "meta "), " ")
		if !ok || key == "" {
			return nil, fmt.Errorf("model: bad meta line %q", line)
		}
		if meta == nil {
			meta = map[string]string{}
		}
		meta[key] = value
		if line, err = next(); err != nil {
			return nil, err
		}
	}
	if line != "centers" {
		return nil, fmt.Errorf("model: want centers, got %q", line)
	}
	centerData := make([]float64, 0, p*n)
	for c := 0; c < p; c++ {
		if line, err = next(); err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != n {
			return nil, fmt.Errorf("model: center %d has %d values, want %d", c, len(fields), n)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, err
			}
			centerData = append(centerData, v)
		}
	}
	set := &Set{Centers: la.NewDense(p, n, centerData), Meta: meta}
	for j := 0; j < p; j++ {
		if line, err = next(); err != nil {
			return nil, err
		}
		var jj, nsv int
		var bias, fallback float64
		if _, err = fmt.Sscanf(line, "model %d nsv %d bias %g fallback %g", &jj, &nsv, &bias, &fallback); err != nil {
			return nil, fmt.Errorf("model: model line %q: %v", line, err)
		}
		if jj != j {
			return nil, fmt.Errorf("model: out-of-order model %d, want %d", jj, j)
		}
		m := &Model{Kernel: kp, B: bias, Fallback: fallback}
		rowptr := make([]int32, 1, nsv+1)
		var idx []int32
		var val []float64
		m.SVY = make([]float64, nsv)
		m.Alpha = make([]float64, nsv)
		for i := 0; i < nsv; i++ {
			if line, err = next(); err != nil {
				return nil, err
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("model: sv line %q", line)
			}
			if m.Alpha[i], err = strconv.ParseFloat(fields[0], 64); err != nil {
				return nil, err
			}
			if m.SVY[i], err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, err
			}
			for _, f := range fields[2:] {
				colon := strings.IndexByte(f, ':')
				if colon <= 0 {
					return nil, fmt.Errorf("model: sv feature %q", f)
				}
				col, err := strconv.Atoi(f[:colon])
				if err != nil || col < 1 || col > n {
					return nil, fmt.Errorf("model: sv index %q", f[:colon])
				}
				v, err := strconv.ParseFloat(f[colon+1:], 64)
				if err != nil {
					return nil, err
				}
				idx = append(idx, int32(col-1))
				val = append(val, v)
			}
			rowptr = append(rowptr, int32(len(idx)))
		}
		m.SVX = la.NewSparse(nsv, n, rowptr, idx, val)
		if err := m.Validate(); err != nil {
			return nil, err
		}
		set.Models = append(set.Models, m)
	}
	return set, nil
}
