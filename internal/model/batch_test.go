package model

import (
	"math/rand"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// The batched prediction layer promises bit-identity with the per-row
// entry points, which stay in the API precisely so these tests can use
// them as the reference implementation.

func batchDense(rng *rand.Rand, rows, cols int) *la.Matrix {
	buf := make([]float64, rows*cols)
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
	return la.NewDense(rows, cols, buf)
}

func batchSparse(rng *rand.Rand, rows, cols int) *la.Matrix {
	rp := make([]int32, rows+1)
	var ix []int32
	var vx []float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.3 {
				ix = append(ix, int32(c))
				vx = append(vx, rng.NormFloat64())
			}
		}
		rp[r+1] = int32(len(ix))
	}
	return la.NewSparse(rows, cols, rp, ix, vx)
}

// syntheticModel builds a model directly (no training) so the SV count can
// span the svBlock boundary.
func syntheticModel(rng *rand.Rand, sv *la.Matrix, k kernel.Params) *Model {
	n := sv.Rows()
	m := &Model{
		Kernel:   k,
		SVX:      sv,
		SVY:      make([]float64, n),
		Alpha:    make([]float64, n),
		B:        0.3 * rng.NormFloat64(),
		Fallback: 1,
	}
	for i := 0; i < n; i++ {
		m.SVY[i] = float64(2*(i%2) - 1)
		m.Alpha[i] = 0.01 + rng.Float64()
	}
	return m
}

var batchKinds = []kernel.Params{
	{Kind: kernel.Linear},
	{Kind: kernel.Polynomial, Gamma: 0.5, Coef: 1, Degree: 2},
	kernel.RBF(0.2),
	{Kind: kernel.Sigmoid, Gamma: 0.5, Coef: 0.5, ScaleA: 0.7},
}

// TestDecisionAllMatchesDecisionBitwise covers every storage pairing with
// SV counts and query counts that are ragged against both block sizes.
func TestDecisionAllMatchesDecisionBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	feats := 17
	mats := func(rows int) []*la.Matrix {
		return []*la.Matrix{batchDense(rng, rows, feats), batchSparse(rng, rows, feats)}
	}
	for _, nsv := range []int{5, 300} { // below and across svBlock=256
		for _, sv := range mats(nsv) {
			for _, q := range mats(150) { // across qBlock=64, ragged tail
				for _, k := range batchKinds {
					m := syntheticModel(rng, sv, k)
					got := m.DecisionAll(q)
					for qi := range got {
						want := m.Decision(q, qi)
						if got[qi] != want {
							t.Fatalf("nsv=%d kind=%v: decision[%d] %v != %v",
								nsv, k.Kind, qi, got[qi], want)
						}
					}
					preds := m.PredictAll(q)
					for qi := range preds {
						if want := m.Predict(q, qi); preds[qi] != want {
							t.Fatalf("nsv=%d kind=%v: pred[%d] %v != %v",
								nsv, k.Kind, qi, preds[qi], want)
						}
					}
				}
			}
		}
	}
}

func TestPredictAllNoSVsFallback(t *testing.T) {
	x := la.NewDense(3, 1, []float64{1, 2, 3})
	m := FromSolution(x, []float64{1, 1, 1}, []float64{0, 0, 0}, 0, kernel.RBF(1))
	for _, p := range m.PredictAll(x) {
		if p != 1 {
			t.Fatalf("fallback prediction %v", p)
		}
	}
	d := m.DecisionAll(x)
	for _, v := range d {
		if v != -m.B {
			t.Fatalf("empty-model decision %v", v)
		}
	}
}

// TestRouteAllMatchesRouteBitwise checks the blocked centroid assignment
// against per-row Route for dense and sparse queries, including a center
// count of 1 and ties (duplicated centers must keep the strict-< winner).
func TestRouteAllMatchesRouteBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	feats := 9
	for _, np := range []int{1, 3} {
		centers := batchDense(rng, np, feats)
		if np == 3 {
			// Duplicate a center row: ties must resolve identically.
			cbuf := make([]float64, np*feats)
			for c := 0; c < np; c++ {
				copy(cbuf[c*feats:], centers.DenseRow(c))
			}
			copy(cbuf[2*feats:], cbuf[0:feats])
			centers = la.NewDense(np, feats, cbuf)
		}
		dummy := syntheticModel(rng, batchDense(rng, 4, feats), kernel.RBF(0.5))
		set := &Set{Centers: centers}
		for p := 0; p < np; p++ {
			set.Models = append(set.Models, dummy)
		}
		for _, q := range []*la.Matrix{batchDense(rng, 131, feats), batchSparse(rng, 131, feats)} {
			got := set.RouteAll(q)
			for qi := range got {
				if want := set.Route(q, qi); got[qi] != want {
					t.Fatalf("np=%d: route[%d] %d != %d", np, qi, got[qi], want)
				}
			}
		}
	}
}

// TestSetPredictAllMatchesPerRow exercises the grouped scatter/gather path
// with models of different kernels and an empty (no-SV) partition.
func TestSetPredictAllMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	feats := 11
	empty := FromSolution(la.NewDense(2, feats, make([]float64, 2*feats)),
		[]float64{-1, -1}, []float64{0, 0}, 0, kernel.RBF(1))
	set := &Set{
		Models: []*Model{
			syntheticModel(rng, batchDense(rng, 40, feats), kernel.RBF(0.3)),
			syntheticModel(rng, batchSparse(rng, 33, feats), kernel.Params{Kind: kernel.Linear}),
			empty,
		},
		Centers: batchDense(rng, 3, feats),
	}
	y := make([]float64, 97)
	for i := range y {
		y[i] = float64(2*(i%2) - 1)
	}
	for _, q := range []*la.Matrix{batchDense(rng, 97, feats), batchSparse(rng, 97, feats)} {
		got := set.PredictAll(q)
		correct := 0
		for qi := range got {
			want := set.Predict(q, qi)
			if got[qi] != want {
				t.Fatalf("pred[%d] %v != %v", qi, got[qi], want)
			}
			if want == y[qi] {
				correct++
			}
		}
		decs := set.DecisionAll(q)
		for qi := range decs {
			if want := set.Decision(q, qi); decs[qi] != want {
				t.Fatalf("decision[%d] %v != %v", qi, decs[qi], want)
			}
		}
		if acc := set.Accuracy(q, y); acc != float64(correct)/float64(len(y)) {
			t.Fatalf("accuracy %v", acc)
		}
		con := set.Confusion(q, y)
		if con.TP+con.FP+con.TN+con.FN != len(y) {
			t.Fatalf("confusion total %+v", con)
		}
	}
}

// BenchmarkPredictAll compares the tiled batch path against the per-row
// loop it replaced, on the shapes the README quotes.
func BenchmarkPredictAll(b *testing.B) {
	rng := rand.New(rand.NewSource(64))
	const nsv, nq, feats = 2048, 512, 64
	cases := []struct {
		name string
		k    kernel.Params
		svs  *la.Matrix
		q    *la.Matrix
	}{
		{"dense-linear", kernel.Params{Kind: kernel.Linear}, batchDense(rng, nsv, feats), batchDense(rng, nq, feats)},
		{"dense-rbf", kernel.RBF(0.05), batchDense(rng, nsv, feats), batchDense(rng, nq, feats)},
		{"sparse-rbf", kernel.RBF(0.05), batchSparse(rng, nsv, feats), batchSparse(rng, nq, feats)},
		// Mixed storage is where the per-row path degrades hardest: Eval
		// re-densifies the sparse query row for every single support
		// vector, the tile path once per tile column.
		{"mixed-rbf", kernel.RBF(0.05), batchDense(rng, nsv, feats), batchSparse(rng, nq, feats)},
		{"mixed-linear", kernel.Params{Kind: kernel.Linear}, batchDense(rng, nsv, feats), batchSparse(rng, nq, feats)},
	}
	for _, tc := range cases {
		m := syntheticModel(rng, tc.svs, tc.k)
		b.Run(tc.name+"/perRow", func(b *testing.B) {
			out := make([]float64, tc.q.Rows())
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				for qi := range out {
					out[qi] = m.Predict(tc.q, qi)
				}
			}
		})
		b.Run(tc.name+"/tiled", func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				_ = m.PredictAll(tc.q)
			}
		})
	}
}
