package model

import (
	"bytes"
	"strings"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

// FuzzLoadSet asserts the model-file parser never panics and that any set
// it accepts can actually predict.
func FuzzLoadSet(f *testing.F) {
	// A well-formed file as the anchor seed.
	x := la.NewDense(2, 2, []float64{1, 2, -1, -2})
	m := FromSolution(x, []float64{1, -1}, []float64{0.5, 0.5}, 0.1, kernel.RBF(0.5))
	var buf bytes.Buffer
	if err := SaveSet(&buf, Single(m, []float64{0, 0})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("casvm-model-set v1\nmodels 1\n")
	f.Add("casvm-model-set v1\nmodels 999999\nfeatures 2\n")
	f.Add(strings.Replace(buf.String(), "gaussian", "bogus", 1))
	f.Add(strings.Replace(buf.String(), "nsv 2", "nsv 99", 1))

	f.Fuzz(func(t *testing.T, in string) {
		set, err := LoadSet(strings.NewReader(in))
		if err != nil {
			return
		}
		if set.P() < 1 {
			t.Fatal("accepted a set with no models")
		}
		q := la.NewDense(1, set.Centers.Features(), make([]float64, set.Centers.Features()))
		pred := set.Predict(q, 0)
		if pred != 1 && pred != -1 {
			t.Fatalf("prediction %v not ±1", pred)
		}
	})
}
