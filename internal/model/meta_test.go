package model

import (
	"bytes"
	"strings"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

func metaTestSet(t *testing.T) *Set {
	t.Helper()
	x := la.NewDense(4, 2, []float64{1, 2, -1, -2, 3, 1, -3, -1})
	m := FromSolution(x, []float64{1, -1, 1, -1}, []float64{0.5, 0.5, 0.2, 0.2}, 0.1, kernel.RBF(0.5))
	return Single(m, []float64{0, 0})
}

// TestMetaRoundTrip pins the metadata extension of the model format: sorted
// meta lines survive a save/load cycle, and a set without metadata encodes
// byte-identically to the historical v1 format (so ModelHash fingerprints
// from earlier releases stay valid).
func TestMetaRoundTrip(t *testing.T) {
	s := metaTestSet(t)
	var plain bytes.Buffer
	if err := SaveSet(&plain, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "\nmeta ") {
		t.Fatal("metadata-free set wrote meta lines")
	}

	s.SetMeta("compress_budget", "64")
	s.SetMeta("accuracy_delta", "0.003 (full 0.97 vs compressed 0.967)")
	var annotated bytes.Buffer
	if err := SaveSet(&annotated, s); err != nil {
		t.Fatal(err)
	}
	encoded := annotated.String()
	// Annotations add lines but leave the rest of the encoding untouched.
	if got := strings.ReplaceAll(encoded,
		"meta accuracy_delta 0.003 (full 0.97 vs compressed 0.967)\nmeta compress_budget 64\n", ""); got != plain.String() {
		t.Fatalf("meta lines not additive:\n%s", encoded)
	}

	loaded, err := LoadSet(strings.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Meta) != 2 || loaded.Meta["compress_budget"] != "64" ||
		loaded.Meta["accuracy_delta"] != "0.003 (full 0.97 vs compressed 0.967)" {
		t.Fatalf("meta round trip: %+v", loaded.Meta)
	}
	// The re-save is deterministic (sorted keys) and round-trip stable.
	var again bytes.Buffer
	if err := SaveSet(&again, loaded); err != nil {
		t.Fatal(err)
	}
	if again.String() != encoded {
		t.Fatalf("re-save differs:\n%s\nvs\n%s", again.String(), encoded)
	}
}

// TestMetaRejectsUnencodable covers the save-side guards: keys with spaces
// and values with newlines would break the line framing.
func TestMetaRejectsUnencodable(t *testing.T) {
	s := metaTestSet(t)
	s.SetMeta("bad key", "v")
	if err := SaveSet(&bytes.Buffer{}, s); err == nil {
		t.Fatal("space in key accepted")
	}
	s.Meta = map[string]string{"key": "line1\nline2"}
	if err := SaveSet(&bytes.Buffer{}, s); err == nil {
		t.Fatal("newline in value accepted")
	}
}
