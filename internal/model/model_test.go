package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/smo"
)

func trainBlobModel(t *testing.T, seed int64) (*Model, *la.Matrix, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 80
	dataBuf := make([]float64, m*2)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		dataBuf[i*2] = sign*2 + 0.4*rng.NormFloat64()
		dataBuf[i*2+1] = sign*2 + 0.4*rng.NormFloat64()
		y[i] = sign
	}
	x := la.NewDense(m, 2, dataBuf)
	cfg := smo.Config{C: 1, Kernel: kernel.RBF(0.5)}
	res, err := smo.Solve(x, y, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return FromSolution(x, y, res.Alpha, res.B, cfg.Kernel), x, y
}

func TestFromSolutionAndPredict(t *testing.T) {
	m, x, y := trainBlobModel(t, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NSV() == 0 || m.NSV() == x.Rows() {
		t.Fatalf("NSV=%d", m.NSV())
	}
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Errorf("train accuracy %.3f", acc)
	}
	preds := m.PredictAll(x)
	if len(preds) != x.Rows() {
		t.Fatal("PredictAll length")
	}
	for _, p := range preds {
		if p != 1 && p != -1 {
			t.Fatalf("prediction %v", p)
		}
	}
}

func TestFallbackNoSVs(t *testing.T) {
	x := la.NewDense(3, 1, []float64{1, 2, 3})
	y := []float64{1, 1, 1}
	m := FromSolution(x, y, []float64{0, 0, 0}, 0, kernel.RBF(1))
	if m.NSV() != 0 {
		t.Fatal("no SVs expected")
	}
	if m.Predict(x, 0) != 1 {
		t.Error("fallback should be the majority label +1")
	}
	yn := []float64{-1, -1, 1}
	mn := FromSolution(x, yn, []float64{0, 0, 0}, 0, kernel.RBF(1))
	if mn.Predict(x, 0) != -1 {
		t.Error("fallback should be -1")
	}
}

func TestSetRouting(t *testing.T) {
	// Two models: one always predicts via blob at (5,5), other at (-5,-5).
	mkModel := func(cx float64, label float64) *Model {
		x := la.NewDense(2, 2, []float64{cx, cx, cx + 0.5, cx + 0.5})
		y := []float64{label, label}
		return FromSolution(x, y, []float64{0, 0}, 0, kernel.RBF(1))
	}
	set := &Set{
		Models:  []*Model{mkModel(5, 1), mkModel(-5, -1)},
		Centers: la.NewDense(2, 2, []float64{5, 5, -5, -5}),
	}
	q := la.NewDense(2, 2, []float64{4, 4, -6, -4})
	if set.Route(q, 0) != 0 || set.Route(q, 1) != 1 {
		t.Fatal("routing wrong")
	}
	if set.Predict(q, 0) != 1 || set.Predict(q, 1) != -1 {
		t.Fatal("set predictions wrong")
	}
	if acc := set.Accuracy(q, []float64{1, -1}); acc != 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if set.P() != 2 {
		t.Fatal("P")
	}
}

func TestSingleWrapper(t *testing.T) {
	m, x, y := trainBlobModel(t, 2)
	s := Single(m, []float64{0, 0})
	if s.P() != 1 {
		t.Fatal("single set size")
	}
	if acc := s.Accuracy(x, y); acc < 0.98 {
		t.Errorf("wrapped accuracy %.3f", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m1, x, y := trainBlobModel(t, 3)
	m2, _, _ := trainBlobModel(t, 4)
	set := &Set{
		Models:  []*Model{m1, m2},
		Centers: la.NewDense(2, 2, []float64{2, 2, -2, -2}),
	}
	var buf bytes.Buffer
	if err := SaveSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != 2 || got.NSV() != set.NSV() {
		t.Fatalf("P=%d NSV=%d want %d/%d", got.P(), got.NSV(), 2, set.NSV())
	}
	// Predictions must agree everywhere.
	for i := 0; i < x.Rows(); i++ {
		if set.Predict(x, i) != got.Predict(x, i) {
			t.Fatalf("prediction changed after round trip at %d", i)
		}
	}
	// Decisions numerically close (float formatting via %g is exact for
	// round-trippable values).
	for i := 0; i < 5; i++ {
		d1 := set.Models[0].Decision(x, i)
		d2 := got.Models[0].Decision(x, i)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("decision drift %v vs %v", d1, d2)
		}
	}
	_ = y
}

func TestLoadSetErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"casvm-model-set v1\nmodels x\n",
		"casvm-model-set v1\nmodels 1\nfeatures 2\nkernel bogus gamma 1 coef 0 scale 0 degree 0\n",
		"casvm-model-set v1\nmodels 1\nfeatures 2\nkernel gaussian gamma 1 coef 0 scale 0 degree 0\ncenters\n1 2\nmodel 0 nsv 1 bias 0 fallback 1\nbadline\n",
		"casvm-model-set v1\nmodels 1\nfeatures 2\nkernel gaussian gamma 1 coef 0 scale 0 degree 0\ncenters\n1\n",
	}
	for i, in := range cases {
		if _, err := LoadSet(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateCatchesBadAlpha(t *testing.T) {
	x := la.NewDense(1, 1, []float64{1})
	m := &Model{
		Kernel: kernel.RBF(1),
		SVX:    x,
		SVY:    []float64{1},
		Alpha:  []float64{-0.5},
	}
	if err := m.Validate(); err == nil {
		t.Error("negative alpha should fail validation")
	}
}
