package model

import (
	"testing"

	"casvm/internal/kernel"
	"casvm/internal/la"
)

func TestConfusionCounts(t *testing.T) {
	// A fixed "model": single SV at origin with fallback +1 has NSV>0, so
	// build a simple threshold model on 1-D data instead.
	x := la.NewDense(2, 1, []float64{1, -1})
	mdl := FromSolution(x, []float64{1, -1}, []float64{0.5, 0.5}, 0, kernel.RBF(0.5))
	set := Single(mdl, []float64{0})

	q := la.NewDense(4, 1, []float64{2, 1.5, -2, -1.5})
	y := []float64{1, -1, -1, 1}
	c := set.Confusion(q, y)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if c.Recall() != 0.5 || c.Precision() != 0.5 {
		t.Fatalf("recall=%v precision=%v", c.Recall(), c.Precision())
	}
	if f1 := c.F1(); f1 != 0.5 {
		t.Fatalf("f1=%v", f1)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Recall() != 0 || c.Precision() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion metrics must be zero")
	}
}
