// Package mpi is the message-passing substrate standing in for MPI: a
// World of P ranks, each a goroutine, exchanging byte-slice messages
// through selective-receive mailboxes, with the collective operations the
// CA-SVM training methods need (Barrier, Bcast, Scatterv, Gatherv,
// Allgather, Allreduce, Allreduce-with-location).
//
// Two things are layered over plain message passing:
//
//   - Accounting: every transfer is recorded in a trace.Stats, giving the
//     paper's Fig 8 byte matrices and Table X/XI measured volumes.
//   - Virtual time: each rank carries a clock in seconds. Computation is
//     charged explicitly (Charge/ChargeTime) from flop counts; every
//     message hop charges ts + tw·bytes on both ends and synchronises the
//     receiver's clock with the sender's. Collectives built from
//     tree-structured point-to-point hops therefore cost what the α–β
//     model of internal/perfmodel says they should. Virtual time makes
//     scaling experiments independent of how many ranks share the host.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"casvm/internal/perfmodel"
	"casvm/internal/trace"
)

// ErrAborted is delivered (by panic, recovered in Run) to ranks blocked in
// communication when another rank fails, so a single error cannot deadlock
// the world.
var ErrAborted = errors.New("mpi: world aborted")

// CrashError reports a rank deliberately killed — by fault injection or by
// an external failure detector. Callers that support degraded-mode
// completion (the independent-model CA-SVM paths) match it with errors.As
// to distinguish a lost rank from a genuine algorithmic failure.
type CrashError struct {
	Rank int
	Iter int    // training iteration at the crash point (-1 if not iteration-bound)
	Site string // short description of where the crash was injected
}

func (e *CrashError) Error() string {
	if e.Iter >= 0 {
		return fmt.Sprintf("mpi: rank %d crashed at iteration %d (%s)", e.Rank, e.Iter, e.Site)
	}
	return fmt.Sprintf("mpi: rank %d crashed (%s)", e.Rank, e.Site)
}

// ResizeError is a cooperative world-resize request: a rank raises it (at
// an epoch boundary, after a globally consistent checkpoint exists) when
// the membership layer wants the world wider. Unlike a crash it marks no
// rank lost — the world aborts cleanly and a supervising driver rebuilds it
// with Delta extra ranks, resuming from the last consistent checkpoint.
type ResizeError struct {
	Rank   int    // the rank that observed the request
	Iter   int    // training iteration at the resize point
	Delta  int    // ranks to add (elastic scale-up)
	Reason string // what asked for the resize ("worker-join", …)
}

func (e *ResizeError) Error() string {
	return fmt.Sprintf("mpi: rank %d requested +%d ranks at iteration %d (%s)",
		e.Rank, e.Delta, e.Iter, e.Reason)
}

// Verdict is a transport hook's instruction for one intercepted transfer.
// The zero value delivers the message untouched.
type Verdict struct {
	// Drop silently discards the message. The sender still pays the wire
	// cost (the bytes left the NIC); the receiver never sees it.
	Drop bool
	// Duplicates delivers this many extra copies after the original.
	Duplicates int
	// DelaySec adds virtual network latency: the receiver's clock
	// synchronises to the sender's clock plus this delay. The sender is
	// not slowed (sends are asynchronous).
	DelaySec float64
	// Payload, when non-nil, replaces the message body (corruption). The
	// hook must not alias the original slice.
	Payload []byte
	// CrashErr, when non-nil, kills the sending rank: the send panics with
	// this error, Run recovers it, and the world aborts.
	CrashErr error
}

// TransportHook observes and perturbs every remote point-to-point transfer
// in the world — the injection point of internal/faults. It is called from
// every rank goroutine concurrently and must be safe for concurrent use.
// Self-sends are not intercepted (they never touch a wire).
type TransportHook interface {
	Intercept(src, dst, tag int, data []byte) Verdict
}

// message is one point-to-point transfer.
type message struct {
	src   int
	tag   int
	data  []byte
	clock float64 // arrival time: sender's post-send clock plus injected delay

	// Causal-trace fields, zero when the sender had no recorder attached.
	edgeID    int64   // flow-edge id from Timeline.NextEdgeID (0 = untraced/self)
	sendClock float64 // sender's virtual clock at send completion (before delay)
	sendNs    int64   // sender's wall clock at send completion
}

// mailbox is one rank's unexpected-message queue with selective receive.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available and removes
// it. src == AnySource matches any sender. It panics with ErrAborted when
// the world is shutting down.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.aborted {
			panic(ErrAborted)
		}
		for i := range mb.queue {
			m := mb.queue[i]
			if (src == AnySource || m.src == src) && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// AnySource matches any sending rank in Recv.
const AnySource = -1

// World is a set of P ranks sharing an interconnect model and statistics.
type World struct {
	p       int
	machine perfmodel.Machine
	stats   *trace.Stats
	boxes   []*mailbox
	seed    int64
	hook    TransportHook
	tl      *trace.Timeline

	base float64 // virtual-time origin of every rank's clock (recovery resume)

	abortOnce   sync.Once
	finalClocks clockBoard
}

// SetBaseClock sets the virtual-time origin of every rank's clock. A
// recovery supervisor uses it to make a restarted world resume where the
// failed one stopped (plus any modeled restart penalty), so the α–β model
// charges recovery like any other cost. Call it before Run.
func (w *World) SetBaseClock(sec float64) { w.base = sec }

// BaseClock returns the virtual-time origin set by SetBaseClock (0 for a
// fresh world).
func (w *World) BaseClock() float64 { return w.base }

// SetTransportHook installs a fault-injection hook intercepting every
// remote transfer. Call it before Run; the hook must be concurrency-safe.
func (w *World) SetTransportHook(h TransportHook) { w.hook = h }

// SetTimeline attaches a span timeline: every collective records a
// per-rank span carrying wall and virtual time, and rank failures record
// instant fault events. Call it before Run with a timeline sized to the
// world; nil (the default) keeps every instrumentation site on its
// zero-cost path.
func (w *World) SetTimeline(tl *trace.Timeline) { w.tl = tl }

// Timeline returns the attached timeline (nil when none).
func (w *World) Timeline() *trace.Timeline { return w.tl }

// NewWorld creates a world of p ranks with the given machine model and RNG
// seed (each rank derives its own deterministic stream).
func NewWorld(p int, machine perfmodel.Machine, seed int64) *World {
	if p < 1 {
		panic(fmt.Sprintf("mpi: world size %d", p))
	}
	w := &World{
		p:       p,
		machine: machine,
		stats:   trace.NewStats(p),
		boxes:   make([]*mailbox, p),
		seed:    seed,
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Stats returns the world's communication statistics. Read it only after
// Run returns.
func (w *World) Stats() *trace.Stats { return w.stats }

// Machine returns the interconnect/compute cost model.
func (w *World) Machine() perfmodel.Machine { return w.machine }

func (w *World) abort() {
	w.abortOnce.Do(func() {
		for _, mb := range w.boxes {
			mb.abort()
		}
	})
}

// Run executes f once per rank, each on its own goroutine, and waits for
// all of them. The first non-nil error (or recovered panic) aborts the
// remaining ranks and is returned; secondary ErrAborted errors are
// suppressed.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, w.p)
	var wg sync.WaitGroup
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				world: w,
				rank:  rank,
				rng:   rand.New(rand.NewSource(w.seed*1000003 + int64(rank))),
				rec:   w.tl.Rank(rank),
				clock: w.base,
			}
			defer func() {
				if rec := recover(); rec != nil {
					// Commit the rank's clock even on the failure path: a
					// recovery supervisor reads MaxClock of an aborted
					// world to price the lost work honestly.
					w.finalClocks.set(rank, c.clock)
					var crash *CrashError
					var resize *ResizeError
					switch err, ok := rec.(error); {
					case ok && errors.Is(err, ErrAborted):
						errs[rank] = ErrAborted
					case ok && errors.As(err, &resize):
						// Cooperative resize: no rank was lost, the world is
						// just the wrong width now.
						errs[rank] = err
						w.tl.Rank(rank).Instant(trace.CatRecovery, "resize-requested")
					case ok && errors.As(err, &crash):
						// Injected crash: keep the typed error so callers
						// can elect degraded-mode completion.
						errs[rank] = err
						w.stats.RecordLost(rank)
						w.tl.Rank(rank).Instant(trace.CatFault, "rank-crashed")
					default:
						errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
						w.stats.RecordLost(rank)
						w.tl.Rank(rank).Instant(trace.CatFault, "rank-panicked")
					}
					w.abort()
				}
			}()
			err := f(c)
			w.finalClocks.set(rank, c.clock)
			if err != nil {
				errs[rank] = err
				var resize *ResizeError
				switch {
				case errors.Is(err, ErrAborted):
				case errors.As(err, &resize):
					w.tl.Rank(rank).Instant(trace.CatRecovery, "resize-requested")
				default:
					w.stats.RecordLost(rank)
					w.tl.Rank(rank).Instant(trace.CatFault, "rank-failed")
				}
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	var first error
	for _, e := range errs {
		if e != nil && !errors.Is(e, ErrAborted) {
			first = e
			break
		}
	}
	if first == nil {
		for _, e := range errs {
			if e != nil {
				first = e
				break
			}
		}
	}
	return first
}

// MaxClock returns the largest final virtual clock recorded by CommitClock
// across ranks — the simulated parallel runtime of the program.
func (w *World) MaxClock() float64 {
	return w.finalClocks.max()
}

// finalClocks collects each rank's clock at CommitClock time.
type clockBoard struct {
	mu     sync.Mutex
	clocks map[int]float64
}

func (b *clockBoard) set(rank int, v float64) {
	b.mu.Lock()
	if b.clocks == nil {
		b.clocks = make(map[int]float64)
	}
	if v > b.clocks[rank] {
		b.clocks[rank] = v
	}
	b.mu.Unlock()
}

func (b *clockBoard) max() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var m float64
	for _, v := range b.clocks {
		if v > m {
			m = v
		}
	}
	return m
}
