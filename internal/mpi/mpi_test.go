package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"casvm/internal/perfmodel"
)

func testWorld(p int) *World { return NewWorld(p, perfmodel.Hopper(), 42) }

func TestSendRecvBasic(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			got := c.Recv(0, 7)
			if string(got) != "hello" {
				return fmt.Errorf("got %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Bytes(0, 1) != 5 {
		t.Errorf("bytes(0,1)=%d", w.Stats().Bytes(0, 1))
	}
	if w.Stats().Ops(0, 1) != 1 {
		t.Errorf("ops(0,1)=%d", w.Stats().Ops(0, 1))
	}
}

func TestRecvSelectiveByTag(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
		} else {
			// Receive out of order: tag 2 first.
			if got := c.Recv(0, 2); string(got) != "second" {
				return fmt.Errorf("tag2 got %q", got)
			}
			if got := c.Recv(0, 1); string(got) != "first" {
				return fmt.Errorf("tag1 got %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w := testWorld(4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 3, []byte{byte(c.Rank())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, src := c.RecvFrom(AnySource, 3)
			if int(data[0]) != src {
				return fmt.Errorf("payload %d from src %d", data[0], src)
			}
			seen[src] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendNotCounted(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		c.Send(c.Rank(), 5, []byte("self"))
		if got := c.Recv(c.Rank(), 5); string(got) != "self" {
			return fmt.Errorf("self recv got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().TotalBytes() != 0 || w.Stats().TotalOps() != 0 {
		t.Error("self-sends must not count as network traffic")
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for root := 0; root < p; root++ {
			w := testWorld(p)
			payload := []byte(fmt.Sprintf("msg-from-%d", root))
			err := w.Run(func(c *Comm) error {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out := c.Bcast(root, in)
				if string(out) != string(payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastByteVolume(t *testing.T) {
	// A binomial bcast moves exactly (p-1) copies of the payload.
	w := testWorld(8)
	err := w.Run(func(c *Comm) error {
		c.Bcast(0, make([]byte, 100))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().TotalBytes(); got != 700 {
		t.Errorf("bcast volume=%d want 700", got)
	}
}

func TestScattervGatherv(t *testing.T) {
	w := testWorld(5)
	err := w.Run(func(c *Comm) error {
		var blocks [][]byte
		if c.Rank() == 2 {
			blocks = make([][]byte, 5)
			for i := range blocks {
				blocks[i] = []byte{byte(i * 10)}
			}
		}
		mine := c.Scatterv(2, blocks)
		if mine[0] != byte(c.Rank()*10) {
			return fmt.Errorf("rank %d scatter got %d", c.Rank(), mine[0])
		}
		// Transform and gather back.
		mine[0]++
		all := c.Gatherv(2, mine)
		if c.Rank() == 2 {
			for i, b := range all {
				if b[0] != byte(i*10+1) {
					return fmt.Errorf("gather[%d]=%d", i, b[0])
				}
			}
		} else if all != nil {
			return errors.New("non-root gather must return nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	w := testWorld(4)
	err := w.Run(func(c *Comm) error {
		out := c.Allgatherv([]byte{byte(c.Rank() + 1)})
		if len(out) != 4 {
			return fmt.Errorf("len=%d", len(out))
		}
		for i, b := range out {
			if len(b) != 1 || b[0] != byte(i+1) {
				return fmt.Errorf("block %d = %v", i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w := testWorld(p)
		err := w.Run(func(c *Comm) error {
			x := []float64{float64(c.Rank() + 1), -float64(c.Rank())}
			sum := c.AllreduceSum(x)
			wantSum := float64(p*(p+1)) / 2
			if sum[0] != wantSum {
				return fmt.Errorf("sum=%v want %v", sum[0], wantSum)
			}
			mx := c.AllreduceMax(x)
			if mx[0] != float64(p) || mx[1] != 0 {
				return fmt.Errorf("max=%v", mx)
			}
			mn := c.AllreduceMin(x)
			if mn[0] != 1 || mn[1] != -float64(p-1) {
				return fmt.Errorf("min=%v", mn)
			}
			// Input must be untouched.
			if x[0] != float64(c.Rank()+1) {
				return errors.New("allreduce modified input")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// Property: AllreduceSum across any P equals the serial sum.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, pu uint8, nu uint8) bool {
		p := int(pu)%7 + 1
		n := int(nu)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([][]float64, p)
		want := make([]float64, n)
		for r := range vals {
			vals[r] = make([]float64, n)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(1000) - 500)
				want[i] += vals[r][i]
			}
		}
		w := testWorld(p)
		ok := int32(1)
		err := w.Run(func(c *Comm) error {
			got := c.AllreduceSum(vals[c.Rank()])
			for i := range got {
				if got[i] != want[i] {
					atomic.StoreInt32(&ok, 0)
				}
			}
			return nil
		})
		return err == nil && atomic.LoadInt32(&ok) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllreduceSumInt(t *testing.T) {
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		got := c.AllreduceSumInt([]int{1, c.Rank()})
		if got[0] != 3 || got[1] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinLocMaxLoc(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 8} {
		w := testWorld(p)
		err := w.Run(func(c *Comm) error {
			val := float64((c.Rank()*3)%p) + 0.5 // distinct-ish values
			min := c.AllreduceMinLoc(val, c.Rank()*100)
			max := c.AllreduceMaxLoc(val, c.Rank()*100)
			// Verify against a direct computation.
			var wantMin, wantMax Loc
			wantMin.Val = 1e18
			wantMax.Val = -1e18
			for r := 0; r < p; r++ {
				v := float64((r*3)%p) + 0.5
				if v < wantMin.Val {
					wantMin = Loc{Val: v, Rank: int32(r), Index: int32(r * 100)}
				}
				if v > wantMax.Val {
					wantMax = Loc{Val: v, Rank: int32(r), Index: int32(r * 100)}
				}
			}
			if min != wantMin {
				return fmt.Errorf("min=%v want %v", min, wantMin)
			}
			if max != wantMax {
				return fmt.Errorf("max=%v want %v", max, wantMax)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestMinLocTieBreaksToLowerRank(t *testing.T) {
	w := testWorld(4)
	err := w.Run(func(c *Comm) error {
		l := c.AllreduceMinLoc(1.0, c.Rank())
		if l.Rank != 0 {
			return fmt.Errorf("tie should pick rank 0, got %d", l.Rank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var before, violations int32
	w := testWorld(8)
	err := w.Run(func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != 8 {
			atomic.AddInt32(&violations, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("%d ranks passed the barrier early", violations)
	}
}

func TestClockAdvancesOnCommAndCompute(t *testing.T) {
	w := testWorld(2)
	var clocks [2]float64
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Charge(1e9) // 0.1 s on the Hopper model
			c.Send(1, 1, make([]byte, 1000))
		} else {
			if c.Clock() != 0 {
				return errors.New("clock must start at zero")
			}
			c.Recv(0, 1)
			if c.Clock() <= 0.1 {
				return fmt.Errorf("receiver clock %v should exceed sender compute", c.Clock())
			}
		}
		clocks[c.Rank()] = c.Clock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxClock() <= 0.1 {
		t.Errorf("MaxClock=%v", w.MaxClock())
	}
	if w.Stats().CompSec(0) == 0 || w.Stats().CommSec(1) == 0 {
		t.Error("stats should record comp on sender and comm on receiver")
	}
}

func TestChargeTime(t *testing.T) {
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		c.ChargeTime(2.5)
		if c.Clock() != 2.5 {
			return fmt.Errorf("clock=%v", c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().CompSec(0) != 2.5 {
		t.Error("ChargeTime should book computation")
	}
}

func TestErrorAbortsBlockedRanks(t *testing.T) {
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("rank 0 failed")
		}
		// These would block forever without the abort machinery.
		c.Recv(0, 9)
		return nil
	})
	if err == nil || err.Error() != "rank 0 failed" {
		t.Fatalf("err=%v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		c.Recv(1, 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panic")
	}
}

func TestSendF64RoundTrip(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendF64(1, 4, []float64{3.14, -2.71})
		} else {
			x := c.RecvF64(0, 4)
			if len(x) != 2 || x[0] != 3.14 || x[1] != -2.71 {
				return fmt.Errorf("got %v", x)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministicPerRank(t *testing.T) {
	draw := func() [2]float64 {
		var out [2]float64
		w := testWorld(2)
		if err := w.Run(func(c *Comm) error {
			out[c.Rank()] = c.RNG().Float64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	if a != b {
		t.Error("same seed must give same streams")
	}
	if a[0] == a[1] {
		t.Error("different ranks must have different streams")
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		defer func() {
			if recover() == nil {
				panic("want panic for out-of-range tag")
			}
		}()
		c.Send(0, collTagBase, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) should panic")
		}
	}()
	NewWorld(0, perfmodel.Hopper(), 1)
}

// Bytes sent equal bytes received implicitly because a single counter per
// edge records both ends; here we sanity-check matrix symmetry of a
// symmetric exchange.
func TestStatsMatrixSymmetricExchange(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		other := 1 - c.Rank()
		c.Send(other, 1, make([]byte, 64))
		c.Recv(other, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Stats().Matrix()
	if m[0][1] != 64 || m[1][0] != 64 {
		t.Errorf("matrix=%v", m)
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		w := testWorld(p)
		err := w.Run(func(c *Comm) error {
			blocks := make([][]byte, p)
			for d := range blocks {
				blocks[d] = []byte(fmt.Sprintf("%d->%d", c.Rank(), d))
			}
			got := c.Alltoallv(blocks)
			for src, b := range got {
				want := fmt.Sprintf("%d->%d", src, c.Rank())
				if string(b) != want {
					return fmt.Errorf("rank %d from %d: got %q want %q", c.Rank(), src, b, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallvBackToBack(t *testing.T) {
	// Two consecutive exchanges must not cross-match (distinct tags).
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 2; round++ {
			blocks := make([][]byte, 3)
			for d := range blocks {
				blocks[d] = []byte(fmt.Sprintf("r%d-%d->%d", round, c.Rank(), d))
			}
			got := c.Alltoallv(blocks)
			for src, b := range got {
				want := fmt.Sprintf("r%d-%d->%d", round, src, c.Rank())
				if string(b) != want {
					return fmt.Errorf("round %d: got %q want %q", round, b, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvValidation(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		defer func() {
			if recover() == nil {
				panic("want panic for wrong block count")
			}
		}()
		c.Alltoallv(make([][]byte, 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
