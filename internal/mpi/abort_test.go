package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// runWithDeadline fails the test if w.Run does not return within the
// deadline — an abort that leaves any rank blocked is a hang, not an
// error path.
func runWithDeadline(t *testing.T, w *World, f func(c *Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(f) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("world did not abort: ranks still blocked")
		return nil
	}
}

// TestAbortUnblocksBcast: a rank that errors out while its peers sit
// inside a collective broadcast must unblock every one of them, and the
// world must surface the real error, not the secondary ErrAborted the
// peers died with.
func TestAbortUnblocksBcast(t *testing.T) {
	w := testWorld(4)
	boom := errors.New("rank 2 gave up")
	err := runWithDeadline(t, w, func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		// Root never shows up; without the abort machinery the remaining
		// ranks block in Recv inside Bcast.
		c.Bcast(2, nil)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the real error, got %v", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatalf("surfaced secondary abort error: %v", err)
	}
}

// TestAbortUnblocksAllreduce: same contract for the reduction tree, where
// every rank is both sender and receiver.
func TestAbortUnblocksAllreduce(t *testing.T) {
	w := testWorld(4)
	boom := errors.New("rank 0 gave up")
	err := runWithDeadline(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return boom
		}
		c.AllreduceSum([]float64{1, 2, 3})
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the real error, got %v", err)
	}
}

// TestAbortSurfacesFirstRealError: when one rank fails with a real error
// and the rest are killed by the abort, only the real error comes back
// even though several goroutines terminated abnormally.
func TestAbortSurfacesFirstRealError(t *testing.T) {
	w := testWorld(8)
	err := runWithDeadline(t, w, func(c *Comm) error {
		if c.Rank() == 5 {
			return fmt.Errorf("rank %d: disk on fire", c.Rank())
		}
		c.Barrier()
		return nil
	})
	if err == nil || err.Error() != "rank 5: disk on fire" {
		t.Fatalf("err=%v", err)
	}
}

// TestCrashErrorMarksRankLost: a CrashError (what the fault injector
// throws) must abort the world, surface typed, and record the rank in the
// trace's lost set — peers' secondary aborts must not pollute it.
func TestCrashErrorMarksRankLost(t *testing.T) {
	w := testWorld(4)
	err := runWithDeadline(t, w, func(c *Comm) error {
		if c.Rank() == 1 {
			return &CrashError{Rank: 1, Iter: 7, Site: "test"}
		}
		c.Bcast(0, []byte("x"))
		c.Barrier()
		return nil
	})
	var crash *CrashError
	if !errors.As(err, &crash) || crash.Rank != 1 || crash.Iter != 7 {
		t.Fatalf("want rank-1 CrashError, got %v", err)
	}
	if got := w.Stats().LostRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LostRanks=%v, want [1]", got)
	}
}
