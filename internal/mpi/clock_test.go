package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"casvm/internal/perfmodel"
)

// Virtual clocks must be monotonic within a rank and never run behind a
// message's send stamp, for arbitrary random communication schedules.
func TestClockMonotonicityUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, pu uint8) bool {
		p := int(pu)%5 + 2
		w := NewWorld(p, perfmodel.Hopper(), seed)
		violation := make([]bool, p)
		err := w.Run(func(c *Comm) error {
			rng := rand.New(rand.NewSource(seed + int64(c.Rank())))
			last := c.Clock()
			check := func() {
				if c.Clock() < last {
					violation[c.Rank()] = true
				}
				last = c.Clock()
			}
			// A randomized but deterministic schedule: everyone runs the
			// same number of rounds of (compute, allreduce) with random
			// local compute, so clocks diverge and must re-sync.
			for round := 0; round < 8; round++ {
				c.Charge(float64(rng.Intn(100000)))
				check()
				c.AllreduceSum([]float64{float64(c.Rank())})
				check()
				c.Barrier()
				check()
			}
			return nil
		})
		if err != nil {
			return false
		}
		for _, v := range violation {
			if v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// After a barrier, every rank's clock is at least the pre-barrier max.
func TestBarrierSynchronisesClocks(t *testing.T) {
	const p = 6
	w := NewWorld(p, perfmodel.Hopper(), 1)
	pre := make([]float64, p)
	post := make([]float64, p)
	err := w.Run(func(c *Comm) error {
		// Rank r computes r units of work: clocks diverge.
		c.Charge(float64(c.Rank()) * 1e8)
		pre[c.Rank()] = c.Clock()
		c.Barrier()
		post[c.Rank()] = c.Clock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxPre float64
	for _, v := range pre {
		if v > maxPre {
			maxPre = v
		}
	}
	for r, v := range post {
		if v < maxPre {
			t.Errorf("rank %d post-barrier clock %v < global pre max %v", r, v, maxPre)
		}
	}
}

// Gatherv must deliver every block intact for arbitrary sizes and roots.
func TestGathervProperty(t *testing.T) {
	f := func(seed int64, pu, root uint8) bool {
		p := int(pu)%6 + 1
		r := int(root) % p
		w := NewWorld(p, perfmodel.Hopper(), seed)
		ok := true
		err := w.Run(func(c *Comm) error {
			payload := []byte(fmt.Sprintf("rank-%d-seed-%d", c.Rank(), seed))
			out := c.Gatherv(r, payload)
			if c.Rank() == r {
				for src, b := range out {
					want := fmt.Sprintf("rank-%d-seed-%d", src, seed)
					if string(b) != want {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
