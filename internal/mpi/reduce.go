package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"casvm/internal/la"
)

// Reduction operators over []float64.
type reduceOp int

const (
	opSum reduceOp = iota
	opMax
	opMin
)

func (op reduceOp) apply(dst, src []float64) {
	switch op {
	case opSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case opMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case opMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// allreduce combines x across all ranks with op via a binomial-tree reduce
// to rank 0 followed by a broadcast, charging the reduction flops.
func (c *Comm) allreduce(x []float64, op reduceOp) []float64 {
	sp := c.beginColl("Allreduce")
	defer c.endColl(sp)
	tag := c.nextCollTag()
	p, r := c.world.p, c.rank
	acc := append([]float64(nil), x...)
	for step := 1; step < p; step <<= 1 {
		if r&step != 0 {
			c.send(r-step, tag, la.EncodeF64(acc))
			break
		}
		if r+step < p {
			part, err := la.DecodeF64(c.recv(r+step, tag).data)
			if err != nil {
				panic(fmt.Sprintf("mpi: allreduce decode: %v", err))
			}
			if len(part) != len(acc) {
				panic(fmt.Sprintf("mpi: allreduce length mismatch %d vs %d", len(part), len(acc)))
			}
			op.apply(acc, part)
			c.Charge(float64(len(acc))) // one flop per element combined
		}
	}
	return c.BcastF64(0, acc)
}

// AllreduceSum returns the element-wise sum of x across all ranks. Every
// rank receives the same result; x is not modified.
func (c *Comm) AllreduceSum(x []float64) []float64 { return c.allreduce(x, opSum) }

// AllreduceMax returns the element-wise maximum of x across all ranks.
func (c *Comm) AllreduceMax(x []float64) []float64 { return c.allreduce(x, opMax) }

// AllreduceMin returns the element-wise minimum of x across all ranks.
func (c *Comm) AllreduceMin(x []float64) []float64 { return c.allreduce(x, opMin) }

// AllreduceSumInt sums integer counts across ranks (used by the
// partitioners for cluster sizes).
func (c *Comm) AllreduceSumInt(x []int) []int {
	f := make([]float64, len(x))
	for i, v := range x {
		f[i] = float64(v)
	}
	f = c.AllreduceSum(f)
	out := make([]int, len(x))
	for i, v := range f {
		out[i] = int(math.Round(v))
	}
	return out
}

// Loc pairs a value with its owning rank and a local index, for the MINLOC
// / MAXLOC reductions distributed SMO uses to locate the extreme KKT
// violators.
type Loc struct {
	Val   float64
	Rank  int32
	Index int32
}

const locBytes = 16

func encodeLoc(l Loc) []byte {
	buf := make([]byte, locBytes)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(l.Val))
	binary.LittleEndian.PutUint32(buf[8:], uint32(l.Rank))
	binary.LittleEndian.PutUint32(buf[12:], uint32(l.Index))
	return buf
}

func decodeLoc(b []byte) Loc {
	if len(b) != locBytes {
		panic(fmt.Sprintf("mpi: bad Loc payload %d bytes", len(b)))
	}
	return Loc{
		Val:   math.Float64frombits(binary.LittleEndian.Uint64(b)),
		Rank:  int32(binary.LittleEndian.Uint32(b[8:])),
		Index: int32(binary.LittleEndian.Uint32(b[12:])),
	}
}

// allreduceLoc reduces a Loc across ranks keeping the extreme value
// (ties resolve to the lower rank for determinism).
func (c *Comm) allreduceLoc(l Loc, better func(a, b Loc) bool) Loc {
	sp := c.beginColl("AllreduceLoc")
	defer c.endColl(sp)
	tag := c.nextCollTag()
	p, r := c.world.p, c.rank
	acc := l
	for step := 1; step < p; step <<= 1 {
		if r&step != 0 {
			c.send(r-step, tag, encodeLoc(acc))
			break
		}
		if r+step < p {
			other := decodeLoc(c.recv(r+step, tag).data)
			if better(other, acc) {
				acc = other
			}
		}
	}
	out := c.treeBcastBytes(0, c.nextCollTag(), encodeLoc(acc))
	return decodeLoc(out)
}

// AllreduceMinLoc returns the smallest value across ranks together with its
// owner rank and local index.
func (c *Comm) AllreduceMinLoc(val float64, index int) Loc {
	l := Loc{Val: val, Rank: int32(c.rank), Index: int32(index)}
	return c.allreduceLoc(l, func(a, b Loc) bool {
		if a.Val != b.Val {
			return a.Val < b.Val
		}
		return a.Rank < b.Rank
	})
}

// AllreduceMaxLoc returns the largest value across ranks together with its
// owner rank and local index.
func (c *Comm) AllreduceMaxLoc(val float64, index int) Loc {
	l := Loc{Val: val, Rank: int32(c.rank), Index: int32(index)}
	return c.allreduceLoc(l, func(a, b Loc) bool {
		if a.Val != b.Val {
			return a.Val > b.Val
		}
		return a.Rank < b.Rank
	})
}
