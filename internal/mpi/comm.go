package mpi

import (
	"fmt"
	"math/rand"
	"time"

	"casvm/internal/la"
	"casvm/internal/perfmodel"
	"casvm/internal/trace"
)

// Comm is one rank's handle onto the world: its identity, its virtual
// clock, its deterministic RNG, and the communication operations. A Comm is
// confined to the goroutine Run started for it.
type Comm struct {
	world *World
	rank  int
	rng   *rand.Rand
	rec   *trace.Recorder // per-rank span recorder; nil when no timeline

	clock   float64 // virtual seconds
	collSeq int     // collective sequence number; identical across ranks
}

// Recorder returns this rank's timeline recorder (nil without a timeline;
// trace.Recorder methods are nil-safe, so callers record unconditionally).
func (c *Comm) Recorder() *trace.Recorder { return c.rec }

// beginColl opens a collective span carrying the current virtual clock.
// With no timeline attached this is a nil-receiver no-op costing one
// branch and zero allocations.
func (c *Comm) beginColl(name string) trace.Span {
	return c.rec.BeginVirt(trace.CatCollective, name, c.clock)
}

// endColl closes a collective span with the post-collective virtual clock.
func (c *Comm) endColl(sp trace.Span) { c.rec.EndVirt(sp, c.clock) }

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size P.
func (c *Comm) Size() int { return c.world.p }

// RNG returns this rank's deterministic random stream.
func (c *Comm) RNG() *rand.Rand { return c.rng }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Machine returns the world's α–β cost model, so callers can price
// non-message work (checkpoint writes, recovery overhead) consistently.
func (c *Comm) Machine() perfmodel.Machine { return c.world.machine }

// Charge advances the virtual clock by the modeled time of f flops and
// books it as computation (and the flop count itself, for TotalFlops).
func (c *Comm) Charge(flops float64) {
	sec := c.world.machine.Compute(flops)
	c.rec.RecordSegment(trace.SegComp, c.clock, c.clock+sec, 0)
	c.clock += sec
	c.world.stats.AddComp(c.rank, sec)
	c.world.stats.AddFlops(c.rank, flops)
}

// ChargeTime advances the virtual clock by sec seconds of computation
// directly (used when a cost is known in time rather than flops).
func (c *Comm) ChargeTime(sec float64) {
	c.rec.RecordSegment(trace.SegComp, c.clock, c.clock+sec, 0)
	c.clock += sec
	c.world.stats.AddComp(c.rank, sec)
}

// SetPhase labels this rank's subsequently recorded clock segments with an
// algorithm phase name ("partition", "solve", …) so the critical-path
// decomposition can report per-phase splits. Nil-recorder no-op.
func (c *Comm) SetPhase(name string) { c.rec.SetPhase(name) }

// chargeComm advances the clock by sec and books it as communication.
func (c *Comm) chargeComm(sec float64) {
	c.clock += sec
	c.world.stats.AddComm(c.rank, sec)
}

// tag space: user tags must stay below collTagBase; collective-internal
// tags encode the collective sequence number so that consecutive
// collectives cannot cross-match.
const collTagBase = 1 << 24

func checkUserTag(tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("mpi: user tag %d out of range [0,%d)", tag, collTagBase))
	}
}

// Send transfers data to rank dst with the given tag. The sender pays the
// α–β cost; data is retained by the runtime, so the caller must not modify
// it afterwards.
func (c *Comm) Send(dst, tag int, data []byte) {
	checkUserTag(tag)
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.p {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if dst == c.rank {
		// Local delivery: no network cost, no accounting, no fault
		// injection (nothing touches a wire), no flow edge (edgeID 0).
		c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: data, clock: c.clock})
		return
	}
	var delay float64
	var drop bool
	copies := 1
	if h := c.world.hook; h != nil {
		v := h.Intercept(c.rank, dst, tag, data)
		if v.CrashErr != nil {
			// The sending rank dies mid-send. Run recovers the panic,
			// aborts the world and surfaces the typed error.
			panic(v.CrashErr)
		}
		if v.Payload != nil {
			// Corruption replaces the body before costing: the wire
			// carries what was actually transmitted.
			data = v.Payload
		}
		drop, delay = v.Drop, v.DelaySec
		copies += v.Duplicates
	}
	// The α–β cost splits into the latency (ts) and bandwidth (tw·bytes)
	// segments of the sender's clock; both carry the flow-edge id so the
	// critical-path walk can hop from a receiver's wait back into this
	// send. Clock arithmetic is unchanged from the uninstrumented path:
	// the single `chargeComm(cost)` below is the only mutation.
	var edgeID, sendNs int64
	if c.rec != nil {
		edgeID = c.world.tl.NextEdgeID()
		lat := c.world.machine.Ts
		cost := c.world.machine.PtoP(len(data))
		c.rec.RecordSegment(trace.SegLatency, c.clock, c.clock+lat, edgeID)
		c.rec.RecordSegment(trace.SegBandwidth, c.clock+lat, c.clock+cost, edgeID)
	}
	c.chargeComm(c.world.machine.PtoP(len(data)))
	c.world.stats.RecordSend(c.rank, dst, len(data))
	if c.rec != nil {
		sendNs = time.Now().UnixNano()
	}
	if drop {
		// The sender paid the wire cost (the bytes left the NIC); the
		// receiver never sees the message, so no flow edge is delivered.
		return
	}
	arrival := c.clock + delay
	for i := 0; i < copies; i++ {
		// Duplicate deliveries share the original's edge id; the timeline
		// dedupes at export.
		c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: data, clock: arrival,
			edgeID: edgeID, sendClock: c.clock, sendNs: sendNs})
	}
}

// Recv blocks until a message with the given tag arrives from src
// (AnySource matches anyone) and returns its payload. The receiver's clock
// advances to at least the sender's post-send clock.
func (c *Comm) Recv(src, tag int) []byte {
	checkUserTag(tag)
	m := c.recv(src, tag)
	return m.data
}

// RecvFrom is Recv but also reports the sending rank, for AnySource.
func (c *Comm) RecvFrom(src, tag int) ([]byte, int) {
	checkUserTag(tag)
	m := c.recv(src, tag)
	return m.data, m.src
}

func (c *Comm) recv(src, tag int) message {
	m := c.world.boxes[c.rank].take(src, tag)
	if m.clock > c.clock {
		// The message arrived "in the future": the gap is imbalance/
		// dependency wait, attributed to the edge being waited on.
		c.rec.RecordSegment(trace.SegWait, c.clock, m.clock, m.edgeID)
		c.world.stats.AddComm(c.rank, m.clock-c.clock)
		c.clock = m.clock
	}
	if m.edgeID != 0 {
		// Receiver-side flow recording keeps each buffer single-owner.
		// The payload length matches what the sender costed (corruption
		// hooks swap the body before costing), so the receiver can
		// recompute the α–β split locally.
		c.rec.RecordFlow(trace.FlowEdge{
			ID: m.edgeID, Src: m.src, Dst: c.rank, Tag: m.tag, Bytes: len(m.data),
			SendVirtSec: m.sendClock, RecvVirtSec: c.clock,
			SendWallNs: m.sendNs, RecvWallNs: time.Now().UnixNano(),
			LatencySec:   c.world.machine.Ts,
			BandwidthSec: c.world.machine.PtoP(len(m.data)) - c.world.machine.Ts,
		})
	}
	return m
}

// SendF64 sends a []float64 at full precision.
func (c *Comm) SendF64(dst, tag int, x []float64) { c.Send(dst, tag, la.EncodeF64(x)) }

// RecvF64 receives a []float64 sent with SendF64.
func (c *Comm) RecvF64(src, tag int) []float64 {
	x, err := la.DecodeF64(c.Recv(src, tag))
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d RecvF64: %v", c.rank, err))
	}
	return x
}

// nextCollTag reserves a fresh internal tag range for one collective call.
// All ranks call collectives in the same order, so sequence numbers agree.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return collTagBase + c.collSeq
}

// Barrier blocks until every rank has entered it. Implemented as a
// binomial-tree gather of empty messages followed by a broadcast.
func (c *Comm) Barrier() {
	sp := c.beginColl("Barrier")
	tag := c.nextCollTag()
	c.treeGatherSignal(tag)
	c.treeBcastBytes(0, tag, nil)
	c.endColl(sp)
}

// treeGatherSignal performs a binomial-tree reduction of empty messages to
// rank 0 (used by Barrier).
func (c *Comm) treeGatherSignal(tag int) {
	p, r := c.world.p, c.rank
	for step := 1; step < p; step <<= 1 {
		if r&step != 0 {
			c.send(r-step, tag, nil)
			return
		}
		if r+step < p {
			c.recv(r+step, tag)
		}
	}
}

// treeBcastBytes broadcasts data from root using a binomial tree rooted at
// rank `root` (implemented by rotating ranks so the root maps to 0).
// Returns the received payload on non-roots.
func (c *Comm) treeBcastBytes(root, tag int, data []byte) []byte {
	p := c.world.p
	vr := (c.rank - root + p) % p // virtual rank: root is 0
	if vr != 0 {
		// In a binomial broadcast, virtual rank vr receives from vr with
		// its highest set bit cleared.
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		src := (vr - top + root) % p
		m := c.recv(src, tag)
		data = m.data
	}
	// Forward to children: vr + step for steps above our top bit.
	start := 1
	if vr != 0 {
		top := 1
		for top<<1 <= vr {
			top <<= 1
		}
		start = top << 1
	}
	for step := start; vr+step < p; step <<= 1 {
		dst := (vr + step + root) % p
		c.send(dst, tag, data)
	}
	return data
}

// Bcast broadcasts data from root to all ranks; every rank returns the
// payload (the root returns its own argument).
func (c *Comm) Bcast(root int, data []byte) []byte {
	sp := c.beginColl("Bcast")
	tag := c.nextCollTag()
	if c.rank != root {
		data = nil
	}
	data = c.treeBcastBytes(root, tag, data)
	c.endColl(sp)
	return data
}

// BcastF64 broadcasts a []float64 from root; all ranks return it.
func (c *Comm) BcastF64(root int, x []float64) []float64 {
	var buf []byte
	if c.rank == root {
		buf = la.EncodeF64(x)
	}
	buf = c.Bcast(root, buf)
	out, err := la.DecodeF64(buf)
	if err != nil {
		panic(fmt.Sprintf("mpi: BcastF64: %v", err))
	}
	return out
}

// Scatterv sends blocks[i] to rank i from root (linear scatter, as in MPI's
// default for irregular block sizes); each rank returns its block.
func (c *Comm) Scatterv(root int, blocks [][]byte) []byte {
	sp := c.beginColl("Scatterv")
	defer c.endColl(sp)
	tag := c.nextCollTag()
	if c.rank == root {
		if len(blocks) != c.world.p {
			panic(fmt.Sprintf("mpi: Scatterv needs %d blocks, got %d", c.world.p, len(blocks)))
		}
		for dst := 0; dst < c.world.p; dst++ {
			if dst != root {
				c.send(dst, tag, blocks[dst])
			}
		}
		return blocks[root]
	}
	return c.recv(root, tag).data
}

// Gatherv collects each rank's data at root; root returns the P blocks in
// rank order, others return nil.
func (c *Comm) Gatherv(root int, data []byte) [][]byte {
	sp := c.beginColl("Gatherv")
	defer c.endColl(sp)
	tag := c.nextCollTag()
	if c.rank != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.world.p)
	out[root] = data
	for i := 0; i < c.world.p-1; i++ {
		m := c.recv(AnySource, tag)
		out[m.src] = m.data
	}
	return out
}

// Alltoallv performs a personalized all-to-all exchange: rank r's
// blocks[d] is delivered to rank d, and the call returns the P blocks this
// rank received, indexed by source. The self-block is passed through
// locally without network cost. Receives are posted per source in rank
// order so that back-to-back Alltoallv calls cannot steal each other's
// messages.
func (c *Comm) Alltoallv(blocks [][]byte) [][]byte {
	p := c.world.p
	if len(blocks) != p {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d blocks, got %d", p, len(blocks)))
	}
	sp := c.beginColl("Alltoallv")
	defer c.endColl(sp)
	tag := c.nextCollTag()
	for dst := 0; dst < p; dst++ {
		if dst != c.rank {
			c.send(dst, tag, blocks[dst])
		}
	}
	out := make([][]byte, p)
	out[c.rank] = blocks[c.rank]
	for src := 0; src < p; src++ {
		if src == c.rank {
			continue
		}
		out[src] = c.recv(src, tag).data
	}
	return out
}

// Allgatherv gathers every rank's block on all ranks (gather + broadcast of
// the concatenation with a length table).
func (c *Comm) Allgatherv(data []byte) [][]byte {
	sp := c.beginColl("Allgatherv")
	defer c.endColl(sp)
	blocks := c.Gatherv(0, data)
	// Root flattens with a length header; everyone decodes.
	var flat []byte
	if c.rank == 0 {
		flat = flattenBlocks(blocks)
	}
	flat = c.Bcast(0, flat)
	out, err := unflattenBlocks(flat, c.world.p)
	if err != nil {
		panic(fmt.Sprintf("mpi: Allgatherv: %v", err))
	}
	return out
}

func flattenBlocks(blocks [][]byte) []byte {
	total := 4
	for _, b := range blocks {
		total += 4 + len(b)
	}
	out := make([]byte, 0, total)
	out = appendU32(out, uint32(len(blocks)))
	for _, b := range blocks {
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

func unflattenBlocks(flat []byte, wantP int) ([][]byte, error) {
	if len(flat) < 4 {
		return nil, fmt.Errorf("short header")
	}
	p := int(readU32(flat))
	if p != wantP {
		return nil, fmt.Errorf("have %d blocks want %d", p, wantP)
	}
	flat = flat[4:]
	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		if len(flat) < 4 {
			return nil, fmt.Errorf("short block header %d", i)
		}
		n := int(readU32(flat))
		flat = flat[4:]
		if len(flat) < n {
			return nil, fmt.Errorf("short block %d", i)
		}
		out[i] = flat[:n:n]
		flat = flat[n:]
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
