package mpi

import (
	"math"
	"testing"

	"casvm/internal/perfmodel"
	"casvm/internal/trace"
)

// runTraced runs f on a p-rank world with a timeline attached and returns
// the timeline and world.
func runTraced(t *testing.T, p int, f func(c *Comm) error) (*trace.Timeline, *World) {
	t.Helper()
	w := NewWorld(p, perfmodel.Hopper(), 1)
	tl := trace.NewTimeline(p)
	w.SetTimeline(tl)
	if err := w.Run(f); err != nil {
		t.Fatal(err)
	}
	return tl, w
}

// TestFlowEdgeCausality pins the causal invariant on a communication-heavy
// workload (this test runs in the -race matrix): every delivered message's
// recv virtual time is ≥ its send virtual time, the timeline's violation
// counter stays zero, and edge ids are unique after dedup.
func TestFlowEdgeCausality(t *testing.T) {
	const p = 4
	tl, _ := runTraced(t, p, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			c.Charge(float64(1000 * (c.Rank() + 1))) // uneven compute → real waits
			c.Barrier()
			buf := make([]byte, 64*(c.Rank()+1))
			c.Bcast(0, buf)
			c.Gatherv(0, buf)
			c.AllreduceSum([]float64{float64(c.Rank())})
		}
		return nil
	})
	if v := tl.CausalityViolations(); v != 0 {
		t.Fatalf("causality violations: %d", v)
	}
	edges := tl.FlowEdges()
	if len(edges) == 0 {
		t.Fatal("no flow edges recorded")
	}
	seen := map[int64]bool{}
	for _, e := range edges {
		if e.ID <= 0 {
			t.Fatalf("edge id %d, want > 0", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate edge id %d after dedup", e.ID)
		}
		seen[e.ID] = true
		if e.RecvVirtSec < e.SendVirtSec {
			t.Fatalf("edge %d: recv %.17g < send %.17g", e.ID, e.RecvVirtSec, e.SendVirtSec)
		}
		if e.Src == e.Dst {
			t.Fatalf("edge %d: self-send recorded as flow", e.ID)
		}
		if e.LatencySec < 0 || e.BandwidthSec < 0 {
			t.Fatalf("edge %d: negative α–β split", e.ID)
		}
	}
}

// TestSegmentsTileClock: the recorded segments of each rank must tile
// [0, final clock] exactly — contiguous, in order, with no overlap — so the
// critical-path decomposition can telescope to the makespan.
func TestSegmentsTileClock(t *testing.T) {
	const p = 3
	finals := make([]float64, p)
	tl, _ := runTraced(t, p, func(c *Comm) error {
		c.Charge(5000)
		c.Barrier()
		c.ChargeTime(1e-6 * float64(c.Rank()))
		c.Bcast(1, make([]byte, 1024))
		c.Barrier()
		finals[c.Rank()] = c.Clock()
		return nil
	})
	for r, segs := range tl.Segments() {
		if len(segs) == 0 {
			t.Fatalf("rank %d recorded no segments", r)
		}
		cursor := 0.0
		for i, s := range segs {
			if s.Start != cursor {
				t.Fatalf("rank %d seg %d starts at %.17g, want %.17g (gap/overlap)", r, i, s.Start, cursor)
			}
			if s.End < s.Start {
				t.Fatalf("rank %d seg %d negative duration", r, i)
			}
			cursor = s.End
		}
		if cursor != finals[r] {
			t.Fatalf("rank %d tiling ends at %.17g, final clock %.17g", r, cursor, finals[r])
		}
	}
}

// TestInstrumentationClockInvariance: attaching a timeline must not change
// virtual time by a single ulp (the golden-run determinism contract).
func TestInstrumentationClockInvariance(t *testing.T) {
	run := func(tl *trace.Timeline) []float64 {
		w := NewWorld(4, perfmodel.Hopper(), 7)
		w.SetTimeline(tl)
		clocks := make([]float64, 4)
		if err := w.Run(func(c *Comm) error {
			c.Charge(float64(777 * (c.Rank() + 1)))
			c.Allgatherv(make([]byte, 100*(c.Rank()+1)))
			c.Barrier()
			clocks[c.Rank()] = c.Clock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return clocks
	}
	plain := run(nil)
	traced := run(trace.NewTimeline(4))
	for r := range plain {
		if math.Float64bits(plain[r]) != math.Float64bits(traced[r]) {
			t.Fatalf("rank %d clock changed under instrumentation: %.17g vs %.17g", r, plain[r], traced[r])
		}
	}
}
