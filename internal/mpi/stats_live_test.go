package mpi

import (
	"errors"
	"testing"

	"casvm/internal/trace"
)

// Regression for the Stats comp/comm race: the per-rank time slots used to
// be plain float64s readable only after the world join, but the degraded
// completion path and live metric snapshots read them while rank goroutines
// still charge time. Under -race this fails on any non-atomic access.
func TestStatsReadableWhileWorldRuns(t *testing.T) {
	w := testWorld(4)
	w.SetTimeline(trace.NewTimeline(4))
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		s := w.Stats()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.MaxCompSec()
			_ = s.MaxCommSec()
			_ = s.CommRatio()
			_ = s.TotalFlops()
			_ = s.TotalBytes()
			_ = s.LostRanks()
		}
	}()

	boom := errors.New("rank 3 crashed")
	err := runWithDeadline(t, w, func(c *Comm) error {
		for i := 0; i < 200; i++ {
			c.Charge(1000)
			c.AllreduceSum([]float64{float64(c.Rank()), 1})
			if c.Rank() == 3 && i == 100 {
				return boom // leaves survivors' stats live past the failure
			}
		}
		return nil
	})
	close(stop)
	<-readerDone

	if !errors.Is(err, boom) {
		t.Fatalf("want the injected crash, got %v", err)
	}
	// After the join the survivors' charges must all be visible.
	s := w.Stats()
	if s.TotalFlops() == 0 || s.MaxCompSec() == 0 {
		t.Fatal("charged time/flops lost")
	}
}
