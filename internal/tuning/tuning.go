// Package tuning provides model selection for the CA-SVM trainers: k-fold
// cross-validation and (C, γ) grid search. Every candidate evaluation is a
// full distributed training run with the configured method, so the search
// reflects the partitioned methods' real behaviour (a γ that suits Dis-SMO
// may differ from the best γ for CP-SVM's per-cluster models).
package tuning

import (
	"fmt"
	"math/rand"
	"sort"

	"casvm/internal/core"
	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/model"
)

// Fold is one cross-validation split.
type Fold struct {
	TrainRows []int
	ValRows   []int
}

// KFold partitions m sample indices into k shuffled folds. k must be ≥ 2
// and ≤ m.
func KFold(m, k int, seed int64) ([]Fold, error) {
	if k < 2 || k > m {
		return nil, fmt.Errorf("tuning: k=%d for m=%d", k, m)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(m)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * m / k
		hi := (f + 1) * m / k
		val := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, m-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		sort.Ints(val)
		sort.Ints(train)
		folds[f] = Fold{TrainRows: train, ValRows: val}
	}
	return folds, nil
}

// CrossValidate trains params on each fold's training rows and returns the
// per-fold validation accuracies.
func CrossValidate(x *la.Matrix, y []float64, params core.Params, folds []Fold) ([]float64, error) {
	accs := make([]float64, len(folds))
	for f, fold := range folds {
		tx := x.Subset(fold.TrainRows)
		ty := subset(y, fold.TrainRows)
		vx := x.Subset(fold.ValRows)
		vy := subset(y, fold.ValRows)
		p := params
		if p.P > tx.Rows() {
			p.P = tx.Rows()
		}
		out, err := core.Train(tx, ty, p)
		if err != nil {
			return nil, fmt.Errorf("tuning: fold %d: %w", f, err)
		}
		accs[f] = out.Set.Accuracy(vx, vy)
	}
	return accs, nil
}

// Grid is the (C, γ) candidate set for a Gaussian-kernel search.
type Grid struct {
	C     []float64
	Gamma []float64
}

// DefaultGrid returns the usual logarithmic grid around the heuristic γ.
func DefaultGrid(gammaCenter float64) Grid {
	return Grid{
		C:     []float64{0.1, 1, 10},
		Gamma: []float64{gammaCenter / 4, gammaCenter, gammaCenter * 4},
	}
}

// Candidate is one evaluated grid point.
type Candidate struct {
	C, Gamma     float64
	MeanAccuracy float64
	FoldAccuracy []float64
}

// GridSearch evaluates every (C, γ) pair with k-fold cross-validation and
// returns the best candidate (ties break toward smaller C then smaller γ,
// preferring the simpler model) plus all evaluations sorted best-first.
func GridSearch(x *la.Matrix, y []float64, base core.Params, grid Grid, k int, seed int64) (Candidate, []Candidate, error) {
	if len(grid.C) == 0 || len(grid.Gamma) == 0 {
		return Candidate{}, nil, fmt.Errorf("tuning: empty grid")
	}
	folds, err := KFold(x.Rows(), k, seed)
	if err != nil {
		return Candidate{}, nil, err
	}
	var all []Candidate
	for _, c := range grid.C {
		for _, g := range grid.Gamma {
			p := base
			p.C = c
			p.Kernel = kernel.RBF(g)
			accs, err := CrossValidate(x, y, p, folds)
			if err != nil {
				return Candidate{}, nil, err
			}
			var mean float64
			for _, a := range accs {
				mean += a
			}
			mean /= float64(len(accs))
			all = append(all, Candidate{C: c, Gamma: g, MeanAccuracy: mean, FoldAccuracy: accs})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].MeanAccuracy != all[j].MeanAccuracy {
			return all[i].MeanAccuracy > all[j].MeanAccuracy
		}
		if all[i].C != all[j].C {
			return all[i].C < all[j].C
		}
		return all[i].Gamma < all[j].Gamma
	})
	return all[0], all, nil
}

// Refit trains the winning candidate on the full dataset and returns the
// model set.
func Refit(x *la.Matrix, y []float64, base core.Params, best Candidate) (*model.Set, error) {
	p := base
	p.C = best.C
	p.Kernel = kernel.RBF(best.Gamma)
	out, err := core.Train(x, y, p)
	if err != nil {
		return nil, err
	}
	return out.Set, nil
}

func subset(y []float64, rows []int) []float64 {
	out := make([]float64, len(rows))
	for k, i := range rows {
		out[k] = y[i]
	}
	return out
}
