package tuning

import (
	"testing"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
)

func tuningSet(t *testing.T) *data.Dataset {
	t.Helper()
	d, err := data.Generate(data.MixtureSpec{
		Name: "tune", Train: 400, Test: 0, Features: 6, Clusters: 3,
		Separation: 7, Noise: 1, PosFrac: []float64{0.5}, LabelNoise: 0.02,
		Margin: 0.8, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKFoldPartition(t *testing.T) {
	folds, err := KFold(103, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds=%d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f.TrainRows)+len(f.ValRows) != 103 {
			t.Fatalf("fold covers %d rows", len(f.TrainRows)+len(f.ValRows))
		}
		for _, i := range f.ValRows {
			seen[i]++
		}
		// Train and val are disjoint.
		inVal := map[int]bool{}
		for _, i := range f.ValRows {
			inVal[i] = true
		}
		for _, i := range f.TrainRows {
			if inVal[i] {
				t.Fatal("train/val overlap")
			}
		}
	}
	// Every sample appears in exactly one validation fold.
	if len(seen) != 103 {
		t.Fatalf("validation covers %d of 103 samples", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d in %d folds", i, c)
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	if _, err := KFold(10, 1, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := KFold(3, 5, 1); err == nil {
		t.Error("k>m should fail")
	}
}

func TestCrossValidate(t *testing.T) {
	d := tuningSet(t)
	folds, err := KFold(d.M(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams(core.MethodRACA, 2)
	p.Kernel = kernel.RBF(1.0 / 12)
	accs, err := CrossValidate(d.X, d.Y, p, folds)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 4 {
		t.Fatalf("accs=%d", len(accs))
	}
	for f, a := range accs {
		if a < 0.8 {
			t.Errorf("fold %d accuracy %.3f", f, a)
		}
	}
}

func TestGridSearchFindsReasonablePoint(t *testing.T) {
	d := tuningSet(t)
	base := core.DefaultParams(core.MethodRACA, 2)
	grid := Grid{
		C: []float64{1},
		// Include an absurd γ; the search must avoid it.
		Gamma: []float64{1.0 / 12, 50},
	}
	best, all, err := GridSearch(d.X, d.Y, base, grid, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("evaluated %d candidates", len(all))
	}
	if best.Gamma != 1.0/12 {
		t.Errorf("picked gamma=%v; overfitting γ=50 should lose", best.Gamma)
	}
	if best.MeanAccuracy < 0.85 {
		t.Errorf("best accuracy %.3f", best.MeanAccuracy)
	}
	// Sorted best-first.
	if all[0].MeanAccuracy < all[1].MeanAccuracy {
		t.Error("candidates not sorted")
	}

	set, err := Refit(d.X, d.Y, base, best)
	if err != nil {
		t.Fatal(err)
	}
	if acc := set.Accuracy(d.X, d.Y); acc < 0.9 {
		t.Errorf("refit train accuracy %.3f", acc)
	}
}

func TestGridSearchEmptyGrid(t *testing.T) {
	d := tuningSet(t)
	if _, _, err := GridSearch(d.X, d.Y, core.DefaultParams(core.MethodRACA, 2), Grid{}, 3, 1); err == nil {
		t.Error("empty grid should fail")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(0.1)
	if len(g.C) != 3 || len(g.Gamma) != 3 {
		t.Fatal("default grid shape")
	}
	if g.Gamma[1] != 0.1 {
		t.Error("center gamma should be preserved")
	}
}
