package kernel

import (
	"math"

	"casvm/internal/la"
	"casvm/internal/pool"
)

// Tile engine: blocked evaluation of kernel-matrix blocks. The kernel
// matrix is a rank-k product in disguise — K = f(X·Zᵀ, ‖x‖², ‖z‖²) — so a
// block of K rows or a query×SV panel is one GEMM block plus an
// elementwise finish, not len(rows) independent row scans.
//
// Two flavors exist because the repo has two bit-distinct row-at-a-time
// paths and the golden E2E hashes pin both:
//
//   - Tile matches Params.Row elementwise (dense Gaussian goes through
//     la.SqDist, not the norms identity) and charges Row's flop formula
//     per tile row. It feeds training-scan fills (RowCache, RowParallel).
//   - CrossTile matches Params.Eval elementwise (cross-matrix Gaussian
//     always uses the norms identity) and feeds batch prediction.
//
// Every element keeps the exact summation order of the scalar call it
// replaces, so results are bit-identical at every tile shape and thread
// count; the tile only changes the memory access pattern.

// Tile fills dsts[r][lo:hi] with K(rows[r], j) for j in [lo, hi) over the
// columns of a single training matrix, streaming each column row once for
// all tile rows (the row-at-a-time path streams the matrix once per row).
// Each dsts[r] must have length ≥ a.Rows(). Elementwise results are
// bit-identical to Params.Row; the returned flop charge is the sum of
// Row's per-row charges. Work is split over up to `threads` pool workers
// along the column axis with the same deterministic chunking as
// RowParallel.
func (p Params) Tile(a *la.Matrix, rows []int, dsts [][]float64, threads int) float64 {
	m := a.Rows()
	if len(rows) == 0 {
		return 0
	}
	if p.Kind == Gaussian {
		a.EnsureNorms() // not goroutine-safe lazily; force it up front
	}
	for r := range dsts {
		dsts[r] = dsts[r][:m]
	}
	if threads <= 1 || m < 2*rowGrain {
		p.tileCols(a, rows, dsts, 0, m)
	} else {
		pool.Shared().ParallelFor(threads, m, rowGrain, func(lo, hi int) {
			p.tileCols(a, rows, dsts, lo, hi)
		})
	}
	var flops float64
	for _, i := range rows {
		if a.Sparse() {
			ix, _ := a.SparseRow(i)
			flops += float64(2*len(ix)*m + m)
		} else {
			flops += float64(2*a.Features()*m + m)
		}
	}
	return flops
}

// tileRowBlock bounds how many tile rows have their handles hoisted into
// stack arrays at once; larger tiles process in groups. Hoisting matters:
// re-resolving SparseRow/SqNormRow per element costs more than the dot for
// short rows, which is exactly the single-row fill of a training scan.
const tileRowBlock = 8

// tileCols fills the column range [lo, hi) of every tile row. The column
// row j is loaded once and evaluated against all tile rows (column-outer
// order); each element's arithmetic is exactly Row's, with the tile row as
// the first argument of the dot/distance primitive.
func (p Params) tileCols(a *la.Matrix, rows []int, dsts [][]float64, lo, hi int) {
	for base := 0; base < len(rows); base += tileRowBlock {
		n := len(rows) - base
		if n > tileRowBlock {
			n = tileRowBlock
		}
		p.tileColsBlock(a, rows[base:base+n], dsts[base:base+n], lo, hi)
	}
}

func (p Params) tileColsBlock(a *la.Matrix, rows []int, dsts [][]float64, lo, hi int) {
	if a.Sparse() {
		var ri [tileRowBlock][]int32
		var rv [tileRowBlock][]float64
		var rn [tileRowBlock]float64
		for r, i := range rows {
			ri[r], rv[r] = a.SparseRow(i)
			if p.Kind == Gaussian {
				rn[r] = a.SqNormRow(i)
			}
		}
		for j := lo; j < hi; j++ {
			ji, jv := a.SparseRow(j)
			if p.Kind == Gaussian {
				nj := a.SqNormRow(j)
				for r := range rows {
					d := rn[r] + nj - 2*la.SpDot(ri[r], rv[r], ji, jv)
					if d < 0 {
						d = 0
					}
					dsts[r][j] = math.Exp(-p.Gamma * d)
				}
			} else {
				for r := range rows {
					dsts[r][j] = p.fromDot(la.SpDot(ri[r], rv[r], ji, jv), 0)
				}
			}
		}
		return
	}
	var xr [tileRowBlock][]float64
	for r, i := range rows {
		xr[r] = a.DenseRow(i)
	}
	for j := lo; j < hi; j++ {
		xj := a.DenseRow(j)
		if p.Kind == Gaussian {
			for r := range rows {
				dsts[r][j] = math.Exp(-p.Gamma * la.SqDist(xr[r], xj))
			}
		} else {
			for r := range rows {
				dsts[r][j] = p.fromDot(la.Dot(xr[r], xj), 0)
			}
		}
	}
}

// CrossTile fills dst[r*ld + (c-clo)] = K(rows[r] of a, c of b) for
// c in [clo, chi), computing the whole inner-product block with one
// la.MulTile call and finishing elementwise. Every element is bit-identical
// to Params.Eval(a, rows[r], b, c) — the cross-matrix Gaussian path always
// goes through the norms identity, like Eval. a and b may be the same
// matrix provided norms are cached (CrossTile ensures them for Gaussian).
//
// dst must have length ≥ (len(rows)-1)*ld + (chi-clo) and ld ≥ chi-clo.
// The returned flop charge follows Row-style accounting per tile row:
// 2·nnz(row)·w + w over the w = chi-clo columns.
func (p Params) CrossTile(a *la.Matrix, rows []int, b *la.Matrix, clo, chi int, dst []float64, ld int) float64 {
	w := chi - clo
	if w <= 0 || len(rows) == 0 {
		return 0
	}
	if p.Kind == Gaussian {
		a.EnsureNorms()
		b.EnsureNorms()
	}
	la.MulTile(a, rows, b, clo, chi, dst, ld)
	var flops float64
	for r, i := range rows {
		out := dst[r*ld : r*ld+w]
		if p.Kind == Gaussian {
			ni := a.SqNormRow(i)
			for c := clo; c < chi; c++ {
				d := ni + b.SqNormRow(c) - 2*out[c-clo]
				if d < 0 {
					d = 0
				}
				out[c-clo] = math.Exp(-p.Gamma * d)
			}
		} else {
			for k, dot := range out {
				out[k] = p.fromDot(dot, 0)
			}
		}
		if a.Sparse() {
			ix, _ := a.SparseRow(i)
			flops += float64(2*len(ix)*w + w)
		} else {
			flops += float64(2*a.Features()*w + w)
		}
	}
	return flops
}

// CrossRowPair computes two cross-matrix kernel columns in one sweep over
// a's rows: dstH[i] = K(a_i, bh_jh) and dstL[i] = K(a_i, bl_jl). Each
// column is bit-identical to the corresponding CrossRow call, and the
// returned flop charge is the sum of the two CrossRow charges — the fusion
// only halves the number of passes over a (Dis-SMO applies the high and
// low updates back to back every iteration).
func (p Params) CrossRowPair(a *la.Matrix, bh *la.Matrix, jh int, bl *la.Matrix, jl int, dstH, dstL []float64) float64 {
	m := a.Rows()
	dstH = dstH[:m]
	dstL = dstL[:m]
	if p.Kind == Gaussian {
		a.EnsureNorms()
		bh.EnsureNorms()
		bl.EnsureNorms()
	}
	ch := p.openCrossCol(a, bh, jh)
	cl := p.openCrossCol(a, bl, jl)
	for i := 0; i < m; i++ {
		dstH[i] = ch.eval(p, a, i)
		dstL[i] = cl.eval(p, a, i)
	}
	ch.close()
	cl.close()
	return float64(2*a.NNZ() + (ch.nnz+1)*m + (cl.nnz+1)*m)
}

// crossCol is one prepared b-side column of a CrossRow evaluation: the b
// row in whichever form the matching CrossRow storage path uses.
type crossCol struct {
	mode  int // 0: sparse×sparse, 1: dense×dense, 2: mixed (densified)
	bi    []int32
	bv    []float64
	bNorm float64   // sparse×sparse Gaussian: b.SqNormRow(j)
	xj    []float64 // dense or densified b row
	xjsq  float64   // mixed Gaussian: la.SqNorm(xj)
	nnz   int       // CrossRow's nnzJ term
	buf   *[]float64
}

func (p Params) openCrossCol(a, b *la.Matrix, j int) crossCol {
	var c crossCol
	if b.Sparse() {
		bi, _ := b.SparseRow(j)
		c.nnz = len(bi)
	} else {
		c.nnz = b.Features()
	}
	switch {
	case a.Sparse() && b.Sparse():
		c.mode = 0
		c.bi, c.bv = b.SparseRow(j)
		if p.Kind == Gaussian {
			c.bNorm = b.SqNormRow(j)
		}
	case !a.Sparse() && !b.Sparse():
		c.mode = 1
		c.xj = b.DenseRow(j)
	default:
		c.mode = 2
		c.buf = getScratch(b.Features())
		c.xj = b.RowInto(j, *c.buf)
		c.xjsq = la.SqNorm(c.xj)
	}
	return c
}

func (c *crossCol) eval(p Params, a *la.Matrix, i int) float64 {
	switch c.mode {
	case 0:
		ii, iv := a.SparseRow(i)
		dot := la.SpDot(ii, iv, c.bi, c.bv)
		if p.Kind == Gaussian {
			d := a.SqNormRow(i) + c.bNorm - 2*dot
			if d < 0 {
				d = 0
			}
			return math.Exp(-p.Gamma * d)
		}
		return p.fromDot(dot, 0)
	case 1:
		if p.Kind == Gaussian {
			return math.Exp(-p.Gamma * la.SqDist(a.DenseRow(i), c.xj))
		}
		return p.fromDot(la.Dot(a.DenseRow(i), c.xj), 0)
	default:
		if p.Kind == Gaussian {
			return math.Exp(-p.Gamma * a.SqDistVec(i, c.xj, c.xjsq))
		}
		return p.fromDot(a.DotVec(i, c.xj), 0)
	}
}

func (c *crossCol) close() {
	if c.buf != nil {
		putScratch(c.buf)
		c.buf = nil
	}
}
