package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"casvm/internal/la"
)

func denseMat(rng *rand.Rand, m, n int) *la.Matrix {
	d := make([]float64, m*n)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return la.NewDense(m, n, d)
}

func sparseMat(rng *rand.Rand, m, n int, density float64) *la.Matrix {
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				ix = append(ix, int32(j))
				vx = append(vx, rng.NormFloat64())
			}
		}
		rp[i+1] = int32(len(ix))
	}
	return la.NewSparse(m, n, rp, ix, vx)
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Linear, Polynomial, Gaussian, Sigmoid} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("roundtrip %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("fourier"); err == nil {
		t.Error("unknown kind should fail")
	}
	if got, _ := ParseKind("rbf"); got != Gaussian {
		t.Error("rbf alias should parse to Gaussian")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Kind: Gaussian}).Validate(); err == nil {
		t.Error("gaussian with gamma=0 should fail")
	}
	if err := RBF(0.5).Validate(); err != nil {
		t.Errorf("valid rbf failed: %v", err)
	}
	if err := (Params{Kind: Kind(99)}).Validate(); err == nil {
		t.Error("bad kind should fail")
	}
	if err := (Params{Kind: Polynomial, Degree: -1}).Validate(); err == nil {
		t.Error("negative degree should fail")
	}
}

func TestEvalKnownValues(t *testing.T) {
	a := la.NewDense(2, 2, []float64{1, 0, 0, 1})
	// linear: <e1,e2> = 0
	if got := (Params{Kind: Linear}).Eval(a, 0, a, 1); got != 0 {
		t.Errorf("linear=%v", got)
	}
	// gaussian: exp(-γ·2)
	p := RBF(0.5)
	if got := p.Eval(a, 0, a, 1); !almostEq(got, math.Exp(-1), 1e-12) {
		t.Errorf("gaussian=%v want %v", got, math.Exp(-1))
	}
	if got := p.Eval(a, 0, a, 0); got != 1 {
		t.Errorf("gaussian self=%v want 1", got)
	}
	// polynomial (a=1, r=1, d=2): (0+1)^2 = 1
	pp := Params{Kind: Polynomial, Coef: 1, Degree: 2}
	if got := pp.Eval(a, 0, a, 1); got != 1 {
		t.Errorf("poly=%v", got)
	}
	// sigmoid: tanh(1·1+0) on <e1,e1>
	ps := Params{Kind: Sigmoid}
	if got := ps.Eval(a, 0, a, 0); !almostEq(got, math.Tanh(1), 1e-12) {
		t.Errorf("sigmoid=%v", got)
	}
}

func TestIntPow(t *testing.T) {
	if intPow(2, 10) != 1024 {
		t.Errorf("2^10=%v", intPow(2, 10))
	}
	if intPow(3, 0) != 1 {
		t.Errorf("3^0=%v", intPow(3, 0))
	}
	if intPow(-2, 3) != -8 {
		t.Errorf("(-2)^3=%v", intPow(-2, 3))
	}
}

func TestDefaultDegreeAndScale(t *testing.T) {
	p := Params{Kind: Polynomial}
	// defaults: a=1, d=3, r=0 -> dot^3
	a := la.NewDense(2, 1, []float64{2, 3})
	if got := p.Eval(a, 0, a, 1); got != 216 {
		t.Errorf("default poly=%v want 216", got)
	}
}

func TestRowAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mat := range []*la.Matrix{denseMat(rng, 12, 5), sparseMat(rng, 12, 5, 0.5)} {
		for _, p := range []Params{{Kind: Linear}, RBF(0.3), {Kind: Polynomial, Coef: 1, Degree: 2}, {Kind: Sigmoid, Coef: -0.5}} {
			dst := make([]float64, 12)
			flops := p.Row(mat, 3, dst)
			if flops <= 0 {
				t.Errorf("%v: flops=%v", p.Kind, flops)
			}
			for j := range dst {
				want := p.Eval(mat, 3, mat, j)
				if !almostEq(dst[j], want, 1e-9) {
					t.Errorf("%v sparse=%v: Row[%d]=%v want %v", p.Kind, mat.Sparse(), j, dst[j], want)
				}
			}
		}
	}
}

func TestEvalCrossMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	de := denseMat(rng, 6, 4)
	// Make sparse copy.
	sp := sparseFromDense(de)
	for _, p := range []Params{{Kind: Linear}, RBF(0.7)} {
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				same := p.Eval(de, i, de, j)
				cross := p.Eval(de, i, sp, j)
				crossSp := p.Eval(sp, i, de, j)
				spSp := p.Eval(sp, i, sp, j)
				if !almostEq(same, cross, 1e-9) || !almostEq(same, crossSp, 1e-9) || !almostEq(same, spSp, 1e-9) {
					t.Fatalf("%v cross-matrix mismatch at %d,%d: %v %v %v %v", p.Kind, i, j, same, cross, crossSp, spSp)
				}
			}
		}
	}
}

func sparseFromDense(de *la.Matrix) *la.Matrix {
	m, n := de.Rows(), de.Features()
	rp := make([]int32, m+1)
	var ix []int32
	var vx []float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := de.At(i, j)
			if v != 0 {
				ix = append(ix, int32(j))
				vx = append(vx, v)
			}
		}
		rp[i+1] = int32(len(ix))
	}
	return la.NewSparse(m, n, rp, ix, vx)
}

func TestEvalVec(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := denseMat(rng, 5, 3)
	x := []float64{1, -1, 0.5}
	xsq := la.SqNorm(x)
	for _, p := range []Params{{Kind: Linear}, RBF(0.4)} {
		for i := 0; i < 5; i++ {
			b := la.NewDense(1, 3, append([]float64{}, x...))
			want := p.Eval(a, i, b, 0)
			if got := p.EvalVec(a, i, x, xsq); !almostEq(got, want, 1e-9) {
				t.Errorf("%v EvalVec[%d]=%v want %v", p.Kind, i, got, want)
			}
		}
	}
}

// Property: kernels are symmetric; the Gaussian kernel is in (0, 1].
func TestKernelProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	mat := denseMat(rng, 10, 4)
	p := RBF(0.9)
	f := func(iu, ju uint8) bool {
		i, j := int(iu)%10, int(ju)%10
		kij := p.Eval(mat, i, mat, j)
		kji := p.Eval(mat, j, mat, i)
		if !almostEq(kij, kji, 1e-12) {
			return false
		}
		return kij > 0 && kij <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestRowCacheLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	mat := denseMat(rng, 8, 3)
	c := NewRowCache(RBF(0.5), mat, 3)
	r0 := append([]float64{}, c.Row(0)...)
	c.Row(1)
	c.Row(2)
	if h, m, _ := c.Stats(); h != 0 || m != 3 {
		t.Fatalf("stats after fills: h=%d m=%d", h, m)
	}
	c.Row(0) // hit
	if h, _, _ := c.Stats(); h != 1 {
		t.Fatal("expected a hit")
	}
	c.Row(3) // evicts 1 (LRU)
	c.Row(1) // miss again
	if _, m, _ := c.Stats(); m != 5 {
		t.Fatalf("misses=%d want 5", m)
	}
	// Values stay correct after eviction/reuse.
	got := c.Row(0)
	for j := range got {
		if !almostEq(got[j], r0[j], 1e-12) {
			t.Fatal("row content corrupted by buffer reuse")
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d want 3", c.Len())
	}
}

func TestRowCacheMinCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	mat := denseMat(rng, 4, 2)
	c := NewRowCache(RBF(1), mat, 0)
	c.Row(0)
	c.Row(1)
	if c.Len() != 2 {
		t.Fatalf("min capacity should be 2, Len=%d", c.Len())
	}
}

func TestRowCacheDiagAndFlops(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mat := denseMat(rng, 4, 2)
	c := NewRowCache(RBF(1), mat, 4)
	if c.Diag(2) != 1 {
		t.Error("gaussian diag must be 1")
	}
	c.Row(0)
	if f := c.ResetFlops(); f <= 0 {
		t.Error("flops should accumulate on miss")
	}
	if f := c.ResetFlops(); f != 0 {
		t.Error("ResetFlops should zero")
	}
	lin := NewRowCache(Params{Kind: Linear}, mat, 4)
	want := la.SqNorm(mat.DenseRow(2))
	if got := lin.Diag(2); !almostEq(got, want, 1e-12) {
		t.Errorf("linear diag=%v want %v", got, want)
	}
}

func TestCrossRowAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := denseMat(rng, 15, 6)
	bsp := sparseMat(rng, 9, 6, 0.5)
	bde := denseMat(rng, 9, 6)
	asp := sparseMat(rng, 15, 6, 0.5)
	dst := make([]float64, 15)
	for _, p := range []Params{{Kind: Linear}, RBF(0.4), {Kind: Sigmoid, Coef: 0.2}} {
		for _, pair := range []struct{ A, B *la.Matrix }{
			{a, bde}, {a, bsp}, {asp, bsp}, {asp, bde},
		} {
			for j := 0; j < pair.B.Rows(); j++ {
				flops := p.CrossRow(pair.A, pair.B, j, dst)
				if flops <= 0 {
					t.Fatalf("%v: flops=%v", p.Kind, flops)
				}
				for i := 0; i < pair.A.Rows(); i++ {
					want := p.Eval(pair.A, i, pair.B, j)
					if !almostEq(dst[i], want, 1e-9) {
						t.Fatalf("%v A.sparse=%v B.sparse=%v: [%d,%d]=%v want %v",
							p.Kind, pair.A.Sparse(), pair.B.Sparse(), i, j, dst[i], want)
					}
				}
			}
		}
	}
}

func TestFromDotAllKinds(t *testing.T) {
	a := la.NewDense(2, 2, []float64{1, 2, 3, 4})
	// Exercise scaleA and degree defaults plus explicit values.
	p := Params{Kind: Sigmoid, ScaleA: 2, Coef: -1}
	want := math.Tanh(2*(1*3+2*4) - 1)
	if got := p.Eval(a, 0, a, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("sigmoid scaled=%v want %v", got, want)
	}
	pp := Params{Kind: Polynomial, ScaleA: 0.5, Coef: 2, Degree: 1}
	wantP := 0.5*11 + 2
	if got := pp.Eval(a, 0, a, 1); !almostEq(got, wantP, 1e-12) {
		t.Errorf("poly scaled=%v want %v", got, wantP)
	}
}
