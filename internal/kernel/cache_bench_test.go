package kernel

import (
	"math/rand"
	"testing"
)

var benchRow []float64

// BenchmarkRowCache measures the LRU under the SMO access pattern: a hot
// working set that mostly hits (slot lookup + intrusive-list move) with a
// Zipf-ish tail forcing in-place evictions. The hit path must not allocate.
func BenchmarkRowCache(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := 1024
	x := denseMat(rng, m, 16)
	run := func(b *testing.B, capacity int) {
		c := NewRowCache(RBF(0.1), x, capacity)
		// Warm the hot set so steady state dominates.
		for i := 0; i < capacity; i++ {
			c.Row(i % m)
		}
		idx := make([]int, 4096)
		for i := range idx {
			if rng.Intn(10) < 9 {
				idx[i] = rng.Intn(capacity) // hit in the hot set
			} else {
				idx[i] = rng.Intn(m) // tail access, may evict
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRow = c.Row(idx[i%len(idx)])
		}
	}
	b.Run("cap64", func(b *testing.B) { run(b, 64) })
	b.Run("cap512", func(b *testing.B) { run(b, 512) })
}

// BenchmarkRowCacheHit isolates the pure hit path (lookup + LRU bump).
func BenchmarkRowCacheHit(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := denseMat(rng, 512, 16)
	c := NewRowCache(RBF(0.1), x, 8)
	c.Row(3)
	c.Row(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRow = c.Row(3 + i&1)
	}
}
