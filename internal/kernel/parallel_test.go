package kernel

import (
	"math/rand"
	"testing"
)

func TestRowParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, mat := range []int{0, 1} { // dense, sparse
		var a = denseMat(rng, 3000, 12)
		if mat == 1 {
			a = sparseMat(rng, 3000, 40, 0.25)
		}
		for _, p := range []Params{RBF(0.1), {Kind: Linear}, {Kind: Polynomial, Coef: 1, Degree: 2}} {
			serial := make([]float64, a.Rows())
			par := make([]float64, a.Rows())
			fs := p.Row(a, 7, serial)
			fp := p.RowParallel(a, 7, par, 4)
			if fs != fp {
				t.Errorf("kind=%v sparse=%v: flops %v vs %v", p.Kind, a.Sparse(), fs, fp)
			}
			for j := range serial {
				if serial[j] != par[j] {
					t.Fatalf("kind=%v sparse=%v: row[%d] %v vs %v", p.Kind, a.Sparse(), j, serial[j], par[j])
				}
			}
		}
	}
}

func TestRowParallelSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := denseMat(rng, 100, 5)
	dst := make([]float64, 100)
	// Small matrix: must not spawn but still produce correct values.
	p := RBF(0.5)
	p.RowParallel(a, 3, dst, 8)
	want := make([]float64, 100)
	p.Row(a, 3, want)
	for j := range want {
		if dst[j] != want[j] {
			t.Fatal("fallback path wrong")
		}
	}
}

func TestCacheWithThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := denseMat(rng, 2500, 8)
	c1 := NewRowCache(RBF(0.2), a, 8)
	c4 := NewRowCache(RBF(0.2), a, 8)
	c4.SetThreads(4)
	for _, i := range []int{0, 100, 2499, 0} {
		r1 := c1.Row(i)
		r4 := c4.Row(i)
		for j := range r1 {
			if r1[j] != r4[j] {
				t.Fatalf("threaded cache differs at row %d col %d", i, j)
			}
		}
	}
	_, m1, f1 := c1.Stats()
	_, m4, f4 := c4.Stats()
	if m1 != m4 || f1 != f4 {
		t.Fatal("miss/flop accounting must not depend on threads")
	}
}
