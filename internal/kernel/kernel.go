// Package kernel implements the standard SVM kernel functions of the
// paper's Table I — linear, polynomial, Gaussian (RBF) and sigmoid — plus a
// least-recently-used cache of kernel rows, which is the dominant data
// structure of the shared-memory SMO solver.
//
// Kernel evaluations are counted in flops so that the virtual-time machine
// model (internal/perfmodel) can charge computation without timing wall
// clocks.
package kernel

import (
	"fmt"
	"math"
	"sync"

	"casvm/internal/la"
)

// scratch recycles the dense buffers the mixed-storage (sparse×dense)
// paths need to densify one row. Eval and CrossRow sit on the predict hot
// path, where a per-evaluation make([]float64, n) would dominate the
// allocation profile; a sync.Pool keeps the buffers alive across calls and
// stays safe for the concurrent multi-rank training paths.
var scratch sync.Pool

// getScratch returns a pooled dense buffer of length n via a stable
// pointer (so returning it to the pool allocates nothing).
func getScratch(n int) *[]float64 {
	if v := scratch.Get(); v != nil {
		p := v.(*[]float64)
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	buf := make([]float64, n)
	return &buf
}

func putScratch(p *[]float64) {
	scratch.Put(p)
}

// Kind selects one of the standard kernel functions.
type Kind int

const (
	// Linear is K(x,z) = xᵀz.
	Linear Kind = iota
	// Polynomial is K(x,z) = (a·xᵀz + r)^d.
	Polynomial
	// Gaussian is K(x,z) = exp(−γ‖x−z‖²). This is the kernel the
	// paper's communication-avoiding analysis (§IV-A) assumes.
	Gaussian
	// Sigmoid is K(x,z) = tanh(a·xᵀz + r).
	Sigmoid
)

// String returns the lower-case kernel name used in model files.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	case Gaussian:
		return "gaussian"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("kernel.Kind(%d)", int(k))
	}
}

// ParseKind converts a kernel name back to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "linear":
		return Linear, nil
	case "polynomial", "poly":
		return Polynomial, nil
	case "gaussian", "rbf":
		return Gaussian, nil
	case "sigmoid":
		return Sigmoid, nil
	}
	return 0, fmt.Errorf("kernel: unknown kind %q", s)
}

// Params bundles a kernel function with its hyper-parameters. The zero
// value is a linear kernel.
type Params struct {
	Kind   Kind
	Gamma  float64 // Gaussian: γ
	Coef   float64 // Polynomial/Sigmoid: additive constant r
	ScaleA float64 // Polynomial/Sigmoid: multiplier a (0 means 1)
	Degree int     // Polynomial: d (0 means 3)
}

// RBF returns Gaussian-kernel parameters with the given γ.
func RBF(gamma float64) Params { return Params{Kind: Gaussian, Gamma: gamma} }

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch p.Kind {
	case Linear, Polynomial, Gaussian, Sigmoid:
	default:
		return fmt.Errorf("kernel: invalid kind %d", int(p.Kind))
	}
	if p.Kind == Gaussian && p.Gamma <= 0 {
		return fmt.Errorf("kernel: gaussian needs gamma > 0, got %g", p.Gamma)
	}
	if p.Kind == Polynomial && p.Degree < 0 {
		return fmt.Errorf("kernel: negative degree %d", p.Degree)
	}
	return nil
}

func (p Params) scaleA() float64 {
	if p.ScaleA == 0 {
		return 1
	}
	return p.ScaleA
}

func (p Params) degree() int {
	if p.Degree == 0 {
		return 3
	}
	return p.Degree
}

// fromDot finishes a kernel evaluation given the inner product (and, for
// Gaussian, the squared distance).
func (p Params) fromDot(dot, sqdist float64) float64 {
	switch p.Kind {
	case Linear:
		return dot
	case Polynomial:
		return intPow(p.scaleA()*dot+p.Coef, p.degree())
	case Gaussian:
		return math.Exp(-p.Gamma * sqdist)
	case Sigmoid:
		return math.Tanh(p.scaleA()*dot + p.Coef)
	default:
		panic("kernel: invalid kind")
	}
}

func intPow(x float64, d int) float64 {
	r := 1.0
	for ; d > 0; d >>= 1 {
		if d&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// Eval computes K(row_i of a, row_j of b) where a and b may be the same
// matrix. For the Gaussian kernel both matrices must have cached norms
// (la.Matrix.EnsureNorms) or be dense.
func (p Params) Eval(a *la.Matrix, i int, b *la.Matrix, j int) float64 {
	if p.Kind == Gaussian {
		if a == b {
			return math.Exp(-p.Gamma * a.SqDistRows(i, j))
		}
		// Cross-matrix distance via norms and dot.
		a.EnsureNorms()
		b.EnsureNorms()
		var dot float64
		if a.Sparse() && b.Sparse() {
			ai, av := a.SparseRow(i)
			bi, bv := b.SparseRow(j)
			dot = la.SpDot(ai, av, bi, bv)
		} else if !a.Sparse() && !b.Sparse() {
			dot = la.Dot(a.DenseRow(i), b.DenseRow(j))
		} else {
			// Mixed: densify the b row into a pooled scratch buffer.
			buf := getScratch(b.Features())
			dot = a.DotVec(i, b.RowInto(j, *buf))
			putScratch(buf)
		}
		d := a.SqNormRow(i) + b.SqNormRow(j) - 2*dot
		if d < 0 {
			d = 0
		}
		return math.Exp(-p.Gamma * d)
	}
	var dot float64
	switch {
	case a == b:
		dot = a.DotRows(i, j)
	case a.Sparse() && b.Sparse():
		ai, av := a.SparseRow(i)
		bi, bv := b.SparseRow(j)
		dot = la.SpDot(ai, av, bi, bv)
	case !a.Sparse() && !b.Sparse():
		dot = la.Dot(a.DenseRow(i), b.DenseRow(j))
	default:
		buf := getScratch(b.Features())
		dot = a.DotVec(i, b.RowInto(j, *buf))
		putScratch(buf)
	}
	return p.fromDot(dot, 0)
}

// EvalVec computes K(row_i of a, x) for a dense query vector x with
// precomputed squared norm xsq.
func (p Params) EvalVec(a *la.Matrix, i int, x []float64, xsq float64) float64 {
	if p.Kind == Gaussian {
		return math.Exp(-p.Gamma * a.SqDistVec(i, x, xsq))
	}
	return p.fromDot(a.DotVec(i, x), 0)
}

// Row computes the full kernel row K(i, ·) against every row of the matrix,
// writing into dst (length ≥ a.Rows()). It returns the flop count charged:
// approximately 2·nnz-per-row·m for the inner products plus m for the
// nonlinear finish.
func (p Params) Row(a *la.Matrix, i int, dst []float64) float64 {
	m := a.Rows()
	dst = dst[:m]
	if p.Kind == Gaussian {
		a.EnsureNorms()
	}
	if a.Sparse() {
		ix, vx := a.SparseRow(i)
		for j := 0; j < m; j++ {
			ji, jv := a.SparseRow(j)
			dot := la.SpDot(ix, vx, ji, jv)
			if p.Kind == Gaussian {
				d := a.SqNormRow(i) + a.SqNormRow(j) - 2*dot
				if d < 0 {
					d = 0
				}
				dst[j] = math.Exp(-p.Gamma * d)
			} else {
				dst[j] = p.fromDot(dot, 0)
			}
		}
		return float64(2*len(vx)*m + m)
	}
	xi := a.DenseRow(i)
	if p.Kind == Gaussian {
		for j := 0; j < m; j++ {
			dst[j] = math.Exp(-p.Gamma * la.SqDist(xi, a.DenseRow(j)))
		}
	} else {
		for j := 0; j < m; j++ {
			dst[j] = p.fromDot(la.Dot(xi, a.DenseRow(j)), 0)
		}
	}
	return float64(2*a.Features()*m + m)
}

// CrossRow computes dst[i] = K(row_i of a, row_j of b) for every row of a,
// where b may be a different matrix (e.g. a broadcast remote sample in
// distributed SMO). Returns the flop count charged.
func (p Params) CrossRow(a *la.Matrix, b *la.Matrix, j int, dst []float64) float64 {
	m := a.Rows()
	dst = dst[:m]
	if p.Kind == Gaussian {
		a.EnsureNorms()
		b.EnsureNorms()
	}
	var nnzJ int
	if b.Sparse() {
		ji, _ := b.SparseRow(j)
		nnzJ = len(ji)
	} else {
		nnzJ = b.Features()
	}
	switch {
	case a.Sparse() && b.Sparse():
		ji, jv := b.SparseRow(j)
		for i := 0; i < m; i++ {
			ii, iv := a.SparseRow(i)
			dot := la.SpDot(ii, iv, ji, jv)
			if p.Kind == Gaussian {
				d := a.SqNormRow(i) + b.SqNormRow(j) - 2*dot
				if d < 0 {
					d = 0
				}
				dst[i] = math.Exp(-p.Gamma * d)
			} else {
				dst[i] = p.fromDot(dot, 0)
			}
		}
	case !a.Sparse() && !b.Sparse():
		xj := b.DenseRow(j)
		for i := 0; i < m; i++ {
			if p.Kind == Gaussian {
				dst[i] = math.Exp(-p.Gamma * la.SqDist(a.DenseRow(i), xj))
			} else {
				dst[i] = p.fromDot(la.Dot(a.DenseRow(i), xj), 0)
			}
		}
	default:
		// Mixed storage: densify the single b row once into pooled scratch.
		buf := getScratch(b.Features())
		xj := b.RowInto(j, *buf)
		xjsq := la.SqNorm(xj)
		for i := 0; i < m; i++ {
			if p.Kind == Gaussian {
				dst[i] = math.Exp(-p.Gamma * a.SqDistVec(i, xj, xjsq))
			} else {
				dst[i] = p.fromDot(a.DotVec(i, xj), 0)
			}
		}
		putScratch(buf)
	}
	// Charge actual stored entries on the a side — a.NNZ() is m·Features()
	// for dense but the true nonzero count for sparse, mirroring Row's
	// nnz-based accounting instead of the dense upper bound.
	return float64(a.NNZ() + (nnzJ+1)*m)
}
