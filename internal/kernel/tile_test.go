package kernel

import (
	"math/rand"
	"testing"

	"casvm/internal/la"
)

// The tile engine's contract is bit-identity with the scalar paths it
// replaces (the golden E2E hashes pin them), so all comparisons use ==.

var tileKinds = []Params{
	{Kind: Linear},
	{Kind: Polynomial, Coef: 1, Degree: 2},
	RBF(0.2),
	{Kind: Sigmoid, Coef: 0.5, ScaleA: 0.7},
}

func TestTileMatchesRowBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, sparse := range []bool{false, true} {
		a := denseMat(rng, 200, 11)
		if sparse {
			a = sparseMat(rng, 200, 30, 0.3)
		}
		for _, p := range tileKinds {
			for _, rows := range [][]int{{0}, {7, 7}, {3, 199, 0}, {5, 4, 3, 2, 1}} {
				dsts := make([][]float64, len(rows))
				want := make([][]float64, len(rows))
				for r := range rows {
					dsts[r] = make([]float64, a.Rows())
					want[r] = make([]float64, a.Rows())
				}
				var wantFlops float64
				for r, i := range rows {
					wantFlops += p.Row(a, i, want[r])
				}
				gotFlops := p.Tile(a, rows, dsts, 1)
				if gotFlops != wantFlops {
					t.Fatalf("kind=%v sparse=%v rows=%v: flops %v != %v",
						p.Kind, sparse, rows, gotFlops, wantFlops)
				}
				for r := range rows {
					for j := range want[r] {
						if dsts[r][j] != want[r][j] {
							t.Fatalf("kind=%v sparse=%v rows=%v: [%d][%d] %v != %v",
								p.Kind, sparse, rows, r, j, dsts[r][j], want[r][j])
						}
					}
				}
			}
		}
	}
}

func TestTileParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, sparse := range []bool{false, true} {
		a := denseMat(rng, 3000, 10)
		if sparse {
			a = sparseMat(rng, 3000, 40, 0.25)
		}
		p := RBF(0.15)
		rows := []int{11, 2999, 0}
		serial := [][]float64{make([]float64, a.Rows()), make([]float64, a.Rows()), make([]float64, a.Rows())}
		par := [][]float64{make([]float64, a.Rows()), make([]float64, a.Rows()), make([]float64, a.Rows())}
		fs := p.Tile(a, rows, serial, 1)
		fp := p.Tile(a, rows, par, 4)
		if fs != fp {
			t.Fatalf("sparse=%v: flops %v vs %v", sparse, fs, fp)
		}
		for r := range rows {
			for j := range serial[r] {
				if serial[r][j] != par[r][j] {
					t.Fatalf("sparse=%v: [%d][%d] differs", sparse, r, j)
				}
			}
		}
	}
}

// mats builds the four storage pairings (a, b) the CrossTile dispatch
// covers, with distinct feature widths kept equal within a pairing.
func crossMats(rng *rand.Rand) [][2]*la.Matrix {
	n := 13
	return [][2]*la.Matrix{
		{denseMat(rng, 9, n), denseMat(rng, 17, n)},
		{sparseMat(rng, 9, n, 0.4), sparseMat(rng, 17, n, 0.4)},
		{sparseMat(rng, 9, n, 0.4), denseMat(rng, 17, n)},
		{denseMat(rng, 9, n), sparseMat(rng, 17, n, 0.4)},
	}
}

func TestCrossTileMatchesEvalBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for pi, pair := range crossMats(rng) {
		a, b := pair[0], pair[1]
		for _, p := range tileKinds {
			// Ragged tile shapes: odd row counts and column windows.
			for _, sh := range []struct {
				rows     []int
				clo, chi int
			}{
				{[]int{0}, 0, 1},
				{[]int{8, 1, 5}, 3, 16},
				{[]int{0, 1, 2, 3, 4}, 0, 17},
				{[]int{6, 2}, 16, 17},
			} {
				w := sh.chi - sh.clo
				ld := w + 2
				dst := make([]float64, len(sh.rows)*ld)
				p.CrossTile(a, sh.rows, b, sh.clo, sh.chi, dst, ld)
				for r, i := range sh.rows {
					for c := sh.clo; c < sh.chi; c++ {
						got := dst[r*ld+(c-sh.clo)]
						if want := p.Eval(a, i, b, c); got != want {
							t.Fatalf("pair=%d kind=%v rows=%v c=%d: tile=%v eval=%v",
								pi, p.Kind, sh.rows, c, got, want)
						}
					}
				}
			}
		}
	}
}

func TestCrossTileSameMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, sparse := range []bool{false, true} {
		a := denseMat(rng, 15, 7)
		if sparse {
			a = sparseMat(rng, 15, 20, 0.4)
		}
		for _, p := range tileKinds {
			rows := []int{14, 0, 7}
			dst := make([]float64, len(rows)*a.Rows())
			p.CrossTile(a, rows, a, 0, a.Rows(), dst, a.Rows())
			for r, i := range rows {
				for c := 0; c < a.Rows(); c++ {
					got := dst[r*a.Rows()+c]
					if want := p.Eval(a, i, a, c); got != want {
						t.Fatalf("sparse=%v kind=%v (%d,%d): tile=%v eval=%v",
							sparse, p.Kind, i, c, got, want)
					}
				}
			}
		}
	}
}

func TestCrossRowPairMatchesCrossRow(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for pi, pair := range crossMats(rng) {
		a, b := pair[0], pair[1]
		for _, p := range tileKinds {
			m := a.Rows()
			wantH := make([]float64, m)
			wantL := make([]float64, m)
			fw := p.CrossRow(a, b, 2, wantH) + p.CrossRow(a, b, 9, wantL)
			gotH := make([]float64, m)
			gotL := make([]float64, m)
			fg := p.CrossRowPair(a, b, 2, b, 9, gotH, gotL)
			if fg != fw {
				t.Fatalf("pair=%d kind=%v: flops %v != %v", pi, p.Kind, fg, fw)
			}
			for i := 0; i < m; i++ {
				if gotH[i] != wantH[i] || gotL[i] != wantL[i] {
					t.Fatalf("pair=%d kind=%v i=%d: (%v,%v) != (%v,%v)",
						pi, p.Kind, i, gotH[i], gotL[i], wantH[i], wantL[i])
				}
			}
		}
	}
}

// TestPrefetchPairMatchesSequentialRows drives two caches with an identical
// random pair trace — one calling PrefetchPair before the Row reads, one
// just calling Row — and demands identical row values, miss counts, flop
// charges and (via subsequent behavior) identical eviction decisions.
func TestPrefetchPairMatchesSequentialRows(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for _, sparse := range []bool{false, true} {
		a := denseMat(rng, 120, 6)
		if sparse {
			a = sparseMat(rng, 120, 25, 0.3)
		}
		p := RBF(0.3)
		for _, capacity := range []int{2, 3, 16} {
			cp := NewRowCache(p, a, capacity)
			cs := NewRowCache(p, a, capacity)
			for step := 0; step < 2000; step++ {
				i, j := rng.Intn(24), rng.Intn(24)
				if rng.Intn(5) == 0 {
					i, j = rng.Intn(120), rng.Intn(120)
				}
				cp.PrefetchPair(i, j)
				pi, pj := cp.Row(i), cp.Row(j)
				si, sj := cs.Row(i), cs.Row(j)
				for k := range si {
					if pi[k] != si[k] || pj[k] != sj[k] {
						t.Fatalf("cap=%d step=%d pair(%d,%d): rows differ at %d",
							capacity, step, i, j, k)
					}
				}
			}
			_, mp, fp := cp.Stats()
			_, ms, fs := cs.Stats()
			if mp != ms || fp != fs {
				t.Fatalf("cap=%d sparse=%v: prefetch (misses=%d flops=%g) vs sequential (misses=%d flops=%g)",
					capacity, sparse, mp, fp, ms, fs)
			}
		}
	}
}

// TestPrefetchPairAllocFree pins the prefetch path at zero allocations in
// steady state, like Row.
func TestPrefetchPairAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	a := denseMat(rng, 200, 8)
	c := NewRowCache(RBF(0.3), a, 8)
	idx := 0
	allocs := testing.AllocsPerRun(500, func() {
		c.PrefetchPair(idx%40, (idx*7)%40)
		idx++
	})
	if allocs != 0 {
		t.Fatalf("PrefetchPair allocates %v objects/op, want 0", allocs)
	}
}

// BenchmarkCrossTile prices the blocked query×SV panel against per-element
// Eval — the kernel-level half of the batch-predict speedup.
func BenchmarkCrossTile(b *testing.B) {
	rng := rand.New(rand.NewSource(88))
	const nq, nsv, n = 64, 2048, 64
	q := denseMat(rng, nq, n)
	sv := denseMat(rng, nsv, n)
	p := RBF(0.1)
	rows := make([]int, nq)
	for i := range rows {
		rows[i] = i
	}
	dst := make([]float64, nq*nsv)
	b.Run("tile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.CrossTile(q, rows, sv, 0, nsv, dst, nsv)
		}
	})
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < nq; r++ {
				for c := 0; c < nsv; c++ {
					dst[r*nsv+c] = p.Eval(q, r, sv, c)
				}
			}
		}
	})
}
