package kernel

import (
	"container/list"
	"math/rand"
	"testing"
)

// refLRU replicates the seed's container/list-based row cache so the
// slice-backed rewrite can be checked for bit-identical behaviour: same
// rows, same hit/miss/flop accounting, same eviction order.
type refLRU struct {
	params   Params
	data     interface{ Rows() int }
	capacity int
	rows     map[int]*list.Element
	lru      *list.List
	fill     func(i int, dst []float64) float64

	hits, misses int64
	flops        float64
}

type refEntry struct {
	index int
	row   []float64
}

func newRefLRU(capacity, m int, fill func(int, []float64) float64) *refLRU {
	if capacity < 2 {
		capacity = 2
	}
	return &refLRU{
		capacity: capacity,
		rows:     make(map[int]*list.Element, capacity),
		lru:      list.New(),
		fill:     fill,
	}
}

func (c *refLRU) Row(i, m int) []float64 {
	if el, ok := c.rows[i]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*refEntry).row
	}
	c.misses++
	var e *refEntry
	if c.lru.Len() >= c.capacity {
		el := c.lru.Back()
		e = el.Value.(*refEntry)
		delete(c.rows, e.index)
		c.lru.Remove(el)
	} else {
		e = &refEntry{row: make([]float64, m)}
	}
	e.index = i
	c.flops += c.fill(i, e.row)
	c.rows[i] = c.lru.PushFront(e)
	return e.row
}

// TestLRUMatchesReference drives the new cache and the seed-equivalent
// reference with an identical random access trace and demands identical
// rows, stats and flops at every step, across dense and sparse matrices
// and several capacities.
func TestLRUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sparse := range []bool{false, true} {
		a := denseMat(rng, 300, 9)
		if sparse {
			a = sparseMat(rng, 300, 30, 0.3)
		}
		p := RBF(0.25)
		for _, cap := range []int{2, 3, 8, 64} {
			c := NewRowCache(p, a, cap)
			ref := newRefLRU(cap, a.Rows(), func(i int, dst []float64) float64 {
				return p.Row(a, i, dst)
			})
			for step := 0; step < 4000; step++ {
				// Zipf-ish trace: mostly a hot working set, occasional cold rows.
				i := rng.Intn(16)
				if rng.Intn(4) == 0 {
					i = rng.Intn(a.Rows())
				}
				got := c.Row(i)
				want := ref.Row(i, a.Rows())
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("cap=%d step=%d row %d: col %d %v != %v",
							cap, step, i, j, got[j], want[j])
					}
				}
			}
			h, m, f := c.Stats()
			if h != ref.hits || m != ref.misses || f != ref.flops {
				t.Fatalf("cap=%d sparse=%v: stats (%d,%d,%g) != ref (%d,%d,%g)",
					cap, sparse, h, m, f, ref.hits, ref.misses, ref.flops)
			}
			if c.Len() > cap {
				t.Fatalf("cap=%d: Len=%d exceeds capacity", cap, c.Len())
			}
		}
	}
}

// TestLRUTwoRowsLive pins the SMO contract: with any capacity ≥ 2, the
// high row fetched first must stay valid (unevicted) while the low row is
// fetched.
func TestLRUTwoRowsLive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := denseMat(rng, 50, 4)
	p := RBF(0.5)
	c := NewRowCache(p, a, 2)
	for pair := 0; pair < 200; pair++ {
		hi, lo := rng.Intn(50), rng.Intn(50)
		rh := c.Row(hi)
		want := make([]float64, 50)
		copy(want, rh)
		c.Row(lo)
		for j := range rh {
			if rh[j] != want[j] {
				t.Fatalf("pair %d (%d,%d): high row clobbered at %d", pair, hi, lo, j)
			}
		}
	}
}

// TestRowCacheAllocFree proves steady-state Row calls allocate nothing —
// the point of the flat-block rewrite.
func TestRowCacheAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := denseMat(rng, 200, 8)
	c := NewRowCache(RBF(0.3), a, 8)
	idx := 0
	allocs := testing.AllocsPerRun(500, func() {
		c.Row(idx % 40) // mix of hits and evicting misses
		idx++
	})
	if allocs != 0 {
		t.Fatalf("Row allocates %v objects/op, want 0", allocs)
	}
}

// TestDiagCacheMatchesEval pins the lazy diagonal cache against direct
// evaluation for a non-Gaussian kernel.
func TestDiagCacheMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := denseMat(rng, 80, 6)
	p := Params{Kind: Polynomial, Coef: 1, Degree: 2}
	c := NewRowCache(p, a, 4)
	for i := 0; i < a.Rows(); i++ {
		if got, want := c.Diag(i), p.Eval(a, i, a, i); got != want {
			t.Fatalf("diag[%d]=%v want %v", i, got, want)
		}
	}
	g := NewRowCache(RBF(0.1), a, 4)
	if g.Diag(3) != 1 {
		t.Fatal("gaussian diag must be exactly 1")
	}
}
