package kernel

import (
	"container/list"

	"casvm/internal/la"
)

// RowCache is an LRU cache of kernel rows K(i, ·) over a fixed training
// matrix. The SMO solver touches two rows per iteration (the high and low
// working-set indices); because violating pairs repeat heavily, a modest
// cache eliminates most kernel-row recomputation — the same optimisation
// LIBSVM and the paper's shared-memory SMO rely on.
//
// RowCache is not safe for concurrent use; each solver owns one.
type RowCache struct {
	params Params
	data   *la.Matrix

	capacity int                   // max rows kept
	rows     map[int]*list.Element // index -> LRU entry
	lru      *list.List            // front = most recent; values are *cacheEntry
	threads  int                   // intra-node workers for row fills

	// Stats.
	hits, misses int64
	flops        float64 // flops charged by misses
}

// SetThreads lets cache misses compute rows with up to t goroutines
// (kernel.RowParallel). 0 or 1 keeps the serial path.
func (c *RowCache) SetThreads(t int) { c.threads = t }

type cacheEntry struct {
	index int
	row   []float64
}

// NewRowCache creates a cache over the given matrix holding at most
// capacity rows (minimum 2, since SMO needs the high and low rows live at
// once).
func NewRowCache(p Params, data *la.Matrix, capacity int) *RowCache {
	if capacity < 2 {
		capacity = 2
	}
	return &RowCache{
		params:   p,
		data:     data,
		capacity: capacity,
		rows:     make(map[int]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Row returns the kernel row K(i, ·) of length data.Rows(). The returned
// slice is owned by the cache and must not be modified or retained across
// further Row calls.
func (c *RowCache) Row(i int) []float64 {
	if el, ok := c.rows[i]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).row
	}
	c.misses++
	var entry *cacheEntry
	if c.lru.Len() >= c.capacity {
		// Evict the least recently used entry, reusing its buffer.
		el := c.lru.Back()
		entry = el.Value.(*cacheEntry)
		delete(c.rows, entry.index)
		c.lru.Remove(el)
	} else {
		entry = &cacheEntry{row: make([]float64, c.data.Rows())}
	}
	entry.index = i
	c.flops += c.params.RowParallel(c.data, i, entry.row, c.threads)
	c.rows[i] = c.lru.PushFront(entry)
	return entry.row
}

// Diag returns the kernel diagonal K(i,i) without touching the cache; for
// the Gaussian kernel this is exactly 1.
func (c *RowCache) Diag(i int) float64 {
	if c.params.Kind == Gaussian {
		return 1
	}
	return c.params.Eval(c.data, i, c.data, i)
}

// Stats returns (hits, misses, flops charged by misses).
func (c *RowCache) Stats() (hits, misses int64, flops float64) {
	return c.hits, c.misses, c.flops
}

// ResetFlops zeroes the flop counter and returns the previous value. The
// solver drains this per iteration to charge virtual time.
func (c *RowCache) ResetFlops() float64 {
	f := c.flops
	c.flops = 0
	return f
}

// Len returns the number of rows currently cached.
func (c *RowCache) Len() int { return c.lru.Len() }
