package kernel

import (
	"casvm/internal/la"
	"casvm/internal/trace"
)

// RowCache is an LRU cache of kernel rows K(i, ·) over a fixed training
// matrix. The SMO solver touches two rows per iteration (the high and low
// working-set indices); because violating pairs repeat heavily, a modest
// cache eliminates most kernel-row recomputation — the same optimisation
// LIBSVM and the paper's shared-memory SMO rely on.
//
// The cache is allocation-free after construction: all cached rows live in
// one flat preallocated block, the LRU order is an intrusive doubly-linked
// list over slot numbers backed by two int32 slices, and the row→slot map
// is a direct-indexed slice. A hit is two array reads and four link writes;
// a miss recomputes one row in place — no container/list element boxing, no
// per-miss make, nothing for the garbage collector to trace.
//
// RowCache is not safe for concurrent use; each solver owns one.
type RowCache struct {
	params Params
	data   *la.Matrix

	capacity int // max rows kept
	m        int // row length = data.Rows()
	threads  int // intra-node workers for row fills

	slotOf []int32   // sample index -> slot, or -1
	rowOf  []int32   // slot -> sample index, or -1 while unused
	next   []int32   // slot -> next (toward LRU), -1 at tail
	prev   []int32   // slot -> prev (toward MRU), -1 at head
	head   int32     // most recently used slot, -1 when empty
	tail   int32     // least recently used slot, -1 when empty
	used   int       // slots filled so far (grows to capacity, never shrinks)
	block  []float64 // slot s holds its row at block[s*m : (s+1)*m]

	// diag lazily caches the kernel diagonal for non-Gaussian kernels, so
	// per-iteration Diag lookups and the WSS2 scan cost O(1) per sample
	// after the first fill. (Gaussian diagonals are exactly 1.)
	diag []float64

	// Stats.
	hits, misses int64
	flops        float64 // flops charged by misses

	// rec, when non-nil, records a timeline span per miss (the
	// kernel-row fill is the solver's dominant non-O(m) cost).
	rec *trace.Recorder

	// Preallocated PrefetchPair scratch (at most two missing rows per
	// call), keeping the prefetch path allocation-free like Row.
	prefRows []int
	prefDst  [][]float64
}

// SetThreads lets cache misses compute rows with up to t goroutines
// (kernel.RowParallel). 0 or 1 keeps the serial path.
func (c *RowCache) SetThreads(t int) { c.threads = t }

// SetRecorder attaches a timeline recorder; each cache miss then records a
// "row-fill" span with its flop cost. A nil recorder (the default) keeps
// the hit and miss paths allocation-free no-ops.
func (c *RowCache) SetRecorder(rec *trace.Recorder) { c.rec = rec }

// NewRowCache creates a cache over the given matrix holding at most
// capacity rows (minimum 2, since SMO needs the high and low rows live at
// once). The whole block is allocated up front; untouched pages cost only
// virtual address space.
func NewRowCache(p Params, data *la.Matrix, capacity int) *RowCache {
	if capacity < 2 {
		capacity = 2
	}
	m := data.Rows()
	if capacity > m && m >= 2 {
		capacity = m
	}
	c := &RowCache{
		params:   p,
		data:     data,
		capacity: capacity,
		m:        m,
		slotOf:   make([]int32, m),
		rowOf:    make([]int32, capacity),
		next:     make([]int32, capacity),
		prev:     make([]int32, capacity),
		head:     -1,
		tail:     -1,
		block:    make([]float64, capacity*m),
		prefRows: make([]int, 0, 2),
		prefDst:  make([][]float64, 0, 2),
	}
	for i := range c.slotOf {
		c.slotOf[i] = -1
	}
	for s := range c.rowOf {
		c.rowOf[s] = -1
	}
	return c
}

// unlink detaches slot s from the LRU list.
func (c *RowCache) unlink(s int32) {
	p, n := c.prev[s], c.next[s]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail = p
	}
}

// pushFront makes slot s the most recently used.
func (c *RowCache) pushFront(s int32) {
	c.prev[s] = -1
	c.next[s] = c.head
	if c.head >= 0 {
		c.prev[c.head] = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

// Row returns the kernel row K(i, ·) of length data.Rows(). The returned
// slice is owned by the cache and must not be modified; it stays valid
// until its entry is evicted (SMO's two live rows per iteration are safe
// for any capacity ≥ 2).
func (c *RowCache) Row(i int) []float64 {
	if s := c.slotOf[i]; s >= 0 {
		c.hits++
		if c.head != s {
			c.unlink(s)
			c.pushFront(s)
		}
		return c.block[int(s)*c.m : int(s)*c.m+c.m]
	}
	c.misses++
	row := c.slotFor(i)
	sp := c.rec.Begin(trace.CatKernel, "row-fill")
	f := c.params.RowParallel(c.data, i, row, c.threads)
	c.rec.EndFlops(sp, f)
	c.flops += f
	return row
}

// slotFor acquires a slot for the uncached sample i — reusing the LRU
// victim's slot once the cache is full — updates both index maps, and
// makes the slot most-recently-used immediately, so a second acquisition
// in the same batch cannot evict it (capacity ≥ 2 guarantees a distinct
// tail). It returns the slot's row storage; the caller fills it.
func (c *RowCache) slotFor(i int) []float64 {
	var s int32
	if c.used < c.capacity {
		s = int32(c.used)
		c.used++
	} else {
		// Evict the least recently used entry, reusing its slot in place.
		s = c.tail
		c.slotOf[c.rowOf[s]] = -1
		c.unlink(s)
	}
	c.rowOf[s] = int32(i)
	c.slotOf[i] = s
	c.pushFront(s)
	return c.block[int(s)*c.m : int(s)*c.m+c.m]
}

// PrefetchPair makes rows i and j resident, filling both misses through one
// shared-streaming tile (Params.Tile) so the training matrix is scanned
// once for the pair instead of once per row — SMO touches exactly this pair
// every iteration. Observable cache state afterwards (resident set,
// eviction victims, LRU order, miss count, charged flops) is identical to
// Row(i) followed by Row(j); rows already present are made most-recent but
// not counted as hits, so the later Row() reads account for themselves.
func (c *RowCache) PrefetchPair(i, j int) {
	c.prefRows = c.prefRows[:0]
	c.prefDst = c.prefDst[:0]
	if s := c.slotOf[i]; s >= 0 {
		if c.head != s {
			c.unlink(s)
			c.pushFront(s)
		}
	} else {
		c.misses++
		c.prefRows = append(c.prefRows, i)
		c.prefDst = append(c.prefDst, c.slotFor(i))
	}
	if j != i {
		if s := c.slotOf[j]; s >= 0 {
			if c.head != s {
				c.unlink(s)
				c.pushFront(s)
			}
		} else {
			c.misses++
			c.prefRows = append(c.prefRows, j)
			c.prefDst = append(c.prefDst, c.slotFor(j))
		}
	}
	if len(c.prefRows) == 0 {
		return
	}
	sp := c.rec.Begin(trace.CatKernel, "row-fill")
	f := c.params.Tile(c.data, c.prefRows, c.prefDst, c.threads)
	c.rec.EndFlops(sp, f)
	c.flops += f
}

// Diag returns the kernel diagonal K(i,i) without touching the row cache;
// for the Gaussian kernel this is exactly 1. Non-Gaussian diagonals are
// computed once for every sample on first use and then served from the
// cache — the WSS2 second-order scan reads m of them per iteration.
// Diagonal evaluations are deliberately not charged to the flop counter,
// matching the per-call evaluation they replace.
func (c *RowCache) Diag(i int) float64 {
	if c.params.Kind == Gaussian {
		return 1
	}
	if c.diag == nil {
		d := make([]float64, c.m)
		for j := 0; j < c.m; j++ {
			d[j] = c.params.Eval(c.data, j, c.data, j)
		}
		c.diag = d
	}
	return c.diag[i]
}

// Stats returns (hits, misses, flops charged by misses).
func (c *RowCache) Stats() (hits, misses int64, flops float64) {
	return c.hits, c.misses, c.flops
}

// ResetFlops zeroes the flop counter and returns the previous value. The
// solver drains this per iteration to charge virtual time.
func (c *RowCache) ResetFlops() float64 {
	f := c.flops
	c.flops = 0
	return f
}

// Len returns the number of rows currently cached.
func (c *RowCache) Len() int { return c.used }
