package kernel

import (
	"math/rand"
	"testing"

	"casvm/internal/la"
)

// TestCrossRowFlopAccounting pins the flop charges for both storage
// kinds. Dense a charges the dense bound (n + nnzJ)·m + m; sparse a must
// charge its actual stored nonzeros — a.NNZ() + (nnzJ+1)·m — not the
// dense Features()·m upper bound the seed used.
func TestCrossRowFlopAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := RBF(0.2)

	dense := denseMat(rng, 40, 7)
	sparse := sparseMat(rng, 40, 50, 0.2)
	dst := make([]float64, 40)

	j := 3
	// Dense a × dense b: (n + n)·m + m.
	m, n := dense.Rows(), dense.Features()
	if got, want := p.CrossRow(dense, dense, j, dst), float64((n+n)*m+m); got != want {
		t.Errorf("dense×dense: flops=%v want %v", got, want)
	}

	// Sparse a × sparse b: a.NNZ() + (nnzJ+1)·m, strictly below the dense
	// bound for any genuinely sparse a.
	ji, _ := sparse.SparseRow(j)
	nnzJ := len(ji)
	m = sparse.Rows()
	want := float64(sparse.NNZ() + (nnzJ+1)*m)
	if got := p.CrossRow(sparse, sparse, j, dst); got != want {
		t.Errorf("sparse×sparse: flops=%v want %v", got, want)
	}
	denseBound := float64((sparse.Features()+nnzJ)*m + m)
	if want >= denseBound {
		t.Fatalf("test matrix not sparse enough: nnz charge %v !< dense bound %v", want, denseBound)
	}

	// Mixed sparse a × dense b row: same nnz-based a-side charge.
	db := denseMat(rng, 10, 50)
	want = float64(sparse.NNZ() + (db.Features()+1)*m)
	if got := p.CrossRow(sparse, db, 2, dst); got != want {
		t.Errorf("sparse×dense: flops=%v want %v", got, want)
	}
}

// TestRowVsCrossRowSparseConsistency: K(i,·) computed via Row and via
// CrossRow(a, a, i) must agree in values, and both must charge nnz-based
// (not dense-bound) flops for sparse inputs.
func TestRowVsCrossRowSparseConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := sparseMat(rng, 60, 30, 0.25)
	p := RBF(0.15)
	r1 := make([]float64, 60)
	r2 := make([]float64, 60)
	fRow := p.Row(a, 5, r1)
	fCross := p.CrossRow(a, a, 5, r2)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row[%d]: %v vs %v", i, r1[i], r2[i])
		}
	}
	if fRow <= 0 || fCross <= 0 {
		t.Fatal("flops must be positive")
	}
	bound := float64(2*a.Features()*a.Rows() + a.Rows())
	if fRow >= bound || fCross >= bound {
		t.Errorf("sparse charges (%v, %v) should undercut dense bound %v", fRow, fCross, bound)
	}
}

// TestEvalMixedStorageAllocFree proves the mixed dense/sparse paths reuse
// pooled scratch instead of allocating per evaluation (the predict path
// calls Eval millions of times).
func TestEvalMixedStorageAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := sparseMat(rng, 30, 16, 0.4)
	b := denseMat(rng, 30, 16)
	a.EnsureNorms()
	b.EnsureNorms()
	for _, p := range []Params{RBF(0.2), {Kind: Linear}} {
		p := p
		// Warm the pool, then demand steady-state zero allocations.
		p.Eval(a, 0, b, 0)
		allocs := testing.AllocsPerRun(200, func() {
			p.Eval(a, 1, b, 2)
		})
		if allocs != 0 {
			t.Errorf("kind=%v: Eval allocates %v/op, want 0", p.Kind, allocs)
		}
	}
	dst := make([]float64, a.Rows())
	p := RBF(0.2)
	p.CrossRow(a, b, 0, dst)
	allocs := testing.AllocsPerRun(200, func() {
		p.CrossRow(a, b, 1, dst)
	})
	if allocs != 0 {
		t.Errorf("CrossRow mixed allocates %v/op, want 0", allocs)
	}
}

var sinkRow []float64

// mixed-path correctness guard: pooled scratch must not leak values
// between evaluations with different widths.
func TestScratchWidthIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	wide := denseMat(rng, 5, 64)
	narrow := denseMat(rng, 5, 8)
	spWide := sparseMat(rng, 5, 64, 0.5)
	spNarrow := sparseMat(rng, 5, 8, 0.5)
	p := Params{Kind: Linear}
	for trial := 0; trial < 50; trial++ {
		gotW := p.Eval(spWide, trial%5, wide, (trial+1)%5)
		wantW := la.Dot(rowDense(spWide, trial%5), wide.DenseRow((trial+1)%5))
		if !close2(gotW, wantW) {
			t.Fatalf("wide eval %v want %v", gotW, wantW)
		}
		gotN := p.Eval(spNarrow, trial%5, narrow, (trial+2)%5)
		wantN := la.Dot(rowDense(spNarrow, trial%5), narrow.DenseRow((trial+2)%5))
		if !close2(gotN, wantN) {
			t.Fatalf("narrow eval %v want %v", gotN, wantN)
		}
	}
}

func rowDense(a *la.Matrix, i int) []float64 {
	buf := make([]float64, a.Features())
	return a.RowInto(i, buf)
}

func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
