package kernel

import (
	"math"

	"casvm/internal/la"
	"casvm/internal/pool"
)

// Intra-node parallelism: the paper's implementation fans the SMO hot loop
// out with OpenMP inside each MPI rank; this file is the goroutine
// analogue. Kernel-row computation is embarrassingly parallel over the
// target rows, so RowParallel splits the row range across the persistent
// worker pool (internal/pool) — no per-call goroutine spawns, and chunk
// boundaries that depend only on (threads, m, grain) so results and flop
// counts are identical to the serial path.

// rowGrain is the minimum number of output elements per chunk worth
// handing to a worker. Each element costs ~2·nnz flops, so even narrow
// features amortise the single channel handoff well below the seed's old
// 2048-row all-or-nothing threshold.
const rowGrain = 512

// RowParallel computes K(i, ·) like Row, splitting the work across up to
// `threads` pool workers. Results are identical to Row (each output
// element is computed independently). Returns the flop count charged.
func (p Params) RowParallel(a *la.Matrix, i int, dst []float64, threads int) float64 {
	m := a.Rows()
	if threads <= 1 || m < 2*rowGrain {
		return p.Row(a, i, dst)
	}
	if p.Kind == Gaussian {
		a.EnsureNorms() // not goroutine-safe lazily; force it up front
	}
	dst = dst[:m]
	pool.Shared().ParallelFor(threads, m, rowGrain, func(lo, hi int) {
		p.rowRange(a, i, dst, lo, hi)
	})
	if a.Sparse() {
		ix, _ := a.SparseRow(i)
		return float64(2*len(ix)*m + m)
	}
	return float64(2*a.Features()*m + m)
}

// rowRange fills dst[lo:hi] with K(i, j) for j in [lo, hi).
func (p Params) rowRange(a *la.Matrix, i int, dst []float64, lo, hi int) {
	if a.Sparse() {
		ix, vx := a.SparseRow(i)
		for j := lo; j < hi; j++ {
			ji, jv := a.SparseRow(j)
			dot := la.SpDot(ix, vx, ji, jv)
			if p.Kind == Gaussian {
				d := a.SqNormRow(i) + a.SqNormRow(j) - 2*dot
				if d < 0 {
					d = 0
				}
				dst[j] = math.Exp(-p.Gamma * d)
			} else {
				dst[j] = p.fromDot(dot, 0)
			}
		}
		return
	}
	xi := a.DenseRow(i)
	if p.Kind == Gaussian {
		for j := lo; j < hi; j++ {
			dst[j] = math.Exp(-p.Gamma * la.SqDist(xi, a.DenseRow(j)))
		}
	} else {
		for j := lo; j < hi; j++ {
			dst[j] = p.fromDot(la.Dot(xi, a.DenseRow(j)), 0)
		}
	}
}
