package kernel

import (
	"casvm/internal/la"
)

// Intra-node parallelism: the paper's implementation fans the SMO hot loop
// out with OpenMP inside each MPI rank; this file is the goroutine
// analogue. Kernel-row computation is embarrassingly parallel over the
// target rows, so RowParallel splits the row range across the persistent
// worker pool (internal/pool) — no per-call goroutine spawns, and chunk
// boundaries that depend only on (threads, m, grain) so results and flop
// counts are identical to the serial path.

// rowGrain is the minimum number of output elements per chunk worth
// handing to a worker. Each element costs ~2·nnz flops, so even narrow
// features amortise the single channel handoff well below the seed's old
// 2048-row all-or-nothing threshold.
const rowGrain = 512

// RowParallel computes K(i, ·) like Row, splitting the work across up to
// `threads` pool workers. Results are identical to Row (each output
// element is computed independently). Returns the flop count charged.
// It is the one-row case of the tile engine (Params.Tile).
func (p Params) RowParallel(a *la.Matrix, i int, dst []float64, threads int) float64 {
	m := a.Rows()
	if threads <= 1 || m < 2*rowGrain {
		return p.Row(a, i, dst)
	}
	rows := [1]int{i}
	dsts := [1][]float64{dst}
	return p.Tile(a, rows[:], dsts[:], threads)
}
