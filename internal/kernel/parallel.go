package kernel

import (
	"math"
	"sync"

	"casvm/internal/la"
)

// Intra-node parallelism: the paper's implementation fans the SMO hot loop
// out with OpenMP inside each MPI rank; this file is the goroutine
// analogue. Kernel-row computation is embarrassingly parallel over the
// target rows, so RowParallel splits the row range across workers.

// parallelThreshold is the minimum row count worth spawning goroutines
// for; below it the coordination costs more than the arithmetic.
const parallelThreshold = 2048

// RowParallel computes K(i, ·) like Row, splitting the work across up to
// `threads` goroutines. Results are identical to Row (each output element
// is computed independently). Returns the flop count charged.
func (p Params) RowParallel(a *la.Matrix, i int, dst []float64, threads int) float64 {
	m := a.Rows()
	if threads <= 1 || m < parallelThreshold {
		return p.Row(a, i, dst)
	}
	if p.Kind == Gaussian {
		a.EnsureNorms() // not goroutine-safe lazily; force it up front
	}
	dst = dst[:m]
	chunk := (m + threads - 1) / threads
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.rowRange(a, i, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if a.Sparse() {
		ix, _ := a.SparseRow(i)
		return float64(2*len(ix)*m + m)
	}
	return float64(2*a.Features()*m + m)
}

// rowRange fills dst[lo:hi] with K(i, j) for j in [lo, hi).
func (p Params) rowRange(a *la.Matrix, i int, dst []float64, lo, hi int) {
	if a.Sparse() {
		ix, vx := a.SparseRow(i)
		for j := lo; j < hi; j++ {
			ji, jv := a.SparseRow(j)
			dot := la.SpDot(ix, vx, ji, jv)
			if p.Kind == Gaussian {
				d := a.SqNormRow(i) + a.SqNormRow(j) - 2*dot
				if d < 0 {
					d = 0
				}
				dst[j] = math.Exp(-p.Gamma * d)
			} else {
				dst[j] = p.fromDot(dot, 0)
			}
		}
		return
	}
	xi := a.DenseRow(i)
	if p.Kind == Gaussian {
		for j := lo; j < hi; j++ {
			dst[j] = math.Exp(-p.Gamma * la.SqDist(xi, a.DenseRow(j)))
		}
	} else {
		for j := lo; j < hi; j++ {
			dst[j] = p.fromDot(la.Dot(xi, a.DenseRow(j)), 0)
		}
	}
}
