// Package expt is the experiment harness: one runner per table and figure
// of the paper's evaluation (§III–§V), each printing the same rows/series
// the paper reports, computed from this repository's implementation.
// cmd/casvm-bench drives it; EXPERIMENTS.md records its output.
package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
	"casvm/internal/trace"
)

// Config tunes an experiment run.
type Config struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Scale multiplies every dataset's registered size (1.0 = default).
	Scale float64
	// P is the rank count for the fixed-size experiments (default 8).
	P int
	// MaxP bounds the processor sweep of the scaling experiments
	// (default 64; sweeps run 8,16,…,MaxP).
	MaxP int
	// Seed offsets all run seeds for variance studies.
	Seed int64
	// Reports, when non-nil, collects a structured run report for every
	// training run the experiments perform (`casvm-bench -report`). Nil
	// keeps all runs on the zero-instrumentation path.
	Reports *ReportSink
	// Metrics, when non-nil, is a registry shared across every training
	// run (casvm-bench -serve points /metrics at it). It overrides the
	// per-run fresh registry that Reports alone would attach.
	Metrics *trace.Registry
	// Telemetry, when non-nil, receives per-iteration solver samples from
	// every run — the live feed behind `casvm-bench -serve`'s /events.
	Telemetry *smo.TelemetryRing
}

// ReportSink accumulates structured run reports (trace.Report) from every
// training run an experiment performs; safe for concurrent adds.
type ReportSink struct {
	mu   sync.Mutex
	reps []*trace.Report
}

func (s *ReportSink) add(r *trace.Report) {
	s.mu.Lock()
	s.reps = append(s.reps, r)
	s.mu.Unlock()
}

// Len returns how many reports have been collected.
func (s *ReportSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reps)
}

// Snapshot returns the reports collected so far (the live /report body
// while `casvm-bench -serve` is running).
func (s *ReportSink) Snapshot() []*trace.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*trace.Report{}, s.reps...)
}

// WriteJSON writes the collected reports as one indented JSON array.
func (s *ReportSink) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	reps := append([]*trace.Report{}, s.reps...)
	s.mu.Unlock()
	for _, r := range reps {
		r.Schema = trace.ReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}

// train is the harness's single entry into core.Train: when Config.Reports
// is set it attaches observability sinks to the run and records the built
// report (annotated with the dataset name); otherwise it is a plain call.
func train(cfg Config, dataset string, x *la.Matrix, y []float64, pr core.Params) (*core.Output, error) {
	if cfg.Reports != nil {
		pr.Timeline = trace.NewTimeline(pr.P)
		pr.Metrics = trace.NewRegistry()
	}
	if cfg.Metrics != nil {
		pr.Metrics = cfg.Metrics
	}
	pr.Telemetry = cfg.Telemetry
	out, err := core.Train(x, y, pr)
	if err != nil {
		return nil, err
	}
	if cfg.Reports != nil {
		rep, err := core.BuildReport(out, pr, dataset, 0)
		if err != nil {
			return nil, err
		}
		cfg.Reports.add(rep)
	}
	return out, nil
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.P <= 0 {
		c.P = 8
	}
	if c.MaxP < 8 {
		c.MaxP = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

// Runners returns every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"table3", "Iterations vs samples (epsilon, forest)", Table3},
		{"table4", "Iso-efficiency functions", Table4},
		{"table5", "8-node 4-layer Cascade profile (toy)", Table5},
		{"table6", "FCFS: balanced data ≠ balanced load (face)", Table6},
		{"table7", "FCFS per-node class/SV ratios (face)", Table7},
		{"table8", "Ratio-balanced FCFS per-node ratios (face)", Table8},
		{"table9", "Balanced data + ratio = balanced load (face)", Table9},
		{"table10", "Communication volume: model vs measured (ijcnn)", Table10},
		{"table11", "Efficiency of communication (ijcnn)", Table11},
		{"table12", "The test datasets", Table12},
		{"table13", "adult: 8 methods", DatasetTable("adult")},
		{"table14", "face: 8 methods", DatasetTable("face")},
		{"table15", "gisette: 8 methods", DatasetTable("gisette")},
		{"table16", "ijcnn: 8 methods", DatasetTable("ijcnn")},
		{"table17", "usps: 8 methods", DatasetTable("usps")},
		{"table18", "webspam: 8 methods", DatasetTable("webspam")},
		{"table19", "Strong scaling time (epsilon)", Table19},
		{"table20", "Strong scaling efficiency (epsilon)", Table20},
		{"table21", "Weak scaling time (epsilon)", Table21},
		{"table22", "Weak scaling efficiency (epsilon)", Table22},
		{"fig5", "Partition sizes: K-means vs FCFS (face)", Fig5},
		{"fig7", "Load balance: CP-SVM vs CA-SVM (epsilon)", Fig7},
		{"fig8", "Communication patterns, 6 methods (toy)", Fig8},
		{"fig9", "Computation/communication ratio (toy)", Fig9},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("expt: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	for _, r := range Runners() {
		if err := RunOne(r, cfg); err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with a header and timing footer.
func RunOne(r Runner, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "\n=== %s — %s ===\n", r.ID, r.Title)
	t0 := time.Now()
	if err := r.Run(cfg); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "[%s completed in %.1fs wall]\n", r.ID, time.Since(t0).Seconds())
	return nil
}

// loadScaled loads a registered dataset at the config's scale.
func loadScaled(cfg Config, name string) (*data.Dataset, data.Entry, error) {
	return data.Load(name, cfg.Scale)
}

// paramsFor builds training parameters for a dataset entry. samples is the
// actual training-set size, used to rescale the machine's communication
// constants.
func paramsFor(cfg Config, m core.Method, e data.Entry, p int, samples int) core.Params {
	pr := core.DefaultParams(m, p)
	pr.C = e.C
	pr.Kernel = kernel.RBF(e.GammaOrDefault())
	pr.Seed = cfg.Seed
	pr.Machine = machineFor(samples, e.PaperSamples)
	return pr
}

// machineFor rescales the Hopper machine's communication constants by the
// ratio of the synthetic problem size to the paper's original size. The
// synthetic datasets are 10–100× smaller than the real ones, which shrinks
// per-iteration computation but not message latency; scaling ts and tw by
// the same ratio restores the communication/computation balance of the
// paper-scale problem so ratios, speedups and efficiencies keep their
// shape. See DESIGN.md §1.
func machineFor(samples, paperSamples int) perfmodel.Machine {
	h := perfmodel.Hopper()
	if paperSamples <= 0 || samples >= paperSamples {
		return h
	}
	r := float64(samples) / float64(paperSamples)
	h.Ts *= r
	h.Tw *= r
	return h
}

// sixMethods is the method list of the communication experiments and the
// scaling sweeps (the paper's Fig 8/9 and Tables XIX–XXII use RA-CA as
// "CA-SVM").
func sixMethods() []core.Method {
	return []core.Method{core.MethodDisSMO, core.MethodCascade, core.MethodDCSVM,
		core.MethodDCFilter, core.MethodCPSVM, core.MethodRACA}
}

func methodLabel(m core.Method) string {
	switch m {
	case core.MethodDisSMO:
		return "Dis-SMO"
	case core.MethodCascade:
		return "Cascade"
	case core.MethodDCSVM:
		return "DC-SVM"
	case core.MethodDCFilter:
		return "DC-Filter"
	case core.MethodCPSVM:
		return "CP-SVM"
	case core.MethodBKMCA:
		return "BKM-CA"
	case core.MethodFCFSCA:
		return "FCFS-CA"
	case core.MethodRACA:
		return "RA-CA"
	}
	return string(m)
}

// fmtBytes renders a byte count in the paper's MB style.
func fmtBytes(b int64) string {
	switch {
	case b >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// ranksByTime returns rank indices sorted by ascending per-node time, the
// presentation order of Tables VI and IX.
func ranksByTime(times []float64) []int {
	idx := make([]int, len(times))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
	return idx
}
