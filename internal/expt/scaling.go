package expt

import (
	"fmt"

	"casvm/internal/core"
	"casvm/internal/data"
)

// The scaling experiments mirror Tables XIX–XXII on the epsilon-like
// workload. The paper sweeps 96→1536 physical cores; here the sweep is
// 8→MaxP goroutine ranks with virtual time, which preserves the efficiency
// shape (see DESIGN.md §6).

func sweep(cfg Config) []int {
	ps := []int{}
	for p := 8; p <= cfg.MaxP; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

// epsilonAt builds an epsilon-like training set with exactly m samples.
func epsilonAt(cfg Config, m int) (*data.Dataset, data.Entry, error) {
	e, ok := data.Registry()["epsilon"]
	if !ok {
		return nil, data.Entry{}, fmt.Errorf("missing epsilon")
	}
	spec := e.Spec
	spec.Train = m
	spec.Test = 0
	d, err := data.Generate(spec)
	return d, e, err
}

// scalingTimes runs the six methods over the P sweep and returns
// times[method][i] = total virtual seconds at sweep(cfg)[i].
func scalingTimes(cfg Config, mFor func(p int) int) (map[core.Method][]float64, error) {
	times := map[core.Method][]float64{}
	for _, p := range sweep(cfg) {
		d, e, err := epsilonAt(cfg, mFor(p))
		if err != nil {
			return nil, err
		}
		for _, m := range sixMethods() {
			out, err := train(cfg, "epsilon", d.X, d.Y, paramsFor(cfg, m, e, p, 128000))
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", m, p, err)
			}
			times[m] = append(times[m], out.Stats.TotalSec)
		}
	}
	return times, nil
}

func printTimes(cfg Config, times map[core.Method][]float64) {
	fmt.Fprintf(cfg.Out, "%-10s", "Processors")
	for _, p := range sweep(cfg) {
		fmt.Fprintf(cfg.Out, " %9d", p)
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range sixMethods() {
		fmt.Fprintf(cfg.Out, "%-10s", methodLabel(m))
		for _, t := range times[m] {
			fmt.Fprintf(cfg.Out, " %8.3fs", t)
		}
		fmt.Fprintln(cfg.Out)
	}
}

func printEfficiency(cfg Config, times map[core.Method][]float64, strong bool) {
	ps := sweep(cfg)
	fmt.Fprintf(cfg.Out, "%-10s", "Processors")
	for _, p := range ps {
		fmt.Fprintf(cfg.Out, " %9d", p)
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range sixMethods() {
		fmt.Fprintf(cfg.Out, "%-10s", methodLabel(m))
		for i, t := range times[m] {
			var eff float64
			if t > 0 {
				if strong {
					// Strong scaling: E = T(P0)·P0 / (T(P)·P).
					eff = times[m][0] * float64(ps[0]) / (t * float64(ps[i]))
				} else {
					// Weak scaling: E = T(P0)/T(P).
					eff = times[m][0] / t
				}
			}
			fmt.Fprintf(cfg.Out, " %8.1f%%", 100*eff)
		}
		fmt.Fprintln(cfg.Out)
	}
}

// strongM returns the fixed strong-scaling problem size.
func strongM(cfg Config) int {
	m := int(2048 * cfg.Scale)
	if m < 16*cfg.MaxP {
		m = 16 * cfg.MaxP // keep ≥16 samples per node at the largest P
	}
	return m
}

// weakPerNode returns the weak-scaling per-node sample count.
func weakPerNode(cfg Config) int {
	m := int(48 * cfg.Scale)
	if m < 8 {
		m = 8
	}
	return m
}

// Table19 reproduces Table XIX: strong-scaling total time.
func Table19(cfg Config) error {
	cfg = cfg.withDefaults()
	m := strongM(cfg)
	fmt.Fprintf(cfg.Out, "strong scaling: epsilon-like, %d samples total\n", m)
	times, err := scalingTimes(cfg, func(int) int { return m })
	if err != nil {
		return err
	}
	printTimes(cfg, times)
	fmt.Fprintln(cfg.Out, "(paper: CA-SVM time collapses with P; DC-SVM barely improves)")
	return nil
}

// Table20 reproduces Table XX: strong-scaling efficiency.
func Table20(cfg Config) error {
	cfg = cfg.withDefaults()
	m := strongM(cfg)
	fmt.Fprintf(cfg.Out, "strong scaling efficiency: epsilon-like, %d samples total\n", m)
	times, err := scalingTimes(cfg, func(int) int { return m })
	if err != nil {
		return err
	}
	printEfficiency(cfg, times, true)
	fmt.Fprintln(cfg.Out, "(paper: CA-SVM exceeds 100% — superlinear, fewer iterations per node)")
	return nil
}

// Table21 reproduces Table XXI: weak-scaling total time.
func Table21(cfg Config) error {
	cfg = cfg.withDefaults()
	per := weakPerNode(cfg)
	fmt.Fprintf(cfg.Out, "weak scaling: epsilon-like, %d samples per node\n", per)
	times, err := scalingTimes(cfg, func(p int) int { return per * p })
	if err != nil {
		return err
	}
	printTimes(cfg, times)
	fmt.Fprintln(cfg.Out, "(paper: CA-SVM time stays flat; the others grow with P)")
	return nil
}

// Table22 reproduces Table XXII: weak-scaling efficiency.
func Table22(cfg Config) error {
	cfg = cfg.withDefaults()
	per := weakPerNode(cfg)
	fmt.Fprintf(cfg.Out, "weak scaling efficiency: epsilon-like, %d samples per node\n", per)
	times, err := scalingTimes(cfg, func(p int) int { return per * p })
	if err != nil {
		return err
	}
	printEfficiency(cfg, times, false)
	fmt.Fprintln(cfg.Out, "(paper: CA-SVM holds ≈95%; Dis-SMO/DC-SVM collapse)")
	return nil
}
