package expt

import (
	"fmt"

	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/perfmodel"
	"casvm/internal/smo"
)

// Table3 reproduces Table III: SMO iterations versus sample count for the
// epsilon-like and forest-like workloads, doubling m. The paper's claim is
// iterations ∝ m; the printed ratio column makes the trend visible.
func Table3(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "%-10s", "Samples")
	sizes := []int{}
	base := int(250 * cfg.Scale)
	if base < 32 {
		base = 32
	}
	for k := 0; k < 6; k++ {
		sizes = append(sizes, base<<k)
	}
	for _, m := range sizes {
		fmt.Fprintf(cfg.Out, " %8d", m)
	}
	fmt.Fprintln(cfg.Out)
	for _, name := range []string{"epsilon", "forest"} {
		e, ok := data.Registry()[name]
		if !ok {
			return fmt.Errorf("missing dataset %s", name)
		}
		fmt.Fprintf(cfg.Out, "%-10s", "Iters ("+name+")")
		for _, m := range sizes {
			spec := e.Spec
			spec.Train = m
			spec.Test = 0
			d, err := data.Generate(spec)
			if err != nil {
				return err
			}
			res, err := smo.Solve(d.X, d.Y, smo.Config{C: e.C, Kernel: kernel.RBF(e.GammaOrDefault())}, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " %8d", res.Iters)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out, "(paper: iterations grow roughly linearly with samples)")
	return nil
}

// Table4 prints the iso-efficiency bounds of Table IV plus the exponent
// fitted from the closed-form Dis-SMO overhead model (eqn 10), verifying
// the Ω(P³) communication bound.
func Table4(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "%-18s %-18s %s\n", "Method", "Communication", "Computation")
	for _, b := range perfmodel.TableIV() {
		comm := fmt.Sprintf("W = Ω(P^%.0f)", b.CommExponent)
		fmt.Fprintf(cfg.Out, "%-18s %-18s %s\n", b.Method, comm, b.Note)
	}
	ip := perfmodel.NormalizedIso(perfmodel.Hopper(), 2000)
	ps := []int{96, 192, 384, 768, 1536, 3072}
	ws := make([]float64, len(ps))
	fmt.Fprintf(cfg.Out, "\nDis-SMO minimum W for 50%% efficiency (eqn 8+10, n=2000):\n")
	for i, p := range ps {
		ws[i] = ip.IsoefficiencyW(0.5, p)
		fmt.Fprintf(cfg.Out, "  P=%-5d W=%.3g\n", p, ws[i])
	}
	fmt.Fprintf(cfg.Out, "fitted exponent b in W ∝ P^b: %.2f (paper bound: ≥... up to 3)\n",
		perfmodel.FitExponent(ps, ws))
	return nil
}

// Table5 reproduces Table V: the per-layer profile of an 8-node 4-layer
// Cascade run on the toy dataset, showing the shrinking parallelism that
// motivates CP-SVM (§IV-A).
func Table5(cfg Config) error {
	cfg = cfg.withDefaults()
	d, e, err := loadScaled(cfg, "toy")
	if err != nil {
		return err
	}
	out, err := train(cfg, "toy", d.X, d.Y, paramsFor(cfg, core.MethodCascade, e, cfg.P, d.M()))
	if err != nil {
		return err
	}
	var weightedNodes, totalTime float64
	for _, l := range out.Stats.Layers {
		fmt.Fprintf(cfg.Out, "level %d (%d nodes): time=%.4gs  maxIter=%d  SVs=%d\n",
			l.Layer, len(l.Nodes), l.MaxTime(), l.MaxIters(), l.SumSVs())
		fmt.Fprintf(cfg.Out, "  rank   :")
		for _, n := range l.Nodes {
			fmt.Fprintf(cfg.Out, " %7d", n.Rank)
		}
		fmt.Fprintf(cfg.Out, "\n  samples:")
		for _, n := range l.Nodes {
			fmt.Fprintf(cfg.Out, " %7d", n.Samples)
		}
		fmt.Fprintf(cfg.Out, "\n  iters  :")
		for _, n := range l.Nodes {
			fmt.Fprintf(cfg.Out, " %7d", n.Iters)
		}
		fmt.Fprintf(cfg.Out, "\n  SVs    :")
		for _, n := range l.Nodes {
			fmt.Fprintf(cfg.Out, " %7d", n.SVs)
		}
		fmt.Fprintln(cfg.Out)
		weightedNodes += l.MaxTime() * float64(len(l.Nodes))
		totalTime += l.MaxTime()
	}
	if totalTime > 0 {
		fmt.Fprintf(cfg.Out, "weighted average nodes in use (eqn 13): %.1f of %d\n",
			weightedNodes/totalTime, cfg.P)
	}
	return nil
}

// faceFCFSRun trains FCFS-CA on the face dataset with or without ratio
// balancing, the shared workload of Tables VI–IX.
func faceFCFSRun(cfg Config, ratio bool) (*core.Output, error) {
	d, e, err := loadScaled(cfg, "face")
	if err != nil {
		return nil, err
	}
	p := paramsFor(cfg, core.MethodFCFSCA, e, cfg.P, d.M())
	p.RatioBalanced = ratio
	return train(cfg, "face", d.X, d.Y, p)
}

func printLoadTable(cfg Config, out *core.Output) {
	st := out.Stats
	order := ranksByTime(st.NodeTrainSec)
	fmt.Fprintf(cfg.Out, "%-10s", "Rank")
	for _, r := range order {
		fmt.Fprintf(cfg.Out, " %8d", r)
	}
	fmt.Fprintf(cfg.Out, "\n%-10s", "Samples")
	for _, r := range order {
		fmt.Fprintf(cfg.Out, " %8d", st.PartSizes[r])
	}
	fmt.Fprintf(cfg.Out, "\n%-10s", "Iter")
	for _, r := range order {
		fmt.Fprintf(cfg.Out, " %8d", st.NodeIters[r])
	}
	fmt.Fprintf(cfg.Out, "\n%-10s", "Time (s)")
	for _, r := range order {
		fmt.Fprintf(cfg.Out, " %8.3f", st.NodeTrainSec[r])
	}
	fmt.Fprintln(cfg.Out)
	slow, fast := st.NodeTrainSec[order[len(order)-1]], st.NodeTrainSec[order[0]]
	if fast > 0 {
		fmt.Fprintf(cfg.Out, "slowest/fastest node: %.1f×\n", slow/fast)
	}
}

func printRatioTable(cfg Config, out *core.Output) {
	st := out.Stats
	fmt.Fprintf(cfg.Out, "%-5s %9s %8s %8s %9s | %6s %7s %7s %9s\n",
		"Rank", "Samples", "#(+)", "#(-)", "(+)/(-)", "SVs", "SV(+)", "SV(-)", "(+)/(-)")
	for r := 0; r < st.P; r++ {
		ratio := 0.0
		if st.NodeNeg[r] > 0 {
			ratio = float64(st.NodePos[r]) / float64(st.NodeNeg[r])
		}
		svRatio := 0.0
		if st.NodeSVNeg[r] > 0 {
			svRatio = float64(st.NodeSVPos[r]) / float64(st.NodeSVNeg[r])
		}
		fmt.Fprintf(cfg.Out, "%-5d %9d %8d %8d %9.4f | %6d %7d %7d %9.4f\n",
			r, st.PartSizes[r], st.NodePos[r], st.NodeNeg[r], ratio,
			st.NodeSVPos[r]+st.NodeSVNeg[r], st.NodeSVPos[r], st.NodeSVNeg[r], svRatio)
	}
}

// Table6 reproduces Table VI: FCFS balances data volume but not load.
func Table6(cfg Config) error {
	cfg = cfg.withDefaults()
	out, err := faceFCFSRun(cfg, false)
	if err != nil {
		return err
	}
	printLoadTable(cfg, out)
	fmt.Fprintln(cfg.Out, "(paper: balanced data ≠ balanced load)")
	return nil
}

// Table7 reproduces Table VII: per-node class counts and SV ratios under
// plain FCFS — the positive-sample skew explains the load imbalance.
func Table7(cfg Config) error {
	cfg = cfg.withDefaults()
	out, err := faceFCFSRun(cfg, false)
	if err != nil {
		return err
	}
	printRatioTable(cfg, out)
	fmt.Fprintln(cfg.Out, "(paper: pos/neg sample ratios differ wildly; SV ratios ≈ 1)")
	return nil
}

// Table8 reproduces Table VIII: ratio-balanced FCFS equalises per-node
// class counts.
func Table8(cfg Config) error {
	cfg = cfg.withDefaults()
	out, err := faceFCFSRun(cfg, true)
	if err != nil {
		return err
	}
	printRatioTable(cfg, out)
	fmt.Fprintln(cfg.Out, "(paper: all nodes share the global pos/neg ratio)")
	return nil
}

// Table9 reproduces Table IX: balanced data + balanced ratio = balanced
// load.
func Table9(cfg Config) error {
	cfg = cfg.withDefaults()
	out, err := faceFCFSRun(cfg, true)
	if err != nil {
		return err
	}
	printLoadTable(cfg, out)
	fmt.Fprintln(cfg.Out, "(paper: slowest/fastest drops from ~20× to ~1×)")
	return nil
}

// commRun trains all six methods on the ijcnn workload and returns the
// outputs, shared by Tables X and XI and Figs 8–9 use the toy set.
func commRun(cfg Config, dataset string) (map[core.Method]*core.Output, *data.Dataset, data.Entry, error) {
	d, e, err := loadScaled(cfg, dataset)
	if err != nil {
		return nil, nil, data.Entry{}, err
	}
	outs := map[core.Method]*core.Output{}
	for _, m := range sixMethods() {
		out, err := train(cfg, dataset, d.X, d.Y, paramsFor(cfg, m, e, cfg.P, d.M()))
		if err != nil {
			return nil, nil, data.Entry{}, fmt.Errorf("%s: %w", m, err)
		}
		outs[m] = out
	}
	return outs, d, e, nil
}

// Table10 reproduces Table X: the closed-form communication-volume
// formulas against the bytes actually moved through the message layer.
func Table10(cfg Config) error {
	cfg = cfg.withDefaults()
	outs, d, _, err := commRun(cfg, "ijcnn")
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "m=%d n=%d P=%d\n", d.M(), d.Features(), cfg.P)
	fmt.Fprintf(cfg.Out, "%-10s %12s %12s %8s\n", "Method", "Prediction", "Measured", "Ratio")
	for _, m := range sixMethods() {
		out := outs[m]
		in := perfmodel.VolumeInput{
			M: d.M(), N: d.Features(), P: cfg.P,
			S: out.Stats.SVs, I: out.Stats.Iters, K: out.Stats.KMeansIters,
		}
		pred := perfmodel.VolumeByMethod(volumeName(m), in)
		meas := out.Stats.CommBytes
		ratio := "n/a"
		if pred > 0 {
			ratio = fmt.Sprintf("%.2f", float64(meas)/float64(pred))
		}
		fmt.Fprintf(cfg.Out, "%-10s %12s %12s %8s\n",
			methodLabel(m), fmtBytes(int64(pred)), fmtBytes(meas), ratio)
	}
	fmt.Fprintln(cfg.Out, "(paper: predictions track measurements; CA-SVM is exactly 0)")
	return nil
}

func volumeName(m core.Method) string {
	if m == core.MethodRACA {
		return "casvm"
	}
	return string(m)
}

// Table11 reproduces Table XI: message counts and volume per operation.
func Table11(cfg Config) error {
	cfg = cfg.withDefaults()
	outs, _, _, err := commRun(cfg, "ijcnn")
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%-10s %10s %14s %18s\n", "Method", "Amount", "Comm Ops", "Amount/Operation")
	for _, m := range sixMethods() {
		st := outs[m].Stats
		perOp := "N/A"
		if st.CommOps > 0 {
			perOp = fmt.Sprintf("%.0fB", float64(st.CommBytes)/float64(st.CommOps))
		}
		fmt.Fprintf(cfg.Out, "%-10s %10s %14d %18s\n",
			methodLabel(m), fmtBytes(st.CommBytes), st.CommOps, perOp)
	}
	fmt.Fprintln(cfg.Out, "(paper: Dis-SMO sends hundreds of thousands of tiny messages)")
	return nil
}

// Table12 prints the dataset inventory (Table XII): the paper's original
// scale and the synthetic stand-in actually used here.
func Table12(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "%-9s %-24s %12s %10s | %10s %9s %7s\n",
		"Dataset", "Application Field", "#samples", "#features", "synth m", "synth n", "pos%")
	for _, name := range data.Names() {
		d, e, err := loadScaled(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-9s %-24s %12d %10d | %10d %9d %6.1f%%\n",
			name, e.Field, e.PaperSamples, e.PaperFeatures,
			d.M(), d.Features(), 100*d.PosFrac())
	}
	return nil
}

// DatasetTable builds the runner for one of Tables XIII–XVIII: all eight
// methods on the named dataset, reporting accuracy, iterations and virtual
// time split into Init and Training.
func DatasetTable(name string) func(cfg Config) error {
	return func(cfg Config) error {
		cfg = cfg.withDefaults()
		d, e, err := loadScaled(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "dataset=%s m=%d n=%d P=%d (virtual seconds, Hopper model)\n",
			name, d.M(), d.Features(), cfg.P)
		fmt.Fprintf(cfg.Out, "%-10s %9s %11s %22s %9s\n",
			"Method", "Accuracy", "Iterations", "Time (Init, Training)", "Speedup")
		var base float64
		for _, m := range core.Methods() {
			out, err := train(cfg, name, d.X, d.Y, paramsFor(cfg, m, e, cfg.P, d.M()))
			if err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
			acc := out.Set.Accuracy(d.TestX, d.TestY)
			total := out.Stats.TotalSec
			if m == core.MethodDisSMO {
				base = total
			}
			speedup := ""
			if base > 0 && total > 0 {
				speedup = fmt.Sprintf("%.2fx", base/total)
			}
			fmt.Fprintf(cfg.Out, "%-10s %8.1f%% %11d %9.3fs (%0.4f, %0.3f) %8s\n",
				methodLabel(m), 100*acc, out.Stats.Iters, total,
				out.Stats.InitSec, out.Stats.TrainSec, speedup)
		}
		return nil
	}
}
