package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"casvm/internal/core"
	"casvm/internal/kmeans"
	"casvm/internal/partition"
)

// Fig5 reproduces Figure 5: per-node partition sizes under plain K-means
// versus FCFS on the face dataset — K-means is imbalanced, FCFS exact.
func Fig5(cfg Config) error {
	cfg = cfg.withDefaults()
	d, _, err := loadScaled(cfg, "face")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	km := kmeans.Run(d.X, kmeans.Seed(d.X, cfg.P, rng), 0, 0)
	fcfs, err := partition.FCFS(d.X, d.Y, cfg.P, partition.Options{}, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "m=%d P=%d\n", d.M(), cfg.P)
	fmt.Fprintf(cfg.Out, "%-8s", "Node")
	for r := 0; r < cfg.P; r++ {
		fmt.Fprintf(cfg.Out, " %8d", r)
	}
	fmt.Fprintf(cfg.Out, "\n%-8s", "K-means")
	for _, s := range km.Sizes {
		fmt.Fprintf(cfg.Out, " %8d", s)
	}
	fmt.Fprintf(cfg.Out, "\n%-8s", "FCFS")
	for _, s := range fcfs.Sizes {
		fmt.Fprintf(cfg.Out, " %8d", s)
	}
	fmt.Fprintln(cfg.Out)
	fmt.Fprintln(cfg.Out, "(paper: K-means imbalanced, FCFS gives every node exactly m/P)")
	return nil
}

// Fig7 reproduces Figure 7: per-node training time under CP-SVM (load
// imbalanced) versus CA-SVM (balanced) on the epsilon workload.
func Fig7(cfg Config) error {
	cfg = cfg.withDefaults()
	d, e, err := loadScaled(cfg, "epsilon")
	if err != nil {
		return err
	}
	cp, err := train(cfg, "epsilon", d.X, d.Y, paramsFor(cfg, core.MethodCPSVM, e, cfg.P, d.M()))
	if err != nil {
		return err
	}
	ca, err := train(cfg, "epsilon", d.X, d.Y, paramsFor(cfg, core.MethodRACA, e, cfg.P, d.M()))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%-8s", "Node")
	for r := 0; r < cfg.P; r++ {
		fmt.Fprintf(cfg.Out, " %9d", r)
	}
	fmt.Fprintf(cfg.Out, "\n%-8s", "CP-SVM")
	for _, t := range cp.Stats.NodeTrainSec {
		fmt.Fprintf(cfg.Out, " %8.3fs", t)
	}
	fmt.Fprintf(cfg.Out, "\n%-8s", "CA-SVM")
	for _, t := range ca.Stats.NodeTrainSec {
		fmt.Fprintf(cfg.Out, " %8.3fs", t)
	}
	fmt.Fprintln(cfg.Out)
	fmt.Fprintf(cfg.Out, "imbalance (max/min node time): CP-SVM %.1f×, CA-SVM %.1f×\n",
		spread(cp.Stats.NodeTrainSec), spread(ca.Stats.NodeTrainSec))
	return nil
}

func spread(ts []float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	min, max := ts[0], ts[0]
	for _, t := range ts {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if min <= 0 {
		return 0
	}
	return max / min
}

// Fig8 reproduces Figure 8: the P×P communication byte matrix of each
// method on the toy dataset.
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	outs, d, _, err := commRun(cfg, "toy")
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "toy dataset, m=%d, P=%d; entries are bytes sender→receiver\n", d.M(), cfg.P)
	for _, m := range sixMethods() {
		fmt.Fprintf(cfg.Out, "\n-- %s (total %s) --\n", methodLabel(m), fmtBytes(outs[m].Stats.CommBytes))
		fmt.Fprint(cfg.Out, formatMatrix(outs[m].Stats.CommMatrix))
	}
	return nil
}

func formatMatrix(m [][]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s", "s\\r")
	for j := range m {
		fmt.Fprintf(&b, " %9d", j)
	}
	b.WriteByte('\n')
	for i, row := range m {
		fmt.Fprintf(&b, "%5d", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %9d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9 reproduces Figure 9: the ratio of communication time to total time
// for the six methods plus both CA-SVM placements (casvm1 scatters from
// rank 0; casvm2 starts distributed and communicates nothing).
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	d, e, err := loadScaled(cfg, "toy")
	if err != nil {
		return err
	}
	type row struct {
		label string
		m     core.Method
		place core.Placement
	}
	rows := []row{
		{"Dis-SMO", core.MethodDisSMO, core.PlacementRoot},
		{"Cascade", core.MethodCascade, core.PlacementRoot},
		{"DC-SVM", core.MethodDCSVM, core.PlacementRoot},
		{"DC-Filter", core.MethodDCFilter, core.PlacementRoot},
		{"CP-SVM", core.MethodCPSVM, core.PlacementRoot},
		{"casvm1", core.MethodRACA, core.PlacementRoot},
		{"casvm2", core.MethodRACA, core.PlacementDistributed},
	}
	fmt.Fprintf(cfg.Out, "%-10s %12s %12s %14s\n", "Method", "CommSec", "CompSec", "Comm/Total")
	for _, r := range rows {
		p := paramsFor(cfg, r.m, e, cfg.P, d.M())
		p.Placement = r.place
		out, err := train(cfg, "toy", d.X, d.Y, p)
		if err != nil {
			return fmt.Errorf("%s: %w", r.label, err)
		}
		comm, comp := out.Stats.CommSec, out.Stats.CompSec
		ratio := 0.0
		if comm+comp > 0 {
			ratio = comm / (comm + comp)
		}
		fmt.Fprintf(cfg.Out, "%-10s %11.5fs %11.5fs %13.1f%%\n", r.label, comm, comp, 100*ratio)
	}
	fmt.Fprintln(cfg.Out, "(paper: Dis-SMO ≈70% communication; casvm2 exactly 0%)")
	return nil
}
