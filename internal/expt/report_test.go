package expt

import (
	"bytes"
	"encoding/json"
	"testing"

	"casvm/internal/core"
	"casvm/internal/trace"
)

// TestReportSinkCollectsRuns drives the harness's train() chokepoint with a
// sink attached and checks every run lands in it as a schema-stamped report.
func TestReportSinkCollectsRuns(t *testing.T) {
	cfg := Config{Reports: &ReportSink{}}.withDefaults()
	d, e, err := loadScaled(cfg, "toy")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Method{core.MethodRACA, core.MethodCPSVM} {
		pr := paramsFor(cfg, m, e, 4, d.X.Rows())
		if _, err := train(cfg, "toy", d.X, d.Y, pr); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if got := cfg.Reports.Len(); got != 2 {
		t.Fatalf("sink holds %d reports, want 2", got)
	}

	var buf bytes.Buffer
	if err := cfg.Reports.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var reps []*trace.Report
	if err := json.Unmarshal(buf.Bytes(), &reps); err != nil {
		t.Fatalf("sink output is not a JSON array: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("array holds %d reports, want 2", len(reps))
	}
	for i, r := range reps {
		if r.Schema != trace.ReportSchema {
			t.Fatalf("report %d schema %q, want %q", i, r.Schema, trace.ReportSchema)
		}
		if r.Dataset != "toy" || r.Iters <= 0 || len(r.Phases) == 0 || len(r.Metrics) == 0 {
			t.Fatalf("report %d incomplete: dataset=%q iters=%d phases=%d metrics=%d",
				i, r.Dataset, r.Iters, len(r.Phases), len(r.Metrics))
		}
	}
}

// TestReportSinkEmpty: an untouched sink still writes a valid (empty) array.
func TestReportSinkEmpty(t *testing.T) {
	var s ReportSink
	if s.Len() != 0 {
		t.Fatal("fresh sink not empty")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var reps []*trace.Report
	if err := json.Unmarshal(buf.Bytes(), &reps); err != nil {
		t.Fatalf("empty sink output is not a JSON array: %v", err)
	}
	if len(reps) != 0 {
		t.Fatalf("empty sink produced %d reports", len(reps))
	}
}

// TestTrainWithoutSinkStaysUninstrumented: nil Reports must not attach any
// observability sinks to the run.
func TestTrainWithoutSinkStaysUninstrumented(t *testing.T) {
	cfg := Config{}.withDefaults()
	d, e, err := loadScaled(cfg, "toy")
	if err != nil {
		t.Fatal(err)
	}
	pr := paramsFor(cfg, core.MethodRACA, e, 4, d.X.Rows())
	out, err := train(cfg, "toy", d.X, d.Y, pr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Iters <= 0 {
		t.Fatal("training did not run")
	}
}
