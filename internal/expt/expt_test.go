package expt

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.1, P: 4, MaxP: 16, Seed: 1}
}

// Every experiment must run cleanly at tiny scale and produce output.
func TestAllRunnersSmoke(t *testing.T) {
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(r, tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced almost no output:\n%s", r.ID, buf.String())
			}
		})
	}
}

func TestFindAndRunAllErrors(t *testing.T) {
	if _, err := Find("table99"); err == nil {
		t.Error("unknown id should fail")
	}
	if len(Runners()) != 24 {
		t.Errorf("runners=%d want 24", len(Runners()))
	}
	ids := map[string]bool{}
	for _, r := range Runners() {
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestTable10CASVMZeroRow(t *testing.T) {
	var buf bytes.Buffer
	if err := Table10(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "RA-CA") {
			found = true
			if !strings.Contains(line, "0B") {
				t.Errorf("RA-CA row should be zero bytes: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("no RA-CA row:\n%s", out)
	}
}

func TestTable12ListsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := Table12(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"adult", "epsilon", "face", "gisette", "ijcnn", "usps", "webspam"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("table12 missing %s", name)
		}
	}
}

func TestFig9HasBothPlacements(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "casvm1") || !strings.Contains(out, "casvm2") {
		t.Fatalf("fig9 must include both placements:\n%s", out)
	}
	// casvm2's comm ratio must be exactly zero.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "casvm2") && !strings.Contains(line, "0.0%") {
			t.Errorf("casvm2 should be 0%% comm: %q", line)
		}
	}
}

func TestWeakScalingCAFlat(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	per := weakPerNode(cfg)
	times, err := scalingTimes(cfg, func(p int) int { return per * p })
	if err != nil {
		t.Fatal(err)
	}
	// CA-SVM weak-scaling time must grow far slower than Dis-SMO's.
	ca := times["ra-ca"]
	dis := times["dissmo"]
	if len(ca) < 2 {
		t.Fatal("sweep too short")
	}
	caGrowth := ca[len(ca)-1] / ca[0]
	disGrowth := dis[len(dis)-1] / dis[0]
	if caGrowth > disGrowth {
		t.Errorf("CA growth %.2f should beat Dis-SMO growth %.2f", caGrowth, disGrowth)
	}
}

func TestMachineFor(t *testing.T) {
	full := machineFor(48000, 48000)
	if full.Ts != machineFor(100000, 48000).Ts {
		t.Error("at or above paper scale the machine is unmodified")
	}
	half := machineFor(24000, 48000)
	if half.Ts >= full.Ts || half.Tw >= full.Tw {
		t.Error("below paper scale ts/tw shrink")
	}
	if half.Tc != full.Tc {
		t.Error("tc must not change")
	}
	if machineFor(10, 0).Ts != full.Ts {
		t.Error("paperSamples=0 leaves the machine unmodified")
	}
}

func TestRanksByTime(t *testing.T) {
	order := ranksByTime([]float64{3, 1, 2})
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order=%v", order)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{0: "0B", 500: "500B", 1500: "1.5KB", 2500000: "2.5MB"}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d)=%q want %q", in, got, want)
		}
	}
}
