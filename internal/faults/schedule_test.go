package faults

import (
	"errors"
	"reflect"
	"testing"

	"casvm/internal/mpi"
)

// TestRandomScheduleDeterministic: the same (seed, p, n, opts) draw yields
// the same schedule — a soak failure reproduces from its seed alone.
func TestRandomScheduleDeterministic(t *testing.T) {
	opts := ScheduleOptions{MaxIter: 32, MaxSend: 8, MaxCrashes: 2}
	a := RandomSchedule(7, 4, 6, opts)
	b := RandomSchedule(7, 4, 6, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Events, b.Events)
	}
	c := RandomSchedule(8, 4, 6, opts)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds drew identical schedules")
	}
	crashes := 0
	for _, e := range a.Events {
		if e.Kind == "crash-iter" || e.Kind == "crash-send" {
			crashes++
		}
	}
	if crashes > 2 {
		t.Fatalf("%d crash events exceed MaxCrashes=2", crashes)
	}
}

// TestScheduleCrashFiresOnce is the property that separates Schedule from
// Injector: after the crash fires, a respawned rank polling the same
// iteration again sails through.
func TestScheduleCrashFiresOnce(t *testing.T) {
	in := NewSchedule(Schedule{Events: []ScheduledFault{{Kind: "crash-iter", Rank: 2, Iter: 10}}})
	if err := in.CrashCheck(2, 5); err != nil {
		t.Fatalf("fired before trigger: %v", err)
	}
	if err := in.CrashCheck(1, 50); err != nil {
		t.Fatalf("fired for wrong rank: %v", err)
	}
	if err := in.CrashCheck(2, 12); err == nil {
		t.Fatal("did not fire at trigger")
	}
	// The respawned rank replays the same iterations: no re-fire.
	for iter := 0; iter < 64; iter++ {
		if err := in.CrashCheck(2, iter); err != nil {
			t.Fatalf("re-fired at iter %d after recovery", iter)
		}
	}
	if n := len(in.Events()); n != 1 {
		t.Fatalf("realized events = %d, want 1", n)
	}
}

// TestScheduleSendFaultsOneShot: message faults trigger at the rank's
// send-index threshold, exactly once each, and drops become retransmit
// delays (the in-process runtime has no retransmission of its own).
func TestScheduleSendFaultsOneShot(t *testing.T) {
	in := NewSchedule(Schedule{
		Events: []ScheduledFault{
			{Kind: "drop", Rank: 0, Send: 2},
			{Kind: "dup", Rank: 0, Send: 3},
			{Kind: "corrupt", Rank: 1, Send: 1},
		},
		RetransmitSec: 5e-3,
	})
	payload := []byte{1, 2, 3, 4}

	v := in.Intercept(0, 1, 7, payload) // rank 0 send #1: nothing armed yet
	if v.DelaySec != 0 || v.Duplicates != 0 || v.Payload != nil || v.Drop {
		t.Fatalf("send #1 perturbed: %+v", v)
	}
	v = in.Intercept(0, 1, 7, payload) // send #2: drop → retransmit delay
	if v.DelaySec != 5e-3 || v.Drop {
		t.Fatalf("drop not modeled as retransmit delay: %+v", v)
	}
	v = in.Intercept(0, 1, 7, payload) // send #3: dup (drop already consumed)
	if v.Duplicates != 1 || v.DelaySec != 0 {
		t.Fatalf("dup verdict: %+v", v)
	}
	v = in.Intercept(1, 0, 7, payload) // rank 1 send #1: corrupt
	if v.Payload == nil || &v.Payload[0] == &payload[0] {
		t.Fatal("corrupt must replace the payload without aliasing")
	}
	if n := len(in.Events()); n != 3 {
		t.Fatalf("realized events = %d, want 3", n)
	}
}

// TestScheduleEmpty: an empty schedule is a valid no-op injector — the
// -replay-faults path must accept a report whose chaos run happened to
// realize nothing. No poll perturbs, and the faults block round-trips to
// an equally empty schedule.
func TestScheduleEmpty(t *testing.T) {
	in := NewSchedule(Schedule{Seed: 9})
	for iter := 0; iter < 16; iter++ {
		for rank := 0; rank < 4; rank++ {
			if err := in.CrashCheck(rank, iter); err != nil {
				t.Fatalf("empty schedule crashed rank %d at iter %d: %v", rank, iter, err)
			}
		}
		if n := in.JoinCheck(iter); n != 0 {
			t.Fatalf("empty schedule grew the world by %d at iter %d", n, iter)
		}
	}
	if v := in.Intercept(0, 1, 7, []byte{1}); v.DelaySec != 0 || v.Duplicates != 0 || v.Payload != nil || v.Drop || v.CrashErr != nil {
		t.Fatalf("empty schedule perturbed the wire: %+v", v)
	}
	fi := in.FaultsInfo()
	if fi.Seed != 9 || len(fi.Schedule) != 0 || len(fi.Injected) != 0 {
		t.Fatalf("empty faults block: %+v", fi)
	}
	got := ScheduleFromFaults(fi)
	if got.Seed != 9 || len(got.Events) != 0 {
		t.Fatalf("empty round trip diverged: %+v", got)
	}
}

// TestSchedulePastRunEnd: events whose triggers lie beyond the run's last
// iteration stay armed but silent — the run completes fault-free, the
// report's schedule still carries them (replay fidelity), and the realized
// log does not.
func TestSchedulePastRunEnd(t *testing.T) {
	s := Schedule{Events: []ScheduledFault{
		{Kind: "crash-iter", Rank: 1, Iter: 1000},
		{Kind: "leave", Rank: 0, Iter: 1000},
		{Kind: "join", Iter: 1000},
		{Kind: "drop", Rank: 0, Send: 1 << 20},
	}}
	in := NewSchedule(s)
	const runEnd = 100 // the solver converges long before any trigger
	for iter := 0; iter < runEnd; iter++ {
		for rank := 0; rank < 2; rank++ {
			if err := in.CrashCheck(rank, iter); err != nil {
				t.Fatalf("fired before its trigger: %v", err)
			}
		}
		if n := in.JoinCheck(iter); n != 0 {
			t.Fatalf("join fired before its trigger at iter %d", iter)
		}
		if v := in.Intercept(0, 1, 7, []byte{1}); v.DelaySec != 0 || v.Duplicates != 0 || v.Payload != nil || v.Drop || v.CrashErr != nil {
			t.Fatalf("send fault fired before its index: %+v", v)
		}
	}
	if n := len(in.Events()); n != 0 {
		t.Fatalf("%d events realized in a run that ends before every trigger", n)
	}
	fi := in.FaultsInfo()
	if len(fi.Schedule) != 4 || len(fi.Injected) != 0 {
		t.Fatalf("report must keep unfired events in the schedule (got %d) and out of the realized log (got %d)",
			len(fi.Schedule), len(fi.Injected))
	}
	if got := ScheduleFromFaults(fi); !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("unfired events lost in round trip:\n%v\n%v", s.Events, got.Events)
	}
}

// TestScheduleSameRankSameEpoch: two departure events armed for the same
// rank at the same iteration consume one per poll, in schedule order — the
// first poll kills the rank once, and only the respawned incarnation's
// next poll takes the second hit. A join armed at the same epoch is
// consumed independently of the crash poll.
func TestScheduleSameRankSameEpoch(t *testing.T) {
	in := NewSchedule(Schedule{Events: []ScheduledFault{
		{Kind: "crash-iter", Rank: 2, Iter: 8},
		{Kind: "leave", Rank: 2, Iter: 8},
		{Kind: "join", Iter: 8},
		{Kind: "join", Iter: 8},
	}})
	err1 := in.CrashCheck(2, 8)
	if err1 == nil {
		t.Fatal("first poll did not fire")
	}
	var ce *mpi.CrashError
	if !errors.As(err1, &ce) || ce.Site != "training loop" {
		t.Fatalf("events must fire in schedule order; first poll got %v", err1)
	}
	// The respawned incarnation replays the epoch and takes the second hit.
	err2 := in.CrashCheck(2, 8)
	if err2 == nil {
		t.Fatal("second event swallowed: one poll must consume exactly one departure")
	}
	if !errors.As(err2, &ce) || ce.Site != "lease expired" {
		t.Fatalf("second poll got %v, want the leave event", err2)
	}
	if err := in.CrashCheck(2, 8); err != nil {
		t.Fatalf("third poll re-fired a consumed event: %v", err)
	}
	// Both joins due at the same epoch are handed over in one poll: the
	// supervisor grows the world once, by two ranks.
	if n := in.JoinCheck(8); n != 2 {
		t.Fatalf("JoinCheck = %d, want both same-epoch joins at once", n)
	}
	if n := in.JoinCheck(8); n != 0 {
		t.Fatalf("joins re-fired: %d", n)
	}
	if n := len(in.Events()); n != 4 {
		t.Fatalf("realized events = %d, want 4", n)
	}
}

// TestScheduleFaultsInfoRoundTrip: FaultsInfo → ScheduleFromFaults
// reconstructs the schedule (the -replay-faults path).
func TestScheduleFaultsInfoRoundTrip(t *testing.T) {
	s := RandomSchedule(3, 4, 5, ScheduleOptions{})
	s.Policy = "respawn"
	s.CheckpointEvery = 16
	in := NewSchedule(s)
	fi := in.FaultsInfo()
	if fi.Seed != 3 || fi.Policy != "respawn" || fi.CheckpointEvery != 16 {
		t.Fatalf("faults block header: %+v", fi)
	}
	got := ScheduleFromFaults(fi)
	if got.Seed != s.Seed || !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("round trip diverged:\n%v\n%v", s.Events, got.Events)
	}
}
