package faults

import (
	"reflect"
	"testing"
)

// TestRandomScheduleDeterministic: the same (seed, p, n, opts) draw yields
// the same schedule — a soak failure reproduces from its seed alone.
func TestRandomScheduleDeterministic(t *testing.T) {
	opts := ScheduleOptions{MaxIter: 32, MaxSend: 8, MaxCrashes: 2}
	a := RandomSchedule(7, 4, 6, opts)
	b := RandomSchedule(7, 4, 6, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Events, b.Events)
	}
	c := RandomSchedule(8, 4, 6, opts)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds drew identical schedules")
	}
	crashes := 0
	for _, e := range a.Events {
		if e.Kind == "crash-iter" || e.Kind == "crash-send" {
			crashes++
		}
	}
	if crashes > 2 {
		t.Fatalf("%d crash events exceed MaxCrashes=2", crashes)
	}
}

// TestScheduleCrashFiresOnce is the property that separates Schedule from
// Injector: after the crash fires, a respawned rank polling the same
// iteration again sails through.
func TestScheduleCrashFiresOnce(t *testing.T) {
	in := NewSchedule(Schedule{Events: []ScheduledFault{{Kind: "crash-iter", Rank: 2, Iter: 10}}})
	if err := in.CrashCheck(2, 5); err != nil {
		t.Fatalf("fired before trigger: %v", err)
	}
	if err := in.CrashCheck(1, 50); err != nil {
		t.Fatalf("fired for wrong rank: %v", err)
	}
	if err := in.CrashCheck(2, 12); err == nil {
		t.Fatal("did not fire at trigger")
	}
	// The respawned rank replays the same iterations: no re-fire.
	for iter := 0; iter < 64; iter++ {
		if err := in.CrashCheck(2, iter); err != nil {
			t.Fatalf("re-fired at iter %d after recovery", iter)
		}
	}
	if n := len(in.Events()); n != 1 {
		t.Fatalf("realized events = %d, want 1", n)
	}
}

// TestScheduleSendFaultsOneShot: message faults trigger at the rank's
// send-index threshold, exactly once each, and drops become retransmit
// delays (the in-process runtime has no retransmission of its own).
func TestScheduleSendFaultsOneShot(t *testing.T) {
	in := NewSchedule(Schedule{
		Events: []ScheduledFault{
			{Kind: "drop", Rank: 0, Send: 2},
			{Kind: "dup", Rank: 0, Send: 3},
			{Kind: "corrupt", Rank: 1, Send: 1},
		},
		RetransmitSec: 5e-3,
	})
	payload := []byte{1, 2, 3, 4}

	v := in.Intercept(0, 1, 7, payload) // rank 0 send #1: nothing armed yet
	if v.DelaySec != 0 || v.Duplicates != 0 || v.Payload != nil || v.Drop {
		t.Fatalf("send #1 perturbed: %+v", v)
	}
	v = in.Intercept(0, 1, 7, payload) // send #2: drop → retransmit delay
	if v.DelaySec != 5e-3 || v.Drop {
		t.Fatalf("drop not modeled as retransmit delay: %+v", v)
	}
	v = in.Intercept(0, 1, 7, payload) // send #3: dup (drop already consumed)
	if v.Duplicates != 1 || v.DelaySec != 0 {
		t.Fatalf("dup verdict: %+v", v)
	}
	v = in.Intercept(1, 0, 7, payload) // rank 1 send #1: corrupt
	if v.Payload == nil || &v.Payload[0] == &payload[0] {
		t.Fatal("corrupt must replace the payload without aliasing")
	}
	if n := len(in.Events()); n != 3 {
		t.Fatalf("realized events = %d, want 3", n)
	}
}

// TestScheduleFaultsInfoRoundTrip: FaultsInfo → ScheduleFromFaults
// reconstructs the schedule (the -replay-faults path).
func TestScheduleFaultsInfoRoundTrip(t *testing.T) {
	s := RandomSchedule(3, 4, 5, ScheduleOptions{})
	s.Policy = "respawn"
	s.CheckpointEvery = 16
	in := NewSchedule(s)
	fi := in.FaultsInfo()
	if fi.Seed != 3 || fi.Policy != "respawn" || fi.CheckpointEvery != 16 {
		t.Fatalf("faults block header: %+v", fi)
	}
	got := ScheduleFromFaults(fi)
	if got.Seed != s.Seed || !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("round trip diverged:\n%v\n%v", s.Events, got.Events)
	}
}
