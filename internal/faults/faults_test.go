package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"casvm/internal/mpi"
	"casvm/internal/perfmodel"
)

// drive pushes a fixed synthetic message schedule through an injector and
// returns the event log.
func drive(in *Injector) []Event {
	payload := []byte("0123456789abcdef")
	for msg := 0; msg < 200; msg++ {
		src := msg % 4
		dst := (msg + 1) % 4
		in.Intercept(src, dst, msg%7, payload)
	}
	return in.Events()
}

func TestScheduleIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, DropProb: 0.1, DupProb: 0.1, CorruptProb: 0.1, DelayProb: 0.2, DelaySec: 1e-3}
	a := drive(New(plan))
	b := drive(New(plan))
	if len(a) == 0 {
		t.Fatal("plan injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule.
	c := drive(New(Plan{Seed: 8, DropProb: 0.1, DupProb: 0.1, CorruptProb: 0.1, DelayProb: 0.2, DelaySec: 1e-3}))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

func TestCorruptionDoesNotAliasPayload(t *testing.T) {
	in := New(Plan{Seed: 1, CorruptProb: 1})
	orig := []byte("do not touch")
	keep := append([]byte(nil), orig...)
	v := in.Intercept(0, 1, 3, orig)
	if v.Payload == nil {
		t.Fatal("CorruptProb=1 did not corrupt")
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("injector mutated the caller's payload")
	}
	if bytes.Equal(v.Payload, orig) {
		t.Fatal("corrupted payload equals original")
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	in := New(Plan{Seed: 3, DropProb: 1, MaxFaults: 5})
	drive(in)
	if got := in.Count(""); got != 5 {
		t.Fatalf("injected %d faults, want 5", got)
	}
}

func TestCrashAtSendAbortsWorld(t *testing.T) {
	in := New(Plan{Seed: 1, CrashAtSend: map[int]int{2: 3}})
	w := mpi.NewWorld(4, perfmodel.Hopper(), 1)
	w.SetTransportHook(in)
	err := w.Run(func(c *mpi.Comm) error {
		for i := 0; i < 50; i++ {
			if _, err := fmtBcast(c, i); err != nil {
				return err
			}
		}
		return nil
	})
	var crash *mpi.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if crash.Rank != 2 {
		t.Fatalf("crashed rank %d, want 2", crash.Rank)
	}
	if lost := w.Stats().LostRanks(); len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("LostRanks=%v, want [2]", lost)
	}
	if in.Count("crash-send") != 1 {
		t.Fatalf("crash-send events: %d", in.Count("crash-send"))
	}
}

// fmtBcast rotates the broadcast root so every rank eventually sends.
func fmtBcast(c *mpi.Comm, round int) ([]byte, error) {
	root := round % c.Size()
	var payload []byte
	if c.Rank() == root {
		payload = []byte(fmt.Sprintf("round %d", round))
	}
	return c.Bcast(root, payload), nil
}

func TestDelayOnlyStretchesVirtualTime(t *testing.T) {
	run := func(hook mpi.TransportHook) ([]float64, float64) {
		w := mpi.NewWorld(4, perfmodel.Hopper(), 1)
		if hook != nil {
			w.SetTransportHook(hook)
		}
		var got []float64
		err := w.Run(func(c *mpi.Comm) error {
			out := c.AllreduceSum([]float64{float64(c.Rank() + 1)})
			if c.Rank() == 0 {
				got = out
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, w.MaxClock()
	}
	clean, cleanClock := run(nil)
	delayed, delayedClock := run(New(Plan{Seed: 2, DelayProb: 1, DelaySec: 0.5}))
	if clean[0] != delayed[0] {
		t.Fatalf("delay changed the result: %v vs %v", clean, delayed)
	}
	if delayedClock <= cleanClock+0.4 {
		t.Fatalf("delays not reflected in virtual time: %v vs %v", delayedClock, cleanClock)
	}
}

func TestCrashCheck(t *testing.T) {
	in := New(Plan{CrashAtIter: map[int]int{1: 10}})
	if err := in.CrashCheck(1, 9); err != nil {
		t.Fatalf("early crash: %v", err)
	}
	if err := in.CrashCheck(0, 100); err != nil {
		t.Fatalf("wrong rank crashed: %v", err)
	}
	err := in.CrashCheck(1, 10)
	var crash *mpi.CrashError
	if !errors.As(err, &crash) || crash.Rank != 1 || crash.Iter != 10 {
		t.Fatalf("want rank-1 iter-10 CrashError, got %v", err)
	}
}
