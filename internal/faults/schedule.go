// Schedule-based fault injection: an explicit, seeded list of one-shot
// fault events, built either by hand (golden tests), by RandomSchedule
// (the chaos soak), or from a run report's faults block (replay).
//
// The probability-driven Injector re-fires CrashAtIter on every poll past
// the trigger, which is right for fail-fast tests but fatal for recovery:
// a respawned rank would crash again at the same iteration forever. A
// Schedule consumes each event exactly once, so a recovered run proceeds
// past the fault — the semantics checkpoint/restart needs.
//
// Drops deserve a note: the in-process runtime has no retransmission, so a
// truly dropped message deadlocks the collective waiting for it. A
// scheduled "drop" therefore models drop-plus-retransmit — the frame is
// delivered after RetransmitSec of virtual delay, the cost a transport
// timeout and resend would have charged. Real drops remain available
// through Plan.DropProb for transports that bound waiting (tcpmpi).
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"casvm/internal/mpi"
	"casvm/internal/trace"
)

// ScheduledFault is one planned fault. Rank triggers by sender (message
// faults, keyed by the rank's 1-based remote-send index Send) or by the
// training loop's iteration count (crash-iter/leave, keyed by Iter).
//
// Two membership events ride alongside the classic faults:
//
//   - "leave" models a lease expiry: the rank departs the world at
//     iteration ≥ Iter. It surfaces as a *mpi.CrashError (site
//     "lease expired"), so the existing respawn/shrink recovery policies
//     handle it exactly like a failure-detector verdict.
//   - "join" models a worker registering mid-run: consumed by JoinCheck
//     (polled at epoch boundaries, right after a checkpoint deposit), it
//     asks the supervisor to grow the world by one rank. Rank is ignored —
//     the joiner gets the next fresh rank id.
type ScheduledFault struct {
	Kind     string  // "crash-iter" | "crash-send" | "drop" | "delay" | "dup" | "corrupt" | "leave" | "join"
	Rank     int     // the faulting rank (sender for message faults; ignored for "join")
	Iter     int     // crash-iter/leave/join: fires at the first poll with iter ≥ Iter
	Send     int     // message faults: fires at the rank's first remote send with index ≥ Send
	DelaySec float64 // extra virtual latency for "delay" events
}

func (e ScheduledFault) String() string {
	switch e.Kind {
	case "crash-iter", "leave":
		return fmt.Sprintf("%s rank %d iter %d", e.Kind, e.Rank, e.Iter)
	case "join":
		return fmt.Sprintf("join iter %d", e.Iter)
	}
	return fmt.Sprintf("%s rank %d send #%d", e.Kind, e.Rank, e.Send)
}

// ScheduleOptions shapes RandomSchedule's draw.
type ScheduleOptions struct {
	// Kinds is the event vocabulary to draw from; nil means every kind.
	Kinds []string
	// MaxIter bounds crash-iter trigger iterations (default 64).
	MaxIter int
	// MaxSend bounds message-fault send indices (default 32).
	MaxSend int
	// DelaySec is the virtual latency of delay events (default 1e-3).
	DelaySec float64
	// MaxCrashes caps crash events so a schedule cannot exceed the
	// supervisor's restart budget (default 1).
	MaxCrashes int
}

// RandomSchedule draws n seeded events over p ranks. The same (seed, p, n,
// opts) always yields the same schedule, so a soak failure reproduces from
// its logged seed alone.
func RandomSchedule(seed int64, p, n int, opts ScheduleOptions) Schedule {
	kinds := opts.Kinds
	if kinds == nil {
		kinds = []string{"crash-iter", "crash-send", "drop", "delay", "dup", "corrupt"}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 64
	}
	maxSend := opts.MaxSend
	if maxSend <= 0 {
		maxSend = 32
	}
	delay := opts.DelaySec
	if delay <= 0 {
		delay = 1e-3
	}
	maxCrashes := opts.MaxCrashes
	if maxCrashes <= 0 {
		maxCrashes = 1
	}
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	s := Schedule{Seed: seed}
	crashes := 0
	for len(s.Events) < n {
		e := ScheduledFault{
			Kind: kinds[rng.Intn(len(kinds))],
			Rank: rng.Intn(p),
			Iter: 1 + rng.Intn(maxIter),
			Send: 1 + rng.Intn(maxSend),
		}
		switch e.Kind {
		case "crash-iter", "crash-send", "leave":
			// A leave departs the world like a crash, so it draws from the
			// same bounded budget.
			if crashes >= maxCrashes {
				continue
			}
			crashes++
		case "delay":
			e.DelaySec = delay
		}
		s.Events = append(s.Events, e)
	}
	return s
}

// Schedule is an explicit fault plan: every event fires at most once.
type Schedule struct {
	Seed   int64
	Events []ScheduledFault
	// RetransmitSec is the virtual delay standing in for a dropped-then-
	// retransmitted frame (see the package note on drops); 0 means 2e-3.
	RetransmitSec float64
	// Policy and CheckpointEvery annotate the report's faults block with
	// the recovery configuration the schedule ran under (optional).
	Policy          string
	CheckpointEvery int
}

// JitterFunc builds a deterministic reconnect-jitter source for one rank,
// seeded from the schedule seed — wired into
// tcpmpi.Options.ReconnectJitter when chaos is active, so a replayed fault
// schedule (`casvm-train -replay-faults`) reproduces identical reconnect
// timing in the run report instead of drawing from the process-global RNG.
// The returned func is safe for concurrent use.
func (s Schedule) JitterFunc(rank int) func(max time.Duration) time.Duration {
	rng := rand.New(rand.NewSource(s.Seed*2862933555777941757 + int64(rank)*3037000493 + 1))
	var mu sync.Mutex
	return func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Int63n(int64(max) + 1))
	}
}

// NewSchedule builds the one-shot injector for a schedule. Build a fresh
// injector per run: consumed-event state is not resettable.
func NewSchedule(s Schedule) *ScheduleInjector {
	if s.RetransmitSec <= 0 {
		s.RetransmitSec = 2e-3
	}
	return &ScheduleInjector{
		sched: s,
		sends: map[int]int{},
		done:  make([]bool, len(s.Events)),
	}
}

// ScheduleFromFaults reconstructs a schedule from a report's faults block,
// so `casvm-train -replay-faults report.json` re-injects the exact
// schedule a failed chaos run recorded.
func ScheduleFromFaults(fi *trace.FaultsInfo) Schedule {
	s := Schedule{Seed: fi.Seed, Policy: fi.Policy, CheckpointEvery: fi.CheckpointEvery}
	for _, e := range fi.Schedule {
		s.Events = append(s.Events, ScheduledFault{
			Kind: e.Kind, Rank: e.Rank, Iter: e.Iter, Send: e.Send, DelaySec: e.DelaySec,
		})
	}
	return s
}

// ScheduleInjector applies a Schedule. It implements core.FaultInjector
// (mpi.TransportHook + CrashCheck) and trace.FaultReporter; it is safe for
// concurrent use by every rank goroutine, and its one-shot consumption
// survives world restarts — which is exactly what lets a respawned rank
// run past the iteration that killed it.
type ScheduleInjector struct {
	sched Schedule

	mu     sync.Mutex
	sends  map[int]int // remote sends attempted per rank (cumulative across restarts)
	done   []bool      // consumed flags, parallel to sched.Events
	events []Event     // realized log, in injection order
}

// Intercept implements mpi.TransportHook.
func (in *ScheduleInjector) Intercept(src, dst, tag int, data []byte) mpi.Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sends[src]++
	sent := in.sends[src]

	var v mpi.Verdict
	for i, e := range in.sched.Events {
		// Iteration-keyed kinds (crash-iter/leave/join) belong to the
		// CrashCheck/JoinCheck polls, not the wire.
		if in.done[i] || e.Rank != src || sent < e.Send ||
			e.Kind == "crash-iter" || e.Kind == "leave" || e.Kind == "join" {
			continue
		}
		in.done[i] = true
		switch e.Kind {
		case "crash-send":
			in.events = append(in.events, Event{Kind: "crash-send", Src: src, Dst: dst, Tag: tag, Iter: -1})
			return mpi.Verdict{CrashErr: &mpi.CrashError{Rank: src, Iter: -1,
				Site: fmt.Sprintf("send #%d to rank %d", sent, dst)}}
		case "drop":
			// Drop-plus-retransmit: the receiver sees the frame after the
			// modeled resend timeout instead of never (see package note).
			in.events = append(in.events, Event{Kind: "drop", Src: src, Dst: dst, Tag: tag, Iter: -1})
			if in.sched.RetransmitSec > v.DelaySec {
				v.DelaySec = in.sched.RetransmitSec
			}
		case "delay":
			in.events = append(in.events, Event{Kind: "delay", Src: src, Dst: dst, Tag: tag, Iter: -1})
			if e.DelaySec > v.DelaySec {
				v.DelaySec = e.DelaySec
			}
		case "dup":
			in.events = append(in.events, Event{Kind: "dup", Src: src, Dst: dst, Tag: tag, Iter: -1})
			v.Duplicates++
		case "corrupt":
			if len(data) == 0 {
				continue
			}
			in.events = append(in.events, Event{Kind: "corrupt", Src: src, Dst: dst, Tag: tag, Iter: -1})
			mutated := v.Payload
			if mutated == nil {
				mutated = append([]byte(nil), data...)
			}
			mutated[e.Send%len(mutated)] ^= 0xFF // deterministic flip position
			v.Payload = mutated
		}
	}
	return v
}

// CrashCheck implements the iteration-crash poll of core.FaultInjector.
// Unlike Injector.CrashCheck, each crash fires exactly once: after a
// recovery the respawned rank sails past the trigger. A "leave" event is a
// lease expiry: it departs the rank through the same typed error, so the
// recovery policy decides whether the slot is respawned or the world
// shrinks onto the survivors.
func (in *ScheduleInjector) CrashCheck(rank, iter int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, e := range in.sched.Events {
		if in.done[i] || (e.Kind != "crash-iter" && e.Kind != "leave") || e.Rank != rank || iter < e.Iter {
			continue
		}
		in.done[i] = true
		in.events = append(in.events, Event{Kind: e.Kind, Src: rank, Dst: -1, Tag: -1, Iter: iter})
		site := "training loop"
		if e.Kind == "leave" {
			site = "lease expired"
		}
		return &mpi.CrashError{Rank: rank, Iter: iter, Site: site}
	}
	return nil
}

// JoinCheck implements the elastic-join poll of core.ElasticSource: it
// consumes every due "join" event (iter ≥ the event's trigger) and returns
// how many workers want in. The training loops poll it only at epoch
// boundaries — right after a checkpoint deposit — so a grow always resumes
// from a state the supervisor can re-slice.
func (in *ScheduleInjector) JoinCheck(iter int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for i, e := range in.sched.Events {
		if in.done[i] || e.Kind != "join" || iter < e.Iter {
			continue
		}
		in.done[i] = true
		in.events = append(in.events, Event{Kind: "join", Src: -1, Dst: -1, Tag: -1, Iter: iter})
		n++
	}
	return n
}

// Events returns a copy of the realized-fault log in injection order.
func (in *ScheduleInjector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// FaultsInfo implements trace.FaultReporter: the report's faults block
// with both the configured schedule and the realized events.
func (in *ScheduleInjector) FaultsInfo() *trace.FaultsInfo {
	in.mu.Lock()
	defer in.mu.Unlock()
	fi := &trace.FaultsInfo{
		Seed:            in.sched.Seed,
		Policy:          in.sched.Policy,
		CheckpointEvery: in.sched.CheckpointEvery,
	}
	for _, e := range in.sched.Events {
		fi.Schedule = append(fi.Schedule, trace.FaultEvent{
			Kind: e.Kind, Rank: e.Rank, Iter: e.Iter, Send: e.Send, DelaySec: e.DelaySec,
		})
	}
	for _, e := range in.events {
		fe := trace.FaultEvent{Kind: e.Kind, Rank: e.Src}
		if e.Kind == "crash-iter" {
			fe.Iter = e.Iter
		} else {
			fe.Dst = e.Dst
		}
		fi.Injected = append(fi.Injected, fe)
	}
	return fi
}
