// Package faults is a deterministic, seeded fault injector for the
// in-process message-passing runtime. It implements mpi.TransportHook, so
// installing it on a World (mpi.World.SetTransportHook) subjects every
// remote transfer of every collective and every training method to
// configurable chaos: message drop, delay, duplication, byte corruption,
// and rank crashes — either at the k-th message a rank sends or at
// training iteration k (via CrashCheck, polled by the SMO solvers).
//
// Determinism: each sending rank draws from its own RNG stream derived
// from Plan.Seed, so the fault schedule depends only on (seed, per-rank
// message order), not on goroutine interleaving across ranks. Two runs of
// a deterministic program with the same plan inject the same faults.
package faults

import (
	"fmt"
	"math/rand"
	"sync"

	"casvm/internal/mpi"
)

// Plan configures an Injector. Probabilities are per-message in [0,1];
// the zero value injects nothing.
type Plan struct {
	Seed int64

	// DropProb silently discards a message. The in-process runtime has no
	// retransmission, so any nonzero drop rate will hang collectives —
	// use it only with transports or tests that bound waiting.
	DropProb float64
	// DupProb delivers one extra copy of a message.
	DupProb float64
	// CorruptProb flips one random byte of the payload (on a copy).
	CorruptProb float64
	// DelayProb adds DelaySec of virtual latency to a message.
	DelayProb float64
	// DelaySec is the virtual delay injected by DelayProb (seconds).
	DelaySec float64

	// MaxFaults caps the total number of injected message faults
	// (drop+dup+corrupt+delay); 0 means unlimited. Crashes do not count.
	MaxFaults int

	// CrashAtSend kills rank r the moment it attempts its k-th remote
	// send (1-based): CrashAtSend[r] = k.
	CrashAtSend map[int]int
	// CrashAtIter kills rank r when its training loop reports iteration
	// k to CrashCheck: CrashAtIter[r] = k. This reaches the
	// zero-communication CA-SVM training phase, which no transport hook
	// can see.
	CrashAtIter map[int]int
}

// Event records one injected fault, for assertions and debugging.
type Event struct {
	Kind     string // "drop" | "dup" | "corrupt" | "delay" | "crash-send" | "crash-iter"
	Src, Dst int    // Dst is -1 for iteration crashes
	Tag      int
	Iter     int // iteration for crash-iter events; -1 otherwise
}

func (e Event) String() string {
	if e.Kind == "crash-iter" {
		return fmt.Sprintf("crash-iter rank %d iter %d", e.Src, e.Iter)
	}
	return fmt.Sprintf("%s %d->%d tag %d", e.Kind, e.Src, e.Dst, e.Tag)
}

// Injector applies a Plan. It is safe for concurrent use by every rank
// goroutine of a world and may be reused across worlds (counters persist;
// build a fresh Injector per run for a clean schedule).
type Injector struct {
	plan Plan

	mu      sync.Mutex
	rngs    map[int]*rand.Rand
	sends   map[int]int // remote sends attempted per rank
	crashed map[int]bool
	faults  int
	events  []Event
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{
		plan:    plan,
		rngs:    map[int]*rand.Rand{},
		sends:   map[int]int{},
		crashed: map[int]bool{},
	}
}

// rng returns rank's private deterministic stream (callers hold in.mu).
func (in *Injector) rng(rank int) *rand.Rand {
	r, ok := in.rngs[rank]
	if !ok {
		r = rand.New(rand.NewSource(in.plan.Seed*6364136223846793005 + int64(rank) + 1442695040888963407))
		in.rngs[rank] = r
	}
	return r
}

func (in *Injector) budget() bool {
	return in.plan.MaxFaults == 0 || in.faults < in.plan.MaxFaults
}

// Intercept implements mpi.TransportHook.
func (in *Injector) Intercept(src, dst, tag int, data []byte) mpi.Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()

	in.sends[src]++
	if k, ok := in.plan.CrashAtSend[src]; ok && !in.crashed[src] && in.sends[src] >= k {
		in.crashed[src] = true
		in.events = append(in.events, Event{Kind: "crash-send", Src: src, Dst: dst, Tag: tag, Iter: -1})
		return mpi.Verdict{CrashErr: &mpi.CrashError{Rank: src, Iter: -1,
			Site: fmt.Sprintf("send #%d to rank %d", in.sends[src], dst)}}
	}

	var v mpi.Verdict
	rng := in.rng(src)
	// Draw every gate unconditionally so the schedule does not depend on
	// which earlier gates fired (stable stream consumption).
	drop := rng.Float64() < in.plan.DropProb
	dup := rng.Float64() < in.plan.DupProb
	corrupt := rng.Float64() < in.plan.CorruptProb
	delay := rng.Float64() < in.plan.DelayProb
	pos := 0
	if len(data) > 0 {
		pos = rng.Intn(len(data))
	}

	if drop && in.budget() {
		in.faults++
		in.events = append(in.events, Event{Kind: "drop", Src: src, Dst: dst, Tag: tag, Iter: -1})
		v.Drop = true
		return v
	}
	if corrupt && len(data) > 0 && in.budget() {
		in.faults++
		in.events = append(in.events, Event{Kind: "corrupt", Src: src, Dst: dst, Tag: tag, Iter: -1})
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0xFF
		v.Payload = mutated
	}
	if dup && in.budget() {
		in.faults++
		in.events = append(in.events, Event{Kind: "dup", Src: src, Dst: dst, Tag: tag, Iter: -1})
		v.Duplicates = 1
	}
	if delay && in.plan.DelaySec > 0 && in.budget() {
		in.faults++
		in.events = append(in.events, Event{Kind: "delay", Src: src, Dst: dst, Tag: tag, Iter: -1})
		v.DelaySec = in.plan.DelaySec
	}
	return v
}

// CrashCheck is polled by training loops with the rank's current iteration
// count; it returns a *mpi.CrashError when the plan kills this rank at (or
// before) that iteration, and nil otherwise.
func (in *Injector) CrashCheck(rank, iter int) error {
	k, ok := in.plan.CrashAtIter[rank]
	if !ok || iter < k {
		return nil
	}
	in.mu.Lock()
	if !in.crashed[rank] {
		in.crashed[rank] = true
		in.events = append(in.events, Event{Kind: "crash-iter", Src: rank, Dst: -1, Tag: -1, Iter: iter})
	}
	in.mu.Unlock()
	return &mpi.CrashError{Rank: rank, Iter: iter, Site: "training loop"}
}

// Events returns a copy of the injected-fault log in injection order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Count returns how many events of the given kind were injected ("" counts
// everything).
func (in *Injector) Count(kind string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.events {
		if kind == "" || e.Kind == kind {
			n++
		}
	}
	return n
}
