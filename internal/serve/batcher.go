package serve

import (
	"fmt"
	"time"

	"casvm/internal/la"
	"casvm/internal/trace"
)

// The micro-batcher is the throughput lever of the serving plane: many
// concurrent requests coalesce into one blocked Set.PredictAll evaluation,
// so the support-vector matrix streams through the kernel tile engine once
// per batch instead of once per request. Two budgets bound the coalescing:
//
//   - MaxBatch: flush as soon as the pending queries reach this count
//     (throughput bound — tiles are full, amortisation is maximal);
//   - MaxDelay: flush this long after the first query went pending
//     (latency bound — a lone request never waits for company longer
//     than the budget).
//
// A request is an atomic unit: all its queries land in the same flush and
// are therefore evaluated against the same model Snapshot. Batching never
// changes results — PredictAll is bit-identical to per-row Predict no
// matter how requests interleave, which TestBatchEquivalence pins.

// BatcherConfig bounds the coalescing window.
type BatcherConfig struct {
	// MaxBatch flushes when this many queries are pending (≤ 0 selects 256).
	MaxBatch int
	// MaxDelay flushes this long after the first pending query arrived
	// (≤ 0 selects 2ms).
	MaxDelay time.Duration
	// QueueDepth bounds requests waiting to enter a batch (≤ 0 selects 1024).
	QueueDepth int
}

// Defaulted returns cfg with zero fields resolved.
func (cfg BatcherConfig) Defaulted() BatcherConfig {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return cfg
}

// batchReq is one enqueued request: flattened rows plus the reply channel.
type batchReq struct {
	rows      []float64 // nq × width, row-major
	nq, width int
	decisions bool
	done      chan batchOut
}

// batchOut is the per-request slice of one flush's results.
type batchOut struct {
	labels     []float64
	decisions  []float64
	generation uint64
	batchSize  int
	err        error
}

// batcherMetrics groups the observability handles (all nil-safe).
type batcherMetrics struct {
	batches    *trace.Counter
	flushFull  *trace.Counter
	flushTimer *trace.Counter
	batchSize  *trace.Histogram
	queueDepth *trace.Gauge
}

// Batcher coalesces requests for one model handle. One goroutine owns the
// pending set; flushes run inline in that goroutine (PredictAll itself
// fans out across query blocks on the shared worker pool).
type Batcher struct {
	handle *Handle
	cfg    BatcherConfig
	m      batcherMetrics
	reqs   chan *batchReq
	stop   chan struct{}
	done   chan struct{}
}

// newBatcher starts the coalescing loop for h.
func newBatcher(h *Handle, cfg BatcherConfig, m batcherMetrics) *Batcher {
	b := &Batcher{
		handle: h,
		cfg:    cfg.Defaulted(),
		m:      m,
		reqs:   make(chan *batchReq, cfg.Defaulted().QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.run()
	return b
}

// Close flushes the pending batch and stops the loop.
func (b *Batcher) Close() {
	close(b.stop)
	<-b.done
}

// Predict enqueues one validated request and blocks until its batch
// flushes. rows is retained until the flush; callers must not reuse it.
func (b *Batcher) Predict(rows []float64, nq, width int, decisions bool) (batchOut, error) {
	r := &batchReq{rows: rows, nq: nq, width: width, decisions: decisions, done: make(chan batchOut, 1)}
	select {
	case b.reqs <- r:
	default:
		return batchOut{}, fmt.Errorf("serve: model %q queue full (%d requests pending)", b.handle.Name, cap(b.reqs))
	}
	select {
	case out := <-r.done:
		return out, out.err
	case <-b.done:
		return batchOut{}, fmt.Errorf("serve: batcher for %q shut down", b.handle.Name)
	}
}

// run is the coalescing loop. The timer arms when the first request of a
// batch arrives and is quenched on every flush, so MaxDelay measures the
// oldest pending request's wait, not an arbitrary tick phase.
func (b *Batcher) run() {
	defer close(b.done)
	var pending []*batchReq
	var pendingQ int
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func(full bool) {
		if len(pending) == 0 {
			return
		}
		if full {
			b.m.flushFull.Inc()
		} else {
			b.m.flushTimer.Inc()
		}
		b.flush(pending, pendingQ)
		pending, pendingQ = nil, 0
		b.m.queueDepth.Set(0)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	add := func(r *batchReq) {
		if len(pending) == 0 {
			timer.Reset(b.cfg.MaxDelay)
		}
		pending = append(pending, r)
		pendingQ += r.nq
		b.m.queueDepth.Set(float64(pendingQ))
		if pendingQ >= b.cfg.MaxBatch {
			flush(true)
		}
	}
	for {
		select {
		case r := <-b.reqs:
			add(r)
		case <-timer.C:
			flush(false)
		case <-b.stop:
			// Drain whatever already queued, then flush the remainder so no
			// caller is left blocked.
			for {
				select {
				case r := <-b.reqs:
					add(r)
					continue
				default:
				}
				break
			}
			flush(false)
			return
		}
	}
}

// flush evaluates one coalesced batch against a single model Snapshot and
// scatters the results back to the per-request reply channels.
func (b *Batcher) flush(pending []*batchReq, total int) {
	snap := b.handle.Snapshot()
	set := snap.Set
	feats := set.Centers.Features()
	b.m.batches.Inc()
	b.m.batchSize.Observe(float64(total))

	// Width mismatches (a request validated against a previous generation,
	// then a reload changed the feature count) fail per-request, never the
	// whole batch.
	rows := make([]float64, 0, total*feats)
	live := pending[:0]
	liveQ := 0
	wantDecisions := false
	for _, r := range pending {
		if r.width != feats {
			r.done <- batchOut{err: fmt.Errorf("serve: query width %d, model %q generation %d has %d features",
				r.width, b.handle.Name, snap.Generation, feats)}
			continue
		}
		rows = append(rows, r.rows...)
		live = append(live, r)
		liveQ += r.nq
		wantDecisions = wantDecisions || r.decisions
	}
	if liveQ == 0 {
		return
	}
	q := la.NewDense(liveQ, feats, rows)
	labels := set.PredictAll(q)
	var decs []float64
	if wantDecisions {
		decs = set.DecisionAll(q)
	}
	off := 0
	for _, r := range live {
		out := batchOut{
			labels:     labels[off : off+r.nq : off+r.nq],
			generation: snap.Generation,
			batchSize:  liveQ,
		}
		if r.decisions {
			out.decisions = decs[off : off+r.nq : off+r.nq]
		}
		off += r.nq
		r.done <- out
	}
}
