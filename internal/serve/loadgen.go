package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator drives a running server over real HTTP — same JSON
// encode/decode, same connection handling a production client would pay —
// so the sustained-throughput numbers in BENCH_serve.json measure the
// whole serving plane, not just the kernel math. It backs both
// BenchmarkServeSustained and `casvm-serve -selfbench`.

// LoadOptions configures one sustained-load run.
type LoadOptions struct {
	// URL is the server base URL (e.g. from Server.URL()).
	URL string
	// Model names the registry entry ("" uses the server's resolution).
	Model string
	// Concurrency is the number of client workers (≤ 0 selects
	// 2·GOMAXPROCS).
	Concurrency int
	// QueriesPerRequest is the per-request block size (≤ 0 selects 64) —
	// how a high-throughput client amortises HTTP/JSON overhead.
	QueriesPerRequest int
	// Features is the query vector width (must match the served model).
	Features int
	// Requests caps the run at a total request count; when 0 the run is
	// time-bounded by Duration.
	Requests int64
	// Duration bounds a Requests==0 run (≤ 0 selects 3s).
	Duration time.Duration
	// Seed makes the generated query blocks reproducible.
	Seed int64
	// Binary sends queries_b64 payloads (the production client encoding)
	// instead of plain JSON arrays.
	Binary bool
}

// LoadResult summarises one run.
type LoadResult struct {
	Requests int64         `json:"requests"`
	Queries  int64         `json:"queries"`
	Errors   int64         `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// PredsPerSec is the headline sustained prediction throughput.
	PredsPerSec float64 `json:"preds_per_s"`
	// P50 and P99 are exact request-latency quantiles over every request
	// in the run (not histogram estimates).
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// RunLoad hammers the server with concurrent prediction requests and
// reports sustained throughput and latency quantiles. Request bodies are
// pre-marshalled (a handful of distinct blocks per worker, rotated) so the
// generator measures the server, not client-side JSON encoding.
func RunLoad(o LoadOptions) (LoadResult, error) {
	if o.Features <= 0 {
		return LoadResult{}, fmt.Errorf("serve: load needs Features > 0")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if o.QueriesPerRequest <= 0 {
		o.QueriesPerRequest = 64
	}
	if o.Requests <= 0 && o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}

	// Pre-marshal distinct request bodies; workers rotate through them so
	// batches are not byte-identical while the hot loop stays allocation-light.
	const distinct = 8
	rng := rand.New(rand.NewSource(o.Seed))
	bodies := make([][]byte, distinct)
	for i := range bodies {
		req := PredictRequest{Model: o.Model}
		block := queryBlock(rng, o.QueriesPerRequest, o.Features)
		if o.Binary {
			flat := make([]float64, 0, o.QueriesPerRequest*o.Features)
			for _, row := range block {
				flat = append(flat, row...)
			}
			req.QueriesB64 = EncodeQueriesB64(flat)
			req.FeatureDim = o.Features
		} else {
			req.Queries = block
		}
		b, err := json.Marshal(req)
		if err != nil {
			return LoadResult{}, fmt.Errorf("serve: marshal load body: %w", err)
		}
		bodies[i] = b
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Concurrency + 4,
		MaxIdleConnsPerHost: o.Concurrency + 4,
	}}
	defer client.CloseIdleConnections()

	var issued, errors atomic.Int64
	deadline := time.Now().Add(o.Duration)
	perWorker := make([][]time.Duration, o.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1024)
			for it := w; ; it++ {
				if o.Requests > 0 {
					if issued.Add(1) > o.Requests {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				t0 := time.Now()
				resp, err := client.Post(o.URL+"/predict", "application/json",
					bytes.NewReader(bodies[it%distinct]))
				if err != nil {
					errors.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			perWorker[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range perWorker {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := LoadResult{
		Requests: int64(len(all)),
		Queries:  int64(len(all)) * int64(o.QueriesPerRequest),
		Errors:   errors.Load(),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.PredsPerSec = float64(res.Queries) / elapsed.Seconds()
	}
	if n := len(all); n > 0 {
		res.P50 = all[n/2]
		res.P99 = all[min(n-1, n*99/100)]
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("serve: load run completed zero requests (%d errors)", res.Errors)
	}
	return res, nil
}

func queryBlock(rng *rand.Rand, n, feats int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, feats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}
