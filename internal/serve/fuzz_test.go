package serve

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// FuzzDecodePredictRequest drives the HTTP decoder with arbitrary bytes.
// The decoder is the trust boundary of the serving plane: whatever arrives,
// it must never panic, and anything it accepts must satisfy the invariants
// the batcher and kernel rely on — non-empty, uniform-width, all-finite
// rows within the configured limits.
func FuzzDecodePredictRequest(f *testing.F) {
	nanB64 := EncodeQueriesB64([]float64{1, math.NaN()})
	seeds := []string{
		`{"queries": [[1,2],[3,4]]}`,
		`{"model": "default", "queries": [[0.5]], "decisions": true}`,
		`{"queries": []}`,
		`{"queries": [[1,2],[3]]}`,
		`{"queries": [[1e999]]}`,
		`{"queries": [[1,null]]}`,
		`{"queries": "nope"}`,
		`{"queries": [[NaN]]}`,
		`[]`,
		`{`,
		``,
		`{"queries": [[` + strings.Repeat("1,", 100) + `1]]}`,
		`{"queries_b64": "` + EncodeQueriesB64([]float64{1, 2, 3, 4}) + `", "features": 2}`,
		`{"queries_b64": "` + nanB64 + `", "features": 2}`,
		`{"queries_b64": "AAAA", "features": 1}`,
		`{"queries_b64": "!!!!", "features": 1}`,
		`{"queries_b64": "", "features": 0}`,
		`{"queries": [[1]], "queries_b64": "` + nanB64 + `", "features": 2}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxQueries: 64, MaxFeatures: 128, MaxBody: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(data, lim)
		if err != nil {
			return // rejected is always acceptable; not panicking is the point
		}
		if req.NumQueries() == 0 || req.NumQueries() > lim.MaxQueries {
			t.Fatalf("accepted %d queries outside (0, %d]", req.NumQueries(), lim.MaxQueries)
		}
		width := req.Features()
		if width < 1 || width > lim.MaxFeatures {
			t.Fatalf("accepted width %d outside [1, %d]", width, lim.MaxFeatures)
		}
		for _, q := range req.Queries {
			if len(q) != width {
				t.Fatalf("accepted ragged row: %d vs %d", len(q), width)
			}
		}
		// flatten must agree with the validated shape, with every value
		// finite regardless of which encoding carried it.
		flat := req.flatten()
		if len(flat) != req.NumQueries()*width {
			t.Fatalf("flatten length %d, want %d", len(flat), req.NumQueries()*width)
		}
		for i, v := range flat {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value at flat[%d]: %v", i, v)
			}
		}
		// An accepted request must round-trip through encoding (responses
		// embed request-derived data; nothing unencodable may get this far).
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
	})
}
