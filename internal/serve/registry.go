package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"casvm/internal/model"
)

// Snapshot is one immutable loaded model version. Batches capture exactly
// one Snapshot at flush time and evaluate every query in the batch against
// it, so a concurrent hot-reload can never tear a batch across versions —
// the swap is a single atomic pointer store, and the superseded Snapshot
// stays alive (and correct) until the last in-flight batch holding it
// finishes. That *is* the drain: no locks, no barriers, no torn reads.
type Snapshot struct {
	Set        *model.Set
	Generation uint64 // 1 for the initial load, +1 per reload
	Path       string // source file ("" for in-memory sets)
	FileSHA256 string // content hash of the source file ("" for in-memory)
	LoadedAt   time.Time
}

// Handle is one named model slot in the registry: an atomic pointer to the
// current Snapshot plus the batcher that serves it. The batcher pointer is
// atomic because the handle becomes visible through the registry before the
// server attaches its batcher.
type Handle struct {
	Name    string
	cur     atomic.Pointer[Snapshot]
	gen     atomic.Uint64
	batcher atomic.Pointer[Batcher]
}

// Snapshot returns the current model version (never nil after registration).
func (h *Handle) Snapshot() *Snapshot { return h.cur.Load() }

// Batcher returns the attached batcher (nil until the server wires one).
func (h *Handle) Batcher() *Batcher { return h.batcher.Load() }

// swap installs a new model set as the next generation.
func (h *Handle) swap(set *model.Set, path, sha string) *Snapshot {
	s := &Snapshot{
		Set:        set,
		Generation: h.gen.Add(1),
		Path:       path,
		FileSHA256: sha,
		LoadedAt:   time.Now(),
	}
	h.cur.Store(s)
	return s
}

// Registry maps model names to handles. Lookup is read-locked; the model
// pointer inside each handle is lock-free, so the predict hot path never
// contends with loads.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*Handle
	reloads func() // observability hook (counter); may be nil
}

// NewRegistry creates an empty model registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*Handle{}} }

// Get returns the named handle.
func (r *Registry) Get(name string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.byName[name]
	return h, ok
}

// Resolve maps a request's model name to a handle: an explicit name must
// exist; "" selects the sole loaded model, falling back to "default".
func (r *Registry) Resolve(name string) (*Handle, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.byName) == 1 {
			for _, h := range r.byName {
				return h, nil
			}
		}
		name = "default"
	}
	h, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q (have %v)", name, r.namesLocked())
	}
	return h, nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handles returns every handle, sorted by name.
func (r *Registry) Handles() []*Handle {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Handle, 0, len(r.byName))
	for _, n := range r.namesLocked() {
		out = append(out, r.byName[n])
	}
	return out
}

// register inserts or returns the named handle.
func (r *Registry) register(name string) *Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.byName[name]; ok {
		return h
	}
	h := &Handle{Name: name}
	r.byName[name] = h
	return h
}

// AddSet registers (or hot-swaps) an in-memory model set under name.
func (r *Registry) AddSet(name string, set *model.Set) (*Handle, *Snapshot, error) {
	if err := validateSet(set); err != nil {
		return nil, nil, err
	}
	h := r.register(name)
	s := h.swap(set, "", "")
	if r.reloads != nil && s.Generation > 1 {
		r.reloads()
	}
	return h, s, nil
}

// AddFile loads a model file and registers it under name. Registering an
// existing name hot-swaps it (same as Reload).
func (r *Registry) AddFile(name, path string) (*Handle, *Snapshot, error) {
	set, sha, err := loadModelFile(path)
	if err != nil {
		return nil, nil, err
	}
	h := r.register(name)
	s := h.swap(set, path, sha)
	if r.reloads != nil && s.Generation > 1 {
		r.reloads()
	}
	return h, s, nil
}

// Reload re-reads the handle's model from path ("" re-reads the previous
// path) and atomically swaps it in. The load and validation happen entirely
// before the swap, so a bad file leaves the serving model untouched.
func (r *Registry) Reload(h *Handle, path string) (*Snapshot, error) {
	if path == "" {
		path = h.Snapshot().Path
		if path == "" {
			return nil, fmt.Errorf("serve: model %q was loaded from memory; reload needs an explicit path", h.Name)
		}
	}
	set, sha, err := loadModelFile(path)
	if err != nil {
		return nil, err
	}
	s := h.swap(set, path, sha)
	if r.reloads != nil {
		r.reloads()
	}
	return s, nil
}

// loadModelFile reads, parses and validates a model file, returning the set
// and the content hash serving surfaces report.
func loadModelFile(path string) (*model.Set, string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("serve: %w", err)
	}
	set, err := model.LoadSet(bytes.NewReader(b))
	if err != nil {
		return nil, "", fmt.Errorf("serve: load %s: %w", path, err)
	}
	if err := validateSet(set); err != nil {
		return nil, "", fmt.Errorf("serve: %s: %w", path, err)
	}
	sum := sha256.Sum256(b)
	return set, hex.EncodeToString(sum[:]), nil
}

func validateSet(set *model.Set) error {
	if set == nil || set.P() == 0 {
		return fmt.Errorf("serve: empty model set")
	}
	for j, m := range set.Models {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("serve: model %d: %w", j, err)
		}
	}
	return nil
}
