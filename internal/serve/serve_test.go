package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"casvm/internal/kernel"
	"casvm/internal/la"
	"casvm/internal/model"
	"casvm/internal/trace"
)

// testSet builds a small two-partition RBF model set synthetically (no
// training) so tests are fast and fully deterministic.
func testSet(seed int64, feats int) *model.Set {
	rng := rand.New(rand.NewSource(seed))
	k := kernel.RBF(0.3)
	mk := func(nsv int) *model.Model {
		buf := make([]float64, nsv*feats)
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		m := &model.Model{
			Kernel:   k,
			SVX:      la.NewDense(nsv, feats, buf),
			SVY:      make([]float64, nsv),
			Alpha:    make([]float64, nsv),
			B:        0.1 * rng.NormFloat64(),
			Fallback: 1,
		}
		for i := 0; i < nsv; i++ {
			m.SVY[i] = float64(2*(i%2) - 1)
			m.Alpha[i] = 0.01 + rng.Float64()
		}
		return m
	}
	centers := make([]float64, 2*feats)
	for i := range centers {
		centers[i] = rng.NormFloat64()
	}
	return &model.Set{
		Models:  []*model.Model{mk(37), mk(21)},
		Centers: la.NewDense(2, feats, centers),
	}
}

// fallbackSet builds a set whose single model has no support vectors, so
// every prediction returns Fallback — the torn-model probe: a reader that
// saw a consistent snapshot returns a uniform label vector.
func fallbackSet(label float64, feats int) *model.Set {
	m := &model.Model{
		Kernel:   kernel.RBF(0.3),
		SVX:      la.Zeros(0, feats),
		Fallback: label,
	}
	return model.Single(m, make([]float64, feats))
}

func queries(rng *rand.Rand, n, feats int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, feats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func postPredict(t *testing.T, url string, req PredictRequest) (*PredictResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &pr, resp
}

func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Start("localhost:0", cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestHTTPSmoke walks the whole surface: health gating, prediction with
// decisions, model listing, metrics exposition, and hot-reload from disk.
func TestHTTPSmoke(t *testing.T) {
	s := startTestServer(t, Config{})

	// No models yet: healthz must gate, predict must 503/404.
	resp, err := http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no models: got %d, want 503", resp.StatusCode)
	}

	set := testSet(1, 6)
	if _, err := s.AddModelSet("default", set); err != nil {
		t.Fatalf("AddModelSet: %v", err)
	}
	resp, err = http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with a model: got %d, want 200", resp.StatusCode)
	}

	rng := rand.New(rand.NewSource(2))
	qs := queries(rng, 9, 6)
	pr, resp := postPredict(t, s.URL(), PredictRequest{Queries: qs, Decisions: true})
	if pr == nil {
		t.Fatalf("predict failed: status %d", resp.StatusCode)
	}
	if len(pr.Labels) != 9 || len(pr.Decisions) != 9 {
		t.Fatalf("got %d labels, %d decisions, want 9 each", len(pr.Labels), len(pr.Decisions))
	}
	if pr.Generation != 1 {
		t.Fatalf("generation = %d, want 1", pr.Generation)
	}
	// Reference: the same queries through the library path, bit-identical.
	flat := make([]float64, 0, 9*6)
	for _, q := range qs {
		flat = append(flat, q...)
	}
	qm := la.NewDense(9, 6, flat)
	wantLabels := set.PredictAll(qm)
	wantDecs := set.DecisionAll(qm)
	for i := range wantLabels {
		if pr.Labels[i] != wantLabels[i] {
			t.Fatalf("label[%d] = %v, want %v", i, pr.Labels[i], wantLabels[i])
		}
		if pr.Decisions[i] != wantDecs[i] {
			t.Fatalf("decision[%d] = %v, want %v", i, pr.Decisions[i], wantDecs[i])
		}
	}

	// /models lists the set with its shape.
	resp, err = http.Get(s.URL() + "/models")
	if err != nil {
		t.Fatalf("GET /models: %v", err)
	}
	var infos []modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decode /models: %v", err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "default" || infos[0].Partitions != 2 || infos[0].Features != 6 {
		t.Fatalf("unexpected /models listing: %+v", infos)
	}

	// /metrics exposes the serve families with the traffic counted.
	resp, err = http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"casvm_serve_requests_total 1",
		"casvm_serve_queries_total 9",
		"casvm_serve_batches_total",
		"casvm_serve_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// Hot-reload from disk: save a different set, reload, generation bumps,
	// and predictions switch to the new model.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.casvm")
	set2 := testSet(99, 6)
	saveSetFile(t, path, set2)
	reloadBody := bytes.NewReader([]byte(fmt.Sprintf(`{"path": %q}`, path)))
	resp, err = http.Post(s.URL()+"/models/default/reload", "application/json", reloadBody)
	if err != nil {
		t.Fatalf("POST reload: %v", err)
	}
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode reload response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Generation != 2 || info.FileSHA256 == "" {
		t.Fatalf("reload: status %d info %+v", resp.StatusCode, info)
	}
	pr, resp = postPredict(t, s.URL(), PredictRequest{Queries: qs})
	if pr == nil {
		t.Fatalf("predict after reload: status %d", resp.StatusCode)
	}
	if pr.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", pr.Generation)
	}
}

func saveSetFile(t *testing.T, path string, set *model.Set) {
	t.Helper()
	var buf bytes.Buffer
	if err := model.SaveSet(&buf, set); err != nil {
		t.Fatalf("SaveSet: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write model file: %v", err)
	}
}

// TestBatchEquivalence is the batched-vs-sequential property: whatever way
// concurrent requests coalesce into tile batches, each request's labels and
// decisions are bit-identical to evaluating that request alone through the
// library path. Runs under -race in `make check`.
func TestBatchEquivalence(t *testing.T) {
	set := testSet(7, 5)
	s := startTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 32, MaxDelay: time.Millisecond},
	})
	if _, err := s.AddModelSet("default", set); err != nil {
		t.Fatalf("AddModelSet: %v", err)
	}

	const clients = 8
	const perClient = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(c)))
			for it := 0; it < perClient; it++ {
				n := 1 + rng.Intn(12)
				qs := queries(rng, n, 5)
				pr, resp := postPredict(t, s.URL(), PredictRequest{Queries: qs, Decisions: true})
				if pr == nil {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				flat := make([]float64, 0, n*5)
				for _, q := range qs {
					flat = append(flat, q...)
				}
				qm := la.NewDense(n, 5, flat)
				want := set.PredictAll(qm)
				wantD := set.DecisionAll(qm)
				for i := range want {
					if pr.Labels[i] != want[i] || pr.Decisions[i] != wantD[i] {
						errs <- fmt.Errorf("client %d it %d query %d: got (%v, %v), want (%v, %v)",
							c, it, i, pr.Labels[i], pr.Decisions[i], want[i], wantD[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHotReloadNeverTearsModel hammers predictions while the model is
// hot-swapped between two fallback-only sets that disagree on every label
// (+1 vs −1). Every response must be uniform: a mixed label vector would
// mean one batch saw two model versions. Runs under -race in `make check`.
func TestHotReloadNeverTearsModel(t *testing.T) {
	const feats = 4
	s := startTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 16, MaxDelay: 200 * time.Microsecond},
	})
	if _, err := s.AddModelSet("default", fallbackSet(1, feats)); err != nil {
		t.Fatalf("AddModelSet: %v", err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		label := -1.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.AddModelSet("default", fallbackSet(label, feats)); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			label = -label
		}
	}()

	const clients = 6
	const perClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for it := 0; it < perClient; it++ {
				n := 2 + rng.Intn(6)
				pr, resp := postPredict(t, s.URL(), PredictRequest{Queries: queries(rng, n, feats)})
				if pr == nil {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				for i := 1; i < len(pr.Labels); i++ {
					if pr.Labels[i] != pr.Labels[0] {
						errs <- fmt.Errorf("torn model: response %v mixes labels (generation %d)",
							pr.Labels, pr.Generation)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// batcherHarness wires a bare batcher (no HTTP) to a metrics registry so
// the flush-path counters can be asserted directly.
func batcherHarness(t *testing.T, set *model.Set, cfg BatcherConfig) (*Batcher, *trace.Registry) {
	t.Helper()
	reg := NewRegistry()
	h, _, err := reg.AddSet("m", set)
	if err != nil {
		t.Fatalf("AddSet: %v", err)
	}
	mreg := trace.NewRegistry()
	bm := batcherMetrics{
		batches:    mreg.Counter("batches", ""),
		flushFull:  mreg.Counter("flush_full", ""),
		flushTimer: mreg.Counter("flush_timer", ""),
		batchSize:  mreg.Histogram("batch_size", "", trace.ExpBuckets(1, 2, 13)),
		queueDepth: mreg.Gauge("queue_depth", ""),
	}
	b := newBatcher(h, cfg, bm)
	t.Cleanup(b.Close)
	return b, mreg
}

func flatQueries(rng *rand.Rand, n, feats int) []float64 {
	buf := make([]float64, n*feats)
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
	return buf
}

// TestBatcherFlushOnMaxBatch pins the throughput path: when pending queries
// reach MaxBatch the flush happens immediately, long before MaxDelay.
func TestBatcherFlushOnMaxBatch(t *testing.T) {
	set := testSet(3, 4)
	b, mreg := batcherHarness(t, set, BatcherConfig{MaxBatch: 8, MaxDelay: time.Hour})
	rng := rand.New(rand.NewSource(4))

	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := b.Predict(flatQueries(rng, 8, 4), 8, 4, false)
		if err != nil {
			t.Errorf("predict: %v", err)
			return
		}
		if len(out.labels) != 8 || out.batchSize != 8 {
			t.Errorf("got %d labels, batch %d, want 8, 8", len(out.labels), out.batchSize)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("max-batch flush did not fire (MaxDelay is 1h, so the size trigger is broken)")
	}
	snap := mreg.Snapshot()
	if snap["flush_full"] != 1 || snap["flush_timer"] != 0 {
		t.Fatalf("flush counters: full=%v timer=%v, want 1, 0", snap["flush_full"], snap["flush_timer"])
	}
}

// TestBatcherFlushOnMaxDelay pins the latency path: a lone under-sized
// request flushes once MaxDelay expires.
func TestBatcherFlushOnMaxDelay(t *testing.T) {
	set := testSet(3, 4)
	b, mreg := batcherHarness(t, set, BatcherConfig{MaxBatch: 1 << 20, MaxDelay: 20 * time.Millisecond})
	rng := rand.New(rand.NewSource(5))

	start := time.Now()
	out, err := b.Predict(flatQueries(rng, 3, 4), 3, 4, true)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if len(out.labels) != 3 || len(out.decisions) != 3 {
		t.Fatalf("got %d labels, %d decisions, want 3 each", len(out.labels), len(out.decisions))
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("flushed after %v, before the 20ms delay budget — timer path did not gate", elapsed)
	}
	snap := mreg.Snapshot()
	if snap["flush_timer"] != 1 || snap["flush_full"] != 0 {
		t.Fatalf("flush counters: full=%v timer=%v, want 0, 1", snap["flush_full"], snap["flush_timer"])
	}
}

// TestBatcherWidthMismatch: a request whose width disagrees with the model
// fails alone; cohabiting requests in the same flush still succeed.
func TestBatcherWidthMismatch(t *testing.T) {
	set := testSet(3, 4)
	b, _ := batcherHarness(t, set, BatcherConfig{MaxBatch: 1 << 20, MaxDelay: 10 * time.Millisecond})
	rng := rand.New(rand.NewSource(6))
	goodRows := flatQueries(rng, 2, 4)
	badRows := flatQueries(rng, 2, 7)

	var wg sync.WaitGroup
	wg.Add(2)
	var goodErr, badErr error
	var good batchOut
	go func() {
		defer wg.Done()
		good, goodErr = b.Predict(goodRows, 2, 4, false)
	}()
	go func() {
		defer wg.Done()
		_, badErr = b.Predict(badRows, 2, 7, false)
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("well-formed request failed: %v", goodErr)
	}
	if len(good.labels) != 2 {
		t.Fatalf("got %d labels, want 2", len(good.labels))
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "features") {
		t.Fatalf("width-mismatched request: err = %v, want feature-width error", badErr)
	}
}

// TestRegistryResolve covers the model-name resolution rules.
func TestRegistryResolve(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Resolve(""); err == nil {
		t.Fatal("resolve on empty registry should fail")
	}
	if _, _, err := reg.AddSet("alpha", testSet(1, 3)); err != nil {
		t.Fatalf("AddSet: %v", err)
	}
	h, err := reg.Resolve("") // sole model
	if err != nil || h.Name != "alpha" {
		t.Fatalf("sole-model resolve: %v, %v", h, err)
	}
	if _, _, err := reg.AddSet("default", testSet(2, 3)); err != nil {
		t.Fatalf("AddSet: %v", err)
	}
	h, err = reg.Resolve("") // ambiguous → "default"
	if err != nil || h.Name != "default" {
		t.Fatalf("default resolve: %v, %v", h, err)
	}
	if _, err := reg.Resolve("nope"); err == nil {
		t.Fatal("unknown model should fail")
	}
}

// TestReloadBadFileKeepsServing: a reload pointed at a corrupt file errors
// out and leaves the serving snapshot untouched.
func TestReloadBadFileKeepsServing(t *testing.T) {
	reg := NewRegistry()
	h, snap, err := reg.AddSet("m", testSet(1, 3))
	if err != nil {
		t.Fatalf("AddSet: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.casvm")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(h, bad); err == nil {
		t.Fatal("reload of corrupt file should fail")
	}
	if got := h.Snapshot(); got != snap {
		t.Fatalf("snapshot changed after failed reload: %+v", got)
	}
	// In-memory model with no path cannot be re-read implicitly.
	if _, err := reg.Reload(h, ""); err == nil {
		t.Fatal("implicit reload of memory-loaded model should fail")
	}
}

// TestEventsStreamsQPS reads one SSE frame off /events and checks the
// sample carries the counters.
func TestEventsStreamsQPS(t *testing.T) {
	s := startTestServer(t, Config{PollInterval: 20 * time.Millisecond})
	if _, err := s.AddModelSet("default", testSet(1, 4)); err != nil {
		t.Fatalf("AddModelSet: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	if pr, resp := postPredict(t, s.URL(), PredictRequest{Queries: queries(rng, 5, 4)}); pr == nil {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}

	resp, err := http.Get(s.URL() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	var acc strings.Builder
	for time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		acc.Write(buf[:n])
		if strings.Contains(acc.String(), "\n\n") {
			break
		}
		if err != nil {
			break
		}
	}
	frame := acc.String()
	idx := strings.Index(frame, "data: ")
	if idx < 0 {
		t.Fatalf("no SSE frame in %q", frame)
	}
	line := frame[idx+len("data: "):]
	line = line[:strings.Index(line, "\n")]
	var sample qpsSample
	if err := json.Unmarshal([]byte(line), &sample); err != nil {
		t.Fatalf("bad SSE payload %q: %v", line, err)
	}
	if sample.RequestsTotal != 1 || sample.QueriesTotal != 5 {
		t.Fatalf("sample %+v, want requests=1 queries=5", sample)
	}
}

// TestDecodePredictRequestRejects tables the decoder's validation errors.
func TestDecodePredictRequestRejects(t *testing.T) {
	lim := Limits{MaxQueries: 4, MaxFeatures: 8, MaxBody: 1 << 16}
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"bad json", `{"queries": [[1,`},
		{"no queries", `{"queries": []}`},
		{"null queries", `{}`},
		{"too many queries", `{"queries": [[1],[1],[1],[1],[1]]}`},
		{"zero width", `{"queries": [[]]}`},
		{"too wide", `{"queries": [[1,2,3,4,5,6,7,8,9]]}`},
		{"ragged", `{"queries": [[1,2],[1]]}`},
		{"huge literal", `{"queries": [[1e999]]}`},
		{"body over limit", `{"queries": [[` + strings.Repeat("1,", 40000) + `1]]}`},
	}
	for _, c := range cases {
		if _, err := DecodePredictRequest([]byte(c.body), lim); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.body)
		}
	}
	// And the happy path still decodes.
	req, err := DecodePredictRequest([]byte(`{"queries": [[1,2],[3,4]], "decisions": true}`), lim)
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if req.Features() != 2 || len(req.Queries) != 2 || !req.Decisions {
		t.Fatalf("decoded %+v", req)
	}
	if got := req.flatten(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("flatten: %v", got)
	}
}
