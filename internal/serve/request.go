package serve

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// PredictRequest is the wire form of one prediction call: a block of dense
// feature vectors for one named model. Batching happens *below* this layer —
// the server coalesces many concurrent requests into one tile evaluation —
// but a request may itself carry many queries, which is how high-throughput
// clients amortise HTTP and JSON overhead.
//
// Queries travel in one of two encodings:
//
//   - Queries: a plain JSON array of arrays — interop-friendly, but JSON
//     float parsing dominates server CPU at high load;
//   - QueriesB64 + FeatureDim: base64 of little-endian float64 values,
//     row-major — the production client path, ~10× cheaper to decode.
//     FeatureDim gives the row width (the flat value count must divide by
//     it); row count is inferred.
//
// Exactly one of the two must be present.
type PredictRequest struct {
	// Model names the registry entry ("" selects the sole model when only
	// one is loaded, otherwise "default").
	Model string `json:"model,omitempty"`
	// Queries holds one dense feature vector per prediction. Every row must
	// have the same width; the server additionally checks it against the
	// model's feature count.
	Queries [][]float64 `json:"queries,omitempty"`
	// QueriesB64 is the binary alternative: base64(row-major little-endian
	// float64). Requires FeatureDim.
	QueriesB64 string `json:"queries_b64,omitempty"`
	// FeatureDim is the row width of QueriesB64.
	FeatureDim int `json:"features,omitempty"`
	// Decisions asks for the real-valued routed decision Σ αyK − B per
	// query alongside the ±1 labels.
	Decisions bool `json:"decisions,omitempty"`

	// Validated flat form, filled by DecodePredictRequest.
	flat        []float64
	rows, width int
}

// PredictResponse answers a PredictRequest.
type PredictResponse struct {
	Model      string    `json:"model"`
	Generation uint64    `json:"generation"` // registry generation that served the batch
	Labels     []float64 `json:"labels"`
	Decisions  []float64 `json:"decisions,omitempty"`
	BatchSize  int       `json:"batch_size"` // total queries in the coalesced tile batch
}

// Limits bounds what a request may ask for before any model state is
// consulted; the decoder enforces them so malformed or hostile payloads are
// rejected without allocating model-sized buffers.
type Limits struct {
	// MaxQueries caps queries per request (≤ 0 selects 4096).
	MaxQueries int
	// MaxFeatures caps the row width (≤ 0 selects 65536); the model match
	// is checked later, this only guards the decoder.
	MaxFeatures int
	// MaxBody caps the request body in bytes (≤ 0 selects 32 MiB).
	MaxBody int64
}

// Defaulted returns lim with zero fields resolved to their defaults.
func (lim Limits) Defaulted() Limits {
	if lim.MaxQueries <= 0 {
		lim.MaxQueries = 4096
	}
	if lim.MaxFeatures <= 0 {
		lim.MaxFeatures = 65536
	}
	if lim.MaxBody <= 0 {
		lim.MaxBody = 32 << 20
	}
	return lim
}

// DecodePredictRequest parses and validates a JSON prediction request.
// Every accepted request satisfies: 1 ≤ NumQueries ≤ MaxQueries, all rows
// share one width in [1, MaxFeatures], and every value is finite (binary
// payloads can smuggle NaN/Inf bit patterns; none may reach the kernel,
// where a single NaN would poison a whole coalesced batch).
func DecodePredictRequest(data []byte, lim Limits) (*PredictRequest, error) {
	lim = lim.Defaulted()
	if int64(len(data)) > lim.MaxBody {
		return nil, fmt.Errorf("serve: request body %d bytes exceeds limit %d", len(data), lim.MaxBody)
	}
	var req PredictRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("serve: bad request JSON: %w", err)
	}
	switch {
	case len(req.Queries) > 0 && req.QueriesB64 != "":
		return nil, fmt.Errorf("serve: request has both queries and queries_b64")
	case req.QueriesB64 != "":
		if err := req.decodeBinary(lim); err != nil {
			return nil, err
		}
	case len(req.Queries) > 0:
		if err := req.decodeArrays(lim); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: request has no queries")
	}
	for i, v := range req.flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serve: query %d feature %d is not finite", i/req.width, i%req.width)
		}
	}
	return &req, nil
}

// decodeArrays validates the JSON array-of-arrays form and flattens it.
func (r *PredictRequest) decodeArrays(lim Limits) error {
	if len(r.Queries) > lim.MaxQueries {
		return fmt.Errorf("serve: %d queries exceeds limit %d", len(r.Queries), lim.MaxQueries)
	}
	width := len(r.Queries[0])
	if width < 1 || width > lim.MaxFeatures {
		return fmt.Errorf("serve: query width %d outside [1, %d]", width, lim.MaxFeatures)
	}
	flat := make([]float64, 0, len(r.Queries)*width)
	for i, q := range r.Queries {
		if len(q) != width {
			return fmt.Errorf("serve: query %d has %d features, query 0 has %d", i, len(q), width)
		}
		flat = append(flat, q...)
	}
	r.flat, r.rows, r.width = flat, len(r.Queries), width
	return nil
}

// decodeBinary validates the base64 binary form.
func (r *PredictRequest) decodeBinary(lim Limits) error {
	if r.FeatureDim < 1 || r.FeatureDim > lim.MaxFeatures {
		return fmt.Errorf("serve: features %d outside [1, %d] (required with queries_b64)", r.FeatureDim, lim.MaxFeatures)
	}
	raw, err := base64.StdEncoding.DecodeString(r.QueriesB64)
	if err != nil {
		return fmt.Errorf("serve: bad queries_b64: %w", err)
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		return fmt.Errorf("serve: queries_b64 decodes to %d bytes, not a positive multiple of 8", len(raw))
	}
	n := len(raw) / 8
	if n%r.FeatureDim != 0 {
		return fmt.Errorf("serve: %d values do not divide into rows of %d features", n, r.FeatureDim)
	}
	rows := n / r.FeatureDim
	if rows > lim.MaxQueries {
		return fmt.Errorf("serve: %d queries exceeds limit %d", rows, lim.MaxQueries)
	}
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	r.flat, r.rows, r.width = flat, rows, r.FeatureDim
	return nil
}

// EncodeQueriesB64 packs a row-major flat query block into the binary wire
// form (the client-side counterpart of decodeBinary).
func EncodeQueriesB64(flat []float64) string {
	raw := make([]byte, 8*len(flat))
	for i, v := range flat {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// NumQueries returns the number of query rows of a validated request.
func (r *PredictRequest) NumQueries() int { return r.rows }

// Features returns the (uniform) row width of a validated request.
func (r *PredictRequest) Features() int { return r.width }

// flatten returns the queries as one row-major buffer.
func (r *PredictRequest) flatten() []float64 { return r.flat }
