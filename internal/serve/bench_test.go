package serve_test

import (
	"sync"
	"testing"
	"time"

	"casvm/internal/compress"
	"casvm/internal/core"
	"casvm/internal/data"
	"casvm/internal/kernel"
	"casvm/internal/model"
	"casvm/internal/serve"
)

// The sustained-load benchmark behind `make bench-serve`: train the
// face-like dataset, compress it with the golden budget, serve it, and
// hammer it over real HTTP with the shared load generator. The committed
// BENCH_serve.json records the resulting preds/s and exact p99 latency;
// `make bench-diff` gates ns/op (≈ per-request wall time) against it.

var benchFace struct {
	once sync.Once
	set  *model.Set
	err  error
}

// compressedFaceSet trains + compresses once per benchmark binary; the run
// is deterministic (seeded solver, seeded compression), so every iteration
// count serves the identical model.
func compressedFaceSet(b *testing.B) *model.Set {
	benchFace.once.Do(func() {
		ds, entry, err := data.Load("face", 1.0)
		if err != nil {
			benchFace.err = err
			return
		}
		p := core.DefaultParams(core.MethodRACA, 8)
		p.Kernel = kernel.RBF(entry.GammaOrDefault())
		out, err := core.Train(ds.X, ds.Y, p)
		if err != nil {
			benchFace.err = err
			return
		}
		small, _, err := compress.Set(out.Set, compress.Options{
			Budget: 32, PruneFrac: 0.01, Seed: 7,
		})
		if err != nil {
			benchFace.err = err
			return
		}
		compress.Annotate(small, out.Set, ds.TestX, ds.TestY)
		benchFace.set = small
	})
	if benchFace.err != nil {
		b.Fatalf("face fixture: %v", benchFace.err)
	}
	return benchFace.set
}

// BenchmarkServeSustained measures the whole serving plane end to end:
// HTTP decode → micro-batching → tile predict → HTTP encode, at client
// concurrency 2·GOMAXPROCS with 64-query request blocks. One op is one
// request, so ns/op is the per-request wall time under sustained load; the
// extra metrics carry the headline throughput and tail latency.
func BenchmarkServeSustained(b *testing.B) {
	set := compressedFaceSet(b)
	feats := set.Centers.Features()

	s, err := serve.Start("localhost:0", serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 512, MaxDelay: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AddModelSet("default", set); err != nil {
		b.Fatal(err)
	}

	// Warm connections and the batcher before the timed run.
	if _, err := serve.RunLoad(serve.LoadOptions{
		URL: s.URL(), Features: feats, Requests: 64, Seed: 1,
	}); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	res, err := serve.RunLoad(serve.LoadOptions{
		URL:               s.URL(),
		Features:          feats,
		QueriesPerRequest: 256,
		Binary:            true,
		Requests:          int64(b.N),
		Seed:              2,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d load errors", res.Errors)
	}
	b.ReportMetric(res.PredsPerSec, "preds/s")
	b.ReportMetric(float64(res.P99), "p99-ns")
	b.ReportMetric(float64(res.P50), "p50-ns")
}
