package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunLoadAgainstServer drives the shared load generator (the harness
// behind `make bench-serve` and `casvm-serve -selfbench`) against a live
// server in both wire encodings and both stopping modes.
func TestRunLoadAgainstServer(t *testing.T) {
	s := startTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 64, MaxDelay: time.Millisecond},
	})
	set := testSet(21, 5)
	if _, err := s.AddModelSet("default", set); err != nil {
		t.Fatalf("AddModelSet: %v", err)
	}

	// Request-bounded, binary payloads.
	res, err := RunLoad(LoadOptions{
		URL: s.URL(), Features: 5, QueriesPerRequest: 7,
		Requests: 20, Concurrency: 3, Binary: true, Seed: 1,
	})
	if err != nil {
		t.Fatalf("binary load: %v", err)
	}
	if res.Requests != 20 || res.Errors != 0 {
		t.Fatalf("binary load: %+v", res)
	}
	if res.Queries != 20*7 || res.PredsPerSec <= 0 {
		t.Fatalf("binary load throughput: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency quantiles out of order: p50=%v p99=%v", res.P50, res.P99)
	}

	// Duration-bounded, JSON-array payloads.
	res, err = RunLoad(LoadOptions{
		URL: s.URL(), Features: 5, QueriesPerRequest: 3,
		Duration: 100 * time.Millisecond, Concurrency: 2, Seed: 2,
	})
	if err != nil {
		t.Fatalf("json load: %v", err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("json load: %+v", res)
	}

	// Mis-sized queries: every request fails, so the run reports an error.
	res, err = RunLoad(LoadOptions{
		URL: s.URL(), Features: 9, Requests: 4, Concurrency: 1, Seed: 3,
	})
	if err == nil {
		t.Fatalf("load with wrong width should fail, got %+v", res)
	}
	if res.Errors == 0 {
		t.Fatalf("expected counted errors, got %+v", res)
	}

	// Option validation.
	if _, err := RunLoad(LoadOptions{URL: s.URL()}); err == nil {
		t.Fatal("Features == 0 should error")
	}
}

// TestServerAddModelFromFile covers the file-backed registration path the
// CLI uses, plus the /models listing it feeds.
func TestServerAddModelFromFile(t *testing.T) {
	s := startTestServer(t, Config{})
	dir := t.TempDir()
	path := dir + "/m.model"
	saveSetFile(t, path, testSet(5, 4))
	snap, err := s.AddModel("disk", path)
	if err != nil {
		t.Fatalf("AddModel: %v", err)
	}
	if snap.Path != path || snap.FileSHA256 == "" || snap.Generation != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if got := s.Registry().Names(); len(got) != 1 || got[0] != "disk" {
		t.Fatalf("names %v", got)
	}
	if _, err := s.AddModel("bad", dir+"/missing.model"); err == nil {
		t.Fatal("missing file should error")
	}

	// Method and path guards on the mutation endpoints.
	resp, err := http.Get(s.URL() + "/models/disk/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(s.URL()+"/models/ghost/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload unknown model: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(s.URL()+"/models/disk/reload", "application/json",
		strings.NewReader(`{"path": not-json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload bad body: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(s.URL() + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: %d, want 405", resp.StatusCode)
	}

	// Implicit-path reload (no body) re-reads the same file.
	resp, err = http.Post(s.URL()+"/models/disk/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("implicit reload: %d, want 200", resp.StatusCode)
	}
	if gen := s.Registry().Handles()[0].Snapshot().Generation; gen != 2 {
		t.Fatalf("generation %d after reload, want 2", gen)
	}
}
