// Package serve is the production inference plane: an HTTP/JSON prediction
// server over trained model sets. Concurrent requests coalesce through a
// per-model micro-batcher into blocked PredictAll tile evaluations, models
// hot-reload by atomic snapshot swap without dropping in-flight batches,
// and the whole surface is instrumented through trace.Registry (Prometheus
// text on /metrics, live QPS over SSE on /events).
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"casvm/internal/model"
	"casvm/internal/telemetry"
	"casvm/internal/trace"
)

// Config wires the server's budgets and observability.
type Config struct {
	// Batch bounds the micro-batching window (zero fields use defaults).
	Batch BatcherConfig
	// Limits bounds request decoding (zero fields use defaults).
	Limits Limits
	// Metrics receives the casvm_serve_* metric families. A fresh registry
	// is created when nil, so /metrics always serves.
	Metrics *trace.Registry
	// PollInterval is the /events SSE sampling cadence (default 1s).
	PollInterval time.Duration
}

// serverMetrics are the request-path handles (all lock-free to update).
type serverMetrics struct {
	requests *trace.Counter
	queries  *trace.Counter
	errors   *trace.Counter
	reloads  *trace.Counter
	latency  *trace.Histogram
}

// Server is a running inference endpoint.
type Server struct {
	cfg Config
	reg *Registry
	ln  net.Listener
	srv *http.Server

	m  serverMetrics
	bm batcherMetrics

	mu   sync.Mutex // guards batcher attach/close
	done chan struct{}
}

// Start listens on addr (":0" picks a free port) and serves the inference
// endpoints until Close. Models are attached afterwards with AddModel /
// AddModelSet; until one is loaded, /predict answers 503 and /healthz
// reports not ready.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = trace.NewRegistry()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	cfg.Limits = cfg.Limits.Defaulted()
	cfg.Batch = cfg.Batch.Defaulted()

	reg := cfg.Metrics
	s := &Server{
		cfg:  cfg,
		reg:  NewRegistry(),
		ln:   ln,
		done: make(chan struct{}),
		m: serverMetrics{
			requests: reg.Counter("casvm_serve_requests_total", "prediction requests accepted"),
			queries:  reg.Counter("casvm_serve_queries_total", "individual query vectors predicted"),
			errors:   reg.Counter("casvm_serve_errors_total", "requests rejected or failed"),
			reloads:  reg.Counter("casvm_serve_reloads_total", "model hot-reloads applied"),
			latency: reg.Histogram("casvm_serve_latency_seconds",
				"request latency from decode to response write", trace.ExpBuckets(1e-5, 2, 22)),
		},
		bm: batcherMetrics{
			batches:    reg.Counter("casvm_serve_batches_total", "coalesced tile batches evaluated"),
			flushFull:  reg.Counter("casvm_serve_batch_flush_full_total", "batches flushed on the max-batch budget"),
			flushTimer: reg.Counter("casvm_serve_batch_flush_timer_total", "batches flushed on the max-delay budget"),
			batchSize: reg.Histogram("casvm_serve_batch_size",
				"queries per coalesced batch", trace.ExpBuckets(1, 2, 13)),
			queueDepth: reg.Gauge("casvm_serve_queue_depth", "queries pending in the batching window"),
		},
	}
	s.reg.reloads = s.m.reloads.Inc

	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/models/", s.handleModelAction)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.cfg.Metrics.WriteProm(w)
	})
	mux.HandleFunc("/events", s.handleEvents)

	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Registry exposes the model registry (tests and the selfbench drive it).
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the listener, waits for the serve loop, and shuts down every
// batcher (flushing their pending batches so no request hangs).
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.reg.Handles() {
		if b := h.Batcher(); b != nil {
			b.Close()
		}
	}
	return err
}

// ensureBatcher attaches the coalescing loop to a freshly registered handle.
func (s *Server) ensureBatcher(h *Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.Batcher() == nil {
		h.batcher.Store(newBatcher(h, s.cfg.Batch, s.bm))
	}
}

// AddModel loads a model file and serves it under name (hot-swapping any
// existing model of that name).
func (s *Server) AddModel(name, path string) (*Snapshot, error) {
	h, snap, err := s.reg.AddFile(name, path)
	if err != nil {
		return nil, err
	}
	s.ensureBatcher(h)
	return snap, nil
}

// AddModelSet serves an in-memory model set under name.
func (s *Server) AddModelSet(name string, set *model.Set) (*Snapshot, error) {
	h, snap, err := s.reg.AddSet(name, set)
	if err != nil {
		return nil, err
	}
	s.ensureBatcher(h)
	return snap, nil
}

// httpError counts and writes a JSON error response.
func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.m.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handlePredict is the hot path: decode → resolve → enqueue → reply.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST required"))
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBody))
	if err != nil {
		s.httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: read body: %w", err))
		return
	}
	req, err := DecodePredictRequest(body, s.cfg.Limits)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.reg.Resolve(req.Model)
	if err != nil {
		s.httpError(w, http.StatusNotFound, err)
		return
	}
	b := h.Batcher()
	if b == nil {
		s.httpError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: model %q not ready", h.Name))
		return
	}
	out, err := b.Predict(req.flatten(), req.NumQueries(), req.Features(), req.Decisions)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	s.m.requests.Inc()
	s.m.queries.Add(int64(req.NumQueries()))
	resp := PredictResponse{
		Model:      h.Name,
		Generation: out.generation,
		Labels:     out.labels,
		Decisions:  out.decisions,
		BatchSize:  out.batchSize,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
	s.m.latency.Observe(time.Since(start).Seconds())
}

// handleHealthz reports readiness: 200 once at least one model serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	names := s.reg.Names()
	w.Header().Set("Content-Type", "application/json")
	if len(names) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "no models loaded"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "models": names})
}

// modelInfo is one /models listing entry.
type modelInfo struct {
	Name       string            `json:"name"`
	Generation uint64            `json:"generation"`
	Path       string            `json:"path,omitempty"`
	FileSHA256 string            `json:"file_sha256,omitempty"`
	LoadedAt   time.Time         `json:"loaded_at"`
	Partitions int               `json:"partitions"`
	Features   int               `json:"features"`
	NSV        int               `json:"nsv"`
	Meta       map[string]string `json:"meta,omitempty"`
}

func snapshotInfo(name string, snap *Snapshot) modelInfo {
	return modelInfo{
		Name:       name,
		Generation: snap.Generation,
		Path:       snap.Path,
		FileSHA256: snap.FileSHA256,
		LoadedAt:   snap.LoadedAt,
		Partitions: snap.Set.P(),
		Features:   snap.Set.Centers.Features(),
		NSV:        snap.Set.NSV(),
		Meta:       snap.Set.Meta,
	}
}

// handleModels lists every loaded model with its provenance.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	list := []modelInfo{}
	for _, h := range s.reg.Handles() {
		list = append(list, snapshotInfo(h.Name, h.Snapshot()))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleModelAction routes POST /models/<name>/reload: re-read the model
// from disk (or from an explicit {"path": ...} body) and atomically swap.
func (s *Server) handleModelAction(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/models/")
	name, action, ok := strings.Cut(rest, "/")
	if !ok || name == "" || action != "reload" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST required"))
		return
	}
	h, found := s.reg.Get(name)
	if !found {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown model %q", name))
		return
	}
	var body struct {
		Path string `json:"path"`
	}
	if b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err == nil && len(b) > 0 {
		if err := json.Unmarshal(b, &body); err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad reload body: %w", err))
			return
		}
	}
	snap, err := s.reg.Reload(h, body.Path)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snapshotInfo(h.Name, snap))
}

// qpsSample is one /events SSE frame: instantaneous load computed from
// counter deltas over the poll interval plus latency quantiles.
type qpsSample struct {
	Time          time.Time `json:"time"`
	RequestsTotal int64     `json:"requests_total"`
	QueriesTotal  int64     `json:"queries_total"`
	RequestsPerS  float64   `json:"requests_per_s"`
	QueriesPerS   float64   `json:"queries_per_s"`
	P50LatencyMS  float64   `json:"p50_latency_ms"`
	P99LatencyMS  float64   `json:"p99_latency_ms"`
	QueueDepth    float64   `json:"queue_depth"`
	Errors        int64     `json:"errors_total"`
}

// handleEvents streams live QPS over SSE: every tick emits one qpsSample
// even when idle, so dashboards see flat-lines rather than silence.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var prevReq, prevQ int64
	var prevT time.Time
	first := true
	telemetry.StreamSSE(w, r, s.cfg.PollInterval, func() []any {
		now := time.Now()
		req, q := s.m.requests.Value(), s.m.queries.Value()
		sample := qpsSample{
			Time:          now,
			RequestsTotal: req,
			QueriesTotal:  q,
			P50LatencyMS:  s.m.latency.Quantile(0.50) * 1e3,
			P99LatencyMS:  s.m.latency.Quantile(0.99) * 1e3,
			QueueDepth:    s.bm.queueDepth.Value(),
			Errors:        s.m.errors.Value(),
		}
		if !first {
			dt := now.Sub(prevT).Seconds()
			if dt > 0 {
				sample.RequestsPerS = float64(req-prevReq) / dt
				sample.QueriesPerS = float64(q-prevQ) / dt
			}
		}
		first = false
		prevReq, prevQ, prevT = req, q, now
		return []any{sample}
	})
}
