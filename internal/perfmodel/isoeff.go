package perfmodel

import "math"

// This file reproduces the analytic scaling content of the paper:
//
//   - eqn (9):  per-iteration parallel time of distributed SMO,
//   - eqn (10): its parallel overhead To = P·Tp − W,
//   - Table IV: iso-efficiency lower bounds for 1D/2D Mat-Vec-Mul,
//     Dis-SMO, Cascade and DC-SVM,
//   - eqn (8):  W = K·To with K = E/(1−E).
//
// Times are normalised so tc = 1 (ts and tw are ratios of communication
// time to flop time), exactly as §III-A does.

// IsoParams carries the normalised machine/problem constants used by the
// closed-form expressions.
type IsoParams struct {
	Ts float64 // message startup in flop-times
	Tw float64 // per-word transfer in flop-times
	N  int     // features per sample
}

// NormalizedIso converts a Machine into the tc=1 normalisation the paper
// uses.
func NormalizedIso(mc Machine, features int) IsoParams {
	return IsoParams{Ts: mc.Ts / mc.Tc, Tw: mc.Tw / mc.Tc, N: features}
}

// DisSMOParallelTime evaluates eqn (9): the modeled time of one distributed
// SMO iteration with m samples, n features, on p processes (tc = 1).
func (ip IsoParams) DisSMOParallelTime(m, p int) float64 {
	n := float64(ip.N)
	pf := float64(p)
	logp := math.Log2(pf)
	if logp < 0 {
		logp = 0
	}
	return 14*logp*ip.Ts +
		(2*n*logp+4*pf*pf)*ip.Tw +
		(2*float64(m)*n+4*float64(m))/pf +
		2*pf + n
}

// DisSMOOverhead evaluates eqn (10): To = P·Tp − W for one SMO iteration,
// where W = 2mn (tc = 1).
func (ip IsoParams) DisSMOOverhead(m, p int) float64 {
	n := float64(ip.N)
	pf := float64(p)
	logp := math.Log2(pf)
	if logp < 0 {
		logp = 0
	}
	return 14*pf*logp*ip.Ts +
		(2*n*pf*logp+4*pf*pf*pf)*ip.Tw +
		4*float64(m) + 2*pf*pf + n*pf
}

// IsoefficiencyW solves eqn (8), W = K·To(W, P), for the minimum problem
// size W that sustains efficiency e on p processes, by fixed-point
// iteration on m (W = 2mn per SMO iteration). Returns W in flops.
func (ip IsoParams) IsoefficiencyW(e float64, p int) float64 {
	if e <= 0 || e >= 1 {
		panic("perfmodel: efficiency must be in (0,1)")
	}
	k := e / (1 - e)
	n := float64(ip.N)
	m := float64(p) // start from minimum feasible size
	for iter := 0; iter < 200; iter++ {
		to := ip.DisSMOOverhead(int(m), p)
		w := k * to
		newM := w / (2 * n)
		if newM < float64(p) {
			newM = float64(p)
		}
		if math.Abs(newM-m) <= 1e-9*(1+m) {
			m = newM
			break
		}
		m = newM
	}
	return 2 * m * n
}

// IsoBound identifies which asymptotic lower bound of Table IV a method
// obeys.
type IsoBound struct {
	Method       string
	CommExponent float64 // W = Ω(P^CommExponent) from communication
	CompExponent float64 // W bound exponent from computation (0 = Θ(1))
	Note         string
}

// TableIV returns the paper's Table IV: the iso-efficiency lower bounds of
// the compared methods.
func TableIV() []IsoBound {
	return []IsoBound{
		{"1D Mat-Vec-Mul", 2, 0, "W = Ω(P²) comm, Θ(1) comp"},
		{"2D Mat-Vec-Mul", 1, 0, "W = Ω(P) comm, Θ(1) comp"},
		{"Distributed-SMO", 3, 2, "W = Ω(P³) comm, Ω(P²) comp"},
		{"Cascade", 3, math.NaN(), "W = Ω(P³) comm; comp upper-bounded by Σ n·Lk·V(k−1)·2^k"},
		{"DC-SVM", 3, math.NaN(), "W = Ω(P³) comm; comp upper-bounded by Σ n·Lk·m·2^k"},
		{"CA-SVM", 1, 1, "no inter-node communication; W = Θ(P) keeps nodes busy"},
	}
}

// FitExponent estimates b in W ≈ a·P^b from (P, W) samples by least squares
// on log–log values. It is used to verify empirically measured overheads
// against the Table IV exponents.
func FitExponent(ps []int, ws []float64) float64 {
	if len(ps) != len(ws) || len(ps) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(ps))
	for i := range ps {
		x := math.Log(float64(ps[i]))
		y := math.Log(ws[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
