package perfmodel

// Communication-volume model of the paper's Table X. Each formula predicts
// the total bytes a method moves over the network for one training run,
// given the problem shape. Terms (Table II):
//
//	m — training samples, n — features, p — processes,
//	s — support vectors of the final model, I — SMO iterations,
//	k — K-means iterations.
//
// Every word is 4 bytes (the original code transfers single-precision
// floats; this repository's wire format does too — see internal/la).

// VolumeInput bundles the problem-shape terms the formulas consume.
type VolumeInput struct {
	M, N, P int
	S       int // support vectors
	I       int // SMO iterations (Dis-SMO)
	K       int // K-means iterations
}

// Word is the wire word size in bytes.
const Word = 4

// DisSMOVolume predicts Θ(26·I·p + 2·p·m + 4·m·n) words for distributed
// SMO: per-iteration allreduce/broadcast traffic plus the initial
// distribution of the data.
func DisSMOVolume(in VolumeInput) int {
	return Word * (26*in.I*in.P + 2*in.P*in.M + 4*in.M*in.N)
}

// CascadeVolume predicts O(3·m·n + 3·m + 3·s·n) words: samples ascend the
// reduction tree shrinking to SVs.
func CascadeVolume(in VolumeInput) int {
	return Word * (3*in.M*in.N + 3*in.M + 3*in.S*in.N)
}

// DCSVMVolume predicts Θ(9·m·n + 12·m + 2·k·p·n) words: all samples travel
// layer to layer plus the K-means center exchanges.
func DCSVMVolume(in VolumeInput) int {
	return Word * (9*in.M*in.N + 12*in.M + 2*in.K*in.P*in.N)
}

// DCFilterVolume predicts O(6·m·n + 7·m + 3·s·n + 2·k·p·n) words.
func DCFilterVolume(in VolumeInput) int {
	return Word * (6*in.M*in.N + 7*in.M + 3*in.S*in.N + 2*in.K*in.P*in.N)
}

// CPSVMVolume predicts Θ(6·m·n + 7·m + 2·k·p·n) words: the K-means
// partition and scatter, with no combining phase.
func CPSVMVolume(in VolumeInput) int {
	return Word * (6*in.M*in.N + 7*in.M + 2*in.K*in.P*in.N)
}

// CASVMVolume is identically zero: casvm2 places data on the owning nodes
// and never communicates during training.
func CASVMVolume(VolumeInput) int { return 0 }

// VolumeByMethod evaluates the Table X formula for the named method
// ("dissmo", "cascade", "dcsvm", "dcfilter", "cpsvm", "casvm"). Unknown
// names return -1.
func VolumeByMethod(method string, in VolumeInput) int {
	switch method {
	case "dissmo":
		return DisSMOVolume(in)
	case "cascade":
		return CascadeVolume(in)
	case "dcsvm":
		return DCSVMVolume(in)
	case "dcfilter":
		return DCFilterVolume(in)
	case "cpsvm":
		return CPSVMVolume(in)
	case "casvm":
		return CASVMVolume(in)
	default:
		return -1
	}
}
