package perfmodel

import (
	"math"
	"testing"
)

func TestMachineDefaults(t *testing.T) {
	h := Hopper()
	if h.Tc <= 0 || h.Ts <= 0 || h.Tw <= 0 {
		t.Fatal("hopper params must be positive")
	}
	e := Edison()
	if e.Tc >= h.Tc {
		t.Error("edison should be faster per flop than hopper")
	}
}

func TestPtoPMonotone(t *testing.T) {
	mc := Hopper()
	if mc.PtoP(0) != mc.Ts {
		t.Error("zero-byte message should cost just latency")
	}
	if mc.PtoP(-5) != mc.Ts {
		t.Error("negative bytes clamp to zero")
	}
	if mc.PtoP(4096) <= mc.PtoP(4) {
		t.Error("cost must grow with size")
	}
}

func TestCollectiveCosts(t *testing.T) {
	mc := Hopper()
	// log scaling of bcast: p=1 is free.
	if mc.Bcast(1, 100) != 0 {
		t.Error("bcast to 1 rank must be free")
	}
	if mc.Bcast(8, 100) != 3*(mc.Ts+mc.Tw*25) {
		t.Errorf("bcast(8,100)=%v", mc.Bcast(8, 100))
	}
	if mc.Allreduce(16, 4) <= mc.Bcast(16, 4) {
		t.Error("allreduce includes reduce flops, should exceed bcast")
	}
	// Gather root receives (p-1)*nbytes.
	g := mc.Gather(4, 40)
	want := 2*mc.Ts + mc.Tw*3*10
	if math.Abs(g-want) > 1e-15 {
		t.Errorf("gather=%v want %v", g, want)
	}
	if mc.Scatter(4, 40) != g {
		t.Error("scatter should mirror gather")
	}
	if mc.Allgather(5, 8) != 4*(mc.Ts+mc.Tw*2) {
		t.Error("allgather ring cost wrong")
	}
	if mc.Barrier(8) != 3*mc.Ts {
		t.Error("barrier cost wrong")
	}
	if mc.Compute(1e9) != mc.Tc*1e9 {
		t.Error("compute cost wrong")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for p, want := range cases {
		if got := log2ceil(p); got != want {
			t.Errorf("log2ceil(%d)=%d want %d", p, got, want)
		}
	}
}

func TestDisSMOParallelTimeShape(t *testing.T) {
	ip := NormalizedIso(Hopper(), 100)
	m := 100000
	// More processors → less per-iteration time, until communication wins.
	t8 := ip.DisSMOParallelTime(m, 8)
	t64 := ip.DisSMOParallelTime(m, 64)
	if t64 >= t8 {
		t.Errorf("64 procs should beat 8 at m=100k: %v vs %v", t64, t8)
	}
	// At tiny m, huge P is slower than small P (overhead dominated).
	s8 := ip.DisSMOParallelTime(64, 8)
	s4096 := ip.DisSMOParallelTime(64, 4096)
	if s4096 <= s8 {
		t.Errorf("communication should dominate at tiny m: %v vs %v", s4096, s8)
	}
}

func TestOverheadGrowsSuperlinearly(t *testing.T) {
	ip := NormalizedIso(Hopper(), 100)
	m := 10000
	o2 := ip.DisSMOOverhead(m, 2)
	o4 := ip.DisSMOOverhead(m, 4)
	o8 := ip.DisSMOOverhead(m, 8)
	if o4 <= o2 || o8 <= o4 {
		t.Error("overhead must grow with P")
	}
}

// The fitted exponent of the iso-efficiency curve should reflect the P³
// communication term of eqn (10) at large P.
func TestIsoefficiencyExponent(t *testing.T) {
	ip := NormalizedIso(Hopper(), 100)
	ps := []int{256, 512, 1024, 2048, 4096}
	ws := make([]float64, len(ps))
	for i, p := range ps {
		ws[i] = ip.IsoefficiencyW(0.5, p)
	}
	b := FitExponent(ps, ws)
	if b < 2.0 || b > 3.3 {
		t.Errorf("fitted iso-efficiency exponent %.2f outside [2.0, 3.3]", b)
	}
	// Increasing at all scales.
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Error("W must increase with P")
		}
	}
}

func TestIsoefficiencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("efficiency 1.0 should panic")
		}
	}()
	NormalizedIso(Hopper(), 10).IsoefficiencyW(1.0, 8)
}

func TestTableIV(t *testing.T) {
	rows := TableIV()
	if len(rows) != 6 {
		t.Fatalf("TableIV rows=%d", len(rows))
	}
	byName := map[string]IsoBound{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	if byName["Distributed-SMO"].CommExponent != 3 {
		t.Error("Dis-SMO must be Ω(P³)")
	}
	if byName["2D Mat-Vec-Mul"].CommExponent != 1 {
		t.Error("2D MVM must be Ω(P)")
	}
	if byName["CA-SVM"].CommExponent != 1 {
		t.Error("CA-SVM must be Ω(P)")
	}
}

func TestFitExponent(t *testing.T) {
	ps := []int{2, 4, 8, 16}
	ws := []float64{4, 16, 64, 256} // W = P²
	if b := FitExponent(ps, ws); math.Abs(b-2) > 1e-9 {
		t.Errorf("exponent=%v want 2", b)
	}
	if !math.IsNaN(FitExponent([]int{1}, []float64{1})) {
		t.Error("short input should be NaN")
	}
	if !math.IsNaN(FitExponent([]int{2, 2}, []float64{1, 2})) {
		t.Error("degenerate input should be NaN")
	}
}

// Table X paper check: ijcnn on 8 nodes, m=48000, n=13, s=4474 →
// Cascade ≈ 8.4 MB. (The paper's own worked example.)
func TestCascadeVolumePaperExample(t *testing.T) {
	in := VolumeInput{M: 48000, N: 13, P: 8, S: 4474}
	got := CascadeVolume(in)
	mb := float64(got) / 1e6
	if mb < 8.0 || mb > 9.0 {
		t.Errorf("cascade volume %.2f MB, paper predicts ≈8.4 MB", mb)
	}
}

func TestVolumeOrdering(t *testing.T) {
	in := VolumeInput{M: 48000, N: 13, P: 8, S: 4474, I: 30000, K: 7}
	casvm := CASVMVolume(in)
	cascade := CascadeVolume(in)
	cpsvm := CPSVMVolume(in)
	dcfilter := DCFilterVolume(in)
	dcsvm := DCSVMVolume(in)
	if casvm != 0 {
		t.Error("CA-SVM must predict zero communication")
	}
	if !(cascade < cpsvm && cpsvm <= dcfilter && dcfilter < dcsvm) {
		t.Errorf("ordering violated: cascade=%d cpsvm=%d dcfilter=%d dcsvm=%d",
			cascade, cpsvm, dcfilter, dcsvm)
	}
}

func TestVolumeByMethod(t *testing.T) {
	in := VolumeInput{M: 100, N: 10, P: 4, S: 20, I: 100, K: 5}
	for _, m := range []string{"dissmo", "cascade", "dcsvm", "dcfilter", "cpsvm", "casvm"} {
		if VolumeByMethod(m, in) < 0 {
			t.Errorf("method %q should be known", m)
		}
	}
	if VolumeByMethod("nope", in) != -1 {
		t.Error("unknown method should return -1")
	}
}
