// Package perfmodel holds the analytic performance machinery of the paper:
// the machine parameters (tc, ts, tw) used to normalise computation and
// communication, the α–β collective cost model that drives the virtual
// clocks of internal/mpi, the iso-efficiency functions of Table IV, and the
// communication-volume formulas of Table X.
package perfmodel

import "math"

// Machine describes the cost parameters of the simulated cluster, in the
// notation of the paper's Table II. All values are seconds.
//
// Tc is the time per flop; Ts the startup (latency) cost of one message; Tw
// the per-4-byte-word transfer time. The defaults are Hopper-like: ~10
// Gflop/s effective per node, ~1.5 µs MPI latency, ~6 GB/s injection
// bandwidth.
type Machine struct {
	Tc float64 // seconds per flop
	Ts float64 // seconds per message startup
	Tw float64 // seconds per 4-byte word
}

// Hopper returns the default machine parameters used throughout the
// benchmarks (a NERSC Hopper-like node: Cray XE6, Gemini interconnect).
func Hopper() Machine {
	return Machine{
		Tc: 1e-10,   // 10 Gflop/s per node
		Ts: 1.5e-6,  // 1.5 µs latency
		Tw: 6.7e-10, // ≈ 6 GB/s → 4 B / 6e9 B/s
	}
}

// Edison returns machine parameters for a NERSC Edison-like node (Cray XC30,
// Aries interconnect): faster cores, lower latency, higher bandwidth.
func Edison() Machine {
	return Machine{
		Tc: 5e-11,  // 20 Gflop/s per node
		Ts: 1.0e-6, // 1 µs latency
		Tw: 5e-10,  // ≈ 8 GB/s
	}
}

// PtoP returns the modeled time to move nbytes between two ranks.
func (mc Machine) PtoP(nbytes int) float64 {
	if nbytes < 0 {
		nbytes = 0
	}
	return mc.Ts + mc.Tw*float64(nbytes)/4
}

// log2ceil returns ⌈log₂ p⌉ with log2ceil(1) = 0.
func log2ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

// Bcast returns the modeled time of a binomial-tree broadcast of nbytes to
// p ranks: ⌈log p⌉ (ts + tw·words).
func (mc Machine) Bcast(p, nbytes int) float64 {
	l := float64(log2ceil(p))
	return l * (mc.Ts + mc.Tw*float64(nbytes)/4)
}

// Allreduce returns the modeled time of a recursive-doubling allreduce of
// nbytes across p ranks: ⌈log p⌉ (ts + tw·words) plus the reduction flops.
func (mc Machine) Allreduce(p, nbytes int) float64 {
	l := float64(log2ceil(p))
	words := float64(nbytes) / 4
	return l * (mc.Ts + mc.Tw*words + mc.Tc*words)
}

// Gather returns the modeled time of gathering nbytes from each of p ranks
// to the root (binomial tree; the root receives (p−1)·nbytes in total):
// ⌈log p⌉·ts + tw·(p−1)·words.
func (mc Machine) Gather(p, nbytes int) float64 {
	words := float64(nbytes) / 4
	return float64(log2ceil(p))*mc.Ts + mc.Tw*float64(p-1)*words
}

// Scatter returns the modeled time of scattering nbytes to each of p ranks
// from the root; symmetric with Gather.
func (mc Machine) Scatter(p, nbytes int) float64 { return mc.Gather(p, nbytes) }

// Allgather returns the modeled time of an allgather where each rank
// contributes nbytes (ring): (p−1)(ts + tw·words).
func (mc Machine) Allgather(p, nbytes int) float64 {
	words := float64(nbytes) / 4
	return float64(p-1) * (mc.Ts + mc.Tw*words)
}

// Barrier returns the modeled time of a dissemination barrier.
func (mc Machine) Barrier(p int) float64 {
	return float64(log2ceil(p)) * mc.Ts
}

// Compute returns the modeled time of f flops on one node.
func (mc Machine) Compute(flops float64) float64 { return mc.Tc * flops }
